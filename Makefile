GO ?= go
BENCH_FILE ?= BENCH_$(shell date +%Y-%m-%d).json
# bench-gate baseline: newest committed snapshot unless overridden.
BASE ?= $(shell ls BENCH_*.json 2>/dev/null | sort | tail -1)

.PHONY: build test vet race race-sharded fuzz-smoke bench bench-compare bench-gate obs-overhead metrics-lint drift-smoke sweep-smoke check golden-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static hygiene gate: go vet plus a gofmt drift check (gofmt -l lists
# any file whose formatting differs from canonical; a non-empty list
# fails the target and prints the offenders).
vet:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt: the following files need reformatting:"; \
		echo "$$fmtout"; exit 1; \
	fi

# The race target is the concurrency gate: it exercises the Suite's
# parallel entry points (CompareParallel, HarvestParallel,
# TrainAllParallel) under the race detector.
race:
	$(GO) test -race ./...

# The sharded-equivalence race gate, runnable on its own: the concurrent
# tick engine's bit-exactness proofs (DESIGN.md §5c-5d) under the race
# detector — concurrent sweeps plus the destination-shard wire-landing
# path under banded and randomized heavy traffic — fast enough to fail a
# sharding bug before the full race sweep runs. The cosim daemon's
# multi-client and backpressure tests (DESIGN.md §5f) ride along: they
# are the multiplexing layer's race gate.
race-sharded:
	$(GO) test -race -run 'TestShardedSweepEngagesAndMatchesSerial|TestParallelLandings|TestActiveSetEquivalence|TestRetile|TestHorizonEquivalence' ./internal/sim
	$(GO) test -race -run 'TestDaemonConcurrentClients|TestDaemonBackpressureBusy|TestDaemonServeTCP' ./internal/cosim
	$(GO) test -race -run 'TestSweep' ./internal/sweep

# Protocol fuzz smoke: run the cosim frame-decoder fuzz target for 10s
# on top of its committed seed corpus (internal/cosim/testdata/fuzz).
# Catches decoder panics/hangs on malformed frames before they ship;
# run with a longer -fuzztime locally when touching proto.go.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/cosim

# Benchmark snapshot: the JSON log (test2json stream) goes to
# $(BENCH_FILE) for later comparison; the human-readable text is echoed
# via cmd/benchtxt.
bench:
	$(GO) test -bench=. -benchmem -json . > $(BENCH_FILE)
	$(GO) run ./cmd/benchtxt $(BENCH_FILE)

# Diff two bench snapshots: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
# Prefers benchstat when installed; the cmd/benchtxt fallback applies the
# same significance convention (Mann-Whitney U at alpha=0.05, `~` for
# indistinguishable deltas), so both paths agree on what changed.
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "usage: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json"; exit 2; }
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./cmd/benchtxt $(OLD) > $(OLD).txt; \
		$(GO) run ./cmd/benchtxt $(NEW) > $(NEW).txt; \
		benchstat $(OLD).txt $(NEW).txt; \
	else \
		$(GO) run ./cmd/benchtxt -compare $(OLD) $(NEW); \
	fi

# Benchmark regression gate: rerun the scheduling benchmarks and compare
# against the committed baseline (newest BENCH_*.json unless BASE= is
# given), failing on >10% regression of the min-of-runs ns/op via
# cmd/benchtxt -gate (min, not mean, so a noisy runner needs every run
# disturbed to trip it; raise COUNT for more samples per benchmark).
GATE_BENCHES = BenchmarkHotspot|BenchmarkBigMesh|BenchmarkBigMeshWire|BenchmarkMediumLoad|BenchmarkBursty|BenchmarkClosedLoopMcsim
COUNT ?= 1
bench-gate:
	@test -n "$(BASE)" || { echo "bench-gate: no BENCH_*.json baseline found (set BASE=)"; exit 2; }
	$(GO) test -bench='$(GATE_BENCHES)' -benchmem -count=$(COUNT) -json . > .bench-gate.json
	$(GO) run ./cmd/benchtxt -gate -pattern '$(GATE_BENCHES)' -max-regress 10 $(BASE) .bench-gate.json

# Observability overhead gate: BenchmarkMediumLoad with obs disabled vs
# enabled-but-unsubscribed (DOZZNOC_OBS=1 makes bench_test.go attach a
# Metrics with no tracer and no endpoint reader). The attached layer now
# includes the full prediction-quality recorder — per-lane histograms,
# mispredict-cost attribution, and the Page-Hinkley drift detector
# (DESIGN.md §5j) — so this gate covers the whole pipeline, not just the
# counters. Both runs produce the same benchmark names, so cmd/benchtxt
# -gate compares them directly; the enabled run must stay within 2% of
# the disabled run's min-of-runs ns/op — the layer is required to be
# near-free even when someone leaves it attached.
OBS_COUNT ?= 5
obs-overhead:
	$(GO) test -bench=BenchmarkMediumLoad -benchmem -count=$(OBS_COUNT) -json . > .obs-off.json
	DOZZNOC_OBS=1 $(GO) test -bench=BenchmarkMediumLoad -benchmem -count=$(OBS_COUNT) -json . > .obs-on.json
	$(GO) run ./cmd/benchtxt -gate -pattern 'BenchmarkMediumLoad' -max-regress 2 .obs-off.json .obs-on.json

# Exposition-format gate: render the fixed-trace golden snapshot and
# scrape a live /metrics endpoint, validating both with the vendored
# Prometheus text-format checker (internal/obs/promlint.go) — no
# external promtool needed. The obs-package unit tests for the renderer
# and the checker itself ride along.
metrics-lint:
	$(GO) test -run 'TestMetricsGoldenExposition|TestMetricsEndpointLint' ./internal/sim
	$(GO) test -run 'TestRenderMetrics|TestLintExposition' ./internal/obs

# Drift-detection smoke: a frozen-weights model must trip the
# Page-Hinkley detector when the workload phase-shifts away from its
# training regime, and must stay silent on the stationary control
# (DESIGN.md §5j).
drift-smoke:
	$(GO) test -run TestDriftSmoke ./internal/sim

# Sweep-orchestrator crash-safety smoke: run a tiny 2-model x 2-bench
# matrix through cmd/sweep with a forced stop after 2 rows, resume it to
# completion, and -check that the results file is complete and matches
# the spec's matrix (exit 1 if any row is missing, torn, or misordered).
SWEEP_SMOKE_OUT = .sweep-smoke.jsonl
sweep-smoke:
	@rm -f $(SWEEP_SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec cmd/sweep/testdata/smoke.json -out $(SWEEP_SMOKE_OUT) -max-runs 2
	$(GO) run ./cmd/sweep -spec cmd/sweep/testdata/smoke.json -out $(SWEEP_SMOKE_OUT)
	$(GO) run ./cmd/sweep -spec cmd/sweep/testdata/smoke.json -out $(SWEEP_SMOKE_OUT) -check
	@rm -f $(SWEEP_SMOKE_OUT)

# CI entry point: vet + full tests (includes the cosim protocol and
# bit-exact daemon-equivalence suites) + sharded-equivalence race gate +
# full race detector sweep + protocol fuzz smoke + observability
# overhead gate + /metrics exposition lint + drift-detection smoke +
# sweep-orchestrator restart smoke.
check: vet test race-sharded race fuzz-smoke obs-overhead metrics-lint drift-smoke sweep-smoke

# Regenerate the cmd/experiments golden snapshots after an intentional
# output change (review the diff before committing).
golden-update:
	$(GO) test ./cmd/experiments -run TestGolden -update
