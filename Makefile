GO ?= go

.PHONY: build test vet race bench check golden-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target is the concurrency gate: it exercises the Suite's
# parallel entry points (CompareParallel, HarvestParallel,
# TrainAllParallel) under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# CI entry point: vet + full tests + race detector.
check: vet test race

# Regenerate the cmd/experiments golden snapshots after an intentional
# output change (review the diff before committing).
golden-update:
	$(GO) test ./cmd/experiments -run TestGolden -update
