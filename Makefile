GO ?= go
BENCH_FILE ?= BENCH_$(shell date +%Y-%m-%d).json

.PHONY: build test vet race bench bench-compare check golden-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target is the concurrency gate: it exercises the Suite's
# parallel entry points (CompareParallel, HarvestParallel,
# TrainAllParallel) under the race detector.
race:
	$(GO) test -race ./...

# Benchmark snapshot: the JSON log (test2json stream) goes to
# $(BENCH_FILE) for later comparison; the human-readable text is echoed
# via cmd/benchtxt.
bench:
	$(GO) test -bench=. -benchmem -json . > $(BENCH_FILE)
	$(GO) run ./cmd/benchtxt $(BENCH_FILE)

# Diff two bench snapshots: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
# Prefers benchstat (statistically sound) when installed; falls back to
# cmd/benchtxt's mean-based ns/op delta table otherwise.
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "usage: make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json"; exit 2; }
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./cmd/benchtxt $(OLD) > $(OLD).txt; \
		$(GO) run ./cmd/benchtxt $(NEW) > $(NEW).txt; \
		benchstat $(OLD).txt $(NEW).txt; \
	else \
		$(GO) run ./cmd/benchtxt -compare $(OLD) $(NEW); \
	fi

# CI entry point: vet + full tests + race detector.
check: vet test race

# Regenerate the cmd/experiments golden snapshots after an intentional
# output change (review the diff before committing).
golden-update:
	$(GO) test ./cmd/experiments -run TestGolden -update
