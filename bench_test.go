// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 maps each to its experiment function).
// Static tables bench the model encodings; figure benches run the
// simulation pipeline on a reduced configuration (4x4 mesh, short traces)
// so `go test -bench=. -benchmem` regenerates every result in minutes.
// The full-size 8x8 reproduction lives in cmd/experiments.
package main

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/flit"
	"repro/internal/mcsim"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/vr"
)

// benchSuite builds the reduced-configuration suite shared by the figure
// benchmarks.
func benchSuite() *core.Suite {
	return core.NewSuite(topology.NewMesh(4, 4), core.Options{Horizon: 8000, Seed: 3})
}

// injectPassthroughModels installs IBU-passthrough predictors so figure
// benches measure simulation, not training.
func injectPassthroughModels(s *core.Suite) {
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TableI()
		r.Write(io.Discard)
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TableII()
		r.Write(io.Discard)
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TableIII()
		r.Write(io.Discard)
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TableV()
		r.Write(io.Discard)
	}
}

func BenchmarkOverheadTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.OverheadTable()
		r.Write(io.Discard)
	}
}

func BenchmarkFig5Waveforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig5(10, 0.1, 40)
		r.Write(io.Discard)
	}
}

func BenchmarkFig6Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig6()
		r.Write(io.Discard)
	}
}

func BenchmarkFig7ModeDistribution(b *testing.B) {
	s := benchSuite()
	injectPassthroughModels(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig7(s)
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

func BenchmarkFig8EnergyThroughput(b *testing.B) {
	s := benchSuite()
	injectPassthroughModels(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8(s, exp.DefaultCompression)
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

func BenchmarkFig9FeatureAccuracy(b *testing.B) {
	s := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig9(s)
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

func BenchmarkHeadline(b *testing.B) {
	s := benchSuite()
	injectPassthroughModels(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Headline(s, exp.DefaultCompression, nil)
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

func BenchmarkEpochSweep(b *testing.B) {
	factory := func(ep int64) *core.Suite {
		s := core.NewSuite(topology.NewMesh(4, 4), core.Options{Horizon: 8000, Seed: 3, EpochTicks: ep})
		injectPassthroughModels(s)
		return s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.RunEpochSweep(factory, "fft", exp.DefaultCompression, []int64{250, 500})
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

// BenchmarkTraining measures the full offline ML pipeline (reactive
// harvest over 9 traces + lambda sweep) for one model.
func BenchmarkTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Train(core.KindDozzNoC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBaseline measures raw simulation speed: base ticks per
// second on a quiet 8x8 mesh baseline run.
func BenchmarkEngineBaseline(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	p, _ := traffic.ProfileByName("fft")
	g := traffic.Generator{Topo: topo, Horizon: 10_000, Seed: 1}
	tr := g.Generate(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline(), Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDozzNoC measures the proposed model's simulation speed
// (power gating + DVFS + per-epoch feature extraction).
func BenchmarkEngineDozzNoC(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	p, _ := traffic.ProfileByName("fft")
	g := traffic.Generator{Topo: topo, Horizon: 10_000, Seed: 1}
	tr := g.Generate(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastForwardLowLoad measures the idle fast-forward path where
// it matters: a sparse (low-load) trace on an 8x8 mesh under the gating
// DozzNoC model leaves the network quiescent most of the time, so the
// closed-form skip should beat tick-by-tick execution by a wide margin
// (and the flit pool should cut allocations). The tick-by-tick
// sub-benchmark is the same configuration with NoFastForward.
func BenchmarkFastForwardLowLoad(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	tr := traffic.Synthetic(topo, traffic.UniformRandom, 0.0001, 60_000, 1)
	run := func(b *testing.B, noFF bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Topo:          topo,
				Spec:          policy.DozzNoC(policy.ReactiveSelector{}),
				Trace:         tr,
				NoFastForward: noFF,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !noFF && res.FastForwardedTicks == 0 {
				b.Fatal("fast-forward never engaged")
			}
		}
	}
	b.Run("fastforward", func(b *testing.B) { run(b, false) })
	b.Run("tickbytick", func(b *testing.B) { run(b, true) })
}

// burstTrace builds sparse bursts separated by idle gaps far longer than
// an epoch: a handful of packets every ~20000 ticks on an 8x8 mesh. The
// gaps are where the event horizon earns its keep — with LinkTicks 3 the
// tail of each burst leaves flits on wires and routers mid-wakeup, so
// the old quiescence precondition would have ticked through the drain
// and every wake window one base tick at a time.
func burstTrace(topo topology.Topology, horizon int64) *traffic.Trace {
	nc := topo.NumCores()
	tr := &traffic.Trace{Name: "burst", Cores: nc, Horizon: horizon}
	for t, i := int64(0), 0; t < horizon; t, i = t+20_000, i+1 {
		for k := 0; k < 6; k++ {
			src := (i*7 + k*13) % nc
			dst := (src + 17 + k) % nc
			if dst == src {
				dst = (dst + 1) % nc
			}
			tr.Entries = append(tr.Entries, traffic.Entry{
				Time: t + int64(k%3), Src: src, Dst: dst, Kind: flit.Request,
			})
		}
	}
	return tr
}

// BenchmarkBursty measures the event-horizon path on bursty low-load
// traffic (sparse bursts, idle gaps much longer than an epoch) with
// 3-tick wires. The horizon arm must engage both skip regimes
// (quiescent fast-forward and non-quiescent horizon skips); the
// tick-by-tick sub-benchmark is the same configuration with
// NoFastForward, the ISSUE-8 acceptance baseline.
func BenchmarkBursty(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	tr := burstTrace(topo, 600_000)
	run := func(b *testing.B, noFF bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Topo:          topo,
				Spec:          policy.DozzNoC(policy.ReactiveSelector{}),
				Trace:         tr,
				LinkTicks:     3,
				NoFastForward: noFF,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !noFF && res.FastForwardedTicks == 0 {
				b.Fatal("fast-forward never engaged")
			}
			if !noFF && res.HorizonSkippedTicks == 0 {
				b.Fatal("event horizon never engaged")
			}
		}
	}
	b.Run("horizon", func(b *testing.B) { run(b, false) })
	b.Run("tickbytick", func(b *testing.B) { run(b, true) })
}

// BenchmarkClosedLoopMcsim measures the engine directly under the
// closed-loop mcsim workload — the regime the event horizon opened up
// (fast-forward used to be disabled whenever a Workload was attached).
// The horizon arm asserts non-quiescent skips engage; the tick-by-tick
// arm is the same configuration with NoFastForward.
func BenchmarkClosedLoopMcsim(b *testing.B) {
	topo := topology.NewMesh(4, 4)
	params := mcsim.DefaultSystem(topo)
	params.Core.Instructions = 20_000
	run := func(b *testing.B, noFF bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := mcsim.New(params)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Topo:          topo,
				Spec:          policy.DozzNoC(policy.ReactiveSelector{}),
				Workload:      w,
				NoFastForward: noFF,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !noFF && res.HorizonSkippedTicks == 0 {
				b.Fatal("event horizon never engaged on the closed-loop workload")
			}
		}
	}
	b.Run("horizon", func(b *testing.B) { run(b, false) })
	b.Run("tickbytick", func(b *testing.B) { run(b, true) })
}

// runActiveSetBench runs one trace under the gating DozzNoC model with
// active-set scheduling on (the default) or off, asserting the lazy
// path actually engaged when enabled. Global fast-forward stays enabled
// in both sub-benchmarks — the comparison isolates the per-router
// active set against the engine as it stood before it.
//
// With DOZZNOC_OBS=1 in the environment each run also attaches an
// enabled-but-unsubscribed obs.Metrics (no tracer, no endpoint reader).
// `make obs-overhead` runs BenchmarkMediumLoad with and without the
// variable and gates the delta, so the observability layer's hook cost
// is measured on the same benchmark names benchtxt already tracks.
func runActiveSetBench(b *testing.B, topo topology.Topology, tr *traffic.Trace, noActiveSet bool) {
	var observer *obs.Observer
	if os.Getenv("DOZZNOC_OBS") != "" {
		observer = obs.New()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Topo:        topo,
			Spec:        policy.DozzNoC(policy.ReactiveSelector{}),
			Trace:       tr,
			NoActiveSet: noActiveSet,
			Obs:         observer,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !noActiveSet && res.LazySkippedRouterTicks == 0 {
			b.Fatal("active-set deferral never engaged")
		}
		if observer != nil && observer.Metrics.Snapshot().LazyTicks != res.LazySkippedRouterTicks {
			b.Fatal("obs mirror disagrees with engine diagnostics")
		}
	}
}

// BenchmarkMediumLoad measures active-set scheduling under sustained
// uniform-random load on the 8x8 mesh: traffic keeps the fabric from
// ever going quiescent (so global fast-forward rarely helps), but at
// any instant most routers are idle and deferrable.
func BenchmarkMediumLoad(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	tr := traffic.Synthetic(topo, traffic.UniformRandom, 0.002, 30_000, 1)
	b.Run("activeset", func(b *testing.B) { runActiveSetBench(b, topo, tr, false) })
	b.Run("noactiveset", func(b *testing.B) { runActiveSetBench(b, topo, tr, true) })
}

// hotspotTrace builds the regime global fast-forward misses entirely: a
// 2x2 corner of cores exchanges traffic continuously for the whole
// horizon while every other core is silent, so the network is never
// quiescent but ~60 of 64 routers stay dormant.
func hotspotTrace(topo topology.Topology, horizon int64) *traffic.Trace {
	corner := []int{0, 1, 8, 9}
	tr := &traffic.Trace{Name: "hotspot", Cores: topo.NumCores(), Horizon: horizon}
	for t, i := int64(0), 0; t < horizon; t, i = t+3, i+1 {
		tr.Entries = append(tr.Entries, traffic.Entry{
			Time: t,
			Src:  corner[i%len(corner)],
			Dst:  corner[(i+1)%len(corner)],
			Kind: flit.Request,
		})
	}
	return tr
}

// BenchmarkHotspot measures active-set scheduling with a few saturated
// routers and the rest idle (see hotspotTrace). The shards=N
// sub-benchmarks sweep the same trace under explicit shard counts; on
// this geometry the busy corner sits inside the first shard's boundary
// margin, so concurrent sweeps never engage and the numbers measure the
// sharded engine's serial-fallback overhead (expected ~1x). See
// BenchmarkBigMesh for the geometry where sharding pays.
//
// The asym-fixed/asym-load pair is the load-aware tiling acceptance
// comparison (DESIGN.md §5g): a 16x32 mesh whose two busy bands (router
// rows 0-1 and 6-7) both sit in the top quarter. The fixed even split at
// Shards=4 cuts at rows 8/16/24, so the lower band rides inside the
// first boundary's margin, the quiet-margin predicate never passes, and
// asym-fixed pays the serial fallback every tick. asym-load lets the
// epoch-fold re-split migrate the cuts (to ~{4,10,11}), which puts each
// band in its own shard and lets both sweep concurrently. As with
// BenchmarkBigMesh, the speedup needs cores: on a multi-core host
// asym-load should beat asym-fixed by >=1.3x; at GOMAXPROCS=1 the
// concurrent sweeps can only interleave and the pair measures the
// tiling machinery's overhead instead.
func BenchmarkHotspot(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	tr := hotspotTrace(topo, 30_000)
	b.Run("activeset", func(b *testing.B) { runActiveSetBench(b, topo, tr, false) })
	b.Run("noactiveset", func(b *testing.B) { runActiveSetBench(b, topo, tr, true) })
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{
					Topo:   topo,
					Spec:   policy.DozzNoC(policy.ReactiveSelector{}),
					Trace:  tr,
					Shards: k,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	asymTopo := topology.NewMesh(16, 32)
	asymTr := bandTrace(asymTopo, 10_000, []int{0, 6}, 2)
	runAsym := func(b *testing.B, fixed bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Topo:           asymTopo,
				Spec:           policy.DozzNoC(policy.ReactiveSelector{}),
				Trace:          asymTr,
				Shards:         4,
				ShardMinActive: -1,
				FixedTiling:    fixed,
			})
			if err != nil {
				b.Fatal(err)
			}
			if fixed && res.ParallelTicks != 0 {
				b.Fatal("fixed even split swept concurrently through a busy margin")
			}
			if !fixed && (res.ShardResplits == 0 || res.ParallelTicks == 0) {
				b.Fatalf("load-aware tiling never paid off (resplits=%d, parallel=%d)",
					res.ShardResplits, res.ParallelTicks)
			}
		}
	}
	b.Run("asym-fixed", func(b *testing.B) { runAsym(b, true) })
	b.Run("asym-load", func(b *testing.B) { runAsym(b, false) })
}

// bigMeshTrace drives four four-row bands, one deep inside each quarter
// of a 32-row mesh, with band-local traffic (XY routing keeps flits
// inside their band's rows). Every shard boundary margin at Shards∈{2,4}
// stays inert, so the quiet-margin predicate admits concurrent sweeps
// tick after tick while a couple of hundred routers stay busy — the
// regime the sharded engine is for.
func bigMeshTrace(topo topology.Topology, horizon int64) *traffic.Trace {
	return bandTrace(topo, horizon, []int{1, 10, 18, 27}, 4)
}

// bandTrace is the shared banded-workload builder: bandRows[i] is the
// first of rowsPerBand consecutive busy router rows, each band exchanges
// band-local request/response pairs every tick, and every other row is
// silent.
func bandTrace(topo topology.Topology, horizon int64, bandRows []int, rowsPerBand int) *traffic.Trace {
	width := topo.Width()
	bands := make([][]int, 0, len(bandRows))
	for _, row0 := range bandRows {
		cores := make([]int, 0, rowsPerBand*width)
		for row := row0; row < row0+rowsPerBand; row++ {
			for x := 0; x < width; x++ {
				cores = append(cores, topo.CoreAt(topo.RouterAt(x, row), 0))
			}
		}
		bands = append(bands, cores)
	}
	tr := &traffic.Trace{Name: "banded", Cores: topo.NumCores(), Horizon: horizon}
	for t, i := int64(0), 0; t < horizon; t, i = t+1, i+1 {
		for _, cs := range bands {
			tr.Entries = append(tr.Entries,
				traffic.Entry{Time: t, Src: cs[i%len(cs)], Dst: cs[(i+21)%len(cs)], Kind: flit.Request},
				traffic.Entry{Time: t, Src: cs[(i+31)%len(cs)], Dst: cs[(i+7)%len(cs)], Kind: flit.Response})
		}
	}
	return tr
}

// BenchmarkBigMesh measures sharded concurrent sweeps on a 16x32 mesh
// (512 routers) where four distant row bands stay busy at once. The
// shards=1 sub-benchmark is the serial reference. On a multi-core host
// shards=4 should approach the sweep's Amdahl ceiling (profiling puts
// ~96% of serial time inside the partitionable sweep, so ~3.8x at four
// shards); on a single-core host (GOMAXPROCS=1) the same numbers
// measure the two-phase staging overhead instead, since the concurrent
// sweeps can only interleave.
func BenchmarkBigMesh(b *testing.B) {
	topo := topology.NewMesh(16, 32)
	tr := bigMeshTrace(topo, 10_000)
	run := func(b *testing.B, shards int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The default ShardMinActive threshold applies: banded load
			// keeps a couple of hundred routers active, well above it.
			res, err := sim.Run(sim.Config{
				Topo:   topo,
				Spec:   policy.DozzNoC(policy.ReactiveSelector{}),
				Trace:  tr,
				Shards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			if shards > 1 && res.ParallelTicks == 0 {
				b.Fatal("sharded sweep never engaged")
			}
		}
	}
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) { run(b, k) })
	}

	// 64x64 (4096 routers): the hierarchical scale-out target. The
	// banded arm spreads four four-row bands across the mesh quarters —
	// roughly a thousand busy routers with quiet margins everywhere the
	// even split cuts. The hotspot arm crowds two bands into the top
	// eighth of the mesh, so the even split both cuts through traffic and
	// leaves three shards idle; it relies on the load-aware re-split to
	// find the one quiet cut between the bands (row 8) and engage.
	big := topology.NewMesh(64, 64)
	bigTr := bandTrace(big, 6_000, []int{2, 20, 36, 54}, 4)
	runBig := func(b *testing.B, tr *traffic.Trace, shards int, wantResplit bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Topo:   big,
				Spec:   policy.DozzNoC(policy.ReactiveSelector{}),
				Trace:  tr,
				Shards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			if shards > 1 && res.ParallelTicks == 0 {
				b.Fatal("sharded sweep never engaged on the 64x64 mesh")
			}
			if wantResplit && res.ShardResplits == 0 {
				b.Fatal("load-aware re-split never engaged on the 64x64 hotspot")
			}
		}
	}
	for _, k := range []int{1, 4} {
		k := k
		b.Run(fmt.Sprintf("64x64/shards=%d", k), func(b *testing.B) { runBig(b, bigTr, k, false) })
	}
	hotTr := bandTrace(big, 6_000, []int{2, 10}, 4)
	b.Run("64x64-hotspot/shards=4", func(b *testing.B) { runBig(b, hotTr, 4, true) })
}

// BenchmarkBigMeshWire is BenchmarkBigMesh with 2-tick links, so every
// hop rides the wire and each concurrently swept tick also carries due
// landings. The shards=1 sub-benchmark is the serial reference (lane-0
// landings); at shards>1 the due transits are bucketed by destination
// shard and landed by the workers, so the delta over BenchmarkBigMesh
// isolates what moving landings off the serial fraction buys.
func BenchmarkBigMeshWire(b *testing.B) {
	topo := topology.NewMesh(16, 32)
	tr := bigMeshTrace(topo, 10_000)
	run := func(b *testing.B, shards int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Topo:      topo,
				Spec:      policy.DozzNoC(policy.ReactiveSelector{}),
				Trace:     tr,
				LinkTicks: 2,
				Shards:    shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			if shards > 1 && res.ParallelLandings == 0 {
				b.Fatal("parallel landing path never engaged")
			}
		}
	}
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) { run(b, k) })
	}
}

// BenchmarkRidgeFit measures the closed-form ridge solve on a dataset the
// size of one full training corpus row count.
func BenchmarkRidgeFit(b *testing.B) {
	s := benchSuite()
	train, err := s.MergedDataset(core.KindDozzNoC, traffic.Train)
	if err != nil {
		b.Fatal(err)
	}
	scaler := ml.FitScaler(train.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.FitRidge(train.X, train.Y, 0.1, scaler); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures synthesizing one full-size benchmark
// trace on the 8x8 mesh.
func BenchmarkTraceGeneration(b *testing.B) {
	topo := topology.NewMesh(8, 8)
	p, _ := traffic.ProfileByName("canneal")
	for i := 0; i < b.N; i++ {
		g := traffic.Generator{Topo: topo, Horizon: 60_000, Seed: int64(i + 1)}
		tr := g.Generate(p)
		if len(tr.Entries) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTableVDerived measures the mini-DSENT analytical derivation of
// Table V.
func BenchmarkTableVDerived(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TableVDerived()
		r.Write(io.Discard)
	}
}

// BenchmarkSIMOConverter measures the circuit-level SIMO simulation: cold
// start plus 200 us of steady-state regulation.
func BenchmarkSIMOConverter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := vr.NewSIMOSim(vr.DefaultSIMO())
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := s.StartupTimeUS(0.03, 500); !ok {
			b.Fatal("no regulation")
		}
		s.Run(300)
	}
}

// BenchmarkClosedLoop measures the full-system (mcsim) comparison across
// all five models on a reduced mesh.
func BenchmarkClosedLoop(b *testing.B) {
	topo := topology.NewMesh(4, 4)
	params := mcsim.DefaultSystem(topo)
	params.Core.Instructions = 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.ClosedLoop(topo, params)
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

// BenchmarkFeatureSet41 measures the DozzNoC-41 training and comparison
// pipeline on a reduced configuration.
func BenchmarkFeatureSet41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		r, err := exp.FeatureSet41(s)
		if err != nil {
			b.Fatal(err)
		}
		r.Write(io.Discard)
	}
}

// BenchmarkAblations measures the T-Idle and punch-horizon sweeps.
func BenchmarkAblations(b *testing.B) {
	topo := topology.NewMesh(4, 4)
	for i := 0; i < b.N; i++ {
		t, err := exp.TIdleSweep(topo, "fft", 6000, []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		t.Write(io.Discard)
		p, err := exp.PunchSweep(topo, "fft", 6000, []int{0, -1})
		if err != nil {
			b.Fatal(err)
		}
		p.Write(io.Discard)
	}
}
