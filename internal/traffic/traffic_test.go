package traffic

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/flit"
	"repro/internal/topology"
)

func genTrace(t *testing.T, name string, horizon int64) *Trace {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	g := Generator{Topo: topology.NewMesh(8, 8), Horizon: horizon, Seed: 7}
	return g.Generate(p)
}

func TestProfilesProtocol(t *testing.T) {
	ps := Profiles()
	if len(ps) != 14 {
		t.Fatalf("%d profiles, paper uses 14 traces", len(ps))
	}
	counts := map[Split]int{}
	names := map[string]bool{}
	for _, p := range ps {
		counts[p.Split]++
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.ReqRate <= 0 || p.ReqRate > 0.5 {
			t.Errorf("%s: implausible rate %g", p.Name, p.ReqRate)
		}
		if p.Duty <= 0 || p.Duty > 1 {
			t.Errorf("%s: bad duty %g", p.Name, p.Duty)
		}
		if p.Hotspot+p.Locality > 1 {
			t.Errorf("%s: hotspot+locality > 1", p.Name)
		}
		if p.RespFrac < 0 || p.RespFrac > 1 {
			t.Errorf("%s: bad response fraction", p.Name)
		}
		if p.Suite != "parsec" && p.Suite != "splash2" {
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
	}
	if counts[Train] != 6 || counts[Validation] != 3 || counts[Test] != 5 {
		t.Fatalf("split = %d/%d/%d, want 6/3/5", counts[Train], counts[Validation], counts[Test])
	}
}

func TestProfilesBySplit(t *testing.T) {
	if len(ProfilesBySplit(Test)) != 5 {
		t.Fatal("test split wrong")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("bogus profile found")
	}
}

func TestSplitString(t *testing.T) {
	if Train.String() != "train" || Validation.String() != "validation" || Test.String() != "test" {
		t.Error("split strings wrong")
	}
	if Split(9).String() == "" {
		t.Error("unknown split empty")
	}
}

func TestCommScalePreservesMean(t *testing.T) {
	for _, p := range Profiles() {
		if p.PhasePeriod <= 0 {
			continue
		}
		mean := p.CommFrac*p.CommScale() + (1-p.CommFrac)*p.QuietScale
		if mean < 0.999 || mean > 1.001 {
			t.Errorf("%s: phase scaling changes the mean rate by %g", p.Name, mean)
		}
	}
}

func TestRateAt(t *testing.T) {
	p, _ := ProfileByName("fft")
	comm := p.RateAt(0) // phase starts in the communication window
	quiet := p.RateAt(p.PhasePeriod - 1)
	if comm <= quiet {
		t.Fatalf("comm rate %g must exceed quiet rate %g", comm, quiet)
	}
	flat := Profile{ReqRate: 0.01}
	if flat.RateAt(123) != 0.01 {
		t.Error("unphased profile must be flat")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := genTrace(t, "fft", 5000)
	b := genTrace(t, "fft", 5000)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p, _ := ProfileByName("fft")
	g1 := Generator{Topo: topology.NewMesh(8, 8), Horizon: 5000, Seed: 1}
	g2 := Generator{Topo: topology.NewMesh(8, 8), Horizon: 5000, Seed: 2}
	a, b := g1.Generate(p), g2.Generate(p)
	if len(a.Entries) == len(b.Entries) {
		same := true
		for i := range a.Entries {
			if a.Entries[i] != b.Entries[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGeneratedTraceValid(t *testing.T) {
	for _, name := range []string{"fft", "blackscholes", "streamcluster"} {
		tr := genTrace(t, name, 8000)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Entries) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
	}
}

func TestGeneratedLoadTracksProfile(t *testing.T) {
	// The realized request rate should be within 2x of the profile mean
	// (phases and bursts add variance over short horizons).
	for _, name := range []string{"fft", "canneal"} {
		p, _ := ProfileByName(name)
		tr := genTrace(t, name, 40000)
		s := tr.Summarize()
		reqRate := float64(s.Requests) / (float64(tr.Horizon) * 64)
		if reqRate < p.ReqRate/2 || reqRate > p.ReqRate*2 {
			t.Errorf("%s: realized %g vs profile %g", name, reqRate, p.ReqRate)
		}
	}
}

func TestResponsesFollowRequests(t *testing.T) {
	tr := genTrace(t, "fft", 5000)
	s := tr.Summarize()
	p, _ := ProfileByName("fft")
	frac := float64(s.Responses) / float64(s.Requests)
	if frac < p.RespFrac-0.1 || frac > p.RespFrac+0.1 {
		t.Fatalf("response fraction %g, profile %g", frac, p.RespFrac)
	}
}

func TestCompress(t *testing.T) {
	tr := genTrace(t, "fft", 5000)
	c := tr.Compress(4)
	if c.Horizon != tr.Horizon/4 {
		t.Errorf("compressed horizon = %d", c.Horizon)
	}
	if len(c.Entries) != len(tr.Entries) {
		t.Fatal("compression changed packet count")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s, cs := tr.Summarize(), c.Summarize()
	if cs.FlitRate < 3*s.FlitRate {
		t.Errorf("x4 compression raised flit rate only %gx", cs.FlitRate/s.FlitRate)
	}
}

func TestCompressBadFactorPanics(t *testing.T) {
	tr := &Trace{Cores: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 did not panic")
		}
	}()
	tr.Compress(0)
}

func TestValidateRejects(t *testing.T) {
	bad := []*Trace{
		{Cores: 4, Entries: []Entry{{Time: 0, Src: 4, Dst: 0}}},
		{Cores: 4, Entries: []Entry{{Time: 0, Src: 0, Dst: 0}}},
		{Cores: 4, Entries: []Entry{{Time: 5, Src: 0, Dst: 1}, {Time: 1, Src: 1, Dst: 2}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	tr := &Trace{Cores: 4}
	s := tr.Summarize()
	if s.Packets != 0 || s.Flits != 0 {
		t.Fatal("empty trace summary wrong")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := genTrace(t, "lu", 3000)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Cores != tr.Cores || got.Horizon != tr.Horizon {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != len(tr.Entries) {
		t.Fatalf("entry count %d vs %d", len(got.Entries), len(tr.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != tr.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := genTrace(t, "lu", 2000)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tr.Name, tr.Cores)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(tr.Entries) {
		t.Fatalf("entry count %d vs %d", len(got.Entries), len(tr.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i] != tr.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestCSVRejectsBadKind(t *testing.T) {
	csv := "time,src,dst,kind\n0,0,1,bogus\n"
	if _, err := ReadCSV(bytes.NewReader([]byte(csv)), "x", 4); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestSyntheticPatterns(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	for _, p := range []Pattern{UniformRandom, Transpose, BitComplement, Hotspot, Neighbor} {
		tr := Synthetic(topo, p, 0.01, 2000, 1)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(tr.Entries) == 0 {
			t.Fatalf("%v: empty", p)
		}
		for _, e := range tr.Entries {
			if e.Kind != flit.Request {
				t.Fatalf("%v: synthetic traces are request-only", p)
			}
		}
	}
}

func TestTransposeDestinations(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	tr := Synthetic(topo, Transpose, 0.05, 500, 1)
	for _, e := range tr.Entries {
		sx, sy := topo.Coord(topo.RouterOf(e.Src))
		dx, dy := topo.Coord(topo.RouterOf(e.Dst))
		if dx != sy || dy != sx {
			t.Fatalf("transpose sent (%d,%d) -> (%d,%d)", sx, sy, dx, dy)
		}
	}
}

func TestNeighborDestinations(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := Synthetic(topo, Neighbor, 0.05, 500, 1)
	for _, e := range tr.Entries {
		if e.Dst != (e.Src+1)%topo.NumCores() {
			t.Fatalf("neighbor sent %d -> %d", e.Src, e.Dst)
		}
	}
}

func TestHotspotDestinations(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := Synthetic(topo, Hotspot, 0.05, 500, 1)
	corners := map[int]bool{
		topo.CoreAt(topo.RouterAt(0, 0), 0): true,
		topo.CoreAt(topo.RouterAt(3, 0), 0): true,
		topo.CoreAt(topo.RouterAt(0, 3), 0): true,
		topo.CoreAt(topo.RouterAt(3, 3), 0): true,
	}
	for _, e := range tr.Entries {
		if !corners[e.Dst] {
			t.Fatalf("hotspot sent to non-corner %d", e.Dst)
		}
	}
}

func TestSyntheticBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 did not panic")
		}
	}()
	Synthetic(topology.NewMesh(4, 4), UniformRandom, 0, 100, 1)
}

func TestPatternString(t *testing.T) {
	if UniformRandom.String() != "uniform" || Pattern(99).String() == "" {
		t.Error("pattern strings wrong")
	}
}

func TestParetoPhases(t *testing.T) {
	p, _ := ProfileByName("fft")
	p.Name = "fft-heavy"
	p.TailAlpha = 1.5
	g := Generator{Topo: topology.NewMesh(8, 8), Horizon: 40000, Seed: 7}
	tr := g.Generate(p)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) == 0 {
		t.Fatal("empty heavy-tailed trace")
	}
	// Long-run rate stays near the profile mean despite the heavy tail.
	s := tr.Summarize()
	reqRate := float64(s.Requests) / (float64(tr.Horizon) * 64)
	if reqRate < p.ReqRate/3 || reqRate > p.ReqRate*3 {
		t.Errorf("heavy-tailed realized rate %g vs profile %g", reqRate, p.ReqRate)
	}
	// And the trace differs from the geometric one (the tail matters).
	geo := genTrace(t, "fft", 40000)
	if len(geo.Entries) == len(tr.Entries) {
		same := true
		for i := range geo.Entries {
			if geo.Entries[i] != tr.Entries[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("TailAlpha had no effect")
		}
	}
}

func TestParetoHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(pareto(rng, 100, 1.8))
	}
	mean := sum / n
	// The bounded Pareto mean lands near the requested mean (within 30%).
	if mean < 70 || mean > 160 {
		t.Fatalf("pareto mean = %g, want ~100", mean)
	}
	// Degenerate parameters fall back to geometric.
	if v := pareto(rng, 0.5, 1.5); v < 1 {
		t.Fatal("tiny mean must yield >= 1")
	}
}
