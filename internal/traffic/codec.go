package traffic

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/flit"
)

// Binary trace format:
//
//	magic   [4]byte  "DZNT"
//	version uint16   (1)
//	cores   uint32
//	horizon int64
//	nameLen uint16, name bytes
//	count   uint64
//	entries: time int64, src uint32, dst uint32, kind uint8
//
// All integers little-endian.

var traceMagic = [4]byte{'D', 'Z', 'N', 'T'}

const traceVersion = 1

// WriteBinary serializes a trace in the binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	hdr := []any{
		uint16(traceVersion),
		uint32(t.Cores),
		t.Horizon,
		uint16(len(t.Name)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Entries))); err != nil {
		return err
	}
	for _, e := range t.Entries {
		if err := binary.Write(bw, binary.LittleEndian, e.Time); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.Src)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e.Dst)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint8(e.Kind)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace from the binary format.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("traffic: read magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("traffic: bad magic %q", magic)
	}
	var version uint16
	var cores uint32
	var horizon int64
	var nameLen uint16
	for _, p := range []any{&version, &cores, &horizon, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("traffic: read header: %w", err)
		}
	}
	if version != traceVersion {
		return nil, fmt.Errorf("traffic: unsupported trace version %d", version)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("traffic: read name: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("traffic: read count: %w", err)
	}
	// Never trust the declared count for allocation: grow as entries
	// actually arrive, so a corrupt header fails with a read error
	// instead of exhausting memory.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Name: string(name), Cores: int(cores), Horizon: horizon, Entries: make([]Entry, 0, prealloc)}
	for i := uint64(0); i < count; i++ {
		var e Entry
		var src, dst uint32
		var kind uint8
		if err := binary.Read(br, binary.LittleEndian, &e.Time); err != nil {
			return nil, fmt.Errorf("traffic: read entry %d: %w", i, err)
		}
		for _, p := range []any{&src, &dst, &kind} {
			if err := binary.Read(br, binary.LittleEndian, p); err != nil {
				return nil, fmt.Errorf("traffic: read entry %d: %w", i, err)
			}
		}
		e.Src = int(src)
		e.Dst = int(dst)
		e.Kind = flit.Kind(kind)
		t.Entries = append(t.Entries, e)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteCSV serializes a trace as "time,src,dst,kind" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "src", "dst", "kind"}); err != nil {
		return err
	}
	for _, e := range t.Entries {
		rec := []string{
			strconv.FormatInt(e.Time, 10),
			strconv.Itoa(e.Src),
			strconv.Itoa(e.Dst),
			e.Kind.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace from the CSV format; name/cores/horizon must be
// supplied since the CSV carries only entries.
func ReadCSV(r io.Reader, name string, cores int) (*Trace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traffic: read csv: %w", err)
	}
	t := &Trace{Name: name, Cores: cores}
	for i, rec := range recs {
		if i == 0 && rec[0] == "time" {
			continue // header
		}
		if len(rec) != 4 {
			return nil, fmt.Errorf("traffic: csv row %d has %d fields", i, len(rec))
		}
		tm, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: csv row %d time: %w", i, err)
		}
		src, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: csv row %d src: %w", i, err)
		}
		dst, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("traffic: csv row %d dst: %w", i, err)
		}
		var kind flit.Kind
		switch rec[3] {
		case "request":
			kind = flit.Request
		case "response":
			kind = flit.Response
		default:
			return nil, fmt.Errorf("traffic: csv row %d kind %q", i, rec[3])
		}
		t.Entries = append(t.Entries, Entry{Time: tm, Src: src, Dst: dst, Kind: kind})
		if tm > t.Horizon {
			t.Horizon = tm
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
