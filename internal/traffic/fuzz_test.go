package traffic

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

func fuzzTopo() topology.Topology { return topology.NewMesh(8, 8) }

// encodeBinary serializes a trace without validating it (WriteBinary
// never validates), producing well-formed bytes carrying invalid
// content — exactly what the decoder must reject rather than accept or
// panic on.
func encodeBinary(f *testing.F, tr *Trace) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// invalidTraces enumerates decodable-but-invalid traces: every one must
// come back from ReadBinary as an error, never a trace and never a
// panic.
func invalidTraces() map[string]*Trace {
	return map[string]*Trace{
		"out-of-range-src": {Name: "bad", Cores: 64, Horizon: 100,
			Entries: []Entry{{Time: 1, Src: 64, Dst: 0}}},
		"out-of-range-dst": {Name: "bad", Cores: 64, Horizon: 100,
			Entries: []Entry{{Time: 1, Src: 0, Dst: 1 << 20}}},
		"negative-src": {Name: "bad", Cores: 64, Horizon: 100,
			Entries: []Entry{{Time: 1, Src: -1, Dst: 3}}},
		"self-send": {Name: "bad", Cores: 64, Horizon: 100,
			Entries: []Entry{{Time: 1, Src: 5, Dst: 5}}},
		"non-monotonic-time": {Name: "bad", Cores: 64, Horizon: 100,
			Entries: []Entry{{Time: 9, Src: 0, Dst: 1}, {Time: 3, Src: 1, Dst: 2}}},
		"negative-time": {Name: "bad", Cores: 64, Horizon: 100,
			Entries: []Entry{{Time: -7, Src: 0, Dst: 1}}},
	}
}

// FuzzReadBinary hardens the binary trace decoder against corrupt input:
// it must return an error or a valid trace, never panic.
func FuzzReadBinary(f *testing.F) {
	tr := Synthetic(fuzzTopo(), UniformRandom, 0.02, 500, 1)
	f.Add(encodeBinary(f, tr))
	f.Add([]byte("DZNT"))
	f.Add([]byte{})
	// Zero-length trace: structurally valid, zero entries.
	f.Add(encodeBinary(f, &Trace{Name: "empty", Cores: 64, Horizon: 0}))
	// Well-formed encodings of invalid content.
	for _, bad := range invalidTraces() {
		f.Add(encodeBinary(f, bad))
	}
	// A header whose declared entry count vastly exceeds the payload: must
	// fail with a read error, not allocate terabytes.
	huge := encodeBinary(f, &Trace{Name: "huge", Cores: 64, Horizon: 1})
	copy(huge[len(huge)-8:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
	})
}

// FuzzReadCSV does the same for the CSV decoder.
func FuzzReadCSV(f *testing.F) {
	tr := Synthetic(fuzzTopo(), UniformRandom, 0.02, 200, 1)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("time,src,dst,kind\n0,0,1,request\n")
	f.Add("garbage")
	f.Add("time,src,dst,kind\n")                               // zero-length trace
	f.Add("time,src,dst,kind\n0,999,1,request\n")              // out-of-range src
	f.Add("time,src,dst,kind\n0,0,-3,response\n")              // negative dst
	f.Add("time,src,dst,kind\n0,4,4,request\n")                // self-send
	f.Add("time,src,dst,kind\n9,0,1,request\n3,1,2,request\n") // non-monotonic
	f.Add("time,src,dst,kind\n-5,0,1,request\n")               // negative time
	f.Add("time,src,dst,kind\n0,0,1,banana\n")                 // unknown kind
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadCSV(bytes.NewReader([]byte(data)), "fuzz", 64)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
	})
}

// TestReadBinaryRejectsInvalid pins the decoder's behavior on every
// well-formed encoding of invalid content from the fuzz corpus: an error
// return, never a panic, never silent acceptance.
func TestReadBinaryRejectsInvalid(t *testing.T) {
	for name, bad := range invalidTraces() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := bad.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			if got, err := ReadBinary(&buf); err == nil {
				t.Fatalf("decoder accepted invalid trace (%d entries)", len(got.Entries))
			}
		})
	}
}

// TestReadBinaryEmptyTrace pins that a structurally valid zero-entry
// trace round-trips (empty is a legal workload, not an error).
func TestReadBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	src := &Trace{Name: "empty", Cores: 64, Horizon: 0}
	if err := src.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 || got.Cores != 64 || got.Name != "empty" {
		t.Fatalf("round-trip mangled empty trace: %+v", got)
	}
}

// TestReadBinaryHugeCount pins that a header declaring far more entries
// than the payload carries fails with a read error instead of trying to
// allocate for the declared count.
func TestReadBinaryHugeCount(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{Name: "huge", Cores: 64, Horizon: 1}).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	copy(data[len(data)-8:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("decoder accepted a trace whose declared count exceeds the payload")
	}
}
