package traffic

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

func fuzzTopo() topology.Topology { return topology.NewMesh(8, 8) }

// FuzzReadBinary hardens the binary trace decoder against corrupt input:
// it must return an error or a valid trace, never panic.
func FuzzReadBinary(f *testing.F) {
	tr := Synthetic(fuzzTopo(), UniformRandom, 0.02, 500, 1)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("DZNT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
	})
}

// FuzzReadCSV does the same for the CSV decoder.
func FuzzReadCSV(f *testing.F) {
	tr := Synthetic(fuzzTopo(), UniformRandom, 0.02, 200, 1)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("time,src,dst,kind\n0,0,1,request\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadCSV(bytes.NewReader([]byte(data)), "fuzz", 64)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
	})
}
