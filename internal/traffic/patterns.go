package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/topology"
)

// Pattern is a classic synthetic destination pattern used for sanity and
// ablation studies alongside the benchmark profiles.
type Pattern uint8

const (
	// UniformRandom picks destinations uniformly.
	UniformRandom Pattern = iota
	// Transpose sends core (x, y) to core (y, x).
	Transpose
	// BitComplement sends core i to core ^i (mod cores).
	BitComplement
	// Hotspot sends everything to the four corner cores.
	Hotspot
	// Neighbor sends to the next core in row-major order.
	Neighbor
)

// String names a pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bitcomp"
	case Hotspot:
		return "hotspot"
	case Neighbor:
		return "neighbor"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// Synthetic generates a Bernoulli-injection trace with a fixed pattern at
// rate packets/core/tick over horizon ticks. Every packet is a request
// (no responses), matching how synthetic patterns are normally driven.
func Synthetic(topo topology.Topology, p Pattern, rate float64, horizon, seed int64) *Trace {
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("traffic: bad synthetic rate %g", rate))
	}
	rng := rand.New(rand.NewSource(seed))
	cores := topo.NumCores()
	tr := &Trace{Name: fmt.Sprintf("%v-%.3f", p, rate), Cores: cores, Horizon: horizon}
	for t := int64(0); t < horizon; t++ {
		for c := 0; c < cores; c++ {
			if rng.Float64() >= rate {
				continue
			}
			d := destFor(topo, p, c, rng)
			if d == c {
				continue
			}
			tr.Entries = append(tr.Entries, Entry{Time: t, Src: c, Dst: d, Kind: flit.Request})
		}
	}
	tr.SortEntries()
	return tr
}

func destFor(topo topology.Topology, p Pattern, src int, rng *rand.Rand) int {
	cores := topo.NumCores()
	switch p {
	case Transpose:
		r := topo.RouterOf(src)
		x, y := topo.Coord(r)
		tr := topo.RouterAt(y, x)
		if tr < 0 {
			return src
		}
		return topo.CoreAt(tr, topo.LocalPort(src))
	case BitComplement:
		nbits := bits.Len(uint(cores - 1))
		return (^src) & ((1 << nbits) - 1) % cores
	case Hotspot:
		corners := []int{
			topo.CoreAt(topo.RouterAt(0, 0), 0),
			topo.CoreAt(topo.RouterAt(topo.Width()-1, 0), 0),
			topo.CoreAt(topo.RouterAt(0, topo.Height()-1), 0),
			topo.CoreAt(topo.RouterAt(topo.Width()-1, topo.Height()-1), 0),
		}
		return corners[rng.Intn(len(corners))]
	case Neighbor:
		return (src + 1) % cores
	default: // UniformRandom
		for {
			d := rng.Intn(cores)
			if d != src {
				return d
			}
		}
	}
}
