package traffic

import "fmt"

// Split labels a benchmark's role in the ML pipeline. The paper uses 14
// traces: 6 for training, 3 for validation, 5 for testing.
type Split uint8

const (
	Train Split = iota
	Validation
	Test
)

// String renders a split.
func (s Split) String() string {
	switch s {
	case Train:
		return "train"
	case Validation:
		return "validation"
	case Test:
		return "test"
	}
	return fmt.Sprintf("Split(%d)", uint8(s))
}

// Profile parameterizes the synthetic generator for one benchmark. The
// values below are chosen per benchmark class: compute-bound codes
// (blackscholes, swaptions) inject rarely with long quiet phases, giving
// power-gating headroom; memory-bound codes (canneal, streamcluster, radix
// -like) sustain higher, burstier loads that exercise DVFS.
type Profile struct {
	Name  string
	Suite string // "parsec" or "splash2"
	Split Split

	// ReqRate is the long-run average request injection rate per core in
	// packets per base tick (load is ReqRate*(1+RespFrac*5) flits).
	ReqRate float64
	// Duty is the fraction of time a core spends in its ON phase;
	// injections only occur while ON, at rate ReqRate/Duty.
	Duty float64
	// OnMean is the mean ON-phase length in ticks (geometric); the OFF
	// phase mean is derived from Duty.
	OnMean int
	// Hotspot is the probability a request targets a memory-controller
	// corner core.
	Hotspot float64
	// Locality is the probability a non-hotspot request targets a core
	// within LocalRadius router hops of the sender.
	Locality float64
	// RespFrac is the fraction of requests that produce a response
	// (reads vs writes).
	RespFrac float64
	// RespDelay is the destination service time in ticks before the
	// response is injected.
	RespDelay int

	// TailAlpha, when positive, draws ON/OFF phase lengths from a
	// Pareto-like heavy-tailed distribution with this shape parameter
	// instead of the default geometric — producing the self-similar
	// burst structure measured in real multiprocessor traffic. Values in
	// (1, 2] give infinite-variance bursts; 0 keeps geometric phases.
	TailAlpha float64

	// Global program-phase structure: parallel codes alternate
	// communication-heavy windows (after barriers, during exchanges) with
	// compute windows where the network goes nearly silent. PhasePeriod
	// is the period in ticks; CommFrac the fraction of it spent in the
	// communication window; QuietScale the injection-rate multiplier
	// during the compute window. The communication-window rate is boosted
	// so the long-run average stays at ReqRate. A zero PhasePeriod
	// disables phasing.
	PhasePeriod int64
	CommFrac    float64
	QuietScale  float64
}

// CommScale returns the injection-rate multiplier during the
// communication window that preserves the long-run mean rate.
func (p Profile) CommScale() float64 {
	if p.PhasePeriod <= 0 || p.CommFrac <= 0 || p.CommFrac >= 1 {
		return 1
	}
	return (1 - p.QuietScale*(1-p.CommFrac)) / p.CommFrac
}

// RateAt returns the instantaneous request rate per core at tick t.
func (p Profile) RateAt(t int64) float64 {
	if p.PhasePeriod <= 0 {
		return p.ReqRate
	}
	if float64(t%p.PhasePeriod) < p.CommFrac*float64(p.PhasePeriod) {
		return p.ReqRate * p.CommScale()
	}
	return p.ReqRate * p.QuietScale
}

// LocalRadius is the Manhattan radius defining "local" destinations.
const LocalRadius = 2

// Profiles returns the 14 benchmark profiles in a stable order:
// 6 training, 3 validation, 5 test, matching the paper's protocol.
func Profiles() []Profile {
	return []Profile{
		// --- training (6) ---
		{Name: "blackscholes", Suite: "parsec", Split: Train,
			ReqRate: 0.0022, Duty: 0.40, OnMean: 900, Hotspot: 0.20, Locality: 0.35, RespFrac: 0.85, RespDelay: 90,
			PhasePeriod: 16000, CommFrac: 0.10, QuietScale: 0.042},
		{Name: "bodytrack", Suite: "parsec", Split: Train,
			ReqRate: 0.0050, Duty: 0.55, OnMean: 700, Hotspot: 0.25, Locality: 0.30, RespFrac: 0.80, RespDelay: 90,
			PhasePeriod: 12000, CommFrac: 0.15, QuietScale: 0.104},
		{Name: "canneal", Suite: "parsec", Split: Train,
			ReqRate: 0.0117, Duty: 0.85, OnMean: 2000, Hotspot: 0.30, Locality: 0.10, RespFrac: 0.90, RespDelay: 110,
			PhasePeriod: 20000, CommFrac: 0.30, QuietScale: 0.312},
		{Name: "dedup", Suite: "parsec", Split: Train,
			ReqRate: 0.0072, Duty: 0.60, OnMean: 800, Hotspot: 0.20, Locality: 0.40, RespFrac: 0.75, RespDelay: 90,
			PhasePeriod: 10000, CommFrac: 0.18, QuietScale: 0.125},
		{Name: "ferret", Suite: "parsec", Split: Train,
			ReqRate: 0.0090, Duty: 0.70, OnMean: 1200, Hotspot: 0.25, Locality: 0.30, RespFrac: 0.80, RespDelay: 100,
			PhasePeriod: 14000, CommFrac: 0.22, QuietScale: 0.166},
		{Name: "fluidanimate", Suite: "parsec", Split: Train,
			ReqRate: 0.0040, Duty: 0.50, OnMean: 1000, Hotspot: 0.15, Locality: 0.55, RespFrac: 0.80, RespDelay: 90,
			PhasePeriod: 18000, CommFrac: 0.12, QuietScale: 0.062},
		// --- validation (3) ---
		{Name: "freqmine", Suite: "parsec", Split: Validation,
			ReqRate: 0.0061, Duty: 0.55, OnMean: 900, Hotspot: 0.20, Locality: 0.35, RespFrac: 0.85, RespDelay: 95,
			PhasePeriod: 13000, CommFrac: 0.16, QuietScale: 0.125},
		{Name: "streamcluster", Suite: "parsec", Split: Validation,
			ReqRate: 0.0135, Duty: 0.90, OnMean: 2500, Hotspot: 0.35, Locality: 0.10, RespFrac: 0.90, RespDelay: 110,
			PhasePeriod: 24000, CommFrac: 0.35, QuietScale: 0.374},
		{Name: "swaptions", Suite: "parsec", Split: Validation,
			ReqRate: 0.0025, Duty: 0.40, OnMean: 1100, Hotspot: 0.15, Locality: 0.45, RespFrac: 0.80, RespDelay: 85,
			PhasePeriod: 18000, CommFrac: 0.10, QuietScale: 0.042},
		// --- test (5) ---
		{Name: "vips", Suite: "parsec", Split: Test,
			ReqRate: 0.0065, Duty: 0.60, OnMean: 800, Hotspot: 0.25, Locality: 0.30, RespFrac: 0.80, RespDelay: 95,
			PhasePeriod: 12000, CommFrac: 0.18, QuietScale: 0.125},
		{Name: "x264", Suite: "parsec", Split: Test,
			ReqRate: 0.0086, Duty: 0.55, OnMean: 600, Hotspot: 0.25, Locality: 0.35, RespFrac: 0.75, RespDelay: 90,
			PhasePeriod: 9000, CommFrac: 0.20, QuietScale: 0.166},
		{Name: "barnes", Suite: "splash2", Split: Test,
			ReqRate: 0.0054, Duty: 0.50, OnMean: 1000, Hotspot: 0.20, Locality: 0.45, RespFrac: 0.85, RespDelay: 95,
			PhasePeriod: 15000, CommFrac: 0.14, QuietScale: 0.083},
		{Name: "fft", Suite: "splash2", Split: Test,
			ReqRate: 0.0108, Duty: 0.65, OnMean: 600, Hotspot: 0.20, Locality: 0.15, RespFrac: 0.90, RespDelay: 100,
			PhasePeriod: 10000, CommFrac: 0.25, QuietScale: 0.208},
		{Name: "lu", Suite: "splash2", Split: Test,
			ReqRate: 0.0036, Duty: 0.45, OnMean: 1300, Hotspot: 0.15, Locality: 0.50, RespFrac: 0.85, RespDelay: 90,
			PhasePeriod: 17000, CommFrac: 0.11, QuietScale: 0.062},
	}
}

// ProfilesBySplit filters Profiles by split.
func ProfilesBySplit(s Split) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Split == s {
			out = append(out, p)
		}
	}
	return out
}

// ProfileByName looks a profile up by name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
