// Package traffic provides the workload substrate: the trace format the
// network simulator consumes (source, destination, request/response kind,
// injection time — the fields the paper's Multi2Sim traces carry), a
// deterministic synthetic generator with one profile per PARSEC/SPLASH-2
// benchmark, classic synthetic patterns for sanity studies, and binary/CSV
// codecs.
//
// The paper gathered 14 trace files from a full-system simulator; this
// repository substitutes synthetic traces whose statistical shape (average
// load, ON/OFF burst structure, spatial locality, hotspotting toward
// memory controllers, request/response mix) is parameterized per benchmark
// class. Power-management results depend on exactly those properties —
// idleness drives power-gating, load variability drives DVFS — so the
// substitution preserves the behaviors under study (see DESIGN.md §2).
package traffic

import (
	"fmt"
	"sort"

	"repro/internal/flit"
)

// Entry is one trace record: a packet injected at a core at a given time.
type Entry struct {
	Time int64 // injection time in base ticks
	Src  int   // source core
	Dst  int   // destination core
	Kind flit.Kind
}

// Trace is an ordered packet trace for a fixed number of cores.
type Trace struct {
	Name    string
	Cores   int
	Horizon int64 // last generation tick (entries may slightly exceed it
	// due to response service delays)
	Entries []Entry
}

// SortEntries orders entries by time (stable on ties, keeping generation
// order deterministic).
func (t *Trace) SortEntries() {
	sort.SliceStable(t.Entries, func(i, j int) bool { return t.Entries[i].Time < t.Entries[j].Time })
}

// Validate checks entry sanity against the core count.
func (t *Trace) Validate() error {
	last := int64(-1)
	for i, e := range t.Entries {
		if e.Src < 0 || e.Src >= t.Cores || e.Dst < 0 || e.Dst >= t.Cores {
			return fmt.Errorf("traffic: entry %d has cores (%d,%d) outside [0,%d)", i, e.Src, e.Dst, t.Cores)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("traffic: entry %d sends core %d to itself", i, e.Src)
		}
		if e.Time < last {
			return fmt.Errorf("traffic: entry %d out of order (%d after %d)", i, e.Time, last)
		}
		last = e.Time
	}
	return nil
}

// Compress returns a copy of the trace with every injection time divided
// by factor — the paper's "compressed" traces, which raise offered load by
// squeezing the same packets into less time.
func (t *Trace) Compress(factor int64) *Trace {
	if factor < 1 {
		panic(fmt.Sprintf("traffic: bad compression factor %d", factor))
	}
	out := &Trace{
		Name:    fmt.Sprintf("%s/c%d", t.Name, factor),
		Cores:   t.Cores,
		Horizon: t.Horizon / factor,
		Entries: make([]Entry, len(t.Entries)),
	}
	for i, e := range t.Entries {
		e.Time /= factor
		out.Entries[i] = e
	}
	out.SortEntries()
	return out
}

// Stats summarizes a trace.
type Stats struct {
	Packets    int
	Requests   int
	Responses  int
	Flits      int64
	Span       int64   // ticks from first to last entry
	FlitRate   float64 // flits per core per tick over the span
	PacketRate float64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	s := Stats{Packets: len(t.Entries)}
	if len(t.Entries) == 0 {
		return s
	}
	for _, e := range t.Entries {
		if e.Kind == flit.Request {
			s.Requests++
		} else {
			s.Responses++
		}
		s.Flits += int64(e.Kind.Flits())
	}
	s.Span = t.Entries[len(t.Entries)-1].Time - t.Entries[0].Time + 1
	den := float64(s.Span) * float64(t.Cores)
	s.FlitRate = float64(s.Flits) / den
	s.PacketRate = float64(s.Packets) / den
	return s
}
