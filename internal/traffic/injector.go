// Event-horizon injection watermark. The engine's fast-forward path used
// to be disabled whenever a closed-loop Workload was attached, because an
// opaque Tick callback might inject at any base tick. NextInjector is the
// optional contract that re-enables it: a workload that can predict its
// own next injection opportunity (and replay the accounting of a skipped
// idle window in closed form) lets the engine jump over the quiet ticks
// in between. Replay is the trace-shaped reference implementation; the
// mcsim multicore model implements the same interface over its pipeline
// credit arithmetic.
package traffic

import (
	"math"

	"repro/internal/flit"
)

// NoPendingInjection is the sentinel NextInjectionTick returns when the
// source will never inject again (absent future deliveries). Chosen as
// MaxInt64 so callers can fold it with min() against other watermarks
// without a special case.
const NoPendingInjection = int64(math.MaxInt64)

// NextInjector is the optional event-horizon contract for closed-loop
// workloads (sim.Workload implementations). When a workload also
// implements NextInjector, the engine keeps fast-forward enabled: instead
// of calling Tick on every base tick it may skip a window [now, now+delta)
// during which the workload promises to neither inject nor change its
// Done status, then call SkipTicks so the workload's internal accounting
// (retirement, phase credit) advances by the same closed form.
type NextInjector interface {
	// NextInjectionTick returns the earliest tick >= now at which Tick
	// may inject a packet or Done may change, assuming no deliveries are
	// observed before then (a delivery re-runs the horizon computation,
	// so the promise only needs to hold while the network hands nothing
	// back). Returning now means "this very tick" and disables skipping;
	// NoPendingInjection means "never again without a delivery".
	NextInjectionTick(now int64) int64
	// SkipTicks informs the workload that the engine skipped the window
	// [now, now+delta) without calling Tick: the workload must advance
	// whatever per-tick accounting Tick would have performed, in closed
	// form, such that its observable behavior from now+delta onward is
	// bit-identical to having been ticked eagerly. The engine only calls
	// it with delta bounded by NextInjectionTick(now) - now.
	SkipTicks(now, delta int64)
}

// Replay is a Workload adapter over a sorted trace: it injects each
// entry at its stamped time and is Done when the cursor is exhausted.
// Primarily a reference NextInjector (its watermark is just the next
// entry's timestamp) and a harness for driving the Workload code path
// with trace-shaped traffic in tests; production trace runs use the
// engine's native cursor, which shares the same closed form.
type Replay struct {
	trace   *Trace
	cursor  int
	packets int64
}

// NewReplay wraps a trace (entries must be time-sorted, as Validate
// requires) in a replay workload.
func NewReplay(tr *Trace) *Replay { return &Replay{trace: tr} }

// Tick injects every entry stamped at or before now.
func (w *Replay) Tick(now int64, inject func(p *flit.Packet)) {
	for w.cursor < len(w.trace.Entries) {
		en := w.trace.Entries[w.cursor]
		if en.Time > now {
			break
		}
		inject(flit.New(0, en.Src, en.Dst, en.Kind, now))
		w.cursor++
	}
}

// PacketDelivered counts deliveries; replay traffic is open-loop, so
// nothing stalls on them.
func (w *Replay) PacketDelivered(p *flit.Packet, core int, now int64) {
	w.packets++
}

// Done reports whether every entry has been injected.
func (w *Replay) Done() bool { return w.cursor >= len(w.trace.Entries) }

// Delivered returns the number of packets delivered back to the replay.
func (w *Replay) Delivered() int64 { return w.packets }

// NextInjectionTick returns the next entry's timestamp (clamped to now),
// or NoPendingInjection once the trace is exhausted.
func (w *Replay) NextInjectionTick(now int64) int64 {
	if w.cursor >= len(w.trace.Entries) {
		return NoPendingInjection
	}
	if t := w.trace.Entries[w.cursor].Time; t > now {
		return t
	}
	return now
}

// SkipTicks is a no-op: replay holds no per-tick accounting between
// entries.
func (w *Replay) SkipTicks(now, delta int64) {}
