package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/topology"
)

// Generator synthesizes a Trace from a Profile on a topology. All
// randomness comes from a seeded PRNG, so a (profile, topology, horizon,
// seed) tuple always yields the identical trace.
type Generator struct {
	Topo    topology.Topology
	Horizon int64
	Seed    int64
}

// Generate produces the trace for one profile.
func (g Generator) Generate(p Profile) *Trace {
	if g.Horizon <= 0 {
		panic(fmt.Sprintf("traffic: non-positive horizon %d", g.Horizon))
	}
	rng := rand.New(rand.NewSource(g.Seed ^ int64(hashName(p.Name))))
	cores := g.Topo.NumCores()
	tr := &Trace{Name: p.Name, Cores: cores, Horizon: g.Horizon}

	hotspots := g.hotspotCores()
	locals := g.localCores()

	// Per-core ON/OFF phase state.
	onLeft := make([]int64, cores)  // remaining ON ticks; 0 while OFF
	offLeft := make([]int64, cores) // remaining OFF ticks; 0 while ON
	offMean := float64(p.OnMean) * (1 - p.Duty) / p.Duty
	phaseLen := func(mean float64) int64 { return geometric(rng, mean) }
	if p.TailAlpha > 0 {
		phaseLen = func(mean float64) int64 { return pareto(rng, mean, p.TailAlpha) }
	}
	for c := 0; c < cores; c++ {
		// Start each core at a random point of its cycle.
		if rng.Float64() < p.Duty {
			onLeft[c] = phaseLen(float64(p.OnMean))
		} else {
			offLeft[c] = phaseLen(offMean)
		}
	}

	for t := int64(0); t < g.Horizon; t++ {
		// Global program phase: per-tick rate scaled by the shared
		// compute/communicate window, on top of per-core ON/OFF bursts.
		pOn := p.RateAt(t) / p.Duty
		if pOn > 1 {
			pOn = 1
		}
		for c := 0; c < cores; c++ {
			if offLeft[c] > 0 {
				offLeft[c]--
				if offLeft[c] == 0 {
					onLeft[c] = phaseLen(float64(p.OnMean))
				}
				continue
			}
			if onLeft[c] > 0 {
				onLeft[c]--
				if onLeft[c] == 0 {
					offLeft[c] = phaseLen(offMean)
				}
			}
			if rng.Float64() >= pOn {
				continue
			}
			dst := g.pickDest(rng, p, c, hotspots, locals)
			tr.Entries = append(tr.Entries, Entry{Time: t, Src: c, Dst: dst, Kind: flit.Request})
			if rng.Float64() < p.RespFrac {
				// The destination answers after its service delay plus a
				// rough network transit estimate, mirroring how the
				// paper's traces carry responses as separate entries.
				transit := int64(2 * topology.Hops(g.Topo, c, dst))
				respAt := t + int64(p.RespDelay) + transit
				tr.Entries = append(tr.Entries, Entry{Time: respAt, Src: dst, Dst: c, Kind: flit.Response})
			}
		}
	}
	tr.SortEntries()
	return tr
}

// hotspotCores returns one core per corner router — the synthetic stand-in
// for memory-controller locations.
func (g Generator) hotspotCores() []int {
	t := g.Topo
	corners := []int{
		t.RouterAt(0, 0),
		t.RouterAt(t.Width()-1, 0),
		t.RouterAt(0, t.Height()-1),
		t.RouterAt(t.Width()-1, t.Height()-1),
	}
	cores := make([]int, len(corners))
	for i, r := range corners {
		cores[i] = t.CoreAt(r, 0)
	}
	return cores
}

// localCores precomputes, per core, the candidate destinations within
// LocalRadius router hops.
func (g Generator) localCores() [][]int {
	t := g.Topo
	out := make([][]int, t.NumCores())
	for c := range out {
		for d := 0; d < t.NumCores(); d++ {
			if d == c {
				continue
			}
			if topology.Hops(t, c, d) <= LocalRadius {
				out[c] = append(out[c], d)
			}
		}
	}
	return out
}

func (g Generator) pickDest(rng *rand.Rand, p Profile, src int, hotspots []int, locals [][]int) int {
	r := rng.Float64()
	if r < p.Hotspot {
		if d := hotspots[rng.Intn(len(hotspots))]; d != src {
			return d
		}
	} else if r < p.Hotspot+p.Locality && len(locals[src]) > 0 {
		return locals[src][rng.Intn(len(locals[src]))]
	}
	// Uniform over all other cores.
	for {
		d := rng.Intn(g.Topo.NumCores())
		if d != src {
			return d
		}
	}
}

// geometric draws a geometric-like phase length with the given mean
// (at least 1).
func geometric(rng *rand.Rand, mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := int64(1)
	for rng.Float64() >= p {
		n++
		if n > int64(mean*20) { // bound pathological tails
			break
		}
	}
	return n
}

// pareto draws a heavy-tailed phase length with the given mean and shape
// alpha > 1 (bounded Pareto: x_m * U^(-1/alpha), clipped at 100x the mean
// to keep horizons finite). The mean of an unbounded Pareto is
// x_m*alpha/(alpha-1), so x_m is back-derived from the requested mean.
func pareto(rng *rand.Rand, mean, alpha float64) int64 {
	if mean <= 1 || alpha <= 1 {
		return geometric(rng, mean)
	}
	xm := mean * (alpha - 1) / alpha
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	v := xm * math.Pow(u, -1/alpha)
	if max := mean * 100; v > max {
		v = max
	}
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// hashName gives a stable per-benchmark seed perturbation (FNV-1a).
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
