package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestShadeFor(t *testing.T) {
	if ShadeFor(0) != ' ' {
		t.Errorf("zero shade = %q", ShadeFor(0))
	}
	if ShadeFor(1) != '@' {
		t.Errorf("full shade = %q", ShadeFor(1))
	}
	if ShadeFor(-1) != ' ' || ShadeFor(2) != '@' {
		t.Error("clamping wrong")
	}
	if ShadeFor(0.5) == ' ' || ShadeFor(0.5) == '@' {
		t.Error("mid shade should be intermediate")
	}
}

func TestHeatmapShape(t *testing.T) {
	topo := topology.NewMesh(4, 3)
	var buf bytes.Buffer
	Heatmap(&buf, topo, "test", func(r int) float64 { return float64(r) / 11 })
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // title + 3 rows
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for _, l := range lines[1:] {
		if len([]rune(l)) != 8 { // " c" per column
			t.Fatalf("row %q has wrong width", l)
		}
	}
}

func TestGrid(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	var buf bytes.Buffer
	Grid(&buf, topo, "grid", func(r int) string { return "X" })
	if !strings.Contains(buf.String(), "X X") {
		t.Fatalf("grid output %q", buf.String())
	}
}
