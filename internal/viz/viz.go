// Package viz renders per-router mesh data as ASCII heatmaps — a quick
// way to see the spatial structure of power-gating and DVFS decisions
// (e.g. memory-controller corners staying awake while interior routers
// sleep).
package viz

import (
	"fmt"
	"io"

	"repro/internal/topology"
)

// shades maps [0,1] to increasing ink.
var shades = []rune(" .:-=+*#%@")

// ShadeFor returns the ASCII shade for a value in [0,1] (clamped).
func ShadeFor(v float64) rune {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(shades)-1))
	return shades[idx]
}

// Heatmap renders value(router) in [0,1] over the topology grid. Values
// outside [0,1] are clamped.
func Heatmap(w io.Writer, topo topology.Topology, title string, value func(router int) float64) {
	fmt.Fprintf(w, "%s  (scale:%s)\n", title, string(shades))
	for y := 0; y < topo.Height(); y++ {
		for x := 0; x < topo.Width(); x++ {
			fmt.Fprintf(w, " %c", ShadeFor(value(topo.RouterAt(x, y))))
		}
		fmt.Fprintln(w)
	}
}

// Grid renders an arbitrary per-router label (e.g. a mode digit).
func Grid(w io.Writer, topo topology.Topology, title string, label func(router int) string) {
	fmt.Fprintln(w, title)
	for y := 0; y < topo.Height(); y++ {
		for x := 0; x < topo.Width(); x++ {
			fmt.Fprintf(w, " %s", label(topo.RouterAt(x, y)))
		}
		fmt.Fprintln(w)
	}
}
