package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flit"
	"repro/internal/topology"
)

// TestConservationProperty: for random packet sets on random grid sizes,
// every injected packet is delivered exactly once, all securing claims
// return to zero, and all buffers drain.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 2 + rng.Intn(4)
		h := 2 + rng.Intn(4)
		topo := topology.NewMesh(w, h)
		pv := newTestPV()
		sink := &testSink{}
		n := New(topo, 2, 4, 1+rng.Intn(3), pv, sink, nil)

		want := 0
		for i := 0; i < 30; i++ {
			src := rng.Intn(topo.NumCores())
			dst := rng.Intn(topo.NumCores())
			if src == dst {
				continue
			}
			kind := flit.Request
			if rng.Intn(2) == 0 {
				kind = flit.Response
			}
			n.Inject(flit.New(uint64(i), src, dst, kind, 0))
			want++
		}
		for tick := int64(0); tick < 5000 && n.InFlight(); tick++ {
			runAll(n, tick)
		}
		if n.InFlight() || len(sink.delivered) != want {
			return false
		}
		for r := 0; r < topo.NumRouters(); r++ {
			if n.Secured(r) || !n.Routers[r].BuffersEmpty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGatingChurnConservation randomly gates and ungates routers mid-run;
// packets must still all arrive once routers are allowed back on.
func TestGatingChurnConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := topology.NewMesh(3, 3)
		pv := newTestPV()
		sink := &testSink{}
		n := New(topo, 2, 4, 1, pv, sink, nil)

		want := 0
		for i := 0; i < 20; i++ {
			src := rng.Intn(topo.NumCores())
			dst := rng.Intn(topo.NumCores())
			if src == dst {
				continue
			}
			n.Inject(flit.New(uint64(i), src, dst, flit.Request, 0))
			want++
		}
		for tick := int64(0); tick < 500; tick++ {
			// Randomly toggle gating on non-source routers.
			if tick%7 == 0 {
				r := rng.Intn(topo.NumRouters())
				pv.gated[r] = !pv.gated[r]
			}
			runAll(n, tick)
		}
		// Ungate everything and drain.
		for r := range pv.gated {
			pv.gated[r] = false
		}
		for tick := int64(500); tick < 5000 && n.InFlight(); tick++ {
			runAll(n, tick)
		}
		return len(sink.delivered) == want && !n.InFlight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyMonotoneWithLoad: at higher injected load, average latency
// must not decrease (a sanity check on the queueing model).
func TestLatencyMonotoneWithLoad(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	avgLatency := func(packets int) float64 {
		rng := rand.New(rand.NewSource(42))
		pv := newTestPV()
		sink := &testSink{}
		n := New(topo, 2, 4, 1, pv, sink, nil)
		id := uint64(0)
		for i := 0; i < packets; i++ {
			src := rng.Intn(topo.NumCores())
			dst := (src + 1 + rng.Intn(topo.NumCores()-1)) % topo.NumCores()
			n.Inject(flit.New(id, src, dst, flit.Response, 0))
			id++
		}
		for tick := int64(0); tick < 20000 && n.InFlight(); tick++ {
			runAll(n, tick)
		}
		sum := int64(0)
		for _, p := range sink.delivered {
			sum += p.Latency()
		}
		return float64(sum) / float64(len(sink.delivered))
	}
	light := avgLatency(5)
	heavy := avgLatency(200)
	if heavy < light {
		t.Fatalf("latency decreased with load: %g -> %g", light, heavy)
	}
}
