// White-box tests for the destination-shard landing path (StageDueLandings
// / LandPending) and for the head-indexed FIFO pops that keep recycled
// pool objects unreachable from the wire and injection-queue backing
// arrays (the PR's satellite bugfix: the old `q = q[1:]` pops left the
// vacated slots holding live *flit.Flit / *flit.Packet pointers).
package network

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/topology"
)

// sendOnWire injects a single-flit request from the core at router src
// toward the core at router dst and cycles src until its flit enters the
// wire, returning the tick of the send. The caller must have set a
// nonzero link latency.
func sendOnWire(t *testing.T, n *Network, topo topology.Topology, src, dst int, from int64) int64 {
	t.Helper()
	before := n.wireLen()
	n.SetTick(from)
	n.Inject(flit.New(uint64(from), topo.CoreAt(src, 0), topo.CoreAt(dst, 0), flit.Request, from))
	for tick := from; tick < from+20; tick++ {
		n.SetTick(tick)
		n.RouterCycle(src)
		if n.wireLen() > before {
			return tick
		}
	}
	t.Fatalf("flit from router %d never entered the wire", src)
	return -1
}

// TestStageDueLandingsBucketsAndWatermark pins the sharded landing
// protocol at the network layer: due transits leave the wire in FIFO
// order into their destination shard's bucket, the watermark tracks the
// earliest *remaining* transit exactly, and LandPending lands each
// shard's bucket into the right routers.
func TestStageDueLandingsBucketsAndWatermark(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	n.SetLinkTicks(3)
	n.SetShards(2)
	// Row-aligned shard map: rows 0-1 are shard 0, rows 2-3 shard 1.
	shardOf := make([]uint8, topo.NumRouters())
	for r := range shardOf {
		if r >= 2*topo.Width() {
			shardOf[r] = 1
		}
	}
	// One transit per shard, sent two ticks apart so their due ticks
	// differ: router 0 -> 2 stays in shard 0, router 8 -> 10 in shard 1.
	sent0 := sendOnWire(t, n, topo, topo.RouterAt(0, 0), topo.RouterAt(2, 0), 0)
	sent1 := sendOnWire(t, n, topo, topo.RouterAt(0, 2), topo.RouterAt(2, 2), sent0+2)
	if n.wireLen() != 2 {
		t.Fatalf("wire holds %d transits, want 2", n.wireLen())
	}
	if got := n.NextWireDue(); got != sent0+3 {
		t.Fatalf("watermark = %d, want first due tick %d", got, sent0+3)
	}

	// Before anything is due, staging is a no-op.
	n.SetTick(sent0 + 2)
	if staged := n.StageDueLandings(shardOf); staged != 0 {
		t.Fatalf("staged %d transits before their due tick", staged)
	}

	// On the first due tick only the shard-0 transit is staged; the
	// watermark must advance to the remaining transit, not to empty.
	n.SetTick(sent0 + 3)
	if staged := n.StageDueLandings(shardOf); staged != 1 {
		t.Fatalf("staged %d transits at the first due tick, want 1", staged)
	}
	if len(n.lanes[0].pend) != 1 || len(n.lanes[1].pend) != 0 {
		t.Fatalf("bucket sizes = (%d, %d), want (1, 0)", len(n.lanes[0].pend), len(n.lanes[1].pend))
	}
	if got := n.NextWireDue(); got != sent1+3 {
		t.Fatalf("watermark = %d after staging the first transit, want %d", got, sent1+3)
	}
	// Landing an empty bucket is a no-op; the staged bucket lands into
	// the next router along the shard-0 path.
	hop0 := topo.RouterAt(1, 0)
	n.LandPending(1)
	if !n.Routers[hop0].BuffersEmpty() {
		t.Fatal("LandPending on the wrong shard landed the flit")
	}
	n.LandPending(0)
	if n.Routers[hop0].BuffersEmpty() {
		t.Fatal("shard-0 bucket did not land at the next hop")
	}
	if len(n.lanes[0].pend) != 0 {
		t.Fatal("shard-0 bucket not cleared after landing")
	}

	// Second due tick: the shard-1 transit stages and lands; the wire
	// drains and the watermark resets.
	n.SetTick(sent1 + 3)
	if staged := n.StageDueLandings(shardOf); staged != 1 {
		t.Fatal("second transit did not stage on its due tick")
	}
	n.LandPending(1)
	if n.Routers[topo.RouterAt(1, 2)].BuffersEmpty() {
		t.Fatal("shard-1 bucket did not land at the next hop")
	}
	if n.NextWireDue() != noWireDue {
		t.Fatalf("watermark = %d after the wire drained, want none", n.NextWireDue())
	}
	if n.wireLen() != 0 || n.wireHead != 0 {
		t.Fatalf("wire not reset after drain: len %d head %d", n.wireLen(), n.wireHead)
	}
}

// TestWirePopReleasesPooledFlits is the pool-reuse accounting regression
// for the wire FIFO: popping a due transit must clear the backing-array
// slot, otherwise the (pool-recycled, soon reused) flit stays reachable
// from the dead prefix and the window slides instead of being reused.
// This test fails on the old `n.wire = n.wire[1:]` pop.
func TestWirePopReleasesPooledFlits(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	n.SetLinkTicks(2)
	sent := sendOnWire(t, n, topo, topo.RouterAt(0, 0), topo.RouterAt(3, 0), 0)
	// Capture the backing array while the transit is in flight.
	backing := n.wire[:len(n.wire)]
	if backing[0].f == nil {
		t.Fatal("in-flight transit lost its flit")
	}
	n.SetTick(sent + 2)
	n.DeliverDue()
	for i := range backing {
		if backing[i].f != nil {
			t.Fatalf("popped wire slot %d still pins flit %p", i, backing[i].f)
		}
	}
}

// TestInjectionQueuePopReleasesPackets is the same regression for the
// per-core source queues: claiming a packet for injection must clear its
// queue slot so the packet (pool-recycled after delivery) is not pinned
// by the queue's backing array. Fails on the old `queue = queue[1:]` pop.
func TestInjectionQueuePopReleasesPackets(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	src := topo.RouterAt(0, 0)
	core := topo.CoreAt(src, 0)
	dst := topo.CoreAt(topo.RouterAt(2, 0), 0)
	n.SetTick(0)
	n.Inject(flit.New(1, core, dst, flit.Request, 0))
	n.Inject(flit.New(2, core, dst, flit.Request, 0))
	backing := n.inj[core].queue[:2]
	for tick := int64(0); tick < 40; tick++ {
		n.SetTick(tick)
		n.RouterCycle(src)
		if n.QueuedPackets(core) == 0 {
			break
		}
	}
	if n.QueuedPackets(core) != 0 {
		t.Fatal("source queue never drained")
	}
	for i := range backing {
		if backing[i] != nil {
			t.Fatalf("popped queue slot %d still pins packet %p", i, backing[i])
		}
	}
}

// TestWireBackingBounded pins the amortized compaction: under sustained
// wire traffic (the FIFO never fully drains), the backing array must stay
// bounded by the peak in-flight population instead of sliding forward.
func TestWireBackingBounded(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	n.SetLinkTicks(4)
	src, dst := topo.RouterAt(0, 0), topo.RouterAt(3, 0)
	core := topo.CoreAt(src, 0)
	for tick := int64(0); tick < 2000; tick++ {
		n.SetTick(tick)
		if tick%2 == 0 {
			n.Inject(flit.New(uint64(tick), core, topo.CoreAt(dst, 0), flit.Request, tick))
		}
		n.DeliverDue()
		for r := 0; r < topo.NumRouters(); r++ {
			n.CycleRouter(r, 0)
		}
		n.Commit()
	}
	// At most ~2 flits ride the 4-tick wire per 2-tick injection period
	// per hop; a generous bound still catches a sliding backing array,
	// which would grow toward the thousands of total sends.
	if cap(n.wire) > 64 {
		t.Fatalf("wire backing array grew to cap %d under sustained traffic", cap(n.wire))
	}
}
