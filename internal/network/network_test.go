package network

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/topology"
)

// testPV is an all-awake PowerView with controllable gated routers.
type testPV struct {
	gated map[int]bool
	wakes []int
}

func newTestPV() *testPV { return &testPV{gated: map[int]bool{}} }

func (pv *testPV) CanAccept(r int) bool { return !pv.gated[r] }
func (pv *testPV) WakeRequest(r int)    { pv.wakes = append(pv.wakes, r) }

// testSink records deliveries.
type testSink struct {
	delivered []*flit.Packet
	cores     []int
}

func (s *testSink) PacketDelivered(p *flit.Packet, core int, now int64) {
	s.delivered = append(s.delivered, p)
	s.cores = append(s.cores, core)
}

// hopCounter counts hops per router.
type hopCounter struct{ hops map[int]int }

func (h *hopCounter) FlitHopped(r int) {
	if h.hops == nil {
		h.hops = map[int]int{}
	}
	h.hops[r]++
}

func buildNet(t *testing.T, topo topology.Topology) (*Network, *testPV, *testSink, *hopCounter) {
	t.Helper()
	pv := newTestPV()
	sink := &testSink{}
	hop := &hopCounter{}
	n := New(topo, 2, 4, 1, pv, sink, hop)
	return n, pv, sink, hop
}

// runAll cycles every router once, in ID order, at the given tick.
func runAll(n *Network, tick int64) {
	n.SetTick(tick)
	for r := range n.Routers {
		n.RouterCycle(r)
	}
}

func TestDeliverySameRouterCMesh(t *testing.T) {
	topo := topology.NewCMesh(4, 4)
	n, _, sink, _ := buildNet(t, topo)
	p := flit.New(1, topo.CoreAt(5, 0), topo.CoreAt(5, 3), flit.Request, 0)
	n.Inject(p)
	for tick := int64(0); tick < 10 && len(sink.delivered) == 0; tick++ {
		runAll(n, tick)
	}
	if len(sink.delivered) != 1 {
		t.Fatal("same-router packet not delivered")
	}
	if sink.cores[0] != topo.CoreAt(5, 3) {
		t.Fatalf("delivered to core %d", sink.cores[0])
	}
	if p.Ejected < 0 || p.Injected < 0 {
		t.Error("timestamps not stamped")
	}
}

func TestDeliveryAcrossMesh(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, sink, hop := buildNet(t, topo)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(3, 3), 0)
	p := flit.New(1, src, dst, flit.Response, 0)
	n.Inject(p)
	for tick := int64(0); tick < 100 && len(sink.delivered) == 0; tick++ {
		runAll(n, tick)
	}
	if len(sink.delivered) != 1 {
		t.Fatal("cross-mesh packet not delivered")
	}
	// 6 hops + ejection router: every packet flit hops 7 routers; 5 flits
	// -> 35 hops.
	total := 0
	for _, h := range hop.hops {
		total += h
	}
	if total != 35 {
		t.Fatalf("hop count = %d, want 35 (5 flits x 7 routers)", total)
	}
	if !n.InFlight() == false && n.TotalQueued() != 0 {
		t.Error("network should be drained")
	}
}

func TestFlitConservation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, sink, _ := buildNet(t, topo)
	var want int64
	for i := 0; i < 40; i++ {
		src := i % topo.NumCores()
		dst := (i*7 + 3) % topo.NumCores()
		if src == dst {
			continue
		}
		kind := flit.Request
		if i%3 == 0 {
			kind = flit.Response
		}
		n.Inject(flit.New(uint64(i), src, dst, kind, 0))
		want++
	}
	for tick := int64(0); tick < 2000 && n.InFlight(); tick++ {
		runAll(n, tick)
	}
	if n.InFlight() {
		t.Fatal("network failed to drain")
	}
	if int64(len(sink.delivered)) != want {
		t.Fatalf("delivered %d packets, want %d", len(sink.delivered), want)
	}
	if n.PacketsDelivered() != want || n.PacketsInjected() != want {
		t.Fatalf("counters: injected %d delivered %d, want %d", n.PacketsInjected(), n.PacketsDelivered(), want)
	}
}

func TestSecuringLifecycle(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, pv, _, _ := buildNet(t, topo)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(2, 0), 0)
	srcR := topo.RouterOf(src)

	// Injection secures the source router and requests a wake.
	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	if !n.Secured(srcR) {
		t.Fatal("source router must be secured after Inject")
	}
	if len(pv.wakes) == 0 || pv.wakes[0] != srcR {
		t.Fatal("source router did not receive a wake request")
	}

	// Drain; securing must be fully released everywhere.
	for tick := int64(0); tick < 100 && n.InFlight(); tick++ {
		runAll(n, tick)
	}
	for r := 0; r < topo.NumRouters(); r++ {
		if n.Secured(r) {
			t.Fatalf("router %d still secured after drain", r)
		}
	}
}

func TestHeadAcceptSecuresDownstream(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	pv := newTestPV()
	// Pipeline 3 keeps the freshly injected head parked in router 0 for
	// this cycle, so its downstream claim is observable.
	n := New(topo, 2, 4, 3, pv, &testSink{}, &hopCounter{})
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(3, 0), 0)
	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	n.SetTick(0)
	n.RouterCycle(topo.RouterOf(src)) // head flit enters router 0
	next := topo.RouterAt(1, 0)
	if !n.Secured(next) {
		t.Fatal("downstream router not secured after head acceptance")
	}
	// The wake list must include the downstream router.
	found := false
	for _, w := range pv.wakes {
		if w == next {
			found = true
		}
	}
	if !found {
		t.Fatal("downstream router not punched awake")
	}
}

func TestGatedDownstreamBlocksTransfer(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, pv, sink, _ := buildNet(t, topo)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(2, 0), 0)
	mid := topo.RouterAt(1, 0)
	pv.gated[mid] = true

	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	for tick := int64(0); tick < 50; tick++ {
		runAll(n, tick)
	}
	if len(sink.delivered) != 0 {
		t.Fatal("packet crossed a gated router")
	}
	// The flit must be parked in router (0,0).
	if n.Routers[topo.RouterAt(0, 0)].BuffersEmpty() {
		t.Fatal("flit not held at the upstream router")
	}
	pv.gated[mid] = false
	for tick := int64(50); tick < 100 && len(sink.delivered) == 0; tick++ {
		runAll(n, tick)
	}
	if len(sink.delivered) != 1 {
		t.Fatal("packet not delivered after ungating")
	}
}

func TestInjectionBackpressure(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, pv, _, _ := buildNet(t, topo)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(3, 3), 0)
	// Gate the first hop so nothing drains; queue many packets.
	pv.gated[topo.RouterAt(1, 0)] = true
	for i := 0; i < 10; i++ {
		n.Inject(flit.New(uint64(i), src, dst, flit.Request, 0))
	}
	for tick := int64(0); tick < 20; tick++ {
		runAll(n, tick)
	}
	// The local input VC holds at most Depth=4 flits; the rest must wait
	// in the source queue, and the source router stays secured.
	if q := n.QueuedPackets(src); q < 6 {
		t.Fatalf("source queue drained too far: %d left", q)
	}
	if !n.Secured(topo.RouterAt(0, 0)) {
		t.Fatal("source router must stay secured while packets wait")
	}
}

func TestCoreRequestCounters(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(1, 0), 0)
	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	n.Inject(flit.New(2, src, dst, flit.Response, 0))
	for tick := int64(0); tick < 100 && n.InFlight(); tick++ {
		runAll(n, tick)
	}
	if n.CoreSentRequests(src) != 1 {
		t.Errorf("sent requests = %d, want 1 (responses excluded)", n.CoreSentRequests(src))
	}
	if n.CoreRecvRequests(dst) != 1 {
		t.Errorf("recv requests = %d, want 1", n.CoreRecvRequests(dst))
	}
}

func TestWormholeInterleavingPreservesPacketOrder(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, sink, _ := buildNet(t, topo)
	// Two long responses from opposite sources to the same destination
	// column exercise switch arbitration; both must arrive intact.
	a := flit.New(1, topo.CoreAt(topo.RouterAt(0, 1), 0), topo.CoreAt(topo.RouterAt(3, 1), 0), flit.Response, 0)
	b := flit.New(2, topo.CoreAt(topo.RouterAt(0, 2), 0), topo.CoreAt(topo.RouterAt(3, 1), 0), flit.Response, 0)
	n.Inject(a)
	n.Inject(b)
	for tick := int64(0); tick < 300 && len(sink.delivered) < 2; tick++ {
		runAll(n, tick)
	}
	if len(sink.delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(sink.delivered))
	}
}

func TestInjectBadCorePanics(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	defer func() {
		if recover() == nil {
			t.Fatal("bad source core did not panic")
		}
	}()
	n.Inject(flit.New(1, 99, 0, flit.Request, 0))
}

func TestManyToOneHotspotDrains(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, sink, _ := buildNet(t, topo)
	dst := topo.CoreAt(topo.RouterAt(0, 0), 0)
	want := 0
	for c := 0; c < topo.NumCores(); c++ {
		if c == dst {
			continue
		}
		n.Inject(flit.New(uint64(c), c, dst, flit.Response, 0))
		want++
	}
	for tick := int64(0); tick < 5000 && n.InFlight(); tick++ {
		runAll(n, tick)
	}
	if len(sink.delivered) != want {
		t.Fatalf("hotspot drain delivered %d/%d", len(sink.delivered), want)
	}
}

// TestWireWatermark pins the event-driven wire watermark: NextWireDue
// tracks the earliest in-flight deliverAt exactly, DeliverDue before
// that tick is a no-op (the O(1) fast path), and the due flit lands on
// precisely its due tick.
func TestWireWatermark(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	n, _, _, _ := buildNet(t, topo)
	n.SetLinkTicks(3)
	if n.NextWireDue() != noWireDue {
		t.Fatal("fresh network must report no due wire traffic")
	}
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(2, 0), 0)
	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	// Cycle only the source router until its head flit enters the wire.
	sent := int64(-1)
	for tick := int64(0); tick < 20; tick++ {
		n.SetTick(tick)
		n.RouterCycle(topo.RouterAt(0, 0))
		if n.NextWireDue() != noWireDue {
			sent = tick
			break
		}
	}
	if sent < 0 {
		t.Fatal("no flit ever entered the wire")
	}
	if got := n.NextWireDue(); got != sent+3 {
		t.Fatalf("watermark = %d after a send at tick %d with 3-tick links, want %d", got, sent, sent+3)
	}
	next := topo.RouterAt(1, 0)
	// Before the due tick, DeliverDue must change nothing.
	n.SetTick(sent + 1)
	n.DeliverDue()
	if n.NextWireDue() != sent+3 {
		t.Fatal("early DeliverDue consumed the wire")
	}
	if !n.Routers[next].BuffersEmpty() {
		t.Fatal("flit landed before its link latency elapsed")
	}
	// On the due tick the flit lands and the watermark resets.
	n.SetTick(sent + 3)
	n.DeliverDue()
	if n.Routers[next].BuffersEmpty() {
		t.Fatal("due flit did not land")
	}
	if n.NextWireDue() != noWireDue {
		t.Fatalf("watermark = %d after the wire drained, want none", n.NextWireDue())
	}
}
