// Per-shard staging lanes. The sharded tick engine (sim, DESIGN.md §5c)
// steps disjoint router ranges concurrently inside one base tick; every
// network-global mutation a router cycle can cause — a wire append, a
// delivery completion, an aggregate counter change — is staged into the
// stepping shard's lane and merged by Commit in ascending shard order, so
// a concurrent sweep commits in exactly the order the serial sweep would
// have produced. Per-router state (buffers, credits, securing counts, the
// injection queues of attached cores) is owned by the router's shard and
// mutated directly; lanes stage only the state shards share.
//
// The serial engine uses the same machinery with a single lane, so there
// is one code path — and one semantics — for both schedules.
package network

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/router"
	"repro/internal/topology"
)

// delivery is a completed packet awaiting its sink callback (and pool
// recycling) at the next Commit. Deferring the callback out of the sweep
// keeps the sink single-threaded; it observes deliveries in the same
// ascending-router order the serial sweep fires them in.
type delivery struct {
	p    *flit.Packet
	core int
}

// lane is one shard's staging area. It implements router.Env: router
// cycles run against their shard's lane, which forwards per-router
// effects directly and stages shard-shared ones.
type lane struct {
	n *Network

	wire  []transit  // staged wire appends (merged FIFO at Commit)
	pend  []transit  // due transits bucketed for this shard (StageDueLandings)
	deliv []delivery // staged delivery callbacks

	// Aggregate counter deltas, folded into the Network at Commit.
	dFlitsInjected    int64
	dFlitsDelivered   int64
	dPacketsInjected  int64
	dPacketsDelivered int64
	dQueued           int
	dSecured          int

	// pool recycles the flits ejected by (and injected from) this shard's
	// routers. Flit objects migrate between lane pools as packets cross
	// shards; only object identity differs from a single shared pool.
	pool flit.Pool
}

var _ router.Env = (*lane)(nil)

// secure takes one claim on a router (which must belong to this lane's
// shard during a concurrent sweep) and raises a wake request. The
// per-router count is owned by the shard; only the network-wide total is
// staged.
func (l *lane) secure(routerID int) {
	l.n.secured[routerID]++
	l.dSecured++
	l.n.pv.WakeRequest(routerID)
}

func (l *lane) unsecure(routerID int) {
	l.n.secured[routerID]--
	l.dSecured--
	if l.n.secured[routerID] < 0 {
		panic(fmt.Sprintf("network: securing underflow on router %d", routerID))
	}
}

// land places a flit into its destination router and, for tails, releases
// the securing claim on that router (the packet now fully resides there,
// so its buffers keep it awake).
func (l *lane) land(dst, inPort, vc int, f *flit.Flit) {
	out, nn, _ := topology.Lookahead(l.n.Topo, dst, f.Pkt.DstCore)
	f.OutPort, f.NextRouter = out, nn
	l.n.Routers[dst].AcceptFlit(l, inPort, vc, f)
	if f.Tail {
		l.unsecure(dst)
	}
}

// injectCore moves at most one flit from core's source queue into the
// router's input buffers at localPort.
func (l *lane) injectCore(r *router.Router, core, localPort int) {
	n := l.n
	st := &n.inj[core]
	if st.flits == nil {
		if st.qhead == len(st.queue) {
			return
		}
		p := st.queue[st.qhead]
		// Claim a VC in the packet's message class with room for the head.
		vc, ok := n.pickInjVC(r, localPort, p.Kind)
		if !ok {
			return
		}
		// Pop like the wire FIFO: zero the slot so the delivered (and
		// pool-recycled) packet is not pinned by the backing array, and
		// compact once the dead prefix reaches the live length.
		st.queue[st.qhead] = nil
		st.qhead++
		if st.qhead == len(st.queue) {
			st.queue = st.queue[:0]
			st.qhead = 0
		} else if st.qhead >= len(st.queue)-st.qhead {
			m := copy(st.queue, st.queue[st.qhead:])
			tail := st.queue[m:]
			for i := range tail {
				tail[i] = nil
			}
			st.queue = st.queue[:m]
			st.qhead = 0
		}
		st.flits = l.pool.GetFlits(p)
		st.nextSeq = 0
		st.vc = vc
		p.Injected = n.now
		l.dPacketsInjected++
		if p.Kind == flit.Request {
			n.coreSentReq[core]++
		}
	}
	if !r.HasSpace(localPort, st.vc) {
		return
	}
	f := st.flits[st.nextSeq]
	// Look-ahead route for this router.
	out, next, _ := topology.Lookahead(n.Topo, r.ID, f.Pkt.DstCore)
	f.OutPort, f.NextRouter = out, next
	r.AcceptFlit(l, localPort, st.vc, f)
	l.dFlitsInjected++
	st.nextSeq++
	if st.nextSeq == len(st.flits) {
		// Tail has entered the network: release the source router's
		// securing claim for this packet.
		l.pool.PutSlice(st.flits)
		st.flits = nil
		st.vc = -1
		l.dQueued--
		l.unsecure(r.ID)
	}
}

// --- router.Env implementation ---

// ForwardFlit wires output port outPort of r to the opposite input port of
// the neighbor, computing the look-ahead route for the next hop. With a
// nonzero link latency the flit is staged onto the wire and lands in a
// later tick's DeliverDue; with zero latency it lands inline (the
// destination is within the sending shard whenever the sweep is
// concurrent — see the quiet-margin predicate in sim).
func (l *lane) ForwardFlit(r *router.Router, outPort, outVC int, f *flit.Flit) {
	n := l.n
	next := n.Topo.Neighbor(r.ID, outPort)
	if next < 0 {
		panic(fmt.Sprintf("network: router %d forwarded out of edge port %d", r.ID, outPort))
	}
	inPort := topology.OppositePort(n.Topo, outPort)
	if n.linkTicks == 0 {
		l.land(next, inPort, outVC, f)
		return
	}
	l.wire = append(l.wire, transit{deliverAt: n.now + n.linkTicks, dst: next, inPort: inPort, vc: outVC, f: f})
}

// EjectFlit consumes a flit at a local port; tails complete the packet.
// Ejection is the end of a flit's life, so pool-owned flits are recycled
// here; the packet's sink callback (and its own recycling) is staged for
// the next Commit.
func (l *lane) EjectFlit(r *router.Router, localPort int, f *flit.Flit) {
	l.dFlitsDelivered++
	if !f.Tail {
		l.pool.PutFlit(f)
		return
	}
	core := l.n.Topo.CoreAt(r.ID, localPort)
	p := f.Pkt
	l.pool.PutFlit(f)
	p.Ejected = l.n.now
	l.dPacketsDelivered++
	if p.Kind == flit.Request {
		l.n.coreRecvReq[core]++
	}
	l.deliv = append(l.deliv, delivery{p: p, core: core})
}

// CreditFreed returns a credit to the upstream router; injection ports
// need none (the source queue polls HasSpace).
func (l *lane) CreditFreed(r *router.Router, inPort, vc int) {
	if r.IsLocalPort(inPort) {
		return
	}
	up := l.n.Topo.Neighbor(r.ID, inPort)
	if up < 0 {
		panic(fmt.Sprintf("network: credit from edge port %d of router %d", inPort, r.ID))
	}
	l.n.Routers[up].Credit(topology.OppositePort(l.n.Topo, inPort), vc)
}

// CanForward gates transmission on the downstream router being able to
// accept flits (active, not switching).
func (l *lane) CanForward(r *router.Router, outPort int) bool {
	next := l.n.Topo.Neighbor(r.ID, outPort)
	if next < 0 {
		return false
	}
	return l.n.pv.CanAccept(next)
}

// HeadAccepted secures (and punch-wakes) the downstream router of a newly
// buffered packet.
func (l *lane) HeadAccepted(r *router.Router, f *flit.Flit) {
	if f.NextRouter >= 0 {
		l.secure(f.NextRouter)
	}
}

// TailForwarded is a router-side notification; the securing claim on the
// downstream router is released when the tail *lands* there (see land),
// so a router can never gate with a packet still on its incoming wire.
func (l *lane) TailForwarded(r *router.Router, outPort int, f *flit.Flit) {}

// FlitMoved bills a dynamic-energy hop at the moving router.
func (l *lane) FlitMoved(r *router.Router, f *flit.Flit) {
	if l.n.hop != nil {
		l.n.hop.FlitHopped(r.ID)
	}
}
