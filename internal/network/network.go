// Package network assembles routers into a mesh/cmesh fabric: it wires
// links, performs look-ahead route computation on every forwarded flit,
// returns credits, runs per-core injection queues, and maintains the
// downstream-securing counters that drive DozzNoC's partially non-blocking
// power-gating (§III-B): a router with any upstream packet routed toward it
// is "secured" and may not power off; if it is off, it receives an
// immediate wake punch.
package network

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/router"
	"repro/internal/topology"
)

// PowerView is the network's window into the power-management layer.
type PowerView interface {
	// CanAccept reports whether a router may receive flits this cycle
	// (it is in the active state and not paused for a voltage switch).
	CanAccept(routerID int) bool
	// WakeRequest asks the power manager to wake a router if it is
	// power-gated; it must be a no-op for routers already awake.
	//
	// It is also the activation funnel the engine's active-set scheduler
	// relies on: every way a router can be handed work — an injection
	// claim at an attached core, a head flit routed toward it, a wake
	// punch — calls WakeRequest before any flit can land there, so an
	// implementation that interposes here sees every lazily deferred
	// router strictly before its state can change.
	WakeRequest(routerID int)
}

// Sink observes packet deliveries.
type Sink interface {
	// PacketDelivered fires when the tail flit of p ejects at core.
	PacketDelivered(p *flit.Packet, core int, now int64)
}

// HopObserver is charged for every flit movement (dynamic energy).
type HopObserver interface {
	// FlitHopped fires when router routerID forwards or ejects a flit.
	FlitHopped(routerID int)
}

// transit is one flit in flight on an inter-router link.
type transit struct {
	deliverAt int64
	dst       int // destination router
	inPort    int
	vc        int
	f         *flit.Flit
}

// injState serializes one core's packets into its router's local port.
type injState struct {
	queue   []*flit.Packet
	flits   []*flit.Flit // flits of the packet currently being injected
	nextSeq int
	vc      int // VC claimed for the in-flight packet, -1 if none
}

// Network is the assembled fabric.
type Network struct {
	Topo    topology.Topology
	Routers []*router.Router

	pv   PowerView
	sink Sink
	hop  HopObserver

	// linkTicks is the inter-router wire latency in base ticks; 0 means
	// flits arrive within the sending cycle.
	linkTicks int64
	wire      []transit // FIFO: all sends at tick t arrive at t+linkTicks

	inj     []injState
	secured []int // securing count per router

	// Aggregates kept alongside the per-router/per-core state so the
	// engine can test quiescence in O(1) every tick.
	queuedPackets int // packets waiting or mid-injection across all cores
	securedTotal  int // sum of securing claims across all routers

	// cumulative per-core request counters (feature inputs)
	coreSentReq []int64
	coreRecvReq []int64

	flitsDelivered   int64
	packetsDelivered int64
	flitsInjected    int64
	packetsInjected  int64

	// pool recycles the packets and flits of trace-driven traffic (see
	// AcquirePacket); externally created packets pass through untouched.
	pool flit.Pool

	now int64 // current base tick, set by the engine each tick
}

// New builds the fabric for a topology with the given router configuration
// template (Ports/LocalPorts are derived from the topology). Inter-router
// links deliver within the sending cycle; use SetLinkTicks for a wire
// latency.
func New(topo topology.Topology, vcs, depth, pipeline int, pv PowerView, sink Sink, hop HopObserver) *Network {
	cfg := router.Config{
		Ports:      topo.PortsPerRouter(),
		LocalPorts: topo.Concentration(),
		VCs:        vcs,
		Depth:      depth,
		Pipeline:   pipeline,
	}
	n := &Network{
		Topo:        topo,
		pv:          pv,
		sink:        sink,
		hop:         hop,
		inj:         make([]injState, topo.NumCores()),
		secured:     make([]int, topo.NumRouters()),
		coreSentReq: make([]int64, topo.NumCores()),
		coreRecvReq: make([]int64, topo.NumCores()),
	}
	for i := range n.inj {
		n.inj[i].vc = -1
	}
	n.Routers = make([]*router.Router, topo.NumRouters())
	for i := range n.Routers {
		n.Routers[i] = router.New(i, cfg)
	}
	return n
}

// SetTick tells the network the current base tick (used to stamp packet
// injection/ejection times).
func (n *Network) SetTick(now int64) { n.now = now }

// SetLinkTicks sets the inter-router wire latency in base ticks. Call it
// before any traffic flows.
func (n *Network) SetLinkTicks(t int64) {
	if t < 0 {
		panic(fmt.Sprintf("network: negative link latency %d", t))
	}
	n.linkTicks = t
}

// DeliverDue lands every in-flight flit whose wire latency has elapsed;
// the engine calls it once per tick before cycling routers. A no-op when
// the link latency is zero (sends deliver inline).
func (n *Network) DeliverDue() {
	for len(n.wire) > 0 && n.wire[0].deliverAt <= n.now {
		t := n.wire[0]
		n.wire = n.wire[1:]
		if len(n.wire) == 0 {
			n.wire = nil
		}
		n.land(t.dst, t.inPort, t.vc, t.f)
	}
}

// land places a flit into its destination router and, for tails, releases
// the securing claim on that router (the packet now fully resides there,
// so its buffers keep it awake).
func (n *Network) land(dst, inPort, vc int, f *flit.Flit) {
	out, nn, _ := topology.Lookahead(n.Topo, dst, f.Pkt.DstCore)
	f.OutPort, f.NextRouter = out, nn
	n.Routers[dst].AcceptFlit(n, inPort, vc, f)
	if f.Tail {
		n.unsecure(dst)
	}
}

// AcquirePacket builds a packet from the network's free-list pool. The
// packet (and the flits it is later serialized into) is recycled
// automatically once its tail flit is delivered, so callers must not
// retain it past the delivery callback. Packets built with flit.New are
// still accepted by Inject and are never recycled.
func (n *Network) AcquirePacket(src, dst int, kind flit.Kind, injectAt int64) *flit.Packet {
	return n.pool.GetPacket(src, dst, kind, injectAt)
}

// Inject queues a packet at its source core. The source router becomes
// secured (and is punched awake if gated) until the packet's tail flit has
// entered the network.
func (n *Network) Inject(p *flit.Packet) {
	if p.SrcCore < 0 || p.SrcCore >= n.Topo.NumCores() {
		panic(fmt.Sprintf("network: bad source core %d", p.SrcCore))
	}
	st := &n.inj[p.SrcCore]
	st.queue = append(st.queue, p)
	n.queuedPackets++
	r := n.Topo.RouterOf(p.SrcCore)
	n.secure(r)
}

// QueuedPackets returns the number of packets waiting (or mid-injection)
// at a core.
func (n *Network) QueuedPackets(core int) int {
	st := &n.inj[core]
	q := len(st.queue)
	if st.flits != nil {
		q++
	}
	return q
}

// TotalQueued returns packets waiting across all cores.
func (n *Network) TotalQueued() int {
	total := 0
	for c := range n.inj {
		total += n.QueuedPackets(c)
	}
	return total
}

// InFlight reports whether any flit is buffered anywhere, riding a link,
// or queued for injection (used to detect drain completion). Flits only
// leave the network by ejection, so the injected/delivered flit counters
// differ exactly while any flit is buffered or on a wire.
func (n *Network) InFlight() bool {
	return len(n.wire) > 0 || n.flitsInjected != n.flitsDelivered || n.queuedPackets > 0
}

// Quiescent reports whether nothing is in motion or pending anywhere in
// the fabric: no flit buffered or riding a link, no packet queued or
// mid-injection at any core, and no securing claim held on any router.
// While this holds (and no new injection arrives), no router can receive
// a wake punch and no flit can move, so the engine may fast-forward time.
func (n *Network) Quiescent() bool {
	return len(n.wire) == 0 && n.flitsInjected == n.flitsDelivered &&
		n.queuedPackets == 0 && n.securedTotal == 0
}

// Secured reports whether a router currently holds securing claims.
func (n *Network) Secured(routerID int) bool { return n.secured[routerID] > 0 }

// secure takes one claim on a router and raises a wake request. The
// securing discipline — the source router is claimed at injection, the
// next-hop router when a head flit wins switch allocation, and claims
// are held until the tail lands — guarantees that any flit landing at a
// router was preceded by a secure() call for it, which makes
// PowerView.WakeRequest a sound single activation point for lazy
// scheduling (see sim's active-set engine and DESIGN.md §5b).
func (n *Network) secure(routerID int) {
	n.secured[routerID]++
	n.securedTotal++
	n.pv.WakeRequest(routerID)
}

func (n *Network) unsecure(routerID int) {
	n.secured[routerID]--
	n.securedTotal--
	if n.secured[routerID] < 0 {
		panic(fmt.Sprintf("network: securing underflow on router %d", routerID))
	}
}

// Counters.
func (n *Network) FlitsDelivered() int64   { return n.flitsDelivered }
func (n *Network) PacketsDelivered() int64 { return n.packetsDelivered }
func (n *Network) FlitsInjected() int64    { return n.flitsInjected }
func (n *Network) PacketsInjected() int64  { return n.packetsInjected }

// CoreSentRequests and CoreRecvRequests return cumulative request-packet
// counters for one core (Table IV features 2 and 3 take per-epoch deltas).
func (n *Network) CoreSentRequests(core int) int64 { return n.coreSentReq[core] }
func (n *Network) CoreRecvRequests(core int) int64 { return n.coreRecvReq[core] }

// RouterCycle runs one local cycle of a router: injection from its attached
// cores, then switch allocation/traversal. The engine must only call it for
// routers whose power state allows operation.
func (n *Network) RouterCycle(routerID int) {
	n.injectInto(routerID)
	n.Routers[routerID].Cycle(n)
}

// injectInto moves at most one flit per local port from each attached
// core's source queue into the router's input buffers.
func (n *Network) injectInto(routerID int) {
	r := n.Routers[routerID]
	c0 := routerID * n.Topo.Concentration()
	for lp := 0; lp < n.Topo.Concentration(); lp++ {
		n.injectCore(r, c0+lp, lp)
	}
}

func (n *Network) injectCore(r *router.Router, core, localPort int) {
	st := &n.inj[core]
	if st.flits == nil {
		if len(st.queue) == 0 {
			return
		}
		p := st.queue[0]
		// Claim a VC in the packet's message class with room for the head.
		vc, ok := n.pickInjVC(r, localPort, p.Kind)
		if !ok {
			return
		}
		st.queue = st.queue[1:]
		if len(st.queue) == 0 {
			st.queue = nil
		}
		st.flits = n.pool.GetFlits(p)
		st.nextSeq = 0
		st.vc = vc
		p.Injected = n.now
		n.packetsInjected++
		if p.Kind == flit.Request {
			n.coreSentReq[core]++
		}
	}
	if !r.HasSpace(localPort, st.vc) {
		return
	}
	f := st.flits[st.nextSeq]
	// Look-ahead route for this router.
	out, next, _ := topology.Lookahead(n.Topo, r.ID, f.Pkt.DstCore)
	f.OutPort, f.NextRouter = out, next
	r.AcceptFlit(n, localPort, st.vc, f)
	n.flitsInjected++
	st.nextSeq++
	if st.nextSeq == len(st.flits) {
		// Tail has entered the network: release the source router's
		// securing claim for this packet.
		n.pool.PutSlice(st.flits)
		st.flits = nil
		st.vc = -1
		n.queuedPackets--
		n.unsecure(r.ID)
	}
}

// pickInjVC chooses an injection VC with space within the kind's class.
func (n *Network) pickInjVC(r *router.Router, localPort int, k flit.Kind) (int, bool) {
	lo, hi := r.Config().VCClassRange(k)
	for v := lo; v < hi; v++ {
		if r.HasSpace(localPort, v) {
			return v, true
		}
	}
	return 0, false
}

// --- router.Env implementation ---

var _ router.Env = (*Network)(nil)

// ForwardFlit wires output port outPort of r to the opposite input port of
// the neighbor, computing the look-ahead route for the next hop. With a
// nonzero link latency the flit rides the wire and lands in DeliverDue.
func (n *Network) ForwardFlit(r *router.Router, outPort, outVC int, f *flit.Flit) {
	next := n.Topo.Neighbor(r.ID, outPort)
	if next < 0 {
		panic(fmt.Sprintf("network: router %d forwarded out of edge port %d", r.ID, outPort))
	}
	inPort := topology.OppositePort(n.Topo, outPort)
	if n.linkTicks == 0 {
		n.land(next, inPort, outVC, f)
		return
	}
	n.wire = append(n.wire, transit{deliverAt: n.now + n.linkTicks, dst: next, inPort: inPort, vc: outVC, f: f})
}

// EjectFlit consumes a flit at a local port; tails complete the packet.
// Ejection is the end of a flit's life, so pool-owned flits (and, after
// the sink callback, their packet) are recycled here.
func (n *Network) EjectFlit(r *router.Router, localPort int, f *flit.Flit) {
	n.flitsDelivered++
	if !f.Tail {
		n.pool.PutFlit(f)
		return
	}
	core := n.Topo.CoreAt(r.ID, localPort)
	p := f.Pkt
	n.pool.PutFlit(f)
	p.Ejected = n.now
	n.packetsDelivered++
	if p.Kind == flit.Request {
		n.coreRecvReq[core]++
	}
	if n.sink != nil {
		n.sink.PacketDelivered(p, core, n.now)
	}
	n.pool.PutPacket(p)
}

// CreditFreed returns a credit to the upstream router; injection ports
// need none (the source queue polls HasSpace).
func (n *Network) CreditFreed(r *router.Router, inPort, vc int) {
	if r.IsLocalPort(inPort) {
		return
	}
	up := n.Topo.Neighbor(r.ID, inPort)
	if up < 0 {
		panic(fmt.Sprintf("network: credit from edge port %d of router %d", inPort, r.ID))
	}
	n.Routers[up].Credit(topology.OppositePort(n.Topo, inPort), vc)
}

// CanForward gates transmission on the downstream router being able to
// accept flits (active, not switching).
func (n *Network) CanForward(r *router.Router, outPort int) bool {
	next := n.Topo.Neighbor(r.ID, outPort)
	if next < 0 {
		return false
	}
	return n.pv.CanAccept(next)
}

// HeadAccepted secures (and punch-wakes) the downstream router of a newly
// buffered packet.
func (n *Network) HeadAccepted(r *router.Router, f *flit.Flit) {
	if f.NextRouter >= 0 {
		n.secure(f.NextRouter)
	}
}

// TailForwarded is a router-side notification; the securing claim on the
// downstream router is released when the tail *lands* there (see land),
// so a router can never gate with a packet still on its incoming wire.
func (n *Network) TailForwarded(r *router.Router, outPort int, f *flit.Flit) {}

// FlitMoved bills a dynamic-energy hop at the moving router.
func (n *Network) FlitMoved(r *router.Router, f *flit.Flit) {
	if n.hop != nil {
		n.hop.FlitHopped(r.ID)
	}
}
