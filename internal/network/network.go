// Package network assembles routers into a mesh/cmesh fabric: it wires
// links, performs look-ahead route computation on every forwarded flit,
// returns credits, runs per-core injection queues, and maintains the
// downstream-securing counters that drive DozzNoC's partially non-blocking
// power-gating (§III-B): a router with any upstream packet routed toward it
// is "secured" and may not power off; if it is off, it receives an
// immediate wake punch.
//
// Router cycles mutate the fabric through per-shard staging lanes (see
// lane.go): shard-shared state — the wire FIFO, delivery callbacks, the
// aggregate counters — is staged during a sweep and folded in by Commit,
// which the engine calls once per tick. Aggregate accessors (InFlight,
// Quiescent, the flit/packet counters) are therefore only current between
// Commits; per-router state (Secured, QueuedPackets, router buffers) is
// always current.
package network

import (
	"fmt"
	"math"

	"repro/internal/flit"
	"repro/internal/router"
	"repro/internal/topology"
)

// PowerView is the network's window into the power-management layer.
type PowerView interface {
	// CanAccept reports whether a router may receive flits this cycle
	// (it is in the active state and not paused for a voltage switch).
	CanAccept(routerID int) bool
	// WakeRequest asks the power manager to wake a router if it is
	// power-gated; it must be a no-op for routers already awake.
	//
	// It is also the activation funnel the engine's active-set scheduler
	// relies on: every way a router can be handed work — an injection
	// claim at an attached core, a head flit routed toward it, a wake
	// punch — calls WakeRequest before any flit can land there, so an
	// implementation that interposes here sees every lazily deferred
	// router strictly before its state can change.
	WakeRequest(routerID int)
}

// Sink observes packet deliveries.
type Sink interface {
	// PacketDelivered fires when the tail flit of p ejects at core.
	PacketDelivered(p *flit.Packet, core int, now int64)
}

// HopObserver is charged for every flit movement (dynamic energy).
type HopObserver interface {
	// FlitHopped fires when router routerID forwards or ejects a flit.
	FlitHopped(routerID int)
}

// transit is one flit in flight on an inter-router link.
type transit struct {
	deliverAt int64
	dst       int // destination router
	inPort    int
	vc        int
	f         *flit.Flit
}

// injState serializes one core's packets into its router's local port.
// The source queue is a head-indexed FIFO like the wire: the live window
// is queue[qhead:], popped slots are zeroed so delivered (pool-recycled)
// packets are not pinned by the backing array, and the window compacts
// once the dead prefix reaches the live length.
type injState struct {
	queue   []*flit.Packet
	qhead   int
	flits   []*flit.Flit // flits of the packet currently being injected
	nextSeq int
	vc      int // VC claimed for the in-flight packet, -1 if none
}

// noWireDue is the wire watermark when nothing rides a link.
const noWireDue = math.MaxInt64

// Network is the assembled fabric.
type Network struct {
	Topo    topology.Topology
	Routers []*router.Router

	pv   PowerView
	sink Sink
	hop  HopObserver

	// linkTicks is the inter-router wire latency in base ticks; 0 means
	// flits arrive within the sending cycle.
	linkTicks int64
	// wire is the in-flight transit FIFO: all sends at tick t arrive at
	// t+linkTicks, so append order is delivery order. The live window is
	// wire[wireHead:len(wire)] — popping zeroes the vacated slot (so
	// recycled flits are not pinned by the backing array) and advances
	// wireHead; compactWire slides the window back to the front whenever
	// the dead prefix reaches the live length, which amortizes to O(1)
	// per transit and bounds the backing array by the peak in-flight
	// population instead of letting it grow with total traffic.
	wire     []transit
	wireHead int
	wireNext int64 // deliverAt of the wire head, noWireDue when empty

	inj     []injState
	secured []int        // securing count per router
	slab    *router.Slab // struct-of-arrays hot state shared by all routers

	// lanes holds one staging area per shard (always at least one; the
	// serial engine and standalone callers use lane 0 for everything).
	lanes []lane

	// Aggregates kept alongside the per-router/per-core state so the
	// engine can test quiescence in O(1) every tick. Staged lane deltas
	// fold in at Commit.
	queuedPackets int // packets waiting or mid-injection across all cores
	securedTotal  int // sum of securing claims across all routers

	// cumulative per-core request counters (feature inputs)
	coreSentReq []int64
	coreRecvReq []int64

	flitsDelivered   int64
	packetsDelivered int64
	flitsInjected    int64
	packetsInjected  int64

	// pool recycles the packets of trace-driven traffic (see
	// AcquirePacket); externally created packets pass through untouched.
	// Flits are recycled by the per-lane pools.
	pool flit.Pool

	now int64 // current base tick, set by the engine each tick
}

// New builds the fabric for a topology with the given router configuration
// template (Ports/LocalPorts are derived from the topology). Inter-router
// links deliver within the sending cycle; use SetLinkTicks for a wire
// latency.
func New(topo topology.Topology, vcs, depth, pipeline int, pv PowerView, sink Sink, hop HopObserver) *Network {
	cfg := router.Config{
		Ports:      topo.PortsPerRouter(),
		LocalPorts: topo.Concentration(),
		VCs:        vcs,
		Depth:      depth,
		Pipeline:   pipeline,
	}
	n := &Network{
		Topo:        topo,
		pv:          pv,
		sink:        sink,
		hop:         hop,
		wireNext:    noWireDue,
		inj:         make([]injState, topo.NumCores()),
		secured:     make([]int, topo.NumRouters()),
		coreSentReq: make([]int64, topo.NumCores()),
		coreRecvReq: make([]int64, topo.NumCores()),
	}
	for i := range n.inj {
		n.inj[i].vc = -1
	}
	// One struct-of-arrays slab backs the hot state of every router
	// (slot = router ID), so the engine's sweeps and margin walks read
	// contiguous arrays instead of chasing per-router pointers.
	n.slab = router.NewSlab(topo.NumRouters(), cfg)
	n.Routers = make([]*router.Router, topo.NumRouters())
	for i := range n.Routers {
		n.Routers[i] = router.NewInSlab(i, n.slab, i)
	}
	n.SetShards(1)
	return n
}

// OccupiedSlots exposes the slab's occupancy plane (entry r = router r's
// occupied input-buffer slots) for the engine's contiguous hot-path
// reads. Read-only for callers.
func (n *Network) OccupiedSlots() []int32 { return n.slab.OccupiedSlots() }

// RangeInert reports whether every router in [lo, hi) is inert — empty
// buffers and no securing claims — by scanning the slab's occupancy
// plane and the secured counts as two flat slices. It is the
// quiet-margin predicate's bulk form: the engine calls it per boundary
// margin on every candidate parallel tick, so it must not touch the
// routers themselves.
func (n *Network) RangeInert(lo, hi int) bool {
	for _, o := range n.slab.OccupiedSlots()[lo:hi] {
		if o != 0 {
			return false
		}
	}
	for _, s := range n.secured[lo:hi] {
		if s != 0 {
			return false
		}
	}
	return true
}

// SetShards sizes the staging-lane array for k concurrent shards. Call it
// before traffic flows (anything staged in the old lanes is dropped).
func (n *Network) SetShards(k int) {
	if k < 1 {
		panic(fmt.Sprintf("network: bad shard count %d", k))
	}
	n.lanes = make([]lane, k)
	for i := range n.lanes {
		n.lanes[i].n = n
		n.lanes[i].wire = make([]transit, 0, 32)
		n.lanes[i].pend = make([]transit, 0, 32)
		n.lanes[i].deliv = make([]delivery, 0, 16)
	}
}

// SetTick tells the network the current base tick (used to stamp packet
// injection/ejection times).
func (n *Network) SetTick(now int64) { n.now = now }

// SetLinkTicks sets the inter-router wire latency in base ticks. Call it
// before any traffic flows.
func (n *Network) SetLinkTicks(t int64) {
	if t < 0 {
		panic(fmt.Sprintf("network: negative link latency %d", t))
	}
	n.linkTicks = t
}

// NextWireDue returns the tick at which the earliest in-flight wire flit
// lands, or math.MaxInt64 when nothing rides a link. The engine uses it to
// skip DeliverDue in O(1). Only current between Commits.
func (n *Network) NextWireDue() int64 { return n.wireNext }

// DeliverDue lands every in-flight flit whose wire latency has elapsed;
// the engine calls it once per tick before cycling routers. O(1) when
// nothing is due (wire watermark). Landings stage through lane 0, so they
// are visible to routers immediately but to the aggregate counters only
// after the tick's Commit.
func (n *Network) DeliverDue() {
	if n.now < n.wireNext {
		return
	}
	for n.wireHead < len(n.wire) && n.wire[n.wireHead].deliverAt <= n.now {
		t := n.wire[n.wireHead]
		n.wire[n.wireHead] = transit{}
		n.wireHead++
		n.lanes[0].land(t.dst, t.inPort, t.vc, t.f)
	}
	n.compactWire()
	n.updateWireNext()
}

// StageDueLandings removes every due transit from the wire and buckets
// it, in FIFO order, into the staging lane of its destination's shard
// (shardOf[dst]). The engine calls it instead of DeliverDue on ticks
// whose sweep runs concurrently; each shard worker then lands its own
// bucket with LandPending before sweeping. Watermark maintenance is
// identical to DeliverDue — the due prefix leaves the wire here, on the
// engine goroutine, so NextWireDue is current before any worker runs.
// Returns the number of transits staged.
func (n *Network) StageDueLandings(shardOf []uint8) int {
	if n.now < n.wireNext {
		return 0
	}
	staged := 0
	for n.wireHead < len(n.wire) && n.wire[n.wireHead].deliverAt <= n.now {
		t := n.wire[n.wireHead]
		n.wire[n.wireHead] = transit{}
		n.wireHead++
		l := &n.lanes[shardOf[t.dst]]
		l.pend = append(l.pend, t)
		staged++
	}
	n.compactWire()
	n.updateWireNext()
	return staged
}

// LandPending lands shard's staged due transits in wire-FIFO order
// through the shard's own lane, then clears the bucket. Under the
// engine's quiet-margin predicate every effect of a landing — the
// AcceptFlit at the destination, the securing claim on the packet's next
// hop, the wake requests both raise — stays inside the destination's
// shard (DESIGN.md §5d), so distinct shards may land concurrently.
func (n *Network) LandPending(shard int) {
	l := &n.lanes[shard]
	for i := range l.pend {
		t := l.pend[i]
		l.pend[i] = transit{}
		l.land(t.dst, t.inPort, t.vc, t.f)
	}
	l.pend = l.pend[:0]
}

// compactWire reclaims the popped prefix of the wire FIFO once it reaches
// the live length (amortized O(1) per transit); a fully drained wire
// resets in place so the backing array is reused.
func (n *Network) compactWire() {
	if n.wireHead == 0 {
		return
	}
	if n.wireHead == len(n.wire) {
		n.wire = n.wire[:0]
		n.wireHead = 0
		return
	}
	if n.wireHead >= len(n.wire)-n.wireHead {
		m := copy(n.wire, n.wire[n.wireHead:])
		tail := n.wire[m:]
		for i := range tail {
			tail[i] = transit{}
		}
		n.wire = n.wire[:m]
		n.wireHead = 0
	}
}

// wireLen returns the number of in-flight wire transits.
func (n *Network) wireLen() int { return len(n.wire) - n.wireHead }

// updateWireNext recomputes the watermark from the wire head. The wire is
// FIFO with a constant link latency, so the head is the minimum.
func (n *Network) updateWireNext() {
	if n.wireHead == len(n.wire) {
		n.wireNext = noWireDue
	} else {
		n.wireNext = n.wire[n.wireHead].deliverAt
	}
}

// AcquirePacket builds a packet from the network's free-list pool. The
// packet (and the flits it is later serialized into) is recycled
// automatically once its tail flit is delivered, so callers must not
// retain it past the delivery callback. Packets built with flit.New are
// still accepted by Inject and are never recycled.
func (n *Network) AcquirePacket(src, dst int, kind flit.Kind, injectAt int64) *flit.Packet {
	return n.pool.GetPacket(src, dst, kind, injectAt)
}

// Inject queues a packet at its source core. The source router becomes
// secured (and is punched awake if gated) until the packet's tail flit has
// entered the network. Injection is an engine-serial operation (trace
// replay, workload ticks, sink callbacks) and updates the aggregates
// directly rather than through a lane.
func (n *Network) Inject(p *flit.Packet) {
	if p.SrcCore < 0 || p.SrcCore >= n.Topo.NumCores() {
		panic(fmt.Sprintf("network: bad source core %d", p.SrcCore))
	}
	st := &n.inj[p.SrcCore]
	st.queue = append(st.queue, p)
	n.queuedPackets++
	r := n.Topo.RouterOf(p.SrcCore)
	n.secured[r]++
	n.securedTotal++
	n.pv.WakeRequest(r)
}

// QueuedPackets returns the number of packets waiting (or mid-injection)
// at a core.
func (n *Network) QueuedPackets(core int) int {
	st := &n.inj[core]
	q := len(st.queue) - st.qhead
	if st.flits != nil {
		q++
	}
	return q
}

// TotalQueued returns packets waiting across all cores.
func (n *Network) TotalQueued() int {
	total := 0
	for c := range n.inj {
		total += n.QueuedPackets(c)
	}
	return total
}

// InFlight reports whether any flit is buffered anywhere, riding a link,
// or queued for injection (used to detect drain completion). Flits only
// leave the network by ejection, so the injected/delivered flit counters
// differ exactly while any flit is buffered or on a wire. Only current
// between Commits.
func (n *Network) InFlight() bool {
	return n.wireLen() > 0 || n.flitsInjected != n.flitsDelivered || n.queuedPackets > 0
}

// Quiescent reports whether nothing is in motion or pending anywhere in
// the fabric: no flit buffered or riding a link, no packet queued or
// mid-injection at any core, and no securing claim held on any router.
// While this holds (and no new injection arrives), no router can receive
// a wake punch and no flit can move, so the engine may fast-forward time.
// Only current between Commits.
func (n *Network) Quiescent() bool {
	return n.wireLen() == 0 && n.flitsInjected == n.flitsDelivered &&
		n.queuedPackets == 0 && n.securedTotal == 0
}

// BufferedFlits returns the number of flits sitting in router buffers
// (injected, not yet delivered, and not currently riding a wire). Flits
// enter the injected counter when they land in the source router's input
// buffer, leave the delivered counter at ejection, and are excluded
// while in wire transit — so the difference minus the wire population is
// exactly the total router-buffer occupancy. The event-horizon path
// requires this to be zero: with every buffer empty, no router cycle can
// move a flit, so the only future events are wire arrivals, injections,
// and controller timers. Only current between Commits.
func (n *Network) BufferedFlits() int64 {
	return n.flitsInjected - n.flitsDelivered - int64(n.wireLen())
}

// HasQueued reports whether any core has a packet waiting or
// mid-injection. Only current between Commits.
func (n *Network) HasQueued() bool { return n.queuedPackets > 0 }

// QueuedAtRouter returns the number of packets waiting (or
// mid-injection) across the cores attached to one router. The horizon
// path uses it to find routers whose next local cycle would inject,
// which caps how far time may be skipped.
func (n *Network) QueuedAtRouter(routerID int) int {
	c0 := routerID * n.Topo.Concentration()
	q := 0
	for lp := 0; lp < n.Topo.Concentration(); lp++ {
		q += n.QueuedPackets(c0 + lp)
	}
	return q
}

// Secured reports whether a router currently holds securing claims.
func (n *Network) Secured(routerID int) bool { return n.secured[routerID] > 0 }

// Inert reports whether a router holds no buffered flit and no securing
// claim — i.e. it cannot emit any effect when cycled, and nothing already
// committed can move a flit into it this tick. The sharded engine's
// quiet-margin predicate reads it (single-threaded) to prove shard
// boundaries are isolated before sweeping concurrently.
func (n *Network) Inert(routerID int) bool {
	return n.Routers[routerID].Occupied() == 0 && n.secured[routerID] == 0
}

// Counters. Only current between Commits.
func (n *Network) FlitsDelivered() int64   { return n.flitsDelivered }
func (n *Network) PacketsDelivered() int64 { return n.packetsDelivered }
func (n *Network) FlitsInjected() int64    { return n.flitsInjected }
func (n *Network) PacketsInjected() int64  { return n.packetsInjected }

// CoreSentRequests and CoreRecvRequests return cumulative request-packet
// counters for one core (Table IV features 2 and 3 take per-epoch deltas).
func (n *Network) CoreSentRequests(core int) int64 { return n.coreSentReq[core] }
func (n *Network) CoreRecvRequests(core int) int64 { return n.coreRecvReq[core] }

// PoolStats sums free-list hits and misses across the packet pool and
// every lane's flit pool (the observability layer exposes the ratio as a
// pool hit rate). Lane pools are owner-written during concurrent sweeps,
// so call it only between Commits, like the other aggregates.
func (n *Network) PoolStats() (hits, misses int64) {
	hits, misses = n.pool.Stats()
	for i := range n.lanes {
		h, m := n.lanes[i].pool.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// CycleRouter runs one local cycle of a router against shard's staging
// lane: injection from its attached cores, then switch allocation and
// traversal. The engine must only call it for routers whose power state
// allows operation, and — during a concurrent sweep — only from the
// goroutine that owns shard, for routers inside that shard.
func (n *Network) CycleRouter(routerID, shard int) {
	l := &n.lanes[shard]
	r := n.Routers[routerID]
	c0 := routerID * n.Topo.Concentration()
	for lp := 0; lp < n.Topo.Concentration(); lp++ {
		l.injectCore(r, c0+lp, lp)
	}
	r.Cycle(l)
}

// RouterCycle is the single-shard form of CycleRouter with an immediate
// Commit, preserving the historical cycle-then-observe contract for
// standalone callers (tests, tools) that inspect counters or sink state
// after each router cycle.
func (n *Network) RouterCycle(routerID int) {
	n.CycleRouter(routerID, 0)
	n.Commit()
}

// Commit folds every lane's staged effects into the shared state, in
// ascending lane order: wire appends first (lane order equals ascending
// router order, so the merged FIFO matches what a serial sweep would have
// appended), then counter deltas, then delivery callbacks in the same
// order the serial sweep would have fired them. The engine calls it once
// per tick after the sweep; it must run single-threaded.
func (n *Network) Commit() {
	for i := range n.lanes {
		l := &n.lanes[i]
		if len(l.wire) > 0 {
			n.wire = append(n.wire, l.wire...)
			for j := range l.wire {
				l.wire[j].f = nil
			}
			l.wire = l.wire[:0]
		}
		n.flitsInjected += l.dFlitsInjected
		n.flitsDelivered += l.dFlitsDelivered
		n.packetsInjected += l.dPacketsInjected
		n.packetsDelivered += l.dPacketsDelivered
		n.queuedPackets += l.dQueued
		n.securedTotal += l.dSecured
		l.dFlitsInjected, l.dFlitsDelivered = 0, 0
		l.dPacketsInjected, l.dPacketsDelivered = 0, 0
		l.dQueued, l.dSecured = 0, 0
	}
	n.updateWireNext()
	for i := range n.lanes {
		l := &n.lanes[i]
		for j := range l.deliv {
			d := l.deliv[j]
			if n.sink != nil {
				n.sink.PacketDelivered(d.p, d.core, n.now)
			}
			n.pool.PutPacket(d.p)
			l.deliv[j] = delivery{}
		}
		l.deliv = l.deliv[:0]
	}
}

// pickInjVC chooses an injection VC with space within the kind's class.
func (n *Network) pickInjVC(r *router.Router, localPort int, k flit.Kind) (int, bool) {
	lo, hi := r.Config().VCClassRange(k)
	for v := lo; v < hi; v++ {
		if r.HasSpace(localPort, v) {
			return v, true
		}
	}
	return 0, false
}
