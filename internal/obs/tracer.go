package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Track IDs ("tid" in the trace): the engine's own phases live on
// EngineTrack; shard i's concurrent sweep spans live on ShardTrack(i).
const EngineTrack = 0

// ShardTrack returns the trace track for shard si.
func ShardTrack(si int) int { return 1 + si }

// Tracer emits engine-phase spans in the Chrome trace_event JSON format,
// one event object per line (JSONL). Perfetto and chrome://tracing load
// the output directly — their tokenizers accept a bare stream of event
// objects, so no closing bracket is needed even if a run is cut short.
//
// Timestamps are virtual: one simulated base tick maps to one trace
// microsecond, so span widths in the viewer read as tick counts.
// Successive runs traced into one file (sweeps, experiment suites) are
// offset by BeginRun so they lay out end to end instead of overlapping.
//
// Adjacent same-named spans on a track are coalesced — a serial-sweep
// phase that holds for 10k ticks is one 10k-µs span, not 10k one-µs
// spans — which keeps files loadable for long runs. A Tracer is used by
// the engine goroutine only; shard-phase spans are emitted by the engine
// after the barrier, from its own bookkeeping, never by shard
// goroutines.
type Tracer struct {
	w   *bufio.Writer
	err error

	base    int64 // virtual-µs offset of the current run
	maxTS   int64 // high-water mark across runs (pre-offset absolute µs)
	started bool  // process metadata written

	pending []span // per-track coalescing buffer, indexed by tid

	// Retention window (NewTracerWindow): events are buffered in ring
	// instead of streamed, and Flush writes only those whose end
	// timestamp falls within the last retain virtual µs (= base ticks)
	// of the high-water mark. Metadata lines (process/track names) are
	// collected in preamble and always written, so the output stays
	// loadable. retain == 0 is the unbounded streaming mode.
	retain    int64
	preamble  []string
	ring      []retEvent
	ringSweep int  // buffered-event count that triggers the next sweep
	flushed   bool // retained events already written; ring restarts empty
}

// retEvent is one buffered line in retention mode, keyed by the virtual
// timestamp at which the event ends (ts for instants, ts+dur for spans):
// an old span still overlapping the window is retained.
type retEvent struct {
	end  int64
	line string
}

type span struct {
	name   string
	detail string
	start  int64 // absolute virtual µs (base applied)
	end    int64
	active bool
}

// NewTracer wraps w (typically an *os.File; the caller closes it after
// Flush). Writes are buffered.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 64<<10)}
}

// NewTracerWindow is NewTracer with time-window retention: instead of
// streaming every event, the tracer buffers them and Flush writes only
// those whose end timestamp falls within the trailing retainTicks of
// virtual time (1 tick = 1 µs), plus the metadata preamble that keeps
// the file loadable. This bounds both file size and memory for
// always-on tracing in long-running deployments (the cosim daemon):
// what survives is exactly the unbounded tracer's tail, which
// TestTracerWindowMatchesTail pins. retainTicks <= 0 selects the
// unbounded streaming mode.
func NewTracerWindow(w io.Writer, retainTicks int64) *Tracer {
	t := NewTracer(w)
	if retainTicks > 0 {
		t.retain = retainTicks
	}
	return t
}

// BeginRun starts a new traced run: closes any pending spans, moves the
// time base past everything already emitted, and names the process and
// the engine + shard tracks. label shows up as an instant at the run's
// origin.
func (t *Tracer) BeginRun(label string, shards int) {
	t.flushPending()
	if !t.started {
		t.started = true
		t.meta("process_name", -1, "dozznoc-sim")
	}
	// Leave a visible gap between runs.
	if t.maxTS > 0 {
		t.maxTS += 100
	}
	t.base = t.maxTS
	t.meta("thread_name", EngineTrack, "engine")
	for si := 0; si < shards; si++ {
		t.meta("thread_name", ShardTrack(si), fmt.Sprintf("shard %d", si))
	}
	t.event(t.base, `{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"p"}`, "run: "+label, t.base, EngineTrack)
}

// Span records a phase of dur ticks starting at tick start on track tid.
// Zero-duration spans are dropped; a span contiguous with the track's
// pending same-named span extends it instead of emitting a new event.
func (t *Tracer) Span(tid int, name, detail string, start, dur int64) {
	if dur <= 0 {
		return
	}
	for tid >= len(t.pending) {
		t.pending = append(t.pending, span{})
	}
	s, e := t.base+start, t.base+start+dur
	if e > t.maxTS {
		t.maxTS = e
	}
	p := &t.pending[tid]
	if p.active && p.name == name && p.detail == detail && p.end == s {
		p.end = e
		return
	}
	if p.active {
		t.emitSpan(tid, p)
	}
	*p = span{name: name, detail: detail, start: s, end: e, active: true}
}

// Instant records a point event at tick on track tid; n (a count, e.g.
// landings folded at a barrier) is attached as an argument when >= 0.
func (t *Tracer) Instant(tid int, name string, tick, n int64) {
	ts := t.base + tick
	if ts > t.maxTS {
		t.maxTS = ts
	}
	if n >= 0 {
		t.event(ts, `{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{"n":%d}}`, name, ts, tid, n)
		return
	}
	t.event(ts, `{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t"}`, name, ts, tid)
}

// Flush closes pending spans and drains the buffer; it returns the first
// write error encountered over the Tracer's lifetime. Call it before
// closing the underlying file; the Tracer remains usable (BeginRun)
// afterwards. In retention mode (NewTracerWindow) this is the emission
// point: the metadata preamble (first Flush only) and the buffered
// events still inside the trailing window are written, and the buffer
// restarts empty — events emitted after a Flush accumulate toward the
// next one.
func (t *Tracer) Flush() error {
	t.flushPending()
	if t.retain > 0 {
		if !t.flushed {
			t.flushed = true
			for _, line := range t.preamble {
				t.write(line)
			}
			t.preamble = nil
		}
		cutoff := t.maxTS - t.retain
		for _, ev := range t.ring {
			if ev.end >= cutoff {
				t.write(ev.line)
			}
		}
		t.ring = t.ring[:0]
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

func (t *Tracer) flushPending() {
	for tid := range t.pending {
		if t.pending[tid].active {
			t.emitSpan(tid, &t.pending[tid])
			t.pending[tid].active = false
		}
	}
}

func (t *Tracer) emitSpan(tid int, p *span) {
	if p.detail != "" {
		t.event(p.end, `{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{"reason":%q}}`,
			p.name, p.start, p.end-p.start, tid, p.detail)
		return
	}
	t.event(p.end, `{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d}`, p.name, p.start, p.end-p.start, tid)
}

// meta lines carry no timestamp: they stream directly in unbounded mode
// and join the always-written preamble (deduplicated — BeginRun re-emits
// track names each run) in retention mode.
func (t *Tracer) meta(kind string, tid int, name string) {
	var line string
	if tid < 0 {
		line = fmt.Sprintf(`{"name":%q,"ph":"M","pid":1,"args":{"name":%q}}`+"\n", kind, name)
	} else {
		line = fmt.Sprintf(`{"name":%q,"ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`+"\n", kind, tid, name)
	}
	if t.retain > 0 {
		for _, p := range t.preamble {
			if p == line {
				return
			}
		}
		t.preamble = append(t.preamble, line)
		return
	}
	t.write(line)
}

// event formats one timestamped line; end is the virtual µs at which the
// event stops mattering (ts for instants, ts+dur for spans), the
// retention key.
func (t *Tracer) event(end int64, format string, args ...any) {
	if t.err != nil {
		return
	}
	line := fmt.Sprintf(format+"\n", args...)
	if t.retain > 0 {
		t.ring = append(t.ring, retEvent{end: end, line: line})
		if len(t.ring) >= t.ringSweep {
			t.sweepRing()
		}
		return
	}
	t.write(line)
}

// sweepRing drops buffered events that have already fallen out of the
// window. It runs every time the buffer doubles past its post-sweep
// size, so the cost is amortized O(1) per event and memory stays
// proportional to the live window.
func (t *Tracer) sweepRing() {
	cutoff := t.maxTS - t.retain
	live := t.ring[:0]
	for _, ev := range t.ring {
		if ev.end >= cutoff {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(t.ring); i++ {
		t.ring[i] = retEvent{} // release retained line strings
	}
	t.ring = live
	t.ringSweep = 2 * len(live)
	if t.ringSweep < minRingSweep {
		t.ringSweep = minRingSweep
	}
}

// minRingSweep is the smallest buffered-event count that triggers a
// retention sweep.
const minRingSweep = 256

func (t *Tracer) write(line string) {
	if t.err != nil {
		return
	}
	if _, err := t.w.WriteString(line); err != nil {
		t.err = err
	}
}
