package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Track IDs ("tid" in the trace): the engine's own phases live on
// EngineTrack; shard i's concurrent sweep spans live on ShardTrack(i).
const EngineTrack = 0

// ShardTrack returns the trace track for shard si.
func ShardTrack(si int) int { return 1 + si }

// Tracer emits engine-phase spans in the Chrome trace_event JSON format,
// one event object per line (JSONL). Perfetto and chrome://tracing load
// the output directly — their tokenizers accept a bare stream of event
// objects, so no closing bracket is needed even if a run is cut short.
//
// Timestamps are virtual: one simulated base tick maps to one trace
// microsecond, so span widths in the viewer read as tick counts.
// Successive runs traced into one file (sweeps, experiment suites) are
// offset by BeginRun so they lay out end to end instead of overlapping.
//
// Adjacent same-named spans on a track are coalesced — a serial-sweep
// phase that holds for 10k ticks is one 10k-µs span, not 10k one-µs
// spans — which keeps files loadable for long runs. A Tracer is used by
// the engine goroutine only; shard-phase spans are emitted by the engine
// after the barrier, from its own bookkeeping, never by shard
// goroutines.
type Tracer struct {
	w   *bufio.Writer
	err error

	base    int64 // virtual-µs offset of the current run
	maxTS   int64 // high-water mark across runs (pre-offset absolute µs)
	started bool  // process metadata written

	pending []span // per-track coalescing buffer, indexed by tid
}

type span struct {
	name   string
	detail string
	start  int64 // absolute virtual µs (base applied)
	end    int64
	active bool
}

// NewTracer wraps w (typically an *os.File; the caller closes it after
// Flush). Writes are buffered.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 64<<10)}
}

// BeginRun starts a new traced run: closes any pending spans, moves the
// time base past everything already emitted, and names the process and
// the engine + shard tracks. label shows up as an instant at the run's
// origin.
func (t *Tracer) BeginRun(label string, shards int) {
	t.flushPending()
	if !t.started {
		t.started = true
		t.meta("process_name", -1, "dozznoc-sim")
	}
	// Leave a visible gap between runs.
	if t.maxTS > 0 {
		t.maxTS += 100
	}
	t.base = t.maxTS
	t.meta("thread_name", EngineTrack, "engine")
	for si := 0; si < shards; si++ {
		t.meta("thread_name", ShardTrack(si), fmt.Sprintf("shard %d", si))
	}
	t.event(`{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"p"}`, "run: "+label, t.base, EngineTrack)
}

// Span records a phase of dur ticks starting at tick start on track tid.
// Zero-duration spans are dropped; a span contiguous with the track's
// pending same-named span extends it instead of emitting a new event.
func (t *Tracer) Span(tid int, name, detail string, start, dur int64) {
	if dur <= 0 {
		return
	}
	for tid >= len(t.pending) {
		t.pending = append(t.pending, span{})
	}
	s, e := t.base+start, t.base+start+dur
	if e > t.maxTS {
		t.maxTS = e
	}
	p := &t.pending[tid]
	if p.active && p.name == name && p.detail == detail && p.end == s {
		p.end = e
		return
	}
	if p.active {
		t.emitSpan(tid, p)
	}
	*p = span{name: name, detail: detail, start: s, end: e, active: true}
}

// Instant records a point event at tick on track tid; n (a count, e.g.
// landings folded at a barrier) is attached as an argument when >= 0.
func (t *Tracer) Instant(tid int, name string, tick, n int64) {
	ts := t.base + tick
	if ts > t.maxTS {
		t.maxTS = ts
	}
	if n >= 0 {
		t.event(`{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{"n":%d}}`, name, ts, tid, n)
		return
	}
	t.event(`{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t"}`, name, ts, tid)
}

// Flush closes pending spans and drains the buffer; it returns the first
// write error encountered over the Tracer's lifetime. Call it before
// closing the underlying file; the Tracer remains usable (BeginRun)
// afterwards.
func (t *Tracer) Flush() error {
	t.flushPending()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

func (t *Tracer) flushPending() {
	for tid := range t.pending {
		if t.pending[tid].active {
			t.emitSpan(tid, &t.pending[tid])
			t.pending[tid].active = false
		}
	}
}

func (t *Tracer) emitSpan(tid int, p *span) {
	if p.detail != "" {
		t.event(`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{"reason":%q}}`,
			p.name, p.start, p.end-p.start, tid, p.detail)
		return
	}
	t.event(`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d}`, p.name, p.start, p.end-p.start, tid)
}

func (t *Tracer) meta(kind string, tid int, name string) {
	if tid < 0 {
		t.event(`{"name":%q,"ph":"M","pid":1,"args":{"name":%q}}`, kind, name)
		return
	}
	t.event(`{"name":%q,"ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, kind, tid, name)
}

func (t *Tracer) event(format string, args ...any) {
	if t.err != nil {
		return
	}
	if _, err := fmt.Fprintf(t.w, format+"\n", args...); err != nil {
		t.err = err
	}
}
