package obs

import (
	"math/rand"
	"testing"
)

// TestDriftFiresOnShiftOnly: a stationary error stream never trips the
// Page-Hinkley detector; a sustained upward mean shift does.
func TestDriftFiresOnShiftOnly(t *testing.T) {
	var d driftState
	d.reset(DriftConfig{})
	rng := rand.New(rand.NewSource(3))
	noise := func() float64 { return 0.01 + 0.004*rng.Float64() }
	for i := 0; i < 500; i++ {
		if d.observe(noise()) {
			t.Fatalf("detector fired on stationary noise at epoch %d", i)
		}
	}
	fired := false
	for i := 0; i < 50; i++ {
		if d.observe(0.15 + 0.004*rng.Float64()) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("detector never fired on a sustained 0.01 -> 0.15 error shift")
	}
}

// TestDriftWarmupAndDisable: no fire inside the warmup window even
// across a huge shift, and a negative Lambda disables detection
// outright.
func TestDriftWarmupAndDisable(t *testing.T) {
	var d driftState
	d.reset(DriftConfig{Warmup: 20})
	// Shift from 0.01 to 10.0 at epoch 10 — still inside warmup, so the
	// accumulator grows but must not fire yet.
	for i := 0; i < 20; i++ {
		err := 0.01
		if i >= 10 {
			err = 10.0
		}
		if d.observe(err) {
			t.Fatalf("fired during warmup at epoch %d", i)
		}
	}
	if !d.observe(10.0) {
		t.Fatal("did not fire on the first armed epoch despite a huge accumulated shift")
	}

	var off driftState
	off.reset(DriftConfig{Lambda: -1})
	for i := 0; i < 100; i++ {
		if off.observe(10.0) {
			t.Fatal("disabled detector fired")
		}
	}
}

// TestDriftRearms: after a fire the detector resets and a later sustained
// shift fires again, so repeated drifts in one run each count.
func TestDriftRearms(t *testing.T) {
	var d driftState
	d.reset(DriftConfig{Warmup: 5})
	fires := 0
	feed := func(level float64, n int) {
		for i := 0; i < n; i++ {
			if d.observe(level) {
				fires++
			}
		}
	}
	feed(0.01, 20)
	feed(0.2, 30) // first shift
	feed(0.2, 30) // post-fire baseline re-learns at the new level
	feed(0.8, 30) // second shift
	if fires < 2 {
		t.Fatalf("detector fired %d times across two shifts, want >= 2", fires)
	}
}
