package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var evs []map[string]any
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSON line: %v\n%s", err, sc.Text())
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestTracerCoalescesAdjacentSpans: per-tick spans of the same name that
// run back to back must merge into one event; a different name or a gap
// must flush.
func TestTracerCoalescesAdjacentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.BeginRun("test", 2)
	for tick := int64(0); tick < 10; tick++ {
		tr.Span(EngineTrack, "serial-sweep", "below-min-active", tick, 1)
	}
	tr.Span(EngineTrack, "parallel-tick", "", 10, 1) // name change flushes
	tr.Span(EngineTrack, "parallel-tick", "", 12, 1) // gap at 11 flushes
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var spans []map[string]any
	for _, ev := range decodeLines(t, &buf) {
		if ev["ph"] == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) != 3 {
		t.Fatalf("expected 3 coalesced spans, got %d: %v", len(spans), spans)
	}
	if spans[0]["name"] != "serial-sweep" || spans[0]["dur"] != float64(10) {
		t.Errorf("first span should cover 10 ticks: %v", spans[0])
	}
	if args, ok := spans[0]["args"].(map[string]any); !ok || args["reason"] != "below-min-active" {
		t.Errorf("serial span lost its reason: %v", spans[0])
	}
	if spans[1]["dur"] != float64(1) || spans[2]["dur"] != float64(1) {
		t.Errorf("non-adjacent spans must not merge: %v", spans[1:])
	}
}

// TestTracerRunsDoNotOverlap: BeginRun must shift the second run's
// events past everything the first emitted.
func TestTracerRunsDoNotOverlap(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.BeginRun("first", 1)
	tr.Span(EngineTrack, "sweep-eager", "", 0, 500)
	tr.BeginRun("second", 1)
	tr.Span(EngineTrack, "sweep-eager", "", 0, 5)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var ts []float64
	for _, ev := range decodeLines(t, &buf) {
		if ev["ph"] == "X" {
			ts = append(ts, ev["ts"].(float64))
		}
	}
	if len(ts) != 2 {
		t.Fatalf("expected 2 spans, got %d", len(ts))
	}
	if ts[1] < ts[0]+500 {
		t.Errorf("second run overlaps the first: ts %v", ts)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

// TestTracerStickyError: a write failure surfaces on Flush and the
// tracer keeps accepting (and dropping) events instead of panicking.
func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(&errWriter{n: 16})
	tr.BeginRun("x", 4)
	for tick := int64(0); tick < 100; tick += 2 {
		tr.Span(EngineTrack, "a", "", tick, 1) // gaps force emission
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("expected the write error to surface on Flush")
	}
}

// TestMetricsLaneRouting: events for a router land in its owning shard's
// lane and fold into the totals once.
func TestMetricsLaneRouting(t *testing.T) {
	m := NewMetrics()
	m.BindRun("test", []int{0, 8}, 16, 500, false)
	m.RouterGated(3)  // shard 0
	m.RouterGated(11) // shard 1
	m.RouterWoken(11, 40, 6)
	m.OnLazyCatchUp(1, 25)
	m.OnSweep(0)
	m.OnFastForward(100)
	m.OnParallelTick(7)
	m.FinishRun(1000, EpochFold{ActiveRouters: 2})
	snap := m.Snapshot()
	if snap.Gatings != 2 || snap.Wakes != 1 || snap.WakeOffTicks != 40 || snap.LazyTicks != 25 {
		t.Errorf("event totals wrong: %+v", snap)
	}
	if snap.WakeStallHist.Count != 1 || snap.WakeStallHist.Sum != 6 {
		t.Errorf("wake-stall histogram wrong: %+v", snap.WakeStallHist)
	}
	if snap.FastForwardedTicks != 100 || snap.ParallelTicks != 1 || snap.ParallelLandings != 7 {
		t.Errorf("scheduling mirrors wrong: %+v", snap)
	}
	if len(snap.ShardSweeps) != 2 || snap.ShardSweeps[0] != 1 || snap.ShardSweeps[1] != 0 {
		t.Errorf("per-shard sweeps wrong: %v", snap.ShardSweeps)
	}
	if snap.Tick != 1000 || snap.Run != 1 {
		t.Errorf("run bookkeeping wrong: %+v", snap)
	}
	// Rebinding resets per-run state but keeps counting runs.
	m.BindRun("again", []int{0}, 4, 500, false)
	if snap := m.Snapshot(); snap.Gatings != 0 || snap.Run != 2 {
		t.Errorf("rebind did not reset: %+v", snap)
	}
}

// TestServerServesExpvarAndPprof starts the live endpoint on a free
// port and checks /debug/vars carries the published dozznoc snapshot
// and the pprof index answers.
func TestServerServesExpvarAndPprof(t *testing.T) {
	m := NewMetrics()
	m.BindRun("endpoint-test", []int{0}, 4, 500, false)
	m.OnFastForward(42)
	m.FinishRun(123, EpochFold{ActiveRouters: 1})

	srv, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: status %d, err %v", resp.StatusCode, err)
	}
	var vars struct {
		Dozznoc *Snapshot `json:"dozznoc"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars.Dozznoc == nil || vars.Dozznoc.Label != "endpoint-test" || vars.Dozznoc.FastForwardedTicks != 42 {
		t.Errorf("published snapshot wrong: %+v", vars.Dozznoc)
	}

	resp, err = client.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d, err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(idx), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
