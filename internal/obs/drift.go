package obs

// Drift detection: a Page–Hinkley sequential change test over the
// per-epoch folded mean absolute prediction error (Epoch.PredAbsErr).
// The paper trains its Ridge IBU predictor offline and freezes the
// weights; under nonstationary traffic (phase changes, load swings) a
// frozen model's error mean shifts upward and stays there. Page–Hinkley
// accumulates g += err - mean(err) - Delta and fires when g exceeds
// Lambda — a sustained upward shift integrates into g while stationary
// noise cancels against the running mean. Detection runs only at epoch
// folds on the engine goroutine, so it is deterministic and adds no
// hot-path cost.

// DriftConfig parameterizes the Page–Hinkley detector. The zero value
// selects the defaults below; a negative Lambda disables detection.
type DriftConfig struct {
	// Delta is the magnitude tolerance: per-epoch error deviations below
	// Delta never accumulate. Default 0.005 IBU.
	Delta float64
	// Lambda is the firing threshold on the accumulated deviation.
	// Default 0.05; negative disables the detector.
	Lambda float64
	// Warmup is the number of epochs with matured predictions observed
	// before detection arms (the running mean needs a baseline).
	// Default 10.
	Warmup int
}

// Detector defaults (DESIGN.md §5j).
const (
	DefaultDriftDelta  = 0.005
	DefaultDriftLambda = 0.05
	DefaultDriftWarmup = 10
)

// withDefaults fills zero fields with the defaults.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.Delta == 0 {
		c.Delta = DefaultDriftDelta
	}
	if c.Lambda == 0 {
		c.Lambda = DefaultDriftLambda
	}
	if c.Warmup == 0 {
		c.Warmup = DefaultDriftWarmup
	}
	return c
}

// driftState is the detector's running state for one run (reset by
// BindRun; the config survives rebinding).
type driftState struct {
	cfg  DriftConfig
	n    int64   // epochs observed since the last reset/fire
	mean float64 // running mean of the observed per-epoch errors
	g    float64 // Page–Hinkley accumulator
}

func (d *driftState) reset(cfg DriftConfig) {
	d.cfg = cfg.withDefaults()
	d.n, d.mean, d.g = 0, 0, 0
}

// observe feeds one epoch's mean absolute prediction error and reports
// whether the detector fired. After a fire the state re-arms from
// scratch so repeated drifts in one run each count.
func (d *driftState) observe(err float64) bool {
	if d.cfg.Lambda < 0 {
		return false
	}
	d.n++
	d.mean += (err - d.mean) / float64(d.n)
	d.g += err - d.mean - d.cfg.Delta
	if d.g < 0 {
		d.g = 0
	}
	if d.n <= int64(d.cfg.Warmup) {
		return false
	}
	if d.g > d.cfg.Lambda {
		cfg := d.cfg
		d.reset(cfg)
		return true
	}
	return false
}
