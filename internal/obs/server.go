package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// liveSnapshot is the snapshot most recently published by any Metrics
// fold in the process. It is package-level because expvar names are
// process-global (Publish panics on duplicates): the endpoint always
// shows the most recently folded run, which is what a human watching a
// sweep wants.
var liveSnapshot atomic.Pointer[Snapshot]

var publishOnce sync.Once

func setLiveSnapshot(s *Snapshot) {
	liveSnapshot.Store(s)
	publishOnce.Do(func() {
		expvar.Publish("dozznoc", expvar.Func(func() any {
			return liveSnapshot.Load()
		}))
	})
}

// LiveSnapshot returns the most recently published snapshot, or nil if
// no fold has happened yet.
func LiveSnapshot() *Snapshot { return liveSnapshot.Load() }

// Server is the live observability endpoint: expvar counters under
// /debug/vars (including the "dozznoc" snapshot) and the standard pprof
// handlers under /debug/pprof/. It uses its own mux so enabling it never
// mutates http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "localhost:6060"; ":0" picks a free
// port — read it back with Addr) and serves in a background goroutine.
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and any in-flight handlers down.
func (s *Server) Close() error { return s.srv.Close() }
