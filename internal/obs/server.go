package obs

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// liveSnapshot is the snapshot most recently published by any Metrics
// fold in the process. It is package-level because expvar names are
// process-global (Publish panics on duplicates): the endpoint always
// shows the most recently folded run, which is what a human watching a
// sweep wants.
var liveSnapshot atomic.Pointer[Snapshot]

var publishOnce sync.Once

func setLiveSnapshot(s *Snapshot) {
	liveSnapshot.Store(s)
	publishOnce.Do(func() {
		expvar.Publish("dozznoc", expvar.Func(func() any {
			return liveSnapshot.Load()
		}))
	})
}

// LiveSnapshot returns the most recently published snapshot, or nil if
// no fold has happened yet.
func LiveSnapshot() *Snapshot { return liveSnapshot.Load() }

// driftGauge is the process-global "dozznoc.pred_drift" expvar gauge:
// 1 after the Page–Hinkley detector has fired in the current run, 0
// otherwise (BindRun clears it). Like the snapshot it is process-global
// because expvar names are.
var (
	driftGauge     expvar.Int
	driftGaugeOnce sync.Once
)

func setDriftGauge(v int64) {
	driftGaugeOnce.Do(func() {
		expvar.Publish("dozznoc.pred_drift", &driftGauge)
	})
	driftGauge.Set(v)
}

// Server is the live observability endpoint: expvar counters under
// /debug/vars (including the "dozznoc" snapshot), the standard pprof
// handlers under /debug/pprof/, and a Prometheus text exposition of the
// live snapshot under /metrics. It uses its own mux so enabling it never
// mutates http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// shutdownTimeout bounds how long Close waits for in-flight handlers
// before force-closing their connections.
const shutdownTimeout = 5 * time.Second

// StartServer listens on addr (e.g. "localhost:6060"; ":0" picks a free
// port — read it back with Addr) and serves in a background goroutine.
// The server carries header/idle timeouts so a stalled or idle scrape
// client can never pin a connection open for the life of the run.
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", metricsHandler)
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close gracefully shuts the server down: it stops accepting, waits up
// to shutdownTimeout for in-flight handlers to finish, then force-closes
// whatever remains. The first real error along that path is returned.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		if cerr := s.srv.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			return cerr
		}
		return err
	}
	return err
}

// metricsHandler renders the live snapshot in Prometheus text
// exposition format (promtext.go). Before the first fold there is
// nothing to expose and the body is empty — still a valid exposition.
func metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if snap := LiveSnapshot(); snap != nil {
		w.Write(RenderMetrics(snap)) //nolint:errcheck // best-effort scrape reply
	}
}
