package obs

import (
	"strings"
	"testing"
)

// testSnapshot builds a synthetic snapshot exercising every rendered
// family: populated histograms, per-router attribution, drift state.
func testSnapshot() *Snapshot {
	var abs, lat, stall Hist
	for i := int64(0); i < 100; i++ {
		abs.Observe(i * ErrScale / 1000) // errors up to 0.1 IBU
		lat.Observe(20 + i%30)
	}
	stall.Observe(6)
	stall.Observe(12)
	s := &Snapshot{
		Run:   1,
		Label: "dozznoc/banded",
		Tick:  20000,

		Epochs:         40,
		Gatings:        12,
		Wakes:          11,
		ModeSwitches:   9,
		EpochDecisions: 5120,

		MeanAbsPredErr:       0.0123,
		DecisionsByMode:      [5]int64{4000, 600, 400, 100, 20},
		UnderPredDecisions:   37,
		OverPredDecisions:    81,
		UnderPredStallTicks:  222,
		OverPredStaticWasteJ: 3.5e-7,
		RouterUnderPred:      []int64{0, 5, 0, 32},
		RouterOverPred:       []int64{81, 0, 0, 0},
		DriftEvents:          2,
		LastDriftTick:        18000,
		AbsErrHist:           abs.Snapshot(),
		LatencyHist:          lat.Snapshot(),
		WakeStallHist:        stall.Snapshot(),
	}
	return s
}

// TestRenderMetricsLintsClean renders a fully populated snapshot and
// requires the output to pass the vendored exposition checker and to
// carry the families the acceptance criteria name.
func TestRenderMetricsLintsClean(t *testing.T) {
	out := string(RenderMetrics(testSnapshot()))
	if errs := LintExposition([]byte(out)); len(errs) != 0 {
		t.Fatalf("rendered exposition fails lint:\n%v\n---\n%s", errs, out)
	}
	for _, want := range []string{
		`dozznoc_pred_abs_err_ibu_bucket{model="dozznoc",le=`,
		`dozznoc_pred_abs_err_ibu_count{model="dozznoc"} 100`,
		`dozznoc_pred_abs_err_ibu_quantile{model="dozznoc",q="0.99"}`,
		`dozznoc_packet_latency_ticks_bucket`,
		`dozznoc_wake_stall_ticks_count{model="dozznoc"} 2`,
		`dozznoc_underpred_decisions_total{model="dozznoc"} 37`,
		`dozznoc_overpred_static_waste_joules_total{model="dozznoc"} 3.5e-07`,
		`dozznoc_epoch_decisions_by_mode_total{model="dozznoc",mode="M3"} 4000`,
		`dozznoc_router_underpred_total{model="dozznoc",router="3"} 32`,
		`dozznoc_pred_drift_events_total{model="dozznoc"} 2`,
		`dozznoc_pred_drift_active{model="dozznoc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Routers with zero counts must not appear.
	if strings.Contains(out, `router="2"`) {
		t.Error("zero-count router rendered")
	}
}

// TestRenderMetricsDeterministic: rendering the Deterministic() snapshot
// twice yields identical bytes (the golden /metrics test in internal/sim
// depends on this).
func TestRenderMetricsDeterministic(t *testing.T) {
	s := testSnapshot().Deterministic()
	a, b := RenderMetrics(&s), RenderMetrics(&s)
	if string(a) != string(b) {
		t.Fatal("RenderMetrics is not a pure function of the snapshot")
	}
	if strings.Contains(string(a), "dozznoc_ticks_per_sec{model=\"dozznoc\"} 0\n") == false {
		t.Error("deterministic snapshot should render a zero ticks_per_sec")
	}
}

// TestLintExpositionCatchesBreakage: the vendored checker must reject
// the classes of malformed output it exists to catch.
func TestLintExpositionCatchesBreakage(t *testing.T) {
	cases := map[string]string{
		"bad metric name": "# TYPE 9bad counter\n9bad 1\n",
		"unknown type":    "# TYPE x flavor\nx 1\n",
		"undeclared sample (histogram series without TYPE)": "x_bucket{le=\"1\"} 2\n",
		"unparseable value":    "# TYPE x counter\nx{a=\"b\"} pickle\n",
		"unterminated labels":  "# TYPE x counter\nx{a=\"b\" 1\n",
		"non-monotone buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"missing +Inf bucket":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n",
		"+Inf != count":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
		"duplicate TYPE":       "# TYPE x counter\n# TYPE x counter\nx 1\n",
	}
	for name, in := range cases {
		if errs := LintExposition([]byte(in)); len(errs) == 0 {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
	clean := "# HELP x ok\n# TYPE x counter\nx{a=\"b\"} 1\n"
	if errs := LintExposition([]byte(clean)); len(errs) != 0 {
		t.Errorf("lint rejected clean exposition: %v", errs)
	}
}
