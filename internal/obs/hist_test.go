package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestHistBucketAssignment pins the log-bucket layout: bucket 0 holds
// exact zeros, bucket i holds [2^(i-1), 2^i), the last bucket absorbs
// everything at or above 2^30, and negatives clamp to zero.
func TestHistBucketAssignment(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-7, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1 << 20, 21},
		{1<<30 - 1, 30},
		{1 << 30, HistBuckets - 1},
		{1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.v)
		if h.Buckets[c.bucket] != 1 {
			t.Errorf("Observe(%d): buckets %v, want count in bucket %d", c.v, h.Buckets, c.bucket)
		}
		if h.Count != 1 {
			t.Errorf("Observe(%d): count %d", c.v, h.Count)
		}
	}
	var h Hist
	h.Observe(-5)
	if h.Sum != 0 {
		t.Errorf("negative observation leaked into sum: %d", h.Sum)
	}
}

// TestHistMergeMatchesSerial is the randomized merge property: values
// scattered across k histogram copies and merged in arbitrary order must
// be field-identical to one serial histogram — the exact invariant the
// per-shard lane fold depends on.
func TestHistMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		parts := make([]Hist, k)
		var serial Hist
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(4) {
			case 0:
				v = 0
			case 1:
				v = rng.Int63n(64)
			case 2:
				v = rng.Int63n(1 << 20)
			default:
				v = rng.Int63() // exercises the overflow bucket
			}
			serial.Observe(v)
			parts[rng.Intn(k)].Observe(v)
		}
		var merged Hist
		// Merge in a shuffled order — addition must make order irrelevant.
		for _, i := range rng.Perm(k) {
			merged.Merge(&parts[i])
		}
		if merged != serial {
			t.Fatalf("trial %d: merged fold differs from serial:\nmerged: %+v\nserial: %+v", trial, merged, serial)
		}
	}
}

// TestHistQuantile checks the interpolated quantile estimator: empty
// histogram yields 0, estimates are monotone in q, and a point mass
// lands inside its own bucket's bounds.
func TestHistQuantile(t *testing.T) {
	var empty Hist
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	last := -1.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Errorf("quantile not monotone: q=%v -> %v after %v", q, v, last)
		}
		last = v
	}
	if v := h.Quantile(1); v < 512 || v > 1023 {
		t.Errorf("max quantile %v outside the top occupied bucket [512,1023]", v)
	}
	// A point mass at 100 (bucket [64,127]) must estimate within bounds.
	var pm Hist
	for i := 0; i < 10; i++ {
		pm.Observe(100)
	}
	if v := pm.Quantile(0.5); v < 64 || v > 127 {
		t.Errorf("point-mass median %v outside its bucket [64,127]", v)
	}
}

// TestHistSnapshotRoundTrip pins Snapshot/Hist as inverses, trailing-zero
// trimming, and clone independence.
func TestHistSnapshotRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 5, 5, 300} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 10 { // 300 lands in bucket 9 ([256,511])
		t.Errorf("trailing zeros not trimmed: %d buckets", len(s.Buckets))
	}
	back := s.Hist()
	if back != h {
		t.Errorf("round trip lost data:\ngot:  %+v\nwant: %+v", back, h)
	}
	c := s.clone()
	c.Buckets[0] = 99
	if s.Buckets[0] == 99 {
		t.Error("clone shares bucket backing with original")
	}
	var zero Hist
	if s := zero.Snapshot(); s.Buckets != nil || s.Count != 0 {
		t.Errorf("empty snapshot not empty: %+v", s)
	}
	zs := zero.Snapshot()
	if !reflect.DeepEqual(zs.Hist(), zero) {
		t.Error("empty round trip differs")
	}
}
