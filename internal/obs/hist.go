package obs

import "math/bits"

// HistBuckets is the fixed bucket count of every streaming histogram.
// Buckets are power-of-two wide (log-bucketed): bucket 0 holds exact
// zeros, bucket i (i >= 1) holds values v with 2^(i-1) <= v < 2^i, and
// the last bucket additionally absorbs everything at or above 2^30.
// Thirty-two buckets therefore cover [0, 2^30) exactly — wider than any
// plausible latency or stall duration in base ticks, and wider than the
// fixed-point IBU error range (ErrScale is 2^20, so an error of 1.0 IBU
// lands in bucket 21).
const HistBuckets = 32

// ErrScale is the fixed-point quantization applied to float IBU
// absolute errors before they enter a Hist: the histogram observes
// round(err * ErrScale), so one unit is ~1e-6 IBU and quantiles divide
// back out. Integer quantization keeps the merge bit-exact and the fold
// free of float accumulation order.
const ErrScale = 1 << 20

// Hist is a fixed-size, log-bucketed streaming histogram. It is
// mergeable by plain addition of its fields, which is what lets per-shard
// copies staged in Lanes be folded at the epoch barrier into totals that
// are bucket-identical to a single serial histogram regardless of which
// lane each observation landed in. The zero value is an empty histogram.
type Hist struct {
	Count   int64
	Sum     int64
	Buckets [HistBuckets]int64
}

// Observe records one non-negative value (negative values clamp to 0).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v)) // 0 for v==0, i for 2^(i-1) <= v < 2^i
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Count++
	h.Sum += v
	h.Buckets[b]++
}

// Merge adds o's observations into h. Because every field is a plain
// sum, merge order is irrelevant and merging is exact.
func (h *Hist) Merge(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// bucketUpper returns the inclusive upper bound of bucket i (the le=
// boundary the Prometheus exposition renders): 0 for bucket 0, 2^i - 1
// for bucket i >= 1.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) of the
// observed values: the upper bound of the bucket holding the q·Count-th
// observation, linearly interpolated within the bucket. It returns 0 on
// an empty histogram. The estimate is deterministic — a pure function of
// the bucket counts.
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i := 0; i < HistBuckets; i++ {
		c := float64(h.Buckets[i])
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(bucketUpper(i))
			if c <= 0 {
				return hi
			}
			frac := (rank - seen) / c
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return float64(bucketUpper(HistBuckets - 1))
}

// HistSnapshot is the JSON-friendly form of a Hist: bucket counts with
// trailing zero buckets trimmed so quiet histograms stay compact in
// sweep rows and the expvar snapshot. It is deterministic for a given
// run configuration.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot converts h to its serializable form (copies the buckets).
func (h *Hist) Snapshot() HistSnapshot {
	n := HistBuckets
	for n > 0 && h.Buckets[n-1] == 0 {
		n--
	}
	s := HistSnapshot{Count: h.Count, Sum: h.Sum}
	if n > 0 {
		s.Buckets = append([]int64(nil), h.Buckets[:n]...)
	}
	return s
}

// Hist reconstructs the full fixed-size histogram from a snapshot (the
// inverse of Snapshot; missing trailing buckets are zero).
func (s *HistSnapshot) Hist() Hist {
	h := Hist{Count: s.Count, Sum: s.Sum}
	copy(h.Buckets[:], s.Buckets)
	return h
}

// clone deep-copies the snapshot (the bucket slice is shared otherwise).
func (s HistSnapshot) clone() HistSnapshot {
	s.Buckets = append([]int64(nil), s.Buckets...)
	return s
}
