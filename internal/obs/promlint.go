package obs

// A small, dependency-free checker for the Prometheus text exposition
// format (version 0.0.4), vendored so `make metrics-lint` can validate a
// live /metrics scrape without pulling in the upstream client libraries.
// It checks the structural rules a scraper relies on: well-formed HELP /
// TYPE / sample lines, TYPE declared before a family's samples, sample
// names consistent with the declared family (histogram suffixes
// included), parseable values, and histogram invariants (cumulative
// buckets monotone in le, a +Inf bucket present and equal to _count).

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

var validMetricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

type histCheck struct {
	lastCum   float64
	lastLe    float64
	infCount  float64
	haveInf   bool
	count     float64
	haveCount bool
}

// LintExposition validates data and returns every problem found (nil if
// the exposition is clean).
func LintExposition(data []byte) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := map[string]string{} // family -> declared TYPE
	hists := map[string]*histCheck{}
	var curFamily string

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				fail(ln, "malformed HELP line %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				fail(ln, "malformed TYPE line %q", line)
				continue
			}
			name, typ := fields[0], fields[1]
			if !validMetricName(name) {
				fail(ln, "invalid metric name %q in TYPE line", name)
			}
			if !validMetricTypes[typ] {
				fail(ln, "unknown metric type %q", typ)
			}
			if _, dup := types[name]; dup {
				fail(ln, "duplicate TYPE declaration for %q", name)
			}
			types[name] = typ
			curFamily = name
			if typ == "histogram" {
				hists[name] = &histCheck{lastLe: math.Inf(-1)}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(ln, "%v", err)
			continue
		}
		family := sampleFamily(name, types)
		if family == "" {
			fail(ln, "sample %q has no preceding TYPE declaration", name)
			continue
		}
		if curFamily != "" && family != curFamily {
			// Samples of a family must be grouped; a family reappearing
			// after another began is an interleave error.
			if _, seen := types[family]; seen && family != curFamily {
				fail(ln, "sample %q interleaved outside its %q family block", name, family)
			}
		}
		if types[family] == "histogram" {
			h := hists[family]
			switch {
			case name == family+"_bucket":
				leStr, ok := labels["le"]
				if !ok {
					fail(ln, "histogram bucket %q missing le label", name)
					continue
				}
				le, err := parseLe(leStr)
				if err != nil {
					fail(ln, "histogram bucket %q: %v", name, err)
					continue
				}
				if le <= h.lastLe {
					fail(ln, "histogram %q buckets not in increasing le order (%q)", family, leStr)
				}
				if value < h.lastCum {
					fail(ln, "histogram %q cumulative bucket counts decrease at le=%q", family, leStr)
				}
				h.lastLe, h.lastCum = le, value
				if math.IsInf(le, +1) {
					h.haveInf, h.infCount = true, value
				}
			case name == family+"_count":
				h.haveCount, h.count = true, value
			case name == family+"_sum":
			default:
				fail(ln, "sample %q is not a valid histogram series of %q", name, family)
			}
		}
	}

	for family, h := range hists {
		if !h.haveInf {
			errs = append(errs, fmt.Errorf("histogram %q has no +Inf bucket", family))
		}
		if !h.haveCount {
			errs = append(errs, fmt.Errorf("histogram %q has no _count sample", family))
		} else if h.haveInf && h.infCount != h.count {
			errs = append(errs, fmt.Errorf("histogram %q: +Inf bucket %v != _count %v", family, h.infCount, h.count))
		}
	}
	return errs
}

// sampleFamily maps a sample name to its declared family, resolving the
// reserved histogram/summary suffixes.
func sampleFamily(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return ""
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le value %q", s)
	}
	return v, nil
}

// parseSample parses `name{label="v",...} value` (labels optional).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label pair in %q", line)
			}
			lname := rest[:eq]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			lval, tail, perr := parseQuoted(rest)
			if perr != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", perr, line)
			}
			labels[lname] = lval
			rest = tail
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped string at the
// start of s and returns the unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	var sb strings.Builder
	for j := 1; j < len(s); j++ {
		switch s[j] {
		case '\\':
			j++
			if j >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[j] {
			case 'n':
				sb.WriteByte('\n')
			case '\\', '"':
				sb.WriteByte(s[j])
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[j])
			}
		case '"':
			return sb.String(), s[j+1:], nil
		default:
			sb.WriteByte(s[j])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
