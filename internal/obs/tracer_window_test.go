package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// windowScript drives one scripted event sequence — two runs, coalesced
// and distinct spans across tracks, instants, a long early span that
// must age out — into tr. Keeping the script in one place guarantees the
// unbounded and windowed tracers in the tests below see byte-identical
// call sequences.
func windowScript(tr *Tracer) {
	tr.BeginRun("alpha", 2)
	tr.Span(EngineTrack, "serial-sweep", "", 0, 500)
	tr.Span(ShardTrack(0), "sweep", "", 100, 50)
	tr.Instant(EngineTrack, "epoch", 500, -1)
	tr.Span(EngineTrack, "fast-forward", "", 500, 4000)
	tr.Instant(EngineTrack, "land", 4500, 12)
	tr.Span(EngineTrack, "serial-sweep", "gate", 4500, 200)
	tr.Span(EngineTrack, "serial-sweep", "gate", 4700, 300) // coalesces
	tr.BeginRun("beta", 2)
	tr.Span(EngineTrack, "serial-sweep", "", 0, 100)
	tr.Span(ShardTrack(1), "sweep", "", 0, 80)
	tr.Instant(EngineTrack, "epoch", 100, -1)
	tr.Span(EngineTrack, "fast-forward", "", 100, 9000)
	tr.Span(EngineTrack, "serial-sweep", "drain", 9100, 50)
}

// windowTail computes, from an unbounded tracer's output, what a
// retention window of retain ticks must emit: every metadata line once,
// in first-appearance order, then every timestamped event whose end
// (ts, plus dur for spans) falls within retain of the global high-water
// mark, in emission order. This re-derives the retention contract from
// the wire format alone, independent of the Tracer's internals.
func windowTail(t *testing.T, unbounded *bytes.Buffer, retain int64) string {
	t.Helper()
	type ev struct {
		line string
		meta bool
		end  int64
	}
	var (
		evs   []ev
		maxTS int64
	)
	sc := bufio.NewScanner(bytes.NewReader(unbounded.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		var obj struct {
			Ph  string `json:"ph"`
			TS  int64  `json:"ts"`
			Dur int64  `json:"dur"`
		}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if obj.Ph == "M" {
			evs = append(evs, ev{line: line, meta: true})
			continue
		}
		end := obj.TS + obj.Dur
		if end > maxTS {
			maxTS = end
		}
		evs = append(evs, ev{line: line, end: end})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var (
		b    strings.Builder
		seen []string
	)
	cutoff := maxTS - retain
	for _, e := range evs {
		if e.meta {
			dup := false
			for _, s := range seen {
				if s == e.line {
					dup = true
					break
				}
			}
			if !dup {
				seen = append(seen, e.line)
				b.WriteString(e.line + "\n")
			}
		}
	}
	for _, e := range evs {
		if !e.meta && e.end >= cutoff {
			b.WriteString(e.line + "\n")
		}
	}
	return b.String()
}

// TestTracerWindowMatchesTail pins the retention contract: a windowed
// tracer's output is exactly the unbounded tracer's tail — deduplicated
// metadata preamble plus every event still overlapping the trailing
// window — for the same call sequence. Checked across window sizes that
// cut inside run 2, span the run boundary, and cover everything.
func TestTracerWindowMatchesTail(t *testing.T) {
	var full bytes.Buffer
	un := NewTracer(&full)
	windowScript(un)
	if err := un.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, retain := range []int64{1, 200, 5000, 1 << 40} {
		var got bytes.Buffer
		w := NewTracerWindow(&got, retain)
		windowScript(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		want := windowTail(t, &full, retain)
		if got.String() != want {
			t.Fatalf("retain=%d: window output diverges from unbounded tail\ngot:\n%s\nwant:\n%s",
				retain, got.String(), want)
		}
		if retain == 1<<40 && countEventLines(got.String()) != countEventLines(full.String()) {
			t.Fatalf("retain=%d dropped events: %d vs %d",
				retain, countEventLines(got.String()), countEventLines(full.String()))
		}
	}
}

// TestTracerWindowSweepBoundsMemory drives far more events than the
// window holds and checks the in-run sweep keeps the buffer near the
// live set instead of growing with the run.
func TestTracerWindowSweepBoundsMemory(t *testing.T) {
	var got bytes.Buffer
	w := NewTracerWindow(&got, 10)
	w.BeginRun("long", 1)
	for i := int64(0); i < 100_000; i++ {
		w.Instant(EngineTrack, "tick", i, -1)
	}
	if n := len(w.ring); n > 2*minRingSweep {
		t.Fatalf("ring holds %d buffered events for a 10-tick window", n)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Window [99990, 100000] minus the preamble: 11 instants survive.
	if n := countEventLines(got.String()); n != 11 {
		t.Fatalf("flushed %d events, want 11", n)
	}
}

// TestTracerWindowRestartsAfterFlush: events emitted after a Flush
// accumulate toward the next one, without re-writing the preamble.
func TestTracerWindowRestartsAfterFlush(t *testing.T) {
	var got bytes.Buffer
	w := NewTracerWindow(&got, 1<<40)
	w.BeginRun("first", 1)
	w.Instant(EngineTrack, "a", 5, -1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	first := got.String()
	w.BeginRun("second", 1)
	w.Instant(EngineTrack, "b", 5, -1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	second := strings.TrimPrefix(got.String(), first)
	if strings.Contains(second, `"ph":"M"`) {
		t.Fatalf("second flush re-wrote metadata:\n%s", second)
	}
	if strings.Contains(second, `"a"`) || !strings.Contains(second, `"b"`) {
		t.Fatalf("second flush has wrong events:\n%s", second)
	}
}

func countEventLines(s string) int {
	n := 0
	for _, line := range strings.Split(strings.TrimSuffix(s, "\n"), "\n") {
		if line != "" && !strings.Contains(line, `"ph":"M"`) {
			n++
		}
	}
	return n
}
