package obs

// Prometheus text exposition (format version 0.0.4) of an obs.Snapshot,
// hand-rolled so the simulator stays dependency-free. The renderer is a
// pure function of the snapshot: rendering a Deterministic() snapshot
// yields byte-identical output across reruns, which is what the golden
// exposition test pins.

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/power"
)

// metricQuantiles are the quantiles rendered for every histogram family,
// as <family>_quantile{q="..."} gauge samples. They are rank estimates
// interpolated inside the log-spaced bucket holding the target rank
// (Hist.Quantile), not exact order statistics.
var metricQuantiles = []float64{0.5, 0.9, 0.99}

// RenderMetrics renders snap in Prometheus text exposition format.
func RenderMetrics(snap *Snapshot) []byte {
	var b bytes.Buffer
	model := snap.Label
	if i := strings.IndexByte(model, '/'); i >= 0 {
		model = model[:i]
	}
	lbl := `model="` + escapeLabel(model) + `"`

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s{%s} %s\n",
			name, help, name, name, lbl, formatFloat(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %s\n",
			name, help, name, name, lbl, formatFloat(v))
	}

	gauge("dozznoc_tick", "Last folded simulation tick (base clock).", float64(snap.Tick))
	counter("dozznoc_epochs_total", "Epoch folds completed.", float64(snap.Epochs))
	counter("dozznoc_gatings_total", "Router power-gating events.", float64(snap.Gatings))
	counter("dozznoc_wakes_total", "Router wakeup events.", float64(snap.Wakes))
	counter("dozznoc_mode_switches_total", "DVFS mode-switch events.", float64(snap.ModeSwitches))
	counter("dozznoc_epoch_decisions_total", "Per-router epoch boundary decisions.", float64(snap.EpochDecisions))

	// Per-mode decision outcomes, one labelled sample per active mode.
	fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n",
		"dozznoc_epoch_decisions_by_mode_total", "Epoch boundary decisions by chosen DVFS mode.",
		"dozznoc_epoch_decisions_by_mode_total")
	for i, n := range snap.DecisionsByMode {
		fmt.Fprintf(&b, "dozznoc_epoch_decisions_by_mode_total{%s,mode=%q} %d\n",
			lbl, power.ActiveMode(i).String(), n)
	}

	gauge("dozznoc_mean_abs_pred_err_ibu", "Run mean absolute IBU prediction error (matured decisions).", snap.MeanAbsPredErr)
	counter("dozznoc_underpred_decisions_total", "Matured decisions whose chosen mode undershot the measured IBU.", float64(snap.UnderPredDecisions))
	counter("dozznoc_overpred_decisions_total", "Matured decisions whose chosen mode overshot the measured IBU.", float64(snap.OverPredDecisions))
	counter("dozznoc_underpred_stall_ticks_total", "Wakeup stall ticks attributed to under-prediction.", float64(snap.UnderPredStallTicks))
	counter("dozznoc_overpred_static_waste_joules_total", "Static energy attributed to over-prediction (missed gating/slow-down).", snap.OverPredStaticWasteJ)
	counter("dozznoc_pred_drift_events_total", "Page-Hinkley prediction-drift detector fires.", float64(snap.DriftEvents))
	drift := 0.0
	if snap.DriftEvents > 0 {
		drift = 1
	}
	gauge("dozznoc_pred_drift_active", "1 once the drift detector has fired this run.", drift)
	gauge("dozznoc_ticks_per_sec", "Simulated base ticks per wall-clock second.", snap.TicksPerSec)

	renderRouterCounter(&b, "dozznoc_router_underpred_total",
		"Under-prediction decisions per router (routers with at least one).", lbl, snap.RouterUnderPred)
	renderRouterCounter(&b, "dozznoc_router_overpred_total",
		"Over-prediction decisions per router (routers with at least one).", lbl, snap.RouterOverPred)

	renderHist(&b, "dozznoc_pred_abs_err_ibu",
		"Absolute IBU prediction error per matured decision.", lbl, snap.AbsErrHist, 1.0/ErrScale)
	renderHist(&b, "dozznoc_packet_latency_ticks",
		"Delivered-packet latency in base ticks.", lbl, snap.LatencyHist, 1)
	renderHist(&b, "dozznoc_wake_stall_ticks",
		"Per-wakeup stall duration in base ticks.", lbl, snap.WakeStallHist, 1)

	return b.Bytes()
}

// renderRouterCounter emits one labelled sample per router with a
// nonzero count, so a 64x64 mesh with a handful of mispredicting
// routers stays readable.
func renderRouterCounter(b *bytes.Buffer, name, help, lbl string, perRouter []int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for r, n := range perRouter {
		if n != 0 {
			fmt.Fprintf(b, "%s{%s,router=\"%d\"} %d\n", name, lbl, r, n)
		}
	}
}

// renderHist emits one Prometheus histogram family plus its
// <name>_quantile gauge family. scale converts stored integer units to
// exposition units (1/ErrScale for the fixed-point IBU error histogram,
// 1 for tick-valued histograms); bucket boundaries scale the same way so
// le= values are in exposition units.
func renderHist(b *bytes.Buffer, name, help, lbl string, s HistSnapshot, scale float64) {
	h := s.Hist()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += h.Buckets[i]
		// Collapse trailing empty buckets into +Inf to keep quiet
		// histograms compact; always emit bucket 0 so the family is
		// non-empty even before any observation.
		if i > 0 && i >= len(s.Buckets) {
			break
		}
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n",
			name, lbl, formatFloat(float64(bucketUpper(i))*scale), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, lbl, h.Count)
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, lbl, formatFloat(float64(h.Sum)*scale))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, lbl, h.Count)

	qname := name + "_quantile"
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n",
		qname, "Bucket-interpolated quantile estimates of "+name+".", qname)
	for _, q := range metricQuantiles {
		fmt.Fprintf(b, "%s{%s,q=%q} %s\n",
			qname, lbl, formatFloat(q), formatFloat(h.Quantile(q)*scale))
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
