// Package obs is the engine's observability layer: per-shard metric
// lanes folded at epoch boundaries (the sharding-safe counterpart of the
// policy package's stats lanes), Chrome trace_event phase tracing
// (tracer.go), and a live expvar/pprof HTTP endpoint (server.go).
//
// The design contract is that observability must never perturb results
// and must cost almost nothing when disabled: every hook the engine and
// controller call is a branch on a nil pointer, shard-goroutine hooks
// write only to the calling shard's padded lane, and everything else —
// residency deltas, energy deltas, prediction accuracy, expvar gauges —
// is derived at epoch folds on the engine goroutine, after the engine's
// catch-up barrier, from state that is already exact (DESIGN.md §5e).
package obs

import (
	"fmt"
	"math"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/timing"
)

// Observer bundles the optional observability sinks a run can attach
// (sim.Config.Obs). Either field may be nil independently: Metrics
// collects counters and the per-epoch series, Tracer emits engine-phase
// spans. A nil *Observer disables the layer entirely.
type Observer struct {
	Metrics *Metrics
	Tracer  *Tracer
}

// New returns an Observer with a fresh Metrics and no Tracer — the common
// "counters only" configuration.
func New() *Observer { return &Observer{Metrics: NewMetrics()} }

// Lane is one shard's staging area for event counters. During a
// concurrent sweep only the owning shard's goroutine writes it (the same
// ownership discipline as policy.SetStatsLanes); the trailing pad keeps
// neighboring lanes off one cache line. Lanes are drained into the run
// totals at every epoch fold, which runs single-threaded after the
// engine's catch-up barrier.
type Lane struct {
	Gatings      int64 // Active -> Inactive transitions
	Wakes        int64 // Inactive -> Wakeup transitions
	WakeOffTicks int64 // summed lengths of the gating periods those wakes ended
	ModeSwitches int64 // voltage/frequency switches started
	LazyTicks    int64 // router-ticks covered by deferred catch-up
	Sweeps       int64 // active-set sweeps executed for this shard

	// Streaming histograms, staged with the same ownership discipline as
	// the counters: a shard goroutine writes only its own lane's copies,
	// and the fold merges all lanes by bucket addition — exact, so the
	// folded totals are bucket-identical to a single serial histogram
	// (hist.go). WakeStall is fed from shard goroutines (RouterWoken);
	// AbsErr and Latency are fed on the engine goroutine with every
	// worker parked (the boundary sweep and the post-sweep commit), which
	// keeps the owner-only rule intact.
	AbsErr    Hist // per-decision |measured - predicted| IBU, ErrScale fixed-point
	Latency   Hist // delivered packet latency, base ticks
	WakeStall Hist // per-wake stall duration (wakeup-state ticks), base ticks

	_ [64]byte
}

// Epoch is one epoch's folded rollup: the event and scheduling deltas
// that accrued since the previous fold, plus the residency and energy
// movement derived from the meters. It is the obs-side superset of
// stats.EpochSample (which keeps the CSV schema the figure pipeline
// pins).
type Epoch struct {
	Tick int64

	// Event deltas drained from the shard lanes.
	Gatings      int64
	Wakes        int64
	ModeSwitches int64
	LazyTicks    int64

	// Engine scheduling deltas.
	ParallelTicks       int64
	ParallelLandings    int64
	FastForwardedTicks  int64
	HorizonSkippedTicks int64

	// ResidencyDelta is the network-total base ticks spent per billing
	// state this epoch: index 0 = gated, 1 = wakeup (the wakeup-stall
	// ticks), 2..6 = modes M3..M7.
	ResidencyDelta [2 + power.NumActiveModes]int64

	// Prediction accuracy. AvgIBU is the measured network-mean IBU of the
	// closing epoch; AvgPredIBU the mean IBU predicted at this boundary
	// for the next epoch (over routers that ran the selector); PredAbsErr
	// the mean |measured - predicted| for routers whose previous-boundary
	// prediction matured this epoch. Both means are 0 when no router ran
	// the selector.
	AvgIBU     float64
	AvgPredIBU float64
	PredAbsErr float64

	// Energy movement this epoch.
	StaticJDelta  float64
	DynamicJDelta float64
}

// WakeStallTicks returns the epoch's wakeup-residency delta: base ticks
// routers spent charging up before they could move flits.
func (e *Epoch) WakeStallTicks() int64 { return e.ResidencyDelta[1] }

// Snapshot is a cumulative, self-contained view of a run's metrics,
// published atomically at every epoch fold for the live endpoint and
// returned by Metrics.Snapshot for tests.
type Snapshot struct {
	Run    int64  `json:"run"`   // 1-based bind count of the Metrics
	Label  string `json:"label"` // run label (model/trace)
	Tick   int64  `json:"tick"`  // last folded tick
	Epochs int64  `json:"epochs"`

	Gatings      int64 `json:"gatings"`
	Wakes        int64 `json:"wakes"`
	WakeOffTicks int64 `json:"wake_off_ticks"`
	ModeSwitches int64 `json:"mode_switches"`

	// Scheduling mirrors, accumulated independently of the engine's own
	// Result diagnostics so the two can be cross-checked.
	LazyTicks           int64 `json:"lazy_router_ticks"`
	ParallelTicks       int64 `json:"parallel_ticks"`
	ParallelLandings    int64 `json:"parallel_landings"`
	FastForwardedTicks  int64 `json:"fast_forwarded_ticks"`
	HorizonSkippedTicks int64 `json:"horizon_skipped_ticks"`

	ShardSweeps   []int64 `json:"shard_sweeps"`   // sweeps per shard
	ActiveRouters int     `json:"active_routers"` // active-set size at the last fold

	// Shard balance, republished per fold so -obs-addr shows it live:
	// ShardLoad is the per-shard swept-router-tick counts, ShardImbalance
	// their max/mean (1.0 = perfectly balanced), and ShardResplits the
	// load-aware boundary re-splits executed so far.
	ShardLoad      []int64 `json:"shard_load"`
	ShardImbalance float64 `json:"shard_imbalance"`
	ShardResplits  int64   `json:"shard_resplits"`

	ResidencyTicks [2 + power.NumActiveModes]int64 `json:"residency_ticks"`

	EpochDecisions int64   `json:"epoch_decisions"`
	MeanAbsPredErr float64 `json:"mean_abs_pred_err"` // |measured - predicted| IBU

	// Prediction-quality layer (all deterministic for a given run
	// configuration — they survive Deterministic() and ride in sweep
	// rows). DecisionsByMode[i] counts boundary decisions that chose
	// active mode M3+i.
	DecisionsByMode [power.NumActiveModes]int64 `json:"decisions_by_mode"`

	// Mispredict-cost attribution: a matured decision whose chosen mode
	// sits below the mode the measured IBU called for is an
	// under-prediction (the router was run too slow or gated and traffic
	// arrived — UnderPredStallTicks charges the wakeup stalls the router
	// accrued that epoch as the latency-penalty proxy); a chosen mode
	// above the ideal is an over-prediction (a missed gating/slow-down
	// opportunity — OverPredStaticWasteJ charges the static-power excess
	// of the chosen mode over the ideal for one epoch as the attributed
	// waste estimate). RouterUnderPred/RouterOverPred are the per-router
	// decision counts behind the totals.
	UnderPredDecisions   int64   `json:"underpred_decisions"`
	OverPredDecisions    int64   `json:"overpred_decisions"`
	UnderPredStallTicks  int64   `json:"underpred_stall_ticks"`
	OverPredStaticWasteJ float64 `json:"overpred_static_waste_j"`
	RouterUnderPred      []int64 `json:"router_underpred,omitempty"`
	RouterOverPred       []int64 `json:"router_overpred,omitempty"`

	// Drift detection (Page–Hinkley over the per-epoch folded mean abs
	// error, drift.go). DriftEvents counts fires this run; LastDriftTick
	// is the boundary tick of the most recent fire (0 if none).
	DriftEvents   int64 `json:"pred_drift_events"`
	LastDriftTick int64 `json:"pred_drift_last_tick"`

	// Folded histograms (hist.go): per-decision absolute IBU prediction
	// error in ErrScale fixed-point units, delivered-packet latency in
	// base ticks, and per-wake stall duration in base ticks.
	AbsErrHist    HistSnapshot `json:"pred_abs_err_hist"`
	LatencyHist   HistSnapshot `json:"packet_latency_hist"`
	WakeStallHist HistSnapshot `json:"wake_stall_hist"`

	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`

	TicksPerSec float64 `json:"ticks_per_sec"` // simulated base ticks per wall second
}

// WakeStallTicks returns cumulative wakeup-residency ticks.
func (s *Snapshot) WakeStallTicks() int64 { return s.ResidencyTicks[1] }

// Deterministic returns a copy with every field that can differ between
// reruns of the same configuration zeroed: wall-clock rates, the
// Metrics bind count, and the scheduling diagnostics that depend on the
// shard count, the runtime-calibrated ShardMinActive threshold, or
// worker timing. What remains — event totals, residency, prediction
// accuracy, epoch count — is bit-exact for a given run configuration,
// which is what lets the sweep orchestrator embed an epoch-fold capture
// in result rows that must be byte-identical across resumed and
// uninterrupted jobs.
func (s Snapshot) Deterministic() Snapshot {
	d := s
	d.Run = 0
	d.TicksPerSec = 0
	d.ShardSweeps = nil
	d.ShardLoad = nil
	d.ShardImbalance = 0
	d.ShardResplits = 0
	d.ParallelTicks = 0
	d.ParallelLandings = 0
	d.ActiveRouters = 0
	return d
}

// Metrics accumulates one run's observability counters. A Metrics is
// bound to a run by the engine (BindRun), written by the engine goroutine
// and — through the per-shard lanes — by shard goroutines, and folded at
// epoch boundaries. It implements policy.EventObserver. It is not safe to
// share across concurrently executing runs; rebinding resets per-run
// state, so one Metrics may observe a sequence of runs.
type Metrics struct {
	lanes  []Lane
	laneOf []uint8 // owning lane of each router
	nR     int

	run       int64
	label     string
	started   time.Time
	seriesOn  bool
	series    *stats.Series
	epochs    []Epoch
	lastFold  int64
	totals    Snapshot
	prevRes   [2 + power.NumActiveModes]int64
	prevStat  float64
	prevDyn   float64
	prevPHits int64
	prevPMiss int64

	// Engine-goroutine scheduling mirrors (per-epoch deltas are taken at
	// folds).
	parallelTicks, parallelLandings, ffTicks, horizonTicks               int64
	lastParallelTicks, lastParallelLandings, lastFFTicks, lastHorizTicks int64
	lastLanes                                                            Lane // drained lane sums at the previous fold

	// Prediction bookkeeping (engine goroutine; EpochDecision fires only
	// from the boundary sweep).
	lastPred   []float64 // previous boundary's prediction per router, NaN if none
	predSum    float64   // predictions made since the last fold
	predN      int64
	predErrSum float64 // |measured - matured prediction| since the last fold
	predErrN   int64
	errSumRun  float64 // run totals for the snapshot's mean
	errNRun    int64

	// Mispredict-cost attribution (EpochDecision, engine goroutine).
	// lastMode is the mode each router's previous boundary chose — the
	// decision that matures against this boundary's measured IBU.
	// wakeStall accumulates each router's wakeup-stall ticks; it is
	// written by the owning shard's goroutine in RouterWoken (same
	// ownership as the lanes) and read only at the post-barrier boundary
	// sweep; stallSeen is the engine-side cursor that turns it into
	// per-decision deltas.
	epochTicks int64
	lastMode   []power.Mode
	wakeStall  []int64
	stallSeen  []int64

	// Drift detection over the per-epoch folded mean abs error
	// (drift.go). driftCfg survives rebinding; drift state does not.
	driftCfg DriftConfig
	drift    driftState
}

// NewMetrics returns an unbound Metrics; the engine binds it at run
// start.
func NewMetrics() *Metrics { return &Metrics{} }

// BindRun attaches the Metrics to a run: one lane per engine shard
// (laneStarts[i] is shard i's first router ID), numRouters routers, and
// optionally a per-epoch stats.Series (the engine sources Result.Series
// from it). All per-run state is reset; the bind count survives so a
// long-lived Observer can tell runs apart on the live endpoint.
func (m *Metrics) BindRun(label string, laneStarts []int, numRouters int, epochTicks int64, collectSeries bool) {
	m.run++
	m.label = label
	m.started = time.Now()
	m.nR = numRouters
	m.lanes = make([]Lane, len(laneStarts))
	m.laneOf = make([]uint8, numRouters)
	lane := 0
	for r := 0; r < numRouters; r++ {
		for lane+1 < len(laneStarts) && r >= laneStarts[lane+1] {
			lane++
		}
		m.laneOf[r] = uint8(lane)
	}
	m.seriesOn = collectSeries
	m.series = nil
	if collectSeries {
		m.series = &stats.Series{EpochTicks: epochTicks}
	}
	m.epochs = nil
	m.lastFold = 0
	m.totals = Snapshot{
		Run: m.run, Label: label,
		ShardSweeps:     make([]int64, len(laneStarts)),
		RouterUnderPred: make([]int64, numRouters),
		RouterOverPred:  make([]int64, numRouters),
	}
	m.prevRes = [2 + power.NumActiveModes]int64{}
	m.prevStat, m.prevDyn = 0, 0
	m.prevPHits, m.prevPMiss = 0, 0
	m.parallelTicks, m.parallelLandings, m.ffTicks, m.horizonTicks = 0, 0, 0, 0
	m.lastParallelTicks, m.lastParallelLandings, m.lastFFTicks, m.lastHorizTicks = 0, 0, 0, 0
	m.lastLanes = Lane{}
	m.lastPred = make([]float64, numRouters)
	for i := range m.lastPred {
		m.lastPred[i] = math.NaN()
	}
	m.predSum, m.predN = 0, 0
	m.predErrSum, m.predErrN = 0, 0
	m.errSumRun, m.errNRun = 0, 0
	m.epochTicks = epochTicks
	m.lastMode = make([]power.Mode, numRouters)
	m.wakeStall = make([]int64, numRouters)
	m.stallSeen = make([]int64, numRouters)
	m.drift.reset(m.driftCfg)
	setDriftGauge(0)
}

// SetDrift configures the Page–Hinkley drift detector (zero fields mean
// defaults; a negative Lambda disables detection). The configuration
// survives rebinding — set it once when building the Observer — but the
// detector state itself resets per run. Call before or between runs,
// not mid-run.
func (m *Metrics) SetDrift(cfg DriftConfig) {
	m.driftCfg = cfg
	m.drift.reset(cfg)
}

// DriftEvents returns the drift-detector fire count of the current run.
func (m *Metrics) DriftEvents() int64 { return m.totals.DriftEvents }

// Series returns the per-epoch series collected for the current run (nil
// unless BindRun asked for one).
func (m *Metrics) Series() *stats.Series { return m.series }

// Epochs returns the per-epoch rollups folded so far this run.
func (m *Metrics) Epochs() []Epoch { return m.epochs }

// --- policy.EventObserver ---

// RouterGated implements policy.EventObserver.
func (m *Metrics) RouterGated(routerID int) { m.lanes[m.laneOf[routerID]].Gatings++ }

// RouterWoken implements policy.EventObserver. stallTicks is the base
// ticks the router will spend in the wakeup state before its first
// post-wake local cycle — the traffic-visible stall the wake costs.
func (m *Metrics) RouterWoken(routerID int, offTicks, stallTicks int64) {
	l := &m.lanes[m.laneOf[routerID]]
	l.Wakes++
	l.WakeOffTicks += offTicks
	l.WakeStall.Observe(stallTicks)
	m.wakeStall[routerID] += stallTicks
}

// ModeSwitched implements policy.EventObserver.
func (m *Metrics) ModeSwitched(routerID int, from, to power.Mode) {
	m.lanes[m.laneOf[routerID]].ModeSwitches++
}

// EpochDecision implements policy.EventObserver: it accrues the
// predicted-IBU mean for this boundary, matures the previous boundary's
// prediction against the measured IBU, and attributes the matured
// decision's mispredict cost. The comparison is mode-space: the mode the
// previous boundary actually chose against the mode the measured IBU
// would have called for (policy.ModeForIBU). A chosen mode below the
// ideal is an under-prediction, charged the router's wakeup stalls since
// its last decision; above is an over-prediction, charged one epoch of
// the static-power excess over the ideal mode. It fires only from the
// engine goroutine's boundary sweep, with every shard worker parked, so
// reading the shard-written wakeStall cursor and writing the lane's
// AbsErr histogram are both race-free.
func (m *Metrics) EpochDecision(routerID int, measured, predicted float64, mode power.Mode) {
	m.predSum += predicted
	m.predN++
	m.totals.EpochDecisions++
	m.totals.DecisionsByMode[mode.Index()]++
	if lp := m.lastPred[routerID]; !math.IsNaN(lp) {
		e := math.Abs(measured - lp)
		m.predErrSum += e
		m.predErrN++
		m.errSumRun += e
		m.errNRun++
		m.lanes[m.laneOf[routerID]].AbsErr.Observe(int64(e*ErrScale + 0.5))
		ideal := policy.ModeForIBU(measured)
		switch chosen := m.lastMode[routerID]; {
		case chosen < ideal:
			m.totals.UnderPredDecisions++
			m.totals.RouterUnderPred[routerID]++
			m.totals.UnderPredStallTicks += m.wakeStall[routerID] - m.stallSeen[routerID]
		case chosen > ideal:
			m.totals.OverPredDecisions++
			m.totals.RouterOverPred[routerID]++
			m.totals.OverPredStaticWasteJ += float64(m.epochTicks) *
				(power.StaticWatts(chosen) - power.StaticWatts(ideal)) * timing.TickSeconds
		}
	}
	m.stallSeen[routerID] = m.wakeStall[routerID]
	m.lastPred[routerID] = predicted
	m.lastMode[routerID] = mode
}

// PacketLatency records one delivered packet's latency in base ticks.
// The engine calls it from the network's serial commit phase (engine
// goroutine, every shard worker parked), so staging into lane 0 honors
// the owner-only lane discipline.
func (m *Metrics) PacketLatency(ticks int64) { m.lanes[0].Latency.Observe(ticks) }

// --- engine hooks (all branch-on-nil at the call site) ---

// OnSweep counts one active-set sweep of shard si; called by the owning
// goroutine, so the lane write is contention-free.
func (m *Metrics) OnSweep(si int) { m.lanes[si].Sweeps++ }

// OnLazyCatchUp credits lane si with router-ticks covered by a deferred
// catch-up; like OnSweep it is called by the goroutine that owns si.
func (m *Metrics) OnLazyCatchUp(si int, delta int64) { m.lanes[si].LazyTicks += delta }

// OnFastForward records a quiescent-window jump of delta ticks.
func (m *Metrics) OnFastForward(delta int64) { m.ffTicks += delta }

// OnHorizonSkip records an event-horizon jump of delta ticks taken while
// the network was not quiescent (flits on wires, packets queued, or
// claims held — but every router buffer empty).
func (m *Metrics) OnHorizonSkip(delta int64) { m.horizonTicks += delta }

// OnParallelTick records one concurrently swept tick and the due wire
// transits its shard workers landed.
func (m *Metrics) OnParallelTick(stagedLandings int) {
	m.parallelTicks++
	m.parallelLandings += int64(stagedLandings)
}

// EpochFold carries the engine-side gauge readings into FoldEpoch.
type EpochFold struct {
	Now            int64   // the boundary tick
	SumIBU         float64 // summed per-router IBU of the closing epoch
	FlitsDelivered int64   // cumulative network counter
	ActiveRouters  int     // active-set population at the boundary
	PoolHits       int64   // cumulative flit/packet pool hits
	PoolMisses     int64
	ShardLoad      []int64 // cumulative swept router-ticks per shard (engine scratch; copied)
	ShardResplits  int64   // cumulative load-aware boundary re-splits
}

// FoldEpoch closes one epoch: it drains the shard lanes into the run
// totals (single-threaded — the engine calls it after Commit and the
// catch-up barrier, while every shard worker is parked), derives the
// residency/energy deltas from the meters, builds the stats.EpochSample
// the series and figure pipeline consume, feeds the drift detector, and
// publishes the live snapshot. The sample computation is field-for-field
// the engine's pre-obs code, so series CSVs are byte-identical. It
// reports whether the drift detector fired at this fold, so the engine
// can emit a tracer instant event for it.
func (m *Metrics) FoldEpoch(f EpochFold, ctrl *policy.Controller, meters []power.Meter) (driftFired bool) {
	ep := Epoch{Tick: f.Now}
	if m.nR > 0 {
		ep.AvgIBU = f.SumIBU / float64(m.nR)
	}

	var sample stats.EpochSample
	sample.Tick = f.Now
	sample.AvgIBU = ep.AvgIBU
	for r := 0; r < m.nR; r++ {
		switch ctrl.State(r) {
		case policy.Inactive:
			sample.OffRouters++
		case policy.Wakeup:
			sample.WakingRouters++
		default:
			sample.ModeRouters[ctrl.Mode(r).Index()]++
		}
	}
	sample.FlitsDelivered = f.FlitsDelivered
	for i := range meters {
		sample.StaticJ += meters[i].StaticJoules()
		sample.DynamicJ += meters[i].DynamicJoules()
	}
	if m.series != nil {
		m.series.Add(sample)
	}

	// Residency movement, network-wide, from the integer meter counters.
	var res [2 + power.NumActiveModes]int64
	for i := range meters {
		res[0] += meters[i].ResidencyTicks(power.Inactive)
		res[1] += meters[i].ResidencyTicks(power.Wakeup)
		for am := 0; am < power.NumActiveModes; am++ {
			res[2+am] += meters[i].ResidencyTicks(power.ActiveMode(am))
		}
	}
	for i := range res {
		ep.ResidencyDelta[i] = res[i] - m.prevRes[i]
	}
	m.prevRes = res
	m.totals.ResidencyTicks = res
	ep.StaticJDelta = sample.StaticJ - m.prevStat
	ep.DynamicJDelta = sample.DynamicJ - m.prevDyn
	m.prevStat, m.prevDyn = sample.StaticJ, sample.DynamicJ

	// Drain the shard lanes (cumulative) against the previous fold.
	m.foldLanes(&ep)

	ep.ParallelTicks = m.parallelTicks - m.lastParallelTicks
	ep.ParallelLandings = m.parallelLandings - m.lastParallelLandings
	ep.FastForwardedTicks = m.ffTicks - m.lastFFTicks
	ep.HorizonSkippedTicks = m.horizonTicks - m.lastHorizTicks
	m.lastParallelTicks = m.parallelTicks
	m.lastParallelLandings = m.parallelLandings
	m.lastFFTicks = m.ffTicks
	m.lastHorizTicks = m.horizonTicks

	if m.predN > 0 {
		ep.AvgPredIBU = m.predSum / float64(m.predN)
	}
	matured := m.predErrN > 0
	if matured {
		ep.PredAbsErr = m.predErrSum / float64(m.predErrN)
	}
	m.predSum, m.predN = 0, 0
	m.predErrSum, m.predErrN = 0, 0

	// Page–Hinkley over the folded mean abs error; epochs with no matured
	// prediction (warm-up, non-ML models) carry no signal and are skipped.
	if matured && m.drift.observe(ep.PredAbsErr) {
		driftFired = true
		m.totals.DriftEvents++
		m.totals.LastDriftTick = f.Now
		setDriftGauge(1)
	}

	m.epochs = append(m.epochs, ep)
	m.lastFold = f.Now
	m.publish(f)
	return driftFired
}

// foldLanes accumulates the (cumulative) lane counters into the run
// totals and writes the delta since the previous fold into ep. Lanes are
// never zeroed mid-run — a shard goroutine could in principle still own
// one between ticks — so folding subtracts the previous fold's sums.
func (m *Metrics) foldLanes(ep *Epoch) {
	var cur Lane
	for i := range m.lanes {
		l := &m.lanes[i]
		cur.Gatings += l.Gatings
		cur.Wakes += l.Wakes
		cur.WakeOffTicks += l.WakeOffTicks
		cur.ModeSwitches += l.ModeSwitches
		cur.LazyTicks += l.LazyTicks
		cur.AbsErr.Merge(&l.AbsErr)
		cur.Latency.Merge(&l.Latency)
		cur.WakeStall.Merge(&l.WakeStall)
		m.totals.ShardSweeps[i] = l.Sweeps
	}
	if ep != nil {
		ep.Gatings = cur.Gatings - m.lastLanes.Gatings
		ep.Wakes = cur.Wakes - m.lastLanes.Wakes
		ep.ModeSwitches = cur.ModeSwitches - m.lastLanes.ModeSwitches
		ep.LazyTicks = cur.LazyTicks - m.lastLanes.LazyTicks
	}
	m.lastLanes = cur
	m.totals.Gatings = cur.Gatings
	m.totals.Wakes = cur.Wakes
	m.totals.WakeOffTicks = cur.WakeOffTicks
	m.totals.ModeSwitches = cur.ModeSwitches
	m.totals.LazyTicks = cur.LazyTicks
	// Histogram totals are the lane merge itself (cumulative, so the
	// merge replaces rather than adds — like the counters above, and
	// invariant under Retile because the merge spans every lane).
	m.totals.AbsErrHist = cur.AbsErr.Snapshot()
	m.totals.LatencyHist = cur.Latency.Snapshot()
	m.totals.WakeStallHist = cur.WakeStall.Snapshot()
}

// publish refreshes the cumulative totals and the live expvar snapshot.
func (m *Metrics) publish(f EpochFold) {
	m.totals.Tick = f.Now
	m.totals.Epochs = int64(len(m.epochs))
	m.totals.ParallelTicks = m.parallelTicks
	m.totals.ParallelLandings = m.parallelLandings
	m.totals.FastForwardedTicks = m.ffTicks
	m.totals.HorizonSkippedTicks = m.horizonTicks
	m.totals.ActiveRouters = f.ActiveRouters
	m.totals.PoolHits = f.PoolHits
	m.totals.PoolMisses = f.PoolMisses
	m.totals.ShardLoad = append(m.totals.ShardLoad[:0], f.ShardLoad...)
	m.totals.ShardImbalance = shardImbalance(f.ShardLoad)
	m.totals.ShardResplits = f.ShardResplits
	if m.errNRun > 0 {
		m.totals.MeanAbsPredErr = m.errSumRun / float64(m.errNRun)
	}
	if el := time.Since(m.started).Seconds(); el > 0 {
		m.totals.TicksPerSec = float64(f.Now) / el
	}
	snap := m.snapshotCopy()
	setLiveSnapshot(&snap)
}

// snapshotCopy deep-copies the totals so the returned Snapshot shares no
// slice backing with the live fold state.
func (m *Metrics) snapshotCopy() Snapshot {
	snap := m.totals
	snap.ShardSweeps = append([]int64(nil), m.totals.ShardSweeps...)
	snap.ShardLoad = append([]int64(nil), m.totals.ShardLoad...)
	snap.RouterUnderPred = append([]int64(nil), m.totals.RouterUnderPred...)
	snap.RouterOverPred = append([]int64(nil), m.totals.RouterOverPred...)
	snap.AbsErrHist = m.totals.AbsErrHist.clone()
	snap.LatencyHist = m.totals.LatencyHist.clone()
	snap.WakeStallHist = m.totals.WakeStallHist.clone()
	return snap
}

// shardImbalance is max/mean of the per-shard loads (0 when idle).
func shardImbalance(loads []int64) float64 {
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(loads)) / float64(sum)
}

// FinishRun folds events that accrued after the last epoch boundary
// (partial epochs, post-drain catch-up) into the totals and republishes.
// The engine calls it once, after its final catch-up flush.
func (m *Metrics) FinishRun(ticks int64, f EpochFold) {
	m.foldLanes(nil)
	f.Now = ticks
	m.publish(f)
}

// Snapshot returns the cumulative totals as of the last fold. Call it
// from the engine goroutine or after the run; the live endpoint reads
// the atomically published copy instead.
func (m *Metrics) Snapshot() Snapshot {
	return m.snapshotCopy()
}

// Retile remaps the router->lane attribution after a load-aware shard
// re-split: laneStarts is the new partition (same lane count — lanes are
// identified with shard workers, whose number never changes mid-run).
// Only the map moves; lane counters are neither reset nor migrated,
// because every consumer of per-router events (run totals, epoch deltas
// via foldLanes) sums across all lanes, and those sums are invariant
// under which lane a router's events landed in. Per-shard Sweeps stay
// keyed by shard index and are unaffected. The engine calls this at the
// post-barrier epoch fold, with every shard worker parked.
func (m *Metrics) Retile(laneStarts []int) {
	if len(laneStarts) != len(m.lanes) {
		panic(fmt.Sprintf("obs: Retile with %d lanes, bound %d", len(laneStarts), len(m.lanes)))
	}
	lane := 0
	for r := 0; r < m.nR; r++ {
		for lane+1 < len(laneStarts) && r >= laneStarts[lane+1] {
			lane++
		}
		m.laneOf[r] = uint8(lane)
	}
}
