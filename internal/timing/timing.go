// Package timing provides the simulation time base and per-router clock
// domains for multi-frequency NoC simulation.
//
// The simulator advances in "base ticks", one per cycle of the fastest DVFS
// clock (2.25 GHz, i.e. 444.44 ps). A router running at a lower frequency
// fires a local cycle on a rational subset of base ticks using an exact
// integer (Bresenham-style) accumulator: acc += fMHz each tick; when acc
// reaches BaseFreqMHz a local cycle fires and BaseFreqMHz is subtracted.
// Over any window of N base ticks the domain fires exactly
// floor(N*f/fmax)±1 local cycles, with zero floating-point drift.
package timing

import "fmt"

// BaseFreqMHz is the frequency of the base simulation clock in MHz.
// It equals the fastest DVFS mode (mode 7, 1.2 V / 2.25 GHz).
const BaseFreqMHz = 2250

// BaseTickPS is the duration of one base tick in picoseconds, rounded to
// the nearest integer (1e6/2250 = 444.44 ps). Use TickSeconds for energy
// integration, which is exact.
const BaseTickPS = 444

// TickSeconds is the exact duration of one base tick in seconds.
const TickSeconds = 1.0 / (BaseFreqMHz * 1e6)

// Tick is an absolute simulation time in base ticks.
type Tick int64

// Seconds converts a tick count to seconds.
func (t Tick) Seconds() float64 { return float64(t) * TickSeconds }

// Nanoseconds converts a tick count to nanoseconds.
func (t Tick) Nanoseconds() float64 { return float64(t) * TickSeconds * 1e9 }

// TicksFromNS returns the smallest number of base ticks spanning ns
// nanoseconds. It is used to convert regulator latencies (specified in ns)
// to simulation time.
func TicksFromNS(ns float64) Tick {
	if ns <= 0 {
		return 0
	}
	t := Tick(ns * 1e-9 / TickSeconds)
	if t.Seconds()*1e9 < ns {
		t++
	}
	return t
}

// Domain is a clock domain driven by the base clock. The zero value is
// invalid; use NewDomain or SetFreq before use.
type Domain struct {
	freqMHz int
	acc     int
}

// NewDomain returns a clock domain running at freqMHz. freqMHz must be in
// (0, BaseFreqMHz].
func NewDomain(freqMHz int) *Domain {
	d := &Domain{}
	d.SetFreq(freqMHz)
	return d
}

// SetFreq changes the domain frequency. The accumulator is preserved
// (clamped), so a frequency change takes effect smoothly mid-run.
func (d *Domain) SetFreq(freqMHz int) {
	if freqMHz <= 0 || freqMHz > BaseFreqMHz {
		panic(fmt.Sprintf("timing: frequency %d MHz out of range (0, %d]", freqMHz, BaseFreqMHz))
	}
	d.freqMHz = freqMHz
	if d.acc >= BaseFreqMHz {
		d.acc = BaseFreqMHz - 1
	}
}

// Freq returns the current frequency in MHz.
func (d *Domain) Freq() int { return d.freqMHz }

// Tick advances the domain by one base tick and reports whether a local
// cycle fires on this tick.
func (d *Domain) Tick() bool {
	d.acc += d.freqMHz
	if d.acc >= BaseFreqMHz {
		d.acc -= BaseFreqMHz
		return true
	}
	return false
}

// Reset clears the accumulator so the next local cycle fires after a full
// local period.
func (d *Domain) Reset() { d.acc = 0 }

// AdvanceBy advances the domain n base ticks at once and returns how many
// local cycles fired. It is the exact closed form of calling Tick n times
// and counting the true results: the accumulator ends in the same state,
// so per-tick stepping may resume afterwards with no drift.
func (d *Domain) AdvanceBy(n int64) int64 {
	if n <= 0 {
		return 0
	}
	total := int64(d.acc) + n*int64(d.freqMHz)
	d.acc = int(total % BaseFreqMHz)
	return total / BaseFreqMHz
}

// TicksUntilCycle returns the smallest n >= 1 such that the k-th local
// cycle (k >= 1) fires during the n-th of the next n Tick calls. The
// engine's fast-forward path uses it to locate wakeup/switch/gating
// deadlines without stepping tick by tick.
func (d *Domain) TicksUntilCycle(k int) int64 {
	if k < 1 {
		panic(fmt.Sprintf("timing: TicksUntilCycle of non-positive cycle count %d", k))
	}
	need := int64(k)*BaseFreqMHz - int64(d.acc)
	f := int64(d.freqMHz)
	return (need + f - 1) / f
}

// CyclesIn returns how many local cycles at freqMHz fit in n base ticks,
// starting from a reset accumulator. It is the closed form of calling Tick
// n times and counting the true results.
func CyclesIn(n Tick, freqMHz int) int64 {
	return int64(n) * int64(freqMHz) / BaseFreqMHz
}
