package timing

import (
	"testing"
	"testing/quick"
)

func TestBaseConstants(t *testing.T) {
	if BaseFreqMHz != 2250 {
		t.Fatalf("base frequency = %d, want 2250 MHz (mode 7)", BaseFreqMHz)
	}
	// One tick of a 2.25 GHz clock is 444.4 ps.
	if got := Tick(1).Seconds(); got < 444.0e-12 || got > 445.0e-12 {
		t.Fatalf("tick duration = %g s, want ~444.4 ps", got)
	}
}

func TestTickConversions(t *testing.T) {
	if got := Tick(2250).Seconds(); got < 0.999e-6 || got > 1.001e-6 {
		t.Fatalf("2250 ticks = %g s, want 1 us", got)
	}
	if got := Tick(2250).Nanoseconds(); got < 999 || got > 1001 {
		t.Fatalf("2250 ticks = %g ns, want 1000", got)
	}
}

func TestTicksFromNS(t *testing.T) {
	cases := []struct {
		ns   float64
		want Tick
	}{
		{0, 0},
		{-1, 0},
		{0.4, 1},   // partial tick rounds up
		{0.445, 2}, // just over one tick
		{8.8, 20},  // the worst-case T-Wakeup spans 20 base ticks
	}
	for _, c := range cases {
		if got := TicksFromNS(c.ns); got != c.want {
			t.Errorf("TicksFromNS(%g) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestTicksFromNSCovers(t *testing.T) {
	// The returned tick count must always span at least the requested ns.
	f := func(raw uint16) bool {
		ns := float64(raw) / 100.0
		ticks := TicksFromNS(ns)
		return ticks.Seconds()*1e9 >= ns-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDomainFullSpeed(t *testing.T) {
	d := NewDomain(BaseFreqMHz)
	for i := 0; i < 100; i++ {
		if !d.Tick() {
			t.Fatalf("full-speed domain skipped a cycle at tick %d", i)
		}
	}
}

func TestDomainExactPacing(t *testing.T) {
	// Over N base ticks a domain at f MHz fires floor(N*f/2250) cycles
	// exactly (Bresenham accumulation is exact for rationals).
	for _, f := range []int{1000, 1500, 1800, 2000, 2250} {
		d := NewDomain(f)
		const n = 90000
		fired := int64(0)
		for i := 0; i < n; i++ {
			if d.Tick() {
				fired++
			}
		}
		want := CyclesIn(n, f)
		if fired != want {
			t.Errorf("freq %d: fired %d cycles in %d ticks, want %d", f, fired, n, want)
		}
	}
}

func TestDomainPacingProperty(t *testing.T) {
	f := func(rawFreq uint16, rawN uint16) bool {
		freq := 1 + int(rawFreq)%BaseFreqMHz
		n := int(rawN)
		d := NewDomain(freq)
		fired := int64(0)
		for i := 0; i < n; i++ {
			if d.Tick() {
				fired++
			}
		}
		return fired == CyclesIn(Tick(n), freq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainNeverBursts(t *testing.T) {
	// A half-speed domain must never fire twice in a row.
	d := NewDomain(BaseFreqMHz / 2)
	prev := false
	for i := 0; i < 1000; i++ {
		cur := d.Tick()
		if cur && prev {
			t.Fatalf("half-speed domain fired consecutively at tick %d", i)
		}
		prev = cur
	}
}

func TestDomainSetFreqMidRun(t *testing.T) {
	d := NewDomain(1000)
	for i := 0; i < 10; i++ {
		d.Tick()
	}
	d.SetFreq(2250)
	for i := 0; i < 10; i++ {
		if !d.Tick() {
			t.Fatalf("after switching to full speed, tick %d did not fire", i)
		}
	}
}

func TestDomainBadFreqPanics(t *testing.T) {
	for _, f := range []int{0, -5, BaseFreqMHz + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetFreq(%d) did not panic", f)
				}
			}()
			NewDomain(f)
		}()
	}
}

func TestDomainReset(t *testing.T) {
	d := NewDomain(1500)
	d.Tick() // accumulate something
	d.Reset()
	// After reset, the first fire of a 1500 MHz domain happens on the
	// second base tick (acc 1500 then 3000 >= 2250).
	if d.Tick() {
		t.Fatal("1500 MHz domain fired on the first tick after reset")
	}
	if !d.Tick() {
		t.Fatal("1500 MHz domain did not fire on the second tick after reset")
	}
}

func TestCyclesIn(t *testing.T) {
	if got := CyclesIn(2250, 1000); got != 1000 {
		t.Errorf("CyclesIn(2250, 1000) = %d, want 1000", got)
	}
	if got := CyclesIn(0, 1000); got != 0 {
		t.Errorf("CyclesIn(0, 1000) = %d, want 0", got)
	}
	if got := CyclesIn(9, 2250); got != 9 {
		t.Errorf("CyclesIn(9, 2250) = %d, want 9", got)
	}
}
