package mcsim

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func smallSystem(t *testing.T, topo topology.Topology) SystemParams {
	t.Helper()
	p := DefaultSystem(topo)
	p.Core.Instructions = 30_000
	return p
}

func runWorkload(t *testing.T, topo topology.Topology, spec policy.Spec, p SystemParams) (*sim.Result, *System) {
	t.Helper()
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Topo: topo, Spec: spec, Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	return res, w
}

func TestValidation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	bad := DefaultSystem(topo)
	bad.Core.MSHRs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero MSHRs accepted")
	}
	bad = DefaultSystem(topo)
	bad.Core.L2MissFrac = 1.5
	if _, err := New(bad); err == nil {
		t.Error("bad miss fraction accepted")
	}
	bad = DefaultSystem(nil)
	if _, err := New(bad); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestWorkloadCompletes(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p := smallSystem(t, topo)
	res, w := runWorkload(t, topo, policy.Baseline(), p)
	if !res.Drained {
		t.Fatal("workload run did not drain")
	}
	if !w.Done() {
		t.Fatal("workload not done after drain")
	}
	want := int64(topo.NumCores()) * p.Core.Instructions
	if got := w.InstructionsRetired(); got < want {
		t.Fatalf("retired %d instructions, want >= %d", got, want)
	}
	if res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("lost packets")
	}
	if w.Stats().MissesIssued == 0 {
		t.Fatal("no misses issued")
	}
}

func TestRequestChainsProduceResponses(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p := smallSystem(t, topo)
	res, w := runWorkload(t, topo, policy.Baseline(), p)
	st := w.Stats()
	// Every miss produces one core->bank request and one bank->core
	// response; L2 misses add an MC round trip (two more packets).
	wantPackets := 2*st.MissesIssued + 2*st.L2Misses
	if res.PacketsInjected != wantPackets {
		t.Fatalf("injected %d packets, chain accounting says %d", res.PacketsInjected, wantPackets)
	}
	// The L2 miss fraction should be near the configured value.
	frac := float64(st.L2Misses) / float64(st.MissesIssued)
	if frac < p.Core.L2MissFrac-0.05 || frac > p.Core.L2MissFrac+0.05 {
		t.Fatalf("L2 miss fraction %.3f, configured %.2f", frac, p.Core.L2MissFrac)
	}
}

func TestClosedLoopSlowdown(t *testing.T) {
	// The defining property: a slower network stretches application
	// runtime. A DozzNoC network (wakeups + low modes) must take at
	// least as long as the always-on baseline to retire the same work,
	// and stall cores more.
	topo := topology.NewMesh(4, 4)
	p := smallSystem(t, topo)
	base, wb := runWorkload(t, topo, policy.Baseline(), p)
	dozz, wd := runWorkload(t, topo, policy.DozzNoC(policy.ReactiveSelector{}), p)
	if dozz.Ticks < base.Ticks {
		t.Fatalf("DozzNoC finished faster than baseline: %d vs %d ticks", dozz.Ticks, base.Ticks)
	}
	if wd.Stats().StalledTicks < wb.Stats().StalledTicks {
		t.Fatalf("DozzNoC stalled less than baseline: %d vs %d",
			wd.Stats().StalledTicks, wb.Stats().StalledTicks)
	}
	// And it must still save energy while doing so.
	if dozz.StaticJ >= base.StaticJ || dozz.DynamicJ >= base.DynamicJ {
		t.Fatal("DozzNoC did not save energy in closed loop")
	}
}

func TestMSHRBoundsOutstanding(t *testing.T) {
	// Drive ticks without ever delivering: outstanding misses must cap
	// at MSHRs per core, and cores must stall (retire nothing) there.
	topo := topology.NewMesh(4, 4)
	p := smallSystem(t, topo)
	p.Core.MSHRs = 2
	p.Core.L1MPKI = 100 // saturate instantly
	p.Core.PhasePeriod = 0
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	var id uint64
	for tick := int64(0); tick < 500; tick++ {
		w.Tick(tick, func(pk *flit.Packet) {
			pk.ID = id
			id++
			injected++
		})
	}
	if max := topo.NumCores() * p.Core.MSHRs; injected > max {
		t.Fatalf("injected %d requests, MSHR cap is %d", injected, max)
	}
	if w.Stats().StalledTicks == 0 {
		t.Fatal("cores never stalled at the MSHR limit")
	}
	if w.Done() {
		t.Fatal("workload cannot be done with misses outstanding")
	}
}

func TestDeterministicWorkload(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p := smallSystem(t, topo)
	a, _ := runWorkload(t, topo, policy.DozzNoC(policy.ReactiveSelector{}), p)
	b, _ := runWorkload(t, topo, policy.DozzNoC(policy.ReactiveSelector{}), p)
	if a.Ticks != b.Ticks || a.StaticJ != b.StaticJ || a.PacketsInjected != b.PacketsInjected {
		t.Fatalf("closed-loop runs diverged: %d/%d ticks", a.Ticks, b.Ticks)
	}
}

func TestTraceAndWorkloadExclusive(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	w, err := New(smallSystem(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.Generator{Topo: topo, Horizon: 100, Seed: 1}
	pr, _ := traffic.ProfileByName("fft")
	tr := g.Generate(pr)
	if _, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline(), Trace: tr, Workload: w}); err == nil {
		t.Fatal("trace+workload accepted")
	}
	if _, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline()}); err == nil {
		t.Fatal("neither trace nor workload accepted")
	}
}

func TestParamsFromProfile(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p, _ := traffic.ProfileByName("fft")
	sys := ParamsFromProfile(topo, p, 50_000)
	if sys.Core.L1MPKI != 1000*p.ReqRate {
		t.Errorf("MPKI = %g, want %g", sys.Core.L1MPKI, 1000*p.ReqRate)
	}
	if sys.Core.PhasePeriod != p.PhasePeriod || sys.Core.Locality != p.Locality {
		t.Error("phase/locality not carried over")
	}
	if sys.Core.Instructions != 50_000 {
		t.Error("instructions not set")
	}
	if _, err := New(sys); err != nil {
		t.Fatalf("derived params invalid: %v", err)
	}
}

func TestParamsForBenchmark(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	if _, err := ParamsForBenchmark(topo, "bogus", 1000); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	sys, err := ParamsForBenchmark(topo, "lu", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline(), Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("derived benchmark run broken")
	}
}

func TestBenchmarkSeedsDiffer(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	a, _ := ParamsForBenchmark(topo, "fft", 1000)
	b, _ := ParamsForBenchmark(topo, "lu", 1000)
	if a.Seed == b.Seed {
		t.Error("benchmark seeds should differ")
	}
}
