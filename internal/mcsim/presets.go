package mcsim

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/traffic"
)

// ParamsFromProfile derives a closed-loop multicore configuration from a
// trace-generator benchmark profile, so the same 14 named benchmarks can
// run either open-loop (trace replay) or closed-loop (this package).
//
// The mapping preserves the profile's long-run request rate: the open-loop
// generator injects ReqRate requests per core per tick, and a core at
// IPC=1 with L1MPKI misses per kilo-instruction issues IPC*MPKI/1000
// requests per tick, so MPKI = 1000*ReqRate. Phase structure, locality
// and the read fraction carry over directly; the profile's hotspot weight
// (memory-controller traffic in the open-loop model) becomes the L2 miss
// fraction that chains to the corner MCs here.
func ParamsFromProfile(topo topology.Topology, p traffic.Profile, instructions int64) SystemParams {
	sys := DefaultSystem(topo)
	sys.Core.IPC = 1.0
	sys.Core.L1MPKI = 1000 * p.ReqRate
	sys.Core.L2MissFrac = p.Hotspot
	sys.Core.Locality = p.Locality
	sys.Core.Instructions = instructions
	sys.Core.PhasePeriod = p.PhasePeriod
	sys.Core.CommFrac = p.CommFrac
	sys.Core.QuietScale = p.QuietScale
	sys.MemLatencyTicks = int64(p.RespDelay)
	sys.Seed = int64(nameHash(p.Name))
	return sys
}

// ParamsForBenchmark looks up a named benchmark profile and derives its
// closed-loop configuration.
func ParamsForBenchmark(topo topology.Topology, name string, instructions int64) (SystemParams, error) {
	p, ok := traffic.ProfileByName(name)
	if !ok {
		return SystemParams{}, fmt.Errorf("mcsim: unknown benchmark %q", name)
	}
	return ParamsFromProfile(topo, p, instructions), nil
}

// nameHash gives a stable per-benchmark seed (FNV-1a).
func nameHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	if h == 0 {
		h = 1
	}
	return h
}
