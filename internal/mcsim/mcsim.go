// Package mcsim is a lightweight multicore full-system model — the
// substrate that stands in for the Multi2Sim simulator the paper used to
// gather its traces. It models cores with private L1 caches, a shared
// S-NUCA L2 whose banks are distributed one per router, and memory
// controllers at the mesh corners. Cores execute a fixed instruction
// budget; L1 misses become network request packets to the home L2 bank,
// L2 misses chain to a memory controller, and responses travel back as
// data packets.
//
// Crucially the model is *closed-loop*: a core stalls once its MSHRs are
// full, so network slowdowns (power-gating wakeups, low DVFS modes) feed
// back into injection and stretch application runtime — which is how
// real throughput loss manifests, complementing the open-loop trace
// replays used for the paper's figures.
package mcsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/sim"
	"repro/internal/topology"
)

// CoreParams describe one core's synthetic workload.
type CoreParams struct {
	// IPC is the instruction throughput per base tick while unstalled.
	IPC float64
	// L1MPKI is L1 misses per kilo-instruction; every miss becomes a
	// network request.
	L1MPKI float64
	// L2MissFrac is the fraction of L2 accesses missing to memory.
	L2MissFrac float64
	// MSHRs bounds outstanding misses per core; at the bound the core
	// stalls (the closed-loop feedback).
	MSHRs int
	// Instructions is the core's total work.
	Instructions int64
	// Locality is the probability an access maps to an L2 bank within
	// two hops of the core.
	Locality float64
	// PhasePeriod/CommFrac/QuietScale shape compute vs. memory phases:
	// during the quiet (compute) window the MPKI is scaled by
	// QuietScale; during the memory window it is boosted to preserve the
	// long-run mean. Zero PhasePeriod disables phasing.
	PhasePeriod int64
	CommFrac    float64
	QuietScale  float64
}

// SystemParams describe the platform.
type SystemParams struct {
	Topo topology.Topology
	Core CoreParams // applied to every core
	// L2LatencyTicks is the bank access latency; MemLatencyTicks the
	// memory controller service latency.
	L2LatencyTicks  int64
	MemLatencyTicks int64
	Seed            int64
}

// DefaultSystem returns a medium-load configuration on the given
// topology.
func DefaultSystem(topo topology.Topology) SystemParams {
	return SystemParams{
		Topo: topo,
		Core: CoreParams{
			IPC:          1.0,
			L1MPKI:       6.0,
			L2MissFrac:   0.25,
			MSHRs:        8,
			Instructions: 200_000,
			Locality:     0.3,
			PhasePeriod:  12_000,
			CommFrac:     0.25,
			QuietScale:   0.1,
		},
		L2LatencyTicks:  20,
		MemLatencyTicks: 90,
		Seed:            1,
	}
}

func (p SystemParams) validate() error {
	c := p.Core
	switch {
	case p.Topo == nil:
		return fmt.Errorf("mcsim: nil topology")
	case c.IPC <= 0 || c.L1MPKI < 0 || c.MSHRs < 1 || c.Instructions < 1:
		return fmt.Errorf("mcsim: bad core params %+v", c)
	case c.L2MissFrac < 0 || c.L2MissFrac > 1:
		return fmt.Errorf("mcsim: bad L2 miss fraction %g", c.L2MissFrac)
	case p.L2LatencyTicks < 0 || p.MemLatencyTicks < 0:
		return fmt.Errorf("mcsim: negative latency")
	}
	return nil
}

// missStage tracks where a miss is in its request chain.
type missStage uint8

const (
	stageToL2    missStage = iota // request travelling core -> L2 bank
	stageToMem                    // request travelling L2 bank -> memory controller
	stageMemBack                  // response travelling MC -> L2 bank
	stageBack                     // response travelling L2 bank -> core
)

// miss is one outstanding L1 miss.
type miss struct {
	origin int // requesting core
	bank   int // home L2 bank core
	mem    int // memory controller core (if the L2 missed)
	stage  missStage
}

// event is a deferred injection (bank/MC service completion).
type event struct {
	at   int64
	src  int
	dst  int
	kind flit.Kind
	m    *miss
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// System is the multicore workload; it implements sim.Workload.
type System struct {
	p   SystemParams
	rng *rand.Rand

	retired     []float64 // instructions per core
	missCredit  []float64
	outstanding []int
	stalled     []int64 // stalled ticks per core (stats)

	inflight map[uint64]*miss // network packet ID -> miss
	events   eventHeap

	mcs    []int   // memory controller cores (corners)
	locals [][]int // per core: banks within 2 hops

	// totals
	missesIssued int64
	l2Misses     int64
}

var _ sim.Workload = (*System)(nil)

// New builds the workload.
func New(p SystemParams) (*System, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := p.Topo
	s := &System{
		p:           p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		retired:     make([]float64, t.NumCores()),
		missCredit:  make([]float64, t.NumCores()),
		outstanding: make([]int, t.NumCores()),
		stalled:     make([]int64, t.NumCores()),
		inflight:    make(map[uint64]*miss),
	}
	s.mcs = []int{
		t.CoreAt(t.RouterAt(0, 0), 0),
		t.CoreAt(t.RouterAt(t.Width()-1, 0), 0),
		t.CoreAt(t.RouterAt(0, t.Height()-1), 0),
		t.CoreAt(t.RouterAt(t.Width()-1, t.Height()-1), 0),
	}
	s.locals = make([][]int, t.NumCores())
	for c := range s.locals {
		for d := 0; d < t.NumCores(); d++ {
			if d != c && topology.Hops(t, c, d) <= 2 {
				s.locals[c] = append(s.locals[c], d)
			}
		}
	}
	return s, nil
}

// mpkiAt returns the phase-modulated L1 MPKI at tick now.
func (s *System) mpkiAt(now int64) float64 {
	c := s.p.Core
	if c.PhasePeriod <= 0 || c.CommFrac <= 0 || c.CommFrac >= 1 {
		return c.L1MPKI
	}
	boost := (1 - c.QuietScale*(1-c.CommFrac)) / c.CommFrac
	if float64(now%c.PhasePeriod) < c.CommFrac*float64(c.PhasePeriod) {
		return c.L1MPKI * boost
	}
	return c.L1MPKI * c.QuietScale
}

// Tick implements sim.Workload: advance cores, issue misses, fire due
// service events.
func (s *System) Tick(now int64, inject func(*flit.Packet)) {
	// Fire due bank/MC completions.
	for len(s.events) > 0 && s.events[0].at <= now {
		ev := heap.Pop(&s.events).(event)
		p := flit.New(0, ev.src, ev.dst, ev.kind, now)
		inject(p)
		s.inflight[p.ID] = ev.m
	}

	mpki := s.mpkiAt(now)
	cp := s.p.Core
	for c := range s.retired {
		if s.retired[c] >= float64(cp.Instructions) {
			continue // finished
		}
		if s.outstanding[c] >= cp.MSHRs {
			s.stalled[c]++
			continue
		}
		s.retired[c] += cp.IPC
		s.missCredit[c] += cp.IPC * mpki / 1000.0
		for s.missCredit[c] >= 1 && s.outstanding[c] < cp.MSHRs {
			s.missCredit[c]--
			s.issueMiss(c, inject)
		}
	}
}

// issueMiss sends an L1-miss request from core c to its home L2 bank.
func (s *System) issueMiss(c int, inject func(*flit.Packet)) {
	bank := s.pickBank(c)
	m := &miss{origin: c, bank: bank, stage: stageToL2}
	p := flit.New(0, c, bank, flit.Request, 0)
	inject(p)
	s.inflight[p.ID] = m
	s.outstanding[c]++
	s.missesIssued++
}

// pickBank maps an access to its home L2 bank (address-hashed S-NUCA
// with a locality bias).
func (s *System) pickBank(c int) int {
	if s.rng.Float64() < s.p.Core.Locality && len(s.locals[c]) > 0 {
		return s.locals[c][s.rng.Intn(len(s.locals[c]))]
	}
	for {
		d := s.rng.Intn(s.p.Topo.NumCores())
		if d != c {
			return d
		}
	}
}

// PacketDelivered implements sim.Workload: advance the miss chain.
func (s *System) PacketDelivered(p *flit.Packet, core int, now int64) {
	m, ok := s.inflight[p.ID]
	if !ok {
		return // not ours (trace traffic can coexist in principle)
	}
	delete(s.inflight, p.ID)
	switch m.stage {
	case stageToL2:
		if s.rng.Float64() < s.p.Core.L2MissFrac {
			// L2 miss: forward to the closest memory controller.
			m.stage = stageToMem
			m.mem = s.closestMC(core)
			s.l2Misses++
			s.schedule(now+s.p.L2LatencyTicks, core, m.mem, flit.Request, m)
		} else {
			m.stage = stageBack
			s.schedule(now+s.p.L2LatencyTicks, core, m.origin, flit.Response, m)
		}
	case stageToMem:
		m.stage = stageMemBack
		s.schedule(now+s.p.MemLatencyTicks, core, m.bank, flit.Response, m)
	case stageMemBack:
		m.stage = stageBack
		s.schedule(now+2, core, m.origin, flit.Response, m)
	case stageBack:
		s.outstanding[m.origin]--
	}
}

func (s *System) schedule(at int64, src, dst int, kind flit.Kind, m *miss) {
	heap.Push(&s.events, event{at: at, src: src, dst: dst, kind: kind, m: m})
}

func (s *System) closestMC(core int) int {
	best, bestH := s.mcs[0], 1<<30
	for _, mc := range s.mcs {
		if mc == core {
			continue
		}
		if h := topology.Hops(s.p.Topo, core, mc); h < bestH {
			best, bestH = mc, h
		}
	}
	return best
}

// Done implements sim.Workload.
func (s *System) Done() bool {
	for c := range s.retired {
		if s.retired[c] < float64(s.p.Core.Instructions) {
			return false
		}
	}
	return len(s.inflight) == 0 && len(s.events) == 0 && s.totalOutstanding() == 0
}

func (s *System) totalOutstanding() int {
	n := 0
	for _, o := range s.outstanding {
		n += o
	}
	return n
}

// Stats summarize the run.
type Stats struct {
	MissesIssued int64
	L2Misses     int64
	StalledTicks int64 // summed over cores
}

// Stats returns workload-side counters.
func (s *System) Stats() Stats {
	st := Stats{MissesIssued: s.missesIssued, L2Misses: s.l2Misses}
	for _, v := range s.stalled {
		st.StalledTicks += v
	}
	return st
}

// InstructionsRetired returns total retired instructions.
func (s *System) InstructionsRetired() int64 {
	var t int64
	for _, r := range s.retired {
		t += int64(r)
	}
	return t
}
