// Package mcsim is a lightweight multicore full-system model — the
// substrate that stands in for the Multi2Sim simulator the paper used to
// gather its traces. It models cores with private L1 caches, a shared
// S-NUCA L2 whose banks are distributed one per router, and memory
// controllers at the mesh corners. Cores execute a fixed instruction
// budget; L1 misses become network request packets to the home L2 bank,
// L2 misses chain to a memory controller, and responses travel back as
// data packets.
//
// Crucially the model is *closed-loop*: a core stalls once its MSHRs are
// full, so network slowdowns (power-gating wakeups, low DVFS modes) feed
// back into injection and stretch application runtime — which is how
// real throughput loss manifests, complementing the open-loop trace
// replays used for the paper's figures.
package mcsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// CoreParams describe one core's synthetic workload.
type CoreParams struct {
	// IPC is the instruction throughput per base tick while unstalled.
	IPC float64
	// L1MPKI is L1 misses per kilo-instruction; every miss becomes a
	// network request.
	L1MPKI float64
	// L2MissFrac is the fraction of L2 accesses missing to memory.
	L2MissFrac float64
	// MSHRs bounds outstanding misses per core; at the bound the core
	// stalls (the closed-loop feedback).
	MSHRs int
	// Instructions is the core's total work.
	Instructions int64
	// Locality is the probability an access maps to an L2 bank within
	// two hops of the core.
	Locality float64
	// PhasePeriod/CommFrac/QuietScale shape compute vs. memory phases:
	// during the quiet (compute) window the MPKI is scaled by
	// QuietScale; during the memory window it is boosted to preserve the
	// long-run mean. Zero PhasePeriod disables phasing.
	PhasePeriod int64
	CommFrac    float64
	QuietScale  float64
}

// SystemParams describe the platform.
type SystemParams struct {
	Topo topology.Topology
	Core CoreParams // applied to every core
	// L2LatencyTicks is the bank access latency; MemLatencyTicks the
	// memory controller service latency.
	L2LatencyTicks  int64
	MemLatencyTicks int64
	Seed            int64
}

// DefaultSystem returns a medium-load configuration on the given
// topology.
func DefaultSystem(topo topology.Topology) SystemParams {
	return SystemParams{
		Topo: topo,
		Core: CoreParams{
			IPC:          1.0,
			L1MPKI:       6.0,
			L2MissFrac:   0.25,
			MSHRs:        8,
			Instructions: 200_000,
			Locality:     0.3,
			PhasePeriod:  12_000,
			CommFrac:     0.25,
			QuietScale:   0.1,
		},
		L2LatencyTicks:  20,
		MemLatencyTicks: 90,
		Seed:            1,
	}
}

func (p SystemParams) validate() error {
	c := p.Core
	switch {
	case p.Topo == nil:
		return fmt.Errorf("mcsim: nil topology")
	case c.IPC <= 0 || c.L1MPKI < 0 || c.MSHRs < 1 || c.Instructions < 1:
		return fmt.Errorf("mcsim: bad core params %+v", c)
	case c.L2MissFrac < 0 || c.L2MissFrac > 1:
		return fmt.Errorf("mcsim: bad L2 miss fraction %g", c.L2MissFrac)
	case p.L2LatencyTicks < 0 || p.MemLatencyTicks < 0:
		return fmt.Errorf("mcsim: negative latency")
	}
	return nil
}

// missStage tracks where a miss is in its request chain.
type missStage uint8

const (
	stageToL2    missStage = iota // request travelling core -> L2 bank
	stageToMem                    // request travelling L2 bank -> memory controller
	stageMemBack                  // response travelling MC -> L2 bank
	stageBack                     // response travelling L2 bank -> core
)

// miss is one outstanding L1 miss.
type miss struct {
	origin int // requesting core
	bank   int // home L2 bank core
	mem    int // memory controller core (if the L2 missed)
	stage  missStage
}

// event is a deferred injection (bank/MC service completion).
type event struct {
	at   int64
	src  int
	dst  int
	kind flit.Kind
	m    *miss
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// fpScale is the fixed-point denominator for per-core retirement and
// miss-credit accounting. Integer arithmetic here is what makes the
// event-horizon contract (NextInjectionTick / SkipTicks) exact: the
// credit accrued over a skipped window is a closed-form integer sum,
// bit-identical to adding the per-tick increment delta times, which a
// float accumulator cannot guarantee.
const fpScale = 1 << 20

const fpOne = int64(fpScale)

// System is the multicore workload; it implements sim.Workload and
// traffic.NextInjector (the event-horizon watermark).
type System struct {
	p   SystemParams
	rng *rand.Rand

	retired     []int64 // fixed-point (fpScale) instructions per core
	missCredit  []int64 // fixed-point miss credit per core
	outstanding []int
	stalled     []int64 // stalled ticks per core (stats)

	// Fixed-point per-tick increments, precomputed from CoreParams:
	// ipcFP is retirement per unstalled tick, instrFP the per-core
	// budget, incComm/incQuiet the miss-credit increment during the
	// communication and quiet phase windows (equal when phasing is
	// disabled). commBound is the integer phase predicate: the tick is
	// in the communication window iff now%PhasePeriod < commBound.
	ipcFP     int64
	instrFP   int64
	incComm   int64
	incQuiet  int64
	commBound int64
	phased    bool

	inflight map[uint64]*miss // network packet ID -> miss
	events   eventHeap

	mcs    []int   // memory controller cores (corners)
	locals [][]int // per core: banks within 2 hops

	// totals
	missesIssued int64
	l2Misses     int64
}

var (
	_ sim.Workload         = (*System)(nil)
	_ traffic.NextInjector = (*System)(nil)
)

// New builds the workload.
func New(p SystemParams) (*System, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := p.Topo
	s := &System{
		p:           p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		retired:     make([]int64, t.NumCores()),
		missCredit:  make([]int64, t.NumCores()),
		outstanding: make([]int, t.NumCores()),
		stalled:     make([]int64, t.NumCores()),
		inflight:    make(map[uint64]*miss),
	}
	cp := p.Core
	s.ipcFP = int64(math.Round(cp.IPC * fpScale))
	if s.ipcFP < 1 {
		return nil, fmt.Errorf("mcsim: IPC %g below fixed-point resolution 1/%d", cp.IPC, fpScale)
	}
	if cp.Instructions > math.MaxInt64/fpScale {
		return nil, fmt.Errorf("mcsim: instruction budget %d overflows fixed-point accounting", cp.Instructions)
	}
	s.instrFP = cp.Instructions * fpScale
	s.phased = cp.PhasePeriod > 0 && cp.CommFrac > 0 && cp.CommFrac < 1
	if s.phased {
		boost := (1 - cp.QuietScale*(1-cp.CommFrac)) / cp.CommFrac
		s.incComm = int64(math.Round(cp.IPC * cp.L1MPKI * boost / 1000 * fpScale))
		s.incQuiet = int64(math.Round(cp.IPC * cp.L1MPKI * cp.QuietScale / 1000 * fpScale))
		// Integer phase predicate: for integer x, x < y iff x < ceil(y),
		// so now%P < commBound replicates float64(now%P) < CommFrac*P.
		s.commBound = int64(math.Ceil(cp.CommFrac * float64(cp.PhasePeriod)))
	} else {
		s.incComm = int64(math.Round(cp.IPC * cp.L1MPKI / 1000 * fpScale))
		s.incQuiet = s.incComm
	}
	s.mcs = []int{
		t.CoreAt(t.RouterAt(0, 0), 0),
		t.CoreAt(t.RouterAt(t.Width()-1, 0), 0),
		t.CoreAt(t.RouterAt(0, t.Height()-1), 0),
		t.CoreAt(t.RouterAt(t.Width()-1, t.Height()-1), 0),
	}
	s.locals = make([][]int, t.NumCores())
	for c := range s.locals {
		for d := 0; d < t.NumCores(); d++ {
			if d != c && topology.Hops(t, c, d) <= 2 {
				s.locals[c] = append(s.locals[c], d)
			}
		}
	}
	return s, nil
}

// segmentAt returns the per-tick miss-credit increment in effect at tick
// t and the first tick after t at which it may change (the current phase
// window's end; MaxInt64 when phasing is disabled).
func (s *System) segmentAt(t int64) (inc, segEnd int64) {
	if !s.phased {
		return s.incComm, math.MaxInt64
	}
	pp := s.p.Core.PhasePeriod
	pos := t % pp
	if pos < s.commBound {
		return s.incComm, t + (s.commBound - pos)
	}
	return s.incQuiet, t + (pp - pos)
}

// Tick implements sim.Workload: advance cores, issue misses, fire due
// service events.
func (s *System) Tick(now int64, inject func(*flit.Packet)) {
	// Fire due bank/MC completions.
	for len(s.events) > 0 && s.events[0].at <= now {
		ev := heap.Pop(&s.events).(event)
		p := flit.New(0, ev.src, ev.dst, ev.kind, now)
		inject(p)
		s.inflight[p.ID] = ev.m
	}

	inc, _ := s.segmentAt(now)
	cp := s.p.Core
	for c := range s.retired {
		if s.retired[c] >= s.instrFP {
			continue // finished
		}
		if s.outstanding[c] >= cp.MSHRs {
			s.stalled[c]++
			continue
		}
		s.retired[c] += s.ipcFP
		s.missCredit[c] += inc
		for s.missCredit[c] >= fpOne && s.outstanding[c] < cp.MSHRs {
			s.missCredit[c] -= fpOne
			s.issueMiss(c, inject)
		}
	}
}

// issueMiss sends an L1-miss request from core c to its home L2 bank.
func (s *System) issueMiss(c int, inject func(*flit.Packet)) {
	bank := s.pickBank(c)
	m := &miss{origin: c, bank: bank, stage: stageToL2}
	p := flit.New(0, c, bank, flit.Request, 0)
	inject(p)
	s.inflight[p.ID] = m
	s.outstanding[c]++
	s.missesIssued++
}

// pickBank maps an access to its home L2 bank (address-hashed S-NUCA
// with a locality bias).
func (s *System) pickBank(c int) int {
	if s.rng.Float64() < s.p.Core.Locality && len(s.locals[c]) > 0 {
		return s.locals[c][s.rng.Intn(len(s.locals[c]))]
	}
	for {
		d := s.rng.Intn(s.p.Topo.NumCores())
		if d != c {
			return d
		}
	}
}

// PacketDelivered implements sim.Workload: advance the miss chain.
func (s *System) PacketDelivered(p *flit.Packet, core int, now int64) {
	m, ok := s.inflight[p.ID]
	if !ok {
		return // not ours (trace traffic can coexist in principle)
	}
	delete(s.inflight, p.ID)
	switch m.stage {
	case stageToL2:
		if s.rng.Float64() < s.p.Core.L2MissFrac {
			// L2 miss: forward to the closest memory controller.
			m.stage = stageToMem
			m.mem = s.closestMC(core)
			s.l2Misses++
			s.schedule(now+s.p.L2LatencyTicks, core, m.mem, flit.Request, m)
		} else {
			m.stage = stageBack
			s.schedule(now+s.p.L2LatencyTicks, core, m.origin, flit.Response, m)
		}
	case stageToMem:
		m.stage = stageMemBack
		s.schedule(now+s.p.MemLatencyTicks, core, m.bank, flit.Response, m)
	case stageMemBack:
		m.stage = stageBack
		s.schedule(now+2, core, m.origin, flit.Response, m)
	case stageBack:
		s.outstanding[m.origin]--
	}
}

func (s *System) schedule(at int64, src, dst int, kind flit.Kind, m *miss) {
	heap.Push(&s.events, event{at: at, src: src, dst: dst, kind: kind, m: m})
}

func (s *System) closestMC(core int) int {
	best, bestH := s.mcs[0], 1<<30
	for _, mc := range s.mcs {
		if mc == core {
			continue
		}
		if h := topology.Hops(s.p.Topo, core, mc); h < bestH {
			best, bestH = mc, h
		}
	}
	return best
}

// Done implements sim.Workload.
func (s *System) Done() bool {
	for c := range s.retired {
		if s.retired[c] < s.instrFP {
			return false
		}
	}
	return len(s.inflight) == 0 && len(s.events) == 0 && s.totalOutstanding() == 0
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// creditCrossing returns the first tick >= now at which core c's miss
// credit reaches a whole miss — its next injection opportunity, assuming
// the core retires uninterrupted from now on — or NoPendingInjection if
// that cannot happen before the core finishes its budget. The walk
// advances one phase segment at a time; the iteration cap only makes the
// answer conservative (an earlier tick that the engine then processes
// normally), never early.
func (s *System) creditCrossing(c int, now int64) int64 {
	if s.incComm <= 0 && s.incQuiet <= 0 {
		return traffic.NoPendingInjection
	}
	finish := now + ceilDiv(s.instrFP-s.retired[c], s.ipcFP) - 1
	credit := s.missCredit[c]
	t := now
	for iter := 0; iter < 32; iter++ {
		inc, segEnd := s.segmentAt(t)
		if inc > 0 {
			if k := ceilDiv(fpOne-credit, inc); k <= segEnd-t {
				if cross := t + k - 1; cross <= finish {
					return cross
				}
				return traffic.NoPendingInjection
			}
			credit += (segEnd - t) * inc
		}
		t = segEnd
		if t > finish {
			return traffic.NoPendingInjection
		}
	}
	return t
}

// NextInjectionTick implements traffic.NextInjector: the earliest tick
// >= now at which Tick may inject a packet or Done may change, absent
// deliveries. Three sources bound it: the service-event heap (bank/MC
// completions re-inject at their due tick), each unstalled unfinished
// core's miss-credit crossing, and — once the system is retirement-only
// (nothing in flight, no events, no outstanding misses, hence no core
// can stall) — the tick the last core finishes, where Done flips and a
// draining run must stop.
func (s *System) NextInjectionTick(now int64) int64 {
	next := traffic.NoPendingInjection
	if len(s.events) > 0 {
		t := s.events[0].at
		if t < now {
			t = now
		}
		next = t
	}
	cp := s.p.Core
	for c := range s.retired {
		if s.retired[c] >= s.instrFP || s.outstanding[c] >= cp.MSHRs {
			// Finished cores never inject again; stalled cores need a
			// delivery first, and deliveries bound the engine's horizon
			// on their own (wire due, event heap).
			continue
		}
		if t := s.creditCrossing(c, now); t < next {
			next = t
		}
	}
	if len(s.inflight) == 0 && len(s.events) == 0 && s.totalOutstanding() == 0 {
		fin := int64(-1)
		for c := range s.retired {
			if s.retired[c] < s.instrFP {
				if f := now + ceilDiv(s.instrFP-s.retired[c], s.ipcFP) - 1; f > fin {
					fin = f
				}
			}
		}
		if fin >= now && fin < next {
			next = fin
		}
	}
	return next
}

// creditAccrued sums the per-tick miss-credit increments over the window
// [now, now+n), one phase segment at a time.
func (s *System) creditAccrued(now, n int64) int64 {
	var sum int64
	t, end := now, now+n
	for t < end {
		inc, segEnd := s.segmentAt(t)
		if segEnd > end {
			segEnd = end
		}
		sum += (segEnd - t) * inc
		t = segEnd
	}
	return sum
}

// SkipTicks implements traffic.NextInjector: replay the accounting Tick
// would have performed over the skipped window [now, now+delta) in
// closed form. Finished cores do nothing; stalled cores accrue stalled
// time (they cannot unstall without a delivery, and deliveries end the
// window); running cores retire min(delta, remaining) ticks' worth of
// instructions and accrue miss credit. The engine only skips windows the
// watermark cleared, so a credit crossing inside one is a contract
// violation — detected loudly rather than silently dropping a miss.
func (s *System) SkipTicks(now, delta int64) {
	cp := s.p.Core
	accFull := int64(-1) // increments are core-independent; computed once
	for c := range s.retired {
		if s.retired[c] >= s.instrFP {
			continue
		}
		if s.outstanding[c] >= cp.MSHRs {
			s.stalled[c] += delta
			continue
		}
		n := delta
		if rem := ceilDiv(s.instrFP-s.retired[c], s.ipcFP); rem < n {
			n = rem
		}
		var acc int64
		if n == delta {
			if accFull < 0 {
				accFull = s.creditAccrued(now, delta)
			}
			acc = accFull
		} else {
			acc = s.creditAccrued(now, n)
		}
		s.retired[c] += n * s.ipcFP
		s.missCredit[c] += acc
		if s.missCredit[c] >= fpOne {
			panic(fmt.Sprintf("mcsim: SkipTicks(%d, %d) crossed core %d's miss-credit boundary — NextInjectionTick watermark violated", now, delta, c))
		}
	}
}

func (s *System) totalOutstanding() int {
	n := 0
	for _, o := range s.outstanding {
		n += o
	}
	return n
}

// Stats summarize the run.
type Stats struct {
	MissesIssued int64
	L2Misses     int64
	StalledTicks int64 // summed over cores
}

// Stats returns workload-side counters.
func (s *System) Stats() Stats {
	st := Stats{MissesIssued: s.missesIssued, L2Misses: s.l2Misses}
	for _, v := range s.stalled {
		st.StalledTicks += v
	}
	return st
}

// InstructionsRetired returns total retired instructions.
func (s *System) InstructionsRetired() int64 {
	var t int64
	for _, r := range s.retired {
		t += r / fpScale
	}
	return t
}
