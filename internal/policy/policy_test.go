package policy

import (
	"testing"

	"repro/internal/power"
	"repro/internal/timing"
	"repro/internal/vr"
)

// fakeNet lets tests steer idleness.
type fakeNet struct {
	empty   map[int]bool
	secured map[int]bool
}

func newFakeNet() *fakeNet {
	return &fakeNet{empty: map[int]bool{}, secured: map[int]bool{}}
}

func (f *fakeNet) BuffersEmpty(r int) bool { return f.empty[r] }
func (f *fakeNet) Secured(r int) bool      { return f.secured[r] }

func TestModeForIBUThresholds(t *testing.T) {
	// Fig 3(b) threshold map.
	cases := []struct {
		ibu  float64
		want power.Mode
	}{
		{0.0, power.M3},
		{0.049, power.M3},
		{0.05, power.M4},
		{0.099, power.M4},
		{0.10, power.M5},
		{0.199, power.M5},
		{0.20, power.M6},
		{0.249, power.M6},
		{0.25, power.M7},
		{0.9, power.M7},
	}
	for _, c := range cases {
		if got := ModeForIBU(c.ibu); got != c.want {
			t.Errorf("ModeForIBU(%g) = %v, want %v", c.ibu, got, c.want)
		}
	}
}

func TestFixedSelector(t *testing.T) {
	s := FixedSelector{Mode: power.M7}
	if s.SelectMode(0, 0.9, nil) != power.M7 {
		t.Error("fixed selector must ignore inputs")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestReactiveSelector(t *testing.T) {
	s := ReactiveSelector{}
	if s.SelectMode(0, 0.15, nil) != power.M5 {
		t.Error("reactive selector must threshold the current IBU")
	}
}

type constPredictor float64

func (c constPredictor) Predict([]float64) float64 { return float64(c) }

func TestProactiveSelector(t *testing.T) {
	s := ProactiveSelector{Model: constPredictor(0.22), ModelName: "test"}
	if got := s.SelectMode(0, 0.0, []float64{1}); got != power.M6 {
		t.Errorf("proactive = %v, want M6", got)
	}
	// Negative predictions clamp to zero -> M3.
	s = ProactiveSelector{Model: constPredictor(-0.5), ModelName: "test"}
	if got := s.SelectMode(0, 0.9, []float64{1}); got != power.M3 {
		t.Errorf("negative prediction = %v, want M3", got)
	}
}

func TestTurboSelectorEveryThirdMiddle(t *testing.T) {
	// The TURBO rule: every third middle-mode (M4-M6) pick becomes M7.
	inner := ReactiveSelector{}
	s := NewTurboSelector(inner, 4)
	var got []power.Mode
	for i := 0; i < 6; i++ {
		got = append(got, s.SelectMode(2, 0.15, nil)) // M5 territory
	}
	want := []power.Mode{power.M5, power.M5, power.M7, power.M5, power.M5, power.M7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("turbo sequence %v, want %v", got, want)
		}
	}
	// M3 and M7 picks pass through and do not advance the counter.
	if s.SelectMode(2, 0.0, nil) != power.M3 {
		t.Error("M3 must pass through")
	}
	if s.SelectMode(2, 0.9, nil) != power.M7 {
		t.Error("M7 must pass through")
	}
	if s.SelectMode(2, 0.15, nil) != power.M5 {
		t.Error("counter must not advance on M3/M7 picks")
	}
	// Counters are per router.
	if s.SelectMode(3, 0.15, nil) != power.M5 {
		t.Error("fresh router must start its own count")
	}
}

func TestSpecFactories(t *testing.T) {
	b := Baseline()
	if b.PowerGating || b.Name != "Baseline" || b.InitialMode != power.M7 {
		t.Errorf("baseline spec = %+v", b)
	}
	pg := PowerGated()
	if !pg.PowerGating || pg.TIdle != DefaultTIdle {
		t.Errorf("PG spec = %+v", pg)
	}
	lead := DVFSML(ReactiveSelector{})
	if lead.PowerGating {
		t.Error("LEAD must not power-gate")
	}
	dn := DozzNoC(ReactiveSelector{})
	if !dn.PowerGating || dn.Name != "DozzNoC" {
		t.Errorf("DozzNoC spec = %+v", dn)
	}
	tu := MLTurbo(ReactiveSelector{}, 4)
	if !tu.PowerGating {
		t.Error("TURBO must power-gate")
	}
	if _, ok := tu.Selector.(*TurboSelector); !ok {
		t.Error("TURBO selector must be wrapped")
	}
}

func TestControllerInitialState(t *testing.T) {
	c := NewController(4, Baseline())
	for r := 0; r < 4; r++ {
		if c.State(r) != Active {
			t.Fatalf("router %d starts %v", r, c.State(r))
		}
		if c.Mode(r) != power.M7 {
			t.Fatalf("router %d starts at %v", r, c.Mode(r))
		}
		if !c.CanAccept(r) {
			t.Fatal("fresh router must accept")
		}
	}
}

func TestBaselineNeverGates(t *testing.T) {
	c := NewController(1, Baseline())
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	for tick := 0; tick < 100; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	if c.State(0) != Active {
		t.Fatal("baseline gated a router")
	}
	if c.Stats().Gatings != 0 {
		t.Fatal("baseline recorded gatings")
	}
}

func TestGatingAfterTIdle(t *testing.T) {
	c := NewController(1, PowerGated())
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	cycles := 0
	for tick := 0; c.State(0) == Active && tick < 100; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			cycles++
			c.PostCycle(0)
		}
	}
	if c.State(0) != Inactive {
		t.Fatal("idle router never gated")
	}
	if cycles != DefaultTIdle {
		t.Fatalf("gated after %d idle cycles, want %d", cycles, DefaultTIdle)
	}
	if c.Stats().Gatings != 1 {
		t.Fatalf("gatings = %d", c.Stats().Gatings)
	}
	if c.CanAccept(0) {
		t.Fatal("gated router must not accept")
	}
}

func TestSecuredRouterNeverGates(t *testing.T) {
	c := NewController(1, PowerGated())
	nv := newFakeNet()
	nv.empty[0] = true
	nv.secured[0] = true
	c.SetNetView(nv)
	for tick := 0; tick < 50; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	if c.State(0) != Active {
		t.Fatal("secured router gated")
	}
}

func TestWakeupTakesTWakeupCycles(t *testing.T) {
	c := NewController(1, PowerGated())
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	tick := 0
	for ; c.State(0) == Active; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	gatedAt := tick
	// Stay off for a while, then punch.
	for ; tick < gatedAt+100; tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
	}
	c.SetNow(timing.Tick(tick))
	c.WakeRequest(0)
	if c.State(0) != Wakeup {
		t.Fatal("wake request did not start wakeup")
	}
	if c.CanAccept(0) {
		t.Fatal("waking router must not accept")
	}
	// The PG model wakes into M7: T-Wakeup = 18 cycles at 2.25 GHz = 18
	// base ticks.
	wakeTicks := 0
	for ; c.State(0) == Wakeup; tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
		wakeTicks++
		if wakeTicks > 100 {
			t.Fatal("wakeup never completed")
		}
	}
	want := vr.CostsFor(power.M7).TWakeup
	if wakeTicks != want {
		t.Fatalf("wakeup took %d ticks, want %d", wakeTicks, want)
	}
	if c.Stats().Wakes != 1 {
		t.Fatalf("wakes = %d", c.Stats().Wakes)
	}
}

func TestWakeRequestNoOpWhenAwake(t *testing.T) {
	c := NewController(1, PowerGated())
	c.SetNetView(newFakeNet())
	c.WakeRequest(0)
	if c.Stats().Wakes != 0 {
		t.Fatal("wake of an active router counted")
	}
}

func TestBreakevenAccounting(t *testing.T) {
	c := NewController(1, PowerGated())
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	// Gate, then wake after only 3 ticks off: off time (3 cycles at M7)
	// is under T-Breakeven (12 cycles at M7).
	tick := 0
	for ; c.State(0) == Active; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	c.SetNow(timing.Tick(tick + 3))
	c.WakeRequest(0)
	st := c.Stats()
	if st.Wakes != 1 || st.BreakevenMet != 0 {
		t.Fatalf("short gate: wakes=%d met=%d, want 1/0", st.Wakes, st.BreakevenMet)
	}

	// Second gating period: stay off 100 ticks (well past breakeven).
	for ; c.State(0) != Active; tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
	}
	for ; c.State(0) == Active; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	c.SetNow(timing.Tick(tick + 100))
	c.WakeRequest(0)
	st = c.Stats()
	if st.Wakes != 2 || st.BreakevenMet != 1 {
		t.Fatalf("long gate: wakes=%d met=%d, want 2/1", st.Wakes, st.BreakevenMet)
	}
}

func TestOffTicksAccumulates(t *testing.T) {
	c := NewController(1, PowerGated())
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	gatedAt := -1
	for tick := 0; gatedAt < 0; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
		if c.State(0) == Inactive {
			gatedAt = tick
		}
	}
	c.SetNow(timing.Tick(gatedAt + 50))
	if got := c.OffTicks(0); got != 50 {
		t.Fatalf("mid-gate off ticks = %d, want 50", got)
	}
	c.WakeRequest(0)
	c.SetNow(timing.Tick(gatedAt + 80))
	if got := c.OffTicks(0); got != 50 {
		t.Fatalf("post-wake off ticks = %d, want 50", got)
	}
}

func TestEpochBoundaryModeSwitch(t *testing.T) {
	c := NewController(1, DVFSML(ReactiveSelector{}))
	c.SetNetView(newFakeNet())
	c.SetNow(0)
	// High IBU -> M7 (already there, no switch).
	c.EpochBoundary(0, 0.5, nil)
	if c.Stats().ModeSwitches != 0 {
		t.Fatal("no-op selection must not count as a switch")
	}
	// Low IBU -> M3: a switch begins; the router pauses T-Switch cycles.
	c.EpochBoundary(0, 0.0, nil)
	if c.Mode(0) != power.M3 {
		t.Fatalf("mode = %v, want M3", c.Mode(0))
	}
	if c.CanAccept(0) {
		t.Fatal("switching router must pause")
	}
	paused := 0
	for tick := 1; !c.CanAccept(0) && tick < 200; tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
		paused++
	}
	// T-Switch into M3 is 7 cycles of the 1 GHz clock = ceil(7*2.25) base
	// ticks paced by the accumulator.
	wantLocal := vr.CostsFor(power.M3).TSwitch
	gotLocal := int(timing.CyclesIn(timing.Tick(paused), power.FreqMHz(power.M3)))
	if gotLocal != wantLocal {
		t.Fatalf("switch paused %d base ticks = %d local cycles, want %d", paused, gotLocal, wantLocal)
	}
	st := c.Stats()
	if st.ModeSwitches != 1 || st.EpochDecisions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ModeDecisions[power.M7.Index()] != 1 || st.ModeDecisions[power.M3.Index()] != 1 {
		t.Fatalf("decision histogram = %v", st.ModeDecisions)
	}
}

func TestEpochBoundarySkipsGatedRouters(t *testing.T) {
	c := NewController(1, DozzNoC(ReactiveSelector{}))
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	for tick := 0; c.State(0) == Active; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	c.EpochBoundary(0, 0.5, nil)
	if c.Stats().EpochDecisions != 0 {
		t.Fatal("gated router must not run the selector (§III-B)")
	}
}

func TestBillingState(t *testing.T) {
	c := NewController(1, DozzNoC(ReactiveSelector{}))
	nv := newFakeNet()
	c.SetNetView(nv)
	if m, _ := c.BillingState(0); m != power.M7 {
		t.Fatalf("active billing = %v", m)
	}
	// Gate it.
	nv.empty[0] = true
	for tick := 0; c.State(0) == Active; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	if m, _ := c.BillingState(0); m != power.Inactive {
		t.Fatalf("gated billing = %v", m)
	}
	c.WakeRequest(0)
	m, target := c.BillingState(0)
	if m != power.Wakeup || target != power.M7 {
		t.Fatalf("waking billing = %v into %v", m, target)
	}
}

func TestSwitchBillsHigherMode(t *testing.T) {
	c := NewController(1, DVFSML(ReactiveSelector{}))
	c.SetNetView(newFakeNet())
	c.SetNow(0)
	c.EpochBoundary(0, 0.0, nil) // M7 -> M3: bill at the old, higher mode
	if m, _ := c.BillingState(0); m != power.M7 {
		t.Fatalf("down-switch billing = %v, want M7", m)
	}
	// Finish the switch, then switch back up: bill at the new mode.
	for tick := 1; !c.CanAccept(0); tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
	}
	c.EpochBoundary(0, 0.5, nil) // M3 -> M7
	if m, _ := c.BillingState(0); m != power.M7 {
		t.Fatalf("up-switch billing = %v, want M7", m)
	}
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Inactive.String() != "inactive" || Wakeup.String() != "wakeup" {
		t.Error("state strings wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state empty")
	}
}

func TestDomainSlowsWithMode(t *testing.T) {
	// After switching to M3, Advance fires local cycles at 1000/2250 of
	// base ticks.
	c := NewController(1, DVFSML(ReactiveSelector{}))
	c.SetNetView(newFakeNet())
	c.SetNow(0)
	c.EpochBoundary(0, 0.0, nil) // go to M3
	fired := 0
	const n = 2250
	for tick := 1; tick <= n; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			fired++
		}
	}
	// All local cycles count (the first few are eaten by T-Switch).
	want := int(timing.CyclesIn(n, power.FreqMHz(power.M3))) - vr.CostsFor(power.M3).TSwitch
	if fired < want-1 || fired > want+1 {
		t.Fatalf("M3 router fired %d cycles in %d ticks, want ~%d", fired, n, want)
	}
}

func TestGlobalSelectorAdoptsNetworkMax(t *testing.T) {
	g := NewGlobalSelector(ReactiveSelector{})
	// Epoch 1: routers 0..3 report IBUs mapping to M3,M3,M6,M3; everyone
	// still runs the initial M7 (no prior epoch).
	ibus := []float64{0.0, 0.0, 0.22, 0.0}
	for r, ibu := range ibus {
		if got := g.SelectMode(r, ibu, nil); got != power.M7 {
			t.Fatalf("epoch 1 router %d = %v, want initial M7", r, got)
		}
	}
	// Epoch 2: everyone adopts epoch 1's max (M6).
	for r := range ibus {
		if got := g.SelectMode(r, 0.0, nil); got != power.M6 {
			t.Fatalf("epoch 2 router %d = %v, want M6", r, got)
		}
	}
	// Epoch 3: epoch 2 was all-M3, so everyone drops to M3.
	for r := range ibus {
		if got := g.SelectMode(r, 0.0, nil); got != power.M3 {
			t.Fatalf("epoch 3 router %d = %v, want M3", r, got)
		}
	}
}

func TestGlobalSelectorName(t *testing.T) {
	if NewGlobalSelector(ReactiveSelector{}).Name() != "global(reactive)" {
		t.Error("name wrong")
	}
}

// requireDormant checks Dormant against its documented equivalence with
// TicksToNextEvent == NoEvent.
func requireDormant(t *testing.T, c *Controller, r int, want bool, when string) {
	t.Helper()
	if got := c.Dormant(r); got != want {
		t.Fatalf("%s: Dormant = %v, want %v", when, got, want)
	}
	if ev := c.TicksToNextEvent(r); (ev == NoEvent) != want {
		t.Fatalf("%s: TicksToNextEvent = %d disagrees with Dormant = %v", when, ev, want)
	}
}

// TestDormant walks a router through every power state and checks the
// active-set deferral predicate: dormant exactly when no autonomous
// transition is pending, and always in agreement with TicksToNextEvent.
func TestDormant(t *testing.T) {
	// A non-gating spec: an Active router outside a switch sits still
	// forever.
	c := NewController(1, Baseline())
	c.SetNetView(newFakeNet())
	requireDormant(t, c, 0, true, "baseline fresh")

	// A gating spec: the idle countdown is a pending transition, so an
	// Active router is never dormant; Inactive is terminal-until-woken,
	// so it is; Wakeup counts down, so it is not.
	c = NewController(1, PowerGated())
	nv := newFakeNet()
	nv.empty[0] = true
	c.SetNetView(nv)
	requireDormant(t, c, 0, false, "gating active")
	for tick := 0; c.State(0) == Active; tick++ {
		c.SetNow(timing.Tick(tick))
		if c.Advance(0) {
			c.PostCycle(0)
		}
	}
	requireDormant(t, c, 0, true, "gated")
	c.WakeRequest(0)
	requireDormant(t, c, 0, false, "waking")
	for tick := DefaultTIdle + 1; c.State(0) == Wakeup; tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
	}
	requireDormant(t, c, 0, false, "re-active after wake")

	// A DVFS spec mid-switch: the voltage-switch pause is a pending
	// transition; dormancy returns once it completes.
	c = NewController(1, DVFSML(FixedSelector{Mode: power.M3}))
	c.SetNetView(newFakeNet())
	requireDormant(t, c, 0, true, "dvfs fresh")
	c.EpochBoundary(0, 0, nil)
	requireDormant(t, c, 0, false, "mid voltage switch")
	for tick := 0; !c.Dormant(0) && tick < 10_000; tick++ {
		c.SetNow(timing.Tick(tick))
		c.Advance(0)
	}
	requireDormant(t, c, 0, true, "switch complete")
	if c.Mode(0) != power.M3 {
		t.Fatalf("mode after switch = %v, want M3", c.Mode(0))
	}
}
