package policy_test

import (
	"fmt"

	"repro/internal/policy"
)

// The Fig 3(b) threshold map drives all three ML models' mode selection.
func ExampleModeForIBU() {
	for _, ibu := range []float64{0.01, 0.07, 0.15, 0.22, 0.40} {
		fmt.Printf("IBU %.0f%% -> %v\n", ibu*100, policy.ModeForIBU(ibu))
	}
	// Output:
	// IBU 1% -> M3
	// IBU 7% -> M4
	// IBU 15% -> M5
	// IBU 22% -> M6
	// IBU 40% -> M7
}

// The five compared models are a power-gating flag plus a mode selector.
func ExampleBaseline() {
	for _, s := range []policy.Spec{
		policy.Baseline(),
		policy.PowerGated(),
		policy.DVFSML(policy.ReactiveSelector{}),
		policy.DozzNoC(policy.ReactiveSelector{}),
	} {
		fmt.Printf("%-8s gating=%v selector=%s\n", s.Name, s.PowerGating, s.Selector.Name())
	}
	// Output:
	// Baseline gating=false selector=fixed-M7
	// PG       gating=true selector=fixed-M7
	// DVFS+ML  gating=false selector=reactive
	// DozzNoC  gating=true selector=reactive
}
