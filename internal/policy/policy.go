// Package policy implements DozzNoC's power-management layer (§III-B):
// the per-router state machine over the inactive / wakeup / active states
// (Fig 3a), the threshold-based DVFS mode map (Fig 3b), and the five
// compared models — Baseline, PG (Power-Punch-like), DVFS+ML (LEAD-tau),
// DozzNoC (ML+PG+DVFS) and ML+TURBO — expressed as a power-gating flag
// plus a mode selector.
package policy

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/timing"
	"repro/internal/vr"
)

// State is the coarse power state of a router.
type State uint8

const (
	// Active: powered at one of the five V/F modes; may move flits unless
	// paused mid voltage switch.
	Active State = iota
	// Inactive: power-gated at 0 V; may not send, receive or hop flits.
	Inactive
	// Wakeup: charging back to Vdd; consumes active-state power but may
	// not move flits until T-Wakeup elapses.
	Wakeup
)

// String renders a state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Inactive:
		return "inactive"
	case Wakeup:
		return "wakeup"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// DefaultTIdle is the consecutive-idle-cycle threshold before gating; the
// paper adopts T-Idle = 4 from Catnap.
const DefaultTIdle = 4

// ModeForIBU maps a (predicted) input-buffer utilization fraction to the
// active mode per Fig 3(b): <5% -> M3, 5-10% -> M4, 10-20% -> M5,
// 20-25% -> M6, >25% -> M7.
func ModeForIBU(ibu float64) power.Mode {
	switch {
	case ibu < 0.05:
		return power.M3
	case ibu < 0.10:
		return power.M4
	case ibu < 0.20:
		return power.M5
	case ibu < 0.25:
		return power.M6
	default:
		return power.M7
	}
}

// ModeSelector chooses the active V/F mode for a router at each epoch
// boundary. Implementations may keep per-router state keyed by routerID.
type ModeSelector interface {
	// Name identifies the selector for reports.
	Name() string
	// SelectMode picks the mode for the next epoch. ibu is the measured
	// IBU of the closing epoch; feats is the Table IV feature vector
	// (nil for non-ML selectors).
	SelectMode(routerID int, ibu float64, feats []float64) power.Mode
}

// FixedSelector always returns one mode (Baseline and PG use M7).
type FixedSelector struct{ Mode power.Mode }

// Name implements ModeSelector.
func (s FixedSelector) Name() string { return fmt.Sprintf("fixed-%v", s.Mode) }

// SelectMode implements ModeSelector.
func (s FixedSelector) SelectMode(int, float64, []float64) power.Mode { return s.Mode }

// ReactiveSelector applies the threshold map to the *current* IBU — the
// reactive variant used to harvest ML training data (§III-D).
type ReactiveSelector struct{}

// Name implements ModeSelector.
func (ReactiveSelector) Name() string { return "reactive" }

// SelectMode implements ModeSelector.
func (ReactiveSelector) SelectMode(_ int, ibu float64, _ []float64) power.Mode {
	return ModeForIBU(ibu)
}

// Predictor predicts the next epoch's IBU from a feature vector; the ml
// package's trained Ridge models satisfy it.
type Predictor interface {
	Predict(feats []float64) float64
}

// ProactiveSelector thresholds a predicted future IBU (the ML path).
type ProactiveSelector struct {
	Model     Predictor
	ModelName string
}

// Name implements ModeSelector.
func (s ProactiveSelector) Name() string { return "proactive-" + s.ModelName }

// SelectMode implements ModeSelector.
func (s ProactiveSelector) SelectMode(_ int, _ float64, feats []float64) power.Mode {
	p := s.Model.Predict(feats)
	if p < 0 {
		p = 0
	}
	return ModeForIBU(p)
}

// TurboSelector wraps another selector with the ML+TURBO rule: every third
// time the inner selector picks a middle mode (anything other than M3 or
// M7), M7 is chosen instead for the next epoch.
type TurboSelector struct {
	Inner    ModeSelector
	counters []int
}

// NewTurboSelector builds a TurboSelector over numRouters routers.
func NewTurboSelector(inner ModeSelector, numRouters int) *TurboSelector {
	return &TurboSelector{Inner: inner, counters: make([]int, numRouters)}
}

// Name implements ModeSelector.
func (s *TurboSelector) Name() string { return "turbo(" + s.Inner.Name() + ")" }

// SelectMode implements ModeSelector.
func (s *TurboSelector) SelectMode(routerID int, ibu float64, feats []float64) power.Mode {
	m := s.Inner.SelectMode(routerID, ibu, feats)
	if m == power.M3 || m == power.M7 {
		return m
	}
	s.counters[routerID]++
	if s.counters[routerID]%3 == 0 {
		return power.M7
	}
	return m
}

// Spec describes one of the compared models.
type Spec struct {
	Name        string
	PowerGating bool
	Selector    ModeSelector
	InitialMode power.Mode
	TIdle       int
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.InitialMode == 0 {
		s.InitialMode = power.M7
	}
	if s.TIdle == 0 {
		s.TIdle = DefaultTIdle
	}
	if s.Selector == nil {
		s.Selector = FixedSelector{Mode: power.MaxActive}
	}
	return s
}

// Baseline returns the always-on, always-M7 model.
func Baseline() Spec {
	return Spec{Name: "Baseline", Selector: FixedSelector{Mode: power.MaxActive}}.withDefaults()
}

// PowerGated returns the Power-Punch-like model: gating enabled, active
// routers pinned at M7.
func PowerGated() Spec {
	return Spec{Name: "PG", PowerGating: true, Selector: FixedSelector{Mode: power.MaxActive}}.withDefaults()
}

// DVFSML returns the LEAD-tau comparison model: DVFS with the given
// selector, no power-gating.
func DVFSML(sel ModeSelector) Spec {
	return Spec{Name: "DVFS+ML", Selector: sel}.withDefaults()
}

// DozzNoC returns the proposed model: power-gating plus DVFS with the
// given selector.
func DozzNoC(sel ModeSelector) Spec {
	return Spec{Name: "DozzNoC", PowerGating: true, Selector: sel}.withDefaults()
}

// MLTurbo returns the ML+TURBO experimental model.
func MLTurbo(sel ModeSelector, numRouters int) Spec {
	return Spec{Name: "ML+TURBO", PowerGating: true, Selector: NewTurboSelector(sel, numRouters)}.withDefaults()
}

// EventObserver receives the controller's rare power-management events
// (gatings, wakes, mode switches, epoch decisions). It is the hook the
// observability layer (internal/obs) implements; the interface lives here
// so policy does not import obs.
//
// Gated and Woken may fire from an engine shard's goroutine during a
// concurrent sweep — always for a router the calling shard owns — so
// implementations must stage per-router counters into per-shard lanes
// (the same discipline as SetStatsLanes). EpochDecision and ModeSwitched
// only fire from the engine goroutine's epoch-boundary sweep.
type EventObserver interface {
	// RouterGated fires on an Active -> Inactive transition.
	RouterGated(routerID int)
	// RouterWoken fires on an Inactive -> Wakeup transition; offTicks is
	// the length of the gating period that just ended, and stallTicks the
	// number of base ticks the router will now spend charging up before
	// it can move flits (the deterministic wakeup-stall duration at the
	// router's current mode frequency), both in base ticks.
	RouterWoken(routerID int, offTicks, stallTicks int64)
	// ModeSwitched fires when an epoch decision starts a voltage switch.
	ModeSwitched(routerID int, from, to power.Mode)
	// EpochDecision fires for every selector run: measured is the closing
	// epoch's IBU, predicted the IBU the selector derived its mode from
	// (equal to measured for non-predictive selectors).
	EpochDecision(routerID int, measured, predicted float64, mode power.Mode)
}

// IBUPredictor is optionally implemented by selectors that derive their
// mode from a predicted IBU (the ML path); it lets an EventObserver
// record predicted-vs-actual accuracy without re-deriving the model.
type IBUPredictor interface {
	PredictIBU(routerID int, ibu float64, feats []float64) float64
}

// PredictIBU implements IBUPredictor: the clamped model prediction that
// SelectMode thresholds.
func (s ProactiveSelector) PredictIBU(_ int, _ float64, feats []float64) float64 {
	p := s.Model.Predict(feats)
	if p < 0 {
		p = 0
	}
	return p
}

// PredictIBU implements IBUPredictor by delegating to the wrapped
// selector (the TURBO override changes the mode, not the prediction).
func (s *TurboSelector) PredictIBU(routerID int, ibu float64, feats []float64) float64 {
	if p, ok := s.Inner.(IBUPredictor); ok {
		return p.PredictIBU(routerID, ibu, feats)
	}
	return ibu
}

// NetView is the controller's window into the network (idleness inputs).
type NetView interface {
	// BuffersEmpty reports whether the router's input buffers are empty.
	BuffersEmpty(routerID int) bool
	// Secured reports whether the router holds downstream-securing or
	// injection claims (it may not power off while secured).
	Secured(routerID int) bool
}

// routerPM is the per-router power-management state.
type routerPM struct {
	state      State
	mode       power.Mode // selected active mode (wake target while gated)
	domain     *timing.Domain
	wakeLeft   int        // local cycles left in Wakeup
	switchLeft int        // local cycles left paused for a voltage switch
	switchBill power.Mode // mode billed during the switch (max of old/new)
	idleCycles int
	offSince   timing.Tick
}

// Stats aggregates controller activity for one run.
type Stats struct {
	Gatings        int64                       // Active -> Inactive transitions
	Wakes          int64                       // Inactive -> Wakeup transitions
	BreakevenMet   int64                       // wakes whose off time met T-Breakeven
	ModeSwitches   int64                       // active-mode changes
	ModeDecisions  [power.NumActiveModes]int64 // selector outcomes (Fig 7)
	EpochDecisions int64
}

// Controller drives the per-router PM state machines for one model.
//
// All per-router state (pm, offAcc) is owned by whichever engine shard
// owns the router: during a concurrent sweep only that shard's goroutine
// may call WakeRequest/Advance/FastForward/PostCycle for it. The activity
// counters are the one piece of cross-router shared state, so they are
// kept per stats lane (one lane per shard, see SetStatsLanes) and summed
// on read.
type Controller struct {
	spec   Spec
	pm     []routerPM
	nv     NetView
	now    timing.Tick
	stats  []Stats // one entry per stats lane, indexed by laneOf
	laneOf []uint8 // stats lane of each router
	offAcc []int64 // cumulative off ticks per router (Table IV feature 4)

	// obs, when non-nil, receives rare power-management events; pred is
	// the selector's IBUPredictor view, resolved once at SetObserver so
	// the epoch sweep avoids a per-router type assertion. Every hook site
	// is a branch on nil in an already-rare path, so the disabled-mode
	// overhead is one predictable branch per event, never per tick.
	obs  EventObserver
	pred IBUPredictor
}

// NewController builds a controller for numRouters routers.
func NewController(numRouters int, spec Spec) *Controller {
	spec = spec.withDefaults()
	c := &Controller{
		spec:   spec,
		pm:     make([]routerPM, numRouters),
		stats:  make([]Stats, 1),
		laneOf: make([]uint8, numRouters),
		offAcc: make([]int64, numRouters),
	}
	for i := range c.pm {
		c.pm[i] = routerPM{
			state:  Active,
			mode:   spec.InitialMode,
			domain: timing.NewDomain(power.FreqMHz(spec.InitialMode)),
		}
	}
	return c
}

// SetStatsLanes splits the activity counters into one lane per shard so
// concurrent sweeps never write the same counter word. starts[i] is the
// first router ID of shard i (starts[0] must be 0); every router from
// starts[i] up to the next start accrues into lane i. Counter placement
// does not affect the summed Stats, so lane layout is invisible to
// results.
func (c *Controller) SetStatsLanes(starts []int) {
	if len(starts) == 0 || starts[0] != 0 {
		panic("policy: stats lanes must start at router 0")
	}
	c.stats = make([]Stats, len(starts))
	c.relane(starts)
}

// RelaneStats remaps the router->lane assignment to a new partition of
// the same lane count without resetting the accumulated counters — the
// engine calls it when a load-aware re-split moves the shard boundaries
// mid-run. Events already counted stay in the lane they landed in; since
// Stats sums across lanes, the totals are unaffected by the move.
func (c *Controller) RelaneStats(starts []int) {
	if len(starts) != len(c.stats) || starts[0] != 0 {
		panic(fmt.Sprintf("policy: RelaneStats with %d lanes, have %d", len(starts), len(c.stats)))
	}
	c.relane(starts)
}

func (c *Controller) relane(starts []int) {
	lane := 0
	for r := range c.laneOf {
		for lane+1 < len(starts) && r >= starts[lane+1] {
			lane++
		}
		c.laneOf[r] = uint8(lane)
	}
}

// SetNetView attaches the network view; required before Advance.
func (c *Controller) SetNetView(nv NetView) { c.nv = nv }

// SetObserver attaches (or, with nil, detaches) an event observer.
func (c *Controller) SetObserver(o EventObserver) {
	c.obs = o
	c.pred = nil
	if o != nil {
		c.pred, _ = c.spec.Selector.(IBUPredictor)
	}
}

// Spec returns the model specification.
func (c *Controller) Spec() Spec { return c.spec }

// Stats returns accumulated statistics, summed across stats lanes.
func (c *Controller) Stats() Stats {
	var s Stats
	for i := range c.stats {
		l := &c.stats[i]
		s.Gatings += l.Gatings
		s.Wakes += l.Wakes
		s.BreakevenMet += l.BreakevenMet
		s.ModeSwitches += l.ModeSwitches
		s.EpochDecisions += l.EpochDecisions
		for m := range l.ModeDecisions {
			s.ModeDecisions[m] += l.ModeDecisions[m]
		}
	}
	return s
}

// State returns a router's power state.
func (c *Controller) State(routerID int) State { return c.pm[routerID].state }

// Mode returns a router's selected active mode (the wake target while
// gated).
func (c *Controller) Mode(routerID int) power.Mode { return c.pm[routerID].mode }

// OffTicks returns cumulative base ticks router routerID has spent gated,
// including the current gating period.
func (c *Controller) OffTicks(routerID int) int64 {
	t := c.offAcc[routerID]
	if c.pm[routerID].state == Inactive {
		t += int64(c.now - c.pm[routerID].offSince)
	}
	return t
}

// BillingState returns the mode to bill static power at for this tick and,
// when waking, the wake target.
func (c *Controller) BillingState(routerID int) (mode, wakeTarget power.Mode) {
	pm := &c.pm[routerID]
	switch pm.state {
	case Inactive:
		return power.Inactive, 0
	case Wakeup:
		return power.Wakeup, pm.mode
	default:
		if pm.switchLeft > 0 {
			return pm.switchBill, 0
		}
		return pm.mode, 0
	}
}

// --- network.PowerView ---

// CanAccept reports whether the router may receive (and move) flits.
func (c *Controller) CanAccept(routerID int) bool {
	pm := &c.pm[routerID]
	return pm.state == Active && pm.switchLeft == 0
}

// WakeRequest punches a gated router into the wakeup state; no-op for
// routers already waking or active.
func (c *Controller) WakeRequest(routerID int) {
	pm := &c.pm[routerID]
	if pm.state != Inactive {
		return
	}
	costs := vr.CostsFor(pm.mode)
	offDur := int64(c.now - pm.offSince)
	c.offAcc[routerID] += offDur
	pm.state = Wakeup
	pm.wakeLeft = costs.TWakeup
	pm.domain.SetFreq(power.FreqMHz(pm.mode))
	pm.domain.Reset()
	st := &c.stats[c.laneOf[routerID]]
	st.Wakes++
	if timing.CyclesIn(timing.Tick(offDur), power.FreqMHz(pm.mode)) >= int64(costs.TBreakeven) {
		st.BreakevenMet++
	}
	if c.obs != nil {
		// The stall the network will now absorb: TWakeup cycles at the
		// mode's frequency, measured in base ticks from the domain reset
		// that just happened.
		c.obs.RouterWoken(routerID, offDur, pm.domain.TicksUntilCycle(costs.TWakeup))
	}
}

// Advance moves the router's state machine one base tick forward and
// reports whether the router should run a network cycle this tick. The
// engine must call it exactly once per router per tick, after SetNow.
func (c *Controller) Advance(routerID int) bool {
	pm := &c.pm[routerID]
	switch pm.state {
	case Inactive:
		return false
	case Wakeup:
		if pm.domain.Tick() {
			pm.wakeLeft--
			if pm.wakeLeft <= 0 {
				pm.state = Active
				pm.idleCycles = 0
			}
		}
		return false
	default:
		if !pm.domain.Tick() {
			return false
		}
		if pm.switchLeft > 0 {
			pm.switchLeft--
			return false
		}
		return true
	}
}

// SetNow updates the controller clock; the engine calls it once per tick.
func (c *Controller) SetNow(now timing.Tick) { c.now = now }

// NoEvent is TicksToNextEvent's result when a router has no pending
// autonomous transition (it will sit in its current state until external
// input arrives).
const NoEvent = int64(1<<63 - 1)

// TicksToNextEvent returns the relative base tick offset at which the
// router's next autonomous state transition fires, assuming the network
// stays quiescent (no wake punches, no flits): 0 means "during the
// current tick", 1 "during the next", and so on. Covered transitions are
// wakeup completion, voltage-switch completion, and idle gating. The
// engine's fast-forward path may batch-process all ticks strictly before
// the returned offset; the transition tick itself must be stepped
// normally.
func (c *Controller) TicksToNextEvent(routerID int) int64 {
	pm := &c.pm[routerID]
	switch pm.state {
	case Inactive:
		// Only an external wake punch leaves Inactive.
		return NoEvent
	case Wakeup:
		return pm.domain.TicksUntilCycle(pm.wakeLeft) - 1
	default:
		if pm.switchLeft > 0 {
			return pm.domain.TicksUntilCycle(pm.switchLeft) - 1
		}
		if !c.spec.PowerGating {
			return NoEvent
		}
		return pm.domain.TicksUntilCycle(c.spec.TIdle-pm.idleCycles) - 1
	}
}

// Dormant reports whether the router has no pending autonomous
// transition: left alone, it stays in its current state (and keeps its
// current billing mode) indefinitely until external input — a wake
// punch, a flit arrival, an epoch-boundary mode switch — arrives.
// Dormant is the policy-side leg of the engine's active-set deferral
// condition: a dormant router whose buffers are empty and which holds
// no securing claims can be taken off the per-tick schedule entirely
// and caught up in closed form (FastForward) when it is next touched.
// Dormant(r) is equivalent to TicksToNextEvent(r) == NoEvent but avoids
// the integer division on the hot path. An Active power-gating router
// counting down to idle gating is NOT dormant — the engine defers those
// separately by re-arming at the gating tick (see IdleGatingOnly).
func (c *Controller) Dormant(routerID int) bool {
	pm := &c.pm[routerID]
	switch pm.state {
	case Inactive:
		return true
	case Wakeup:
		return false
	default:
		return pm.switchLeft == 0 && !c.spec.PowerGating
	}
}

// IdleGatingOnly reports whether the router's only pending autonomous
// transition is its idle-gating countdown: an Active router of a
// power-gating model, not paused for a voltage switch. Such a router is
// not Dormant — left alone and idle it gates itself after TIdle local
// cycles — but it is still deferrable: the engine can take it off the
// schedule and re-arm it at exactly the tick TicksToNextEvent predicts
// the gating to fire, catching it up with FastForward (whose idle-cycle
// accrual replicates PostCycle on an idle router) when that tick, or any
// earlier wake, arrives.
func (c *Controller) IdleGatingOnly(routerID int) bool {
	pm := &c.pm[routerID]
	return c.spec.PowerGating && pm.state == Active && pm.switchLeft == 0
}

// FastForward advances the router's state machine by delta base ticks in
// one step — the exact closed form of delta Advance calls on a quiescent
// network. The caller must bound delta so that no transition fires inside
// the window (delta <= TicksToNextEvent for every router). It returns how
// many local router cycles would have run (Active routers outside a
// switch pause), so the engine can advance the router's cycle counter and
// replicate the per-cycle PostCycle idle accounting; 0 for all other
// states.
//
// FastForward touches only the router's own state machine, so during a
// concurrent sweep each engine shard may catch up its own routers in
// parallel.
func (c *Controller) FastForward(routerID int, delta int64) int64 {
	pm := &c.pm[routerID]
	switch pm.state {
	case Inactive:
		// Advance never ticks the domain of a gated router.
		return 0
	case Wakeup:
		pm.wakeLeft -= int(pm.domain.AdvanceBy(delta))
		return 0
	default:
		fires := pm.domain.AdvanceBy(delta)
		if pm.switchLeft > 0 {
			pm.switchLeft -= int(fires)
			return 0
		}
		// PostCycle on an empty, unsecured router counts one idle cycle
		// per fired local cycle.
		if c.spec.PowerGating {
			pm.idleCycles += int(fires)
		}
		return fires
	}
}

// FastForwardSecured is the FastForward variant for a router that holds
// securing claims for the entire skipped window. The one behavioral
// difference is the idle counter of an Active power-gating router: eager
// stepping runs PostCycle after every fired local cycle, and PostCycle
// resets idleCycles to 0 whenever the router is secured — so a secured
// window with at least one fired cycle ends with idleCycles == 0, not
// idleCycles + fires. Every other state (Inactive, Wakeup, mid-switch,
// non-gating models) ignores the secured bit and delegates to
// FastForward. The engine picks the variant per router from the
// network's secured count, which cannot change inside a horizon window
// (claims are only raised or released by injections, landings and flit
// movement, all of which bound the window).
func (c *Controller) FastForwardSecured(routerID int, delta int64) int64 {
	pm := &c.pm[routerID]
	if pm.state != Active || pm.switchLeft > 0 || !c.spec.PowerGating {
		return c.FastForward(routerID, delta)
	}
	fires := pm.domain.AdvanceBy(delta)
	if fires > 0 {
		pm.idleCycles = 0
	}
	return fires
}

// TicksToNextCycle returns the relative base tick offset at which the
// router's next local cycle fires: 0 means "during the current tick".
// The engine's event-horizon path uses it to cap a skip at the next
// injection opportunity of an Active router with packets queued at its
// attached cores (injection happens inside the router cycle, so no
// packet can enter the network strictly before this offset). Only
// meaningful for routers whose clock is running (Active; callers gate on
// CanAccept).
func (c *Controller) TicksToNextCycle(routerID int) int64 {
	return c.pm[routerID].domain.TicksUntilCycle(1) - 1
}

// PostCycle updates idleness after a router's network cycle and gates the
// router once it has been idle T-Idle consecutive cycles (only when the
// model power-gates). A router is idle when its buffers are empty and it
// is not secured.
func (c *Controller) PostCycle(routerID int) {
	if !c.spec.PowerGating {
		return
	}
	pm := &c.pm[routerID]
	if c.nv.BuffersEmpty(routerID) && !c.nv.Secured(routerID) {
		pm.idleCycles++
	} else {
		pm.idleCycles = 0
		return
	}
	if pm.idleCycles >= c.spec.TIdle {
		pm.state = Inactive
		pm.offSince = c.now
		pm.idleCycles = 0
		c.stats[c.laneOf[routerID]].Gatings++
		if c.obs != nil {
			c.obs.RouterGated(routerID)
		}
	}
}

// EpochBoundary runs the mode selector for a router at an epoch boundary.
// Per §III-B the selector only runs for routers in the active state; the
// chosen mode also becomes the wake target for subsequent gating periods.
func (c *Controller) EpochBoundary(routerID int, ibu float64, feats []float64) {
	pm := &c.pm[routerID]
	if pm.state != Active {
		return
	}
	m := c.spec.Selector.SelectMode(routerID, ibu, feats)
	st := &c.stats[c.laneOf[routerID]]
	st.EpochDecisions++
	st.ModeDecisions[m.Index()]++
	if c.obs != nil {
		pred := ibu
		if c.pred != nil {
			pred = c.pred.PredictIBU(routerID, ibu, feats)
		}
		c.obs.EpochDecision(routerID, ibu, pred, m)
	}
	if m == pm.mode {
		return
	}
	// Begin a voltage/frequency switch: pause for T-Switch cycles of the
	// new clock, billing static power at the higher of the two modes.
	st.ModeSwitches++
	old := pm.mode
	if c.obs != nil {
		c.obs.ModeSwitched(routerID, old, m)
	}
	pm.mode = m
	pm.switchLeft = vr.CostsFor(m).TSwitch
	pm.switchBill = old
	if m > old {
		pm.switchBill = m
	}
	pm.domain.SetFreq(power.FreqMHz(m))
}

// GlobalSelector models a globally coordinated DVFS alternative: every
// router adopts the *maximum* mode any router requested during the
// previous epoch (one epoch of coordination latency, as collecting
// network-wide state would cost). DozzNoC argues for per-router domains
// precisely because global coordination wastes the headroom of idle
// regions; this selector quantifies that claim.
type GlobalSelector struct {
	Inner ModeSelector

	lastRouter int
	curMax     power.Mode
	prevMax    power.Mode
}

// NewGlobalSelector wraps a per-router selector with network-wide max
// coordination.
func NewGlobalSelector(inner ModeSelector) *GlobalSelector {
	return &GlobalSelector{Inner: inner, lastRouter: -1, curMax: power.MinActive, prevMax: power.MaxActive}
}

// Name implements ModeSelector.
func (g *GlobalSelector) Name() string { return "global(" + g.Inner.Name() + ")" }

// SelectMode implements ModeSelector. Boundary sweeps visit routers in
// ascending ID order, so a non-increasing ID marks a new epoch.
func (g *GlobalSelector) SelectMode(routerID int, ibu float64, feats []float64) power.Mode {
	if routerID <= g.lastRouter {
		g.prevMax = g.curMax
		g.curMax = power.MinActive
	}
	g.lastRouter = routerID
	if m := g.Inner.SelectMode(routerID, ibu, feats); m > g.curMax {
		g.curMax = m
	}
	return g.prevMax
}
