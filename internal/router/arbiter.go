package router

import "fmt"

// RoundRobin is a work-conserving round-robin arbiter over n requesters:
// each Grant scans from just past the previous winner, so persistent
// requesters share the resource fairly and a single requester wins every
// time (work conservation).
type RoundRobin struct {
	n    int
	last int
}

// NewRoundRobin builds an arbiter over n requesters.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic(fmt.Sprintf("router: arbiter over %d requesters", n))
	}
	return &RoundRobin{n: n}
}

// Grant returns the winning requester index, or -1 if req reports false
// for all of them. req is called at most n times.
func (a *RoundRobin) Grant(req func(i int) bool) int {
	for i := 1; i <= a.n; i++ {
		idx := (a.last + i) % a.n
		if req(idx) {
			a.last = idx
			return idx
		}
	}
	return -1
}

// Size returns the number of requesters.
func (a *RoundRobin) Size() int { return a.n }
