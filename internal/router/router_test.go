package router

import (
	"testing"

	"repro/internal/flit"
)

// fakeEnv is a controllable router.Env for single-router tests.
type fakeEnv struct {
	forwarded []*flit.Flit
	ejected   []*flit.Flit
	credits   [][2]int // (inPort, vc) of freed credits
	heads     []*flit.Flit
	tails     []*flit.Flit
	moved     int
	blocked   map[int]bool // outPort -> downstream refuses
}

func newFakeEnv() *fakeEnv { return &fakeEnv{blocked: map[int]bool{}} }

func (e *fakeEnv) ForwardFlit(r *Router, outPort, outVC int, f *flit.Flit) {
	e.forwarded = append(e.forwarded, f)
}
func (e *fakeEnv) EjectFlit(r *Router, localPort int, f *flit.Flit) {
	e.ejected = append(e.ejected, f)
}
func (e *fakeEnv) CreditFreed(r *Router, inPort, vc int) {
	e.credits = append(e.credits, [2]int{inPort, vc})
}
func (e *fakeEnv) CanForward(r *Router, outPort int) bool { return !e.blocked[outPort] }
func (e *fakeEnv) HeadAccepted(r *Router, f *flit.Flit)   { e.heads = append(e.heads, f) }
func (e *fakeEnv) TailForwarded(r *Router, outPort int, f *flit.Flit) {
	e.tails = append(e.tails, f)
}
func (e *fakeEnv) FlitMoved(r *Router, f *flit.Flit) { e.moved++ }

func testCfg() Config {
	return Config{Ports: 5, LocalPorts: 1, VCs: 2, Depth: 4, Pipeline: 1}
}

func mkFlit(id uint64, kind flit.Kind, outPort int) []*flit.Flit {
	p := flit.New(id, 0, 1, kind, 0)
	fs := flit.Flits(p)
	for _, f := range fs {
		f.OutPort = outPort
		f.NextRouter = 9 // arbitrary non-local marker
	}
	return fs
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Ports: 5, LocalPorts: 0, VCs: 2, Depth: 4, Pipeline: 1},
		{Ports: 6, LocalPorts: 1, VCs: 2, Depth: 4, Pipeline: 1},
		{Ports: 5, LocalPorts: 1, VCs: 3, Depth: 4, Pipeline: 1},
		{Ports: 5, LocalPorts: 1, VCs: 0, Depth: 4, Pipeline: 1},
		{Ports: 5, LocalPorts: 1, VCs: 2, Depth: 0, Pipeline: 1},
		{Ports: 5, LocalPorts: 1, VCs: 2, Depth: 4, Pipeline: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestVCClassRange(t *testing.T) {
	c := testCfg()
	lo, hi := c.VCClassRange(flit.Request)
	if lo != 0 || hi != 1 {
		t.Errorf("request class = [%d,%d), want [0,1)", lo, hi)
	}
	lo, hi = c.VCClassRange(flit.Response)
	if lo != 1 || hi != 2 {
		t.Errorf("response class = [%d,%d), want [1,2)", lo, hi)
	}
}

func TestForwardSingleFlit(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	fs := mkFlit(1, flit.Request, 2) // out a cardinal port
	r.AcceptFlit(env, 1, 0, fs[0])
	if len(env.heads) != 1 {
		t.Fatal("HeadAccepted did not fire")
	}
	if r.BuffersEmpty() {
		t.Fatal("buffers should hold one flit")
	}
	r.Cycle(env)
	if len(env.forwarded) != 1 {
		t.Fatalf("forwarded %d flits, want 1", len(env.forwarded))
	}
	if len(env.tails) != 1 {
		t.Fatal("TailForwarded did not fire for a single-flit packet")
	}
	if len(env.credits) != 1 || env.credits[0] != [2]int{1, 0} {
		t.Fatalf("credits = %v", env.credits)
	}
	if !r.BuffersEmpty() {
		t.Fatal("buffers should be empty after forwarding")
	}
	if env.moved != 1 {
		t.Fatalf("FlitMoved fired %d times", env.moved)
	}
}

func TestEjectLocal(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	fs := mkFlit(1, flit.Request, 0) // out the local port
	fs[0].NextRouter = -1
	r.AcceptFlit(env, 2, 0, fs[0])
	r.Cycle(env)
	if len(env.ejected) != 1 {
		t.Fatalf("ejected %d, want 1", len(env.ejected))
	}
	if len(env.forwarded) != 0 {
		t.Fatal("nothing should be forwarded")
	}
	if r.FlitsEjected() != 1 || r.FlitsForwarded() != 0 {
		t.Error("movement counters wrong")
	}
}

func TestMultiFlitPacketStaysInOrder(t *testing.T) {
	cfg := testCfg()
	cfg.Depth = 8
	r := New(0, cfg)
	env := newFakeEnv()
	fs := mkFlit(1, flit.Response, 3)
	for _, f := range fs {
		r.AcceptFlit(env, 1, 1, f)
	}
	// One flit per cycle through one output port.
	for i := 0; i < 5; i++ {
		r.Cycle(env)
	}
	if len(env.forwarded) != 5 {
		t.Fatalf("forwarded %d flits, want 5", len(env.forwarded))
	}
	for i, f := range env.forwarded {
		if f.Seq != i {
			t.Fatalf("flit order broken: position %d has seq %d", i, f.Seq)
		}
	}
	if len(env.tails) != 1 {
		t.Fatal("exactly one tail must be reported")
	}
}

func TestCreditExhaustionBlocks(t *testing.T) {
	cfg := testCfg()
	r := New(0, cfg)
	env := newFakeEnv()
	// Two single-flit request packets from different input ports, same
	// output; the request class has one VC of depth 4 -> 4 credits.
	for i := 0; i < 6; i++ {
		fs := mkFlit(uint64(i), flit.Request, 2)
		r.AcceptFlit(env, 1, 0, fs[0])
		r.Cycle(env)
	}
	if len(env.forwarded) != 4 {
		t.Fatalf("forwarded %d flits with 4 credits, want 4", len(env.forwarded))
	}
	// Returning credits unblocks.
	r.Credit(2, 0)
	r.Credit(2, 0)
	r.Cycle(env)
	r.Cycle(env)
	if len(env.forwarded) != 6 {
		t.Fatalf("after credit return forwarded %d, want 6", len(env.forwarded))
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	r := New(0, testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow did not panic")
		}
	}()
	r.Credit(2, 0) // already at full depth
}

func TestBufferOverflowPanics(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("buffer overflow did not panic")
		}
	}()
	for i := 0; i < 5; i++ {
		fs := mkFlit(uint64(i), flit.Request, 2)
		r.AcceptFlit(env, 1, 0, fs[0])
	}
}

func TestBlockedDownstreamHolds(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	env.blocked[2] = true
	fs := mkFlit(1, flit.Request, 2)
	r.AcceptFlit(env, 1, 0, fs[0])
	r.Cycle(env)
	if len(env.forwarded) != 0 {
		t.Fatal("flit crossed into a blocked downstream")
	}
	env.blocked[2] = false
	r.Cycle(env)
	if len(env.forwarded) != 1 {
		t.Fatal("flit did not move after unblocking")
	}
}

func TestOnePerOutputPerCycle(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	// Two packets at different input ports, both to output 2.
	a := mkFlit(1, flit.Request, 2)
	b := mkFlit(2, flit.Request, 2)
	r.AcceptFlit(env, 1, 0, a[0])
	r.AcceptFlit(env, 3, 0, b[0])
	r.Cycle(env)
	if len(env.forwarded) != 1 {
		t.Fatalf("one output port moved %d flits in one cycle", len(env.forwarded))
	}
	r.Cycle(env)
	if len(env.forwarded) != 2 {
		t.Fatal("second flit should move next cycle")
	}
}

func TestDistinctOutputsMoveInParallel(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	a := mkFlit(1, flit.Request, 2)
	b := mkFlit(2, flit.Request, 3)
	r.AcceptFlit(env, 1, 0, a[0])
	r.AcceptFlit(env, 3, 0, b[0])
	r.Cycle(env)
	if len(env.forwarded) != 2 {
		t.Fatalf("two distinct outputs moved %d flits, want 2", len(env.forwarded))
	}
}

func TestOnePerInputPortPerCycle(t *testing.T) {
	cfg := testCfg()
	cfg.Depth = 8
	r := New(0, cfg)
	env := newFakeEnv()
	// Two packets in the two VCs of one input port, to distinct outputs.
	a := mkFlit(1, flit.Request, 2)  // VC class 0
	b := mkFlit(2, flit.Response, 3) // VC class 1
	r.AcceptFlit(env, 1, 0, a[0])
	for _, f := range b {
		r.AcceptFlit(env, 1, 1, f)
	}
	r.Cycle(env)
	if len(env.forwarded) != 1 {
		t.Fatalf("one input port fed %d flits through the crossbar in one cycle", len(env.forwarded))
	}
}

func TestRoundRobinFairness(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	// Keep two input ports loaded toward one output; both must make
	// progress in alternation.
	push := func(id uint64, inPort int) {
		fs := mkFlit(id, flit.Request, 2)
		r.AcceptFlit(env, inPort, 0, fs[0])
	}
	push(1, 1)
	push(2, 3)
	push(3, 1)
	push(4, 3)
	var order []uint64
	for i := 0; i < 8 && len(env.forwarded) < 4; i++ {
		before := len(env.forwarded)
		r.Cycle(env)
		for _, f := range env.forwarded[before:] {
			order = append(order, f.Pkt.ID)
		}
		// Return credits immediately so arbitration, not credits, decides.
		for j := before; j < len(env.forwarded); j++ {
			r.Credit(2, 0)
		}
	}
	if len(order) != 4 {
		t.Fatalf("forwarded %d packets, want 4", len(order))
	}
	// Alternation: the two inputs interleave (1,2,3,4 order by ID pairs).
	if order[0] == order[1] || (order[0] == 1 && order[1] == 3) || (order[0] == 2 && order[1] == 4) {
		t.Fatalf("no round-robin alternation: %v", order)
	}
}

func TestPipelineDelaysFlits(t *testing.T) {
	cfg := testCfg()
	cfg.Pipeline = 3
	r := New(0, cfg)
	env := newFakeEnv()
	fs := mkFlit(1, flit.Request, 2)
	r.AcceptFlit(env, 1, 0, fs[0])
	// The flit needs Pipeline-1 = 2 more local cycles before traversal.
	r.Cycle(env)
	if len(env.forwarded) != 0 {
		t.Fatal("flit moved before clearing the pipeline")
	}
	r.Cycle(env)
	if len(env.forwarded) != 0 {
		t.Fatal("flit moved one cycle early")
	}
	r.Cycle(env)
	if len(env.forwarded) != 1 {
		t.Fatal("flit did not move after the pipeline delay")
	}
}

func TestOccupancy(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	occ, total := r.Occupancy()
	if occ != 0 || total != 5*2*4 {
		t.Fatalf("fresh occupancy = %d/%d", occ, total)
	}
	fs := mkFlit(1, flit.Response, 2)
	for _, f := range fs[:4] {
		r.AcceptFlit(env, 1, 1, f)
	}
	occ, _ = r.Occupancy()
	if occ != 4 {
		t.Fatalf("occupancy = %d, want 4", occ)
	}
}

func TestPendingToPortTracksPackets(t *testing.T) {
	cfg := testCfg()
	cfg.Depth = 8
	r := New(0, cfg)
	env := newFakeEnv()
	fs := mkFlit(1, flit.Response, 2)
	for _, f := range fs {
		r.AcceptFlit(env, 1, 1, f)
	}
	if r.PendingToPort(2) != 1 {
		t.Fatalf("pending = %d, want 1", r.PendingToPort(2))
	}
	for i := 0; i < 5; i++ {
		r.Cycle(env)
	}
	if r.PendingToPort(2) != 0 {
		t.Fatalf("pending after drain = %d", r.PendingToPort(2))
	}
}

func TestSnapshot(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	fs := mkFlit(1, flit.Request, 2)
	r.AcceptFlit(env, 1, 0, fs[0])
	s := r.Snapshot()
	if s.Occupied != 1 || s.PendingPerPort[2] != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestVCAllocationSeparatesClasses(t *testing.T) {
	cfg := testCfg()
	cfg.Depth = 8
	r := New(0, cfg)
	env := newFakeEnv()
	// A response packet must never claim the request VC downstream.
	fs := mkFlit(1, flit.Response, 2)
	for _, f := range fs {
		r.AcceptFlit(env, 1, 1, f)
	}
	for i := 0; i < 8; i++ {
		r.Cycle(env)
		for range env.forwarded {
		}
	}
	// All five flits fit in the class-1 downstream VC (depth 8); the
	// class-0 credit pool must be untouched, which we verify by filling
	// it afterwards without a panic from over-return.
	if len(env.forwarded) != 5 {
		t.Fatalf("forwarded %d, want 5", len(env.forwarded))
	}
	for i := 0; i < 5; i++ {
		r.Credit(2, 1) // class-1 credits were consumed, returns are legal
	}
	defer func() {
		if recover() == nil {
			t.Fatal("class-0 credit over-return did not panic, so the response must have consumed class-0 credits")
		}
	}()
	r.Credit(2, 0) // class-0 was never consumed: this overflows
}

func TestHasSpace(t *testing.T) {
	r := New(0, testCfg())
	env := newFakeEnv()
	if !r.HasSpace(0, 0) {
		t.Fatal("fresh buffer should have space")
	}
	for i := 0; i < 4; i++ {
		fs := mkFlit(uint64(i), flit.Request, 2)
		r.AcceptFlit(env, 0, 0, fs[0])
	}
	if r.HasSpace(0, 0) {
		t.Fatal("full VC should report no space")
	}
}

func TestRoundRobinArbiter(t *testing.T) {
	a := NewRoundRobin(4)
	all := func(int) bool { return true }
	// Persistent requesters rotate 1,2,3,0,1,...
	want := []int{1, 2, 3, 0, 1}
	for i, w := range want {
		if got := a.Grant(all); got != w {
			t.Fatalf("grant %d = %d, want %d", i, got, w)
		}
	}
	// A lone requester wins every time (work conservation).
	only2 := func(i int) bool { return i == 2 }
	for i := 0; i < 3; i++ {
		if got := a.Grant(only2); got != 2 {
			t.Fatalf("lone requester grant = %d", got)
		}
	}
	// No requesters -> -1, and the pointer does not move.
	if a.Grant(func(int) bool { return false }) != -1 {
		t.Fatal("empty grant should be -1")
	}
	if got := a.Grant(all); got != 3 {
		t.Fatalf("after empty grant, next = %d, want 3", got)
	}
	if a.Size() != 4 {
		t.Fatal("size wrong")
	}
}

func TestRoundRobinBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size arbiter accepted")
		}
	}()
	NewRoundRobin(0)
}
