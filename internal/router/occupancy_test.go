package router

import (
	"math/rand"
	"testing"

	"repro/internal/flit"
)

// propEnv is a router.Env for the occupancy property test: it records
// the downstream credits each forward consumes so the test can repay
// them (and only them — Credit panics on overflow), and lets the test
// toggle downstream backpressure.
type propEnv struct {
	owed    [][2]int // (outPort, outVC) pairs consumed by forwards
	blocked map[int]bool
}

func (e *propEnv) ForwardFlit(r *Router, outPort, outVC int, f *flit.Flit) {
	e.owed = append(e.owed, [2]int{outPort, outVC})
}
func (e *propEnv) EjectFlit(r *Router, localPort int, f *flit.Flit)   {}
func (e *propEnv) CreditFreed(r *Router, inPort, vc int)              {}
func (e *propEnv) CanForward(r *Router, outPort int) bool             { return !e.blocked[outPort] }
func (e *propEnv) HeadAccepted(r *Router, f *flit.Flit)               {}
func (e *propEnv) TailForwarded(r *Router, outPort int, f *flit.Flit) {}
func (e *propEnv) FlitMoved(r *Router, f *flit.Flit)                  {}

// TestOccupancyAggregateProperty drives a router through randomized
// sequences of packet accepts, cycles (forwards and ejects), credit
// repayments and backpressure toggles, asserting after every operation
// that the incrementally-maintained occupied-slot aggregate (sampled
// O(1) by the engine's IBU accumulation) equals a slow recount of every
// input VC queue.
func TestOccupancyAggregateProperty(t *testing.T) {
	cfg := testCfg()
	kinds := []flit.Kind{flit.Request, flit.Response}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		r := New(0, cfg)
		env := &propEnv{blocked: map[int]bool{}}
		var id uint64

		check := func(step int, op string) {
			t.Helper()
			if got, want := r.Occupied(), r.RecountOccupancy(); got != want {
				t.Fatalf("trial %d step %d (%s): aggregate %d, recount %d", trial, step, op, got, want)
			}
			if r.BuffersEmpty() != (r.Occupied() == 0) {
				t.Fatalf("trial %d step %d (%s): BuffersEmpty inconsistent with occupancy %d", trial, step, op, r.Occupied())
			}
		}

		for step := 0; step < 2000; step++ {
			op := "cycle"
			switch rng.Intn(5) {
			case 0, 1: // accept one whole packet if its VC has room
				op = "accept"
				kind := kinds[rng.Intn(len(kinds))]
				lo, hi := cfg.VCClassRange(kind)
				vc := lo + rng.Intn(hi-lo)
				inPort := rng.Intn(cfg.Ports)
				outPort := rng.Intn(cfg.Ports) // port 0 is local: an ejecting packet
				fs := flit.Flits(flit.New(id, 0, 1, kind, 0))
				id++
				if cfg.Depth-len(r.in[inPort][vc].q) < len(fs) {
					continue
				}
				for _, f := range fs {
					f.OutPort = outPort
					f.NextRouter = 9
					r.AcceptFlit(env, inPort, vc, f)
					check(step, op)
				}
				continue
			case 2: // toggle downstream backpressure on one port
				op = "block"
				p := rng.Intn(cfg.Ports)
				env.blocked[p] = !env.blocked[p]
			case 3: // repay one consumed downstream credit
				op = "credit"
				if n := len(env.owed); n > 0 {
					i := rng.Intn(n)
					c := env.owed[i]
					env.owed[i] = env.owed[n-1]
					env.owed = env.owed[:n-1]
					r.Credit(c[0], c[1])
				}
			default:
				r.Cycle(env)
			}
			check(step, op)
		}

		// Drain: release backpressure and repay everything, then cycle
		// until empty — the aggregate must land exactly on zero.
		env.blocked = map[int]bool{}
		for i := 0; i < 10*cfg.Ports*cfg.VCs*cfg.Depth; i++ {
			for _, c := range env.owed {
				r.Credit(c[0], c[1])
			}
			env.owed = env.owed[:0]
			r.Cycle(env)
			check(-1, "drain")
			if r.BuffersEmpty() {
				break
			}
		}
		if !r.BuffersEmpty() {
			t.Fatalf("trial %d: router did not drain (occupied %d)", trial, r.Occupied())
		}
	}
}
