// Package router implements the cycle-level router microarchitecture: an
// input-buffered wormhole router with virtual channels (VCs), credit-based
// flow control, round-robin switch allocation, and look-ahead routing.
//
// Look-ahead routing (§III-A) means every flit arrives already carrying the
// output port it must take at this router (computed by the upstream router
// or the injection logic). The router therefore knows the downstream router
// of every buffered packet the moment its head flit arrives, which is what
// lets the power-gating scheme secure and wake downstream routers before
// packets block on them.
//
// Protocol deadlock between requests and responses is avoided by splitting
// the VCs into two message classes: requests travel in the lower half of
// the VC space, responses in the upper half.
package router

import (
	"fmt"

	"repro/internal/flit"
)

// Config sizes a router.
type Config struct {
	Ports      int // total ports: LocalPorts + 4 cardinals
	LocalPorts int // number of core (ejection/injection) ports
	VCs        int // virtual channels per input port (>= 2, even)
	Depth      int // flits of buffering per VC
	// Pipeline is the router pipeline depth in cycles: a flit accepted on
	// local cycle c may traverse the switch no earlier than cycle
	// c + Pipeline - 1 (look-ahead routing folds RC into the previous
	// hop; the remaining stages are VA/SA and ST). 1 = single-cycle.
	Pipeline int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.LocalPorts < 1:
		return fmt.Errorf("router: need at least one local port, got %d", c.LocalPorts)
	case c.Ports != c.LocalPorts+4:
		return fmt.Errorf("router: ports must be local+4, got %d with %d local", c.Ports, c.LocalPorts)
	case c.VCs < 2 || c.VCs%2 != 0:
		return fmt.Errorf("router: VCs must be even and >= 2, got %d", c.VCs)
	case c.Depth < 1:
		return fmt.Errorf("router: VC depth must be >= 1, got %d", c.Depth)
	case c.Pipeline < 1:
		return fmt.Errorf("router: pipeline depth must be >= 1, got %d", c.Pipeline)
	}
	return nil
}

// VCClassRange returns the half-open VC range [lo, hi) usable by a message
// kind: requests use the lower half, responses the upper half.
func (c Config) VCClassRange(k flit.Kind) (lo, hi int) {
	half := c.VCs / 2
	if k == flit.Request {
		return 0, half
	}
	return half, c.VCs
}

// Env is the router's connection to the fabric, implemented by the network.
// All calls happen synchronously during Router.Cycle.
type Env interface {
	// ForwardFlit carries f out of r's cardinal output port into the
	// downstream router's input VC outVC. The implementation must call
	// AcceptFlit on the downstream router.
	ForwardFlit(r *Router, outPort, outVC int, f *flit.Flit)
	// EjectFlit consumes f at r's local port.
	EjectFlit(r *Router, localPort int, f *flit.Flit)
	// CreditFreed reports that input (inPort, vc) of r freed one buffer
	// slot; the fabric returns the credit to the upstream router.
	CreditFreed(r *Router, inPort, vc int)
	// CanForward reports whether r's cardinal output port may transmit
	// this cycle (the downstream router is powered and active).
	CanForward(r *Router, outPort int) bool
	// HeadAccepted fires when a head flit enters r's input buffers; f
	// carries OutPort/NextRouter for r, so the fabric can secure and
	// punch-wake the downstream router.
	HeadAccepted(r *Router, f *flit.Flit)
	// TailForwarded fires when a tail flit leaves r through a cardinal
	// port, releasing r's claim on the downstream router.
	TailForwarded(r *Router, outPort int, f *flit.Flit)
	// FlitMoved fires for every flit r moves (forward or eject); the
	// caller bills dynamic hop energy at r's current mode.
	FlitMoved(r *Router, f *flit.Flit)
}

// vcState is one input virtual channel: a FIFO of flits plus the routing
// state of the packet currently at its front.
type vcState struct {
	q []*flit.Flit

	routed  bool // front packet's route latched
	outPort int  // latched output port of the front packet
	outVC   int  // allocated downstream VC, -1 until VC allocation
}

func (v *vcState) empty() bool { return len(v.q) == 0 }
func (v *vcState) front() *flit.Flit {
	if len(v.q) == 0 {
		return nil
	}
	return v.q[0]
}

func (v *vcState) pop() *flit.Flit {
	f := v.q[0]
	v.q[0] = nil
	v.q = v.q[1:]
	if len(v.q) == 0 {
		v.q = nil // let the backing array go once drained
	}
	return f
}

// Router is one router instance. It owns no clocking or power state; the
// simulation engine drives Cycle on the router's local clock and gates it
// with the power-management state machine.
//
// The hot scalar state — occupancy aggregate, local cycle counter,
// per-port pending counts, credits and downstream-VC claims — lives in a
// shared Slab (see slab.go); the fields below are views into that slab's
// flat arrays so the engine's sweeps walk contiguous memory. The public
// accessors are unchanged.
type Router struct {
	ID  int
	cfg Config

	in [][]vcState // [port][vc]

	// occ and lc point at this router's slots in the slab's occupancy and
	// local-cycle planes: occupied input-buffer slots across all input
	// VCs, and the local cycle counter (pipeline timing base).
	occ *int32
	lc  *int64

	// credits[p*VCs+v] counts free slots in the downstream input VC v
	// behind cardinal output port p (slab view, flat per-port-per-VC
	// plane). Local (ejection) ports need no credits: the core consumes
	// one flit per cycle unconditionally.
	credits []int32
	// outVCBusy[p*VCs+v] marks a downstream VC claimed by an in-flight
	// packet; it is released when that packet's tail is forwarded.
	outVCBusy []bool
	// pendingToPort[p] counts packets buffered here whose latched or
	// precomputed route leaves through cardinal port p; used for
	// downstream securing (slab view).
	pendingToPort []int32

	// Arbiters.
	outArb []*RoundRobin // per output port: switch allocation over input VCs
	vcaRR  []int         // per output port: VC-allocation rotation

	// Statistics.
	flitsForwarded int64
	flitsEjected   int64

	inPortUsed []bool // per-cycle scratch: crossbar input already used
}

// New builds a standalone router backed by a private one-slot slab. It
// panics on invalid configuration (router sizing is a programming error,
// not a runtime condition). Fabrics that build many routers should share
// one slab via NewSlab + NewInSlab.
func New(id int, cfg Config) *Router {
	return NewInSlab(id, NewSlab(1, cfg), 0)
}

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// IsLocalPort reports whether p is a core port.
func (r *Router) IsLocalPort(p int) bool { return p < r.cfg.LocalPorts }

// HasSpace reports whether input (port, vc) can accept another flit. The
// fabric checks it before calling AcceptFlit for injection; forwarding
// relies on credits instead.
func (r *Router) HasSpace(inPort, vc int) bool {
	return len(r.in[inPort][vc].q) < r.cfg.Depth
}

// AcceptFlit places a flit into input (inPort, vc). The flit must carry its
// OutPort/NextRouter for this router. It panics on buffer overflow, which
// would indicate a credit-accounting bug.
func (r *Router) AcceptFlit(env Env, inPort, vc int, f *flit.Flit) {
	s := &r.in[inPort][vc]
	if len(s.q) >= r.cfg.Depth {
		panic(fmt.Sprintf("router %d: input (%d,%d) overflow", r.ID, inPort, vc))
	}
	s.q = append(s.q, f)
	*r.occ++
	// A flit accepted between local cycles c and c+1 traverses the switch
	// no earlier than cycle c+Pipeline (1 = the next cycle).
	f.ReadyCycle = *r.lc + int64(r.cfg.Pipeline)
	if f.Head {
		r.pendingToPort[f.OutPort]++
		env.HeadAccepted(r, f)
	}
}

// Occupancy returns occupied and total input-buffer slots; the ratio is the
// instantaneous input buffer utilization (IBU) sampled by the DVFS logic.
// The occupied count is an aggregate maintained incrementally on every
// flit enqueue (AcceptFlit) and dequeue (popFront), so sampling it is
// O(1) — the engine's per-tick IBU accumulation never walks the VCs.
func (r *Router) Occupancy() (occupied, total int) {
	return int(*r.occ), r.cfg.Ports * r.cfg.VCs * r.cfg.Depth
}

// Occupied returns the occupied-slot aggregate alone (O(1)).
func (r *Router) Occupied() int { return int(*r.occ) }

// LocalCycle exposes the local cycle counter. A router deferred by the
// active-set scheduler lags here until caught up, so epoch-boundary
// probes can detect a missed catch-up barrier (DESIGN.md §5b).
func (r *Router) LocalCycle() int64 { return *r.lc }

// RecountOccupancy recomputes the occupied-slot count the slow way, by
// walking every input VC queue. It exists so tests (and debugging
// invariant checks) can prove the incremental aggregate returned by
// Occupancy never drifts from the ground truth.
func (r *Router) RecountOccupancy() int {
	n := 0
	for p := range r.in {
		for v := range r.in[p] {
			n += len(r.in[p][v].q)
		}
	}
	return n
}

// BuffersEmpty reports whether every input VC is empty (one of the paper's
// conditions for router idleness).
func (r *Router) BuffersEmpty() bool { return *r.occ == 0 }

// PendingToPort returns how many buffered packets are routed out of
// cardinal port p (downstream-securing input).
func (r *Router) PendingToPort(p int) int { return int(r.pendingToPort[p]) }

// FlitsForwarded and FlitsEjected expose movement counters.
func (r *Router) FlitsForwarded() int64 { return r.flitsForwarded }
func (r *Router) FlitsEjected() int64   { return r.flitsEjected }

// Credit returns one credit for downstream VC (outPort, vc); the fabric
// calls it when the downstream router frees a slot we filled.
func (r *Router) Credit(outPort, vc int) {
	if r.credits[outPort*r.cfg.VCs+vc] >= int32(r.cfg.Depth) {
		panic(fmt.Sprintf("router %d: credit overflow on (%d,%d)", r.ID, outPort, vc))
	}
	r.credits[outPort*r.cfg.VCs+vc]++
}

// SkipCycles advances the local cycle counter by n cycles without doing
// any switch allocation — the closed form of n Cycle calls on a router
// whose buffers are empty. Callers (the engine's fast-forward path) must
// guarantee the buffers really are empty: with flits buffered, skipping
// would let them bypass the pipeline-delay check against ReadyCycle.
func (r *Router) SkipCycles(n int64) {
	if *r.occ != 0 {
		panic(fmt.Sprintf("router %d: SkipCycles with %d flits buffered", r.ID, *r.occ))
	}
	*r.lc += n
}

// Cycle performs one local router cycle: switch allocation and traversal.
// At most one flit leaves per output port, and at most one flit leaves per
// input port (single crossbar input per port).
func (r *Router) Cycle(env Env) {
	*r.lc++
	if *r.occ == 0 {
		return
	}
	for i := range r.inPortUsed {
		r.inPortUsed[i] = false
	}
	for p := 0; p < r.cfg.Ports; p++ {
		r.serveOutput(env, p, r.inPortUsed)
	}
}

// serveOutput runs switch allocation for one output port: round-robin over
// all input VCs whose front flit wants this output and is ready to move.
func (r *Router) serveOutput(env Env, outPort int, inPortUsed []bool) {
	if r.pendingToPort[outPort] == 0 {
		return
	}
	if !r.IsLocalPort(outPort) && !env.CanForward(r, outPort) {
		return
	}
	r.outArb[outPort].Grant(func(idx int) bool {
		inPort, vc := idx/r.cfg.VCs, idx%r.cfg.VCs
		if inPortUsed[inPort] {
			return false
		}
		s := &r.in[inPort][vc]
		f := s.front()
		if f == nil || f.ReadyCycle > *r.lc {
			return false
		}
		// Latch the front packet's route when its head reaches the front.
		if f.Head && !s.routed {
			s.routed = true
			s.outPort = f.OutPort
			s.outVC = -1
		}
		if !s.routed || s.outPort != outPort {
			return false
		}
		if r.IsLocalPort(outPort) {
			r.eject(env, inPort, vc, s, f)
		} else if !r.forward(env, inPort, vc, outPort, s, f) {
			return false
		}
		inPortUsed[inPort] = true
		return true
	})
}

// forward tries to move the front flit of s through cardinal port outPort;
// it returns false if VC allocation or credits block the move.
func (r *Router) forward(env Env, inPort, vc, outPort int, s *vcState, f *flit.Flit) bool {
	if s.outVC < 0 && !r.allocVC(outPort, s, f) {
		return false
	}
	if r.credits[outPort*r.cfg.VCs+s.outVC] == 0 {
		return false
	}
	r.credits[outPort*r.cfg.VCs+s.outVC]--
	outVC := s.outVC
	r.popFront(env, inPort, vc, s, f)
	if f.Tail {
		r.outVCBusy[outPort*r.cfg.VCs+outVC] = false
		env.TailForwarded(r, outPort, f)
	}
	r.flitsForwarded++
	env.FlitMoved(r, f)
	env.ForwardFlit(r, outPort, outVC, f)
	return true
}

// eject consumes the front flit of s at a local port (the attached core
// accepts one flit per cycle unconditionally).
func (r *Router) eject(env Env, inPort, vc int, s *vcState, f *flit.Flit) {
	localPort := s.outPort
	r.popFront(env, inPort, vc, s, f)
	r.flitsEjected++
	env.FlitMoved(r, f)
	env.EjectFlit(r, localPort, f)
}

// popFront removes the front flit, returns its buffer credit upstream, and
// resets per-packet routing state on tails.
func (r *Router) popFront(env Env, inPort, vc int, s *vcState, f *flit.Flit) {
	s.pop()
	*r.occ--
	if f.Tail {
		r.pendingToPort[s.outPort]--
		s.routed = false
		s.outVC = -1
	}
	env.CreditFreed(r, inPort, vc)
}

// allocVC claims a free downstream VC for the packet at the front of s,
// within the message-class VC range, rotating the starting VC per output
// port for fairness.
func (r *Router) allocVC(outPort int, s *vcState, f *flit.Flit) bool {
	lo, hi := r.cfg.VCClassRange(f.Pkt.Kind)
	span := hi - lo
	start := r.vcaRR[outPort]
	for i := 0; i < span; i++ {
		v := lo + (start+i)%span
		if !r.outVCBusy[outPort*r.cfg.VCs+v] {
			r.outVCBusy[outPort*r.cfg.VCs+v] = true
			s.outVC = v
			r.vcaRR[outPort] = (start + i + 1) % span
			return true
		}
	}
	return false
}

// DrainState summarizes buffered traffic for debugging and invariants.
type DrainState struct {
	Occupied       int
	PendingPerPort []int
}

// Snapshot returns the router's drain state.
func (r *Router) Snapshot() DrainState {
	pp := make([]int, len(r.pendingToPort))
	for p, n := range r.pendingToPort {
		pp[p] = int(n)
	}
	return DrainState{Occupied: int(*r.occ), PendingPerPort: pp}
}
