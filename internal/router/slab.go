// Struct-of-arrays slab for the hot per-router state. The simulation
// engine's per-tick sweep and its quiet-margin predicate touch a handful
// of fields on every router they visit — the occupancy aggregate, the
// local cycle counter, the per-port pending counts, credits and
// downstream-VC claims. With each router a separate heap object those
// reads chase one pointer per router; a Slab packs each field into one
// contiguous array indexed by router ID, so a sweep over a router range
// walks flat memory and the margin predicate reduces to scanning a slice
// window. Routers built into a slab keep their full API — every accessor
// reads and writes through a view into the shared arrays — so nothing
// above the router layer changes semantics.
package router

// Slab is the shared backing store for the hot state of a set of
// same-configured routers, indexed by slot (the engine uses router ID as
// the slot). Cold state — VC queues, arbiters, statistics — stays on the
// Router itself, where it is touched only when the router actually moves
// flits.
type Slab struct {
	cfg Config

	occupied   []int32 // occupied input-buffer slots per router
	localCycle []int64 // local cycle counter per router

	// Flat per-port and per-port-per-VC planes: router r's port p lives
	// at r*Ports+p, and its (p, v) entry at (r*Ports+p)*VCs+v.
	pendingToPort []int32
	credits       []int32
	outVCBusy     []bool
}

// NewSlab allocates slab storage for n routers of one configuration. It
// panics on invalid configuration, like New.
func NewSlab(n int, cfg Config) *Slab {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Slab{
		cfg:           cfg,
		occupied:      make([]int32, n),
		localCycle:    make([]int64, n),
		pendingToPort: make([]int32, n*cfg.Ports),
		credits:       make([]int32, n*cfg.Ports*cfg.VCs),
		outVCBusy:     make([]bool, n*cfg.Ports*cfg.VCs),
	}
	for i := range s.credits {
		s.credits[i] = int32(cfg.Depth)
	}
	return s
}

// Len returns the number of router slots.
func (s *Slab) Len() int { return len(s.occupied) }

// Config returns the router configuration the slab was sized for.
func (s *Slab) Config() Config { return s.cfg }

// OccupiedSlots exposes the occupancy plane: entry i is router slot i's
// occupied input-buffer slot count, maintained by AcceptFlit/popFront
// exactly like Router.Occupied. The engine reads it for contiguous
// sweeps (IBU accumulation, the deferral predicate, quiet-margin walks);
// callers must treat it as read-only.
func (s *Slab) OccupiedSlots() []int32 { return s.occupied }

// NewInSlab builds a router whose hot state lives at slot of s. All
// routers sharing a slab use the slab's configuration.
func NewInSlab(id int, s *Slab, slot int) *Router {
	cfg := s.cfg
	r := &Router{ID: id, cfg: cfg}
	r.occ = &s.occupied[slot]
	r.lc = &s.localCycle[slot]
	r.pendingToPort = s.pendingToPort[slot*cfg.Ports : (slot+1)*cfg.Ports]
	pv := cfg.Ports * cfg.VCs
	r.credits = s.credits[slot*pv : (slot+1)*pv]
	r.outVCBusy = s.outVCBusy[slot*pv : (slot+1)*pv]
	r.in = make([][]vcState, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		r.in[p] = make([]vcState, cfg.VCs)
		for v := range r.in[p] {
			r.in[p][v].outVC = -1
		}
	}
	r.outArb = make([]*RoundRobin, cfg.Ports)
	for p := range r.outArb {
		r.outArb[p] = NewRoundRobin(cfg.Ports * cfg.VCs)
	}
	r.vcaRR = make([]int, cfg.Ports)
	r.inPortUsed = make([]bool, cfg.Ports)
	return r
}
