package cli

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestParseTopo(t *testing.T) {
	m, err := ParseTopo("mesh8x8")
	if err != nil || m.NumRouters() != 64 || m.Concentration() != 1 {
		t.Fatalf("mesh8x8 = %v, %v", m, err)
	}
	c, err := ParseTopo("cmesh4x4")
	if err != nil || c.NumRouters() != 16 || c.Concentration() != 4 {
		t.Fatalf("cmesh4x4 = %v, %v", c, err)
	}
	r, err := ParseTopo("mesh6x3")
	if err != nil || r.Width() != 6 || r.Height() != 3 {
		t.Fatalf("mesh6x3 = %v, %v", r, err)
	}
	for _, bad := range []string{"", "torus4x4", "meshAxB", "grid"} {
		if _, err := ParseTopo(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]core.ModelKind{
		"baseline": core.KindBaseline,
		"PG":       core.KindPG,
		"lead":     core.KindLEAD,
		"LEAD-tau": core.KindLEAD,
		"DozzNoC":  core.KindDozzNoC,
		"ml+turbo": core.KindTurbo,
	}
	for name, want := range cases {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("mystery"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestParsePattern(t *testing.T) {
	cases := map[string]traffic.Pattern{
		"uniform":   traffic.UniformRandom,
		"random":    traffic.UniformRandom,
		"transpose": traffic.Transpose,
		"bitcomp":   traffic.BitComplement,
		"hotspot":   traffic.Hotspot,
		"neighbor":  traffic.Neighbor,
	}
	for name, want := range cases {
		got, err := ParsePattern(name)
		if err != nil || got != want {
			t.Errorf("ParsePattern(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePattern("zigzag"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestStartProfilesRuntimeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exec.trace")
	stop, err := StartProfiles("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	// The Go runtime writes its trace header eagerly, so even a trace
	// covering almost no execution must be non-empty and start with the
	// "go 1." version banner.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("runtime trace file is empty")
	}
	// With every path empty, StartProfiles must be a no-op that still
	// returns a callable stop.
	stop, err = StartProfiles("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if _, err := StartProfiles("", filepath.Join(t.TempDir(), "no/such/dir/t"), ""); err == nil {
		t.Error("uncreatable trace path accepted")
	}
}

func TestStartObs(t *testing.T) {
	// Both flags off: no observer, close is a no-op.
	o, closeObs, err := StartObs("", "", 0, obs.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("observer without any sink")
	}
	closeObs()

	// Trace only: an observer with metrics and a tracer, file written on
	// close.
	path := filepath.Join(t.TempDir(), "phases.jsonl")
	o, closeObs, err = StartObs("", path, 0, obs.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Tracer == nil {
		t.Fatalf("trace-out observer incomplete: %+v", o)
	}
	o.Tracer.BeginRun("t", 1)
	o.Tracer.Instant(0, "epoch", 1, -1)
	closeObs()
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("phase trace not written: %v", err)
	}

	// Endpoint only: metrics observer, no tracer.
	o, closeObs, err = StartObs("127.0.0.1:0", "", 0, obs.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Metrics == nil || o.Tracer != nil {
		t.Fatalf("obs-addr observer incomplete: %+v", o)
	}
	closeObs()
}

func TestLoadTrace(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := traffic.Synthetic(topo, traffic.UniformRandom, 0.01, 1000, 1)
	path := filepath.Join(t.TempDir(), "x.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(tr.Entries) {
		t.Fatalf("loaded %d entries, want %d", len(got.Entries), len(tr.Entries))
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestWriteFilePropagatesErrors is the output-path bugfix's test: both a
// failing write and a failing Close must surface as errors, because on a
// full disk the failure often only appears when buffered data is flushed
// at close — the old bare `defer f.Close()` pattern produced a truncated
// file and exit code 0.
func TestWriteFilePropagatesErrors(t *testing.T) {
	dir := t.TempDir()

	// Write error.
	wantErr := errors.New("disk full")
	err := WriteFile(filepath.Join(dir, "w"), func(io.Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("write error swallowed: %v", err)
	}

	// Close error: the callback closes the descriptor underneath the
	// *os.File, so WriteFile's own Close must fail — the closest portable
	// stand-in for a flush that dies at close time.
	err = WriteFile(filepath.Join(dir, "c"), func(w io.Writer) error {
		return syscall.Close(int(w.(*os.File).Fd()))
	})
	if err == nil {
		t.Fatal("close error swallowed")
	}

	// Uncreatable path.
	if err := WriteFile(filepath.Join(dir, "no/such/dir/f"), func(io.Writer) error { return nil }); err == nil {
		t.Fatal("create error swallowed")
	}

	// The success path still writes the content.
	path := filepath.Join(dir, "ok")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != "payload" {
		t.Fatalf("content = %q, %v", data, err)
	}
}
