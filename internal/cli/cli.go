// Package cli holds the small parsing helpers shared by the command-line
// tools (topology, model-kind and pattern names, trace loading).
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ParseTopo parses "mesh<W>x<H>" or "cmesh4x4".
func ParseTopo(name string) (topology.Topology, error) {
	switch {
	case name == "cmesh4x4":
		return topology.NewCMesh(4, 4), nil
	case strings.HasPrefix(name, "cmesh"):
		var w, h int
		if _, err := fmt.Sscanf(name, "cmesh%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("cli: bad topology %q", name)
		}
		return topology.NewCMesh(w, h), nil
	case strings.HasPrefix(name, "mesh"):
		var w, h int
		if _, err := fmt.Sscanf(name, "mesh%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("cli: bad topology %q", name)
		}
		return topology.NewMesh(w, h), nil
	}
	return nil, fmt.Errorf("cli: unknown topology %q", name)
}

// ParseShards validates a -shards flag value: 0 selects the engine's
// automatic default (min(GOMAXPROCS, NumCPU, mesh router rows) — so a
// single-CPU host runs the serial sweep unless a count >1 is passed
// explicitly), positive values request that many row-aligned tick-engine
// shards (clamped to the row count by the engine), and negatives are
// rejected. Results are bit-identical for every accepted value.
func ParseShards(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("cli: -shards must be >= 0, got %d", n)
	}
	return n, nil
}

// ParseShardMinActive validates a -shard-min-active flag value: 0 lets
// the engine calibrate the serial-fallback threshold from a measured
// worker dispatch/barrier round-trip at startup, positive values pin
// the threshold, and -1 disables the fallback so every quiet-margin
// tick attempts the concurrent sweep. Anything below -1 is rejected as
// a likely typo — all negatives mean the same thing to the engine, so
// there is no reason to write one deliberately.
func ParseShardMinActive(n int) (int, error) {
	if n < -1 {
		return 0, fmt.Errorf("cli: -shard-min-active must be >= -1, got %d", n)
	}
	return n, nil
}

// ParseKind parses a model name as used throughout the paper.
func ParseKind(name string) (core.ModelKind, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return core.KindBaseline, nil
	case "pg", "powerpunch", "power-gated":
		return core.KindPG, nil
	case "lead", "lead-tau", "dvfs+ml", "dvfsml":
		return core.KindLEAD, nil
	case "dozznoc":
		return core.KindDozzNoC, nil
	case "turbo", "ml+turbo", "mlturbo":
		return core.KindTurbo, nil
	}
	return 0, fmt.Errorf("cli: unknown model %q", name)
}

// ParsePattern parses a synthetic-pattern name.
func ParsePattern(name string) (traffic.Pattern, error) {
	switch strings.ToLower(name) {
	case "uniform", "random":
		return traffic.UniformRandom, nil
	case "transpose":
		return traffic.Transpose, nil
	case "bitcomp", "bitcomplement":
		return traffic.BitComplement, nil
	case "hotspot":
		return traffic.Hotspot, nil
	case "neighbor":
		return traffic.Neighbor, nil
	}
	return 0, fmt.Errorf("cli: unknown pattern %q", name)
}

// StartProfiles begins CPU profiling, a Go execution trace
// (runtime/trace — scheduler/GC/goroutine timelines, the view that shows
// the sharded engine's worker goroutines and barriers; go tool trace
// reads it), and arranges a heap snapshot, driven by the shared
// -cpuprofile/-runtimetrace/-memprofile flags. Any path may be empty. It
// returns a stop function for the caller to defer; stop finishes the CPU
// profile and execution trace and writes the heap profile (after a GC,
// so it reflects live objects rather than collection timing). Stop
// returns the first flush/close error — a full disk truncates a profile
// at close time, and that must fail the command, not vanish.
func StartProfiles(cpuPath, runtimeTracePath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cli: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: start cpu profile: %w", err)
		}
	}
	var traceFile *os.File
	if runtimeTracePath != "" {
		traceFile, err = os.Create(runtimeTracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("cli: create runtime trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("cli: start runtime trace: %w", err)
		}
	}
	return func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				keep(fmt.Errorf("cli: close cpu profile: %w", err))
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				keep(fmt.Errorf("cli: close runtime trace: %w", err))
			}
		}
		if memPath != "" {
			keep(WriteFile(memPath, func(w io.Writer) error {
				runtime.GC()
				return pprof.WriteHeapProfile(w)
			}))
		}
		return firstErr
	}, nil
}

// DriftFlags registers the shared prediction-drift flags (-drift-delta,
// -drift-lambda, -drift-warmup) on the default flag set and returns a
// function that materializes the obs.DriftConfig after flag.Parse.
func DriftFlags() func() obs.DriftConfig {
	delta := flag.Float64("drift-delta", obs.DefaultDriftDelta,
		"Page-Hinkley magnitude tolerance for prediction-drift detection (IBU)")
	lambda := flag.Float64("drift-lambda", obs.DefaultDriftLambda,
		"Page-Hinkley firing threshold for prediction-drift detection (negative disables)")
	warmup := flag.Int("drift-warmup", obs.DefaultDriftWarmup,
		"epochs of matured predictions before drift detection arms")
	return func() obs.DriftConfig {
		return obs.DriftConfig{Delta: *delta, Lambda: *lambda, Warmup: *warmup}
	}
}

// StartObs wires the observability flags shared by the commands: it
// starts the live expvar/pprof endpoint when addr is non-empty
// (-obs-addr) and opens a Perfetto-loadable engine-phase trace when
// tracePath is non-empty (-trace-out). traceWindow > 0 (-trace-window)
// selects the tracer's time-window retention mode: the file keeps only
// events from the trailing traceWindow base ticks at each flush, which
// is what makes always-on tracing viable for long-running processes
// (the cosim daemon); 0 streams everything. drift parameterizes the
// Page-Hinkley prediction-drift detector on the returned Metrics (zero
// value = defaults; negative Lambda disables). It returns the Observer
// to attach to runs — nil when both flags are off, which disables the
// layer entirely — and a close function for the caller to defer; close
// flushes the phase trace and shuts the endpoint down, returning the
// first error — an unreported flush failure would leave a silently
// truncated trace file behind an exit code of 0.
func StartObs(addr, tracePath string, traceWindow int64, drift obs.DriftConfig) (*obs.Observer, func() error, error) {
	var (
		srv    *obs.Server
		tf     *os.File
		tracer *obs.Tracer
	)
	if addr != "" {
		var err error
		srv, err = obs.StartServer(addr)
		if err != nil {
			return nil, nil, fmt.Errorf("cli: obs endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/debug/vars\n", srv.Addr())
	}
	if tracePath != "" {
		var err error
		tf, err = os.Create(tracePath)
		if err != nil {
			if srv != nil {
				srv.Close()
			}
			return nil, nil, fmt.Errorf("cli: create phase trace: %w", err)
		}
		tracer = obs.NewTracerWindow(tf, traceWindow)
	}
	closeFn := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if tracer != nil {
			if err := tracer.Flush(); err != nil {
				keep(fmt.Errorf("cli: phase trace: %w", err))
			}
			if err := tf.Close(); err != nil {
				keep(fmt.Errorf("cli: close phase trace: %w", err))
			}
		}
		if srv != nil {
			keep(srv.Close())
		}
		return firstErr
	}
	if srv == nil && tracer == nil {
		return nil, closeFn, nil
	}
	m := obs.NewMetrics()
	m.SetDrift(drift)
	return &obs.Observer{Metrics: m, Tracer: tracer}, closeFn, nil
}

// WriteFile creates path, streams write into it, and closes the file,
// returning the first error — including the Close error, which is where
// a full disk or quota breach finally surfaces for buffered filesystem
// writes. Every output path in the commands funnels through it (or an
// equivalent explicit Close check) so a truncated file can never hide
// behind exit code 0.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("cli: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cli: close %s: %w", path, err)
	}
	return nil
}

// LoadTrace reads a binary trace file written by cmd/tracegen.
func LoadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cli: open trace: %w", err)
	}
	defer f.Close()
	return traffic.ReadBinary(f)
}
