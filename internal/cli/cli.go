// Package cli holds the small parsing helpers shared by the command-line
// tools (topology, model-kind and pattern names, trace loading).
package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ParseTopo parses "mesh<W>x<H>" or "cmesh4x4".
func ParseTopo(name string) (topology.Topology, error) {
	switch {
	case name == "cmesh4x4":
		return topology.NewCMesh(4, 4), nil
	case strings.HasPrefix(name, "cmesh"):
		var w, h int
		if _, err := fmt.Sscanf(name, "cmesh%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("cli: bad topology %q", name)
		}
		return topology.NewCMesh(w, h), nil
	case strings.HasPrefix(name, "mesh"):
		var w, h int
		if _, err := fmt.Sscanf(name, "mesh%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("cli: bad topology %q", name)
		}
		return topology.NewMesh(w, h), nil
	}
	return nil, fmt.Errorf("cli: unknown topology %q", name)
}

// ParseShards validates a -shards flag value: 0 selects the engine's
// automatic default (min(GOMAXPROCS, NumCPU, mesh router rows) — so a
// single-CPU host runs the serial sweep unless a count >1 is passed
// explicitly), positive values request that many row-aligned tick-engine
// shards (clamped to the row count by the engine), and negatives are
// rejected. Results are bit-identical for every accepted value.
func ParseShards(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("cli: -shards must be >= 0, got %d", n)
	}
	return n, nil
}

// ParseKind parses a model name as used throughout the paper.
func ParseKind(name string) (core.ModelKind, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return core.KindBaseline, nil
	case "pg", "powerpunch", "power-gated":
		return core.KindPG, nil
	case "lead", "lead-tau", "dvfs+ml", "dvfsml":
		return core.KindLEAD, nil
	case "dozznoc":
		return core.KindDozzNoC, nil
	case "turbo", "ml+turbo", "mlturbo":
		return core.KindTurbo, nil
	}
	return 0, fmt.Errorf("cli: unknown model %q", name)
}

// ParsePattern parses a synthetic-pattern name.
func ParsePattern(name string) (traffic.Pattern, error) {
	switch strings.ToLower(name) {
	case "uniform", "random":
		return traffic.UniformRandom, nil
	case "transpose":
		return traffic.Transpose, nil
	case "bitcomp", "bitcomplement":
		return traffic.BitComplement, nil
	case "hotspot":
		return traffic.Hotspot, nil
	case "neighbor":
		return traffic.Neighbor, nil
	}
	return 0, fmt.Errorf("cli: unknown pattern %q", name)
}

// StartProfiles begins CPU profiling and arranges a heap snapshot,
// driven by the shared -cpuprofile/-memprofile flags. Either path may be
// empty. It returns a stop function for the caller to defer; stop
// finishes the CPU profile and writes the heap profile (after a GC, so
// it reflects live objects rather than collection timing).
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cli: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cli: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cli: write mem profile:", err)
			}
		}
	}, nil
}

// LoadTrace reads a binary trace file written by cmd/tracegen.
func LoadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cli: open trace: %w", err)
	}
	defer f.Close()
	return traffic.ReadBinary(f)
}
