package vr

import "math"

// Fig 5 waveform model. The LDO output settles toward its target with
// first-order dynamics; the settling time constant is calibrated so the
// output enters the +/-SettleBandVolts band exactly at the Table II latency
// for the transition, reproducing the 8.5 ns wake (0 V -> 0.8 V) and the
// 6.9 ns worst-case switch (0.8 V -> 1.2 V) shown in Fig 5.

// SettleBandVolts is the band around the target voltage within which the
// supply is considered settled (T-Wakeup is defined in §III-A as the
// interval until the local level settles to the supply level).
const SettleBandVolts = 0.01

// Sample is one point of a transition waveform.
type Sample struct {
	TimeNS float64
	Volts  float64
}

// SettleTimeConstant returns the first-order time constant (ns) that makes
// a step of size deltaV settle into SettleBandVolts after settleNS.
func SettleTimeConstant(deltaV, settleNS float64) float64 {
	deltaV = math.Abs(deltaV)
	if deltaV <= SettleBandVolts || settleNS <= 0 {
		return 0
	}
	return settleNS / math.Log(deltaV/SettleBandVolts)
}

// Transition generates the LDO output waveform for a supply change from
// v0 to v1 starting at startNS, sampled every stepNS until horizonNS.
// Before startNS the output holds v0. The settling latency is taken from
// Table II for the corresponding levels.
func Transition(v0, v1, startNS, stepNS, horizonNS float64) []Sample {
	if stepNS <= 0 {
		stepNS = 0.1
	}
	lat := SwitchNS(nearestLevel(v0), nearestLevel(v1))
	tau := SettleTimeConstant(v1-v0, lat)
	var out []Sample
	for t := 0.0; t <= horizonNS+1e-9; t += stepNS {
		v := v0
		if t >= startNS {
			if tau == 0 {
				v = v1
			} else {
				v = v1 + (v0-v1)*math.Exp(-(t-startNS)/tau)
			}
		}
		out = append(out, Sample{TimeNS: t, Volts: v})
	}
	return out
}

// SettledAfter returns the time (ns, relative to the transition start) at
// which the waveform from v0 to v1 enters the settle band, using the same
// dynamics as Transition.
func SettledAfter(v0, v1 float64) float64 {
	lat := SwitchNS(nearestLevel(v0), nearestLevel(v1))
	tau := SettleTimeConstant(v1-v0, lat)
	if tau == 0 {
		return 0
	}
	return tau * math.Log(math.Abs(v1-v0)/SettleBandVolts)
}

// nearestLevel maps an arbitrary voltage to the closest Table II level.
func nearestLevel(v float64) Level {
	best, bestD := PG, math.Abs(v-LevelVolts(PG))
	for l := V08; l <= V12; l++ {
		if d := math.Abs(v - LevelVolts(l)); d < bestD {
			best, bestD = l, d
		}
	}
	return best
}

// Fig5Wakeup returns the Fig 5(a) waveform: power-gating wake from 0 V to
// 0.8 V with the switch starting at startNS.
func Fig5Wakeup(startNS, stepNS, horizonNS float64) []Sample {
	return Transition(0, 0.8, startNS, stepNS, horizonNS)
}

// Fig5Switch returns the Fig 5(b) waveform: a DVFS switch from 0.8 V to
// 1.2 V with the switch starting at startNS.
func Fig5Switch(startNS, stepNS, horizonNS float64) []Sample {
	return Transition(0.8, 1.2, startNS, stepNS, horizonNS)
}
