package vr

// Fig 6 power-efficiency model. The LDO is a linear regulator, so its
// efficiency is bounded by Vout/Vin; the SIMO converter ahead of it runs at
// a high fixed conversion efficiency. Because the SIMO MUX keeps the LDO
// dropout within 100 mV (Table I), the proposed design stays above 87%
// efficient across the whole 0.8-1.2 V DVFS range, whereas the baseline
// (an LDO fed directly from the fixed 1.2 V rail) collapses to ~65% at
// 0.8 V. Calibration reproduces the paper's three quantitative claims:
// overall efficiency > 87%, average improvement ~15 percentage points over
// the four comparison voltages below 1.2 V, and a maximum improvement of
// almost 25 points at 0.9 V.

// SIMOConversionEfficiency is the switching-converter efficiency of the
// single-inductor multiple-output stage.
const SIMOConversionEfficiency = 0.98

// Efficiency returns the end-to-end power efficiency of the proposed
// SIMO+muxed-LDO supply at output voltage vout.
func Efficiency(vout float64) float64 {
	vin := LDOInputFor(vout)
	return SIMOConversionEfficiency * vout / vin
}

// BaselineEfficiency returns the efficiency of the comparison design: an
// LDO supplied from a fixed 1.2 V rail, so the dropout (and the loss)
// grows as the output scales down.
func BaselineEfficiency(vout float64) float64 {
	return SIMOConversionEfficiency * vout / 1.2
}

// EfficiencyPoint is one Fig 6 sample.
type EfficiencyPoint struct {
	Vout     float64
	SIMO     float64 // proposed design
	Baseline float64 // 1.2 V-input LDO
}

// EfficiencyCurve samples both designs across [0.8, 1.2] V with the given
// step (Fig 6's x-axis).
func EfficiencyCurve(step float64) []EfficiencyPoint {
	if step <= 0 {
		step = 0.1
	}
	var pts []EfficiencyPoint
	for v := 0.8; v <= 1.2+1e-9; v += step {
		pts = append(pts, EfficiencyPoint{Vout: v, SIMO: Efficiency(v), Baseline: BaselineEfficiency(v)})
	}
	return pts
}

// ComparisonVoltages are the paper's "four various points of comparison"
// (the DVFS points below the 1.2 V rail, where the designs differ).
var ComparisonVoltages = [4]float64{0.8, 0.9, 1.0, 1.1}

// ImprovementStats summarizes Fig 6 the way §III-C quotes it: the minimum
// overall efficiency of the proposed design, and the average and maximum
// improvement (in percentage points) over the baseline at the four
// comparison voltages, with the voltage where the maximum occurs.
type ImprovementStats struct {
	MinEfficiency  float64
	AvgImprovement float64
	MaxImprovement float64
	MaxAtVolts     float64
}

// Improvement computes the ImprovementStats from the model.
func Improvement() ImprovementStats {
	s := ImprovementStats{MinEfficiency: 1.0}
	for _, v := range []float64{0.8, 0.9, 1.0, 1.1, 1.2} {
		if e := Efficiency(v); e < s.MinEfficiency {
			s.MinEfficiency = e
		}
	}
	for _, v := range ComparisonVoltages {
		d := Efficiency(v) - BaselineEfficiency(v)
		s.AvgImprovement += d
		if d > s.MaxImprovement {
			s.MaxImprovement = d
			s.MaxAtVolts = v
		}
	}
	s.AvgImprovement /= float64(len(ComparisonVoltages))
	return s
}
