// Package vr models the paper's SIMO/LDO voltage-regulator subsystem
// (§III-C): a single-inductor multiple-output (SIMO) switching converter
// supplies three time-multiplexed rails (0.9 V, 1.1 V, 1.2 V) that feed one
// low-dropout linear regulator (LDO) per router. A MUX selects the LDO
// input so that the dropout never exceeds 100 mV (Table I), which keeps LDO
// power efficiency high while retaining nanosecond-range switching
// (Table II). Grounding both LDO input and output power-gates the router.
//
// The package encodes Table I (dropout ranges), Table II (measured ns
// switching latencies), Table III (cycle-domain costs for T-Switch,
// T-Wakeup and T-Breakeven), the Fig 6 efficiency comparison, and a
// first-order settling model that regenerates the Fig 5 waveforms.
package vr

import (
	"fmt"

	"repro/internal/power"
)

// Rails are the three SIMO output voltages available as LDO inputs.
var Rails = [3]float64{0.9, 1.1, 1.2}

// Power-switch counts (§III-C): sharing one inductor across three
// time-multiplexed rails needs five power switches versus six for a
// conventional switching-regulator array — part of the design's area
// advantage.
const (
	PowerSwitches         = 5
	BaselinePowerSwitches = 6
)

// LDOInputFor returns the SIMO rail selected as LDO input for a desired
// output voltage, per Table I: outputs 0.8-0.9 V draw from the 0.9 V rail,
// 1.0-1.1 V from the 1.1 V rail, and 1.2 V from the 1.2 V rail.
func LDOInputFor(vout float64) float64 {
	switch {
	case vout <= 0.9:
		return 0.9
	case vout <= 1.1:
		return 1.1
	default:
		return 1.2
	}
}

// Dropout returns the LDO voltage dropout (Vin - Vout) for a desired
// output voltage; by construction it is within [0, 0.1] V for the five
// DVFS points.
func Dropout(vout float64) float64 { return LDOInputFor(vout) - vout }

// DropoutRow is one row of Table I.
type DropoutRow struct {
	Vin       float64
	VoutLo    float64
	VoutHi    float64
	DropoutLo float64
	DropoutHi float64
}

// TableI returns the LDO dropout table exactly as printed in the paper.
func TableI() []DropoutRow {
	return []DropoutRow{
		{Vin: 0.9, VoutLo: 0.8, VoutHi: 0.9, DropoutLo: 0, DropoutHi: 0.1},
		{Vin: 1.1, VoutLo: 1.0, VoutHi: 1.1, DropoutLo: 0, DropoutHi: 0.1},
		{Vin: 1.2, VoutLo: 1.2, VoutHi: 1.2, DropoutLo: 0, DropoutHi: 0},
	}
}

// Level indexes the rows/columns of Table II: the power-gated state plus
// the five active voltages in ascending order.
type Level int

const (
	PG Level = iota // 0 V, power-gated
	V08
	V09
	V10
	V11
	V12
	numLevels
)

// LevelVolts returns the supply voltage of a level (0 for PG).
func LevelVolts(l Level) float64 {
	return [numLevels]float64{0, 0.8, 0.9, 1.0, 1.1, 1.2}[l]
}

// LevelOfMode maps an active power.Mode to its Table II level.
func LevelOfMode(m power.Mode) Level {
	if !m.IsActive() {
		return PG
	}
	return V08 + Level(m.Index())
}

// String renders a level ("PG", "0.8V", ...).
func (l Level) String() string {
	if l == PG {
		return "PG"
	}
	return fmt.Sprintf("%.1fV", LevelVolts(l))
}

// switchNS is Table II: the measured latency in nanoseconds to switch the
// router supply between any two levels. Rows are the starting level,
// columns the target. (The paper's "4.3s" entry at 1.1V->1.2V is an
// evident typo for 4.3 ns.)
var switchNS = [numLevels][numLevels]float64{
	//            PG   0.8  0.9  1.0  1.1  1.2
	/* PG  */ {0.0, 8.5, 8.7, 8.7, 8.7, 8.8},
	/* 0.8 */ {8.5, 0.0, 4.2, 5.5, 6.2, 6.7},
	/* 0.9 */ {8.7, 4.2, 0.0, 4.4, 5.5, 6.3},
	/* 1.0 */ {8.7, 5.5, 4.4, 0.0, 4.3, 5.5},
	/* 1.1 */ {8.7, 6.3, 5.4, 4.3, 0.0, 4.3},
	/* 1.2 */ {8.8, 6.9, 6.3, 5.4, 4.1, 0.0},
}

// SwitchNS returns the Table II latency in nanoseconds to move the supply
// from level a to level b.
func SwitchNS(a, b Level) float64 { return switchNS[a][b] }

// Worst-case latencies the paper applies uniformly in simulation (§III-C):
// every wake from PG is billed the worst observed wake (8.8 ns) and every
// active-to-active switch the worst observed switch (6.9 ns).
const (
	WorstWakeupNS = 8.8
	WorstSwitchNS = 6.9
)

// WorstWakeupObserved returns the largest PG->active entry of Table II.
func WorstWakeupObserved() float64 {
	w := 0.0
	for b := V08; b <= V12; b++ {
		if switchNS[PG][b] > w {
			w = switchNS[PG][b]
		}
		if switchNS[b][PG] > w {
			w = switchNS[b][PG]
		}
	}
	return w
}

// WorstSwitchObserved returns the largest active-to-active entry of
// Table II.
func WorstSwitchObserved() float64 {
	w := 0.0
	for a := V08; a <= V12; a++ {
		for b := V08; b <= V12; b++ {
			if switchNS[a][b] > w {
				w = switchNS[a][b]
			}
		}
	}
	return w
}

// Costs is one row of Table III: the cycle-domain costs of mode m, counted
// in cycles of m's own clock.
type Costs struct {
	Mode       power.Mode
	Volts      float64
	FreqMHz    int
	TSwitch    int // cycles paused when switching into this mode
	TWakeup    int // cycles in the wakeup state when waking into this mode
	TBreakeven int // minimum off cycles for a net static-energy win
}

// tableIII is Table III verbatim.
var tableIII = [power.NumActiveModes]Costs{
	{Mode: power.M3, Volts: 0.8, FreqMHz: 1000, TSwitch: 7, TWakeup: 9, TBreakeven: 8},
	{Mode: power.M4, Volts: 0.9, FreqMHz: 1500, TSwitch: 11, TWakeup: 12, TBreakeven: 9},
	{Mode: power.M5, Volts: 1.0, FreqMHz: 1800, TSwitch: 13, TWakeup: 15, TBreakeven: 10},
	{Mode: power.M6, Volts: 1.1, FreqMHz: 2000, TSwitch: 14, TWakeup: 16, TBreakeven: 11},
	{Mode: power.M7, Volts: 1.2, FreqMHz: 2250, TSwitch: 16, TWakeup: 18, TBreakeven: 12},
}

// CostsFor returns the Table III row for an active mode.
func CostsFor(m power.Mode) Costs { return tableIII[m.Index()] }

// TableIII returns all Table III rows in mode order.
func TableIII() []Costs {
	out := make([]Costs, power.NumActiveModes)
	copy(out, tableIII[:])
	return out
}

// CyclesAt converts a latency in nanoseconds to whole cycles of a clock at
// freqMHz, rounding up (a partial cycle still stalls the full cycle).
func CyclesAt(ns float64, freqMHz int) int {
	c := int(ns * float64(freqMHz) / 1000.0)
	if float64(c)*1000.0/float64(freqMHz) < ns {
		c++
	}
	return c
}
