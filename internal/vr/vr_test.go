package vr

import (
	"math"
	"testing"

	"repro/internal/power"
)

func TestLDOInputSelection(t *testing.T) {
	// Table I's MUX policy.
	cases := map[float64]float64{0.8: 0.9, 0.9: 0.9, 1.0: 1.1, 1.1: 1.1, 1.2: 1.2}
	for vout, vin := range cases {
		if got := LDOInputFor(vout); got != vin {
			t.Errorf("LDOInputFor(%g) = %g, want %g", vout, got, vin)
		}
	}
}

func TestDropoutWithin100mV(t *testing.T) {
	// The SIMO MUX keeps the dropout within [0, 100 mV] at every DVFS
	// point — the property that preserves LDO efficiency.
	for _, v := range []float64{0.8, 0.9, 1.0, 1.1, 1.2} {
		d := Dropout(v)
		if d < 0 || d > 0.1+1e-12 {
			t.Errorf("dropout at %gV = %g, want within [0, 0.1]", v, d)
		}
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("Table I has %d rows, want 3", len(rows))
	}
	if rows[0].Vin != 0.9 || rows[1].Vin != 1.1 || rows[2].Vin != 1.2 {
		t.Error("Table I input rails wrong")
	}
	for _, r := range rows {
		if r.DropoutHi > 0.1 {
			t.Errorf("Vin %g: dropout up to %g exceeds 100 mV", r.Vin, r.DropoutHi)
		}
	}
}

func TestTableIIValues(t *testing.T) {
	// Spot-check Table II entries against the paper.
	cases := []struct {
		a, b Level
		ns   float64
	}{
		{PG, V08, 8.5},
		{PG, V12, 8.8},
		{V08, V09, 4.2},
		{V12, V08, 6.9},
		{V11, V12, 4.3}, // the paper's "4.3s" typo, read as ns
		{V12, V11, 4.1},
		{V10, V10, 0},
	}
	for _, c := range cases {
		if got := SwitchNS(c.a, c.b); got != c.ns {
			t.Errorf("SwitchNS(%v,%v) = %g, want %g", c.a, c.b, got, c.ns)
		}
	}
}

func TestTableIIDiagonalZero(t *testing.T) {
	for l := PG; l <= V12; l++ {
		if SwitchNS(l, l) != 0 {
			t.Errorf("self-switch at %v costs %g ns", l, SwitchNS(l, l))
		}
	}
}

func TestWorstCases(t *testing.T) {
	if got := WorstWakeupObserved(); got != WorstWakeupNS {
		t.Errorf("worst wakeup observed %g, constant says %g", got, WorstWakeupNS)
	}
	if got := WorstSwitchObserved(); got != WorstSwitchNS {
		t.Errorf("worst switch observed %g, constant says %g", got, WorstSwitchNS)
	}
}

func TestLevelOfMode(t *testing.T) {
	if LevelOfMode(power.M3) != V08 || LevelOfMode(power.M7) != V12 {
		t.Error("mode-to-level mapping wrong")
	}
	if LevelOfMode(power.Inactive) != PG {
		t.Error("inactive should map to PG")
	}
}

func TestLevelVoltsAndString(t *testing.T) {
	if LevelVolts(PG) != 0 || LevelVolts(V10) != 1.0 {
		t.Error("level voltages wrong")
	}
	if PG.String() != "PG" || V08.String() != "0.8V" {
		t.Errorf("level strings: %q, %q", PG, V08)
	}
}

func TestTableIIIValues(t *testing.T) {
	rows := TableIII()
	wantSwitch := []int{7, 11, 13, 14, 16}
	wantWake := []int{9, 12, 15, 16, 18}
	wantBE := []int{8, 9, 10, 11, 12}
	for i, r := range rows {
		if r.TSwitch != wantSwitch[i] || r.TWakeup != wantWake[i] || r.TBreakeven != wantBE[i] {
			t.Errorf("row %d = %+v", i, r)
		}
	}
	if CostsFor(power.M5).TWakeup != 15 {
		t.Error("CostsFor(M5) wrong")
	}
}

func TestTableIIIConsistentWithWorstNS(t *testing.T) {
	// Table III is supposed to be the worst-case ns latencies converted to
	// cycles of each mode's clock; allow the paper's rounding slack.
	for _, r := range TableIII() {
		wake := CyclesAt(WorstWakeupNS, r.FreqMHz)
		if d := wake - r.TWakeup; d < -1 || d > 3 {
			t.Errorf("mode %v: %g ns at %d MHz = %d cycles, Table III says %d",
				r.Mode, WorstWakeupNS, r.FreqMHz, wake, r.TWakeup)
		}
		sw := CyclesAt(WorstSwitchNS, r.FreqMHz)
		if d := sw - r.TSwitch; d < -1 || d > 3 {
			t.Errorf("mode %v: switch %d cycles vs Table III %d", r.Mode, sw, r.TSwitch)
		}
	}
}

func TestCyclesAt(t *testing.T) {
	if got := CyclesAt(8.8, 1000); got != 9 {
		t.Errorf("8.8 ns at 1 GHz = %d cycles, want 9", got)
	}
	if got := CyclesAt(1.0, 1000); got != 1 {
		t.Errorf("1 ns at 1 GHz = %d, want 1", got)
	}
	if got := CyclesAt(0, 2250); got != 0 {
		t.Errorf("0 ns = %d cycles", got)
	}
}

func TestBreakevenMonotone(t *testing.T) {
	// Higher modes leak more, so their breakeven must not decrease.
	rows := TableIII()
	for i := 1; i < len(rows); i++ {
		if rows[i].TBreakeven < rows[i-1].TBreakeven {
			t.Error("T-Breakeven must be non-decreasing in mode")
		}
	}
}

func TestEfficiencyClaims(t *testing.T) {
	s := Improvement()
	// The three quantitative claims of §III-C.
	if s.MinEfficiency < 0.87 {
		t.Errorf("overall efficiency %.3f, paper claims > 87%%", s.MinEfficiency)
	}
	if s.AvgImprovement < 0.12 || s.AvgImprovement > 0.18 {
		t.Errorf("avg improvement %.3f, paper claims ~15 points", s.AvgImprovement)
	}
	if s.MaxImprovement < 0.20 || s.MaxImprovement > 0.27 {
		t.Errorf("max improvement %.3f, paper claims almost 25 points", s.MaxImprovement)
	}
	if s.MaxAtVolts != 0.9 {
		t.Errorf("max improvement at %gV, paper says 0.9V", s.MaxAtVolts)
	}
}

func TestEfficiencyVsBaseline(t *testing.T) {
	for _, v := range []float64{0.8, 0.9, 1.0, 1.1} {
		if Efficiency(v) <= BaselineEfficiency(v) {
			t.Errorf("SIMO must beat the 1.2V-input LDO at %gV", v)
		}
	}
	if math.Abs(Efficiency(1.2)-BaselineEfficiency(1.2)) > 1e-12 {
		t.Error("designs coincide at 1.2V")
	}
}

func TestEfficiencyCurve(t *testing.T) {
	pts := EfficiencyCurve(0.1)
	if len(pts) != 5 {
		t.Fatalf("curve has %d points, want 5", len(pts))
	}
	if pts[0].Vout != 0.8 || math.Abs(pts[len(pts)-1].Vout-1.2) > 1e-9 {
		t.Error("curve endpoints wrong")
	}
	pts = EfficiencyCurve(0) // default step
	if len(pts) != 5 {
		t.Fatalf("default step curve has %d points", len(pts))
	}
}

func TestIntroLDOClaim(t *testing.T) {
	// §II: a plain LDO from 1.1V rail to 0.8V drops efficiency to ~67%;
	// scaled from 1.2V in our baseline: 0.8/1.2*0.98 = 65.3%.
	if e := BaselineEfficiency(0.8); e < 0.60 || e > 0.70 {
		t.Errorf("baseline LDO at 0.8V = %.3f, expected ~0.65", e)
	}
}

func TestPowerSwitchReduction(t *testing.T) {
	// §III-C: "Our SIMO design reduces the number of power switches from
	// 6 to 5".
	if PowerSwitches != 5 || BaselinePowerSwitches != 6 {
		t.Fatalf("power switch counts %d/%d, paper says 5/6", PowerSwitches, BaselinePowerSwitches)
	}
}
