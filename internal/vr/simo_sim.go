package vr

import "fmt"

// Circuit-level SIMO converter simulation. The paper's power delivery
// (Fig 4b, after Ma et al.'s single-inductor multiple-output converter
// with time-multiplexing control in discontinuous conduction mode, DCM)
// maintains three rails (0.9/1.1/1.2 V) from one battery-voltage input
// and one inductor. Because all three rails are held up simultaneously,
// a DVFS switch only re-MUXes the LDO input — the ns-scale latencies of
// Table II — while the converter itself evolves on the microsecond scale
// of Fig 5's axes.
//
// The simulation advances one switching period at a time: each period the
// controller serves the rail with the largest undervoltage (skipping the
// pulse when every rail is in regulation), ramping the inductor to a
// fixed peak current and dumping ½·L·I² into the chosen output — the
// classic peak-current DCM scheme with pulse skipping.

// SIMOParams are the converter's circuit parameters.
type SIMOParams struct {
	VinVolts   float64    // battery input (Fig 5 labels it 3 V)
	InductorUH float64    // single inductor, microhenries
	CapUF      float64    // per-rail output capacitance, microfarads
	SwitchMHz  float64    // switching frequency
	PeakAmps   float64    // DCM peak inductor current
	Efficiency float64    // conversion efficiency of each energy packet
	Targets    [3]float64 // rail targets (0.9, 1.1, 1.2)
	LoadsMA    [3]float64 // per-rail LDO load currents, milliamps
	Hysteresis float64    // regulation band below target, volts
}

// DefaultSIMO returns parameters sized for the paper's three-rail design:
// ~10 mV service ripple, regulation capacity comfortably above the
// routers' worst-case draw, and tens-of-microseconds cold start.
func DefaultSIMO() SIMOParams {
	return SIMOParams{
		VinVolts:   3.0,
		InductorUH: 4.7,
		CapUF:      4.7,
		SwitchMHz:  2.0,
		PeakAmps:   0.15,
		Efficiency: SIMOConversionEfficiency,
		Targets:    [3]float64{Rails[0], Rails[1], Rails[2]},
		LoadsMA:    [3]float64{20, 15, 25},
		Hysteresis: 0.005,
	}
}

// Validate checks parameter sanity.
func (p SIMOParams) Validate() error {
	switch {
	case p.VinVolts <= 0 || p.InductorUH <= 0 || p.CapUF <= 0 || p.SwitchMHz <= 0 || p.PeakAmps <= 0:
		return fmt.Errorf("vr: non-positive SIMO circuit parameter: %+v", p)
	case p.Efficiency <= 0 || p.Efficiency > 1:
		return fmt.Errorf("vr: SIMO efficiency %g out of (0,1]", p.Efficiency)
	case p.Targets[0] <= 0 || p.Targets[0] >= p.VinVolts:
		return fmt.Errorf("vr: rail targets must sit below Vin")
	}
	return nil
}

// RailSample is the three rail voltages at one instant.
type RailSample struct {
	TimeUS float64
	Volts  [3]float64
	Served int // rail index charged this period, -1 if the pulse skipped
}

// SIMOSim is the converter state.
type SIMOSim struct {
	P     SIMOParams
	V     [3]float64 // rail voltages
	timeS float64
	// Counters.
	periods int64
	pulses  int64
	served  [3]int64
}

// NewSIMOSim builds a simulation from cold start (rails at 0 V).
func NewSIMOSim(p SIMOParams) (*SIMOSim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &SIMOSim{P: p}, nil
}

// Step advances one switching period and returns the sample.
func (s *SIMOSim) Step() RailSample {
	p := s.P
	T := 1e-6 / p.SwitchMHz // period in seconds
	L := p.InductorUH * 1e-6
	C := p.CapUF * 1e-6

	// Load drain on every rail, every period.
	for i := range s.V {
		s.V[i] -= p.LoadsMA[i] * 1e-3 * T / C
		if s.V[i] < 0 {
			s.V[i] = 0
		}
	}

	// Time-multiplexing control: serve the most undervolted rail; skip
	// the pulse entirely when every rail sits at or above target.
	serve := -1
	worst := 0.0
	for i := range s.V {
		if err := p.Targets[i] - s.V[i]; err > worst {
			worst = err
			serve = i
		}
	}
	if serve >= 0 {
		// One DCM energy packet: E = eta * 1/2 L I².
		e := p.Efficiency * 0.5 * L * p.PeakAmps * p.PeakAmps
		// Delivered as charge at the rail voltage (clamped away from zero
		// during start-up, where the packet is charge-limited instead).
		v := s.V[serve]
		if v < 0.1 {
			v = 0.1
		}
		s.V[serve] += e / v / C
		// Never overshoot past the regulation band.
		if max := p.Targets[serve] + p.Hysteresis; s.V[serve] > max {
			s.V[serve] = max
		}
		s.pulses++
		s.served[serve]++
	}
	s.periods++
	s.timeS += T
	return RailSample{TimeUS: s.timeS * 1e6, Volts: s.V, Served: serve}
}

// Run advances until durationUS microseconds have elapsed, returning one
// sample per switching period.
func (s *SIMOSim) Run(durationUS float64) []RailSample {
	var out []RailSample
	for s.timeS*1e6 < durationUS {
		out = append(out, s.Step())
	}
	return out
}

// InRegulation reports whether every rail is within band of its target.
func (s *SIMOSim) InRegulation(band float64) bool {
	for i, v := range s.V {
		if v < s.P.Targets[i]-band || v > s.P.Targets[i]+band {
			return false
		}
	}
	return true
}

// StartupTimeUS runs from the current state until all rails regulate
// (within band) or the deadline passes; it returns the elapsed time and
// whether regulation was reached.
func (s *SIMOSim) StartupTimeUS(band, deadlineUS float64) (float64, bool) {
	start := s.timeS * 1e6
	for s.timeS*1e6-start < deadlineUS {
		s.Step()
		if s.InRegulation(band) {
			return s.timeS*1e6 - start, true
		}
	}
	return deadlineUS, false
}

// PulseSkipRate returns the fraction of periods with no pulse — the DCM
// controller's idle margin (capacity headroom above the load).
func (s *SIMOSim) PulseSkipRate() float64 {
	if s.periods == 0 {
		return 0
	}
	return 1 - float64(s.pulses)/float64(s.periods)
}

// ServiceShare returns the fraction of pulses given to each rail.
func (s *SIMOSim) ServiceShare() [3]float64 {
	var out [3]float64
	if s.pulses == 0 {
		return out
	}
	for i, n := range s.served {
		out[i] = float64(n) / float64(s.pulses)
	}
	return out
}

// RegulationCapacityMA returns the theoretical charge-delivery capacity
// of the converter in milliamps at the lowest rail voltage — it must
// exceed the total load for regulation to hold.
func (p SIMOParams) RegulationCapacityMA() float64 {
	L := p.InductorUH * 1e-6
	e := p.Efficiency * 0.5 * L * p.PeakAmps * p.PeakAmps
	q := e / p.Targets[0] // worst case: all packets to the lowest rail
	return q * p.SwitchMHz * 1e6 * 1e3
}
