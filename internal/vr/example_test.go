package vr_test

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/vr"
)

// The SIMO MUX keeps the LDO dropout within 100 mV at every DVFS point.
func ExampleDropout() {
	for _, v := range []float64{0.8, 0.9, 1.0, 1.1, 1.2} {
		fmt.Printf("Vout %.1f <- rail %.1f (dropout %.1fV)\n", v, vr.LDOInputFor(v), vr.Dropout(v))
	}
	// Output:
	// Vout 0.8 <- rail 0.9 (dropout 0.1V)
	// Vout 0.9 <- rail 0.9 (dropout 0.0V)
	// Vout 1.0 <- rail 1.1 (dropout 0.1V)
	// Vout 1.1 <- rail 1.1 (dropout 0.0V)
	// Vout 1.2 <- rail 1.2 (dropout 0.0V)
}

// Table III gives the cycle costs the simulator charges per mode.
func ExampleCostsFor() {
	c := vr.CostsFor(power.M3)
	fmt.Printf("M3: T-Switch=%d T-Wakeup=%d T-Breakeven=%d cycles\n", c.TSwitch, c.TWakeup, c.TBreakeven)
	// Output:
	// M3: T-Switch=7 T-Wakeup=9 T-Breakeven=8 cycles
}
