package vr

import (
	"math"
	"testing"
)

func newSim(t *testing.T) *SIMOSim {
	t.Helper()
	s, err := NewSIMOSim(DefaultSIMO())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSIMOValidation(t *testing.T) {
	bad := DefaultSIMO()
	bad.InductorUH = 0
	if _, err := NewSIMOSim(bad); err == nil {
		t.Error("zero inductor accepted")
	}
	bad = DefaultSIMO()
	bad.Efficiency = 1.5
	if _, err := NewSIMOSim(bad); err == nil {
		t.Error("efficiency > 1 accepted")
	}
	bad = DefaultSIMO()
	bad.Targets[0] = 5
	if _, err := NewSIMOSim(bad); err == nil {
		t.Error("target above Vin accepted")
	}
}

func TestSIMOCapacityExceedsLoad(t *testing.T) {
	p := DefaultSIMO()
	total := p.LoadsMA[0] + p.LoadsMA[1] + p.LoadsMA[2]
	if cap := p.RegulationCapacityMA(); cap < total*1.2 {
		t.Fatalf("capacity %.1f mA too close to load %.1f mA", cap, total)
	}
}

func TestSIMOColdStart(t *testing.T) {
	s := newSim(t)
	us, ok := s.StartupTimeUS(0.03, 500)
	if !ok {
		t.Fatalf("rails never regulated; V = %v", s.V)
	}
	// Cold start completes on the tens-of-microseconds scale of Fig 5's
	// axes (not ns — the ns transitions are the LDO, not the converter).
	if us < 1 || us > 300 {
		t.Fatalf("startup took %.1f us, expected O(10-100us)", us)
	}
}

func TestSIMOSteadyStateRipple(t *testing.T) {
	s := newSim(t)
	if _, ok := s.StartupTimeUS(0.03, 500); !ok {
		t.Fatal("no regulation")
	}
	// Observe 200 us of steady state.
	min := [3]float64{9, 9, 9}
	max := [3]float64{}
	for _, smp := range s.Run(s.timeS*1e6 + 200) {
		for i, v := range smp.Volts {
			if v < min[i] {
				min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
		}
	}
	for i := range min {
		ripple := max[i] - min[i]
		if ripple > 0.05 {
			t.Errorf("rail %d ripple %.3f V exceeds 50 mV", i, ripple)
		}
		if min[i] < s.P.Targets[i]-0.05 {
			t.Errorf("rail %d sags to %.3f V (target %.2f)", i, min[i], s.P.Targets[i])
		}
	}
}

func TestSIMOAllRailsServed(t *testing.T) {
	s := newSim(t)
	s.Run(500)
	share := s.ServiceShare()
	for i, f := range share {
		if f <= 0 {
			t.Errorf("rail %d never serviced", i)
		}
	}
	// The 1.2 V rail carries the largest default load and must get the
	// largest service share.
	if share[2] <= share[1] {
		t.Errorf("service shares %v do not track loads %v", share, s.P.LoadsMA)
	}
}

func TestSIMOPulseSkipping(t *testing.T) {
	s := newSim(t)
	s.Run(500)
	skip := s.PulseSkipRate()
	if skip <= 0 || skip >= 1 {
		t.Fatalf("pulse-skip rate %.2f, expected headroom in (0,1)", skip)
	}
}

func TestSIMORailsNeverExceedBand(t *testing.T) {
	s := newSim(t)
	for _, smp := range s.Run(300) {
		for i, v := range smp.Volts {
			if v > s.P.Targets[i]+s.P.Hysteresis+1e-9 {
				t.Fatalf("rail %d overshot to %.3f V at %.1f us", i, v, smp.TimeUS)
			}
		}
	}
}

func TestSIMOLoadStepRecovery(t *testing.T) {
	s := newSim(t)
	if _, ok := s.StartupTimeUS(0.03, 500); !ok {
		t.Fatal("no regulation")
	}
	// Double every load (all routers wake at once) and require recovery.
	for i := range s.P.LoadsMA {
		s.P.LoadsMA[i] *= 2
	}
	if cap := s.P.RegulationCapacityMA(); cap < s.P.LoadsMA[0]+s.P.LoadsMA[1]+s.P.LoadsMA[2] {
		t.Skip("stepped load exceeds converter capacity by design")
	}
	s.Run(s.timeS*1e6 + 100)
	if !s.InRegulation(0.05) {
		t.Fatalf("rails did not recover from a 2x load step: %v", s.V)
	}
}

func TestSIMOHoldsThreeRailsSimultaneously(t *testing.T) {
	// The architectural property DozzNoC relies on (§III-C): all three
	// rails are simultaneously regulated, so a DVFS mode switch only
	// re-MUXes the LDO input.
	s := newSim(t)
	s.Run(300)
	for i, v := range s.V {
		if math.Abs(v-s.P.Targets[i]) > 0.05 {
			t.Fatalf("rail %d at %.3f V, target %.2f — not simultaneously held", i, v, s.P.Targets[i])
		}
	}
}
