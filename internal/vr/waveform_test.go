package vr

import (
	"math"
	"testing"
)

func TestSettleTimeConstant(t *testing.T) {
	tau := SettleTimeConstant(0.8, 8.5)
	if tau <= 0 {
		t.Fatal("tau must be positive for a real step")
	}
	// After the settle latency the residual must be within the band.
	resid := 0.8 * math.Exp(-8.5/tau)
	if resid > SettleBandVolts+1e-9 {
		t.Fatalf("residual after settle = %g V, want <= %g", resid, SettleBandVolts)
	}
	if SettleTimeConstant(0.005, 8.5) != 0 {
		t.Error("sub-band steps settle instantly")
	}
	if SettleTimeConstant(0.8, 0) != 0 {
		t.Error("zero-latency steps settle instantly")
	}
}

func TestWakeupWaveformShape(t *testing.T) {
	s := Fig5Wakeup(10, 0.1, 40)
	if len(s) == 0 {
		t.Fatal("empty waveform")
	}
	// Before the switch the output holds 0V.
	for _, p := range s {
		if p.TimeNS < 10 && p.Volts != 0 {
			t.Fatalf("pre-switch sample at %g ns = %g V", p.TimeNS, p.Volts)
		}
	}
	// The waveform is monotone non-decreasing for a rising step.
	for i := 1; i < len(s); i++ {
		if s[i].Volts < s[i-1].Volts-1e-12 {
			t.Fatalf("waveform decreases at %g ns", s[i].TimeNS)
		}
	}
	// The final sample is settled at 0.8V.
	last := s[len(s)-1]
	if math.Abs(last.Volts-0.8) > SettleBandVolts {
		t.Fatalf("final voltage %g, want ~0.8", last.Volts)
	}
}

func TestSwitchWaveformSettlesAtTableIILatency(t *testing.T) {
	// 0.8 -> 1.2 V is Table II's 6.9 ns worst case: the waveform must
	// enter the band at that latency (within sampling resolution).
	start := 5.0
	s := Fig5Switch(start, 0.05, 30)
	settled := -1.0
	for _, p := range s {
		if p.TimeNS >= start && math.Abs(p.Volts-1.2) <= SettleBandVolts {
			settled = p.TimeNS - start
			break
		}
	}
	if settled < 0 {
		t.Fatal("waveform never settled")
	}
	if math.Abs(settled-6.7) > 0.2 {
		t.Fatalf("settled after %.2f ns, want ~6.7 (Table II's 0.8V->1.2V entry)", settled)
	}
}

func TestSettledAfterMatchesTableII(t *testing.T) {
	cases := []struct {
		v0, v1 float64
		want   float64
	}{
		{0, 0.8, 8.5},
		{0.8, 1.2, 6.7},
		{1.2, 0.8, 6.9}, // the reverse direction is the 6.9 ns worst case
	}
	for _, c := range cases {
		got := SettledAfter(c.v0, c.v1)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("SettledAfter(%g,%g) = %.2f ns, want %.2f", c.v0, c.v1, got, c.want)
		}
	}
}

func TestTransitionDefaults(t *testing.T) {
	s := Transition(0, 0.8, 0, 0, 5) // zero step uses the default
	if len(s) == 0 {
		t.Fatal("default-step transition empty")
	}
}

func TestNearestLevelMapping(t *testing.T) {
	if nearestLevel(0.0) != PG || nearestLevel(0.82) != V08 || nearestLevel(1.19) != V12 {
		t.Error("nearestLevel mapping wrong")
	}
}
