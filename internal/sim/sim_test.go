package sim

import (
	"testing"

	"repro/internal/features"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func smallTrace(t *testing.T, topo topology.Topology, name string, horizon int64) *traffic.Trace {
	t.Helper()
	p, ok := traffic.ProfileByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	g := traffic.Generator{Topo: topo, Horizon: horizon, Seed: 11}
	return g.Generate(p)
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineConservation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 8000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	if !res.Drained {
		t.Fatal("baseline failed to drain")
	}
	if res.PacketsInjected != int64(len(tr.Entries)) {
		t.Fatalf("injected %d, trace has %d", res.PacketsInjected, len(tr.Entries))
	}
	if res.PacketsDelivered != res.PacketsInjected {
		t.Fatalf("delivered %d of %d", res.PacketsDelivered, res.PacketsInjected)
	}
	if res.Throughput <= 0 || res.AvgLatencyTicks <= 0 {
		t.Fatal("throughput/latency not recorded")
	}
}

func TestBaselineAlwaysM7(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	if res.OffFraction != 0 || res.WakeupFraction != 0 {
		t.Fatal("baseline must never gate")
	}
	if res.ModeResidency[power.M7.Index()] < 0.999 {
		t.Fatalf("M7 residency = %g, want 1", res.ModeResidency[power.M7.Index()])
	}
	if res.Policy.ModeSwitches != 0 {
		t.Fatal("baseline must never switch modes")
	}
}

func TestAllModelsConserveAndDrain(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 8000)
	specs := []policy.Spec{
		policy.Baseline(),
		policy.PowerGated(),
		policy.DVFSML(policy.ReactiveSelector{}),
		policy.DozzNoC(policy.ReactiveSelector{}),
		policy.MLTurbo(policy.ReactiveSelector{}, topo.NumRouters()),
	}
	for _, spec := range specs {
		res := run(t, Config{Topo: topo, Spec: spec, Trace: tr})
		if !res.Drained {
			t.Fatalf("%s failed to drain", spec.Name)
		}
		if res.PacketsDelivered != res.PacketsInjected {
			t.Fatalf("%s lost packets: %d/%d", spec.Name, res.PacketsDelivered, res.PacketsInjected)
		}
	}
}

func TestCMeshRuns(t *testing.T) {
	topo := topology.NewCMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 8000)
	res := run(t, Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr})
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatalf("cmesh run broken: %+v", res)
	}
}

func TestPowerGatingSavesStatic(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "blackscholes", 12000) // sparse benchmark
	base := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	pg := run(t, Config{Topo: topo, Spec: policy.PowerGated(), Trace: tr})
	if pg.OffFraction <= 0.1 {
		t.Fatalf("PG off fraction = %g, expected substantial gating", pg.OffFraction)
	}
	if pg.StaticJ >= base.StaticJ {
		t.Fatalf("PG static %g >= baseline %g", pg.StaticJ, base.StaticJ)
	}
	if pg.DynamicJ != base.DynamicJ {
		// Same flits, same hops, same M7 energy per hop.
		t.Fatalf("PG dynamic %g != baseline %g", pg.DynamicJ, base.DynamicJ)
	}
	if pg.Policy.Gatings == 0 || pg.Policy.Wakes == 0 {
		t.Fatal("no gating activity recorded")
	}
}

func TestDVFSSavesDynamic(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "blackscholes", 12000)
	base := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	lead := run(t, Config{Topo: topo, Spec: policy.DVFSML(policy.ReactiveSelector{}), Trace: tr})
	if lead.DynamicJ >= base.DynamicJ {
		t.Fatalf("DVFS dynamic %g >= baseline %g", lead.DynamicJ, base.DynamicJ)
	}
	if lead.StaticJ >= base.StaticJ {
		t.Fatal("DVFS at lower voltages must also trim static energy")
	}
	if lead.OffFraction != 0 {
		t.Fatal("LEAD must not gate")
	}
}

func TestDozzNoCSavesBoth(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "blackscholes", 12000)
	base := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	dn := run(t, Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr})
	pg := run(t, Config{Topo: topo, Spec: policy.PowerGated(), Trace: tr})
	if dn.StaticJ >= base.StaticJ || dn.DynamicJ >= base.DynamicJ {
		t.Fatal("DozzNoC must save both static and dynamic energy")
	}
	if dn.StaticJ >= pg.StaticJ {
		t.Fatalf("DozzNoC static %g should beat PG %g (lower active voltage)", dn.StaticJ, pg.StaticJ)
	}
}

func TestBaselineFastest(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 8000).Compress(2)
	base := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	for _, spec := range []policy.Spec{
		policy.PowerGated(),
		policy.DozzNoC(policy.ReactiveSelector{}),
	} {
		res := run(t, Config{Topo: topo, Spec: spec, Trace: tr})
		if res.Ticks < base.Ticks {
			t.Fatalf("%s finished before the baseline (%d < %d)", spec.Name, res.Ticks, base.Ticks)
		}
		if res.AvgLatencyTicks < base.AvgLatencyTicks {
			t.Fatalf("%s latency beats the baseline", spec.Name)
		}
	}
}

func TestDatasetCollection(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	res := run(t, Config{
		Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}),
		Trace: tr, CollectDataset: true, EpochTicks: 500,
	})
	ds := res.Dataset
	if ds == nil {
		t.Fatal("no dataset collected")
	}
	if ds.Dim() != features.Count {
		t.Fatalf("dataset dim = %d, want %d", ds.Dim(), features.Count)
	}
	// Rows per router per epoch, minus the first unlabeled epoch; the run
	// drains shortly after the horizon, so expect close to
	// routers * (epochs - 1) rows.
	minRows := topo.NumRouters() * (int(4000/500) - 1)
	if ds.Len() < minRows {
		t.Fatalf("dataset has %d rows, want >= %d", ds.Len(), minRows)
	}
	for i, row := range ds.X {
		if row[features.Bias] != 1 {
			t.Fatalf("row %d bias = %g", i, row[features.Bias])
		}
		if row[features.IBU] < 0 || row[features.IBU] > 1 {
			t.Fatalf("row %d IBU = %g out of range", i, row[features.IBU])
		}
		if ds.Y[i] < 0 || ds.Y[i] > 1 {
			t.Fatalf("row %d label %g out of range", i, ds.Y[i])
		}
	}
}

func TestNoDatasetByDefault(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 2000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	if res.Dataset != nil {
		t.Fatal("dataset collected without being requested")
	}
}

func TestMaxTicksCapStopsRun(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr, MaxTicks: 100})
	if res.Drained {
		t.Fatal("run cannot drain in 100 ticks")
	}
	if res.Ticks != 100 {
		t.Fatalf("ran %d ticks, cap was 100", res.Ticks)
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 1000)
	if _, err := Run(Config{Spec: policy.Baseline(), Trace: tr}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Run(Config{Topo: topo, Spec: policy.Baseline()}); err == nil {
		t.Error("nil trace accepted")
	}
	other := topology.NewMesh(8, 8)
	if _, err := Run(Config{Topo: other, Spec: policy.Baseline(), Trace: tr}); err == nil {
		t.Error("core-count mismatch accepted")
	}
}

func TestEnergyAccountingCrossCheck(t *testing.T) {
	// Baseline static energy = routers * M7 watts * run seconds exactly.
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	seconds := float64(res.Ticks) / (2250e6)
	want := 16 * 0.054 * seconds
	if res.StaticJ < want*0.999 || res.StaticJ > want*1.001 {
		t.Fatalf("baseline static = %g J, want %g", res.StaticJ, want)
	}
	// Dynamic: every flit pays (hops+1) router traversals at 56.5 pJ.
	var hops int64
	for _, e := range tr.Entries {
		hops += int64(e.Kind.Flits()) * int64(topology.Hops(topo, e.Src, e.Dst)+1)
	}
	wantDyn := float64(hops) * 56.5e-12
	if res.DynamicJ < wantDyn*0.999 || res.DynamicJ > wantDyn*1.001 {
		t.Fatalf("baseline dynamic = %g J, want %g", res.DynamicJ, wantDyn)
	}
}

func TestEDPAndTotal(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 2000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	if res.TotalJ() != res.StaticJ+res.DynamicJ {
		t.Error("TotalJ wrong")
	}
	if res.EDP() <= 0 {
		t.Error("EDP must be positive")
	}
}

func TestResidencyFractionsSumToOne(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "blackscholes", 8000)
	res := run(t, Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr})
	sum := res.OffFraction + res.WakeupFraction
	for _, m := range res.ModeResidency {
		sum += m
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("state residency sums to %g", sum)
	}
}

func TestPunchHopsZeroDisablesNothing(t *testing.T) {
	// NoPathPunch still delivers everything (heads wake hops one ahead).
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 6000)
	res := run(t, Config{Topo: topo, Spec: policy.PowerGated(), Trace: tr, NoPathPunch: true})
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("run without path punch lost packets")
	}
	withPunch := run(t, Config{Topo: topo, Spec: policy.PowerGated(), Trace: tr})
	if withPunch.AvgLatencyTicks > res.AvgLatencyTicks*1.2 {
		t.Fatalf("path punch should not hurt latency much: %g vs %g",
			withPunch.AvgLatencyTicks, res.AvgLatencyTicks)
	}
}

func TestEpochTicksAffectsDecisions(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 8000)
	short := run(t, Config{Topo: topo, Spec: policy.DVFSML(policy.ReactiveSelector{}), Trace: tr, EpochTicks: 100})
	long := run(t, Config{Topo: topo, Spec: policy.DVFSML(policy.ReactiveSelector{}), Trace: tr, EpochTicks: 1000})
	if short.Policy.EpochDecisions <= long.Policy.EpochDecisions {
		t.Fatalf("epoch 100 made %d decisions, epoch 1000 made %d",
			short.Policy.EpochDecisions, long.Policy.EpochDecisions)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	res := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	l := res.Latency
	if l.Count != res.PacketsDelivered {
		t.Fatalf("latency count %d != delivered %d", l.Count, res.PacketsDelivered)
	}
	if !(l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
		t.Fatalf("percentiles unordered: %+v", l)
	}
	if l.Mean <= 0 || int64(l.Mean) > l.Max {
		t.Fatalf("mean %g out of range", l.Mean)
	}
}

func TestSeriesCollection(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	res := run(t, Config{
		Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}),
		Trace: tr, EpochTicks: 500, CollectSeries: true,
	})
	if res.Series == nil || len(res.Series.Samples) < 7 {
		t.Fatalf("series missing or short: %+v", res.Series)
	}
	prevFlits := int64(-1)
	for i, s := range res.Series.Samples {
		total := s.OffRouters + s.WakingRouters
		for _, m := range s.ModeRouters {
			total += m
		}
		if total != topo.NumRouters() {
			t.Fatalf("sample %d: router states sum to %d", i, total)
		}
		if s.FlitsDelivered < prevFlits {
			t.Fatalf("sample %d: cumulative flits decreased", i)
		}
		prevFlits = s.FlitsDelivered
		if s.AvgIBU < 0 || s.AvgIBU > 1 {
			t.Fatalf("sample %d: avg IBU %g", i, s.AvgIBU)
		}
	}
	if res2 := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr}); res2.Series != nil {
		t.Fatal("series collected without being requested")
	}
}

func TestLinkLatencyAddsPerHopDelay(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "fft", 4000)
	fast := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	slow := run(t, Config{Topo: topo, Spec: policy.Baseline(), Trace: tr, LinkTicks: 2})
	if !slow.Drained || slow.PacketsDelivered != slow.PacketsInjected {
		t.Fatal("run with link latency lost packets")
	}
	if slow.AvgLatencyTicks <= fast.AvgLatencyTicks {
		t.Fatalf("link latency did not raise latency: %g vs %g",
			slow.AvgLatencyTicks, fast.AvgLatencyTicks)
	}
}

func TestLinkLatencyWithGatingConserves(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := smallTrace(t, topo, "blackscholes", 8000)
	res := run(t, Config{
		Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}),
		Trace: tr, LinkTicks: 3,
	})
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("gating + wire latency lost packets (in-flight securing broken)")
	}
	if res.OffFraction <= 0 {
		t.Fatal("no gating happened; the securing test is vacuous")
	}
}
