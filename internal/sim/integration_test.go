package sim

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Integration tests: whole-system invariants across models, topologies
// and traffic patterns.

func allSpecs(routers int) []policy.Spec {
	return []policy.Spec{
		policy.Baseline(),
		policy.PowerGated(),
		policy.DVFSML(policy.ReactiveSelector{}),
		policy.DozzNoC(policy.ReactiveSelector{}),
		policy.MLTurbo(policy.ReactiveSelector{}, routers),
	}
}

// TestNoDeadlockAcrossPatterns drives every model with every synthetic
// pattern at a stressing rate and requires full drain: XY DOR + VC
// message classes + securing must keep the network deadlock-free even
// with power-gating churn.
func TestNoDeadlockAcrossPatterns(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	patterns := []traffic.Pattern{
		traffic.UniformRandom, traffic.Transpose, traffic.BitComplement,
		traffic.Hotspot, traffic.Neighbor,
	}
	for _, pat := range patterns {
		tr := traffic.Synthetic(topo, pat, 0.05, 3000, 9)
		for _, spec := range allSpecs(topo.NumRouters()) {
			res, err := Run(Config{Topo: topo, Spec: spec, Trace: tr})
			if err != nil {
				t.Fatalf("%s/%v: %v", spec.Name, pat, err)
			}
			if !res.Drained {
				t.Fatalf("%s/%v: network did not drain (possible deadlock)", spec.Name, pat)
			}
			if res.PacketsDelivered != res.PacketsInjected {
				t.Fatalf("%s/%v: lost %d packets", spec.Name, pat,
					res.PacketsInjected-res.PacketsDelivered)
			}
		}
	}
}

// TestSaturationRecovers pushes a heavily compressed trace through the
// slowest-adapting model and verifies the network still drains.
func TestSaturationRecovers(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p, _ := traffic.ProfileByName("canneal")
	g := traffic.Generator{Topo: topo, Horizon: 12000, Seed: 5}
	tr := g.Generate(p).Compress(6)
	res, err := Run(Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("saturated network never drained")
	}
	if res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("saturated run lost packets")
	}
}

// TestDeterminism: identical configurations produce bit-identical
// results (no map iteration, wall clock or uncontrolled randomness in
// the engine).
func TestDeterminism(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p, _ := traffic.ProfileByName("fft")
	g := traffic.Generator{Topo: topo, Horizon: 8000, Seed: 21}
	tr := g.Generate(p)
	run := func() *Result {
		res, err := Run(Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Ticks != b.Ticks || a.StaticJ != b.StaticJ || a.DynamicJ != b.DynamicJ ||
		a.AvgLatencyTicks != b.AvgLatencyTicks || a.Policy != b.Policy {
		t.Fatalf("non-deterministic results:\n%+v\n%+v", a, b)
	}
}

// TestCMeshAllModels runs the concentrated mesh through every model.
func TestCMeshAllModels(t *testing.T) {
	topo := topology.NewCMesh(4, 4)
	p, _ := traffic.ProfileByName("vips")
	g := traffic.Generator{Topo: topo, Horizon: 8000, Seed: 13}
	tr := g.Generate(p)
	for _, spec := range allSpecs(topo.NumRouters()) {
		res, err := Run(Config{Topo: topo, Spec: spec, Trace: tr})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
			t.Fatalf("%s: cmesh run broken", spec.Name)
		}
	}
}

// TestRectangularMesh exercises a non-square grid.
func TestRectangularMesh(t *testing.T) {
	topo := topology.NewMesh(6, 3)
	tr := traffic.Synthetic(topo, traffic.UniformRandom, 0.03, 4000, 2)
	res, err := Run(Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("rectangular mesh run broken")
	}
}

// TestEnergyOrderingInvariant: for any benchmark, the models' energy
// totals must respect the design's ordering — DozzNoC total <= PG total
// and <= LEAD total (it subsumes both techniques), and every model <=
// baseline total.
func TestEnergyOrderingInvariant(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	for _, bench := range []string{"fft", "lu", "vips"} {
		p, _ := traffic.ProfileByName(bench)
		g := traffic.Generator{Topo: topo, Horizon: 10000, Seed: 17}
		tr := g.Generate(p)
		results := map[string]*Result{}
		for _, spec := range allSpecs(topo.NumRouters()) {
			res, err := Run(Config{Topo: topo, Spec: spec, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			results[spec.Name] = res
		}
		base := results["Baseline"].TotalJ()
		for name, res := range results {
			if name == "Baseline" {
				continue
			}
			if res.TotalJ() > base {
				t.Errorf("%s/%s: total energy %g exceeds baseline %g", bench, name, res.TotalJ(), base)
			}
		}
		dn := results["DozzNoC"].TotalJ()
		if dn > results["PG"].TotalJ() {
			t.Errorf("%s: DozzNoC total %g > PG %g", bench, dn, results["PG"].TotalJ())
		}
		if dn > results["DVFS+ML"].TotalJ() {
			t.Errorf("%s: DozzNoC total %g > LEAD %g", bench, dn, results["DVFS+ML"].TotalJ())
		}
	}
}

// TestWakeSignalLossTolerated: even with injection-time punches disabled
// entirely (the "dropped wake signal" failure mode), head-flit securing
// still wakes routers one hop ahead, so nothing is ever lost.
func TestWakeSignalLossTolerated(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p, _ := traffic.ProfileByName("blackscholes")
	g := traffic.Generator{Topo: topo, Horizon: 10000, Seed: 31}
	tr := g.Generate(p)
	res, err := Run(Config{
		Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{}),
		Trace: tr, NoPathPunch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatal("network lost packets without path punches")
	}
}
