// Active-set scheduling equivalence harness, the per-router analogue of
// fastforward_test.go. The property locked down here: deferring dormant
// routers and catching them up in closed form is bit-exact — every
// Result field except the two scheduling diagnostics is deeply equal
// between a lazy run and a fully eager tick-by-tick run, for all five
// model kinds on a train and a test trace, and for a closed-loop mcsim
// workload (a regime the quiescent-window fast-forward never covers).
package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/flit"
	"repro/internal/mcsim"
	"repro/internal/ml"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// zeroSchedulingDiagnostics clears the Result fields that are allowed
// to differ between scheduling strategies: which ticks were covered by
// the global fast-forward, the per-router lazy path, or a concurrent
// sweep is a property of the engine's schedule, not of the simulated
// hardware.
func zeroSchedulingDiagnostics(r *sim.Result) {
	r.FastForwardedTicks = 0
	r.HorizonSkippedTicks = 0
	r.LazySkippedRouterTicks = 0
	r.ParallelTicks = 0
	r.ParallelLandings = 0
	r.ShardLoad = nil
	r.ShardLoadImbalance = 0
	r.ShardResplits = 0
}

// shardCounts are the shard widths the sharded-equivalence checks replay
// each configuration under, per the acceptance criteria.
var shardCounts = []int{1, 2, 4}

// runShardedVariant re-executes one configuration with an explicit shard
// count and the parallel-sweep threshold floored, so concurrent sweeps
// engage whenever the quiet-margin predicate admits them.
func runShardedVariant(t *testing.T, s *core.Suite, kind core.ModelKind, trace string, collect bool, shards int) *sim.Result {
	t.Helper()
	spec, err := s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(trace)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Topo:           s.Topo,
		Spec:           spec,
		Trace:          tr,
		CollectDataset: collect,
		CollectSeries:  collect,
		Shards:         shards,
		ShardMinActive: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runActiveSetPair executes one configuration with default scheduling
// (active set + fast-forward) and fully eager (both disabled).
func runActiveSetPair(t *testing.T, s *core.Suite, kind core.ModelKind, trace string, collect bool) (lazy, eager *sim.Result) {
	t.Helper()
	spec, err := s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(trace)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{
		Topo:           s.Topo,
		Spec:           spec,
		Trace:          tr,
		CollectDataset: collect,
		CollectSeries:  collect,
	}
	lazy, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh spec gives stateful selectors (ML+TURBO) a clean slate, as
	// the first run would have mutated shared counters.
	base.Spec, err = s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	base.NoActiveSet = true
	base.NoFastForward = true
	eager, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

// TestActiveSetEquivalence proves active-set scheduling is bit-exact:
// for all five model kinds on a train and a test trace, every Result
// field except the scheduling diagnostics is deeply equal between a
// default (lazy) run and a fully eager tick-by-tick run.
func TestActiveSetEquivalence(t *testing.T) {
	s := passthroughSuite(t)
	engaged := false
	for _, kind := range core.AllKinds {
		for _, trace := range equivTraces {
			kind, trace := kind, trace
			t.Run(kind.String()+"/"+trace, func(t *testing.T) {
				lazy, eager := runActiveSetPair(t, s, kind, trace, false)
				if eager.LazySkippedRouterTicks != 0 {
					t.Fatalf("NoActiveSet run deferred %d router-ticks", eager.LazySkippedRouterTicks)
				}
				if lazy.LazySkippedRouterTicks > 0 {
					engaged = true
				}
				zeroSchedulingDiagnostics(lazy)
				zeroSchedulingDiagnostics(eager)
				if !reflect.DeepEqual(lazy, eager) {
					t.Errorf("active-set result differs from eager tick-by-tick:\nlazy:  %+v\neager: %+v", lazy, eager)
				}
				// The sharded engine must be bit-exact with the serial
				// reference for every shard count, whether or not any tick
				// actually swept concurrently.
				for _, k := range shardCounts {
					sharded := runShardedVariant(t, s, kind, trace, false, k)
					zeroSchedulingDiagnostics(sharded)
					if !reflect.DeepEqual(sharded, eager) {
						t.Errorf("Shards=%d result differs from eager serial:\nsharded: %+v\neager:   %+v", k, sharded, eager)
					}
				}
			})
		}
	}
	if !engaged {
		t.Error("active-set deferral never engaged on any configuration; equivalence test is vacuous")
	}
}

// TestActiveSetEquivalenceCollecting repeats the equivalence check with
// dataset harvesting and series collection on, so the epoch-boundary
// catch-up barrier (IBU labels, feature vectors, series snapshots) is
// also proven exact.
func TestActiveSetEquivalenceCollecting(t *testing.T) {
	s := passthroughSuite(t)
	for _, kind := range []core.ModelKind{core.KindDozzNoC, core.KindPG} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			lazy, eager := runActiveSetPair(t, s, kind, "blackscholes", true)
			zeroSchedulingDiagnostics(lazy)
			zeroSchedulingDiagnostics(eager)
			if !reflect.DeepEqual(lazy.Dataset, eager.Dataset) {
				t.Error("harvested datasets differ between active-set and eager runs")
			}
			if !reflect.DeepEqual(lazy.Series, eager.Series) {
				t.Error("epoch series differ between active-set and eager runs")
			}
			if !reflect.DeepEqual(lazy, eager) {
				t.Errorf("active-set result differs from eager tick-by-tick:\nlazy:  %+v\neager: %+v", lazy, eager)
			}
			for _, k := range shardCounts {
				sharded := runShardedVariant(t, s, kind, "blackscholes", true, k)
				zeroSchedulingDiagnostics(sharded)
				if !reflect.DeepEqual(sharded.Dataset, eager.Dataset) {
					t.Errorf("Shards=%d harvested dataset differs from serial", k)
				}
				if !reflect.DeepEqual(sharded.Series, eager.Series) {
					t.Errorf("Shards=%d epoch series differs from serial", k)
				}
				if !reflect.DeepEqual(sharded, eager) {
					t.Errorf("Shards=%d result differs from eager serial:\nsharded: %+v\neager:   %+v", k, sharded, eager)
				}
			}
		})
	}
}

// TestActiveSetLazyTicksScheduleInvariant pins the diagnostic itself:
// because the active set never contains a deferrable router when the
// quiescent-window fast-forward fires, the number of lazily deferred
// router-ticks is identical whether or not global fast-forward engages.
func TestActiveSetLazyTicksScheduleInvariant(t *testing.T) {
	s := passthroughSuite(t)
	ff, slow := runPair(t, s, core.KindDozzNoC, "fft", false)
	if ff.LazySkippedRouterTicks != slow.LazySkippedRouterTicks {
		t.Errorf("lazy router-ticks depend on fast-forward: ff=%d tick-by-tick=%d",
			ff.LazySkippedRouterTicks, slow.LazySkippedRouterTicks)
	}
	if ff.LazySkippedRouterTicks == 0 {
		t.Error("active-set deferral never engaged")
	}
}

// TestActiveSetEquivalenceClosedLoop proves the equivalence on a
// closed-loop mcsim workload, where injection reacts to deliveries. The
// lazy/sharded arms run with the event-horizon path enabled (mcsim
// implements traffic.NextInjector, so fast-forward engages even with a
// Workload attached) while the eager arm disables it — the comparison
// therefore also pins horizon-skip exactness against tick-by-tick
// execution. Both the engine Results and the workload's own stats must
// match.
func TestActiveSetEquivalenceClosedLoop(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	params := mcsim.DefaultSystem(topo)
	params.Core.Instructions = 20_000

	run := func(eager bool, shards int) (*sim.Result, mcsim.Stats) {
		w, err := mcsim.New(params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Topo:           topo,
			Spec:           policy.DozzNoC(policy.ReactiveSelector{}),
			Workload:       w,
			NoActiveSet:    eager,
			NoFastForward:  eager,
			Shards:         shards,
			ShardMinActive: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatal("closed-loop run did not finish")
		}
		return res, w.Stats()
	}
	lazy, lazyStats := run(false, 1)
	eager, eagerStats := run(true, 1)
	if lazy.LazySkippedRouterTicks == 0 {
		t.Error("active-set deferral never engaged on the closed-loop workload")
	}
	zeroSchedulingDiagnostics(lazy)
	zeroSchedulingDiagnostics(eager)
	if !reflect.DeepEqual(lazy, eager) {
		t.Errorf("active-set result differs from eager tick-by-tick:\nlazy:  %+v\neager: %+v", lazy, eager)
	}
	if !reflect.DeepEqual(lazyStats, eagerStats) {
		t.Errorf("workload stats differ:\nlazy:  %+v\neager: %+v", lazyStats, eagerStats)
	}
	// Closed-loop injection reacts to deliveries, so a sharded sweep that
	// reordered deliveries or staged counter folds wrongly would feed back
	// into the workload's own statistics — both must stay bit-exact.
	for _, k := range []int{2, 4} {
		sharded, shardedStats := run(false, k)
		zeroSchedulingDiagnostics(sharded)
		if !reflect.DeepEqual(sharded, eager) {
			t.Errorf("Shards=%d closed-loop result differs from serial:\nsharded: %+v\nserial:  %+v", k, sharded, eager)
		}
		if !reflect.DeepEqual(shardedStats, eagerStats) {
			t.Errorf("Shards=%d workload stats differ:\nsharded: %+v\nserial:  %+v", k, shardedStats, eagerStats)
		}
	}
}

// bandedTrace keeps the top two and bottom two router rows of a mesh
// exchanging row-local traffic for the whole horizon while everything in
// between stays silent. With row-aligned shards the busy bands sit deep
// inside the first and last shard, every boundary margin stays inert,
// and the quiet-margin predicate admits concurrent sweeps on nearly
// every tick — the geometry the sharded engine is built for.
func bandedTrace(topo topology.Topology, horizon int64) *traffic.Trace {
	width, rows := topo.Width(), topo.Height()
	band := func(row0 int) []int {
		cores := make([]int, 0, 2*width)
		for row := row0; row < row0+2; row++ {
			for x := 0; x < width; x++ {
				cores = append(cores, topo.CoreAt(topo.RouterAt(x, row), 0))
			}
		}
		return cores
	}
	top, bottom := band(0), band(rows-2)
	tr := &traffic.Trace{Name: "banded", Cores: topo.NumCores(), Horizon: horizon}
	for t, i := int64(0), 0; t < horizon; t, i = t+2, i+1 {
		tr.Entries = append(tr.Entries,
			traffic.Entry{Time: t, Src: top[i%len(top)], Dst: top[(i+3)%len(top)], Kind: flit.Request},
			traffic.Entry{Time: t, Src: bottom[i%len(bottom)], Dst: bottom[(i+5)%len(bottom)], Kind: flit.Request})
	}
	return tr
}

// TestShardedSweepEngagesAndMatchesSerial drives a mesh tall enough for
// real shard interiors (8x16: at Shards=4 each shard owns four rows)
// with banded traffic that keeps two distant shards busy at once, and
// requires both that concurrent sweeps actually engage (ParallelTicks >
// 0 — without this the bit-exactness checks would be vacuous) and that
// every model's Result is deeply equal to the serial engine's.
func TestShardedSweepEngagesAndMatchesSerial(t *testing.T) {
	topo := topology.NewMesh(8, 16)
	tr := bandedTrace(topo, 20_000)
	s := core.NewSuite(topo, core.Options{Horizon: 20_000, Seed: 3})
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	for _, kind := range core.AllKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			runK := func(shards int) *sim.Result {
				spec, err := s.Spec(kind)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Topo:           topo,
					Spec:           spec,
					Trace:          tr,
					Shards:         shards,
					ShardMinActive: -1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := runK(1)
			if serial.ParallelTicks != 0 {
				t.Fatalf("Shards=1 run counted %d parallel ticks", serial.ParallelTicks)
			}
			zeroSchedulingDiagnostics(serial)
			for _, k := range []int{2, 4} {
				sharded := runK(k)
				if sharded.ParallelTicks == 0 {
					t.Errorf("Shards=%d never swept concurrently on banded traffic", k)
				}
				zeroSchedulingDiagnostics(sharded)
				if !reflect.DeepEqual(sharded, serial) {
					t.Errorf("Shards=%d result differs from serial:\nsharded: %+v\nserial:  %+v", k, sharded, serial)
				}
			}
		})
	}
}

// probeSample is one occupancy observation made through the public
// feature-extractor hook.
type probeSample struct {
	Router   int
	Tick     int64
	Occupied int
	Cycle    int64
}

// probeExtractor wraps a real extractor and records, at every
// epoch-boundary Collect call, the router's occupancy aggregate and
// local cycle counter — the state DESIGN.md §5b says must never be
// sampled while a router is deferred and behind.
type probeExtractor struct {
	inner sim.FeatureExtractor
	log   []probeSample
}

func (p *probeExtractor) Collect(routerID int, net *network.Network, ctrl *policy.Controller, ibu float64, now timing.Tick) []float64 {
	p.log = append(p.log, probeSample{
		Router:   routerID,
		Tick:     int64(now),
		Occupied: net.Routers[routerID].Occupied(),
		Cycle:    net.Routers[routerID].LocalCycle(),
	})
	return p.inner.Collect(routerID, net, ctrl, ibu, now)
}

// TestEpochBarrierGuardsOccupancySampling is the regression test for the
// §5b barrier precondition: the only path the public API offers for
// sampling a router's occupancy mid-run is the epoch-boundary extractor
// hook, and every observation it yields must come from fully caught-up
// state. A lazily scheduled run (deferral + fast-forward + arming all
// engaged) must produce the identical observation log — occupancy AND
// local cycle counters — as a fully eager run; a missed catchUpAll would
// leave a deferred router's cycle counter behind and diverge the log.
// (Inside the engine the same precondition is asserted outright: the
// epoch boundary panics if any router's catch-up tick lags the epoch
// tick.)
func TestEpochBarrierGuardsOccupancySampling(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	p, ok := traffic.ProfileByName("fft")
	if !ok {
		t.Fatal("unknown profile fft")
	}
	g := traffic.Generator{Topo: topo, Horizon: 8000, Seed: 3}
	tr := g.Generate(p)
	run := func(eager bool) (*probeExtractor, *sim.Result) {
		probe := &probeExtractor{inner: features.NewExtractor(topo)}
		res, err := sim.Run(sim.Config{
			Topo:          topo,
			Spec:          policy.DozzNoC(policy.ReactiveSelector{}),
			Trace:         tr,
			Extractor:     probe,
			NoActiveSet:   eager,
			NoFastForward: eager,
		})
		if err != nil {
			t.Fatal(err)
		}
		return probe, res
	}
	lazyProbe, lazyRes := run(false)
	eagerProbe, _ := run(true)
	if lazyRes.LazySkippedRouterTicks == 0 {
		t.Fatal("active-set deferral never engaged; the probe proves nothing")
	}
	if len(lazyProbe.log) == 0 {
		t.Fatal("extractor hook never fired")
	}
	if !reflect.DeepEqual(lazyProbe.log, eagerProbe.log) {
		t.Errorf("epoch-boundary occupancy observations diverge between lazy and eager runs (%d vs %d samples): a deferred router was sampled without the catch-up barrier", len(lazyProbe.log), len(eagerProbe.log))
	}
}
