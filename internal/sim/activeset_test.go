// Active-set scheduling equivalence harness, the per-router analogue of
// fastforward_test.go. The property locked down here: deferring dormant
// routers and catching them up in closed form is bit-exact — every
// Result field except the two scheduling diagnostics is deeply equal
// between a lazy run and a fully eager tick-by-tick run, for all five
// model kinds on a train and a test trace, and for a closed-loop mcsim
// workload (a regime the quiescent-window fast-forward never covers).
package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mcsim"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// zeroSchedulingDiagnostics clears the two Result fields that are
// allowed to differ between scheduling strategies: which ticks were
// covered by the global fast-forward versus the per-router lazy path is
// a property of the engine's schedule, not of the simulated hardware.
func zeroSchedulingDiagnostics(r *sim.Result) {
	r.FastForwardedTicks = 0
	r.LazySkippedRouterTicks = 0
}

// runActiveSetPair executes one configuration with default scheduling
// (active set + fast-forward) and fully eager (both disabled).
func runActiveSetPair(t *testing.T, s *core.Suite, kind core.ModelKind, trace string, collect bool) (lazy, eager *sim.Result) {
	t.Helper()
	spec, err := s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(trace)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{
		Topo:           s.Topo,
		Spec:           spec,
		Trace:          tr,
		CollectDataset: collect,
		CollectSeries:  collect,
	}
	lazy, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh spec gives stateful selectors (ML+TURBO) a clean slate, as
	// the first run would have mutated shared counters.
	base.Spec, err = s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	base.NoActiveSet = true
	base.NoFastForward = true
	eager, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

// TestActiveSetEquivalence proves active-set scheduling is bit-exact:
// for all five model kinds on a train and a test trace, every Result
// field except the scheduling diagnostics is deeply equal between a
// default (lazy) run and a fully eager tick-by-tick run.
func TestActiveSetEquivalence(t *testing.T) {
	s := passthroughSuite(t)
	engaged := false
	for _, kind := range core.AllKinds {
		for _, trace := range equivTraces {
			kind, trace := kind, trace
			t.Run(kind.String()+"/"+trace, func(t *testing.T) {
				lazy, eager := runActiveSetPair(t, s, kind, trace, false)
				if eager.LazySkippedRouterTicks != 0 {
					t.Fatalf("NoActiveSet run deferred %d router-ticks", eager.LazySkippedRouterTicks)
				}
				if lazy.LazySkippedRouterTicks > 0 {
					engaged = true
				}
				zeroSchedulingDiagnostics(lazy)
				zeroSchedulingDiagnostics(eager)
				if !reflect.DeepEqual(lazy, eager) {
					t.Errorf("active-set result differs from eager tick-by-tick:\nlazy:  %+v\neager: %+v", lazy, eager)
				}
			})
		}
	}
	if !engaged {
		t.Error("active-set deferral never engaged on any configuration; equivalence test is vacuous")
	}
}

// TestActiveSetEquivalenceCollecting repeats the equivalence check with
// dataset harvesting and series collection on, so the epoch-boundary
// catch-up barrier (IBU labels, feature vectors, series snapshots) is
// also proven exact.
func TestActiveSetEquivalenceCollecting(t *testing.T) {
	s := passthroughSuite(t)
	for _, kind := range []core.ModelKind{core.KindDozzNoC, core.KindPG} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			lazy, eager := runActiveSetPair(t, s, kind, "blackscholes", true)
			zeroSchedulingDiagnostics(lazy)
			zeroSchedulingDiagnostics(eager)
			if !reflect.DeepEqual(lazy.Dataset, eager.Dataset) {
				t.Error("harvested datasets differ between active-set and eager runs")
			}
			if !reflect.DeepEqual(lazy.Series, eager.Series) {
				t.Error("epoch series differ between active-set and eager runs")
			}
			if !reflect.DeepEqual(lazy, eager) {
				t.Errorf("active-set result differs from eager tick-by-tick:\nlazy:  %+v\neager: %+v", lazy, eager)
			}
		})
	}
}

// TestActiveSetLazyTicksScheduleInvariant pins the diagnostic itself:
// because the active set never contains a deferrable router when the
// quiescent-window fast-forward fires, the number of lazily deferred
// router-ticks is identical whether or not global fast-forward engages.
func TestActiveSetLazyTicksScheduleInvariant(t *testing.T) {
	s := passthroughSuite(t)
	ff, slow := runPair(t, s, core.KindDozzNoC, "fft", false)
	if ff.LazySkippedRouterTicks != slow.LazySkippedRouterTicks {
		t.Errorf("lazy router-ticks depend on fast-forward: ff=%d tick-by-tick=%d",
			ff.LazySkippedRouterTicks, slow.LazySkippedRouterTicks)
	}
	if ff.LazySkippedRouterTicks == 0 {
		t.Error("active-set deferral never engaged")
	}
}

// TestActiveSetEquivalenceClosedLoop proves the equivalence on a
// closed-loop mcsim workload, where injection reacts to deliveries and
// global fast-forward never engages — the regime active-set scheduling
// was built for. Both the engine Results and the workload's own stats
// must match.
func TestActiveSetEquivalenceClosedLoop(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	params := mcsim.DefaultSystem(topo)
	params.Core.Instructions = 20_000

	run := func(eager bool) (*sim.Result, mcsim.Stats) {
		w, err := mcsim.New(params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Topo:          topo,
			Spec:          policy.DozzNoC(policy.ReactiveSelector{}),
			Workload:      w,
			NoActiveSet:   eager,
			NoFastForward: eager,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatal("closed-loop run did not finish")
		}
		return res, w.Stats()
	}
	lazy, lazyStats := run(false)
	eager, eagerStats := run(true)
	if lazy.LazySkippedRouterTicks == 0 {
		t.Error("active-set deferral never engaged on the closed-loop workload")
	}
	zeroSchedulingDiagnostics(lazy)
	zeroSchedulingDiagnostics(eager)
	if !reflect.DeepEqual(lazy, eager) {
		t.Errorf("active-set result differs from eager tick-by-tick:\nlazy:  %+v\neager: %+v", lazy, eager)
	}
	if !reflect.DeepEqual(lazyStats, eagerStats) {
		t.Errorf("workload stats differ:\nlazy:  %+v\neager: %+v", lazyStats, eagerStats)
	}
}
