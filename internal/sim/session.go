// Session is the engine's co-simulation entry point: a persistent run
// whose injections arrive incrementally from an external master (the
// cosim daemon, a driving simulator) instead of a pre-built trace, and
// whose clock advances in caller-driven windows instead of one shot.
//
// A Session wraps the exact engine Run uses — newEngine builds it,
// stepUntil advances it, finish closes it — so a session that schedules
// the same injections at the same ticks as a trace and then drains is
// bit-identical to Run on that trace (session_test.go pins this for all
// five paper models and Shards ∈ {1, 4}). Sessions are single-threaded:
// the caller serializes Schedule/Advance/Drain/Snapshot/Close.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/flit"
	"repro/internal/power"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// SessionStats is a point-in-time summary of a session: cumulative
// traffic counters, the exact integer latency sum over delivered
// packets, and the energy meters summed in router order (the same
// accumulation order Result uses, so the floats are bit-identical to a
// Result taken at the same tick).
type SessionStats struct {
	Tick             int64
	PacketsInjected  int64
	PacketsDelivered int64
	FlitsDelivered   int64
	LatencySumTicks  int64 // sum of delivered packets' latencies, base ticks
	LatencyCount     int64 // delivered packets contributing to the sum
	AvgLatencyTicks  float64
	StaticJ          float64
	DynamicJ         float64

	// Prediction-quality summary (see sim.Result for semantics), sourced
	// from the session's attached obs.Metrics; all zero when the session
	// runs without one.
	EpochDecisions       int64
	MeanAbsPredErr       float64
	UnderPredDecisions   int64
	OverPredDecisions    int64
	UnderPredStallTicks  int64
	OverPredStaticWasteJ float64
	PredDriftEvents      int64
}

// Session is one persistent mesh + policy model instance. Create with
// NewSession, drive with Schedule/Advance/Drain, read with Snapshot,
// and release with Close.
type Session struct {
	e      *engine
	closed bool
	res    *Result // cached by Close
}

// NewSession builds a session from a Config with nil Trace and nil
// Workload (anything else is rejected); all other knobs — topology,
// policy spec, VCs, shards, observability — mean exactly what they mean
// for Run. MaxTicks defaults to effectively unbounded for sessions;
// per-call budgets bound the work instead.
func NewSession(cfg Config) (*Session, error) {
	cfg.forSession = true
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{e: e}, nil
}

// Now returns the next base tick the session will process: tick 0 on a
// fresh session, and the first tick of the next window after an
// Advance/Drain.
func (s *Session) Now() int64 { return s.e.tick }

// Cores returns the topology's terminal count (valid Schedule indices
// are [0, Cores)).
func (s *Session) Cores() int { return s.e.cfg.Topo.NumCores() }

// Drained reports whether the last Drain stopped because the schedule
// was exhausted and the network empty (cleared by the next Schedule).
func (s *Session) Drained() bool { return s.e.drained }

// Schedule queues one packet injection at absolute tick at (>= Now) from
// core src to core dst. Entries may be scheduled out of order between
// calls; the session keeps its pending schedule time-sorted, stable on
// ties, exactly like a trace.
func (s *Session) Schedule(at int64, src, dst int, kind flit.Kind) error {
	if s.closed {
		return errors.New("sim: session closed")
	}
	e := s.e
	if at < e.tick {
		return fmt.Errorf("sim: schedule at tick %d is in the past (now %d)", at, e.tick)
	}
	cores := s.Cores()
	if src < 0 || src >= cores || dst < 0 || dst >= cores {
		return fmt.Errorf("sim: schedule cores (%d,%d) outside [0,%d)", src, dst, cores)
	}
	if src == dst {
		return fmt.Errorf("sim: schedule sends core %d to itself", src)
	}
	// Compact the consumed prefix before it can pin the backing array
	// for a long-running session (amortized O(1), same idiom as the
	// network's head-indexed FIFOs).
	if e.cursor > 1024 && e.cursor > len(e.entries)/2 {
		n := copy(e.entries, e.entries[e.cursor:])
		e.entries = e.entries[:n]
		e.cursor = 0
	}
	i := len(e.entries)
	for i > e.cursor && e.entries[i-1].Time > at {
		i--
	}
	e.entries = append(e.entries, traffic.Entry{})
	copy(e.entries[i+1:], e.entries[i:])
	e.entries[i] = traffic.Entry{Time: at, Src: src, Dst: dst, Kind: kind}
	e.drained = false
	return nil
}

// Pending returns the number of scheduled injections not yet consumed.
func (s *Session) Pending() int { return len(s.e.entries) - s.e.cursor }

// Advance processes exactly n base ticks (clamped at MaxTicks),
// regardless of drain state — an idle fabric still bills static energy,
// runs epoch boundaries and makes gating/DVFS decisions, which is the
// point of advancing wall-clock time between transfers. It returns the
// ticks actually advanced.
func (s *Session) Advance(n int64) (int64, error) {
	if s.closed {
		return 0, errors.New("sim: session closed")
	}
	if n < 0 {
		return 0, fmt.Errorf("sim: advance by %d ticks", n)
	}
	e := s.e
	start := e.tick
	limit := start + n
	if limit > e.cfg.MaxTicks || limit < start {
		limit = e.cfg.MaxTicks
	}
	e.stepUntil(limit, false)
	return e.tick - start, nil
}

// Drain advances until the pending schedule is exhausted and the network
// has emptied — Run's termination rule — or until budget ticks have been
// spent (budget <= 0 selects DefaultWorkloadMaxTicks). It reports
// whether the drain completed.
func (s *Session) Drain(budget int64) (bool, error) {
	if s.closed {
		return false, errors.New("sim: session closed")
	}
	e := s.e
	if e.drained {
		return true, nil
	}
	if budget <= 0 {
		budget = DefaultWorkloadMaxTicks
	}
	limit := e.tick + budget
	if limit > e.cfg.MaxTicks || limit < e.tick {
		limit = e.cfg.MaxTicks
	}
	return e.stepUntil(limit, true), nil
}

// Snapshot catches every deferred router up to Now (exact by the same
// closed forms the engine's own barriers use) and returns the session's
// cumulative counters and energy totals.
func (s *Session) Snapshot() SessionStats {
	e := s.e
	if !s.closed && e.lazy {
		e.catchUpAll(e.tick)
	}
	var total power.Meter
	for i := range e.meter {
		total.Add(&e.meter[i])
	}
	st := SessionStats{
		Tick:             e.tick,
		PacketsInjected:  e.net.PacketsInjected(),
		PacketsDelivered: e.net.PacketsDelivered(),
		FlitsDelivered:   e.net.FlitsDelivered(),
		LatencySumTicks:  e.sumLatency,
		LatencyCount:     e.nLatency,
		StaticJ:          total.StaticJoules(),
		DynamicJ:         total.DynamicJoules(),
	}
	if st.LatencyCount > 0 {
		st.AvgLatencyTicks = float64(st.LatencySumTicks) / float64(st.LatencyCount)
	}
	if e.obsM != nil {
		snap := e.obsM.Snapshot()
		st.EpochDecisions = snap.EpochDecisions
		st.MeanAbsPredErr = snap.MeanAbsPredErr
		st.UnderPredDecisions = snap.UnderPredDecisions
		st.OverPredDecisions = snap.OverPredDecisions
		st.UnderPredStallTicks = snap.UnderPredStallTicks
		st.OverPredStaticWasteJ = snap.OverPredStaticWasteJ
		st.PredDriftEvents = snap.DriftEvents
	}
	return st
}

// EstimateLatency returns a cheap deterministic latency estimate in base
// ticks for a packet injected now: per-hop pipeline and wire delay along
// the routing path, tail-flit serialization, and a backlog penalty for
// packets already queued at the source core. It is the co-sim reply an
// external master consumes as backpressure before the true latency is
// known; it never touches simulation state.
func (s *Session) EstimateLatency(src, dst int, kind flit.Kind) (int64, error) {
	cores := s.Cores()
	if src < 0 || src >= cores || dst < 0 || dst >= cores {
		return 0, fmt.Errorf("sim: estimate cores (%d,%d) outside [0,%d)", src, dst, cores)
	}
	t := s.e.cfg.Topo
	r, last := t.RouterOf(src), t.RouterOf(dst)
	var hops int64
	for r != last {
		r = topology.NextRouter(t, r, dst)
		hops++
	}
	flits := int64(kind.Flits())
	est := (hops + 1) * int64(s.e.cfg.Pipeline)
	est += hops * s.e.cfg.LinkTicks
	est += flits - 1
	est += int64(s.e.net.QueuedPackets(src)) * flits
	return est, nil
}

// Result finalizes the session — final catch-up, observability fold,
// tracer flush, worker shutdown — and returns the full run Result, built
// by the same code Run uses (so a drained session replaying a trace is
// DeepEqual to Run on it). Close is idempotent; later calls return the
// cached Result.
func (s *Session) Close() *Result {
	if s.closed {
		return s.res
	}
	e := s.e
	e.finish()
	e.stopWorkers()
	s.res = e.result(e.tick, e.drained)
	s.closed = true
	return s.res
}
