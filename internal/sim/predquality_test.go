// Prediction-quality layer integration tests: the per-shard histogram
// staging must fold bucket-identical to a serial run for every paper
// model, the /metrics exposition for a fixed trace is pinned as golden
// bytes (and must satisfy the vendored exposition checker, live over
// HTTP too), and the Page-Hinkley drift detector must fire on a
// phase-shifting workload while staying silent on a stationary one.
package sim_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/flit"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestObsHistFoldMatchesSerial proves the merge-by-addition property end
// to end: for all five paper models, the histograms staged across 2 and
// 4 shard lanes and folded at the epoch barrier are bucket-identical to
// the single-lane serial run's. WakeStall is the load-bearing case — it
// is fed from shard goroutines during concurrent sweeps; AbsErr and
// Latency stage on the engine goroutine and must trivially agree.
func TestObsHistFoldMatchesSerial(t *testing.T) {
	topo := topology.NewMesh(8, 16)
	tr := bandedTrace(topo, 20_000)
	run := func(mk func() policy.Spec, shards int) obs.Snapshot {
		t.Helper()
		observer := obs.New()
		_, err := sim.Run(sim.Config{
			Topo:           topo,
			Spec:           mk(),
			Trace:          tr,
			Shards:         shards,
			ShardMinActive: -1,
			Obs:            observer,
		})
		if err != nil {
			t.Fatal(err)
		}
		return observer.Metrics.Snapshot()
	}
	for _, mk := range sessionSpecMakers(topo.NumRouters()) {
		name := mk().Name
		serial := run(mk, 1)
		if serial.AbsErrHist.Count == 0 {
			t.Errorf("%s: serial run observed no prediction errors", name)
		}
		for _, shards := range []int{2, 4} {
			sharded := run(mk, shards)
			if !reflect.DeepEqual(sharded.AbsErrHist, serial.AbsErrHist) {
				t.Errorf("%s shards=%d: AbsErr histogram differs:\nsharded: %+v\nserial:  %+v",
					name, shards, sharded.AbsErrHist, serial.AbsErrHist)
			}
			if !reflect.DeepEqual(sharded.LatencyHist, serial.LatencyHist) {
				t.Errorf("%s shards=%d: Latency histogram differs:\nsharded: %+v\nserial:  %+v",
					name, shards, sharded.LatencyHist, serial.LatencyHist)
			}
			if !reflect.DeepEqual(sharded.WakeStallHist, serial.WakeStallHist) {
				t.Errorf("%s shards=%d: WakeStall histogram differs:\nsharded: %+v\nserial:  %+v",
					name, shards, sharded.WakeStallHist, serial.WakeStallHist)
			}
			if sharded.UnderPredDecisions != serial.UnderPredDecisions ||
				sharded.OverPredDecisions != serial.OverPredDecisions ||
				sharded.UnderPredStallTicks != serial.UnderPredStallTicks ||
				sharded.OverPredStaticWasteJ != serial.OverPredStaticWasteJ ||
				sharded.DecisionsByMode != serial.DecisionsByMode {
				t.Errorf("%s shards=%d: attribution counters differ:\nsharded: %+v\nserial:  %+v",
					name, shards, sharded, serial)
			}
			if !reflect.DeepEqual(sharded.RouterUnderPred, serial.RouterUnderPred) ||
				!reflect.DeepEqual(sharded.RouterOverPred, serial.RouterOverPred) {
				t.Errorf("%s shards=%d: per-router attribution differs", name, shards)
			}
		}
	}
}

// fixedMetricsSnapshot runs the same fixed trace the series golden uses
// and returns the deterministic snapshot.
func fixedMetricsSnapshot(t *testing.T) obs.Snapshot {
	t.Helper()
	topo := topology.NewMesh(4, 4)
	tr := traffic.Synthetic(topo, traffic.UniformRandom, 0.01, 5000, 2)
	observer := obs.New()
	if _, err := sim.Run(sim.Config{
		Topo:  topo,
		Spec:  policy.DozzNoC(policy.ReactiveSelector{}),
		Trace: tr,
		Obs:   observer,
	}); err != nil {
		t.Fatal(err)
	}
	return observer.Metrics.Snapshot().Deterministic()
}

// TestMetricsGoldenExposition pins the /metrics bytes for a fixed trace:
// the rendered deterministic snapshot must match the golden file exactly
// (regenerate with -update) and pass the vendored exposition checker.
func TestMetricsGoldenExposition(t *testing.T) {
	snap := fixedMetricsSnapshot(t)
	got := obs.RenderMetrics(&snap)
	if errs := obs.LintExposition(got); len(errs) != 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}
	path := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("/metrics exposition differs from golden (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsEndpointLint scrapes /metrics from a live server after an
// observed run and validates the bytes with the vendored checker — the
// `make metrics-lint` gate.
func TestMetricsEndpointLint(t *testing.T) {
	fixedMetricsSnapshot(t) // folds publish the live snapshot as a side effect
	srv, err := obs.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	if len(body) == 0 {
		t.Fatal("live /metrics is empty after an observed run")
	}
	if errs := obs.LintExposition(body); len(errs) != 0 {
		t.Fatalf("live /metrics fails exposition lint: %v\n%s", errs, body)
	}
	for _, want := range []string{"dozznoc_pred_abs_err_ibu_bucket", "dozznoc_underpred_decisions_total"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("live /metrics missing %q", want)
		}
	}
}

// constPredictor is a frozen model: it always predicts the IBU it was
// trained on, the stand-in for offline Ridge weights gone stale.
type constPredictor float64

func (c constPredictor) Predict([]float64) float64 { return float64(c) }

// phaseTrace builds a two-phase trace on topo: light row-local traffic
// for the first half of the horizon, then a heavy four-corner hotspot
// burst for the second half. stationary=true extends phase one over the
// whole horizon instead.
func phaseTrace(topo topology.Topology, horizon int64, stationary bool) *traffic.Trace {
	tr := &traffic.Trace{Name: "phase-shift", Cores: topo.NumCores(), Horizon: horizon}
	if stationary {
		tr.Name = "stationary"
	}
	width, rows := topo.Width(), topo.Height()
	core := func(x, y int) int { return topo.CoreAt(topo.RouterAt(x, y), 0) }
	shift := horizon / 2
	hot := []int{core(0, 0), core(width-1, 0), core(0, rows-1), core(width-1, rows-1)}
	for t, i := int64(0), 0; t < horizon; t, i = t+4, i+1 {
		if stationary || t < shift {
			// Light, stationary: one row-local packet every 4 ticks.
			row := i % rows
			tr.Entries = append(tr.Entries, traffic.Entry{
				Time: t, Src: core(i%width, row), Dst: core((i+1)%width, row), Kind: flit.Request,
			})
			continue
		}
		// Heavy hotspot: every tick in this window, all corners converge.
		for dt := int64(0); dt < 4; dt++ {
			for j, h := range hot {
				tr.Entries = append(tr.Entries, traffic.Entry{
					Time: t + dt, Src: core((i+j)%width, (i+j)%rows), Dst: h, Kind: flit.Request,
				})
			}
		}
	}
	return tr
}

// driftRun executes one frozen-weights DVFS+ML run and returns the drift
// fire count.
func driftRun(t *testing.T, stationary bool) int64 {
	t.Helper()
	topo := topology.NewMesh(4, 4)
	observer := obs.New()
	observer.Metrics.SetDrift(obs.DriftConfig{}) // paper defaults
	spec := policy.DVFSML(policy.ProactiveSelector{Model: constPredictor(0.01), ModelName: "frozen"})
	res, err := sim.Run(sim.Config{
		Topo:  topo,
		Spec:  spec,
		Trace: phaseTrace(topo, 40_000, stationary),
		Obs:   observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredDriftEvents != observer.Metrics.DriftEvents() {
		t.Fatalf("Result.PredDriftEvents %d != obs %d", res.PredDriftEvents, observer.Metrics.DriftEvents())
	}
	return res.PredDriftEvents
}

// TestDriftSmoke is the make-check drift gate: a frozen-weights model
// must trip the Page-Hinkley detector when the workload shifts from the
// regime it was "trained" on to a heavy hotspot phase, and must stay
// silent when the light phase runs stationary for the whole horizon.
func TestDriftSmoke(t *testing.T) {
	if n := driftRun(t, true); n != 0 {
		t.Errorf("drift detector fired %d times on the stationary trace", n)
	}
	if n := driftRun(t, false); n == 0 {
		t.Error("drift detector stayed silent across the banded->hotspot phase shift")
	}
}
