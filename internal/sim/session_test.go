// Session equivalence harness: the co-sim entry point must be the same
// engine, not a lookalike. A session that schedules a trace's entries at
// their trace ticks — some up front, some only after time has already
// advanced — and then drains must produce a Result DeepEqual to Run on
// that trace, for all five paper models and Shards ∈ {1, 4}.
package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/flit"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// sessionSpecMakers builds a fresh spec per run: stateful selectors
// (ML+TURBO) mutate shared counters, so Run and the session replay must
// each get a clean slate.
func sessionSpecMakers(routers int) []func() policy.Spec {
	return []func() policy.Spec{
		policy.Baseline,
		policy.PowerGated,
		func() policy.Spec { return policy.DVFSML(policy.ReactiveSelector{}) },
		func() policy.Spec { return policy.DozzNoC(policy.ReactiveSelector{}) },
		func() policy.Spec { return policy.MLTurbo(policy.ReactiveSelector{}, routers) },
	}
}

func sessionTrace(t *testing.T, topo topology.Topology) *traffic.Trace {
	t.Helper()
	p, ok := traffic.ProfileByName("fft")
	if !ok {
		t.Fatal("missing fft profile")
	}
	g := traffic.Generator{Topo: topo, Horizon: 8000, Seed: 42}
	return g.Generate(p)
}

// TestSessionReplaysTraceBitExact feeds a trace through a Session in two
// scheduling waves separated by an Advance window, drains, and requires
// the closed session's Result to DeepEqual Run's (scheduling diagnostics
// zeroed — FF window splits legitimately differ across window
// boundaries).
func TestSessionReplaysTraceBitExact(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	tr := sessionTrace(t, topo)
	const maxTicks = 400_000
	for _, shards := range []int{1, 4} {
		for _, mkSpec := range sessionSpecMakers(topo.NumRouters()) {
			spec := mkSpec()
			cfg := sim.Config{
				Topo:           topo,
				Spec:           spec,
				LinkTicks:      2,
				Shards:         shards,
				ShardMinActive: -1,
				MaxTicks:       maxTicks,
			}
			runCfg := cfg
			runCfg.Trace = tr
			want, err := sim.Run(runCfg)
			if err != nil {
				t.Fatalf("%s/shards=%d: run: %v", spec.Name, shards, err)
			}

			cfg.Spec = mkSpec()
			sess, err := sim.NewSession(cfg)
			if err != nil {
				t.Fatalf("%s/shards=%d: session: %v", spec.Name, shards, err)
			}
			half := len(tr.Entries) / 2
			for _, en := range tr.Entries[:half] {
				if err := sess.Schedule(en.Time, en.Src, en.Dst, en.Kind); err != nil {
					t.Fatalf("%s/shards=%d: schedule: %v", spec.Name, shards, err)
				}
			}
			// Advance into the schedule, stopping no later than the first
			// not-yet-scheduled entry so the second wave is never late.
			if _, err := sess.Advance(tr.Entries[half].Time); err != nil {
				t.Fatalf("%s/shards=%d: advance: %v", spec.Name, shards, err)
			}
			for _, en := range tr.Entries[half:] {
				if err := sess.Schedule(en.Time, en.Src, en.Dst, en.Kind); err != nil {
					t.Fatalf("%s/shards=%d: schedule late: %v", spec.Name, shards, err)
				}
			}
			done, err := sess.Drain(maxTicks)
			if err != nil {
				t.Fatalf("%s/shards=%d: drain: %v", spec.Name, shards, err)
			}
			if !done {
				t.Fatalf("%s/shards=%d: session did not drain", spec.Name, shards)
			}
			snap := sess.Snapshot()
			got := sess.Close()

			if snap.StaticJ != got.StaticJ || snap.DynamicJ != got.DynamicJ {
				t.Fatalf("%s/shards=%d: snapshot energy (%g,%g) != result (%g,%g)",
					spec.Name, shards, snap.StaticJ, snap.DynamicJ, got.StaticJ, got.DynamicJ)
			}
			if snap.PacketsDelivered != got.PacketsDelivered || snap.LatencyCount != snap.PacketsDelivered {
				t.Fatalf("%s/shards=%d: snapshot counters inconsistent: %+v vs delivered %d",
					spec.Name, shards, snap, got.PacketsDelivered)
			}
			zeroSchedulingDiagnostics(want)
			zeroSchedulingDiagnostics(got)
			// The run label is metadata, not simulated hardware: a session
			// has no trace name to carry.
			want.Trace, got.Trace = "", ""
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/shards=%d: session result diverges from Run:\nsession: %+v\nrun:     %+v",
					spec.Name, shards, got, want)
			}
		}
	}
}

// TestSessionIdleAdvanceBillsTime pins the service-mode semantics Run
// never exercises: advancing an idle session still spends wall-clock
// ticks (static energy, epoch decisions) and is cheap via fast-forward.
func TestSessionIdleAdvanceBillsTime(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	sess, err := sim.NewSession(sim.Config{Topo: topo, Spec: policy.DozzNoC(policy.ReactiveSelector{})})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	before := sess.Snapshot()
	n, err := sess.Advance(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10_000 {
		t.Fatalf("advanced %d ticks, want 10000", n)
	}
	after := sess.Snapshot()
	if after.Tick != 10_000 || sess.Now() != 10_000 {
		t.Fatalf("clock at %d/%d, want 10000", after.Tick, sess.Now())
	}
	if after.StaticJ <= before.StaticJ {
		t.Fatalf("idle advance billed no static energy (%g -> %g)", before.StaticJ, after.StaticJ)
	}
	if after.DynamicJ != before.DynamicJ {
		t.Fatalf("idle advance billed dynamic energy (%g -> %g)", before.DynamicJ, after.DynamicJ)
	}
}

// TestSessionValidation covers the session's argument checks and
// post-Close behavior.
func TestSessionValidation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	sess, err := sim.NewSession(sim.Config{Topo: topo, Spec: policy.Baseline()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewSession(sim.Config{Topo: topo, Spec: policy.Baseline(), Trace: sessionTrace(t, topo)}); err == nil {
		t.Fatal("session with a trace was accepted")
	}
	if err := sess.Schedule(0, 0, 0, flit.Request); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := sess.Schedule(0, -1, 2, flit.Request); err == nil {
		t.Fatal("negative core accepted")
	}
	if err := sess.Schedule(0, 0, topo.NumCores(), flit.Request); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if _, err := sess.Advance(-1); err == nil {
		t.Fatal("negative advance accepted")
	}
	if _, err := sess.Advance(100); err != nil {
		t.Fatal(err)
	}
	if err := sess.Schedule(50, 0, 1, flit.Request); err == nil {
		t.Fatal("past-tick schedule accepted")
	}
	if est, err := sess.EstimateLatency(0, topo.NumCores()-1, flit.Response); err != nil || est <= 0 {
		t.Fatalf("estimate (%d, %v)", est, err)
	}
	if _, err := sess.EstimateLatency(0, -5, flit.Response); err == nil {
		t.Fatal("estimate with bad core accepted")
	}
	res := sess.Close()
	if res == nil || sess.Close() != res {
		t.Fatal("Close not idempotent")
	}
	if err := sess.Schedule(1000, 0, 1, flit.Request); err == nil {
		t.Fatal("schedule after Close accepted")
	}
	if _, err := sess.Advance(1); err == nil {
		t.Fatal("advance after Close accepted")
	}
	if _, err := sess.Drain(0); err == nil {
		t.Fatal("drain after Close accepted")
	}
}
