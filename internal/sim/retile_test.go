// Load-aware re-split stress harness (DESIGN.md §5g). The tiling tests
// drive traffic whose busy rows move mid-run, so the initially balanced
// partition goes stale and the epoch-fold re-split has to chase the
// load, and prove the re-laid partitions stay bit-exact against the
// serial engine for every model kind.
package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// phaseShiftTrace cuts the horizon into phases of phaseLen ticks; each
// phase draws a fresh pair of busy two-row bands (one per half of the
// mesh) exchanging randomized band-local bursts, plus a hotspot router
// that the upper band streams requests at. Band and hotspot positions
// move between phases, so a partition balanced for one phase is wrong
// for the next — and a band that lands on a stale cut keeps that
// boundary's margin busy, which is exactly the geometry the load-aware
// tiler exists to escape.
func phaseShiftTrace(topo topology.Topology, horizon, phaseLen, seed int64) *traffic.Trace {
	rng := rand.New(rand.NewSource(seed))
	width, rows := topo.Width(), topo.Height()
	band := func(row0 int) []int {
		cores := make([]int, 0, 2*width)
		for row := row0; row < row0+2; row++ {
			for x := 0; x < width; x++ {
				cores = append(cores, topo.CoreAt(topo.RouterAt(x, row), 0))
			}
		}
		return cores
	}
	kinds := []flit.Kind{flit.Request, flit.Request, flit.Response}
	tr := &traffic.Trace{Name: "phase-shift", Cores: topo.NumCores(), Horizon: horizon}
	for p0 := int64(0); p0 < horizon; p0 += phaseLen {
		top := band(rng.Intn(rows/2 - 1))
		bottom := band(rows/2 + rng.Intn(rows/2-1))
		hot := topo.CoreAt(topo.RouterAt(rng.Intn(width), rng.Intn(rows)), 0)
		end := p0 + phaseLen
		if end > horizon {
			end = horizon
		}
		for t := p0; t < end; t++ {
			for _, cores := range [][]int{top, bottom} {
				for burst := rng.Intn(2); burst > 0; burst-- {
					si := rng.Intn(len(cores))
					dst := cores[(si+1+rng.Intn(len(cores)-1))%len(cores)]
					tr.Entries = append(tr.Entries, traffic.Entry{
						Time: t, Src: cores[si], Dst: dst, Kind: kinds[rng.Intn(len(kinds))],
					})
				}
			}
			if t%5 == 0 {
				if src := top[rng.Intn(len(top))]; src != hot {
					tr.Entries = append(tr.Entries, traffic.Entry{Time: t, Src: src, Dst: hot, Kind: flit.Request})
				}
			}
		}
	}
	return tr
}

// TestRetileRandomizedStress is the acceptance suite for load-aware
// shard tiling: phase-shifting banded+hotspot traffic on two mesh
// sizes, every paper model, Shards in {1,2,4}, with wire latency so the
// staged landing path rides along. Every sharded Result must be deeply
// equal to the serial engine's even as the partition is re-laid
// mid-run; across each mesh the sharded runs must both sweep
// concurrently and actually re-split, otherwise the equivalence proof
// would be vacuous.
func TestRetileRandomizedStress(t *testing.T) {
	meshes := []struct {
		w, h    int
		horizon int64
	}{
		{8, 16, 15_000},
		{16, 32, 8_000},
	}
	for _, m := range meshes {
		m := m
		t.Run(fmt.Sprintf("mesh%dx%d", m.w, m.h), func(t *testing.T) {
			topo := topology.NewMesh(m.w, m.h)
			tr := phaseShiftTrace(topo, m.horizon, 2_500, 11)
			s := core.NewSuite(topo, core.Options{Horizon: m.horizon, Seed: 3})
			for _, k := range core.MLKinds {
				s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
			}
			var parallelTicks, resplits int64
			for _, kind := range core.AllKinds {
				kind := kind
				t.Run(kind.String(), func(t *testing.T) {
					runK := func(shards int) *sim.Result {
						spec, err := s.Spec(kind)
						if err != nil {
							t.Fatal(err)
						}
						res, err := sim.Run(sim.Config{
							Topo:           topo,
							Spec:           spec,
							Trace:          tr,
							LinkTicks:      1,
							Shards:         shards,
							ShardMinActive: -1,
						})
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					serial := runK(1)
					if serial.ShardResplits != 0 {
						t.Fatalf("Shards=1 run re-split %d times", serial.ShardResplits)
					}
					zeroSchedulingDiagnostics(serial)
					for _, k := range []int{2, 4} {
						sharded := runK(k)
						parallelTicks += sharded.ParallelTicks
						resplits += sharded.ShardResplits
						zeroSchedulingDiagnostics(sharded)
						if !reflect.DeepEqual(sharded, serial) {
							t.Errorf("Shards=%d result differs from serial:\nsharded: %+v\nserial:  %+v", k, sharded, serial)
						}
					}
				})
			}
			if parallelTicks == 0 {
				t.Error("no sharded run ever swept concurrently; retile equivalence is vacuous")
			}
			if resplits == 0 {
				t.Error("no sharded run ever re-split; load-aware tiling never engaged")
			}
		})
	}
}
