// Determinism and fast-forward equivalence harness. This lives in an
// external test package (sim_test) so it can drive the engine through
// the core.Suite API — core imports sim, so an internal test would be an
// import cycle.
//
// The two properties locked down here:
//
//  1. Determinism: the same configuration run twice produces deeply
//     equal Results, for every model kind.
//  2. Fast-forward exactness: the quiescent-window fast-forward path is
//     a bit-exact closed form of tick-by-tick execution — every counter,
//     latency, energy figure, mode-residency fraction and harvested
//     dataset row matches exactly (not approximately) with the path on
//     or off, for all five model kinds on a train and a test trace.
package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// passthroughSuite builds a reduced 4x4 suite with IBU-passthrough
// predictors installed, so ML kinds run without the training pipeline.
func passthroughSuite(t testing.TB) *core.Suite {
	t.Helper()
	s := core.NewSuite(topology.NewMesh(4, 4), core.Options{Horizon: 8000, Seed: 3})
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	return s
}

// equivTraces pairs one training-split and one test-split workload, per
// the acceptance criteria for the equivalence proof.
var equivTraces = []string{"blackscholes", "fft"}

func init() {
	for _, name := range equivTraces {
		p, ok := traffic.ProfileByName(name)
		if !ok {
			panic("unknown equivalence trace " + name)
		}
		switch {
		case name == "blackscholes" && p.Split != traffic.Train:
			panic("blackscholes is expected to be a training trace")
		case name == "fft" && p.Split != traffic.Test:
			panic("fft is expected to be a test trace")
		}
	}
}

// TestDeterminism runs every model kind twice on the same seeded trace
// and requires deeply equal Results.
func TestDeterminism(t *testing.T) {
	s := passthroughSuite(t)
	for _, kind := range core.AllKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			a, err := s.RunBenchmark(kind, "fft", 1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.RunBenchmark(kind, "fft", 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two identical runs differ:\nrun1: %+v\nrun2: %+v", a, b)
			}
		})
	}
}

// runPair executes one configuration with the fast-forward path enabled
// and disabled and returns both results.
func runPair(t *testing.T, s *core.Suite, kind core.ModelKind, trace string, collect bool) (ff, slow *sim.Result) {
	t.Helper()
	spec, err := s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(trace)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{
		Topo:           s.Topo,
		Spec:           spec,
		Trace:          tr,
		CollectDataset: collect,
		CollectSeries:  collect,
	}
	ff, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh spec gives stateful selectors (ML+TURBO) a clean slate, as
	// the first run would have mutated shared counters.
	base.Spec, err = s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	base.NoFastForward = true
	slow, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	return ff, slow
}

// TestFastForwardEquivalence proves the fast-forward path is bit-exact:
// for all five model kinds on a train and a test trace, every Result
// field except the diagnostic FastForwardedTicks is deeply equal between
// fast-forward and tick-by-tick runs.
func TestFastForwardEquivalence(t *testing.T) {
	s := passthroughSuite(t)
	engaged := false
	for _, kind := range core.AllKinds {
		for _, trace := range equivTraces {
			kind, trace := kind, trace
			t.Run(kind.String()+"/"+trace, func(t *testing.T) {
				ff, slow := runPair(t, s, kind, trace, false)
				if slow.FastForwardedTicks != 0 {
					t.Fatalf("NoFastForward run skipped %d ticks", slow.FastForwardedTicks)
				}
				if ff.FastForwardedTicks > 0 {
					engaged = true
				}
				// Whether a tick swept concurrently (and how the load spread
				// across shards) is likewise a schedule property — the
				// skipped ticks never sweep at all.
				zeroSchedulingDiagnostics(ff)
				zeroSchedulingDiagnostics(slow)
				if !reflect.DeepEqual(ff, slow) {
					t.Errorf("fast-forward result differs from tick-by-tick:\nfast: %+v\nslow: %+v", ff, slow)
				}
			})
		}
	}
	if !engaged {
		t.Error("fast-forward never engaged on any configuration; equivalence test is vacuous")
	}
}

// TestFastForwardEquivalenceCollecting repeats the equivalence check with
// dataset harvesting and series collection on, so epoch-boundary labeling
// and per-epoch snapshots are also proven exact.
func TestFastForwardEquivalenceCollecting(t *testing.T) {
	s := passthroughSuite(t)
	for _, kind := range []core.ModelKind{core.KindDozzNoC, core.KindPG} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			ff, slow := runPair(t, s, kind, "blackscholes", true)
			zeroSchedulingDiagnostics(ff)
			zeroSchedulingDiagnostics(slow)
			if !reflect.DeepEqual(ff.Dataset, slow.Dataset) {
				t.Error("harvested datasets differ between fast-forward and tick-by-tick")
			}
			if !reflect.DeepEqual(ff.Series, slow.Series) {
				t.Error("epoch series differ between fast-forward and tick-by-tick")
			}
			if !reflect.DeepEqual(ff, slow) {
				t.Errorf("fast-forward result differs from tick-by-tick:\nfast: %+v\nslow: %+v", ff, slow)
			}
		})
	}
}

// TestFastForwardSkipsIdleTime pins the engine's reason to exist: on a
// sparse trace under a gating model, a large share of simulated time is
// covered by the closed-form path.
func TestFastForwardSkipsIdleTime(t *testing.T) {
	s := passthroughSuite(t)
	res, err := s.RunBenchmark(core.KindDozzNoC, "blackscholes", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastForwardedTicks == 0 {
		t.Fatal("fast-forward never engaged on a sparse trace")
	}
	if frac := float64(res.FastForwardedTicks) / float64(res.Ticks); frac < 0.10 {
		t.Errorf("fast-forward covered only %.1f%% of %d ticks; expected a sparse trace to be mostly idle", 100*frac, res.Ticks)
	}
}
