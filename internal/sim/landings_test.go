// Sharded wire-landing equivalence harness. PR 4 moved due wire transits
// off the serial lane-0 landing path: on concurrently swept ticks the
// engine buckets each due transit by its destination router's shard and
// the shard workers land their own buckets before sweeping. These tests
// prove the parallel landing path engages under wire latency and stays
// bit-exact against the serial engine, for every model kind, under both
// the deterministic banded workload and a randomized heavy-traffic one.
package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// randomBandedTrace is the randomized counterpart of bandedTrace: the top
// two and bottom two router rows exchange row-band-local traffic, but
// sources, destinations, packet kinds and per-tick burst sizes are drawn
// from a seeded PRNG, so the wire carries an irregular, heavy mix of
// 1-flit requests and multi-flit responses instead of a fixed cadence.
// The silent middle rows keep every shard-boundary margin inert, which is
// what lets the sharded engine sweep (and now land) concurrently.
func randomBandedTrace(topo topology.Topology, horizon int64, seed int64) *traffic.Trace {
	rng := rand.New(rand.NewSource(seed))
	width, rows := topo.Width(), topo.Height()
	band := func(row0 int) []int {
		cores := make([]int, 0, 2*width)
		for row := row0; row < row0+2; row++ {
			for x := 0; x < width; x++ {
				cores = append(cores, topo.CoreAt(topo.RouterAt(x, row), 0))
			}
		}
		return cores
	}
	bands := [][]int{band(0), band(rows - 2)}
	kinds := []flit.Kind{flit.Request, flit.Request, flit.Response}
	tr := &traffic.Trace{Name: "random-banded", Cores: topo.NumCores(), Horizon: horizon}
	for t := int64(0); t < horizon; t++ {
		for _, cores := range bands {
			for burst := rng.Intn(3); burst > 0; burst-- {
				si := rng.Intn(len(cores))
				src := cores[si]
				dst := cores[(si+1+rng.Intn(len(cores)-1))%len(cores)]
				tr.Entries = append(tr.Entries, traffic.Entry{
					Time: t, Src: src, Dst: dst, Kind: kinds[rng.Intn(len(kinds))],
				})
			}
		}
	}
	return tr
}

// TestParallelLandingsEngageAndMatchSerial is the acceptance test for the
// destination-shard landing path: an 8x16 mesh with 2-tick links and
// banded traffic, every model kind, Shards in {1,2,4}. Each sharded run
// must both land transits in parallel (ParallelLandings > 0 — without
// wire latency and concurrent ticks coinciding the equivalence check
// would be vacuous) and produce a Result deeply equal to the serial
// engine's.
func TestParallelLandingsEngageAndMatchSerial(t *testing.T) {
	topo := topology.NewMesh(8, 16)
	tr := bandedTrace(topo, 20_000)
	s := core.NewSuite(topo, core.Options{Horizon: 20_000, Seed: 3})
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	for _, kind := range core.AllKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			runK := func(shards int) *sim.Result {
				spec, err := s.Spec(kind)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Topo:           topo,
					Spec:           spec,
					Trace:          tr,
					LinkTicks:      2,
					Shards:         shards,
					ShardMinActive: -1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := runK(1)
			if serial.ParallelLandings != 0 {
				t.Fatalf("Shards=1 run counted %d parallel landings", serial.ParallelLandings)
			}
			zeroSchedulingDiagnostics(serial)
			for _, k := range []int{2, 4} {
				sharded := runK(k)
				if sharded.ParallelTicks == 0 {
					t.Errorf("Shards=%d never swept concurrently", k)
				}
				if sharded.ParallelLandings == 0 {
					t.Errorf("Shards=%d never landed a wire transit in parallel", k)
				}
				zeroSchedulingDiagnostics(sharded)
				if !reflect.DeepEqual(sharded, serial) {
					t.Errorf("Shards=%d result differs from serial:\nsharded: %+v\nserial:  %+v", k, sharded, serial)
				}
			}
		})
	}
}

// TestParallelLandingsRandomizedStress repeats the landing-equivalence
// check under randomized heavy traffic: seeded random band-local bursts
// of mixed packet kinds on 3-tick links, which keeps the wire FIFO deep,
// makes multiple transits land on the same tick across both busy shards,
// and exercises the per-shard buckets far harder than the fixed cadence.
// Three seeds, DozzNoC (the full controller) and Baseline (always-on)
// models, Shards in {1,2,4}.
func TestParallelLandingsRandomizedStress(t *testing.T) {
	topo := topology.NewMesh(8, 16)
	s := core.NewSuite(topo, core.Options{Horizon: 12_000, Seed: 3})
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	for _, seed := range []int64{1, 7, 42} {
		tr := randomBandedTrace(topo, 12_000, seed)
		for _, kind := range []core.ModelKind{core.KindDozzNoC, core.KindBaseline} {
			kind, seed := kind, seed
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				runK := func(shards int) *sim.Result {
					spec, err := s.Spec(kind)
					if err != nil {
						t.Fatal(err)
					}
					res, err := sim.Run(sim.Config{
						Topo:           topo,
						Spec:           spec,
						Trace:          tr,
						LinkTicks:      3,
						Shards:         shards,
						ShardMinActive: -1,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				serial := runK(1)
				zeroSchedulingDiagnostics(serial)
				for _, k := range []int{2, 4} {
					sharded := runK(k)
					if sharded.ParallelLandings == 0 {
						t.Errorf("seed %d Shards=%d: no parallel landings under heavy random traffic", seed, k)
					}
					zeroSchedulingDiagnostics(sharded)
					if !reflect.DeepEqual(sharded, serial) {
						t.Errorf("seed %d Shards=%d result differs from serial", seed, k)
					}
				}
			})
		}
	}
}
