// Load-aware shard tiling (DESIGN.md §5g): the partition starts as an
// even row-band split and its boundaries migrate toward the observed
// load at epoch folds. Per-row work counters (stepped router-ticks,
// owner-only writes since a row belongs to exactly one shard) are
// prefix-summed into balanced cuts, each cut snapped to the nearest row
// whose quiet margin carries no recent work — a cut through a busy band
// would fail the isolation predicate every tick and pin the engine to
// the serial fallback. Re-splits run on the engine goroutine with every
// worker parked and every router caught up, and touch only scheduling
// state (shard ranges, bitsets, arm heaps, stats/metrics lane maps), so
// results are bit-identical to any other partition by the same argument
// that makes them identical to Shards=1.
//
// This file also owns the ShardMinActive startup calibration: the
// serial-fallback threshold is derived from a measured dispatch/barrier
// round-trip instead of a fixed constant.
package sim

import (
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// layoutShards (re)derives every partition-dependent structure from
// cuts, where cuts[i] is the first mesh row of shard i (cuts[0] = 0):
// shard router ranges and active bitsets, the shardOf ownership map used
// to bucket wire landings, the staging-lane starts, and the boundary
// margins checked by the isolation predicate. Counters that accumulate
// across partitions (swept, lazyTicks) and the worker channels are left
// alone, so it is safe both at engine construction and at a re-split.
func (e *engine) layoutShards(cuts []int) {
	copy(e.cuts, cuts)
	k := len(e.shards)
	for si := 0; si < k; si++ {
		s := &e.shards[si]
		s.lo = cuts[si] * e.width
		if si+1 < k {
			s.hi = cuts[si+1] * e.width
		} else {
			s.hi = e.rows * e.width
		}
		nw := (s.hi - s.lo + 63) / 64
		if nw <= cap(s.active) {
			s.active = s.active[:nw]
			for i := range s.active {
				s.active[i] = 0
			}
		} else {
			s.active = make([]uint64, nw)
		}
		s.loopPos = s.lo
		e.laneStarts[si] = s.lo
		for r := s.lo; r < s.hi; r++ {
			e.shardOf[r] = uint8(si)
		}
	}
	e.margins = e.margins[:0]
	for si := 1; si < k; si++ {
		f := cuts[si]
		r0, r1 := f-2, f+2
		if r0 < 0 {
			r0 = 0
		}
		if r1 > e.rows {
			r1 = e.rows
		}
		e.margins = append(e.margins, span{r0 * e.width, r1 * e.width})
	}
}

// maybeResplit runs at the post-barrier epoch fold: if the decayed
// per-row work histogram wants different cuts than the current ones, the
// partition is re-laid while the workers are parked. The caller must
// follow with refreshActive, which rebuilds membership and re-arms every
// idle-gating router into its new owner's heap.
func (e *engine) maybeResplit(from int64) {
	var total int64
	for _, w := range e.rowWork {
		total += w
	}
	if total > 0 {
		cuts := e.balancedCuts(total)
		for i := range cuts {
			if cuts[i] != e.cuts[i] {
				e.applyResplit(cuts)
				if e.tr != nil {
					e.tr.Instant(obs.EngineTrack, "resplit", from, e.resplits)
				}
				break
			}
		}
	}
	// Exponential decay: halving each fold makes the balance track
	// recent phases instead of the run's whole history.
	for i := range e.rowWork {
		e.rowWork[i] >>= 1
	}
}

// marginWork sums the recent work of the margin rows a cut at row f
// would have to prove inert (rows f-2 .. f+1). Zero means the isolation
// predicate has a chance of passing there on quiet ticks.
func (e *engine) marginWork(f int) int64 {
	lo, hi := f-2, f+2
	if lo < 0 {
		lo = 0
	}
	if hi > e.rows {
		hi = e.rows
	}
	var w int64
	for _, v := range e.rowWork[lo:hi] {
		w += v
	}
	return w
}

// balancedCuts computes the load-balanced partition: cut i lands where
// the work prefix sum crosses i/k of the total, then snaps outward to
// the nearest legal row whose margin is quiet (falling back to the
// least-loaded margin when no quiet row exists — no worse than a fixed
// cut through the same traffic). Cuts are strictly increasing and leave
// every shard at least one row.
func (e *engine) balancedCuts(total int64) []int {
	k := len(e.shards)
	cuts := make([]int, k)
	var prefix int64
	row := 0
	for i := 1; i < k; i++ {
		target := total * int64(i) / int64(k)
		for row < e.rows && prefix < target {
			prefix += e.rowWork[row]
			row++
		}
		lo, hi := cuts[i-1]+1, e.rows-(k-i)
		cand := row
		if cand < lo {
			cand = lo
		}
		if cand > hi {
			cand = hi
		}
		best, bestW := cand, e.marginWork(cand)
		for d := 1; bestW != 0 && d <= e.rows; d++ {
			for _, f := range [2]int{cand + d, cand - d} {
				if f < lo || f > hi {
					continue
				}
				if w := e.marginWork(f); w < bestW {
					best, bestW = f, w
				}
			}
		}
		cuts[i] = best
	}
	return cuts
}

// applyResplit installs a new partition. Preconditions: the engine is at
// a post-barrier epoch fold (workers parked, every router caught up, all
// staging lanes drained by Commit), so the engine goroutine owns every
// shard. The arm heaps key routers by owning shard, so they are dropped
// wholesale and every armTick reset; the caller's refreshActive re-arms
// each idle-gating router into its new owner's heap at the same absolute
// tick (TicksToNextEvent is deterministic and the router's clock phase
// is caught up), so no scheduled gating event is lost. armTick must be
// reset before re-arming — arm() dedups on it and would otherwise skip
// the heap push for a router armed at an unchanged tick.
func (e *engine) applyResplit(cuts []int) {
	for si := range e.shards {
		s := &e.shards[si]
		s.armT, s.armR = s.armT[:0], s.armR[:0]
	}
	for r := range e.armTick {
		e.armTick[r] = -1
	}
	e.layoutShards(cuts)
	// The staging-lane count is unchanged and the lanes are empty
	// between ticks, so the network needs no re-split — only the
	// router->lane attribution maps move. RelaneStats/Retile remap
	// without resetting counters: both report lane sums, which are
	// invariant under where a router's events landed.
	e.ctrl.RelaneStats(e.laneStarts)
	if e.obsM != nil {
		e.obsM.Retile(e.laneStarts)
	}
	e.resplits++
}

// shardLoads snapshots the per-shard swept-router-tick counters into the
// engine's scratch buffer (valid until the next call).
func (e *engine) shardLoads() []int64 {
	for si := range e.shards {
		e.shardLoadBuf[si] = e.shards[si].swept
	}
	return e.shardLoadBuf
}

// loadImbalance is max/mean of the per-shard loads: 1.0 is perfectly
// balanced, len(loads) is everything on one worker, 0 an idle run.
func loadImbalance(loads []int64) float64 {
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(loads)) / float64(sum)
}

// minActiveCal caches the calibrated threshold per shard count: the
// measurement costs tens of microseconds, and sweeps construct many
// engines with the same shard count.
var minActiveCal sync.Map

// calibratedShardMinActive derives the serial-fallback threshold for a
// k-shard engine from this host's measured barrier cost. A concurrent
// tick saves roughly active*(1-1/k) sequential router steps and pays one
// worker dispatch + barrier round-trip, so the break-even active-set
// size is barrierNs*k/((k-1)*stepNs). The result is clamped to
// [DefaultShardMinActive/2, 4*DefaultShardMinActive] — the estimate
// should move the threshold, not let a descheduled measurement run or an
// unrealistically fast one push it somewhere indefensible.
func calibratedShardMinActive(k int) int {
	if v, ok := minActiveCal.Load(k); ok {
		return v.(int)
	}
	// Replicate the engine's dispatch shape: k-1 workers blocked on
	// buffered channels, a WaitGroup barrier on the way back. Min over
	// the rounds, not mean — scheduler hiccups only inflate samples.
	var wg sync.WaitGroup
	chans := make([]chan struct{}, k-1)
	for i := range chans {
		chans[i] = make(chan struct{}, 1)
		go func(c chan struct{}) {
			for range c {
				wg.Done()
			}
		}(chans[i])
	}
	best := int64(math.MaxInt64)
	for i := 0; i < 64; i++ {
		start := time.Now()
		wg.Add(k - 1)
		for _, c := range chans {
			c <- struct{}{}
		}
		wg.Wait()
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	for _, c := range chans {
		close(c)
	}
	// stepNs approximates one active router's serial sweep cost (billing
	// + occupancy + state machine) on a modern core; only its order of
	// magnitude matters inside the clamp range.
	const stepNs = 25.0
	th := int(math.Ceil(float64(best) * float64(k) / (float64(k-1) * stepNs)))
	if min := DefaultShardMinActive / 2; th < min {
		th = min
	}
	if max := 4 * DefaultShardMinActive; th > max {
		th = max
	}
	minActiveCal.Store(k, th)
	return th
}
