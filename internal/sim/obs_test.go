// Observability-layer integration tests: per-shard metric lanes must
// fold to the serial run's totals, the obs mirrors must agree with both
// the engine's Result diagnostics and the controller's policy.Stats (one
// source of truth, cross-checked), the engine-phase tracer must emit
// valid Chrome trace_event JSONL covering the sweep/landing/barrier
// phases, and sourcing the per-epoch series through obs must leave the
// figure pipeline's CSV bytes untouched.
package sim_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// runObserved executes one banded sharded configuration with a fresh
// Metrics attached and the parallel-sweep threshold floored.
func runObserved(t *testing.T, shards int, linkTicks int64, tracer *obs.Tracer) (*sim.Result, *obs.Metrics) {
	t.Helper()
	topo := topology.NewMesh(8, 16)
	observer := &obs.Observer{Metrics: obs.NewMetrics(), Tracer: tracer}
	res, err := sim.Run(sim.Config{
		Topo:           topo,
		Spec:           policy.DozzNoC(policy.ReactiveSelector{}),
		Trace:          bandedTrace(topo, 20_000),
		LinkTicks:      linkTicks,
		Shards:         shards,
		ShardMinActive: -1,
		Obs:            observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, observer.Metrics
}

// TestObsLaneFoldMatchesSerial is the acceptance check for the staging
// lanes: a Shards=4 run's folded totals — events routed through
// shard-goroutine lanes during concurrent sweeps — must equal the
// Shards=1 run's, where everything folds on the engine goroutine.
func TestObsLaneFoldMatchesSerial(t *testing.T) {
	serialRes, serialM := runObserved(t, 1, 0, nil)
	shardedRes, shardedM := runObserved(t, 4, 0, nil)
	serial, sharded := serialM.Snapshot(), shardedM.Snapshot()
	if shardedRes.ParallelTicks == 0 {
		t.Fatal("Shards=4 never swept concurrently; the lane-fold check is vacuous")
	}
	if serialRes.ParallelTicks != 0 {
		t.Fatalf("Shards=1 counted %d parallel ticks", serialRes.ParallelTicks)
	}
	if serial.Gatings == 0 || serial.Wakes == 0 || serial.ModeSwitches == 0 {
		t.Fatalf("serial run saw no events to fold: %+v", serial)
	}
	if sharded.Gatings != serial.Gatings ||
		sharded.Wakes != serial.Wakes ||
		sharded.WakeOffTicks != serial.WakeOffTicks ||
		sharded.ModeSwitches != serial.ModeSwitches ||
		sharded.EpochDecisions != serial.EpochDecisions ||
		sharded.LazyTicks != serial.LazyTicks ||
		sharded.ResidencyTicks != serial.ResidencyTicks {
		t.Errorf("sharded lane fold differs from serial:\nsharded: %+v\nserial:  %+v", sharded, serial)
	}
	// The per-epoch rollup deltas must sum back to the totals they were
	// drained from — and epoch for epoch the two runs must agree.
	se, pe := serialM.Epochs(), shardedM.Epochs()
	if len(se) == 0 || len(se) != len(pe) {
		t.Fatalf("epoch rollup counts differ: serial %d, sharded %d", len(se), len(pe))
	}
	var g, w, ms, lz int64
	for i := range pe {
		if pe[i].Gatings != se[i].Gatings || pe[i].Wakes != se[i].Wakes ||
			pe[i].ModeSwitches != se[i].ModeSwitches || pe[i].AvgIBU != se[i].AvgIBU ||
			pe[i].ResidencyDelta != se[i].ResidencyDelta ||
			pe[i].StaticJDelta != se[i].StaticJDelta || pe[i].DynamicJDelta != se[i].DynamicJDelta {
			t.Fatalf("epoch %d rollup differs:\nsharded: %+v\nserial:  %+v", i, pe[i], se[i])
		}
		g += pe[i].Gatings
		w += pe[i].Wakes
		ms += pe[i].ModeSwitches
		lz += pe[i].LazyTicks
	}
	// Totals may exceed the epoch sums only by the post-boundary
	// remainder folded at FinishRun; for these drained counters the final
	// partial epoch still folds, so the sums must not exceed the totals.
	if g > sharded.Gatings || w > sharded.Wakes || ms > sharded.ModeSwitches || lz > sharded.LazyTicks {
		t.Errorf("epoch deltas overrun totals: g=%d/%d w=%d/%d ms=%d/%d lz=%d/%d",
			g, sharded.Gatings, w, sharded.Wakes, ms, sharded.ModeSwitches, lz, sharded.LazyTicks)
	}
}

// TestObsMirrorsEngineDiagnostics pins the one-source-of-truth contract:
// the obs snapshot's scheduling mirrors must equal the engine's Result
// diagnostics, and its event totals must equal the controller's
// policy.Stats, on a run that exercises every accelerated path
// (concurrent sweeps, parallel wire landings, lazy deferral).
func TestObsMirrorsEngineDiagnostics(t *testing.T) {
	res, m := runObserved(t, 4, 2, nil)
	snap := m.Snapshot()
	if res.ParallelTicks == 0 || res.ParallelLandings == 0 || res.LazySkippedRouterTicks == 0 {
		t.Fatalf("accelerated paths did not all engage: parallel=%d landings=%d lazy=%d",
			res.ParallelTicks, res.ParallelLandings, res.LazySkippedRouterTicks)
	}
	if snap.ParallelTicks != res.ParallelTicks {
		t.Errorf("obs ParallelTicks %d != Result %d", snap.ParallelTicks, res.ParallelTicks)
	}
	if snap.ParallelLandings != res.ParallelLandings {
		t.Errorf("obs ParallelLandings %d != Result %d", snap.ParallelLandings, res.ParallelLandings)
	}
	if snap.FastForwardedTicks != res.FastForwardedTicks {
		t.Errorf("obs FastForwardedTicks %d != Result %d", snap.FastForwardedTicks, res.FastForwardedTicks)
	}
	if snap.HorizonSkippedTicks != res.HorizonSkippedTicks {
		t.Errorf("obs HorizonSkippedTicks %d != Result %d", snap.HorizonSkippedTicks, res.HorizonSkippedTicks)
	}
	if snap.LazyTicks != res.LazySkippedRouterTicks {
		t.Errorf("obs LazyTicks %d != Result %d", snap.LazyTicks, res.LazySkippedRouterTicks)
	}
	if snap.Gatings != res.Policy.Gatings {
		t.Errorf("obs Gatings %d != policy %d", snap.Gatings, res.Policy.Gatings)
	}
	if snap.Wakes != res.Policy.Wakes {
		t.Errorf("obs Wakes %d != policy %d", snap.Wakes, res.Policy.Wakes)
	}
	if snap.ModeSwitches != res.Policy.ModeSwitches {
		t.Errorf("obs ModeSwitches %d != policy %d", snap.ModeSwitches, res.Policy.ModeSwitches)
	}
	if snap.EpochDecisions != res.Policy.EpochDecisions {
		t.Errorf("obs EpochDecisions %d != policy %d", snap.EpochDecisions, res.Policy.EpochDecisions)
	}
	var sweeps int64
	for _, n := range snap.ShardSweeps {
		sweeps += n
	}
	if sweeps == 0 {
		t.Error("no per-shard sweeps recorded")
	}
	if snap.Tick != res.Ticks {
		t.Errorf("obs Tick %d != Result.Ticks %d", snap.Tick, res.Ticks)
	}
}

// traceEvent is the subset of the Chrome trace_event schema the tests
// decode.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// TestObsTraceJSONL runs a Shards=4 configuration with tracing on and
// checks the output is valid JSONL Chrome trace events covering the
// engine's sweep, landing and barrier phases.
func TestObsTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res, _ := runObserved(t, 4, 2, tr)
	if res.ParallelTicks == 0 || res.ParallelLandings == 0 {
		t.Fatalf("parallel paths did not engage: ticks=%d landings=%d", res.ParallelTicks, res.ParallelLandings)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		switch ev.Ph {
		case "X":
			if ev.Dur <= 0 {
				t.Fatalf("complete span with non-positive dur: %+v", ev)
			}
		case "i", "M":
		default:
			t.Fatalf("unexpected event phase %q: %+v", ev.Ph, ev)
		}
		if ev.Ph != "M" && ev.TS < 0 {
			t.Fatalf("negative timestamp: %+v", ev)
		}
		if ev.PID != 1 {
			t.Fatalf("unexpected pid: %+v", ev)
		}
		seen[ev.Name]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("tracer emitted nothing")
	}
	for _, name := range []string{"parallel-tick", "sweep", "land", "catch-up-barrier", "epoch", "thread_name", "process_name"} {
		if seen[name] == 0 {
			t.Errorf("trace is missing %q events (saw %v)", name, seen)
		}
	}
}

// TestObsSeriesGoldenCSV is the figure-pipeline regression: the
// per-epoch series now flows through obs.Metrics.FoldEpoch, and its CSV
// export must stay byte-identical to the golden file pinned before the
// relocation — with no observer (the engine's internal Metrics), and
// with an explicitly attached one.
func TestObsSeriesGoldenCSV(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "series_golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewMesh(4, 4)
	tr := traffic.Synthetic(topo, traffic.UniformRandom, 0.01, 5000, 2)
	for _, attach := range []bool{false, true} {
		cfg := sim.Config{
			Topo:          topo,
			Spec:          policy.DozzNoC(policy.ReactiveSelector{}),
			Trace:         tr,
			CollectSeries: true,
		}
		var observer *obs.Observer
		if attach {
			observer = obs.New()
			cfg.Obs = observer
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Series.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("attach=%v: series CSV differs from golden:\ngot:\n%s\nwant:\n%s", attach, buf.Bytes(), golden)
		}
		if attach && observer.Metrics.Series() != res.Series {
			t.Error("Result.Series is not the attached observer's series")
		}
	}
}
