// Package sim is the cycle-level simulation engine: it drives the network,
// the power-management controller and the energy meters over a packet
// trace, handles the DVFS epoch loop, and optionally harvests the ML
// training dataset (features per epoch, labeled with the next epoch's
// IBU).
//
// Time advances in base ticks of the fastest clock (timing.BaseFreqMHz);
// each router's clock domain fires local cycles at its current mode's
// rational fraction of base ticks. Runs end when the trace is exhausted
// and the network has drained, or at the MaxTicks safety cap.
package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/features"
	"repro/internal/flit"
	"repro/internal/ml"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Default engine parameters.
const (
	DefaultVCs        = 2
	DefaultDepth      = 4
	DefaultPipeline   = 3
	DefaultEpochTicks = 500
	DefaultPunchHops  = -1
)

// Config describes one simulation run.
type Config struct {
	Topo  topology.Topology
	Spec  policy.Spec
	Trace *traffic.Trace

	VCs        int   // virtual channels per port (default 2)
	Depth      int   // flits per VC (default 4)
	Pipeline   int   // router pipeline depth in cycles (default 3)
	LinkTicks  int64 // inter-router wire latency in base ticks (default 0)
	EpochTicks int64 // DVFS epoch length in base ticks (default 500)
	MaxTicks   int64 // safety cap (default: 4x trace span + 200k)

	// CollectDataset harvests (features, future-IBU) rows per router per
	// epoch for offline training.
	CollectDataset bool
	// PunchHops is how many routers of a packet's XY path (starting at
	// the source router) receive a wake punch at injection time; routers
	// further along are woken one hop ahead as the head flit advances,
	// making the scheme partially (not fully) non-blocking. Default 2;
	// negative punches the entire path.
	PunchHops int
	// NoPathPunch disables injection-time punching entirely (heads still
	// wake their next hop on acceptance).
	NoPathPunch bool
	// Extractor overrides the per-epoch feature extractor (default: the
	// reduced Table IV set). Use features.NewExtendedExtractor for the
	// 41-feature DozzNoC-41 variant.
	Extractor FeatureExtractor
	// Workload, when set, drives injection interactively instead of a
	// trace (closed-loop full-system mode: the workload reacts to
	// deliveries, so network slowdowns feed back into injection). Trace
	// must be nil when Workload is set.
	Workload Workload
	// CollectSeries records a per-epoch network snapshot (Result.Series)
	// for time-resolved plots.
	CollectSeries bool
	// NoFastForward forces tick-by-tick execution even across quiescent
	// stretches. Results are bit-identical with the flag on or off (the
	// fast-forward path is an exact closed form); the knob exists so the
	// equivalence tests can prove that, and as an escape hatch when
	// debugging the engine itself.
	NoFastForward bool
	// NoActiveSet forces the per-tick loop to visit every router instead
	// of only the active set (routers with buffered flits, securing
	// claims, or a pending power-state transition). Like NoFastForward,
	// results are bit-identical either way — deferred routers are caught
	// up with the same integer closed forms — so the knob exists for the
	// equivalence proofs and as a debugging escape hatch. Unlike the
	// quiescent-window fast-forward, active-set scheduling also engages
	// for closed-loop workloads.
	NoActiveSet bool
}

// Workload is a closed-loop traffic source (e.g. the mcsim multicore
// model): the engine calls Tick every base tick so it can inject packets,
// forwards every delivery to it, and stops once it reports Done and the
// network has drained.
type Workload interface {
	// Tick may inject any number of packets at the current tick.
	Tick(now int64, inject func(p *flit.Packet))
	// PacketDelivered observes a delivery (response matching, stall
	// release).
	PacketDelivered(p *flit.Packet, core int, now int64)
	// Done reports whether the workload has no more work to issue.
	Done() bool
}

// FeatureExtractor computes a router's per-epoch feature vector; both the
// reduced (Table IV) and extended (41-feature) extractors implement it.
type FeatureExtractor interface {
	Collect(routerID int, net *network.Network, ctrl *policy.Controller, ibu float64, now timing.Tick) []float64
}

// featureNamer is optionally implemented by extractors to label dataset
// columns.
type featureNamer interface{ FeatureNames() []string }

// DefaultWorkloadMaxTicks caps closed-loop runs with no explicit limit.
const DefaultWorkloadMaxTicks = 5_000_000

func (c *Config) applyDefaults() error {
	if c.Topo == nil {
		return errors.New("sim: nil topology")
	}
	if c.Trace == nil && c.Workload == nil {
		return errors.New("sim: need a trace or a workload")
	}
	if c.Trace != nil && c.Workload != nil {
		return errors.New("sim: trace and workload are mutually exclusive")
	}
	if c.Trace != nil && c.Trace.Cores != c.Topo.NumCores() {
		return fmt.Errorf("sim: trace has %d cores, topology has %d", c.Trace.Cores, c.Topo.NumCores())
	}
	if c.VCs == 0 {
		c.VCs = DefaultVCs
	}
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.Pipeline == 0 {
		c.Pipeline = DefaultPipeline
	}
	if c.PunchHops == 0 {
		c.PunchHops = DefaultPunchHops
	}
	if c.EpochTicks == 0 {
		c.EpochTicks = DefaultEpochTicks
	}
	if c.MaxTicks == 0 {
		if c.Trace != nil {
			span := c.Trace.Horizon
			if n := len(c.Trace.Entries); n > 0 && c.Trace.Entries[n-1].Time > span {
				span = c.Trace.Entries[n-1].Time
			}
			c.MaxTicks = 4*span + 200_000
		} else {
			c.MaxTicks = DefaultWorkloadMaxTicks
		}
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	Model string
	Trace string

	Ticks   int64
	Drained bool // the network emptied before MaxTicks
	// FastForwardedTicks counts base ticks covered by the quiescent-window
	// fast-forward path (0 with NoFastForward, or when the network never
	// went quiescent). Diagnostic only: it is a Result field that may
	// differ between a fast-forward and a tick-by-tick run of the same
	// configuration — everything else is bit-identical.
	FastForwardedTicks int64
	// LazySkippedRouterTicks counts router-ticks (one router deferred for
	// one base tick) covered by the active-set lazy catch-up path instead
	// of eager per-tick stepping (0 with NoActiveSet). Diagnostic only,
	// like FastForwardedTicks: equivalence tests zero both before
	// comparing Results.
	LazySkippedRouterTicks int64

	PacketsInjected  int64
	PacketsDelivered int64
	FlitsDelivered   int64

	AvgLatencyTicks float64
	AvgLatencyNS    float64
	// Latency is the full latency population summary (base ticks).
	Latency stats.LatencySummary
	// Throughput is delivered flits per base tick network-wide; models
	// that stall traffic stretch the run and lose throughput.
	Throughput float64

	StaticJ  float64
	DynamicJ float64

	// OffFraction is the mean fraction of router time spent power-gated.
	OffFraction float64
	// WakeupFraction is the mean fraction spent in the wakeup state.
	WakeupFraction float64
	// ModeResidency[i] is the fraction of router time in active mode
	// M3+i.
	ModeResidency [power.NumActiveModes]float64

	Policy policy.Stats

	// Dataset holds the harvested training rows when CollectDataset.
	Dataset *ml.Dataset
	// Series holds the per-epoch time series when CollectSeries.
	Series *stats.Series

	// RouterOffFraction is each router's power-gated time fraction
	// (spatial structure of the gating decisions).
	RouterOffFraction []float64
	// RouterAvgMode is each router's residency-weighted mean active mode
	// index (0 = M3 .. 4 = M7), for spatial DVFS views.
	RouterAvgMode []float64
}

// EDP returns the energy-delay product (total energy x run time in
// seconds).
func (r *Result) EDP() float64 {
	return (r.StaticJ + r.DynamicJ) * timing.Tick(r.Ticks).Seconds()
}

// TotalJ returns total energy.
func (r *Result) TotalJ() float64 { return r.StaticJ + r.DynamicJ }

// engine ties network, controller and meters together for one run.
type engine struct {
	cfg   Config
	ctrl  *policy.Controller
	net   *network.Network
	meter []power.Meter
	ext   FeatureExtractor

	ibuNum    []int64 // per router: summed occupied slots this epoch
	slotsPerR int64
	pending   [][]float64 // features awaiting next epoch's label
	dataset   *ml.Dataset
	series    *stats.Series

	latencies  []int64
	sumLatency int64
	nLatency   int64

	ffTicks int64 // ticks covered by the fast-forward path

	// Active-set scheduling state (see DESIGN.md §5b). A router is in the
	// active set iff the per-tick loop must visit it: it has buffered
	// flits, holds securing claims, or has a pending autonomous power
	// transition (wakeup/switch countdown, idle-gating countdown).
	// Deferred routers are dormant — nothing about them changes per tick
	// except residency billing and clock-domain phase — so they are
	// caught up in closed form when next touched.
	lazy      bool
	active    []uint64 // bitset of routers the per-tick loop visits
	lastTick  []int64  // per router: first tick not yet accounted
	loopPos   int      // routers with ID < loopPos were stepped this tick
	curTick   int64    // tick currently being processed
	ffIDs     []int    // scratch: active IDs during a fast-forward jump
	lazyTicks int64    // router-ticks covered by deferred catch-up

	nextID uint64
}

// Active-set bitset primitives.
func (e *engine) inSet(r int) bool { return e.active[r>>6]&(1<<uint(r&63)) != 0 }
func (e *engine) setBit(r int)     { e.active[r>>6] |= 1 << uint(r&63) }
func (e *engine) clearBit(r int)   { e.active[r>>6] &^= 1 << uint(r&63) }

// activeIDs appends the IDs of all active-set routers, ascending.
func (e *engine) activeIDs(buf []int) []int {
	for wi, w := range e.active {
		base := wi << 6
		for w != 0 {
			buf = append(buf, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return buf
}

// canDefer reports whether a router may leave the active set: no
// buffered flit, no securing claim (which also rules out queued
// injections and in-flight wire traffic toward it), and no pending
// autonomous power transition. While all three hold, a tick changes
// nothing about the router beyond residency billing and clock-domain
// phase, both of which catch-up reproduces exactly.
func (e *engine) canDefer(r int) bool {
	return e.ctrl.Dormant(r) && e.net.Routers[r].BuffersEmpty() && !e.net.Secured(r)
}

// catchUpTo replays the deferred window [lastTick[r], target) for a
// router in closed form: batched static billing at its (constant)
// billing state, zero occupancy contribution (its buffers were empty
// throughout), and clock-domain/cycle-counter advancement. Exactness
// rests on the same arguments as the quiescent-window fast-forward
// (DESIGN.md §5a): the meter counts integer residency ticks, and a
// dormant router's billing state cannot change inside the window.
func (e *engine) catchUpTo(r int, target int64) {
	delta := target - e.lastTick[r]
	if delta <= 0 {
		return
	}
	mode, wt := e.ctrl.BillingState(r)
	e.meter[r].AddStatic(mode, wt, delta)
	if cycles := e.ctrl.FastForward(r, delta); cycles > 0 {
		e.net.Routers[r].SkipCycles(cycles)
	}
	e.lazyTicks += delta
	e.lastTick[r] = target
}

// catchUpAll advances every lagging router to target — the epoch
// boundary barrier (IBU, features, series snapshots and meter sums must
// be computed from fully-advanced state) and the end-of-run flush.
func (e *engine) catchUpAll(target int64) {
	for r := range e.lastTick {
		if e.lastTick[r] < target {
			e.catchUpTo(r, target)
		}
	}
}

// refreshActive recomputes active-set membership for every router. It
// runs after each epoch-boundary sweep, which can start voltage
// switches on routers that were deferred (the selector runs for all
// active-state routers, scheduled or not); those must re-arm onto the
// schedule until the switch completes.
func (e *engine) refreshActive() {
	for r := range e.lastTick {
		if e.canDefer(r) {
			e.clearBit(r)
		} else {
			e.setBit(r)
		}
	}
}

// netView adapts the network for policy.NetView.
type netView struct{ n *network.Network }

func (v netView) BuffersEmpty(r int) bool { return v.n.Routers[r].BuffersEmpty() }
func (v netView) Secured(r int) bool      { return v.n.Secured(r) }

// PacketDelivered implements network.Sink.
func (e *engine) PacketDelivered(p *flit.Packet, core int, now int64) {
	e.sumLatency += p.Latency()
	e.nLatency++
	e.latencies = append(e.latencies, p.Latency())
	if e.cfg.Workload != nil {
		e.cfg.Workload.PacketDelivered(p, core, now)
	}
}

// FlitHopped implements network.HopObserver: bill dynamic energy at the
// moving router's current mode.
func (e *engine) FlitHopped(routerID int) {
	e.meter[routerID].AddHop(e.ctrl.Mode(routerID))
}

// CanAccept implements network.PowerView by delegating to the
// controller; the engine interposes on the interface for WakeRequest.
func (e *engine) CanAccept(routerID int) bool { return e.ctrl.CanAccept(routerID) }

// WakeRequest implements network.PowerView: it is the single activation
// funnel of the active set. Every way a deferred router can be handed
// work — an injection claim at an attached core, a head flit buffered
// upstream and routed toward it, a path punch — raises a securing claim
// or an explicit punch, and both call here before any flit can land. A
// deferred router is first caught up (billing its deferred window at
// the pre-wake state and restoring its clock phase/cycle counter, which
// AcceptFlit's ReadyCycle stamp depends on), then re-enters the
// schedule, and only then does the controller see the wake.
func (e *engine) WakeRequest(routerID int) {
	if e.lazy && !e.inSet(routerID) {
		target := e.curTick
		if routerID < e.loopPos {
			// The eager sweep already passed this router's slot for the
			// current tick; in an all-eager run it would have been
			// stepped this tick in its still-deferred state, so the
			// closed form covers the current tick too and the router
			// rejoins the schedule from the next tick.
			target++
		}
		e.catchUpTo(routerID, target)
		e.setBit(routerID)
	}
	e.ctrl.WakeRequest(routerID)
}

// stepRouter runs one router's per-tick work: static billing, IBU
// accumulation, and the power-state machine with a network cycle when
// the router's clock fires.
func (e *engine) stepRouter(r int) {
	mode, wt := e.ctrl.BillingState(r)
	e.meter[r].AddStatic(mode, wt, 1)
	e.ibuNum[r] += int64(e.net.Routers[r].Occupied())
	if e.ctrl.Advance(r) {
		e.net.RouterCycle(r)
		e.ctrl.PostCycle(r)
	}
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	nR := cfg.Topo.NumRouters()
	e := &engine{
		cfg:     cfg,
		ctrl:    policy.NewController(nR, cfg.Spec),
		meter:   make([]power.Meter, nR),
		ibuNum:  make([]int64, nR),
		pending: make([][]float64, nR),
	}
	// The engine, not the controller, is the network's PowerView: its
	// WakeRequest wrapper is the active-set activation hook.
	e.net = network.New(cfg.Topo, cfg.VCs, cfg.Depth, cfg.Pipeline, e, e, e)
	e.net.SetLinkTicks(cfg.LinkTicks)
	e.ctrl.SetNetView(netView{e.net})
	e.ext = cfg.Extractor
	if e.ext == nil {
		e.ext = features.NewExtractor(cfg.Topo)
	}
	if cfg.CollectDataset {
		names := features.Names[:]
		if n, ok := e.ext.(featureNamer); ok {
			names = n.FeatureNames()
		}
		e.dataset = ml.NewDataset(names)
	}
	if cfg.CollectSeries {
		e.series = &stats.Series{EpochTicks: cfg.EpochTicks}
	}
	_, slots := e.net.Routers[0].Occupancy()
	e.slotsPerR = int64(slots)

	e.lazy = !cfg.NoActiveSet
	if e.lazy {
		e.active = make([]uint64, (nR+63)/64)
		e.lastTick = make([]int64, nR)
		// Initial membership mirrors the steady-state invariant: only
		// routers that cannot defer (e.g. a spec whose initial power state
		// has a pending transition) start on the schedule. Idle dormant
		// routers begin deferred at tick 0 — the catch-up closed form
		// reproduces their eager ticks exactly — which also keeps the
		// active set free of deferrable members at every fast-forward
		// check, so LazySkippedRouterTicks is identical with fast-forward
		// on or off.
		e.refreshActive()
	}

	var entries []traffic.Entry
	if cfg.Trace != nil {
		entries = cfg.Trace.Entries
		// One packet per entry and deliveries never exceed injections, so
		// this capacity makes the per-delivery latency append allocation-free.
		e.latencies = make([]int64, 0, len(entries))
	}
	cursor := 0
	drained := false
	var tick int64
	injectNow := func(p *flit.Packet) {
		p.ID = e.nextID
		e.nextID++
		p.InjectAt = tick
		e.net.Inject(p)
		if !cfg.NoPathPunch {
			e.punchPath(p.SrcCore, p.DstCore)
		}
	}
	fastForward := !cfg.NoFastForward && cfg.Workload == nil
	for tick = 0; tick < cfg.MaxTicks; tick++ {
		// Fast-forward: when the fabric is quiescent, every tick until the
		// next injection, epoch boundary, or power-state transition is
		// "boring" — billing and idle counting are its only effects — so we
		// jump straight to the next interesting tick, charging the skipped
		// window in closed form. The interesting tick itself is processed
		// normally below. See DESIGN.md for the invariant argument.
		if fastForward && cursor < len(entries) && e.net.Quiescent() {
			delta := entries[cursor].Time - tick
			if b := (tick/cfg.EpochTicks+1)*cfg.EpochTicks - 1 - tick; b < delta {
				delta = b
			}
			if m := cfg.MaxTicks - tick; m < delta {
				delta = m
			}
			if e.lazy {
				// Deferred routers are dormant (no pending autonomous
				// event) by the active-set invariant, so only schedule
				// members can bound the window, and only they need
				// advancing: deferred routers stay behind and are caught
				// up against the jumped clock when next touched.
				e.ffIDs = e.activeIDs(e.ffIDs[:0])
				for _, r := range e.ffIDs {
					if delta <= 0 {
						break
					}
					if ev := e.ctrl.TicksToNextEvent(r); ev < delta {
						delta = ev
					}
				}
				if delta > 0 {
					for _, r := range e.ffIDs {
						mode, wt := e.ctrl.BillingState(r)
						e.meter[r].AddStatic(mode, wt, delta)
						// Occupancy is zero while quiescent: ibuNum unchanged.
						if cycles := e.ctrl.FastForward(r, delta); cycles > 0 {
							e.net.Routers[r].SkipCycles(cycles)
						}
						e.lastTick[r] += delta
					}
				}
			} else {
				for r := 0; r < nR && delta > 0; r++ {
					if ev := e.ctrl.TicksToNextEvent(r); ev < delta {
						delta = ev
					}
				}
				if delta > 0 {
					for r := 0; r < nR; r++ {
						mode, wt := e.ctrl.BillingState(r)
						e.meter[r].AddStatic(mode, wt, delta)
						// Occupancy is zero while quiescent: ibuNum unchanged.
						if cycles := e.ctrl.FastForward(r, delta); cycles > 0 {
							e.net.Routers[r].SkipCycles(cycles)
						}
					}
				}
			}
			if delta > 0 {
				e.ffTicks += delta
				tick += delta
				if tick >= cfg.MaxTicks {
					break
				}
			}
		}
		e.ctrl.SetNow(timing.Tick(tick))
		e.net.SetTick(tick)
		e.curTick = tick
		e.loopPos = 0
		e.net.DeliverDue()
		for cursor < len(entries) && entries[cursor].Time <= tick {
			en := entries[cursor]
			injectNow(e.net.AcquirePacket(en.Src, en.Dst, en.Kind, tick))
			cursor++
		}
		if cfg.Workload != nil {
			cfg.Workload.Tick(tick, injectNow)
		}
		if e.lazy {
			// Visit only the active set, in ascending router order (the
			// same order the eager sweep uses). Re-reading the bitset word
			// after each step picks up routers activated mid-sweep at a
			// higher ID — they are stepped this tick, exactly like the
			// eager sweep would — while routers activated at an ID already
			// passed were caught up through this tick at activation.
			for wi := range e.active {
				base := wi << 6
				w := e.active[wi]
				for w != 0 {
					b := bits.TrailingZeros64(w)
					r := base + b
					e.loopPos = r
					e.stepRouter(r)
					e.lastTick[r] = tick + 1
					if e.canDefer(r) {
						e.clearBit(r)
					}
					w = e.active[wi] & (^uint64(0) << uint(b+1))
				}
			}
			e.loopPos = nR
		} else {
			for r := 0; r < nR; r++ {
				e.stepRouter(r)
			}
		}
		if (tick+1)%cfg.EpochTicks == 0 {
			if e.lazy {
				// Catch-up barrier: epoch IBU, feature vectors, series
				// snapshots and meter sums must see fully-advanced state.
				e.catchUpAll(tick + 1)
			}
			e.epochBoundary(timing.Tick(tick + 1))
			if e.lazy {
				e.refreshActive()
			}
		}
		sourceDone := cursor >= len(entries)
		if cfg.Workload != nil {
			sourceDone = cfg.Workload.Done()
		}
		if sourceDone && !e.net.InFlight() {
			drained = true
			tick++
			break
		}
	}
	if e.lazy {
		e.catchUpAll(tick)
	}
	return e.result(tick, drained), nil
}

// punchPath wakes the first PunchHops routers on the XY path from src to
// dst so gated routers charge up while the packet is still upstream
// (§III-B's look-ahead wake, Power Punch style). Routers beyond the punch
// horizon are woken one hop ahead as the head flit advances, which makes
// the scheme partially rather than fully non-blocking.
func (e *engine) punchPath(srcCore, dstCore int) {
	t := e.cfg.Topo
	r := t.RouterOf(srcCore)
	last := t.RouterOf(dstCore)
	hops := e.cfg.PunchHops
	for {
		e.WakeRequest(r)
		if r == last {
			return
		}
		if hops > 0 {
			hops--
			if hops == 0 {
				return
			}
		}
		r = topology.NextRouter(t, r, dstCore)
	}
}

// epochBoundary closes an epoch on every router: computes epoch IBU,
// labels the previous epoch's pending features, collects new features and
// runs the mode selector.
func (e *engine) epochBoundary(now timing.Tick) {
	den := float64(e.slotsPerR) * float64(e.cfg.EpochTicks)
	var sample stats.EpochSample
	sumIBU := 0.0
	for r := range e.ibuNum {
		ibu := float64(e.ibuNum[r]) / den
		sumIBU += ibu
		e.ibuNum[r] = 0
		if e.dataset != nil && e.pending[r] != nil {
			e.dataset.Add(e.pending[r], ibu)
		}
		feats := e.ext.Collect(r, e.net, e.ctrl, ibu, now)
		e.pending[r] = feats
		e.ctrl.EpochBoundary(r, ibu, feats)
	}
	if e.series == nil {
		return
	}
	sample.Tick = int64(now)
	sample.AvgIBU = sumIBU / float64(len(e.ibuNum))
	for r := range e.ibuNum {
		switch e.ctrl.State(r) {
		case policy.Inactive:
			sample.OffRouters++
		case policy.Wakeup:
			sample.WakingRouters++
		default:
			sample.ModeRouters[e.ctrl.Mode(r).Index()]++
		}
	}
	sample.FlitsDelivered = e.net.FlitsDelivered()
	for i := range e.meter {
		sample.StaticJ += e.meter[i].StaticJoules()
		sample.DynamicJ += e.meter[i].DynamicJoules()
	}
	e.series.Add(sample)
}

func (e *engine) result(ticks int64, drained bool) *Result {
	traceName := "workload"
	if e.cfg.Trace != nil {
		traceName = e.cfg.Trace.Name
	}
	res := &Result{
		Model:                  e.cfg.Spec.Name,
		Trace:                  traceName,
		Ticks:                  ticks,
		Drained:                drained,
		FastForwardedTicks:     e.ffTicks,
		LazySkippedRouterTicks: e.lazyTicks,
		PacketsInjected:        e.net.PacketsInjected(),
		PacketsDelivered:       e.net.PacketsDelivered(),
		FlitsDelivered:         e.net.FlitsDelivered(),
		Policy:                 e.ctrl.Stats(),
		Dataset:                e.dataset,
	}
	if e.nLatency > 0 {
		res.AvgLatencyTicks = float64(e.sumLatency) / float64(e.nLatency)
		res.AvgLatencyNS = res.AvgLatencyTicks * timing.TickSeconds * 1e9
	}
	res.Latency = stats.Summarize(e.latencies)
	res.Series = e.series
	if ticks > 0 {
		res.Throughput = float64(res.FlitsDelivered) / float64(ticks)
	}
	res.RouterOffFraction = make([]float64, len(e.meter))
	res.RouterAvgMode = make([]float64, len(e.meter))
	var total power.Meter
	for i := range e.meter {
		total.Add(&e.meter[i])
		if ticks > 0 {
			res.RouterOffFraction[i] = float64(e.meter[i].ResidencyTicks(power.Inactive)) / float64(ticks)
		}
		var activeTicks, weighted int64
		for m := 0; m < power.NumActiveModes; m++ {
			t := e.meter[i].ResidencyTicks(power.ActiveMode(m))
			activeTicks += t
			weighted += t * int64(m)
		}
		if activeTicks > 0 {
			res.RouterAvgMode[i] = float64(weighted) / float64(activeTicks)
		}
	}
	res.StaticJ = total.StaticJoules()
	res.DynamicJ = total.DynamicJoules()
	routerTicks := float64(ticks) * float64(len(e.meter))
	if routerTicks > 0 {
		res.OffFraction = float64(total.ResidencyTicks(power.Inactive)) / routerTicks
		res.WakeupFraction = float64(total.ResidencyTicks(power.Wakeup)) / routerTicks
		for i := 0; i < power.NumActiveModes; i++ {
			res.ModeResidency[i] = float64(total.ResidencyTicks(power.ActiveMode(i))) / routerTicks
		}
	}
	return res
}
