// Package sim is the cycle-level simulation engine: it drives the network,
// the power-management controller and the energy meters over a packet
// trace, handles the DVFS epoch loop, and optionally harvests the ML
// training dataset (features per epoch, labeled with the next epoch's
// IBU).
//
// Time advances in base ticks of the fastest clock (timing.BaseFreqMHz);
// each router's clock domain fires local cycles at its current mode's
// rational fraction of base ticks. Runs end when the trace is exhausted
// and the network has drained, or at the MaxTicks safety cap.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/features"
	"repro/internal/flit"
	"repro/internal/ml"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Default engine parameters.
const (
	DefaultVCs        = 2
	DefaultDepth      = 4
	DefaultPipeline   = 3
	DefaultEpochTicks = 500
	DefaultPunchHops  = -1
	// DefaultShardMinActive is the fallback active-set size below which a
	// sharded engine sweeps serially: with few routers scheduled, barrier
	// cost dominates any concurrency win. ShardMinActive=0 normally
	// derives the threshold from a barrier round-trip measured at engine
	// startup (calibratedShardMinActive); this constant is used when that
	// measurement is unavailable (single shard) and anchors the clamp
	// range around it.
	DefaultShardMinActive = 32
)

// Config describes one simulation run.
type Config struct {
	Topo  topology.Topology
	Spec  policy.Spec
	Trace *traffic.Trace

	VCs        int   // virtual channels per port (default 2)
	Depth      int   // flits per VC (default 4)
	Pipeline   int   // router pipeline depth in cycles (default 3)
	LinkTicks  int64 // inter-router wire latency in base ticks (default 0)
	EpochTicks int64 // DVFS epoch length in base ticks (default 500)
	MaxTicks   int64 // safety cap (default: 4x trace span + 200k)

	// CollectDataset harvests (features, future-IBU) rows per router per
	// epoch for offline training.
	CollectDataset bool
	// PunchHops is how many routers of a packet's XY path (starting at
	// the source router) receive a wake punch at injection time; routers
	// further along are woken one hop ahead as the head flit advances,
	// making the scheme partially (not fully) non-blocking. Default 2;
	// negative punches the entire path.
	PunchHops int
	// NoPathPunch disables injection-time punching entirely (heads still
	// wake their next hop on acceptance).
	NoPathPunch bool
	// Extractor overrides the per-epoch feature extractor (default: the
	// reduced Table IV set). Use features.NewExtendedExtractor for the
	// 41-feature DozzNoC-41 variant.
	Extractor FeatureExtractor
	// Workload, when set, drives injection interactively instead of a
	// trace (closed-loop full-system mode: the workload reacts to
	// deliveries, so network slowdowns feed back into injection). Trace
	// must be nil when Workload is set.
	Workload Workload
	// CollectSeries records a per-epoch network snapshot (Result.Series)
	// for time-resolved plots.
	CollectSeries bool
	// NoFastForward forces tick-by-tick execution even across quiescent
	// stretches. Results are bit-identical with the flag on or off (the
	// fast-forward path is an exact closed form); the knob exists so the
	// equivalence tests can prove that, and as an escape hatch when
	// debugging the engine itself.
	NoFastForward bool
	// NoActiveSet forces the per-tick loop to visit every router instead
	// of only the active set (routers with buffered flits, securing
	// claims, or a pending power-state transition). Like NoFastForward,
	// results are bit-identical either way — deferred routers are caught
	// up with the same integer closed forms — so the knob exists for the
	// equivalence proofs and as a debugging escape hatch. Unlike the
	// quiescent-window fast-forward, active-set scheduling also engages
	// for closed-loop workloads. Forces Shards to 1 (the eager sweep is
	// the single-goroutine reference semantics).
	NoActiveSet bool
	// Shards partitions the mesh into contiguous row-aligned router
	// ranges that sweep concurrently inside a base tick whenever the
	// rows straddling every shard boundary are provably isolated (empty,
	// unsecured). Results are bit-identical for any shard count — ticks
	// that cannot be proven isolated sweep serially, and concurrent
	// sweeps stage shared-state effects into per-shard lanes replayed in
	// the serial order (DESIGN.md §5c). The boundaries themselves are
	// load-aware: per-row work counters drive a re-split at each epoch
	// fold so busy rows spread across workers and boundaries settle on
	// quiet rows (DESIGN.md §5g; FixedTiling pins the initial even
	// split). 0 selects min(GOMAXPROCS, NumCPU, rows) — in particular it
	// resolves to 1 on a single-CPU host, where concurrent sweeps could
	// only interleave; 1 disables concurrency. Clamped to the router-row
	// count. Forced to 1 when NoActiveSet is set or Pipeline < 2 (a
	// 1-cycle pipeline lets a flit cross two links in one tick,
	// defeating the boundary-margin isolation argument).
	Shards int
	// ShardMinActive is the minimum active-set size before a tick is
	// swept concurrently (barrier cost dominates below it). 0 derives
	// the threshold from a barrier round-trip measured at engine startup
	// (clamped to [16, 128]; DefaultShardMinActive when the measurement
	// is unavailable); positive pins it; negative means 1 (always
	// attempt), which the equivalence tests use to maximize parallel
	// coverage on small meshes. The threshold only gates scheduling, so
	// results are bit-identical for any value.
	ShardMinActive int
	// FixedTiling pins the shard partition to the initial contiguous
	// even row-band split, disabling the load-aware boundary re-splits
	// executed at epoch folds. Results are bit-identical either way —
	// the partition only affects which goroutine sweeps which rows — so
	// the knob exists to benchmark the tiling win and as a debugging
	// escape hatch.
	FixedTiling bool
	// Obs attaches the observability layer (package obs): per-shard
	// metric lanes folded at epoch boundaries, and optionally an engine
	// phase tracer. Optional and purely diagnostic — a nil Observer
	// leaves every hook a not-taken nil branch, and an attached one
	// never changes results. When CollectSeries is set without an
	// Observer the engine creates an internal Metrics, so the per-epoch
	// series always flows through the same fold path.
	Obs *obs.Observer

	// forSession marks a config built by NewSession: injections arrive
	// incrementally through Session.Schedule instead of a trace or
	// workload, and time advances in caller-driven windows. Unexported:
	// Run rejects it, and only NewSession sets it.
	forSession bool
}

// Workload is a closed-loop traffic source (e.g. the mcsim multicore
// model): the engine calls Tick every base tick so it can inject packets,
// forwards every delivery to it, and stops once it reports Done and the
// network has drained.
type Workload interface {
	// Tick may inject any number of packets at the current tick.
	Tick(now int64, inject func(p *flit.Packet))
	// PacketDelivered observes a delivery (response matching, stall
	// release).
	PacketDelivered(p *flit.Packet, core int, now int64)
	// Done reports whether the workload has no more work to issue.
	Done() bool
}

// FeatureExtractor computes a router's per-epoch feature vector; both the
// reduced (Table IV) and extended (41-feature) extractors implement it.
type FeatureExtractor interface {
	Collect(routerID int, net *network.Network, ctrl *policy.Controller, ibu float64, now timing.Tick) []float64
}

// featureNamer is optionally implemented by extractors to label dataset
// columns.
type featureNamer interface{ FeatureNames() []string }

// DefaultWorkloadMaxTicks caps closed-loop runs with no explicit limit.
const DefaultWorkloadMaxTicks = 5_000_000

func (c *Config) applyDefaults() error {
	if c.Topo == nil {
		return errors.New("sim: nil topology")
	}
	if c.forSession {
		if c.Trace != nil || c.Workload != nil {
			return errors.New("sim: a session drives injection itself; Trace and Workload must be nil")
		}
	} else if c.Trace == nil && c.Workload == nil {
		return errors.New("sim: need a trace or a workload")
	}
	if c.Trace != nil && c.Workload != nil {
		return errors.New("sim: trace and workload are mutually exclusive")
	}
	if c.Trace != nil && c.Trace.Cores != c.Topo.NumCores() {
		return fmt.Errorf("sim: trace has %d cores, topology has %d", c.Trace.Cores, c.Topo.NumCores())
	}
	if c.VCs == 0 {
		c.VCs = DefaultVCs
	}
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.Pipeline == 0 {
		c.Pipeline = DefaultPipeline
	}
	if c.PunchHops == 0 {
		c.PunchHops = DefaultPunchHops
	}
	if c.EpochTicks == 0 {
		c.EpochTicks = DefaultEpochTicks
	}
	if c.MaxTicks == 0 {
		switch {
		case c.Trace != nil:
			span := c.Trace.Horizon
			if n := len(c.Trace.Entries); n > 0 && c.Trace.Entries[n-1].Time > span {
				span = c.Trace.Entries[n-1].Time
			}
			c.MaxTicks = 4*span + 200_000
		case c.forSession:
			// A session's lifetime is open-ended; per-window budgets
			// (Advance/Drain arguments) bound the work instead.
			c.MaxTicks = 1 << 62
		default:
			c.MaxTicks = DefaultWorkloadMaxTicks
		}
	}
	rows := c.Topo.Height()
	if c.Shards == 0 {
		// Auto-sizing caps the shard count at the number of hardware CPUs
		// as well as GOMAXPROCS: on a single-CPU host (or GOMAXPROCS
		// raised above NumCPU) concurrent sweeps can only interleave, so
		// the sharded engine would pay its two-phase staging overhead
		// (~1.12x measured) with no parallelism to buy back. Shards=0
		// therefore resolves to 1 whenever only one CPU can run; an
		// explicit Shards>=2 still forces concurrency for testing.
		p := runtime.GOMAXPROCS(0)
		if ncpu := runtime.NumCPU(); ncpu < p {
			p = ncpu
		}
		if p < 1 {
			p = 1
		}
		c.Shards = p
	}
	if c.Shards > rows {
		c.Shards = rows
	}
	if c.Shards > 255 {
		c.Shards = 255 // shard IDs are stored as uint8
	}
	if c.Shards < 1 || c.NoActiveSet || c.Pipeline < 2 {
		c.Shards = 1
	}
	if c.ShardMinActive == 0 {
		if c.Shards > 1 {
			// Derive the serial-fallback threshold from a measured
			// barrier round-trip (see calibratedShardMinActive): the
			// fixed default under- or over-gates depending on how
			// expensive this host's wakeup/park cycle actually is.
			c.ShardMinActive = calibratedShardMinActive(c.Shards)
		} else {
			c.ShardMinActive = DefaultShardMinActive
		}
	} else if c.ShardMinActive < 0 {
		c.ShardMinActive = 1
	}
	return nil
}

// Result summarizes one run.
// Result is a finished run's summary. Determinism contract: every field
// is deterministic — bit-identical across reruns of the same Config,
// independent of shard count, worker timing, and fast-forward regime —
// unless its own comment says "Diagnostic only". The deterministic set
// is what equivalence tests compare and what sweep rows may embed; the
// diagnostic fields describe how the run was scheduled, not what it
// computed, and equivalence tests zero them before comparing.
type Result struct {
	Model string
	Trace string

	Ticks   int64
	Drained bool // the network emptied before MaxTicks
	// FastForwardedTicks counts base ticks covered by closed-form skips
	// taken while the network was fully quiescent (no flit anywhere, no
	// packet queued, no securing claim). The event-horizon path relaxed
	// the old precondition: skips are now also taken with flits riding
	// wires, packets queued behind gated routers, or claims held — those
	// non-quiescent skips are counted by HorizonSkippedTicks instead, so
	// the two fields partition the skipped time by regime. 0 with
	// NoFastForward. Diagnostic only: it is a Result field that may
	// differ between a fast-forward and a tick-by-tick run of the same
	// configuration — everything else is bit-identical.
	FastForwardedTicks int64
	// HorizonSkippedTicks counts base ticks covered by event-horizon
	// skips taken while the network was NOT quiescent — flits in wire
	// transit, packets queued at cores behind non-accepting or
	// slow-clocked routers, or securing claims held — but every router
	// buffer was empty, so the next effect was computable in closed form
	// (earliest of: next trace entry, next workload injection, next wire
	// arrival, next controller timer, next local cycle of a router with
	// queued packets, epoch boundary). 0 with NoFastForward. Diagnostic
	// only, like FastForwardedTicks.
	HorizonSkippedTicks int64
	// LazySkippedRouterTicks counts router-ticks (one router deferred for
	// one base tick) covered by the active-set lazy catch-up path instead
	// of eager per-tick stepping (0 with NoActiveSet). Diagnostic only,
	// like FastForwardedTicks: equivalence tests zero both before
	// comparing Results.
	LazySkippedRouterTicks int64
	// ParallelTicks counts base ticks whose active-set sweep ran
	// concurrently across shards (0 when Shards is 1, or when no tick
	// ever satisfied the boundary-isolation predicate). Diagnostic only,
	// like FastForwardedTicks: it varies with the shard count while
	// every other field is bit-identical.
	ParallelTicks int64
	// ParallelLandings counts due wire transits landed by the shard
	// workers through their own staging lanes instead of serially on the
	// engine goroutine. It is 0 when Shards is 1, when LinkTicks is 0
	// (zero-latency links land inline), or when no due transit coincided
	// with a concurrent tick. Diagnostic only, like ParallelTicks. All
	// four scheduling diagnostics above are mirrored by an attached
	// obs.Metrics (Config.Obs), whose snapshot must agree with them —
	// the obs tests cross-check the two so neither count can rot.
	ParallelLandings int64
	// ShardLoad[i] counts the router-ticks shard i's worker actually
	// stepped (swept active-set members; deferred catch-up excluded) —
	// the per-worker share of the sweep work. Diagnostic only, like the
	// counters above: it varies with the shard count and partition while
	// every other field is bit-identical. Always length Shards.
	ShardLoad []int64
	// ShardLoadImbalance is max(ShardLoad)/mean(ShardLoad) — 1.0 is a
	// perfectly balanced partition, Shards is everything on one worker.
	// 0 when nothing was swept. Diagnostic only.
	ShardLoadImbalance float64
	// ShardResplits counts the load-aware boundary re-splits executed at
	// epoch folds (0 with FixedTiling, a single shard, or stable load).
	// Diagnostic only.
	ShardResplits int64

	PacketsInjected  int64
	PacketsDelivered int64
	FlitsDelivered   int64

	AvgLatencyTicks float64
	AvgLatencyNS    float64
	// Latency is the full latency population summary (base ticks).
	Latency stats.LatencySummary
	// Throughput is delivered flits per base tick network-wide; models
	// that stall traffic stretch the run and lose throughput.
	Throughput float64

	StaticJ  float64
	DynamicJ float64

	// OffFraction is the mean fraction of router time spent power-gated.
	OffFraction float64
	// WakeupFraction is the mean fraction spent in the wakeup state.
	WakeupFraction float64
	// ModeResidency[i] is the fraction of router time in active mode
	// M3+i.
	ModeResidency [power.NumActiveModes]float64

	Policy policy.Stats

	// Prediction-quality attribution, populated only when an obs.Metrics
	// is attached (Config.Obs) and zero otherwise. All six are
	// deterministic: they derive from epoch-boundary decisions and
	// controller state alone, independent of shard count and scheduling
	// (obs stages them in per-shard lanes but folds by summation, which
	// is invariant under the lane partition). MeanAbsPredErr is the run
	// mean |measured - predicted| IBU over matured decisions;
	// UnderPredDecisions/OverPredDecisions count matured decisions whose
	// chosen mode undershot/overshot what the measured IBU called for;
	// UnderPredStallTicks charges wakeup stalls to under-prediction and
	// OverPredStaticWasteJ charges excess static energy to
	// over-prediction; PredDriftEvents counts Page-Hinkley drift fires.
	MeanAbsPredErr       float64
	UnderPredDecisions   int64
	OverPredDecisions    int64
	UnderPredStallTicks  int64
	OverPredStaticWasteJ float64
	PredDriftEvents      int64

	// Dataset holds the harvested training rows when CollectDataset.
	Dataset *ml.Dataset
	// Series holds the per-epoch time series when CollectSeries.
	Series *stats.Series

	// RouterOffFraction is each router's power-gated time fraction
	// (spatial structure of the gating decisions).
	RouterOffFraction []float64
	// RouterAvgMode is each router's residency-weighted mean active mode
	// index (0 = M3 .. 4 = M7), for spatial DVFS views.
	RouterAvgMode []float64
}

// EDP returns the energy-delay product (total energy x run time in
// seconds).
func (r *Result) EDP() float64 {
	return (r.StaticJ + r.DynamicJ) * timing.Tick(r.Ticks).Seconds()
}

// TotalJ returns total energy.
func (r *Result) TotalJ() float64 { return r.StaticJ + r.DynamicJ }

// span is a half-open router-ID range.
type span struct{ lo, hi int }

// shardState is one contiguous row-aligned partition of the router ID
// space. Every field is owned by the shard: during a concurrent sweep
// only the shard's goroutine touches it (the boundary-isolation predicate
// guarantees no cross-shard calls), and outside sweeps the engine
// goroutine owns everything.
type shardState struct {
	lo, hi int // router ID range [lo, hi)

	// active is the shard's slice of the active-set bitset: bit i of
	// word w is router lo + 64*w + i. Separate per-shard words keep
	// concurrent sweeps from sharing cache lines or racing on a word
	// that spans a shard boundary.
	active []uint64
	// loopPos is the sweep cursor: shard routers with ID < loopPos have
	// been stepped this tick. Reset to lo before each tick's serial
	// phase, hi after the shard's sweep.
	loopPos int
	// ids is the scratch buffer for fast-forward membership sweeps,
	// reused across ticks.
	ids []int

	lazyTicks int64 // router-ticks covered by deferred catch-up
	swept     int64 // router-ticks actually stepped by this shard's worker

	// Arm min-heap (parallel arrays, keyed by armT): deferred routers
	// whose only pending event is their idle-gating countdown, keyed by
	// the absolute tick that countdown fires (satellite re-arm path; see
	// engine.arm).
	armT []int64
	armR []int32

	work chan int64 // parallel sweep trigger; nil until workers start

	_ [64]byte // pad: keep neighboring shards off one cache line
}

// Per-shard active-set bitset primitives.
func (s *shardState) inSet(r int) bool {
	i := r - s.lo
	return s.active[i>>6]&(1<<uint(i&63)) != 0
}
func (s *shardState) setBit(r int) {
	i := r - s.lo
	s.active[i>>6] |= 1 << uint(i&63)
}
func (s *shardState) clearBit(r int) {
	i := r - s.lo
	s.active[i>>6] &^= 1 << uint(i&63)
}

// activeIDs appends the IDs of the shard's active-set routers, ascending.
func (s *shardState) activeIDs(buf []int) []int {
	for wi, w := range s.active {
		base := s.lo + wi<<6
		for w != 0 {
			buf = append(buf, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return buf
}

// armPush inserts (at, r) into the arm heap.
func (s *shardState) armPush(at int64, r int) {
	s.armT = append(s.armT, at)
	s.armR = append(s.armR, int32(r))
	i := len(s.armT) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.armT[p] <= s.armT[i] {
			break
		}
		s.armT[p], s.armT[i] = s.armT[i], s.armT[p]
		s.armR[p], s.armR[i] = s.armR[i], s.armR[p]
		i = p
	}
}

// armPop removes and returns the earliest heap entry.
func (s *shardState) armPop() (int64, int) {
	at, r := s.armT[0], int(s.armR[0])
	last := len(s.armT) - 1
	s.armT[0], s.armR[0] = s.armT[last], s.armR[last]
	s.armT, s.armR = s.armT[:last], s.armR[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if rc := l + 1; rc < last && s.armT[rc] < s.armT[l] {
			m = rc
		}
		if s.armT[i] <= s.armT[m] {
			break
		}
		s.armT[i], s.armT[m] = s.armT[m], s.armT[i]
		s.armR[i], s.armR[m] = s.armR[m], s.armR[i]
		i = m
	}
	return at, r
}

// engine ties network, controller and meters together for one run.
type engine struct {
	cfg   Config
	ctrl  *policy.Controller
	net   *network.Network
	meter []power.Meter
	ext   FeatureExtractor

	ibuNum    []int64 // per router: summed occupied slots this epoch
	slotsPerR int64
	pending   [][]float64 // features awaiting next epoch's label
	dataset   *ml.Dataset

	// Observability (package obs). obsM owns the per-epoch series and
	// mirrors the scheduling diagnostics; tr emits engine-phase spans.
	// Both are nil unless attached (or, for obsM, implied by
	// CollectSeries), and every use is a branch on the nil pointer.
	obsM *obs.Metrics
	tr   *obs.Tracer

	latencies  []int64
	sumLatency int64
	nLatency   int64

	ffTicks          int64 // ticks covered by quiescent-window skips
	horizonTicks     int64 // ticks covered by non-quiescent horizon skips
	parallelTicks    int64 // ticks swept concurrently across shards
	parallelLandings int64 // due wire transits landed by shard workers

	// Active-set scheduling state (see DESIGN.md §5b/§5c). A router is in
	// the active set iff the per-tick loop must visit it: it has buffered
	// flits, holds securing claims, or has a pending autonomous power
	// transition. Deferred routers change nothing per tick except
	// residency billing and clock-domain phase, so they are caught up in
	// closed form when next touched; deferred routers whose idle-gating
	// countdown is still pending additionally sit on their shard's arm
	// heap and rejoin the schedule at exactly the gating tick.
	lazy      bool
	shards    []shardState
	shardOf   []uint8 // owning shard of each router
	lastTick  []int64 // per router: first tick not yet accounted
	armTick   []int64 // per router: tick it is armed to rejoin at, -1 if none
	curTick   int64   // tick currently being processed
	margins   []span  // boundary margin routers, must be inert to sweep concurrently
	minActive int     // resolved ShardMinActive

	// occ aliases the network slab's occupancy plane (one int32 per
	// router), so the hot predicates (IBU accumulation, deferral checks)
	// read a flat array instead of dereferencing *Router.
	occ []int32

	// Load-aware tiling state (DESIGN.md §5g). rowWork accumulates
	// stepped router-ticks per mesh row (owner-only writes: a row belongs
	// to exactly one shard) and decays by half at each epoch fold;
	// maybeResplit re-cuts the partition from it while the workers are
	// parked. cuts[i] is the first row of shard i.
	tiling       bool
	width, rows  int
	rowOfR       []int32 // router ID -> mesh row
	rowWork      []int64
	cuts         []int
	laneStarts   []int // current partition's lane starts (= shard lo's)
	resplits     int64
	shardLoadBuf []int64 // scratch for epoch-fold ShardLoad snapshots

	wg        sync.WaitGroup
	workersUp bool

	nextID uint64

	// Stepping state shared by Run's one-shot loop and Session's
	// caller-driven windows (stepUntil). entries is the pending
	// injection schedule — the trace's entries for Run, the
	// incrementally scheduled transfers for a Session — with cursor the
	// first unconsumed index; tick is the next base tick to process and
	// drained records a drain-mode stop (source exhausted, network
	// empty).
	entries   []traffic.Entry
	cursor    int
	tick      int64
	drained   bool
	ffEnabled bool
	// nextInj is the workload's event-horizon watermark (nil when no
	// workload is attached, or when the workload does not implement
	// traffic.NextInjector — in which case ffEnabled is forced off,
	// since an opaque Tick callback may inject at any base tick).
	nextInj traffic.NextInjector
}

// canDefer reports whether a router may leave the active set: no
// buffered flit, no securing claim (which also rules out queued
// injections and in-flight wire traffic toward it), and no pending
// autonomous power transition. While all three hold, a tick changes
// nothing about the router beyond residency billing and clock-domain
// phase, both of which catch-up reproduces exactly.
func (e *engine) canDefer(r int) bool {
	return e.ctrl.Dormant(r) && e.occ[r] == 0 && !e.net.Secured(r)
}

// canArm reports whether a non-dormant router may still be deferred by
// re-arming: idle, unsecured, and its only pending autonomous event is
// the idle-gating countdown, whose firing tick TicksToNextEvent predicts
// exactly (the router's clock phase cannot drift while deferred — only
// catch-up advances it, by the same closed form eager ticking uses).
func (e *engine) canArm(r int) bool {
	return e.ctrl.IdleGatingOnly(r) && e.occ[r] == 0 && !e.net.Secured(r)
}

// arm schedules a deferred idle-countdown router to rejoin the schedule
// at the tick its gating fires. next is the next tick that will be
// processed from the router's perspective (tick+1 when arming from a
// sweep, the boundary tick from refreshActive); the router's next local
// cycle fires TicksToNextEvent ticks after that.
func (e *engine) arm(s *shardState, r int, next int64) {
	at := next + e.ctrl.TicksToNextEvent(r)
	if e.armTick[r] == at {
		return // still armed for the same tick; reuse the heap entry
	}
	e.armTick[r] = at
	s.armPush(at, r)
}

// popArms moves every router armed for this tick back onto the schedule,
// caught up through the ticks it sat out; its pending gating then fires
// during the normal sweep of this tick, exactly as eager stepping would
// have fired it. Entries whose armTick no longer matches are stale — the
// router was woken early (WakeRequest cleared armTick) or re-armed — and
// are discarded. A matching entry with an earlier tick means the engine
// skipped past a scheduled event, which would silently corrupt the
// closed-form catch-up, so it panics.
func (e *engine) popArms(tick int64) {
	for si := range e.shards {
		s := &e.shards[si]
		for len(s.armT) > 0 && s.armT[0] <= tick {
			at, r := s.armPop()
			if e.armTick[r] != at {
				continue
			}
			if at != tick {
				panic(fmt.Sprintf("sim: router %d armed for tick %d popped at tick %d", r, at, tick))
			}
			e.armTick[r] = -1
			e.catchUpTo(r, tick)
			s.setBit(r)
		}
	}
}

// catchUpTo replays the deferred window [lastTick[r], target) for a
// router in closed form: batched static billing at its (constant)
// billing state, zero occupancy contribution (its buffers were empty
// throughout), and clock-domain/cycle-counter advancement. Exactness
// rests on the same arguments as the quiescent-window fast-forward
// (DESIGN.md §5a): the meter counts integer residency ticks, and a
// deferred router's billing state cannot change inside the window (an
// armed router's window ends no later than its gating tick).
func (e *engine) catchUpTo(r int, target int64) {
	delta := target - e.lastTick[r]
	if delta <= 0 {
		return
	}
	mode, wt := e.ctrl.BillingState(r)
	e.meter[r].AddStatic(mode, wt, delta)
	if cycles := e.ctrl.FastForward(r, delta); cycles > 0 {
		e.net.Routers[r].SkipCycles(cycles)
	}
	e.shards[e.shardOf[r]].lazyTicks += delta
	if e.obsM != nil {
		// Owner-only like the lazyTicks write above: during a concurrent
		// sweep this is only reached via WakeRequest, whose targets the
		// isolation predicate keeps inside the calling shard.
		e.obsM.OnLazyCatchUp(int(e.shardOf[r]), delta)
	}
	e.lastTick[r] = target
}

// catchUpAll advances every lagging router to target — the epoch
// boundary barrier (IBU, features, series snapshots and meter sums must
// be computed from fully-advanced state) and the end-of-run flush.
func (e *engine) catchUpAll(target int64) {
	for r := range e.lastTick {
		if e.lastTick[r] < target {
			e.catchUpTo(r, target)
		}
	}
}

// refreshActive recomputes active-set membership for every router. It
// runs at engine start (from = 0) and after each epoch-boundary sweep
// (from = the boundary tick), which can start voltage switches on
// routers that were deferred (the selector runs for all active-state
// routers, scheduled or not); those must re-arm onto the schedule until
// the switch completes. Routers whose only pending event is the
// idle-gating countdown are deferred with an arm at the gating tick.
func (e *engine) refreshActive(from int64) {
	for si := range e.shards {
		s := &e.shards[si]
		for r := s.lo; r < s.hi; r++ {
			if e.canDefer(r) {
				e.armTick[r] = -1
				s.clearBit(r)
			} else if e.canArm(r) {
				e.arm(s, r, from)
				s.clearBit(r)
			} else {
				e.armTick[r] = -1
				s.setBit(r)
			}
		}
	}
}

// netView adapts the network for policy.NetView.
type netView struct{ n *network.Network }

func (v netView) BuffersEmpty(r int) bool { return v.n.Routers[r].BuffersEmpty() }
func (v netView) Secured(r int) bool      { return v.n.Secured(r) }

// PacketDelivered implements network.Sink. The network calls it serially
// on the engine goroutine (Commit delivers after the worker barrier), so
// staging the latency histogram in obs lane 0 honors the owner-only lane
// discipline.
func (e *engine) PacketDelivered(p *flit.Packet, core int, now int64) {
	e.sumLatency += p.Latency()
	e.nLatency++
	e.latencies = append(e.latencies, p.Latency())
	if e.obsM != nil {
		e.obsM.PacketLatency(p.Latency())
	}
	if e.cfg.Workload != nil {
		e.cfg.Workload.PacketDelivered(p, core, now)
	}
}

// FlitHopped implements network.HopObserver: bill dynamic energy at the
// moving router's current mode.
func (e *engine) FlitHopped(routerID int) {
	e.meter[routerID].AddHop(e.ctrl.Mode(routerID))
}

// CanAccept implements network.PowerView by delegating to the
// controller; the engine interposes on the interface for WakeRequest.
func (e *engine) CanAccept(routerID int) bool { return e.ctrl.CanAccept(routerID) }

// WakeRequest implements network.PowerView: it is the single activation
// funnel of the active set. Every way a deferred router can be handed
// work — an injection claim at an attached core, a head flit buffered
// upstream and routed toward it, a path punch — raises a securing claim
// or an explicit punch, and both call here before any flit can land. A
// deferred router is first caught up (billing its deferred window at
// the pre-wake state and restoring its clock phase/cycle counter, which
// AcceptFlit's ReadyCycle stamp depends on), then re-enters the
// schedule — cancelling any pending arm — and only then does the
// controller see the wake.
//
// During a concurrent sweep the boundary-isolation predicate guarantees
// every call targets a router of the calling shard, so the per-shard
// state touched here is owner-only.
func (e *engine) WakeRequest(routerID int) {
	if e.lazy {
		s := &e.shards[e.shardOf[routerID]]
		if !s.inSet(routerID) {
			target := e.curTick
			if routerID < s.loopPos {
				// The sweep already passed this router's slot for the
				// current tick; in an all-eager run it would have been
				// stepped this tick in its still-deferred state, so the
				// closed form covers the current tick too and the router
				// rejoins the schedule from the next tick.
				target++
			}
			e.armTick[routerID] = -1
			e.catchUpTo(routerID, target)
			s.setBit(routerID)
		}
	}
	e.ctrl.WakeRequest(routerID)
}

// stepRouter runs one router's per-tick work: static billing, IBU
// accumulation, and the power-state machine with a network cycle (staged
// through the shard's lane) when the router's clock fires.
func (e *engine) stepRouter(r, shard int) {
	e.shards[shard].swept++
	e.rowWork[e.rowOfR[r]]++
	mode, wt := e.ctrl.BillingState(r)
	e.meter[r].AddStatic(mode, wt, 1)
	e.ibuNum[r] += int64(e.occ[r])
	if e.ctrl.Advance(r) {
		e.net.CycleRouter(r, shard)
		e.ctrl.PostCycle(r)
	}
}

// sweepShard steps the shard's active-set routers in ascending router
// order (the order the eager sweep uses). Re-reading the bitset word
// after each step picks up routers activated mid-sweep at a higher ID —
// they are stepped this tick, exactly like the eager sweep would — while
// routers activated at an ID already passed were caught up through this
// tick at activation.
func (e *engine) sweepShard(si int, tick int64) {
	s := &e.shards[si]
	if e.obsM != nil {
		e.obsM.OnSweep(si)
	}
	for wi := range s.active {
		base := s.lo + wi<<6
		w := s.active[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			r := base + b
			s.loopPos = r
			e.stepRouter(r, si)
			e.lastTick[r] = tick + 1
			if e.canDefer(r) {
				s.clearBit(r)
			} else if e.canArm(r) {
				e.arm(s, r, tick+1)
				s.clearBit(r)
			}
			w = s.active[wi] & (^uint64(0) << uint(b+1))
		}
	}
	s.loopPos = s.hi
}

// parallelOK decides whether this tick's sweep may run concurrently: the
// active set must be large enough to amortize the barrier, and every
// router in the two rows on each side of every shard boundary must be
// inert (empty and unsecured; evaluated after this tick's wire landings
// and injections). Inert margin rows isolate the shards for one tick:
// any router that can move a flit is then at least two rows from a
// boundary, its neighbors (one row away) are all in-shard, a flit it
// moves lands one row further in at most, and — with Pipeline >= 2 — a
// freshly landed flit cannot move again this tick, so the farthest
// effect is a securing claim on the boundary's own-side row. In-flight
// wire traffic toward a margin row cannot be missed: its destination
// holds a securing claim until the tail lands, which makes the row
// non-inert. See DESIGN.md §5c for the full argument.
func (e *engine) parallelOK() bool {
	if len(e.shards) == 1 {
		return false
	}
	if e.activeCount() < e.minActive {
		return false
	}
	for _, m := range e.margins {
		// Bulk slab scan: the margin walk runs on every candidate
		// parallel tick, so it reads the occupancy plane and secured
		// counts as flat slices instead of calling Inert per router.
		if !e.net.RangeInert(m.lo, m.hi) {
			return false
		}
	}
	return true
}

// activeCount is the current active-set population (every router when
// active-set scheduling is off).
func (e *engine) activeCount() int {
	if !e.lazy {
		return len(e.ibuNum)
	}
	n := 0
	for si := range e.shards {
		for _, w := range e.shards[si].active {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// serialReason mirrors parallelOK's decision for the tracer: why the
// current tick is sweeping serially. Only evaluated when tracing is on,
// so the duplicate popcount is never paid on the default path.
func (e *engine) serialReason() string {
	if len(e.shards) == 1 {
		return "single-shard"
	}
	if e.activeCount() < e.minActive {
		return "below-min-active"
	}
	return "margin-not-inert"
}

// startWorkers spawns one worker goroutine per shard beyond the first;
// shard 0 always runs on the engine goroutine. A worker's tick has two
// phases, land then sweep: it first lands the due wire transits the
// engine bucketed for its shard (LandPending; empty on ticks without due
// wire traffic), then sweeps its slice of the active set. No barrier
// separates the phases across shards — a landing's whole effect set is
// destination-shard-local under the quiet-margin predicate (DESIGN.md
// §5d), so shard A may sweep while shard B still lands. Workers are
// started lazily at the first concurrent tick so serial runs never pay
// for them.
func (e *engine) startWorkers() {
	for si := 1; si < len(e.shards); si++ {
		s := &e.shards[si]
		s.work = make(chan int64, 1)
		go func(si int, s *shardState) {
			for t := range s.work {
				e.net.LandPending(si)
				e.sweepShard(si, t)
				e.wg.Done()
			}
		}(si, s)
	}
	e.workersUp = true
}

func (e *engine) stopWorkers() {
	if !e.workersUp {
		return
	}
	for si := 1; si < len(e.shards); si++ {
		close(e.shards[si].work)
	}
	e.workersUp = false
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.forSession {
		return nil, errors.New("sim: session configs run through NewSession")
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer e.stopWorkers()
	e.stepUntil(e.cfg.MaxTicks, true)
	e.finish()
	return e.result(e.tick, e.drained), nil
}

// newEngine validates the config and builds a ready-to-step engine:
// network, controller, shard layout, observability wiring and initial
// active-set membership. Run and NewSession share it.
func newEngine(cfg Config) (*engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	nR := cfg.Topo.NumRouters()
	e := &engine{
		cfg:     cfg,
		ctrl:    policy.NewController(nR, cfg.Spec),
		meter:   make([]power.Meter, nR),
		ibuNum:  make([]int64, nR),
		pending: make([][]float64, nR),
	}
	// The engine, not the controller, is the network's PowerView: its
	// WakeRequest wrapper is the active-set activation hook.
	e.net = network.New(cfg.Topo, cfg.VCs, cfg.Depth, cfg.Pipeline, e, e, e)
	e.net.SetLinkTicks(cfg.LinkTicks)
	e.ctrl.SetNetView(netView{e.net})
	e.ext = cfg.Extractor
	if e.ext == nil {
		e.ext = features.NewExtractor(cfg.Topo)
	}
	if cfg.CollectDataset {
		names := features.Names[:]
		if n, ok := e.ext.(featureNamer); ok {
			names = n.FeatureNames()
		}
		e.dataset = ml.NewDataset(names)
	}
	_, slots := e.net.Routers[0].Occupancy()
	e.slotsPerR = int64(slots)
	e.occ = e.net.OccupiedSlots()

	// Initial shard layout: contiguous row-aligned router ranges, rows
	// spread as evenly as K divides them. With K = 1 this is one shard
	// covering the mesh and the sweep is exactly the serial engine. The
	// boundaries move toward the load at epoch folds (maybeResplit)
	// unless FixedTiling pins them.
	width, rows := cfg.Topo.Width(), cfg.Topo.Height()
	k := cfg.Shards
	e.width, e.rows = width, rows
	e.rowOfR = make([]int32, nR)
	for r := range e.rowOfR {
		e.rowOfR[r] = int32(r / width)
	}
	e.rowWork = make([]int64, rows)
	e.shards = make([]shardState, k)
	e.shardOf = make([]uint8, nR)
	e.minActive = cfg.ShardMinActive
	e.cuts = make([]int, k)
	e.laneStarts = make([]int, k)
	e.shardLoadBuf = make([]int64, k)
	cuts := make([]int, k)
	row := 0
	for si := 0; si < k; si++ {
		cuts[si] = row
		h := rows / k
		if si < rows%k {
			h++
		}
		row += h
	}
	e.layoutShards(cuts)
	e.net.SetShards(k)
	e.ctrl.SetStatsLanes(e.laneStarts)

	// Observability wiring. Metrics lanes mirror the shard layout just
	// built (laneStarts), so shard-goroutine hooks stay owner-only; the
	// controller's event hooks activate only here, when an observer is
	// actually attached.
	if cfg.Obs != nil {
		e.obsM = cfg.Obs.Metrics
		e.tr = cfg.Obs.Tracer
	}
	if e.obsM == nil && cfg.CollectSeries {
		e.obsM = obs.NewMetrics()
	}
	runLabel := cfg.Spec.Name + "/workload"
	if cfg.forSession {
		runLabel = cfg.Spec.Name + "/session"
	}
	if cfg.Trace != nil {
		runLabel = cfg.Spec.Name + "/" + cfg.Trace.Name
	}
	if e.obsM != nil {
		e.obsM.BindRun(runLabel, e.laneStarts, nR, cfg.EpochTicks, cfg.CollectSeries)
		e.ctrl.SetObserver(e.obsM)
	}
	if e.tr != nil {
		e.tr.BeginRun(runLabel, k)
	}

	e.lazy = !cfg.NoActiveSet
	e.tiling = e.lazy && k > 1 && !cfg.FixedTiling
	if e.lazy {
		e.lastTick = make([]int64, nR)
		e.armTick = make([]int64, nR)
		for r := range e.armTick {
			e.armTick[r] = -1
		}
		// Initial membership mirrors the steady-state invariant: only
		// routers that cannot defer (e.g. a spec whose initial power state
		// has a pending transition) start on the schedule. Idle dormant
		// routers begin deferred at tick 0 — the catch-up closed form
		// reproduces their eager ticks exactly — which also keeps the
		// active set free of deferrable members at every fast-forward
		// check, so LazySkippedRouterTicks is identical with fast-forward
		// on or off.
		e.refreshActive(0)
	}

	if cfg.Trace != nil {
		e.entries = cfg.Trace.Entries
		// One packet per entry and deliveries never exceed injections, so
		// this capacity makes the per-delivery latency append allocation-free.
		e.latencies = make([]int64, 0, len(e.entries))
	}
	e.ffEnabled = !cfg.NoFastForward
	if cfg.Workload != nil {
		if inj, ok := cfg.Workload.(traffic.NextInjector); ok {
			e.nextInj = inj
		} else {
			// Without a watermark the workload may inject at any tick, so
			// every base tick must call Tick: no skipping is sound.
			e.ffEnabled = false
		}
	}
	return e, nil
}

// ffRouter advances one router across a skipped window of delta base
// ticks: residency billing in its current (frozen) billing state,
// controller catch-up in closed form, and empty-cycle replay for each
// fired local cycle. Occupancy is zero for every router across a skipped
// window (BufferedFlits was zero and nothing lands mid-window), so
// ibuNum is untouched and SkipCycles' empty-router replay is exact.
// Routers holding securing claims take the FastForwardSecured variant —
// eager stepping would have run PostCycle with the secured bit set after
// every fired cycle — and the secured set cannot change inside the
// window (claims are only raised by injections, landings and flit
// forwarding, and only released by flit movement, all of which bound the
// window), so sampling it once here is exact.
func (e *engine) ffRouter(r int, delta int64) {
	mode, wt := e.ctrl.BillingState(r)
	e.meter[r].AddStatic(mode, wt, delta)
	var cycles int64
	if e.net.Secured(r) {
		cycles = e.ctrl.FastForwardSecured(r, delta)
	} else {
		cycles = e.ctrl.FastForward(r, delta)
	}
	if cycles > 0 {
		e.net.Routers[r].SkipCycles(cycles)
	}
}

// injectNow hands a packet to the network at the tick currently being
// processed (curTick), stamping it and punching its path.
func (e *engine) injectNow(p *flit.Packet) {
	p.ID = e.nextID
	e.nextID++
	p.InjectAt = e.curTick
	e.net.Inject(p)
	if !e.cfg.NoPathPunch {
		e.punchPath(p.SrcCore, p.DstCore)
	}
}

// stepUntil processes base ticks in [e.tick, limit). With drainStop set
// it additionally stops — returning true and recording e.drained — at
// the end of the first tick where the injection source is exhausted and
// the network empty, which is Run's termination rule; without it the
// window runs to limit regardless (a Session advancing wall-clock time
// on an idle or still-draining fabric). Run calls it once with
// limit = MaxTicks; a Session calls it repeatedly with successive
// window bounds, scheduling new entries in between. Both produce
// bit-identical per-tick state because this is the only tick loop.
func (e *engine) stepUntil(limit int64, drainStop bool) bool {
	cfg := &e.cfg
	nR := len(e.ibuNum)
	tick := e.tick
	defer func() { e.tick = tick }()
	for ; tick < limit; tick++ {
		// Event horizon: when every router buffer is empty, no router
		// cycle can move a flit, so the next tick where anything beyond
		// closed-form accounting happens is the earliest of: the next
		// pending injection (trace cursor or workload watermark), the
		// next wire arrival, the next controller timer (wakeup/switch
		// completion, idle-gating fire, armed gating tick), the next
		// local cycle of a router with packets queued at its cores
		// (injection happens inside that cycle), and the epoch boundary.
		// Every tick before that is "boring" — billing, idle counting and
		// clock phase are its only effects — so we jump there in closed
		// form; the interesting tick itself is processed normally below.
		// This subsumes the original quiescent-window fast-forward: fully
		// quiescent windows compute the same bounds and still count as
		// FastForwardedTicks, while windows skipped with flits riding
		// wires, packets queued, or claims held count as
		// HorizonSkippedTicks. See DESIGN.md §5h for the invariant
		// argument. In drain mode a run that is finished (source
		// exhausted, network empty) stops at the drain check instead of
		// skipping; a session window without drainStop may jump across
		// pure idle time toward the window limit.
		if e.ffEnabled && e.net.BufferedFlits() == 0 {
			sourceDone := e.cursor >= len(e.entries)
			if cfg.Workload != nil {
				sourceDone = cfg.Workload.Done()
			}
			if !(drainStop && sourceDone && !e.net.InFlight()) {
				// Cheap global bounds first; the per-member scans below
				// are skipped entirely once delta hits 0.
				delta := limit - tick
				if e.cursor < len(e.entries) {
					if b := e.entries[e.cursor].Time - tick; b < delta {
						delta = b
					}
				}
				if e.nextInj != nil {
					// Watermark and wire-due sentinels are MaxInt64;
					// subtracting the (non-negative) tick cannot overflow.
					if b := e.nextInj.NextInjectionTick(tick) - tick; b < delta {
						delta = b
					}
				}
				if b := (tick/cfg.EpochTicks+1)*cfg.EpochTicks - 1 - tick; b < delta {
					delta = b
				}
				if b := e.net.NextWireDue() - tick; b < delta {
					delta = b
				}
				// A router whose next local cycle would inject a queued
				// packet caps the jump at that cycle's tick: injection is
				// the one buffer-filling event controller timers don't
				// predict. Routers with queued packets always hold
				// securing claims (Inject raises the claim before the
				// wake request), so in lazy mode they are schedule
				// members and the member scan sees them.
				queued := e.net.HasQueued()
				if e.lazy {
					// Deferred routers are dormant (no pending autonomous
					// event, no claims) by the active-set invariant, so
					// only schedule members and armed gating ticks can
					// bound the window, and only schedule members need
					// advancing: deferred routers stay behind and are
					// caught up against the jumped clock when next
					// touched. An armed router's gating tick must be
					// processed normally, so the jump stops there (stale
					// heap heads only make the bound conservative).
					for si := range e.shards {
						s := &e.shards[si]
						s.ids = s.activeIDs(s.ids[:0])
						if len(s.armT) > 0 {
							if b := s.armT[0] - tick; b < delta {
								delta = b
							}
						}
						for _, r := range s.ids {
							if delta <= 0 {
								break
							}
							if ev := e.ctrl.TicksToNextEvent(r); ev < delta {
								delta = ev
							}
							if queued && e.ctrl.CanAccept(r) && e.net.QueuedAtRouter(r) > 0 {
								if b := e.ctrl.TicksToNextCycle(r); b < delta {
									delta = b
								}
							}
						}
					}
					if delta > 0 {
						for si := range e.shards {
							for _, r := range e.shards[si].ids {
								e.ffRouter(r, delta)
								e.lastTick[r] += delta
							}
						}
					}
				} else {
					for r := 0; r < nR && delta > 0; r++ {
						if ev := e.ctrl.TicksToNextEvent(r); ev < delta {
							delta = ev
						}
						if queued && e.ctrl.CanAccept(r) && e.net.QueuedAtRouter(r) > 0 {
							if b := e.ctrl.TicksToNextCycle(r); b < delta {
								delta = b
							}
						}
					}
					if delta > 0 {
						for r := 0; r < nR; r++ {
							e.ffRouter(r, delta)
						}
					}
				}
				if delta > 0 {
					if e.nextInj != nil {
						e.nextInj.SkipTicks(tick, delta)
					}
					if e.net.Quiescent() {
						e.ffTicks += delta
						if e.obsM != nil {
							e.obsM.OnFastForward(delta)
						}
						if e.tr != nil {
							e.tr.Span(obs.EngineTrack, "fast-forward", "", tick, delta)
						}
					} else {
						e.horizonTicks += delta
						if e.obsM != nil {
							e.obsM.OnHorizonSkip(delta)
						}
						if e.tr != nil {
							e.tr.Span(obs.EngineTrack, "horizon-skip", "", tick, delta)
						}
					}
					tick += delta
					if tick >= limit {
						break
					}
				}
			}
		}
		e.ctrl.SetNow(timing.Tick(tick))
		e.net.SetTick(tick)
		e.curTick = tick
		if e.lazy {
			for si := range e.shards {
				e.shards[si].loopPos = e.shards[si].lo
			}
			e.popArms(tick)
		}
		// Injections precede wire landings so the quiet-margin predicate
		// can be evaluated before any landing applies: both only raise
		// securing claims and wake requests against routers that are
		// already caught up (a landing's destination is secured, hence
		// scheduled, until the tail lands), so the two orders commute
		// bit-for-bit — see DESIGN.md §5d.
		for e.cursor < len(e.entries) && e.entries[e.cursor].Time <= tick {
			en := e.entries[e.cursor]
			e.injectNow(e.net.AcquirePacket(en.Src, en.Dst, en.Kind, tick))
			e.cursor++
		}
		if cfg.Workload != nil {
			cfg.Workload.Tick(tick, e.injectNow)
		}
		if e.lazy {
			if e.parallelOK() {
				// A due transit into a boundary margin keeps its
				// destination secured — hence the margin non-inert and this
				// branch unreachable — so every landing bucketed here is
				// destination-shard-local and the workers can land and
				// sweep without cross-shard effects.
				if !e.workersUp {
					e.startWorkers()
				}
				staged := e.net.StageDueLandings(e.shardOf)
				e.parallelLandings += int64(staged)
				e.wg.Add(len(e.shards) - 1)
				for si := 1; si < len(e.shards); si++ {
					e.shards[si].work <- tick
				}
				e.net.LandPending(0)
				e.sweepShard(0, tick)
				e.wg.Wait()
				e.parallelTicks++
				if e.obsM != nil {
					e.obsM.OnParallelTick(staged)
				}
				if e.tr != nil {
					// Emitted after the barrier, from the engine goroutine —
					// the tracer is never touched by shard workers.
					for si := range e.shards {
						e.tr.Span(obs.ShardTrack(si), "sweep", "", tick, 1)
					}
					if staged > 0 {
						e.tr.Instant(obs.EngineTrack, "land", tick, int64(staged))
					}
					e.tr.Span(obs.EngineTrack, "parallel-tick", "", tick, 1)
				}
			} else {
				if e.tr != nil {
					e.tr.Span(obs.EngineTrack, "serial-sweep", e.serialReason(), tick, 1)
				}
				e.net.DeliverDue()
				for si := range e.shards {
					e.sweepShard(si, tick)
				}
			}
		} else {
			if e.tr != nil {
				e.tr.Span(obs.EngineTrack, "sweep-eager", "", tick, 1)
			}
			e.net.DeliverDue()
			for r := 0; r < nR; r++ {
				e.stepRouter(r, 0)
			}
		}
		// Fold every shard's staged network effects (wire appends,
		// deliveries, counters) in deterministic shard-then-router order;
		// the aggregate reads below (InFlight, epoch snapshots) require
		// committed state.
		e.net.Commit()
		if (tick+1)%cfg.EpochTicks == 0 {
			if e.lazy {
				// Catch-up barrier: epoch IBU, feature vectors, series
				// snapshots and meter sums must see fully-advanced state.
				e.catchUpAll(tick + 1)
				if e.tr != nil {
					e.tr.Instant(obs.EngineTrack, "catch-up-barrier", tick+1, -1)
				}
			}
			e.epochBoundary(timing.Tick(tick + 1))
			if e.tr != nil {
				e.tr.Instant(obs.EngineTrack, "epoch", tick+1, -1)
			}
			if e.lazy {
				if e.tiling {
					// Re-cut the partition toward the observed load while
					// the workers are parked and every router is caught up
					// (the barrier above); refreshActive below rebuilds
					// membership and arms against whatever partition this
					// chose, so a re-split never touches simulated state.
					e.maybeResplit(tick + 1)
				}
				e.refreshActive(tick + 1)
			}
		}
		if !drainStop {
			continue
		}
		sourceDone := e.cursor >= len(e.entries)
		if cfg.Workload != nil {
			sourceDone = cfg.Workload.Done()
		}
		if sourceDone && !e.net.InFlight() {
			e.drained = true
			tick++
			return true
		}
	}
	return false
}

// finish flushes end-of-run state: the final catch-up, the trailing
// observability fold and the tracer's pending spans. Run calls it after
// its single stepUntil; a Session calls it from Close.
func (e *engine) finish() {
	if e.lazy {
		e.catchUpAll(e.tick)
	}
	if e.obsM != nil {
		// Fold whatever accrued after the last epoch boundary (partial
		// epochs, the final catch-up flush) so the snapshot covers the
		// whole run.
		hits, misses := e.net.PoolStats()
		e.obsM.FinishRun(e.tick, obs.EpochFold{
			FlitsDelivered: e.net.FlitsDelivered(),
			ActiveRouters:  e.activeCount(),
			PoolHits:       hits,
			PoolMisses:     misses,
			ShardLoad:      e.shardLoads(),
			ShardResplits:  e.resplits,
		})
	}
	if e.tr != nil {
		// Close this run's pending spans and push them to the writer; the
		// error (if any) is sticky and resurfaces on the owner's final
		// Flush before it closes the file.
		e.tr.Flush() //nolint:errcheck
	}
}

// punchPath wakes the first PunchHops routers on the XY path from src to
// dst so gated routers charge up while the packet is still upstream
// (§III-B's look-ahead wake, Power Punch style). Routers beyond the punch
// horizon are woken one hop ahead as the head flit advances, which makes
// the scheme partially rather than fully non-blocking.
func (e *engine) punchPath(srcCore, dstCore int) {
	t := e.cfg.Topo
	r := t.RouterOf(srcCore)
	last := t.RouterOf(dstCore)
	hops := e.cfg.PunchHops
	for {
		e.WakeRequest(r)
		if r == last {
			return
		}
		if hops > 0 {
			hops--
			if hops == 0 {
				return
			}
		}
		r = topology.NextRouter(t, r, dstCore)
	}
}

// epochBoundary closes an epoch on every router: computes epoch IBU,
// labels the previous epoch's pending features, collects new features and
// runs the mode selector.
func (e *engine) epochBoundary(now timing.Tick) {
	if e.lazy {
		// The §5b barrier precondition, asserted: every router must be
		// fully caught up before any epoch aggregate (IBU, features,
		// meter sums) is read. Sampling a deferred router's occupancy
		// mid-epoch without catchUpAll silently reads a stale window;
		// this turns that bug into a loud failure.
		for r := range e.lastTick {
			if e.lastTick[r] != int64(now) {
				panic(fmt.Sprintf("sim: epoch boundary at tick %d with router %d caught up only to tick %d — catchUpAll barrier missed (DESIGN.md §5b)", int64(now), r, e.lastTick[r]))
			}
		}
	}
	den := float64(e.slotsPerR) * float64(e.cfg.EpochTicks)
	sumIBU := 0.0
	for r := range e.ibuNum {
		ibu := float64(e.ibuNum[r]) / den
		sumIBU += ibu
		e.ibuNum[r] = 0
		if e.dataset != nil && e.pending[r] != nil {
			e.dataset.Add(e.pending[r], ibu)
		}
		feats := e.ext.Collect(r, e.net, e.ctrl, ibu, now)
		e.pending[r] = feats
		e.ctrl.EpochBoundary(r, ibu, feats)
	}
	if e.obsM == nil {
		return
	}
	// The epoch fold owns everything derived: the stats.EpochSample (its
	// field computation is the engine's pre-obs code, so series CSVs are
	// byte-identical), lane draining, residency/energy deltas, and the
	// live snapshot. It runs here — after Commit and the catch-up
	// barrier, with every shard worker parked — which is what makes the
	// single-threaded drain of the shard lanes safe.
	hits, misses := e.net.PoolStats()
	driftFired := e.obsM.FoldEpoch(obs.EpochFold{
		Now:            int64(now),
		SumIBU:         sumIBU,
		FlitsDelivered: e.net.FlitsDelivered(),
		ActiveRouters:  e.activeCount(),
		PoolHits:       hits,
		PoolMisses:     misses,
		ShardLoad:      e.shardLoads(),
		ShardResplits:  e.resplits,
	}, e.ctrl, e.meter)
	if driftFired && e.tr != nil {
		// Mark the stale-weights moment on the engine track so the drift
		// is visible in the Chrome trace timeline next to the epoch scan.
		e.tr.Instant(obs.EngineTrack, "pred-drift", int64(now), e.obsM.DriftEvents())
	}
}

func (e *engine) result(ticks int64, drained bool) *Result {
	traceName := "workload"
	if e.cfg.forSession {
		traceName = "session"
	}
	if e.cfg.Trace != nil {
		traceName = e.cfg.Trace.Name
	}
	var lazyTicks int64
	for si := range e.shards {
		lazyTicks += e.shards[si].lazyTicks
	}
	shardLoad := make([]int64, len(e.shards))
	copy(shardLoad, e.shardLoads())
	res := &Result{
		Model:                  e.cfg.Spec.Name,
		Trace:                  traceName,
		Ticks:                  ticks,
		Drained:                drained,
		FastForwardedTicks:     e.ffTicks,
		HorizonSkippedTicks:    e.horizonTicks,
		LazySkippedRouterTicks: lazyTicks,
		ParallelTicks:          e.parallelTicks,
		ParallelLandings:       e.parallelLandings,
		ShardLoad:              shardLoad,
		ShardLoadImbalance:     loadImbalance(shardLoad),
		ShardResplits:          e.resplits,
		PacketsInjected:        e.net.PacketsInjected(),
		PacketsDelivered:       e.net.PacketsDelivered(),
		FlitsDelivered:         e.net.FlitsDelivered(),
		Policy:                 e.ctrl.Stats(),
		Dataset:                e.dataset,
	}
	if e.nLatency > 0 {
		res.AvgLatencyTicks = float64(e.sumLatency) / float64(e.nLatency)
		res.AvgLatencyNS = res.AvgLatencyTicks * timing.TickSeconds * 1e9
	}
	res.Latency = stats.Summarize(e.latencies)
	if e.cfg.CollectSeries && e.obsM != nil {
		res.Series = e.obsM.Series()
	}
	if e.obsM != nil {
		snap := e.obsM.Snapshot()
		res.MeanAbsPredErr = snap.MeanAbsPredErr
		res.UnderPredDecisions = snap.UnderPredDecisions
		res.OverPredDecisions = snap.OverPredDecisions
		res.UnderPredStallTicks = snap.UnderPredStallTicks
		res.OverPredStaticWasteJ = snap.OverPredStaticWasteJ
		res.PredDriftEvents = snap.DriftEvents
	}
	if ticks > 0 {
		res.Throughput = float64(res.FlitsDelivered) / float64(ticks)
	}
	res.RouterOffFraction = make([]float64, len(e.meter))
	res.RouterAvgMode = make([]float64, len(e.meter))
	var total power.Meter
	for i := range e.meter {
		total.Add(&e.meter[i])
		if ticks > 0 {
			res.RouterOffFraction[i] = float64(e.meter[i].ResidencyTicks(power.Inactive)) / float64(ticks)
		}
		var activeTicks, weighted int64
		for m := 0; m < power.NumActiveModes; m++ {
			t := e.meter[i].ResidencyTicks(power.ActiveMode(m))
			activeTicks += t
			weighted += t * int64(m)
		}
		if activeTicks > 0 {
			res.RouterAvgMode[i] = float64(weighted) / float64(activeTicks)
		}
	}
	res.StaticJ = total.StaticJoules()
	res.DynamicJ = total.DynamicJoules()
	routerTicks := float64(ticks) * float64(len(e.meter))
	if routerTicks > 0 {
		res.OffFraction = float64(total.ResidencyTicks(power.Inactive)) / routerTicks
		res.WakeupFraction = float64(total.ResidencyTicks(power.Wakeup)) / routerTicks
		for i := 0; i < power.NumActiveModes; i++ {
			res.ModeResidency[i] = float64(total.ResidencyTicks(power.ActiveMode(i))) / routerTicks
		}
	}
	return res
}
