// Event-horizon equivalence harness (DESIGN.md §5h). The fast-forward
// path's original precondition — full network quiescence, no workload
// attached — was relaxed by the unified event horizon: the engine now
// skips idle windows with flits riding wires, packets queued behind
// gated routers, securing claims held, and closed-loop workloads
// attached (via traffic.NextInjector). These tests pin the relaxed
// path's bit-exactness against tick-by-tick execution on the traffic
// shapes that exercise each new regime: randomized bursty traces with
// long mid-epoch gaps (wire-flight and wake-window skips), a
// trace-shaped Replay workload (the injection watermark), and the
// closed-loop mcsim multicore model (watermark + SkipTicks replay).
package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/mcsim"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// burstyTrace generates short randomized bursts separated by long idle
// gaps. The gap distribution (tens to thousands of ticks) deliberately
// straddles every horizon regime: gaps shorter than the drain leave
// flits on wires, mid-size gaps land inside wake windows and idle-gating
// countdowns, and long gaps cross epoch boundaries mid-gap.
func burstyTrace(topo topology.Topology, seed, horizon int64) *traffic.Trace {
	rng := rand.New(rand.NewSource(seed))
	nc := topo.NumCores()
	tr := &traffic.Trace{Name: "bursty", Cores: nc, Horizon: horizon}
	for t := int64(0); t < horizon; t += 40 + int64(rng.Intn(2600)) {
		for i, n := 0, 3+rng.Intn(8); i < n; i++ {
			src := rng.Intn(nc)
			dst := rng.Intn(nc)
			if dst == src {
				dst = (dst + 1) % nc
			}
			kind := flit.Request
			if rng.Intn(2) == 1 {
				kind = flit.Response
			}
			tr.Entries = append(tr.Entries, traffic.Entry{
				Time: t + int64(rng.Intn(4)), Src: src, Dst: dst, Kind: kind,
			})
		}
	}
	tr.SortEntries()
	return tr
}

// runHorizonPair executes one bursty configuration with the horizon path
// enabled and disabled and returns both results.
func runHorizonPair(t *testing.T, s *core.Suite, kind core.ModelKind, tr *traffic.Trace, linkTicks int64, shards int) (fast, slow *sim.Result) {
	t.Helper()
	spec, err := s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{
		Topo:           s.Topo,
		Spec:           spec,
		Trace:          tr,
		LinkTicks:      linkTicks,
		Shards:         shards,
		ShardMinActive: -1,
	}
	fast, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh spec gives stateful selectors (ML+TURBO) a clean slate.
	base.Spec, err = s.Spec(kind)
	if err != nil {
		t.Fatal(err)
	}
	base.NoFastForward = true
	slow, err = sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	return fast, slow
}

// TestHorizonEquivalenceBursty proves the event-horizon path bit-exact
// on a randomized bursty trace for all five model kinds, wire latencies
// 1 and 3, and shard counts 1/2/4: every Result field except the
// scheduling diagnostics is deeply equal between horizon-skip and
// tick-by-tick runs.
func TestHorizonEquivalenceBursty(t *testing.T) {
	s := passthroughSuite(t)
	tr := burstyTrace(s.Topo, 11, 20_000)
	horizonEngaged := false
	for _, kind := range core.AllKinds {
		for _, linkTicks := range []int64{1, 3} {
			for _, shards := range shardCounts {
				kind, linkTicks, shards := kind, linkTicks, shards
				t.Run(fmt.Sprintf("%s/link%d/shards%d", kind, linkTicks, shards), func(t *testing.T) {
					fast, slow := runHorizonPair(t, s, kind, tr, linkTicks, shards)
					if slow.FastForwardedTicks != 0 || slow.HorizonSkippedTicks != 0 {
						t.Fatalf("NoFastForward run skipped ticks: ff=%d horizon=%d",
							slow.FastForwardedTicks, slow.HorizonSkippedTicks)
					}
					if fast.FastForwardedTicks == 0 {
						t.Error("quiescent fast-forward never engaged on a bursty trace")
					}
					if fast.HorizonSkippedTicks > 0 {
						horizonEngaged = true
					}
					zeroSchedulingDiagnostics(fast)
					zeroSchedulingDiagnostics(slow)
					if !reflect.DeepEqual(fast, slow) {
						t.Errorf("horizon result differs from tick-by-tick:\nfast: %+v\nslow: %+v", fast, slow)
					}
				})
			}
		}
	}
	if !horizonEngaged {
		t.Error("non-quiescent horizon skip never engaged on any configuration; the relaxed-precondition check is vacuous")
	}
}

// TestHorizonEquivalenceBurstyFuzz replays the equivalence over several
// random trace seeds on the full DozzNoC model with slow wires — the
// configuration with the most concurrent watermarks (wire flights, wake
// windows, idle-gating countdowns, DVFS switch timers).
func TestHorizonEquivalenceBurstyFuzz(t *testing.T) {
	s := passthroughSuite(t)
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tr := burstyTrace(s.Topo, seed, 20_000)
			fast, slow := runHorizonPair(t, s, core.KindDozzNoC, tr, 3, 1)
			zeroSchedulingDiagnostics(fast)
			zeroSchedulingDiagnostics(slow)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("seed %d: horizon result differs from tick-by-tick:\nfast: %+v\nslow: %+v", seed, fast, slow)
			}
		})
	}
}

// TestHorizonEquivalenceReplayWorkload drives the same trace through the
// traffic.Replay workload adapter (exercising the Workload-side
// injection watermark) and through the engine's native trace cursor with
// fast-forward off: the two runs must agree on every Result field.
func TestHorizonEquivalenceReplayWorkload(t *testing.T) {
	s := passthroughSuite(t)
	tr := burstyTrace(s.Topo, 7, 20_000)
	spec, err := s.Spec(core.KindDozzNoC)
	if err != nil {
		t.Fatal(err)
	}
	w := traffic.NewReplay(tr)
	fast, err := sim.Run(sim.Config{Topo: s.Topo, Spec: spec, Workload: w, LinkTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fast.FastForwardedTicks == 0 {
		t.Error("fast-forward never engaged with a NextInjector workload attached")
	}
	if w.Delivered() != fast.PacketsDelivered {
		t.Errorf("replay saw %d deliveries, engine counted %d", w.Delivered(), fast.PacketsDelivered)
	}
	spec, err = s.Spec(core.KindDozzNoC)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sim.Run(sim.Config{Topo: s.Topo, Spec: spec, Trace: tr, LinkTicks: 3, NoFastForward: true})
	if err != nil {
		t.Fatal(err)
	}
	// The runs label their source differently ("workload" vs the trace
	// name); everything simulated must match.
	fast.Trace, slow.Trace = "", ""
	zeroSchedulingDiagnostics(fast)
	zeroSchedulingDiagnostics(slow)
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("replay-workload result differs from native trace run:\nreplay: %+v\ntrace:  %+v", fast, slow)
	}
}

// TestHorizonEquivalenceClosedLoop proves the event horizon exact on the
// closed-loop mcsim workload — the regime the old quiescent-only path
// could never touch (Workload != nil used to disable fast-forward
// outright). The horizon arm must both engage (HorizonSkippedTicks > 0)
// and reproduce the tick-by-tick run bit-for-bit, including the
// workload's own statistics, across shard counts.
func TestHorizonEquivalenceClosedLoop(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	params := mcsim.DefaultSystem(topo)
	params.Core.Instructions = 20_000

	run := func(noFF bool, shards int) (*sim.Result, mcsim.Stats) {
		w, err := mcsim.New(params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Topo:           topo,
			Spec:           policy.DozzNoC(policy.ReactiveSelector{}),
			Workload:       w,
			NoFastForward:  noFF,
			Shards:         shards,
			ShardMinActive: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatal("closed-loop run did not finish")
		}
		return res, w.Stats()
	}
	slow, slowStats := run(true, 1)
	fast, fastStats := run(false, 1)
	if fast.HorizonSkippedTicks == 0 {
		t.Error("event horizon never engaged on the closed-loop workload")
	}
	zeroSchedulingDiagnostics(fast)
	zeroSchedulingDiagnostics(slow)
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("closed-loop horizon result differs from tick-by-tick:\nfast: %+v\nslow: %+v", fast, slow)
	}
	if !reflect.DeepEqual(fastStats, slowStats) {
		t.Errorf("workload stats differ:\nfast: %+v\nslow: %+v", fastStats, slowStats)
	}
	for _, k := range []int{2, 4} {
		sharded, shardedStats := run(false, k)
		zeroSchedulingDiagnostics(sharded)
		if !reflect.DeepEqual(sharded, slow) {
			t.Errorf("Shards=%d horizon result differs from serial tick-by-tick:\nsharded: %+v\nserial:  %+v", k, sharded, slow)
		}
		if !reflect.DeepEqual(shardedStats, slowStats) {
			t.Errorf("Shards=%d workload stats differ:\nsharded: %+v\nserial:  %+v", k, shardedStats, slowStats)
		}
	}
}
