package core

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// tinySuite keeps training fast: 4x4 mesh, short horizon.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(topology.NewMesh(4, 4), Options{Horizon: 6000, Seed: 3})
}

func TestKindStrings(t *testing.T) {
	want := map[ModelKind]string{
		KindBaseline: "Baseline",
		KindPG:       "PG",
		KindLEAD:     "DVFS+ML",
		KindDozzNoC:  "DozzNoC",
		KindTurbo:    "ML+TURBO",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d = %q, want %q", int(k), k.String(), s)
		}
	}
	if !KindDozzNoC.IsML() || KindPG.IsML() || KindBaseline.IsML() {
		t.Error("IsML wrong")
	}
	if len(AllKinds) != 5 || len(MLKinds) != 3 {
		t.Error("kind lists wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.VCs == 0 || o.Depth == 0 || o.Pipeline == 0 || o.EpochTicks == 0 || o.Horizon == 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if len(o.Lambdas) == 0 {
		t.Fatal("lambda grid empty")
	}
}

func TestTraceCaching(t *testing.T) {
	s := tinySuite(t)
	a, err := s.Trace("fft")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Trace("fft")
	if a != b {
		t.Fatal("trace not cached")
	}
	if _, err := s.Trace("bogus"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTraceCompressed(t *testing.T) {
	s := tinySuite(t)
	unc, _ := s.TraceCompressed("fft", 1)
	cmp, err := s.TraceCompressed("fft", 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Horizon >= unc.Horizon {
		t.Fatal("compression did not shrink the horizon")
	}
}

func TestSpecWithoutTrainingFails(t *testing.T) {
	s := tinySuite(t)
	if _, err := s.Spec(KindDozzNoC); err == nil {
		t.Fatal("untrained ML spec handed out")
	}
	if _, err := s.Spec(KindBaseline); err != nil {
		t.Fatalf("baseline spec failed: %v", err)
	}
	if _, err := s.Spec(KindPG); err != nil {
		t.Fatalf("PG spec failed: %v", err)
	}
}

func TestBaselineRunWithoutTraining(t *testing.T) {
	s := tinySuite(t)
	res, err := s.RunBenchmark(KindBaseline, "fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.PacketsDelivered == 0 {
		t.Fatalf("baseline run broken: %+v", res)
	}
}

func TestDatasetHarvestAndCache(t *testing.T) {
	s := tinySuite(t)
	d, err := s.Dataset(KindDozzNoC, "fft")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("empty harvested dataset")
	}
	d2, _ := s.Dataset(KindDozzNoC, "fft")
	if d != d2 {
		t.Fatal("dataset not cached")
	}
}

func TestTrainAndRunPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	s := tinySuite(t)
	rep, err := s.Train(KindDozzNoC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || len(rep.Best.Weights) != 5 {
		t.Fatalf("trained model = %+v", rep.Best)
	}
	if len(rep.Sweep) == 0 {
		t.Fatal("no lambda sweep recorded")
	}
	// Cached on second call.
	rep2, _ := s.Train(KindDozzNoC)
	if rep != rep2 {
		t.Fatal("training not cached")
	}
	if s.TrainedModel(KindDozzNoC) != rep.Best {
		t.Fatal("TrainedModel mismatch")
	}

	res, err := s.RunBenchmark(KindDozzNoC, "fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.PacketsDelivered != res.PacketsInjected {
		t.Fatalf("trained DozzNoC run broken: %+v", res)
	}
}

func TestTrainNonMLFails(t *testing.T) {
	s := tinySuite(t)
	if _, err := s.Train(KindBaseline); err == nil {
		t.Fatal("training the baseline should fail")
	}
}

func TestSetTrainedModel(t *testing.T) {
	s := tinySuite(t)
	m := &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}} // predict = current IBU
	s.SetTrainedModel(KindLEAD, m)
	res, err := s.RunBenchmark(KindLEAD, "fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("run with injected model failed")
	}
}

func TestCompareAndRelatives(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison in -short mode")
	}
	s := tinySuite(t)
	for _, k := range MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	cmp, err := s.Compare("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 5 {
		t.Fatalf("compared %d models", len(cmp.Results))
	}
	rels := cmp.Relatives()
	if len(rels) != 5 {
		t.Fatalf("%d relatives", len(rels))
	}
	for _, r := range rels {
		if r.Kind == KindBaseline {
			if r.ThroughputRatio != 1 || r.StaticNorm != 1 || r.DynamicNorm != 1 {
				t.Fatalf("baseline relative to itself = %+v", r)
			}
		}
		if r.Kind == KindPG && r.StaticSavings <= 0 {
			t.Error("PG should save static energy")
		}
		if r.Kind == KindDozzNoC && (r.StaticSavings <= 0 || r.DynamicSavings <= 0) {
			t.Error("DozzNoC should save both")
		}
	}
}

func TestMergedDatasetSplitSizes(t *testing.T) {
	s := tinySuite(t)
	val, err := s.MergedDataset(KindLEAD, traffic.Validation)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := s.Dataset(KindLEAD, "freqmine")
	if val.Len() <= one.Len() {
		t.Fatal("merged validation set should cover 3 traces")
	}
}

func TestRelativeEDP(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison in -short mode")
	}
	s := tinySuite(t)
	for _, k := range MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	cmp, err := s.Compare("lu", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range cmp.Relatives() {
		if rel.Kind == KindBaseline && rel.EDPNorm != 1 {
			t.Fatalf("baseline EDP norm = %g", rel.EDPNorm)
		}
		if rel.Kind == KindDozzNoC && rel.EDPNorm >= 1 {
			t.Errorf("DozzNoC EDP norm %g should beat the baseline on a sparse bench", rel.EDPNorm)
		}
	}
}

func TestCompareParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel comparison in -short mode")
	}
	s := tinySuite(t)
	for _, k := range MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
	seq, err := s.Compare("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.CompareParallel("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range AllKinds {
		a, b := seq.Results[k], par.Results[k]
		if a.Ticks != b.Ticks || a.StaticJ != b.StaticJ || a.DynamicJ != b.DynamicJ ||
			a.PacketsDelivered != b.PacketsDelivered {
			t.Fatalf("%v: parallel result diverged (%d vs %d ticks)", k, a.Ticks, b.Ticks)
		}
	}
}

func TestHarvestParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel harvest in -short mode")
	}
	s := tinySuite(t)
	if err := s.HarvestParallel([]ModelKind{KindDozzNoC, KindLEAD}, []string{"fft", "lu"}); err != nil {
		t.Fatal(err)
	}
	// The caches are now warm; Dataset returns without simulating.
	d, err := s.Dataset(KindDozzNoC, "fft")
	if err != nil || d.Len() == 0 {
		t.Fatalf("cache miss after parallel harvest: %v", err)
	}
	// And the parallel-harvested dataset matches a fresh sequential one.
	s2 := tinySuite(t)
	d2, err := s2.Dataset(KindDozzNoC, "fft")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != d2.Len() {
		t.Fatalf("parallel harvest diverged: %d vs %d rows", d.Len(), d2.Len())
	}
}

func TestTrainAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel training in -short mode")
	}
	s := tinySuite(t)
	if err := s.TrainAllParallel(); err != nil {
		t.Fatal(err)
	}
	for _, k := range MLKinds {
		if s.TrainedModel(k) == nil {
			t.Fatalf("%v not trained", k)
		}
	}
}

func TestSaveLoadTrainedModels(t *testing.T) {
	s := tinySuite(t)
	for _, k := range MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}, Lambda: float64(k)})
	}
	dir := t.TempDir()
	if err := s.SaveTrainedModels(dir); err != nil {
		t.Fatal(err)
	}
	s2 := tinySuite(t)
	n, err := s2.LoadTrainedModels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d models, want 3", n)
	}
	for _, k := range MLKinds {
		if s2.TrainedModel(k) == nil {
			t.Fatalf("%v missing after load", k)
		}
	}
	// Empty dir loads nothing without error.
	n, err = tinySuite(t).LoadTrainedModels(t.TempDir())
	if err != nil || n != 0 {
		t.Fatalf("empty dir load = %d, %v", n, err)
	}
	if _, err := WeightsFileName(KindBaseline); err == nil {
		t.Error("baseline weights file name should error")
	}
}
