// Package core is the top-level DozzNoC API: it wires the traffic
// generator, the offline ML training pipeline and the simulation engine
// into the paper's experimental protocol, so a caller can reproduce any
// evaluation result in a few lines:
//
//	suite := core.NewSuite(topology.NewMesh(8, 8), core.Options{})
//	if err := suite.TrainAll(); err != nil { ... }
//	res, err := suite.RunBenchmark(core.KindDozzNoC, "fft", 1)
//
// The suite caches generated traces, reactive-run datasets and trained
// models, so repeated experiment functions share work.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ModelKind identifies one of the five compared models.
type ModelKind int

const (
	// KindBaseline is always-on, always-M7.
	KindBaseline ModelKind = iota
	// KindPG is the Power-Punch-like power-gated model (active = M7).
	KindPG
	// KindLEAD is LEAD-tau: ML-driven DVFS, no power-gating.
	KindLEAD
	// KindDozzNoC is the proposed ML+PG+DVFS model.
	KindDozzNoC
	// KindTurbo is ML+TURBO.
	KindTurbo

	numKinds
)

// AllKinds lists the models in the paper's comparison order.
var AllKinds = []ModelKind{KindBaseline, KindPG, KindLEAD, KindDozzNoC, KindTurbo}

// MLKinds lists the three models that carry a trained predictor.
var MLKinds = []ModelKind{KindLEAD, KindDozzNoC, KindTurbo}

// String names a model kind as the paper does.
func (k ModelKind) String() string {
	switch k {
	case KindBaseline:
		return "Baseline"
	case KindPG:
		return "PG"
	case KindLEAD:
		return "DVFS+ML"
	case KindDozzNoC:
		return "DozzNoC"
	case KindTurbo:
		return "ML+TURBO"
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// IsML reports whether the kind uses a trained predictor.
func (k ModelKind) IsML() bool {
	return k == KindLEAD || k == KindDozzNoC || k == KindTurbo
}

// Options tune the suite; zero values select the paper's configuration.
type Options struct {
	VCs        int   // per-port virtual channels (default 2)
	Depth      int   // flits per VC (default 4)
	Pipeline   int   // router pipeline depth (default 3)
	LinkTicks  int64 // inter-router wire latency in base ticks (default 0)
	EpochTicks int64 // DVFS epoch in base ticks (default 500)
	Horizon    int64 // trace generation window in ticks (default 120000)
	Seed       int64 // trace generator seed (default 1)
	Lambdas    []float64

	// Parallel routes Compare and TrainAll through the worker-pool entry
	// points (CompareParallel, TrainAllParallel). Each simulation is still
	// single-threaded and deterministic, so results are identical to the
	// sequential paths; only wall-clock changes.
	Parallel bool

	// Shards is the per-simulation tick-engine shard count (sim.Config
	// Shards): 0 auto-sizes to min(GOMAXPROCS, NumCPU, mesh rows) —
	// serial on a single-CPU host — and 1 forces the serial sweep.
	// Bit-identical results for any value.
	Shards int

	// ShardMinActive is the sharded engine's serial-fallback threshold
	// (sim.Config.ShardMinActive): 0 derives it from a measured worker
	// dispatch/barrier round-trip at engine construction, positive values
	// pin it, and negative values make every quiet-margin tick attempt
	// the concurrent sweep. Scheduling-only; results are bit-identical
	// for any value.
	ShardMinActive int

	// PunchHops and NoPathPunch forward the injection-time wake-punch
	// knobs (sim.Config fields of the same names) into every simulation
	// the suite runs, including the reactive data harvests, so a trained
	// model sees the same punching regime it will be evaluated under.
	// PunchHops 0 keeps the paper default (punch the whole XY path).
	PunchHops   int
	NoPathPunch bool

	// Obs attaches the observability layer (sim.Config.Obs) to the
	// single-run entry points: RunTrace and everything routed through it
	// (RunBenchmark, the sequential Compare). The concurrent paths —
	// dataset harvesting and CompareParallel — deliberately ignore it: a
	// Metrics binds to one run at a time, and overlapping runs would
	// race on its lanes.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.VCs == 0 {
		o.VCs = sim.DefaultVCs
	}
	if o.Depth == 0 {
		o.Depth = sim.DefaultDepth
	}
	if o.Pipeline == 0 {
		o.Pipeline = sim.DefaultPipeline
	}
	if o.EpochTicks == 0 {
		o.EpochTicks = sim.DefaultEpochTicks
	}
	if o.Horizon == 0 {
		o.Horizon = 120_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Lambdas) == 0 {
		o.Lambdas = ml.DefaultLambdas
	}
	return o
}

type datasetKey struct {
	kind  ModelKind
	trace string
}

// Suite orchestrates the full experimental protocol on one topology.
// Its caches are guarded, so the parallel entry points (CompareParallel,
// HarvestParallel) may be used from multiple goroutines; individual
// simulations are single-threaded and deterministic.
type Suite struct {
	Topo topology.Topology
	Opts Options

	mu       sync.Mutex
	traces   map[string]*traffic.Trace
	datasets map[datasetKey]*ml.Dataset
	trained  map[ModelKind]*ml.TrainReport
}

// NewSuite builds a suite.
func NewSuite(topo topology.Topology, opts Options) *Suite {
	return &Suite{
		Topo:     topo,
		Opts:     opts.withDefaults(),
		traces:   make(map[string]*traffic.Trace),
		datasets: make(map[datasetKey]*ml.Dataset),
		trained:  make(map[ModelKind]*ml.TrainReport),
	}
}

// Trace returns the (cached) uncompressed trace for a benchmark profile.
func (s *Suite) Trace(name string) (*traffic.Trace, error) {
	s.mu.Lock()
	t, ok := s.traces[name]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	p, ok := traffic.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	g := traffic.Generator{Topo: s.Topo, Horizon: s.Opts.Horizon, Seed: s.Opts.Seed}
	t = g.Generate(p)
	s.mu.Lock()
	if prev, ok := s.traces[name]; ok {
		t = prev // a concurrent generator won; keep one canonical trace
	} else {
		s.traces[name] = t
	}
	s.mu.Unlock()
	return t, nil
}

// PutTrace installs a pre-generated trace under a benchmark name, so
// that many suites sharing one (topology, horizon, seed) configuration
// can reuse a single immutable trace instead of regenerating it — traces
// are read-only during simulation, and runs are deterministic, so the
// sharing is free. The caller certifies the trace was generated with
// this suite's topology, horizon and seed; a trace already cached under
// the name is kept (first writer wins, like the Trace fast path).
func (s *Suite) PutTrace(name string, t *traffic.Trace) {
	s.mu.Lock()
	if _, ok := s.traces[name]; !ok {
		s.traces[name] = t
	}
	s.mu.Unlock()
}

// TraceCompressed returns the benchmark trace compressed by factor
// (factor 1 returns the uncompressed trace).
func (s *Suite) TraceCompressed(name string, factor int64) (*traffic.Trace, error) {
	t, err := s.Trace(name)
	if err != nil {
		return nil, err
	}
	if factor <= 1 {
		return t, nil
	}
	return t.Compress(factor), nil
}

// reactiveSpec returns the reactive (data-harvesting) variant of an ML
// model kind: identical structure, but mode selection thresholds the
// *current* IBU instead of a prediction (§III-D "Label").
func (s *Suite) reactiveSpec(kind ModelKind) policy.Spec {
	switch kind {
	case KindLEAD:
		sp := policy.DVFSML(policy.ReactiveSelector{})
		sp.Name = "DVFS+ML(reactive)"
		return sp
	case KindDozzNoC:
		sp := policy.DozzNoC(policy.ReactiveSelector{})
		sp.Name = "DozzNoC(reactive)"
		return sp
	case KindTurbo:
		sp := policy.MLTurbo(policy.ReactiveSelector{}, s.Topo.NumRouters())
		sp.Name = "ML+TURBO(reactive)"
		return sp
	}
	panic(fmt.Sprintf("core: reactiveSpec of non-ML kind %v", kind))
}

// Spec returns the runnable policy spec for a kind. ML kinds require a
// prior TrainAll/Train call.
func (s *Suite) Spec(kind ModelKind) (policy.Spec, error) {
	switch kind {
	case KindBaseline:
		return policy.Baseline(), nil
	case KindPG:
		return policy.PowerGated(), nil
	}
	s.mu.Lock()
	rep, ok := s.trained[kind]
	s.mu.Unlock()
	if !ok {
		return policy.Spec{}, fmt.Errorf("core: model %v is not trained; call Train first", kind)
	}
	sel := policy.ProactiveSelector{Model: rep.Best, ModelName: kind.String()}
	switch kind {
	case KindLEAD:
		return policy.DVFSML(sel), nil
	case KindDozzNoC:
		return policy.DozzNoC(sel), nil
	case KindTurbo:
		return policy.MLTurbo(sel, s.Topo.NumRouters()), nil
	}
	return policy.Spec{}, fmt.Errorf("core: unknown model kind %v", kind)
}

// Dataset returns the (cached) feature/label dataset harvested by running
// the reactive variant of kind over the named benchmark trace.
func (s *Suite) Dataset(kind ModelKind, trace string) (*ml.Dataset, error) {
	key := datasetKey{kind, trace}
	s.mu.Lock()
	d, ok := s.datasets[key]
	s.mu.Unlock()
	if ok {
		return d, nil
	}
	t, err := s.Trace(trace)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		Topo:           s.Topo,
		Spec:           s.reactiveSpec(kind),
		Trace:          t,
		VCs:            s.Opts.VCs,
		Depth:          s.Opts.Depth,
		Pipeline:       s.Opts.Pipeline,
		LinkTicks:      s.Opts.LinkTicks,
		EpochTicks:     s.Opts.EpochTicks,
		Shards:         s.Opts.Shards,
		ShardMinActive: s.Opts.ShardMinActive,
		PunchHops:      s.Opts.PunchHops,
		NoPathPunch:    s.Opts.NoPathPunch,
		CollectDataset: true,
	})
	if err != nil {
		return nil, fmt.Errorf("core: harvesting %v on %s: %w", kind, trace, err)
	}
	s.mu.Lock()
	if prev, ok := s.datasets[key]; ok {
		res.Dataset = prev
	} else {
		s.datasets[key] = res.Dataset
	}
	s.mu.Unlock()
	return res.Dataset, nil
}

// MergedDataset concatenates the reactive datasets of kind over a trace
// split (the per-split training/validation/test corpora of §III-D).
func (s *Suite) MergedDataset(kind ModelKind, split traffic.Split) (*ml.Dataset, error) {
	out := ml.NewDataset(nil)
	for _, p := range traffic.ProfilesBySplit(split) {
		d, err := s.Dataset(kind, p.Name)
		if err != nil {
			return nil, err
		}
		out.Merge(d)
	}
	return out, nil
}

// Train runs the offline pipeline for one ML kind: harvest reactive
// datasets over the 6 training and 3 validation traces, then sweep lambda
// and keep the best validation model. The report is cached.
func (s *Suite) Train(kind ModelKind) (*ml.TrainReport, error) {
	s.mu.Lock()
	rep, ok := s.trained[kind]
	s.mu.Unlock()
	if ok {
		return rep, nil
	}
	if !kind.IsML() {
		return nil, fmt.Errorf("core: %v has no trained model", kind)
	}
	train, err := s.MergedDataset(kind, traffic.Train)
	if err != nil {
		return nil, err
	}
	val, err := s.MergedDataset(kind, traffic.Validation)
	if err != nil {
		return nil, err
	}
	rep, err = ml.TuneLambda(train, val, s.Opts.Lambdas)
	if err != nil {
		return nil, fmt.Errorf("core: training %v: %w", kind, err)
	}
	s.mu.Lock()
	if prev, ok := s.trained[kind]; ok {
		rep = prev
	} else {
		s.trained[kind] = rep
	}
	s.mu.Unlock()
	return rep, nil
}

// TrainAll trains the three ML models. With Options.Parallel it harvests
// the underlying datasets concurrently first (TrainAllParallel).
func (s *Suite) TrainAll() error {
	if s.Opts.Parallel {
		return s.TrainAllParallel()
	}
	return s.trainAllSequential()
}

func (s *Suite) trainAllSequential() error {
	for _, k := range MLKinds {
		if _, err := s.Train(k); err != nil {
			return err
		}
	}
	return nil
}

// TrainedModel returns the best trained ridge model of a kind (nil if the
// kind is not ML or not yet trained).
func (s *Suite) TrainedModel(kind ModelKind) *ml.Ridge {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rep, ok := s.trained[kind]; ok {
		return rep.Best
	}
	return nil
}

// SetTrainedModel installs an externally trained model (e.g. loaded from
// a weights file written by cmd/train).
func (s *Suite) SetTrainedModel(kind ModelKind, m *ml.Ridge) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trained[kind] = &ml.TrainReport{Best: m}
}

// RunTrace runs one model kind over an explicit trace, observed by the
// suite-wide Options.Obs (if any).
func (s *Suite) RunTrace(kind ModelKind, t *traffic.Trace) (*sim.Result, error) {
	return s.RunTraceObs(kind, t, s.Opts.Obs)
}

// RunTraceObs runs one model kind over an explicit trace with an
// explicit per-run observer (which may be nil). Unlike the suite-wide
// Options.Obs — which binds one obs.Metrics to every sequential run and
// therefore cannot serve overlapping runs — a per-run observer lets a
// worker pool attach one Metrics per worker, which is how the sweep
// orchestrator captures epoch folds for concurrent runs of one suite.
func (s *Suite) RunTraceObs(kind ModelKind, t *traffic.Trace, o *obs.Observer) (*sim.Result, error) {
	spec, err := s.Spec(kind)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		Topo:           s.Topo,
		Spec:           spec,
		Trace:          t,
		VCs:            s.Opts.VCs,
		Depth:          s.Opts.Depth,
		Pipeline:       s.Opts.Pipeline,
		LinkTicks:      s.Opts.LinkTicks,
		EpochTicks:     s.Opts.EpochTicks,
		Shards:         s.Opts.Shards,
		ShardMinActive: s.Opts.ShardMinActive,
		PunchHops:      s.Opts.PunchHops,
		NoPathPunch:    s.Opts.NoPathPunch,
		Obs:            o,
	})
}

// RunBenchmark runs one model kind over a named benchmark, compressed by
// factor (1 = uncompressed).
func (s *Suite) RunBenchmark(kind ModelKind, bench string, factor int64) (*sim.Result, error) {
	t, err := s.TraceCompressed(bench, factor)
	if err != nil {
		return nil, err
	}
	return s.RunTrace(kind, t)
}

// RunBenchmarkObs is RunBenchmark with an explicit per-run observer (see
// RunTraceObs).
func (s *Suite) RunBenchmarkObs(kind ModelKind, bench string, factor int64, o *obs.Observer) (*sim.Result, error) {
	t, err := s.TraceCompressed(bench, factor)
	if err != nil {
		return nil, err
	}
	return s.RunTraceObs(kind, t, o)
}

// Comparison holds all five models' results on one workload.
type Comparison struct {
	Bench   string
	Factor  int64
	Results map[ModelKind]*sim.Result
}

// Compare runs all five models over a benchmark at a compression factor.
// ML models must be trained first. With Options.Parallel the five runs
// execute concurrently (CompareParallel) with identical results.
func (s *Suite) Compare(bench string, factor int64) (*Comparison, error) {
	if s.Opts.Parallel {
		return s.CompareParallel(bench, factor)
	}
	c := &Comparison{Bench: bench, Factor: factor, Results: make(map[ModelKind]*sim.Result)}
	for _, k := range AllKinds {
		res, err := s.RunBenchmark(k, bench, factor)
		if err != nil {
			return nil, fmt.Errorf("core: %v on %s: %w", k, bench, err)
		}
		c.Results[k] = res
	}
	return c, nil
}

// Relative compares a model's result against the baseline's on the same
// workload: throughput and latency ratios plus normalized energies.
type Relative struct {
	Kind             ModelKind
	ThroughputRatio  float64 // model/baseline (1.0 = no loss)
	LatencyRatio     float64
	StaticNorm       float64 // static energy normalized to baseline
	DynamicNorm      float64
	StaticSavings    float64 // 1 - StaticNorm
	DynamicSavings   float64
	EDPNorm          float64 // energy-delay product normalized to baseline
	OffFraction      float64
	BreakevenMetFrac float64
}

// Relatives normalizes every model in a comparison to its baseline.
func (c *Comparison) Relatives() []Relative {
	base := c.Results[KindBaseline]
	out := make([]Relative, 0, len(AllKinds))
	for _, k := range AllKinds {
		r := c.Results[k]
		rel := Relative{Kind: k, OffFraction: r.OffFraction}
		if base.Throughput > 0 {
			rel.ThroughputRatio = r.Throughput / base.Throughput
		}
		if base.AvgLatencyTicks > 0 {
			rel.LatencyRatio = r.AvgLatencyTicks / base.AvgLatencyTicks
		}
		if base.StaticJ > 0 {
			rel.StaticNorm = r.StaticJ / base.StaticJ
			rel.StaticSavings = 1 - rel.StaticNorm
		}
		if base.DynamicJ > 0 {
			rel.DynamicNorm = r.DynamicJ / base.DynamicJ
			rel.DynamicSavings = 1 - rel.DynamicNorm
		}
		if e := base.EDP(); e > 0 {
			rel.EDPNorm = r.EDP() / e
		}
		if r.Policy.Wakes > 0 {
			rel.BreakevenMetFrac = float64(r.Policy.BreakevenMet) / float64(r.Policy.Wakes)
		}
		out = append(out, rel)
	}
	return out
}

// HarvestParallel pre-populates the reactive datasets of the given ML
// kinds over the given traces using up to GOMAXPROCS workers; each
// harvest is an independent, deterministic simulation. Subsequent Train
// calls then hit the cache.
func (s *Suite) HarvestParallel(kinds []ModelKind, traces []string) error {
	type job struct {
		kind  ModelKind
		trace string
	}
	var jobs []job
	for _, k := range kinds {
		for _, tr := range traces {
			jobs = append(jobs, job{k, tr})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		return nil
	}
	ch := make(chan job)
	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if _, err := s.Dataset(j.kind, j.trace); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// TrainAllParallel harvests every training/validation dataset in
// parallel, then runs the (fast) lambda sweeps.
func (s *Suite) TrainAllParallel() error {
	var names []string
	for _, p := range traffic.ProfilesBySplit(traffic.Train) {
		names = append(names, p.Name)
	}
	for _, p := range traffic.ProfilesBySplit(traffic.Validation) {
		names = append(names, p.Name)
	}
	if err := s.HarvestParallel(MLKinds, names); err != nil {
		return err
	}
	return s.trainAllSequential()
}

// CompareParallel runs the five models concurrently over one workload.
// Results are identical to Compare (each simulation is isolated and
// deterministic); only wall-clock differs on multicore hosts.
func (s *Suite) CompareParallel(bench string, factor int64) (*Comparison, error) {
	t, err := s.TraceCompressed(bench, factor)
	if err != nil {
		return nil, err
	}
	c := &Comparison{Bench: bench, Factor: factor, Results: make(map[ModelKind]*sim.Result)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(AllKinds))
	for _, k := range AllKinds {
		spec, err := s.Spec(k) // fresh selector state per spec
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(kind ModelKind, spec policy.Spec) {
			defer wg.Done()
			res, err := sim.Run(sim.Config{
				Topo:           s.Topo,
				Spec:           spec,
				Trace:          t,
				VCs:            s.Opts.VCs,
				Depth:          s.Opts.Depth,
				Pipeline:       s.Opts.Pipeline,
				LinkTicks:      s.Opts.LinkTicks,
				EpochTicks:     s.Opts.EpochTicks,
				Shards:         s.Opts.Shards,
				ShardMinActive: s.Opts.ShardMinActive,
				PunchHops:      s.Opts.PunchHops,
				NoPathPunch:    s.Opts.NoPathPunch,
			})
			if err != nil {
				errs <- fmt.Errorf("core: %v on %s: %w", kind, bench, err)
				return
			}
			mu.Lock()
			c.Results[kind] = res
			mu.Unlock()
		}(k, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	return c, nil
}

// WeightsFileName returns the conventional weights-file name for an ML
// kind (what cmd/train writes).
func WeightsFileName(kind ModelKind) (string, error) {
	switch kind {
	case KindLEAD:
		return "lead.weights.json", nil
	case KindDozzNoC:
		return "dozznoc.weights.json", nil
	case KindTurbo:
		return "turbo.weights.json", nil
	}
	return "", fmt.Errorf("core: %v has no weights file", kind)
}

// SaveTrainedModels writes every trained model to dir using the
// conventional file names.
func (s *Suite) SaveTrainedModels(dir string) error {
	for _, k := range MLKinds {
		m := s.TrainedModel(k)
		if m == nil {
			continue
		}
		name, err := WeightsFileName(k)
		if err != nil {
			return err
		}
		if err := ml.SaveModel(filepath.Join(dir, name), m); err != nil {
			return err
		}
	}
	return nil
}

// LoadTrainedModels loads every conventional weights file present in dir
// (missing files are skipped) and returns how many models were installed.
func (s *Suite) LoadTrainedModels(dir string) (int, error) {
	loaded := 0
	for _, k := range MLKinds {
		name, err := WeightsFileName(k)
		if err != nil {
			return loaded, err
		}
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		m, err := ml.LoadModel(path)
		if err != nil {
			return loaded, err
		}
		s.SetTrainedModel(k, m)
		loaded++
	}
	return loaded, nil
}
