package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/ml"
	"repro/internal/topology"
)

// TestParallelEntryPointsConcurrently exercises CompareParallel,
// HarvestParallel and TrainAllParallel at the same time on one shared
// suite, so `go test -race` patrols the cache locking and the worker
// pools. Passthrough models are installed up front so CompareParallel
// can run while the harvest is still populating the dataset cache.
func TestParallelEntryPointsConcurrently(t *testing.T) {
	s := NewSuite(topology.NewMesh(4, 4), Options{Horizon: 4000, Seed: 3})
	for _, k := range MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	var mu sync.Mutex
	comparisons := make(map[string]*Comparison)

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.HarvestParallel(MLKinds, []string{"fft", "blackscholes"}); err != nil {
			errs <- err
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// TrainAllParallel re-harvests every train/validation dataset and
		// then overwrites the passthrough models under the suite lock.
		if err := s.TrainAllParallel(); err != nil {
			errs <- err
		}
	}()
	for _, bench := range []string{"fft", "blackscholes"} {
		wg.Add(1)
		go func(bench string) {
			defer wg.Done()
			c, err := s.CompareParallel(bench, 1)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			comparisons[bench] = c
			mu.Unlock()
		}(bench)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for bench, c := range comparisons {
		if len(c.Results) != len(AllKinds) {
			t.Errorf("%s: comparison has %d results, want %d", bench, len(c.Results), len(AllKinds))
		}
	}
}

// TestParallelOptionMatchesSequential pins that Options.Parallel is
// purely a scheduling choice: Compare on a parallel suite produces
// deeply equal results to a sequential one.
func TestParallelOptionMatchesSequential(t *testing.T) {
	build := func(parallel bool) *Suite {
		s := NewSuite(topology.NewMesh(4, 4), Options{Horizon: 4000, Seed: 3, Parallel: parallel})
		for _, k := range MLKinds {
			s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
		}
		return s
	}
	seq, err := build(false).Compare("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(true).Compare("fft", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel comparison differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}
