package flit

// Pool is a free-list recycler for packets, flits, and the per-packet
// flit slices used during injection. The simulation hot loop creates one
// Packet plus Size Flits (plus a slice header) per trace entry and drops
// them all at delivery; on long runs that allocation churn dominates the
// garbage collector's work. A Pool caps it at the peak in-flight
// population.
//
// Only objects obtained from the Pool are ever recycled: Get* marks its
// results and Put* ignores anything unmarked, so packets built with New
// (closed-loop workloads, tests) keep their identity for as long as their
// creator holds them. A Pool is not safe for concurrent use; each
// simulation owns its own.
type Pool struct {
	packets []*Packet
	flits   []*Flit
	// slices holds recycled flit-slice backing arrays keyed by length
	// (packet sizes are small and few: 1-flit requests, 5-flit responses).
	slices map[int][][]*Flit

	// hits counts Get* requests served from a free list, misses those that
	// had to allocate; together they give the pool's recycling rate (a miss
	// burst after warm-up means the in-flight population outgrew the pool).
	hits   int64
	misses int64
}

// Stats returns the number of Get* requests served from the free lists
// (hits) and the number that allocated fresh objects (misses).
func (pl *Pool) Stats() (hits, misses int64) { return pl.hits, pl.misses }

// GetPacket returns a reset packet, reusing a recycled one when possible.
// The result is identical to New(0, src, dst, kind, injectAt) except that
// it is marked for recycling by PutPacket.
func (pl *Pool) GetPacket(src, dst int, kind Kind, injectAt int64) *Packet {
	var p *Packet
	if n := len(pl.packets); n > 0 {
		p = pl.packets[n-1]
		pl.packets[n-1] = nil
		pl.packets = pl.packets[:n-1]
		pl.hits++
	} else {
		p = &Packet{}
		pl.misses++
	}
	*p = Packet{
		SrcCore:  src,
		DstCore:  dst,
		Kind:     kind,
		Size:     kind.Flits(),
		InjectAt: injectAt,
		Injected: -1,
		Ejected:  -1,
		pooled:   true,
	}
	return p
}

// PutPacket returns a pool-owned packet to the free list. Packets not
// created by GetPacket (and double puts) are ignored.
func (pl *Pool) PutPacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	p.pooled = false
	pl.packets = append(pl.packets, p)
}

// GetFlits serializes p into its flit sequence like Flits, drawing both
// the flits and the slice from the free lists.
func (pl *Pool) GetFlits(p *Packet) []*Flit {
	fs := pl.getSlice(p.Size)
	for i := range fs {
		f := pl.getFlit()
		*f = Flit{
			Pkt:    p,
			Seq:    i,
			Head:   i == 0,
			Tail:   i == p.Size-1,
			pooled: true,
		}
		fs[i] = f
	}
	return fs
}

// PutFlit returns a pool-owned flit to the free list; the caller must
// hold the only live reference. Flits not created by GetFlits (and
// double puts) are ignored.
func (pl *Pool) PutFlit(f *Flit) {
	if f == nil || !f.pooled {
		return
	}
	f.pooled = false
	f.Pkt = nil
	pl.flits = append(pl.flits, f)
}

// PutSlice recycles the backing array of a flit slice handed out by
// GetFlits. The flits it referenced are NOT recycled — they are typically
// still buffered in the network — so the entries are cleared first.
func (pl *Pool) PutSlice(fs []*Flit) {
	if fs == nil {
		return
	}
	for i := range fs {
		fs[i] = nil
	}
	if pl.slices == nil {
		pl.slices = make(map[int][][]*Flit)
	}
	pl.slices[len(fs)] = append(pl.slices[len(fs)], fs)
}

func (pl *Pool) getFlit() *Flit {
	if n := len(pl.flits); n > 0 {
		f := pl.flits[n-1]
		pl.flits[n-1] = nil
		pl.flits = pl.flits[:n-1]
		pl.hits++
		return f
	}
	pl.misses++
	return &Flit{}
}

func (pl *Pool) getSlice(size int) []*Flit {
	if ss := pl.slices[size]; len(ss) > 0 {
		fs := ss[len(ss)-1]
		ss[len(ss)-1] = nil
		pl.slices[size] = ss[:len(ss)-1]
		pl.hits++
		return fs
	}
	pl.misses++
	return make([]*Flit, size)
}
