package flit

import "testing"

func TestKindFlits(t *testing.T) {
	if Request.Flits() != 1 {
		t.Errorf("request = %d flits, want 1", Request.Flits())
	}
	if Response.Flits() != 5 {
		t.Errorf("response = %d flits, want 5", Response.Flits())
	}
}

func TestKindString(t *testing.T) {
	if Request.String() != "request" || Response.String() != "response" {
		t.Errorf("kind strings = %q, %q", Request, Response)
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestNewPacket(t *testing.T) {
	p := New(7, 3, 12, Response, 100)
	if p.ID != 7 || p.SrcCore != 3 || p.DstCore != 12 {
		t.Fatalf("packet fields wrong: %+v", p)
	}
	if p.Size != ResponseFlits {
		t.Errorf("size = %d, want %d", p.Size, ResponseFlits)
	}
	if p.Injected != -1 || p.Ejected != -1 {
		t.Errorf("timestamps should start at -1, got %d/%d", p.Injected, p.Ejected)
	}
	if p.Latency() != -1 {
		t.Errorf("latency before delivery = %d, want -1", p.Latency())
	}
}

func TestLatency(t *testing.T) {
	p := New(1, 0, 1, Request, 50)
	p.Injected = 60
	p.Ejected = 95
	if got := p.Latency(); got != 45 {
		t.Errorf("latency = %d, want 45 (from source-queue entry)", got)
	}
}

func TestFlitsSerialization(t *testing.T) {
	p := New(1, 0, 1, Response, 0)
	fs := Flits(p)
	if len(fs) != 5 {
		t.Fatalf("response serialized into %d flits, want 5", len(fs))
	}
	for i, f := range fs {
		if f.Pkt != p {
			t.Fatalf("flit %d points at wrong packet", i)
		}
		if f.Seq != i {
			t.Errorf("flit %d has seq %d", i, f.Seq)
		}
		if f.Head != (i == 0) {
			t.Errorf("flit %d head = %v", i, f.Head)
		}
		if f.Tail != (i == 4) {
			t.Errorf("flit %d tail = %v", i, f.Tail)
		}
	}
}

func TestSingleFlitPacketIsHeadAndTail(t *testing.T) {
	fs := Flits(New(1, 0, 1, Request, 0))
	if len(fs) != 1 {
		t.Fatalf("request serialized into %d flits, want 1", len(fs))
	}
	if !fs[0].Head || !fs[0].Tail {
		t.Errorf("single flit must be head and tail, got head=%v tail=%v", fs[0].Head, fs[0].Tail)
	}
}

func TestFlitString(t *testing.T) {
	fs := Flits(New(42, 1, 2, Response, 0))
	for _, f := range fs {
		if f.String() == "" {
			t.Error("empty flit string")
		}
	}
	if s := fs[0].String(); s != "flit{pkt=42 seq=0 head 1->2}" {
		t.Errorf("head flit string = %q", s)
	}
}
