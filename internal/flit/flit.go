// Package flit defines the packet and flit types moved by the network.
//
// Packets are wormhole-switched: a packet of N flits is serialized into one
// HEAD flit, N-2 BODY flits, and one TAIL flit (a single-flit packet has a
// flit that is both HEAD and TAIL). The HEAD flit carries routing state,
// including the look-ahead output port for the router currently holding it.
package flit

import "fmt"

// Kind distinguishes request traffic (core -> destination, short control
// packet) from response traffic (data reply, long packet), mirroring the
// request/response field of the paper's Multi2Sim traces.
type Kind uint8

const (
	// Request is a short control packet (1 flit at 128-bit flit width).
	Request Kind = iota
	// Response is a data packet (header + 64 B line = 5 flits).
	Response
)

// String returns "request" or "response".
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case Response:
		return "response"
	}
	return fmt.Sprintf("Kind(%d)", k)
}

// Flits returns the number of flits a packet of this kind occupies at the
// paper's 128-bit flit width.
func (k Kind) Flits() int {
	if k == Response {
		return ResponseFlits
	}
	return RequestFlits
}

// Packet sizes in flits at 128-bit flit width.
const (
	RequestFlits  = 1
	ResponseFlits = 5
)

// Packet is one network packet. SrcCore and DstCore are core (terminal)
// indices, not router indices; the topology maps cores to routers.
type Packet struct {
	ID       uint64
	SrcCore  int
	DstCore  int
	Kind     Kind
	Size     int   // flits
	InjectAt int64 // base tick the packet entered the source queue
	Injected int64 // base tick the head flit entered the network (-1 until then)
	Ejected  int64 // base tick the tail flit was delivered (-1 until then)

	// pooled marks packets owned by a Pool; Pool.PutPacket ignores
	// everything else, so externally created packets (workloads, tests)
	// are never recycled out from under their creators.
	pooled bool
}

// New returns a packet of the given kind with Size derived from the kind
// and Injected/Ejected initialized to -1.
func New(id uint64, src, dst int, kind Kind, injectAt int64) *Packet {
	return &Packet{
		ID:       id,
		SrcCore:  src,
		DstCore:  dst,
		Kind:     kind,
		Size:     kind.Flits(),
		InjectAt: injectAt,
		Injected: -1,
		Ejected:  -1,
	}
}

// Latency returns the packet latency in base ticks from source-queue entry
// to tail delivery, or -1 if the packet has not been delivered.
func (p *Packet) Latency() int64 {
	if p.Ejected < 0 {
		return -1
	}
	return p.Ejected - p.InjectAt
}

// Flit is one flow-control unit of a packet.
type Flit struct {
	Pkt  *Packet
	Seq  int  // 0-based position within the packet
	Head bool // first flit of the packet
	Tail bool // last flit of the packet

	// OutPort is the output port this flit must take at the router that
	// currently buffers it. With look-ahead routing it is computed by the
	// upstream router (or the injection logic) before the flit arrives.
	OutPort int
	// NextRouter is the router this flit will occupy after taking OutPort
	// (-1 if OutPort ejects it). Used for downstream securing and wake
	// punches.
	NextRouter int
	// ReadyCycle is the local cycle (of the router currently buffering
	// the flit) at which the flit has cleared the router pipeline and may
	// traverse the switch; set on acceptance.
	ReadyCycle int64

	// pooled marks flits owned by a Pool (see Packet.pooled).
	pooled bool
}

// Flits serializes a packet into its flit sequence. OutPort/NextRouter are
// left zeroed; injection logic fills them for the head flit.
func Flits(p *Packet) []*Flit {
	fs := make([]*Flit, p.Size)
	for i := range fs {
		fs[i] = &Flit{
			Pkt:  p,
			Seq:  i,
			Head: i == 0,
			Tail: i == p.Size-1,
		}
	}
	return fs
}

// String renders a flit for debugging.
func (f *Flit) String() string {
	role := "body"
	switch {
	case f.Head && f.Tail:
		role = "head+tail"
	case f.Head:
		role = "head"
	case f.Tail:
		role = "tail"
	}
	return fmt.Sprintf("flit{pkt=%d seq=%d %s %d->%d}", f.Pkt.ID, f.Seq, role, f.Pkt.SrcCore, f.Pkt.DstCore)
}
