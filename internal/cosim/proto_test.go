package cosim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/flit"
)

// validFrames is the set of well-formed example frames shared by the
// unit tests and the fuzz seed corpus: one per op, plus variants that
// exercise optional fields.
func validFrames() []string {
	return []string{
		`{"v":1,"id":1,"op":"open-session","width":4,"height":4,"model":"dozznoc"}`,
		`{"v":1,"id":2,"op":"open-session","width":8,"height":2,"model":"baseline","shards":4,"link_ticks":2}`,
		`{"v":1,"id":3,"op":"transfer","session":"s1","src":0,"dst":5,"bytes":256}`,
		`{"v":1,"id":4,"op":"transfer","session":"s1","src":3,"dst":0,"bytes":8,"at":1000}`,
		`{"v":1,"id":5,"op":"advance","session":"s1","ticks":5000}`,
		`{"v":1,"id":6,"op":"query","session":"s1"}`,
		`{"v":1,"id":7,"op":"close-session","session":"s1"}`,
	}
}

func TestDecodeFrameAcceptsValid(t *testing.T) {
	for _, line := range validFrames() {
		req, err := DecodeFrame([]byte(line))
		if err != nil {
			t.Fatalf("valid frame rejected (%s): %v", line, err)
		}
		if req.Op == "" {
			t.Fatalf("decoded frame lost its op: %s", line)
		}
	}
	// Trailing newline variants are tolerated.
	if _, err := DecodeFrame([]byte(validFrames()[0] + "\r\n")); err != nil {
		t.Fatalf("CRLF frame rejected: %v", err)
	}
}

func TestDecodeFrameRejections(t *testing.T) {
	cases := []struct {
		line string
		code string
	}{
		{"", CodeEmpty},
		{"   \t ", CodeEmpty},
		{"{", CodeBadJSON},
		{`[1,2,3]`, CodeBadJSON},
		{`"just a string"`, CodeBadJSON},
		{`{"v":1,"id":1,"op":"query","session":"s1"}{"v":1}`, CodeBadJSON},
		{`{"v":1,"id":1,"op":"query","session":"s1","extra":true}`, CodeBadJSON},
		{`{"v":1,"id":1,"op":"transfer","session":"s1","src":"zero","dst":1,"bytes":64}`, CodeBadJSON},
		{`{"v":2,"id":1,"op":"query","session":"s1"}`, CodeBadVersion},
		{`{"id":1,"op":"query","session":"s1"}`, CodeBadVersion},
		{`{"v":1,"id":1}`, CodeBadOp},
		{`{"v":1,"id":1,"op":"shutdown"}`, CodeBadOp},
		{`{"v":1,"id":1,"op":"open-session","width":0,"height":4,"model":"pg"}`, CodeBadField},
		{`{"v":1,"id":1,"op":"open-session","width":4,"height":4}`, CodeBadField},
		{`{"v":1,"id":1,"op":"open-session","width":65,"height":4,"model":"pg"}`, CodeBadField},
		{`{"v":1,"id":1,"op":"open-session","width":4,"height":4,"model":"pg","session":"s1"}`, CodeBadField},
		{`{"v":1,"id":1,"op":"transfer","session":"s1","src":0,"dst":5}`, CodeBadField},
		{`{"v":1,"id":1,"op":"transfer","session":"s1","src":0,"dst":5,"bytes":0}`, CodeBadField},
		{`{"v":1,"id":1,"op":"transfer","session":"s1","src":-1,"dst":5,"bytes":64}`, CodeBadField},
		{`{"v":1,"id":1,"op":"transfer","session":"s1","src":0,"dst":5,"bytes":2097152}`, CodeBadField},
		{`{"v":1,"id":1,"op":"transfer","src":0,"dst":5,"bytes":64}`, CodeBadField},
		{`{"v":1,"id":1,"op":"advance","session":"s1"}`, CodeBadField},
		{`{"v":1,"id":1,"op":"advance","session":"s1","ticks":0}`, CodeBadField},
		{`{"v":1,"id":1,"op":"advance","session":"s1","ticks":5,"bytes":64}`, CodeBadField},
		{`{"v":1,"id":1,"op":"query","session":"s1","ticks":5}`, CodeBadField},
		{`{"v":1,"id":1,"op":"query","session":"s1","model":"pg"}`, CodeBadField},
		{strings.Repeat("x", MaxFrameBytes+1), CodeTooLarge},
	}
	for _, tc := range cases {
		req, err := DecodeFrame([]byte(tc.line))
		if err == nil {
			t.Fatalf("accepted %.80q as %+v", tc.line, req)
		}
		if err.Code != tc.code {
			t.Fatalf("%.80q: code %s, want %s (%s)", tc.line, err.Code, tc.code, err.Msg)
		}
		if !strings.Contains(err.Error(), err.Code) {
			t.Fatalf("Error() %q does not carry the code", err.Error())
		}
	}
}

func TestExpandTransfer(t *testing.T) {
	cases := []struct {
		bytes   int64
		packets int
		kind    flit.Kind
	}{
		{1, 1, flit.Request},
		{8, 1, flit.Request},
		{9, 1, flit.Response},
		{64, 1, flit.Response},
		{65, 2, flit.Response},
		{256, 4, flit.Response},
		{MaxTransferBytes, MaxTransferBytes / LineBytes, flit.Response},
	}
	for _, tc := range cases {
		got := ExpandTransfer(2, 7, tc.bytes, 100)
		if len(got) != tc.packets {
			t.Fatalf("bytes=%d: %d packets, want %d", tc.bytes, len(got), tc.packets)
		}
		for _, en := range got {
			if en.Kind != tc.kind || en.Time != 100 || en.Src != 2 || en.Dst != 7 {
				t.Fatalf("bytes=%d: bad entry %+v", tc.bytes, en)
			}
		}
	}
}

// FuzzDecodeFrame is the protocol lockdown: whatever bytes arrive on
// the wire, DecodeFrame must return a typed *ProtoError or a valid
// request — never panic, never hang, never accept a frame that fails
// its own validation on a re-encode round trip.
func FuzzDecodeFrame(f *testing.F) {
	for _, line := range validFrames() {
		f.Add([]byte(line))
	}
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"v":1,"id":1,"op":"transfer","session":"s1","src":"zero","dst":1,"bytes":64}`))
	f.Add([]byte(`{"v":9,"op":"open-session"}`))
	f.Add([]byte(`{"v":1,"id":1,"op":"query","session":"s1"}{"v":1}`))
	f.Add(bytes.Repeat([]byte("a"), MaxFrameBytes+1))
	f.Add([]byte(`{"v":1,"id":9007199254740993,"op":"advance","session":"s1","ticks":-1}`))
	f.Add([]byte("{\"v\":1,\"id\":1,\"op\":\"query\",\"session\":\"\xff\xfe\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeFrame(data)
		if err != nil {
			if req != nil {
				t.Fatal("request returned alongside an error")
			}
			if err.Code == "" || err.Error() == "" {
				t.Fatalf("untyped protocol error: %+v", err)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		// An accepted frame is internally consistent: it re-encodes and
		// re-decodes to an equally valid request with the same op.
		b, merr := json.Marshal(req)
		if merr != nil {
			t.Fatalf("accepted frame does not re-encode: %v", merr)
		}
		again, err2 := DecodeFrame(b)
		if err2 != nil {
			t.Fatalf("re-encoded frame rejected: %v (from %.120q)", err2, data)
		}
		if again.Op != req.Op {
			t.Fatalf("op changed across round trip: %q vs %q", again.Op, req.Op)
		}
	})
}
