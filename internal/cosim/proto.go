// Package cosim turns the simulator into a long-running co-simulation
// service: a daemon hosting many persistent sessions (each a mesh + DVFS
// policy model instance, a sim.Session underneath) that an external
// master — another architecture simulator, a workload generator — drives
// over a versioned JSON-lines protocol, the same shape the uPIMulator
// platform uses to drive BookSim2 as its network timing oracle.
//
// Wire format: one JSON object per line, UTF-8, LF-terminated, at most
// MaxFrameBytes per line. Every request carries the protocol version
// ("v"), a caller-chosen correlation id ("id", echoed verbatim in the
// reply) and an operation ("op"); the remaining fields depend on the op.
// Replies carry "ok"; failures add a stable machine-readable "code" and
// a human-readable "error". The daemon answers every frame — including
// undecodable ones — and replies on one connection are in request order.
package cosim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/flit"
	"repro/internal/traffic"
)

// Version is the protocol version this package speaks. Requests carrying
// any other value are rejected with CodeBadVersion.
const Version = 1

// MaxFrameBytes bounds one request line. Oversized frames are rejected
// before JSON decoding, so a misbehaving client cannot balloon daemon
// memory.
const MaxFrameBytes = 64 << 10

// Operations. Each op uses a subset of Request's fields; DecodeFrame
// rejects frames with fields their op does not use (unknown JSON keys
// are rejected outright).
const (
	OpOpenSession  = "open-session"
	OpTransfer     = "transfer"
	OpAdvance      = "advance"
	OpQuery        = "query"
	OpCloseSession = "close-session"
)

// ProtoError codes. Stable across releases: clients switch on these, not
// on message text.
const (
	CodeEmpty      = "empty"
	CodeTooLarge   = "too-large"
	CodeBadJSON    = "bad-json"
	CodeBadVersion = "bad-version"
	CodeBadOp      = "bad-op"
	CodeBadField   = "bad-field"
)

// ProtoError is the typed decode/validation failure. Every malformed
// frame maps to one — DecodeFrame never panics and never returns a bare
// error (FuzzDecodeFrame enforces this).
type ProtoError struct {
	Code string // one of the Code constants
	Msg  string
}

func (e *ProtoError) Error() string { return "cosim: " + e.Code + ": " + e.Msg }

func protoErrf(code, format string, args ...any) *ProtoError {
	return &ProtoError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Request is one decoded protocol frame. Optional numeric fields are
// pointers so validation can distinguish "absent" from a legitimate
// zero (core 0, tick 0).
type Request struct {
	V  int    `json:"v"`
	ID int64  `json:"id"`
	Op string `json:"op"`

	// open-session
	Width     int    `json:"width,omitempty"`
	Height    int    `json:"height,omitempty"`
	Model     string `json:"model,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	LinkTicks int64  `json:"link_ticks,omitempty"`

	// session-scoped ops
	Session string `json:"session,omitempty"`
	Src     *int   `json:"src,omitempty"`   // transfer
	Dst     *int   `json:"dst,omitempty"`   // transfer
	Bytes   *int64 `json:"bytes,omitempty"` // transfer
	At      *int64 `json:"at,omitempty"`    // transfer: absolute injection tick (default: now)
	Ticks   *int64 `json:"ticks,omitempty"` // advance
}

// Response is one reply frame. The daemon echoes V and the request's ID;
// op-specific results use the optional fields.
type Response struct {
	V    int    `json:"v"`
	ID   int64  `json:"id"`
	OK   bool   `json:"ok"`
	Code string `json:"code,omitempty"`
	Err  string `json:"error,omitempty"`

	// CodeBusy replies: a hint for when to retry.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	Session string `json:"session,omitempty"` // open-session
	Cores   int    `json:"cores,omitempty"`   // open-session

	Packets    int   `json:"packets,omitempty"`     // transfer: injections scheduled
	LatencyEst int64 `json:"latency_est,omitempty"` // transfer: ticks, backpressure hint

	Advanced int64 `json:"advanced,omitempty"` // advance
	Now      int64 `json:"now,omitempty"`      // advance / close-session
	// advance: energy spent inside the advanced window — the per-window
	// delta an external master integrates as the cost of wall-clock time.
	StaticDeltaJ  float64 `json:"static_dj,omitempty"`
	DynamicDeltaJ float64 `json:"dynamic_dj,omitempty"`

	Stats *Stats `json:"stats,omitempty"` // query / close-session
}

// Stats is the wire form of a session snapshot. Field-for-field it
// mirrors sim.SessionStats; float64 values survive the JSON round trip
// bit-exactly (Go emits the shortest representation that parses back to
// the same float), which is what lets the daemon equivalence test
// DeepEqual wire stats against a direct engine run.
type Stats struct {
	Tick             int64   `json:"tick"`
	PacketsInjected  int64   `json:"packets_injected"`
	PacketsDelivered int64   `json:"packets_delivered"`
	FlitsDelivered   int64   `json:"flits_delivered"`
	LatencySumTicks  int64   `json:"latency_sum_ticks"`
	LatencyCount     int64   `json:"latency_count"`
	AvgLatencyTicks  float64 `json:"avg_latency_ticks"`
	StaticJ          float64 `json:"static_j"`
	DynamicJ         float64 `json:"dynamic_j"`

	// Prediction-quality summary (sim.SessionStats semantics); all zero
	// when the session runs without an observer. omitempty keeps old
	// transcripts and non-ML replies byte-stable.
	EpochDecisions       int64   `json:"epoch_decisions,omitempty"`
	MeanAbsPredErr       float64 `json:"mean_abs_pred_err,omitempty"`
	UnderPredDecisions   int64   `json:"underpred_decisions,omitempty"`
	OverPredDecisions    int64   `json:"overpred_decisions,omitempty"`
	UnderPredStallTicks  int64   `json:"underpred_stall_ticks,omitempty"`
	OverPredStaticWasteJ float64 `json:"overpred_static_waste_j,omitempty"`
	PredDriftEvents      int64   `json:"pred_drift_events,omitempty"`
}

// DecodeFrame parses and validates one request line (without the
// trailing newline; a trailing LF/CRLF is tolerated). All failures are
// *ProtoError; it never panics on any input.
func DecodeFrame(line []byte) (*Request, *ProtoError) {
	if len(line) > MaxFrameBytes {
		return nil, protoErrf(CodeTooLarge, "frame is %d bytes, limit %d", len(line), MaxFrameBytes)
	}
	line = bytes.TrimRight(line, "\r\n")
	if len(bytes.TrimSpace(line)) == 0 {
		return nil, protoErrf(CodeEmpty, "empty frame")
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, protoErrf(CodeBadJSON, "%v", err)
	}
	// A line must be exactly one object — "{}{}" smuggles a second frame.
	if dec.More() {
		return nil, protoErrf(CodeBadJSON, "trailing data after frame")
	}
	if req.V != Version {
		return nil, protoErrf(CodeBadVersion, "version %d, want %d", req.V, Version)
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func (r *Request) validate() *ProtoError {
	switch r.Op {
	case OpOpenSession:
		if r.Session != "" || r.Src != nil || r.Dst != nil || r.Bytes != nil || r.At != nil || r.Ticks != nil {
			return protoErrf(CodeBadField, "%s: unexpected session-op fields", r.Op)
		}
		if r.Width <= 0 || r.Height <= 0 {
			return protoErrf(CodeBadField, "%s: mesh %dx%d (width and height must be >= 1)", r.Op, r.Width, r.Height)
		}
		if r.Width > 64 || r.Height > 64 {
			return protoErrf(CodeBadField, "%s: mesh %dx%d exceeds 64x64", r.Op, r.Width, r.Height)
		}
		if r.Model == "" {
			return protoErrf(CodeBadField, "%s: missing model", r.Op)
		}
		if r.Shards < 0 {
			return protoErrf(CodeBadField, "%s: shards %d", r.Op, r.Shards)
		}
		if r.LinkTicks < 0 {
			return protoErrf(CodeBadField, "%s: link_ticks %d", r.Op, r.LinkTicks)
		}
	case OpTransfer:
		if err := r.needSession(); err != nil {
			return err
		}
		if r.Src == nil || r.Dst == nil || r.Bytes == nil {
			return protoErrf(CodeBadField, "%s: src, dst and bytes are required", r.Op)
		}
		if *r.Src < 0 || *r.Dst < 0 {
			return protoErrf(CodeBadField, "%s: cores (%d,%d)", r.Op, *r.Src, *r.Dst)
		}
		if *r.Bytes <= 0 || *r.Bytes > MaxTransferBytes {
			return protoErrf(CodeBadField, "%s: bytes %d outside (0,%d]", r.Op, *r.Bytes, MaxTransferBytes)
		}
		if r.At != nil && *r.At < 0 {
			return protoErrf(CodeBadField, "%s: at %d", r.Op, *r.At)
		}
		if r.Ticks != nil {
			return protoErrf(CodeBadField, "%s: unexpected ticks", r.Op)
		}
	case OpAdvance:
		if err := r.needSession(); err != nil {
			return err
		}
		if r.Src != nil || r.Dst != nil || r.Bytes != nil || r.At != nil {
			return protoErrf(CodeBadField, "%s: unexpected transfer fields", r.Op)
		}
		if r.Ticks == nil || *r.Ticks <= 0 || *r.Ticks > MaxAdvanceTicks {
			return protoErrf(CodeBadField, "%s: ticks must be in (0,%d]", r.Op, int64(MaxAdvanceTicks))
		}
	case OpQuery, OpCloseSession:
		if err := r.needSession(); err != nil {
			return err
		}
		if r.Src != nil || r.Dst != nil || r.Bytes != nil || r.At != nil || r.Ticks != nil {
			return protoErrf(CodeBadField, "%s: unexpected fields", r.Op)
		}
	case "":
		return protoErrf(CodeBadOp, "missing op")
	default:
		return protoErrf(CodeBadOp, "unknown op %q", r.Op)
	}
	return nil
}

func (r *Request) needSession() *ProtoError {
	if r.Session == "" {
		return protoErrf(CodeBadField, "%s: missing session", r.Op)
	}
	if r.Width != 0 || r.Height != 0 || r.Model != "" || r.Shards != 0 || r.LinkTicks != 0 {
		return protoErrf(CodeBadField, "%s: unexpected open-session fields", r.Op)
	}
	return nil
}

// Transfer sizing. One Response packet carries a 64-byte line (5 flits);
// a transfer of at most CtrlBytes rides a single 1-flit Request packet.
// MaxTransferBytes caps one transfer at 1 MiB = 16384 packets so a
// single frame cannot schedule unbounded work.
const (
	LineBytes        = 64
	CtrlBytes        = 8
	MaxTransferBytes = 1 << 20
)

// MaxAdvanceTicks caps one advance request; longer horizons are split by
// the caller into multiple frames, which keeps every frame's work (and
// the daemon's responsiveness) bounded.
const MaxAdvanceTicks int64 = 100_000_000

// ExpandTransfer maps one validated transfer request onto injection
// entries at absolute tick at: a single Request packet for control-sized
// payloads, else one Response packet per 64-byte line, all injected at
// the same tick in order (the source core's queue serializes them).
// Both the daemon and the equivalence test's direct-engine path use this
// one function, so "same transfers" means the same packets by
// construction.
func ExpandTransfer(src, dst int, nbytes, at int64) []traffic.Entry {
	if nbytes <= CtrlBytes {
		return []traffic.Entry{{Time: at, Src: src, Dst: dst, Kind: flit.Request}}
	}
	n := (nbytes + LineBytes - 1) / LineBytes
	out := make([]traffic.Entry, n)
	for i := range out {
		out[i] = traffic.Entry{Time: at, Src: src, Dst: dst, Kind: flit.Response}
	}
	return out
}

// EncodeResponse marshals one reply frame with its trailing newline.
func EncodeResponse(resp *Response) ([]byte, error) {
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
