package cosim

import (
	"bytes"
	"flag"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Regenerate the transcript after an intentional wire-format change:
//
//	go test ./internal/cosim -run TestGoldenTranscript -update
var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// transcriptScript is the committed protocol conversation: every op,
// both transfer shapes, an advance whose energy deltas hit the wire,
// and the error replies (decode failure, unknown session) — the frames
// whose byte-level stability the golden file pins. Requests carry
// explicit ids so the transcript is self-describing.
var transcriptScript = []string{
	`{"v":1,"id":1,"op":"open-session","width":3,"height":3,"model":"dozznoc","link_ticks":1}`,
	`{"v":1,"id":2,"op":"transfer","session":"s1","src":0,"dst":8,"bytes":8}`,
	`{"v":1,"id":3,"op":"transfer","session":"s1","src":4,"dst":2,"bytes":256,"at":100}`,
	`{"v":1,"id":4,"op":"advance","session":"s1","ticks":1000}`,
	`{"v":1,"id":5,"op":"query","session":"s1"}`,
	`{"v":1,"id":6,"op":"totally-not-an-op"}`,
	`{"v":1,"id":7,"op":"query","session":"s99"}`,
	`not json at all`,
	`{"v":1,"id":9,"op":"advance","session":"s1","ticks":4000}`,
	`{"v":1,"id":10,"op":"close-session","session":"s1"}`,
}

// TestGoldenTranscript replays the scripted conversation against a
// fresh daemon and compares the full request/response transcript
// byte-for-byte with testdata/golden/cosim-session.golden. Everything
// in the replies is deterministic — session ids count from 1 per
// daemon, the engine is deterministic, and float64 energy values render
// via Go's shortest round-trip encoding.
func TestGoldenTranscript(t *testing.T) {
	d := NewDaemon(Options{})
	defer d.Close()
	cc, sc := net.Pipe()
	go d.ServeConn(sc, sc) //nolint:errcheck — pipe closes below
	defer cc.Close()

	var out bytes.Buffer
	br := make([]byte, 0, MaxFrameBytes)
	for _, req := range transcriptScript {
		out.WriteString("> " + req + "\n")
		if _, err := cc.Write([]byte(req + "\n")); err != nil {
			t.Fatalf("write %q: %v", req, err)
		}
		line, err := readLine(cc, br)
		if err != nil {
			t.Fatalf("reply to %q: %v", req, err)
		}
		out.WriteString("< " + strings.TrimSuffix(line, "\n") + "\n")
	}

	path := filepath.Join("testdata", "golden", "cosim-session.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, out.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("transcript differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
}

// readLine reads one LF-terminated reply from the connection one byte
// at a time (replies are small; net.Pipe has no buffering to exploit).
func readLine(c net.Conn, scratch []byte) (string, error) {
	scratch = scratch[:0]
	buf := make([]byte, 1)
	for {
		if _, err := c.Read(buf); err != nil {
			return "", err
		}
		scratch = append(scratch, buf[0])
		if buf[0] == '\n' {
			return string(scratch), nil
		}
	}
}
