package cosim

import (
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
)

// startConn wires a daemon to a fresh in-memory connection and returns
// a client speaking to it.
func startConn(t *testing.T, d *Daemon) *Client {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- d.ServeConn(sc, sc) }()
	t.Cleanup(func() {
		cc.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return NewClient(cc)
}

// scriptedTransfer is one step of the deterministic workload the
// equivalence and golden tests replay.
type scriptedTransfer struct {
	at       int64
	src, dst int
	bytes    int64
}

// transferScript builds a fixed mixed-size workload over cores cores:
// control messages and 1-10 line payloads, spread over [0, steps*50).
func transferScript(cores, steps int) []scriptedTransfer {
	var out []scriptedTransfer
	sizes := []int64{8, 64, 256, 640}
	for i := 0; len(out) < steps; i++ {
		src := (i * 7) % cores
		dst := (i*5 + 3) % cores
		if src == dst {
			continue
		}
		out = append(out, scriptedTransfer{
			at:    int64(len(out)) * 50,
			src:   src,
			dst:   dst,
			bytes: sizes[i%len(sizes)],
		})
	}
	return out
}

// TestDaemonSessionBitExact replays a scripted transfer sequence through
// the daemon protocol and directly onto a sim.Session built with the
// identical configuration, interleaving the same advance windows, and
// requires the daemon's wire stats, per-transfer latency estimates and
// per-advance energy deltas to DeepEqual the direct engine's — for all
// five paper models and Shards ∈ {1, 4}.
func TestDaemonSessionBitExact(t *testing.T) {
	const (
		width, height = 4, 4
		linkTicks     = 2
		drainWindow   = int64(200_000)
	)
	script := transferScript(width*height, 40)
	// Split the script at the first transfer scheduled at or after the
	// advance boundary: the second wave arrives after time has moved.
	const boundary = int64(1000)
	split := 0
	for split < len(script) && script[split].at < boundary {
		split++
	}
	for _, shards := range []int{1, 4} {
		for _, model := range []string{"baseline", "pg", "lead", "dozznoc", "ml-turbo"} {
			name := fmt.Sprintf("%s/shards=%d", model, shards)

			d := NewDaemon(Options{})
			cl := startConn(t, d)
			sid, cores, err := cl.OpenSession(width, height, model, shards, linkTicks)
			if err != nil {
				t.Fatalf("%s: open: %v", name, err)
			}
			if cores != width*height {
				t.Fatalf("%s: %d cores, want %d", name, cores, width*height)
			}

			topo := topology.NewMesh(width, height)
			spec, ok := specFor(model, topo.NumRouters())
			if !ok {
				t.Fatalf("%s: no spec", name)
			}
			// The daemon attaches a per-session observer (prediction-quality
			// stats in query replies); the direct session must match for the
			// wire stats to DeepEqual.
			direct, err := sim.NewSession(sim.Config{
				Topo: topo, Spec: spec, Shards: shards, LinkTicks: linkTicks,
				Obs: obs.New(),
			})
			if err != nil {
				t.Fatalf("%s: direct session: %v", name, err)
			}

			run := func(ts []scriptedTransfer) {
				for _, tr := range ts {
					_, est, err := cl.Transfer(sid, tr.src, tr.dst, tr.bytes, tr.at)
					if err != nil {
						t.Fatalf("%s: transfer %+v: %v", name, tr, err)
					}
					entries := ExpandTransfer(tr.src, tr.dst, tr.bytes, tr.at)
					want, err := direct.EstimateLatency(tr.src, tr.dst, entries[0].Kind)
					if err != nil {
						t.Fatalf("%s: direct estimate: %v", name, err)
					}
					if est != want {
						t.Fatalf("%s: transfer %+v: daemon estimate %d, direct %d", name, tr, est, want)
					}
					for _, en := range entries {
						if err := direct.Schedule(en.Time, en.Src, en.Dst, en.Kind); err != nil {
							t.Fatalf("%s: direct schedule: %v", name, err)
						}
					}
				}
			}
			advance := func(ticks int64) {
				before := direct.Snapshot()
				resp, err := cl.Advance(sid, ticks)
				if err != nil || !resp.OK {
					t.Fatalf("%s: advance(%d): %v %+v", name, ticks, err, resp)
				}
				if _, err := direct.Advance(ticks); err != nil {
					t.Fatalf("%s: direct advance: %v", name, err)
				}
				after := direct.Snapshot()
				if resp.Now != after.Tick || resp.Advanced != after.Tick-before.Tick {
					t.Fatalf("%s: advance clock (%d,%d) vs direct (%d,%d)",
						name, resp.Now, resp.Advanced, after.Tick, after.Tick-before.Tick)
				}
				if resp.StaticDeltaJ != after.StaticJ-before.StaticJ ||
					resp.DynamicDeltaJ != after.DynamicJ-before.DynamicJ {
					t.Fatalf("%s: advance energy deltas (%g,%g) vs direct (%g,%g)", name,
						resp.StaticDeltaJ, resp.DynamicDeltaJ,
						after.StaticJ-before.StaticJ, after.DynamicJ-before.DynamicJ)
				}
			}

			run(script[:split])
			advance(boundary)
			run(script[split:])
			advance(drainWindow)

			got, err := cl.Query(sid)
			if err != nil {
				t.Fatalf("%s: query: %v", name, err)
			}
			want := wireStats(direct.Snapshot())
			if !reflect.DeepEqual(*got, want) {
				t.Fatalf("%s: daemon stats diverge from direct engine:\ndaemon: %+v\ndirect: %+v", name, *got, want)
			}
			if got.PacketsDelivered != got.PacketsInjected || got.PacketsInjected == 0 {
				t.Fatalf("%s: workload not fully delivered: %+v", name, got)
			}

			final, err := cl.CloseSession(sid)
			if err != nil {
				t.Fatalf("%s: close: %v", name, err)
			}
			if !reflect.DeepEqual(*final, want) {
				t.Fatalf("%s: close stats diverge: %+v vs %+v", name, *final, want)
			}
			direct.Close()
			d.Close()
		}
	}
}

// TestDaemonConcurrentClients drives N clients × M sessions each through
// interleaved opens, transfers, advances and queries. Run under -race
// (make race-sharded) it is the daemon's data-race gate; the assertions
// only sanity-check per-session isolation.
func TestDaemonConcurrentClients(t *testing.T) {
	const (
		clients  = 4
		sessions = 3
		rounds   = 5
	)
	d := NewDaemon(Options{Workers: 2})
	defer d.Close()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		cc, sc := net.Pipe()
		go d.ServeConn(sc, sc) //nolint:errcheck — pipe closes on client exit
		wg.Add(1)
		go func(ci int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			cl := NewClient(conn)
			ids := make([]string, sessions)
			for si := range ids {
				sid, _, err := cl.OpenSession(2, 2, "dozznoc", 1, 1)
				if err != nil {
					errc <- fmt.Errorf("client %d open %d: %w", ci, si, err)
					return
				}
				ids[si] = sid
			}
			var now int64
			for r := 0; r < rounds; r++ {
				for si, sid := range ids {
					if _, _, err := cl.Transfer(sid, si%4, (si+1)%4, 64, now); err != nil {
						errc <- fmt.Errorf("client %d transfer: %w", ci, err)
						return
					}
					for {
						resp, err := cl.Advance(sid, 500)
						if err != nil {
							errc <- fmt.Errorf("client %d advance: %w", ci, err)
							return
						}
						if resp.OK {
							break
						}
						if resp.Code != CodeBusy || resp.RetryAfterMS <= 0 {
							errc <- fmt.Errorf("client %d: non-busy failure %+v", ci, resp)
							return
						}
					}
					st, err := cl.Query(sid)
					if err != nil {
						errc <- fmt.Errorf("client %d query: %w", ci, err)
						return
					}
					if st.Tick != now+500 {
						errc <- fmt.Errorf("client %d session %s at tick %d, want %d", ci, sid, st.Tick, now+500)
						return
					}
				}
				now += 500
				// Exercise the expvar branch concurrently with live traffic.
				_ = cosimExpvar()
			}
			for _, sid := range ids {
				if _, err := cl.CloseSession(sid); err != nil {
					errc <- fmt.Errorf("client %d close: %w", ci, err)
					return
				}
			}
		}(ci, cc)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestDaemonBackpressureBusy saturates a one-worker pool with a gated
// advance and requires the next advance to get an explicit CodeBusy
// reply with a retry hint — never to queue or block — and to succeed on
// retry once the pool frees up.
func TestDaemonBackpressureBusy(t *testing.T) {
	d := NewDaemon(Options{Workers: 1, RetryAfterMS: 7})
	defer d.Close()
	entered := make(chan string, 1)
	release := make(chan struct{})
	d.advanceGate = func(id string) {
		entered <- id
		<-release
	}

	holder := startConn(t, d)
	waiter := startConn(t, d)
	hs, _, err := holder.OpenSession(2, 2, "baseline", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws, _, err := waiter.OpenSession(2, 2, "baseline", 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	heldDone := make(chan *Response, 1)
	go func() {
		resp, err := holder.Advance(hs, 1000)
		if err != nil {
			t.Errorf("held advance: %v", err)
		}
		heldDone <- resp
	}()
	if got := <-entered; got != hs {
		t.Fatalf("gate saw session %s, want %s", got, hs)
	}

	resp, err := waiter.Advance(ws, 1000)
	if err != nil {
		t.Fatalf("busy-path advance: %v", err)
	}
	if resp.OK || resp.Code != CodeBusy || resp.RetryAfterMS != 7 {
		t.Fatalf("expected busy with retry hint, got %+v", resp)
	}

	d.advanceGate = nil
	close(release)
	if resp := <-heldDone; resp == nil || !resp.OK || resp.Advanced != 1000 {
		t.Fatalf("held advance failed: %+v", resp)
	}
	resp, err = waiter.Advance(ws, 1000)
	if err != nil || !resp.OK {
		t.Fatalf("retry after busy failed: %v %+v", err, resp)
	}
}

// TestDaemonSessionLimitAndErrors covers the daemon-level failure
// replies: per-connection session caps, unknown sessions, unknown
// models, and undecodable frames answered (not dropped) with their id
// echoed when it survived.
func TestDaemonSessionLimitAndErrors(t *testing.T) {
	d := NewDaemon(Options{MaxSessionsPerConn: 2})
	defer d.Close()
	cl := startConn(t, d)
	for i := 0; i < 2; i++ {
		if _, _, err := cl.OpenSession(2, 2, "baseline", 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := cl.Do(&Request{Op: OpOpenSession, Width: 2, Height: 2, Model: "baseline"})
	if err != nil || resp.OK || resp.Code != CodeSessionLimit {
		t.Fatalf("expected session-limit, got %+v (%v)", resp, err)
	}
	resp, err = cl.Do(&Request{Op: OpOpenSession, Width: 2, Height: 2, Model: "booksim"})
	if err != nil || resp.OK || resp.Code != CodeBadModel {
		t.Fatalf("expected bad-model, got %+v (%v)", resp, err)
	}
	resp, err = cl.Do(&Request{Op: OpQuery, Session: "s999"})
	if err != nil || resp.OK || resp.Code != CodeNoSession {
		t.Fatalf("expected no-session, got %+v (%v)", resp, err)
	}
	ticks := int64(-5)
	resp, err = cl.Do(&Request{Op: OpAdvance, Session: "s1", Ticks: &ticks})
	if err != nil || resp.OK || resp.Code != CodeBadField {
		t.Fatalf("expected bad-field, got %+v (%v)", resp, err)
	}
}

// TestDaemonServeTCP exercises the real listener path end to end.
func TestDaemonServeTCP(t *testing.T) {
	d := NewDaemon(Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	sid, _, err := cl.OpenSession(2, 2, "pg", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Transfer(sid, 0, 3, 128, -1); err != nil {
		t.Fatal(err)
	}
	if resp, err := cl.Advance(sid, 2000); err != nil || !resp.OK {
		t.Fatalf("advance: %v %+v", err, resp)
	}
	st, err := cl.Query(sid)
	if err != nil || st.PacketsDelivered != 2 {
		t.Fatalf("query: %v %+v", err, st)
	}
	conn.Close()
	d.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestDaemonExpvarBranch: live sessions appear under the dozznoc.cosim
// branch with their model and last snapshot, and disappear on close.
func TestDaemonExpvarBranch(t *testing.T) {
	d := NewDaemon(Options{})
	defer d.Close()
	cl := startConn(t, d)
	sid, _, err := cl.OpenSession(3, 3, "lead", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := cl.Advance(sid, 1500); err != nil || !resp.OK {
		t.Fatalf("advance: %v %+v", err, resp)
	}
	var snap struct {
		Daemons  int `json:"daemons"`
		Sessions map[string]struct {
			Model string `json:"model"`
			Mesh  string `json:"mesh"`
			Stats
		} `json:"sessions"`
	}
	roundTrip := func() {
		t.Helper()
		b, err := json.Marshal(cosimExpvar())
		if err != nil {
			t.Fatal(err)
		}
		snap = struct {
			Daemons  int `json:"daemons"`
			Sessions map[string]struct {
				Model string `json:"model"`
				Mesh  string `json:"mesh"`
				Stats
			} `json:"sessions"`
		}{}
		if err := json.Unmarshal(b, &snap); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()
	sv, ok := snap.Sessions[sid]
	if !ok {
		t.Fatalf("session %s missing from expvar branch: %+v", sid, snap)
	}
	if sv.Model != "lead" || sv.Mesh != "3x3" || sv.Tick != 1500 {
		t.Fatalf("expvar session vars wrong: %+v", sv)
	}
	if snap.Daemons < 1 {
		t.Fatalf("daemon missing from registry: %+v", snap)
	}
	if _, err := cl.CloseSession(sid); err != nil {
		t.Fatal(err)
	}
	roundTrip()
	if _, ok := snap.Sessions[sid]; ok {
		t.Fatalf("closed session still published: %+v", snap)
	}
}
