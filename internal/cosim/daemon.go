package cosim

import (
	"bufio"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Daemon-level failure codes (decode-level codes live in proto.go).
const (
	CodeBusy         = "busy"          // worker pool saturated; retry after RetryAfterMS
	CodeNoSession    = "no-session"    // unknown session id on this connection
	CodeSessionLimit = "session-limit" // per-connection open-session cap reached
	CodeBadModel     = "bad-model"     // open-session model name not recognized
	CodeShutdown     = "shutdown"      // daemon is draining; no new work
)

// Options tunes a Daemon. The zero value is usable.
type Options struct {
	// Workers bounds how many sessions may be advancing simulated time
	// concurrently, across all connections. Requests that need a worker
	// slot while all are taken get an explicit CodeBusy reply with a
	// retry hint instead of queueing. Default: GOMAXPROCS.
	Workers int
	// MaxSessionsPerConn caps open sessions per connection (default 16).
	MaxSessionsPerConn int
	// RetryAfterMS is the hint attached to CodeBusy replies (default 5).
	RetryAfterMS int64
	// ShardMinActive is applied to every session's engine
	// (sim.Config.ShardMinActive): 0 calibrates the sharded engine's
	// serial-fallback threshold from a measured dispatch/barrier
	// round-trip, positive values pin it, negatives disable the
	// fallback. Scheduling-only — session results are bit-identical
	// for any value.
	ShardMinActive int
	// Observer, when non-nil, is attached to every session the daemon
	// opens — engine metrics fold into its Metrics and phase spans into
	// its Tracer (a windowed tracer keeps always-on tracing bounded).
	// The obs layer is engine-goroutine-only, so set this ONLY when the
	// daemon serves a single connection (stdio mode), where all session
	// work runs on one goroutine. cmd/dozznocd enforces that.
	Observer *obs.Observer
}

func (o *Options) applyDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSessionsPerConn <= 0 {
		o.MaxSessionsPerConn = 16
	}
	if o.RetryAfterMS <= 0 {
		o.RetryAfterMS = 5
	}
}

// session is one live engine instance plus its published stats. The
// owning connection goroutine is the only mutator of the sim.Session;
// pub is the last snapshot, guarded by the daemon mutex so the expvar
// branch can read it without touching the engine.
type session struct {
	id    string
	model string
	mesh  string
	sess  *sim.Session

	// Energy already reported through advance replies; the next advance
	// reports the delta past these.
	staticJ, dynamicJ float64

	pub Stats
}

// Daemon hosts cosim sessions and serves the JSONL protocol over any
// number of connections (TCP via Serve, stdio or test pipes via
// ServeConn). Create with NewDaemon, stop with Close.
type Daemon struct {
	opts  Options
	slots chan struct{} // worker-pool semaphore

	mu       sync.Mutex
	sessions map[string]*session // all live sessions, for the expvar branch
	conns    map[io.Closer]struct{}
	nextSess int64
	closed   bool

	wg sync.WaitGroup

	// advanceGate, when set, is called while an advance holds a worker
	// slot — tests use it to saturate the pool deterministically.
	advanceGate func(sessionID string)
}

// NewDaemon returns a daemon ready to serve connections.
func NewDaemon(opts Options) *Daemon {
	opts.applyDefaults()
	d := &Daemon{
		opts:     opts,
		slots:    make(chan struct{}, opts.Workers),
		sessions: make(map[string]*session),
		conns:    make(map[io.Closer]struct{}),
	}
	registerDaemon(d)
	return d
}

// Close drains the daemon: no new connections or sessions, all live
// connections are closed, and every remaining session is finalized
// (final catch-up, observability fold, tracer flush) before Close
// returns.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	d.wg.Wait()
	d.mu.Lock()
	for id, s := range d.sessions {
		s.sess.Close()
		delete(d.sessions, id)
	}
	d.mu.Unlock()
	unregisterDaemon(d)
}

// Serve accepts connections on ln until the daemon is closed or the
// listener fails. Each connection gets its own handler goroutine and its
// own session namespace.
func (d *Daemon) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("cosim: daemon closed")
	}
	d.conns[ln] = struct{}{}
	d.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			delete(d.conns, ln)
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return nil
		}
		d.conns[conn] = struct{}{}
		d.wg.Add(1)
		d.mu.Unlock()
		go func() {
			defer d.wg.Done()
			d.serveConn(conn, conn)
			d.mu.Lock()
			delete(d.conns, conn)
			d.mu.Unlock()
			conn.Close()
		}()
	}
}

// ServeConn serves one already-connected byte stream (stdio, an
// in-memory pipe) until r reaches EOF or the daemon closes. It blocks;
// sessions opened on the stream are finalized when it ends. When r is
// an io.Closer (a pipe end, a net.Conn), Close unblocks it.
func (d *Daemon) ServeConn(r io.Reader, w io.Writer) error {
	rc, closable := r.(io.Closer)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("cosim: daemon closed")
	}
	if closable {
		d.conns[rc] = struct{}{}
	}
	d.wg.Add(1)
	d.mu.Unlock()
	defer func() {
		if closable {
			d.mu.Lock()
			delete(d.conns, rc)
			d.mu.Unlock()
		}
		d.wg.Done()
	}()
	return d.serveConn(r, w)
}

// conn is the per-connection state: the session namespace and the
// buffered writer. One goroutine per connection; ops run synchronously
// so replies are in request order.
type connState struct {
	d        *Daemon
	w        *bufio.Writer
	sessions map[string]*session
}

func (d *Daemon) serveConn(r io.Reader, w io.Writer) error {
	c := &connState{d: d, w: bufio.NewWriter(w), sessions: make(map[string]*session)}
	defer func() {
		for id, s := range c.sessions {
			s.sess.Close()
			d.mu.Lock()
			delete(d.sessions, id)
			d.mu.Unlock()
			delete(c.sessions, id)
		}
		c.w.Flush()
	}()
	br := bufio.NewReaderSize(r, MaxFrameBytes+2)
	for {
		line, tooLong, err := readFrame(br)
		if tooLong {
			if werr := c.reply(&Response{V: Version, ID: peekID(line), OK: false,
				Code: CodeTooLarge, Err: fmt.Sprintf("frame exceeds %d bytes", MaxFrameBytes)}); werr != nil {
				return werr
			}
			if err != nil {
				return ioDone(err)
			}
			continue
		}
		if err != nil {
			if len(line) > 0 {
				if werr := c.handle(line); werr != nil {
					return werr
				}
			}
			return ioDone(err)
		}
		if werr := c.handle(line); werr != nil {
			return werr
		}
	}
}

// readFrame reads one LF-terminated line. Lines longer than the reader's
// buffer are consumed to their newline and reported as tooLong without
// buffering them, so an oversized frame costs a bounded buffer and one
// error reply, not daemon memory.
func readFrame(br *bufio.Reader) (line []byte, tooLong bool, err error) {
	line, err = br.ReadSlice('\n')
	if err == nil || err == io.EOF {
		return line, false, err
	}
	if err != bufio.ErrBufferFull {
		return nil, false, err
	}
	head := append([]byte(nil), line...) // keep a prefix for best-effort id echo
	for err == bufio.ErrBufferFull {
		_, err = br.ReadSlice('\n')
	}
	if err == io.EOF {
		err = nil
	}
	return head, true, err
}

// ioDone maps clean end-of-stream conditions — EOF, our own side or the
// peer closing the connection during shutdown — to nil.
func ioDone(err error) error {
	if err == io.EOF || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// peekID pulls the correlation id out of a frame that failed decoding,
// so even an error reply correlates when the id field itself survived.
func peekID(line []byte) int64 {
	var probe struct {
		ID int64 `json:"id"`
	}
	json.Unmarshal(line, &probe) //nolint:errcheck — best effort by design
	return probe.ID
}

func (c *connState) reply(resp *Response) error {
	b, err := EncodeResponse(resp)
	if err != nil {
		return err
	}
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *connState) fail(id int64, code, format string, args ...any) error {
	return c.reply(&Response{V: Version, ID: id, OK: false, Code: code, Err: fmt.Sprintf(format, args...)})
}

func (c *connState) handle(line []byte) error {
	req, perr := DecodeFrame(line)
	if perr != nil {
		return c.fail(peekID(line), perr.Code, "%s", perr.Msg)
	}
	switch req.Op {
	case OpOpenSession:
		return c.openSession(req)
	case OpTransfer:
		return c.transfer(req)
	case OpAdvance:
		return c.advance(req)
	case OpQuery:
		return c.query(req)
	case OpCloseSession:
		return c.closeSession(req)
	}
	return c.fail(req.ID, CodeBadOp, "unknown op %q", req.Op) // unreachable: DecodeFrame validated
}

// specFor maps a protocol model name to a fresh policy spec. Specs are
// built per session — stateful selectors (ML+TURBO) must never be shared
// between engines.
func specFor(model string, routers int) (policy.Spec, bool) {
	switch model {
	case "baseline":
		return policy.Baseline(), true
	case "pg":
		return policy.PowerGated(), true
	case "lead":
		return policy.DVFSML(policy.ReactiveSelector{}), true
	case "dozznoc":
		return policy.DozzNoC(policy.ReactiveSelector{}), true
	case "ml-turbo":
		return policy.MLTurbo(policy.ReactiveSelector{}, routers), true
	}
	return policy.Spec{}, false
}

func (c *connState) openSession(req *Request) error {
	topo := topology.NewMesh(req.Width, req.Height)
	spec, ok := specFor(req.Model, topo.NumRouters())
	if !ok {
		return c.fail(req.ID, CodeBadModel, "unknown model %q (baseline, pg, lead, dozznoc, ml-turbo)", req.Model)
	}
	if len(c.sessions) >= c.d.opts.MaxSessionsPerConn {
		return c.fail(req.ID, CodeSessionLimit, "connection already holds %d sessions", len(c.sessions))
	}
	// Every session carries an observer so query replies and the expvar
	// branch can report prediction quality. The shared Options.Observer
	// (stdio mode) wins when set; otherwise each session gets a private
	// Metrics — safe under concurrent connections because the engine
	// goroutine discipline is per-session and the instances share nothing.
	observer := c.d.opts.Observer
	if observer == nil {
		observer = obs.New()
	}
	sess, err := sim.NewSession(sim.Config{
		Topo:           topo,
		Spec:           spec,
		Shards:         req.Shards,
		ShardMinActive: c.d.opts.ShardMinActive,
		LinkTicks:      req.LinkTicks,
		Obs:            observer,
	})
	if err != nil {
		return c.fail(req.ID, CodeBadField, "%v", err)
	}
	d := c.d
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		sess.Close()
		return c.fail(req.ID, CodeShutdown, "daemon is draining")
	}
	d.nextSess++
	s := &session{
		id:    fmt.Sprintf("s%d", d.nextSess),
		model: req.Model,
		mesh:  fmt.Sprintf("%dx%d", req.Width, req.Height),
		sess:  sess,
	}
	d.sessions[s.id] = s
	d.mu.Unlock()
	c.sessions[s.id] = s
	c.publish(s)
	return c.reply(&Response{V: Version, ID: req.ID, OK: true, Session: s.id, Cores: sess.Cores()})
}

func (c *connState) lookup(req *Request) (*session, bool) {
	s, ok := c.sessions[req.Session]
	return s, ok
}

func (c *connState) transfer(req *Request) error {
	s, ok := c.lookup(req)
	if !ok {
		return c.fail(req.ID, CodeNoSession, "no session %q on this connection", req.Session)
	}
	at := s.sess.Now()
	if req.At != nil {
		at = *req.At
	}
	entries := ExpandTransfer(*req.Src, *req.Dst, *req.Bytes, at)
	est, err := s.sess.EstimateLatency(*req.Src, *req.Dst, entries[0].Kind)
	if err != nil {
		return c.fail(req.ID, CodeBadField, "%v", err)
	}
	for i, en := range entries {
		if err := s.sess.Schedule(en.Time, en.Src, en.Dst, en.Kind); err != nil {
			if i > 0 {
				// Validation is per-transfer up front (same src/dst/at for
				// every entry), so a mid-loop failure is unreachable; guard
				// anyway rather than half-apply silently.
				return c.fail(req.ID, CodeBadField, "transfer partially scheduled (%d/%d): %v", i, len(entries), err)
			}
			return c.fail(req.ID, CodeBadField, "%v", err)
		}
	}
	c.publish(s)
	return c.reply(&Response{V: Version, ID: req.ID, OK: true,
		Packets: len(entries), LatencyEst: est})
}

func (c *connState) advance(req *Request) error {
	s, ok := c.lookup(req)
	if !ok {
		return c.fail(req.ID, CodeNoSession, "no session %q on this connection", req.Session)
	}
	d := c.d
	select {
	case d.slots <- struct{}{}:
	default:
		return c.reply(&Response{V: Version, ID: req.ID, OK: false,
			Code: CodeBusy, Err: "worker pool saturated", RetryAfterMS: d.opts.RetryAfterMS})
	}
	if d.advanceGate != nil {
		d.advanceGate(s.id)
	}
	n, err := s.sess.Advance(*req.Ticks)
	<-d.slots
	if err != nil {
		return c.fail(req.ID, CodeBadField, "%v", err)
	}
	st := c.publish(s)
	resp := &Response{V: Version, ID: req.ID, OK: true,
		Advanced: n, Now: st.Tick,
		StaticDeltaJ:  st.StaticJ - s.staticJ,
		DynamicDeltaJ: st.DynamicJ - s.dynamicJ,
	}
	s.staticJ, s.dynamicJ = st.StaticJ, st.DynamicJ
	return c.reply(resp)
}

func (c *connState) query(req *Request) error {
	s, ok := c.lookup(req)
	if !ok {
		return c.fail(req.ID, CodeNoSession, "no session %q on this connection", req.Session)
	}
	st := c.publish(s)
	return c.reply(&Response{V: Version, ID: req.ID, OK: true, Stats: &st})
}

func (c *connState) closeSession(req *Request) error {
	s, ok := c.lookup(req)
	if !ok {
		return c.fail(req.ID, CodeNoSession, "no session %q on this connection", req.Session)
	}
	st := wireStats(s.sess.Snapshot())
	res := s.sess.Close()
	delete(c.sessions, s.id)
	c.d.mu.Lock()
	delete(c.d.sessions, s.id)
	c.d.mu.Unlock()
	return c.reply(&Response{V: Version, ID: req.ID, OK: true, Now: res.Ticks, Stats: &st})
}

// publish snapshots the session and stores the result where the expvar
// branch can read it without touching the engine.
func (c *connState) publish(s *session) Stats {
	st := wireStats(s.sess.Snapshot())
	c.d.mu.Lock()
	s.pub = st
	c.d.mu.Unlock()
	return st
}

func wireStats(st sim.SessionStats) Stats {
	return Stats{
		Tick:             st.Tick,
		PacketsInjected:  st.PacketsInjected,
		PacketsDelivered: st.PacketsDelivered,
		FlitsDelivered:   st.FlitsDelivered,
		LatencySumTicks:  st.LatencySumTicks,
		LatencyCount:     st.LatencyCount,
		AvgLatencyTicks:  st.AvgLatencyTicks,
		StaticJ:          st.StaticJ,
		DynamicJ:         st.DynamicJ,

		EpochDecisions:       st.EpochDecisions,
		MeanAbsPredErr:       st.MeanAbsPredErr,
		UnderPredDecisions:   st.UnderPredDecisions,
		OverPredDecisions:    st.OverPredDecisions,
		UnderPredStallTicks:  st.UnderPredStallTicks,
		OverPredStaticWasteJ: st.OverPredStaticWasteJ,
		PredDriftEvents:      st.PredDriftEvents,
	}
}

// --- expvar branch ---------------------------------------------------

// The "dozznoc.cosim" expvar map gives every live session its own
// branch keyed by session id: {model, mesh, tick, packets_delivered,
// static_j, dynamic_j, ...}. expvar names are process-global, so the
// variable is published once and reads through a registry of live
// daemons (a test or embedder may run several).
var (
	cosimPublishOnce sync.Once
	cosimRegMu       sync.Mutex
	cosimDaemons     = make(map[*Daemon]struct{})
)

func registerDaemon(d *Daemon) {
	cosimRegMu.Lock()
	cosimDaemons[d] = struct{}{}
	cosimRegMu.Unlock()
	cosimPublishOnce.Do(func() {
		expvar.Publish("dozznoc.cosim", expvar.Func(cosimExpvar))
	})
}

func unregisterDaemon(d *Daemon) {
	cosimRegMu.Lock()
	delete(cosimDaemons, d)
	cosimRegMu.Unlock()
}

func cosimExpvar() any {
	type sessionVar struct {
		Model string `json:"model"`
		Mesh  string `json:"mesh"`
		Stats
	}
	out := struct {
		Daemons  int                   `json:"daemons"`
		Sessions map[string]sessionVar `json:"sessions"`
	}{Sessions: make(map[string]sessionVar)}
	cosimRegMu.Lock()
	daemons := make([]*Daemon, 0, len(cosimDaemons))
	for d := range cosimDaemons {
		daemons = append(daemons, d)
	}
	cosimRegMu.Unlock()
	out.Daemons = len(daemons)
	for _, d := range daemons {
		d.mu.Lock()
		for id, s := range d.sessions {
			out.Sessions[id] = sessionVar{Model: s.model, Mesh: s.mesh, Stats: s.pub}
		}
		d.mu.Unlock()
	}
	return out
}
