package cosim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Client is a minimal synchronous protocol client: one request on the
// wire at a time, replies matched by correlation id. It serves the
// package's own tests, the golden-transcript harness, and scripted
// drivers of cmd/dozznocd; a real co-simulation master can speak the
// protocol directly from any language with a JSON library.
type Client struct {
	w      *bufio.Writer
	r      *bufio.Reader
	nextID int64
}

// NewClient wraps a connected byte stream (a net.Conn, a pipe pair, a
// subprocess's stdio).
func NewClient(rw io.ReadWriter) *Client {
	return &Client{w: bufio.NewWriter(rw), r: bufio.NewReaderSize(rw, MaxFrameBytes+2)}
}

// Do assigns the version and the next correlation id, sends the request,
// and reads its reply. Protocol-level failures come back as the
// Response (OK false, Code set); transport failures as the error.
func (c *Client) Do(req *Request) (*Response, error) {
	c.nextID++
	req.V = Version
	req.ID = c.nextID
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	if _, err := c.w.Write(b); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("cosim: read reply: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("cosim: bad reply frame: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("cosim: reply id %d for request %d", resp.ID, req.ID)
	}
	return &resp, nil
}

// must turns a protocol-level failure into a transport-level error; the
// typed helpers below use it so callers get one error path.
func must(resp *Response, err error) (*Response, error) {
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("cosim: %s: %s", resp.Code, resp.Err)
	}
	return resp, nil
}

// OpenSession opens a width x height mesh running the named model and
// returns the session id and its core count.
func (c *Client) OpenSession(width, height int, model string, shards int, linkTicks int64) (string, int, error) {
	resp, err := must(c.Do(&Request{Op: OpOpenSession,
		Width: width, Height: height, Model: model, Shards: shards, LinkTicks: linkTicks}))
	if err != nil {
		return "", 0, err
	}
	return resp.Session, resp.Cores, nil
}

// Transfer schedules nbytes from src to dst at absolute tick at (the
// session's current tick if at < 0) and returns the packet count and
// the latency estimate the daemon replied with.
func (c *Client) Transfer(session string, src, dst int, nbytes, at int64) (packets int, latencyEst int64, err error) {
	req := &Request{Op: OpTransfer, Session: session, Src: &src, Dst: &dst, Bytes: &nbytes}
	if at >= 0 {
		req.At = &at
	}
	resp, err := must(c.Do(req))
	if err != nil {
		return 0, 0, err
	}
	return resp.Packets, resp.LatencyEst, nil
}

// Advance advances the session by ticks and returns the reply (advanced
// count, new now, energy deltas). A CodeBusy reply is returned as the
// Response with a nil error so callers can honor RetryAfterMS.
func (c *Client) Advance(session string, ticks int64) (*Response, error) {
	resp, err := c.Do(&Request{Op: OpAdvance, Session: session, Ticks: &ticks})
	if err != nil {
		return nil, err
	}
	if !resp.OK && resp.Code != CodeBusy {
		return resp, fmt.Errorf("cosim: %s: %s", resp.Code, resp.Err)
	}
	return resp, nil
}

// Query returns the session's cumulative stats.
func (c *Client) Query(session string) (*Stats, error) {
	resp, err := must(c.Do(&Request{Op: OpQuery, Session: session}))
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// CloseSession finalizes the session and returns its last stats.
func (c *Client) CloseSession(session string) (*Stats, error) {
	resp, err := must(c.Do(&Request{Op: OpCloseSession, Session: session}))
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
