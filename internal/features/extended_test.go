package features

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/topology"
)

func TestExtendedNames(t *testing.T) {
	if len(ExtendedNames) != ExtendedCount {
		t.Fatalf("%d names for %d features", len(ExtendedNames), ExtendedCount)
	}
	// The first five columns coincide with the reduced set.
	for i, n := range Names {
		if ExtendedNames[i] != n {
			t.Fatalf("column %d = %q, reduced set has %q", i, ExtendedNames[i], n)
		}
	}
	seen := map[string]bool{}
	for _, n := range ExtendedNames {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestExtendedVectorShape(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	ctrl := policy.NewController(topo.NumRouters(), policy.DozzNoC(policy.ReactiveSelector{}))
	n := network.New(topo, 2, 4, 1, ctrl, nil, nil)
	ctrl.SetNetView(netView{n})
	ext := NewExtendedExtractor(topo)
	if ext.Count() != ExtendedCount {
		t.Fatalf("count = %d", ext.Count())
	}
	v := ext.Collect(0, n, ctrl, 0.3, 500)
	if len(v) != ExtendedCount {
		t.Fatalf("vector length %d", len(v))
	}
	if v[Bias] != 1 || v[IBU] != 0.3 {
		t.Fatal("reduced prefix wrong")
	}
	// All lag columns start at zero.
	for i := 5; i < 13; i++ {
		if v[i] != 0 {
			t.Fatalf("fresh lag column %d = %g", i, v[i])
		}
	}
}

func TestExtendedLagsShift(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	ctrl := policy.NewController(topo.NumRouters(), policy.DozzNoC(policy.ReactiveSelector{}))
	n := network.New(topo, 2, 4, 1, ctrl, nil, nil)
	ctrl.SetNetView(netView{n})
	ext := NewExtendedExtractor(topo)
	ext.Collect(0, n, ctrl, 0.1, 500)
	v := ext.Collect(0, n, ctrl, 0.2, 1000)
	// ibu_lag1 (column 5) must hold the previous epoch's IBU.
	if v[5] != 0.1 {
		t.Fatalf("ibu_lag1 = %g, want 0.1", v[5])
	}
	v = ext.Collect(0, n, ctrl, 0.3, 1500)
	if v[5] != 0.2 || v[6] != 0.1 {
		t.Fatalf("lags = %g, %g; want 0.2, 0.1", v[5], v[6])
	}
}

func TestExtendedRequestDelta(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	ctrl := policy.NewController(topo.NumRouters(), policy.DozzNoC(policy.ReactiveSelector{}))
	n := network.New(topo, 2, 4, 1, ctrl, nil, nil)
	ctrl.SetNetView(netView{n})
	ext := NewExtendedExtractor(topo)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(1, 0), 0)
	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	for tick := int64(0); tick < 100 && n.InFlight(); tick++ {
		n.SetTick(tick)
		for r := range n.Routers {
			if ctrl.Advance(r) {
				n.RouterCycle(r)
			}
		}
	}
	v := ext.Collect(topo.RouterOf(src), n, ctrl, 0, 500)
	if v[ReqsSent] != 1 {
		t.Fatalf("sent delta = %g", v[ReqsSent])
	}
	// The next epoch's lag1 column for reqs_sent (column 13) holds it.
	v = ext.Collect(topo.RouterOf(src), n, ctrl, 0, 1000)
	if v[13] != 1 {
		t.Fatalf("reqs_sent_lag1 = %g, want 1", v[13])
	}
	if v[ReqsSent] != 0 {
		t.Fatalf("second-epoch delta = %g", v[ReqsSent])
	}
}

func TestExtendedReset(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	ctrl := policy.NewController(topo.NumRouters(), policy.DozzNoC(policy.ReactiveSelector{}))
	n := network.New(topo, 2, 4, 1, ctrl, nil, nil)
	ctrl.SetNetView(netView{n})
	ext := NewExtendedExtractor(topo)
	ext.Collect(0, n, ctrl, 0.5, 500)
	ext.Reset()
	v := ext.Collect(0, n, ctrl, 0.1, 500)
	if v[5] != 0 {
		t.Fatalf("lag survived reset: %g", v[5])
	}
}
