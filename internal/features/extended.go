package features

import (
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/timing"
	"repro/internal/topology"
)

// Extended implements the 41-feature set of the original LEAD work that
// the paper's trade-off study (§IV-B1) compares against the reduced
// 5-feature set (DozzNoC-41 vs DozzNoC-5). The exact 41 features of LEAD
// are not enumerated in either paper; this reconstruction follows its
// description — a wide window of local router activity — using the five
// Table IV features plus per-epoch history lags and per-port state:
//
//	 0     bias
//	 1- 2  reqs sent / received this epoch
//	 3     cumulative off-time fraction
//	 4     current epoch IBU
//	 5-12  IBU of the previous 8 epochs
//	13-16  reqs sent, previous 4 epochs
//	17-20  reqs received, previous 4 epochs
//	21     flits forwarded this epoch
//	22-25  flits forwarded, previous 4 epochs
//	26     flits ejected this epoch
//	27-30  flits ejected, previous 4 epochs
//	31     off-time fraction at the previous epoch
//	32     packets queued at the attached cores now
//	33     packets queued at the previous epoch boundary
//	34-37  packets pending toward each cardinal output port now
//	38     wakes so far (per-network, normalized per router)
//	39     gatings so far (per-network, normalized per router)
//	40     epoch index (normalized by 1000)
//
// Feature 0-4 coincide with the reduced set, so a model trained on the
// extended vector restricted to columns 0-4 reproduces DozzNoC-5.
const ExtendedCount = 41

// ExtendedNames lists the 41 column names.
var ExtendedNames = extendedNames()

func extendedNames() []string {
	names := make([]string, 0, ExtendedCount)
	names = append(names, Names[:]...)
	for i := 1; i <= 8; i++ {
		names = append(names, lagName("ibu", i))
	}
	for i := 1; i <= 4; i++ {
		names = append(names, lagName("reqs_sent", i))
	}
	for i := 1; i <= 4; i++ {
		names = append(names, lagName("reqs_recv", i))
	}
	names = append(names, "fwd")
	for i := 1; i <= 4; i++ {
		names = append(names, lagName("fwd", i))
	}
	names = append(names, "eject")
	for i := 1; i <= 4; i++ {
		names = append(names, lagName("eject", i))
	}
	names = append(names,
		"off_time_lag1", "queued", "queued_lag1",
		"pending_n", "pending_e", "pending_s", "pending_w",
		"wakes", "gatings", "epoch_idx",
	)
	return names
}

func lagName(base string, lag int) string {
	return base + "_lag" + string(rune('0'+lag))
}

// routerHist is one router's per-epoch history.
type routerHist struct {
	ibu      [8]float64
	sent     [4]float64
	recv     [4]float64
	fwd      [4]float64
	eject    [4]float64
	offFrac  float64
	queued   float64
	prevFwd  int64
	prevEj   int64
	prevSent int64
	prevRecv int64
}

func pushLag(buf []float64, v float64) {
	copy(buf[1:], buf[:len(buf)-1])
	buf[0] = v
}

// ExtendedExtractor computes the 41-feature vector per router per epoch.
type ExtendedExtractor struct {
	topo  topology.Topology
	hist  []routerHist
	epoch int64
}

// NewExtendedExtractor builds the extractor.
func NewExtendedExtractor(topo topology.Topology) *ExtendedExtractor {
	return &ExtendedExtractor{topo: topo, hist: make([]routerHist, topo.NumRouters())}
}

// Count returns ExtendedCount (the extractor's vector width).
func (e *ExtendedExtractor) Count() int { return ExtendedCount }

// Collect returns the extended vector for one router at an epoch boundary
// and advances its history. Call exactly once per router per boundary; the
// shared epoch counter advances when router 0 is collected.
func (e *ExtendedExtractor) Collect(routerID int, net *network.Network, ctrl *policy.Controller, ibu float64, now timing.Tick) []float64 {
	if routerID == 0 {
		e.epoch++
	}
	h := &e.hist[routerID]
	r := net.Routers[routerID]

	var sent, recv, queued int64
	c0 := routerID * e.topo.Concentration()
	for lp := 0; lp < e.topo.Concentration(); lp++ {
		sent += net.CoreSentRequests(c0 + lp)
		recv += net.CoreRecvRequests(c0 + lp)
		queued += int64(net.QueuedPackets(c0 + lp))
	}
	dSent := float64(sent - h.prevSent)
	dRecv := float64(recv - h.prevRecv)
	dFwd := float64(r.FlitsForwarded() - h.prevFwd)
	dEj := float64(r.FlitsEjected() - h.prevEj)
	h.prevSent, h.prevRecv = sent, recv
	h.prevFwd, h.prevEj = r.FlitsForwarded(), r.FlitsEjected()

	offFrac := 0.0
	if now > 0 {
		offFrac = float64(ctrl.OffTicks(routerID)) / float64(now)
	}
	st := ctrl.Stats()
	nR := float64(len(e.hist))

	v := make([]float64, 0, ExtendedCount)
	v = append(v, 1, dSent, dRecv, offFrac, ibu)
	v = append(v, h.ibu[:]...)
	v = append(v, h.sent[:]...)
	v = append(v, h.recv[:]...)
	v = append(v, dFwd)
	v = append(v, h.fwd[:]...)
	v = append(v, dEj)
	v = append(v, h.eject[:]...)
	v = append(v,
		h.offFrac, float64(queued), h.queued,
	)
	for p := topology.PortNorth(e.topo); p <= topology.PortWest(e.topo); p++ {
		v = append(v, float64(r.PendingToPort(p)))
	}
	v = append(v,
		float64(st.Wakes)/nR,
		float64(st.Gatings)/nR,
		float64(e.epoch)/1000.0,
	)

	// Advance history after building the vector.
	pushLag(h.ibu[:], ibu)
	pushLag(h.sent[:], dSent)
	pushLag(h.recv[:], dRecv)
	pushLag(h.fwd[:], dFwd)
	pushLag(h.eject[:], dEj)
	h.offFrac = offFrac
	h.queued = float64(queued)
	return v
}

// Reset clears all history.
func (e *ExtendedExtractor) Reset() {
	for i := range e.hist {
		e.hist[i] = routerHist{}
	}
	e.epoch = 0
}

// FeatureNames labels the extended vector's columns.
func (e *ExtendedExtractor) FeatureNames() []string { return ExtendedNames }
