package features

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/timing"
	"repro/internal/topology"
)

func buildWorld(t *testing.T) (topology.Topology, *network.Network, *policy.Controller, *Extractor) {
	t.Helper()
	topo := topology.NewMesh(4, 4)
	ctrl := policy.NewController(topo.NumRouters(), policy.DozzNoC(policy.ReactiveSelector{}))
	n := network.New(topo, 2, 4, 1, ctrl, nil, nil)
	ctrl.SetNetView(netView{n})
	return topo, n, ctrl, NewExtractor(topo)
}

type netView struct{ n *network.Network }

func (v netView) BuffersEmpty(r int) bool { return v.n.Routers[r].BuffersEmpty() }
func (v netView) Secured(r int) bool      { return v.n.Secured(r) }

func TestFeatureVectorLayout(t *testing.T) {
	if Count != 5 {
		t.Fatalf("feature count = %d, paper uses 5", Count)
	}
	if Names[Bias] != "bias" || Names[IBU] != "ibu" || Names[OffTime] != "off_time" {
		t.Fatalf("names = %v", Names)
	}
}

func TestCollectBiasAndIBU(t *testing.T) {
	_, n, ctrl, ext := buildWorld(t)
	v := ext.Collect(0, n, ctrl, 0.42, 1000)
	if len(v) != Count {
		t.Fatalf("vector length %d", len(v))
	}
	if v[Bias] != 1 {
		t.Error("bias must be 1")
	}
	if v[IBU] != 0.42 {
		t.Errorf("ibu = %g", v[IBU])
	}
	if v[OffTime] != 0 {
		t.Errorf("fresh off time = %g", v[OffTime])
	}
}

func TestCollectRequestDeltas(t *testing.T) {
	topo, n, ctrl, ext := buildWorld(t)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(1, 0), 0)
	srcR, dstR := topo.RouterOf(src), topo.RouterOf(dst)

	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	n.Inject(flit.New(2, src, dst, flit.Request, 0))
	for tick := int64(0); tick < 200 && n.InFlight(); tick++ {
		n.SetTick(tick)
		ctrl.SetNow(0)
		for r := range n.Routers {
			if ctrl.Advance(r) {
				n.RouterCycle(r)
			}
		}
	}
	v := ext.Collect(srcR, n, ctrl, 0, 500)
	if v[ReqsSent] != 2 {
		t.Errorf("sent delta = %g, want 2", v[ReqsSent])
	}
	v = ext.Collect(dstR, n, ctrl, 0, 500)
	if v[ReqsRecv] != 2 {
		t.Errorf("recv delta = %g, want 2", v[ReqsRecv])
	}
	// Deltas reset: a second collection sees nothing new.
	v = ext.Collect(srcR, n, ctrl, 0, 1000)
	if v[ReqsSent] != 0 {
		t.Errorf("second-epoch sent delta = %g, want 0", v[ReqsSent])
	}
}

func TestCollectOffFraction(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	ctrl := policy.NewController(topo.NumRouters(), policy.PowerGated())
	n := network.New(topo, 2, 4, 1, ctrl, nil, nil)
	ctrl.SetNetView(netView{n})
	ext := NewExtractor(topo)
	// Gate router 0 by running idle cycles.
	for tick := int64(0); ctrl.State(0) == policy.Active; tick++ {
		ctrl.SetNow(timing.Tick(tick))
		if ctrl.Advance(0) {
			ctrl.PostCycle(0)
		}
	}
	// 100 ticks later, off fraction is large.
	ctrl.SetNow(timing.Tick(200))
	v := ext.Collect(0, n, ctrl, 0, 200)
	if v[OffTime] <= 0.5 || v[OffTime] > 1 {
		t.Fatalf("off fraction = %g, want in (0.5, 1]", v[OffTime])
	}
}

func TestReset(t *testing.T) {
	topo, n, ctrl, ext := buildWorld(t)
	src := topo.CoreAt(topo.RouterAt(0, 0), 0)
	dst := topo.CoreAt(topo.RouterAt(1, 0), 0)
	n.Inject(flit.New(1, src, dst, flit.Request, 0))
	for tick := int64(0); tick < 100 && n.InFlight(); tick++ {
		n.SetTick(tick)
		for r := range n.Routers {
			if ctrl.Advance(r) {
				n.RouterCycle(r)
			}
		}
	}
	ext.Collect(topo.RouterOf(src), n, ctrl, 0, 100)
	ext.Reset()
	v := ext.Collect(topo.RouterOf(src), n, ctrl, 0, 100)
	if v[ReqsSent] != 1 {
		t.Fatalf("after reset the delta baseline must restart: %g", v[ReqsSent])
	}
}
