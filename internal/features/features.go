// Package features extracts the paper's reduced Table IV feature set per
// router per epoch, used both to harvest training data from the reactive
// models and to generate labels at runtime for the proactive models.
//
// Feature vector (in order):
//
//	0: bias          — the "array of 1's" normalization feature
//	1: reqs_sent     — request packets injected by the cores attached to
//	                   the router during the closing epoch
//	2: reqs_recv     — request packets delivered to the attached cores
//	                   during the closing epoch
//	3: off_time      — the router's cumulative power-gated time as a
//	                   fraction of elapsed simulation time
//	4: ibu           — the closing epoch's average input-buffer
//	                   utilization in [0, 1]
//
// The label predicted from this vector is the *next* epoch's IBU.
package features

import (
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/timing"
	"repro/internal/topology"
)

// Count is the number of features (the paper's reduced set of 5).
const Count = 5

// Indices of the features within a vector.
const (
	Bias = iota
	ReqsSent
	ReqsRecv
	OffTime
	IBU
)

// Names are the column names, aligned with the indices above.
var Names = [Count]string{"bias", "reqs_sent", "reqs_recv", "off_time", "ibu"}

// Extractor computes per-epoch feature vectors. It keeps the previous
// cumulative counters so each call yields per-epoch deltas.
type Extractor struct {
	topo     topology.Topology
	prevSent []int64 // per router: cumulative requests sent by its cores
	prevRecv []int64
}

// NewExtractor builds an extractor for a topology.
func NewExtractor(topo topology.Topology) *Extractor {
	return &Extractor{
		topo:     topo,
		prevSent: make([]int64, topo.NumRouters()),
		prevRecv: make([]int64, topo.NumRouters()),
	}
}

// Collect returns the feature vector of one router at an epoch boundary.
// ibu is the closing epoch's measured utilization; now the current tick.
// Collect must be called exactly once per router per epoch boundary (it
// advances the delta baselines).
func (e *Extractor) Collect(routerID int, net *network.Network, ctrl *policy.Controller, ibu float64, now timing.Tick) []float64 {
	var sent, recv int64
	c0 := routerID * e.topo.Concentration()
	for lp := 0; lp < e.topo.Concentration(); lp++ {
		sent += net.CoreSentRequests(c0 + lp)
		recv += net.CoreRecvRequests(c0 + lp)
	}
	dSent := sent - e.prevSent[routerID]
	dRecv := recv - e.prevRecv[routerID]
	e.prevSent[routerID] = sent
	e.prevRecv[routerID] = recv

	offFrac := 0.0
	if now > 0 {
		offFrac = float64(ctrl.OffTicks(routerID)) / float64(now)
	}
	return []float64{1, float64(dSent), float64(dRecv), offFrac, ibu}
}

// Reset clears the delta baselines (for reuse across runs).
func (e *Extractor) Reset() {
	for i := range e.prevSent {
		e.prevSent[i] = 0
		e.prevRecv[i] = 0
	}
}

// FeatureNames labels the reduced vector's columns (sim dataset naming).
func (e *Extractor) FeatureNames() []string { return Names[:] }
