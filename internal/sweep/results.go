// Results: the JSONL row schema and the crash-tolerant reader.
//
// One Row is appended per completed run, in canonical matrix order, each
// line fsync'd before the next is written. Because the writer never
// reorders and never buffers more than the out-of-order completions, the
// file on disk is always a byte prefix of the uninterrupted job's output
// plus at most one torn final line — the only two states ReadResults has
// to understand.

package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Row is one completed run's result record. It holds only fields that
// are bit-exact for a given run configuration: the engine's scheduling
// diagnostics (parallel ticks, shard load) are excluded here and zeroed
// in the embedded obs snapshot (obs.Snapshot.Deterministic), so a
// resumed job reproduces the uninterrupted job's bytes exactly.
type Row struct {
	ID         string `json:"id"`
	Topo       string `json:"topo"`
	Bench      string `json:"bench"`
	Model      string `json:"model"`
	Seed       int64  `json:"seed"`
	EpochTicks int64  `json:"epoch_ticks"`
	Compress   int64  `json:"compress"`
	PunchHops  int    `json:"punch_hops"`
	Lambda     string `json:"lambda"`

	Ticks            int64   `json:"ticks"`
	Drained          bool    `json:"drained"`
	PacketsInjected  int64   `json:"packets_injected"`
	PacketsDelivered int64   `json:"packets_delivered"`
	FlitsDelivered   int64   `json:"flits_delivered"`
	AvgLatencyTicks  float64 `json:"avg_latency_ticks"`
	LatencyP50       int64   `json:"latency_p50"`
	LatencyP95       int64   `json:"latency_p95"`
	LatencyP99       int64   `json:"latency_p99"`
	LatencyMax       int64   `json:"latency_max"`
	Throughput       float64 `json:"throughput"`
	StaticJ          float64 `json:"static_j"`
	DynamicJ         float64 `json:"dynamic_j"`
	EDP              float64 `json:"edp"`
	OffFraction      float64 `json:"off_fraction"`
	WakeupFraction   float64 `json:"wakeup_fraction"`
	Gatings          int64   `json:"gatings"`
	Wakes            int64   `json:"wakes"`
	BreakevenMet     int64   `json:"breakeven_met"`
	ModeSwitches     int64   `json:"mode_switches"`
	EpochDecisions   int64   `json:"epoch_decisions"`

	// Prediction-quality columns (sim.Result semantics: deterministic,
	// populated only for observed runs — zero otherwise). Top-level so
	// downstream row consumers need not dig into the embedded snapshot.
	MeanAbsPredErr       float64 `json:"mean_abs_pred_err"`
	UnderPredDecisions   int64   `json:"underpred_decisions"`
	OverPredDecisions    int64   `json:"overpred_decisions"`
	UnderPredStallTicks  int64   `json:"underpred_stall_ticks"`
	OverPredStaticWasteJ float64 `json:"overpred_static_waste_j"`
	PredDriftEvents      int64   `json:"pred_drift_events"`

	// Obs is the per-run epoch-fold capture (deterministic subset; nil
	// when the run carried no observer).
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// makeRow folds a run's result and observer snapshot into its record.
func makeRow(r *Run, res *sim.Result, snap *obs.Snapshot) Row {
	row := Row{
		ID:         r.ID,
		Topo:       r.Topo,
		Bench:      r.Bench,
		Model:      r.Model,
		Seed:       r.Seed,
		EpochTicks: r.EpochTicks,
		Compress:   r.Compress,
		PunchHops:  r.PunchHops,
		Lambda:     r.Lambda,

		Ticks:            res.Ticks,
		Drained:          res.Drained,
		PacketsInjected:  res.PacketsInjected,
		PacketsDelivered: res.PacketsDelivered,
		FlitsDelivered:   res.FlitsDelivered,
		AvgLatencyTicks:  res.AvgLatencyTicks,
		LatencyP50:       res.Latency.P50,
		LatencyP95:       res.Latency.P95,
		LatencyP99:       res.Latency.P99,
		LatencyMax:       res.Latency.Max,
		Throughput:       res.Throughput,
		StaticJ:          res.StaticJ,
		DynamicJ:         res.DynamicJ,
		EDP:              res.EDP(),
		OffFraction:      res.OffFraction,
		WakeupFraction:   res.WakeupFraction,
		Gatings:          res.Policy.Gatings,
		Wakes:            res.Policy.Wakes,
		BreakevenMet:     res.Policy.BreakevenMet,
		ModeSwitches:     res.Policy.ModeSwitches,
		EpochDecisions:   res.Policy.EpochDecisions,

		MeanAbsPredErr:       res.MeanAbsPredErr,
		UnderPredDecisions:   res.UnderPredDecisions,
		OverPredDecisions:    res.OverPredDecisions,
		UnderPredStallTicks:  res.UnderPredStallTicks,
		OverPredStaticWasteJ: res.OverPredStaticWasteJ,
		PredDriftEvents:      res.PredDriftEvents,
	}
	if snap != nil {
		det := snap.Deterministic()
		row.Obs = &det
	}
	return row
}

// encodeRow renders one JSONL line (including the trailing newline).
// encoding/json emits struct fields in declaration order and formats
// floats deterministically, so identical rows encode to identical bytes.
func encodeRow(row *Row) ([]byte, error) {
	b, err := json.Marshal(row)
	if err != nil {
		return nil, fmt.Errorf("sweep: encode row %s: %w", row.ID, err)
	}
	return append(b, '\n'), nil
}

// ReadResults loads a results file, tolerating the torn final line a
// mid-write crash leaves behind. It returns the decoded rows, the byte
// offset just past the last intact line (the truncation point for a
// resuming job), and whether trailing bytes were discarded. A missing
// file is zero rows, not an error.
func ReadResults(path string) (rows []Row, validOff int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Final line has no terminator: torn mid-write.
			return rows, validOff, true, nil
		}
		line := data[:nl]
		var row Row
		if err := json.Unmarshal(line, &row); err != nil || row.ID == "" {
			// A malformed line can only be the write that died (all
			// writes are sequential and fsync'd in order), so nothing
			// after it can be valid either.
			return rows, validOff, true, nil
		}
		rows = append(rows, row)
		validOff += int64(nl + 1)
		data = data[nl+1:]
	}
	return rows, validOff, false, nil
}
