// The crash-safe job runner: a bounded worker pool over the canonical
// run matrix, suites shared per configuration group, traces shared
// globally, and an in-order fsync'd JSONL writer.

package sweep

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// Options tune one RunJob invocation.
type Options struct {
	// Workers bounds the pool (0 falls back to Spec.Workers, then
	// GOMAXPROCS).
	Workers int
	// MaxNewRuns stops the job after writing this many new rows (0 = run
	// to completion). It exists for incremental batches and for the
	// restart tests and `make sweep-smoke`, which use it to simulate a
	// mid-job crash at a deterministic point.
	MaxNewRuns int
	// Log receives one progress line per completed row (nil = silent).
	Log io.Writer
}

// Report summarizes one RunJob invocation.
type Report struct {
	Total     int  // matrix size
	Resumed   int  // intact rows already on disk when the job started
	Written   int  // new rows appended by this invocation
	Truncated bool // a torn final line was discarded before appending
	Stopped   bool // MaxNewRuns ended the job before the matrix finished
}

// Done reports whether the results file now covers the whole matrix.
func (r *Report) Done() bool { return r.Resumed+r.Written == r.Total }

// RunJob executes the spec's run matrix, appending one fsync'd JSONL row
// per completed run to outPath in canonical matrix order. If outPath
// already holds a prefix of this spec's results (from a crashed or
// MaxNewRuns-bounded earlier invocation), those runs are skipped and a
// torn final line is truncated away first; the bytes ultimately on disk
// are identical to an uninterrupted job's.
func RunJob(spec *Spec, outPath string, opt Options) (*Report, error) {
	runs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	prev, validOff, torn, err := ReadResults(outPath)
	if err != nil {
		return nil, err
	}
	if len(prev) > len(runs) {
		return nil, fmt.Errorf("sweep: %s holds %d rows but the spec expands to %d runs — wrong results file?",
			outPath, len(prev), len(runs))
	}
	for i := range prev {
		if prev[i].ID != runs[i].ID {
			return nil, fmt.Errorf("sweep: %s row %d is %s, spec expects %s — results file belongs to a different spec",
				outPath, i, prev[i].ID, runs[i].ID)
		}
	}
	done := len(prev)
	report := &Report{Total: len(runs), Resumed: done, Truncated: torn}
	if done == len(runs) && !torn {
		return report, nil
	}

	f, err := os.OpenFile(outPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Cut the torn tail (a no-op on a clean file) so every append lands
	// exactly where the uninterrupted job would have put it.
	if err := f.Truncate(validOff); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}

	last := len(runs)
	if opt.MaxNewRuns > 0 && done+opt.MaxNewRuns < last {
		last = done + opt.MaxNewRuns
		report.Stopped = true
	}
	workers := opt.Workers
	if workers == 0 {
		workers = spec.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := last - done; workers > n {
		workers = n
	}

	r := newRunner(spec)
	type outcome struct {
		idx int
		row Row
		err error
	}
	indexCh := make(chan int)
	resultCh := make(chan outcome, last-done)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(indexCh)
		for i := done; i < last; i++ {
			select {
			case indexCh <- i:
			case <-stop:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One observer per worker: a Metrics binds to a single run
			// at a time, and rebinding resets it, so a worker can reuse
			// its own across every run it executes.
			o := obs.New()
			for idx := range indexCh {
				row, err := r.execute(&runs[idx], o)
				resultCh <- outcome{idx: idx, row: row, err: err}
			}
		}()
	}

	// In-order writer: completions arrive out of order, rows leave in
	// canonical order, each line fsync'd before the next. The file is
	// therefore always a prefix of the full canonical output.
	pending := make(map[int]Row, workers)
	next := done
	var firstErr error
	for received := 0; received < last-done; received++ {
		out := <-resultCh
		if out.err != nil {
			firstErr = fmt.Errorf("sweep: run %s: %w", runs[out.idx].ID, out.err)
			break
		}
		pending[out.idx] = out.row
		for {
			row, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			line, err := encodeRow(&row)
			if err == nil {
				_, err = f.Write(line)
			}
			if err == nil {
				err = f.Sync()
			}
			if err != nil {
				firstErr = err
				break
			}
			next++
			report.Written++
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "sweep: [%d/%d] %s\n", next, len(runs), row.ID)
			}
		}
		if firstErr != nil {
			break
		}
	}
	// resultCh's buffer holds the whole schedule, so workers never block
	// on send: stopping the feeder and waiting is a clean shutdown even
	// when the loop above bailed early.
	close(stop)
	wg.Wait()

	if cerr := f.Close(); cerr != nil && firstErr == nil {
		firstErr = cerr
	}
	if firstErr != nil {
		return report, firstErr
	}
	return report, nil
}

// suiteKey identifies one engine-suite configuration group: every axis
// that changes the suite's construction or training. Benchmarks,
// compression factors and model kinds share a group's suite.
type suiteKey struct {
	topo   string
	seed   int64
	epoch  int64
	punch  int
	lambda string
}

// group is one shared suite plus the mutex that makes ML training
// happen once per (group, kind) even when several workers need it.
type group struct {
	suite   *core.Suite
	trainMu sync.Mutex
}

// traceKey identifies one immutable generated base trace.
type traceKey struct {
	topo  string
	seed  int64
	bench string
}

// runner holds the shared caches of one RunJob invocation.
type runner struct {
	spec Spec // defaults applied

	mu     sync.Mutex
	groups map[suiteKey]*group
	traces map[traceKey]*traffic.Trace
}

func newRunner(spec *Spec) *runner {
	return &runner{
		spec:   spec.withDefaults(),
		groups: make(map[suiteKey]*group),
		traces: make(map[traceKey]*traffic.Trace),
	}
}

// execute runs one matrix cell and folds the result into its row.
func (r *runner) execute(run *Run, o *obs.Observer) (Row, error) {
	g, err := r.groupFor(run)
	if err != nil {
		return Row{}, err
	}
	if run.Kind.IsML() {
		g.trainMu.Lock()
		_, err := g.suite.Train(run.Kind) // returns the cached report after the first call
		g.trainMu.Unlock()
		if err != nil {
			return Row{}, err
		}
	}
	if err := r.shareTrace(g.suite, run); err != nil {
		return Row{}, err
	}
	res, err := g.suite.RunBenchmarkObs(run.Kind, run.Bench, run.Compress, o)
	if err != nil {
		return Row{}, err
	}
	var snap *obs.Snapshot
	if o != nil && o.Metrics != nil {
		s := o.Metrics.Snapshot()
		snap = &s
	}
	return makeRow(run, res, snap), nil
}

// groupFor returns (creating on first use) the run's configuration
// group.
func (r *runner) groupFor(run *Run) (*group, error) {
	key := suiteKey{topo: run.Topo, seed: run.Seed, epoch: run.EpochTicks, punch: run.PunchHops, lambda: run.Lambda}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.groups[key]; ok {
		return g, nil
	}
	topo, err := cli.ParseTopo(run.Topo)
	if err != nil {
		return nil, err
	}
	grid, err := run.LambdaGrid()
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Horizon:        r.spec.Horizon,
		EpochTicks:     run.EpochTicks,
		Seed:           run.Seed,
		Shards:         r.spec.Shards,
		ShardMinActive: r.spec.ShardMinActive,
		Lambdas:        grid,
	}
	// PunchSweep convention: 0 disables path punching, everything else
	// (including the explicit whole-path -1) forwards as a hop count.
	if run.PunchHops == 0 {
		opts.NoPathPunch = true
	} else {
		opts.PunchHops = run.PunchHops
	}
	g := &group{suite: core.NewSuite(topo, opts)}
	r.groups[key] = g
	return g, nil
}

// shareTrace makes the run's base trace visible to its suite, generating
// it at most once per job even when many suites (different epochs,
// lambdas, punch settings) replay the same (topo, seed, bench) workload.
func (r *runner) shareTrace(s *core.Suite, run *Run) error {
	key := traceKey{topo: run.Topo, seed: run.Seed, bench: run.Bench}
	r.mu.Lock()
	tr, ok := r.traces[key]
	r.mu.Unlock()
	if ok {
		s.PutTrace(run.Bench, tr)
		return nil
	}
	tr, err := s.Trace(run.Bench)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if prev, ok := r.traces[key]; ok {
		tr = prev
	} else {
		r.traces[key] = tr
	}
	r.mu.Unlock()
	return nil
}
