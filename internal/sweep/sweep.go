// Package sweep turns a declarative parameter-sweep specification into a
// deterministic run matrix and executes it as one crash-safe job.
//
// A Spec crosses axis slices (topology x benchmark x model x seed x
// epoch x compression x punch horizon x ridge lambda) into an ordered
// list of Runs whose IDs and order depend only on the spec, never on
// execution. The Runner executes the matrix on a bounded worker pool of
// engine suites that share immutable generated traces, and streams one
// JSONL Row per completed run through an in-order fsync'd writer: the
// results file is always a byte prefix of the file an uninterrupted job
// would write, which is what makes resume-after-crash trivially correct
// (reload the prefix, truncate a torn tail, continue from the next run).
// See DESIGN.md §5i.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/traffic"
)

// Spec is the declarative sweep description. Every axis slice is crossed
// with every other; empty slices select the defaults noted per field.
// The scalar fields below the axes are job-wide knobs shared by all
// runs.
type Spec struct {
	// Topos lists topologies in cli.ParseTopo syntax (mesh<W>x<H>,
	// cmesh4x4). Default: mesh8x8.
	Topos []string `json:"topos,omitempty"`
	// Models lists power-management models in cli.ParseKind syntax.
	// Default: all five (baseline, pg, lead, dozznoc, turbo).
	Models []string `json:"models,omitempty"`
	// Benches lists benchmark profiles. Default: the test-split
	// benchmarks (the paper's evaluation set).
	Benches []string `json:"benches,omitempty"`
	// Seeds lists trace-generator seeds. Default: 1.
	Seeds []int64 `json:"seeds,omitempty"`
	// EpochTicks lists DVFS epoch lengths in base ticks. Default: 500.
	EpochTicks []int64 `json:"epoch_ticks,omitempty"`
	// Compress lists trace time-compression factors. Default: 1.
	Compress []int64 `json:"compress,omitempty"`
	// PunchHops lists injection-time wake-punch horizons using the
	// PunchSweep convention: -1 punches the whole XY path (the paper
	// default), 0 disables path punching, N>0 punches N hops ahead.
	// Default: -1.
	PunchHops []int `json:"punch_hops,omitempty"`
	// Lambdas lists ridge-regularization strengths; each value pins the
	// ML models' training to that single lambda, making it a swept
	// policy knob. Empty keeps the offline pipeline's validation-tuned
	// lambda (one arm, rendered "tuned"). Models without a trained
	// predictor ignore this axis and run once per remaining cross
	// product (rendered "na").
	Lambdas []float64 `json:"lambdas,omitempty"`

	// Horizon is the trace generation window in base ticks (default
	// 120000).
	Horizon int64 `json:"horizon,omitempty"`
	// Shards is the per-simulation tick-engine shard count. The sweep
	// default is 1 (serial sweep): job-level parallelism comes from the
	// worker pool, and results are bit-identical either way.
	Shards int `json:"shards,omitempty"`
	// ShardMinActive pins the sharded engine's serial-fallback
	// threshold (0 calibrates at engine construction; scheduling-only).
	ShardMinActive int `json:"shard_min_active,omitempty"`
	// Workers bounds the worker pool (0 = GOMAXPROCS). The CLI -workers
	// flag overrides it.
	Workers int `json:"workers,omitempty"`
}

// Run is one cell of the expanded matrix. Index is the cell's position
// in canonical order; ID is a stable human-readable key derived from the
// swept coordinates only.
type Run struct {
	Index      int
	ID         string
	Topo       string
	Bench      string
	Model      string // canonical short name: baseline, pg, lead, dozznoc, turbo
	Kind       core.ModelKind
	Seed       int64
	EpochTicks int64
	Compress   int64
	PunchHops  int    // PunchSweep convention (see Spec.PunchHops)
	Lambda     string // decimal lambda, "tuned", or "na" for non-ML models
}

// LambdaGrid returns the training lambda grid the run pins ("tuned" and
// "na" return nil, keeping the default tuning grid).
func (r *Run) LambdaGrid() ([]float64, error) {
	if r.Lambda == "tuned" || r.Lambda == "na" {
		return nil, nil
	}
	v, err := strconv.ParseFloat(r.Lambda, 64)
	if err != nil {
		return nil, fmt.Errorf("sweep: run %s: bad lambda: %w", r.ID, err)
	}
	return []float64{v}, nil
}

// canonicalModel maps a ModelKind to the short name used in run IDs.
func canonicalModel(k core.ModelKind) string {
	switch k {
	case core.KindBaseline:
		return "baseline"
	case core.KindPG:
		return "pg"
	case core.KindLEAD:
		return "lead"
	case core.KindDozzNoC:
		return "dozznoc"
	case core.KindTurbo:
		return "turbo"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// formatLambda renders a lambda axis value for IDs and rows.
func formatLambda(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Load reads a Spec from a JSON file, rejecting unknown fields so a
// typo'd axis name fails loudly instead of silently sweeping nothing.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parse %s: %w", path, err)
	}
	return &s, nil
}

// withDefaults returns a copy of the spec with every empty axis and
// scalar filled in.
func (s *Spec) withDefaults() Spec {
	d := *s
	if len(d.Topos) == 0 {
		d.Topos = []string{"mesh8x8"}
	}
	if len(d.Models) == 0 {
		d.Models = []string{"baseline", "pg", "lead", "dozznoc", "turbo"}
	}
	if len(d.Benches) == 0 {
		for _, p := range traffic.ProfilesBySplit(traffic.Test) {
			d.Benches = append(d.Benches, p.Name)
		}
	}
	if len(d.Seeds) == 0 {
		d.Seeds = []int64{1}
	}
	if len(d.EpochTicks) == 0 {
		d.EpochTicks = []int64{500}
	}
	if len(d.Compress) == 0 {
		d.Compress = []int64{1}
	}
	if len(d.PunchHops) == 0 {
		d.PunchHops = []int{-1}
	}
	if d.Horizon == 0 {
		d.Horizon = 120_000
	}
	if d.Shards == 0 {
		d.Shards = 1
	}
	return d
}

// Expand validates the spec and produces the canonical ordered run
// matrix. The nesting order — topo, bench, model, seed, epoch,
// compression, punch, lambda (innermost) — is part of the on-disk
// contract: results files list rows in exactly this order, so a resumed
// job can treat an existing file as a prefix of its own output.
func (s *Spec) Expand() ([]Run, error) {
	d := s.withDefaults()
	for _, topo := range d.Topos {
		if _, err := cli.ParseTopo(topo); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	kinds := make([]core.ModelKind, len(d.Models))
	for i, m := range d.Models {
		k, err := cli.ParseKind(m)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		kinds[i] = k
	}
	for _, b := range d.Benches {
		if _, ok := traffic.ProfileByName(b); !ok {
			return nil, fmt.Errorf("sweep: unknown benchmark %q", b)
		}
	}
	for _, c := range d.Compress {
		if c < 1 {
			return nil, fmt.Errorf("sweep: compression factor %d < 1", c)
		}
	}
	for _, h := range d.PunchHops {
		if h < -1 {
			return nil, fmt.Errorf("sweep: punch hops %d < -1", h)
		}
	}
	for _, l := range d.Lambdas {
		if l < 0 {
			return nil, fmt.Errorf("sweep: lambda %g < 0", l)
		}
	}

	var runs []Run
	seen := make(map[string]bool)
	for _, topo := range d.Topos {
		for _, bench := range d.Benches {
			for _, kind := range kinds {
				for _, seed := range d.Seeds {
					for _, ep := range d.EpochTicks {
						for _, c := range d.Compress {
							for _, h := range d.PunchHops {
								for _, l := range lambdaAxis(kind, d.Lambdas) {
									r := Run{
										Index:      len(runs),
										Topo:       topo,
										Bench:      bench,
										Model:      canonicalModel(kind),
										Kind:       kind,
										Seed:       seed,
										EpochTicks: ep,
										Compress:   c,
										PunchHops:  h,
										Lambda:     l,
									}
									r.ID = runID(&r)
									if seen[r.ID] {
										return nil, fmt.Errorf("sweep: duplicate run %s (repeated axis value?)", r.ID)
									}
									seen[r.ID] = true
									runs = append(runs, r)
								}
							}
						}
					}
				}
			}
		}
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("sweep: empty matrix")
	}
	return runs, nil
}

// lambdaAxis resolves the lambda axis for one model kind: non-ML models
// collapse it to a single "na" cell, ML models sweep the pinned values
// or keep the tuned default.
func lambdaAxis(k core.ModelKind, lambdas []float64) []string {
	if !k.IsML() {
		return []string{"na"}
	}
	if len(lambdas) == 0 {
		return []string{"tuned"}
	}
	out := make([]string, len(lambdas))
	for i, l := range lambdas {
		out[i] = formatLambda(l)
	}
	return out
}

// runID renders the stable run key, e.g.
// mesh8x8/fft/dozznoc/seed1/ep500/c1/ph-1/l0.01.
func runID(r *Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s/seed%d/ep%d/c%d/ph%d/l%s",
		r.Topo, r.Bench, r.Model, r.Seed, r.EpochTicks, r.Compress, r.PunchHops, r.Lambda)
	return b.String()
}
