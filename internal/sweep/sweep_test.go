package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSpec is a small but multi-axis matrix: 2 models x 2 benches x
// 2 seeds = 8 runs, non-ML models only so no training happens, tiny
// horizon so the whole job is fast.
func testSpec() *Spec {
	return &Spec{
		Topos:   []string{"mesh4x4"},
		Models:  []string{"baseline", "pg"},
		Benches: []string{"fft", "lu"},
		Seeds:   []int64{1, 2},
		Horizon: 3_000,
		Workers: 3,
	}
}

func TestSweepExpand(t *testing.T) {
	spec := &Spec{
		Topos:   []string{"mesh4x4"},
		Models:  []string{"baseline", "dozznoc"},
		Benches: []string{"fft"},
		Lambdas: []float64{0.01, 1},
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// The lambda axis collapses to one "na" cell for the non-ML model
	// and sweeps both pinned values for the ML model: 1 + 2 runs.
	if len(runs) != 3 {
		t.Fatalf("expanded %d runs, want 3", len(runs))
	}
	wantIDs := []string{
		"mesh4x4/fft/baseline/seed1/ep500/c1/ph-1/lna",
		"mesh4x4/fft/dozznoc/seed1/ep500/c1/ph-1/l0.01",
		"mesh4x4/fft/dozznoc/seed1/ep500/c1/ph-1/l1",
	}
	for i, want := range wantIDs {
		if runs[i].ID != want || runs[i].Index != i {
			t.Errorf("run %d = %s (index %d), want %s", i, runs[i].ID, runs[i].Index, want)
		}
	}
	// Expansion is deterministic.
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if runs[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, runs[i], again[i])
		}
	}
	// Defaults: an all-empty spec is the full five-model evaluation.
	all, err := (&Spec{}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5*5 { // 5 test-split benches x 5 models
		t.Errorf("default matrix has %d runs, want 25", len(all))
	}

	for _, bad := range []*Spec{
		{Benches: []string{"nosuch"}},
		{Models: []string{"mystery"}},
		{Topos: []string{"torus3x3"}},
		{Compress: []int64{0}},
		{Seeds: []int64{1, 1}}, // duplicate axis value -> duplicate run ID
	} {
		if _, err := bad.Expand(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

func TestSweepReadResultsTornLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	line1 := `{"id":"a","topo":"mesh4x4","ticks":10}` + "\n"
	line2 := `{"id":"b","topo":"mesh4x4","ticks":20}` + "\n"
	torn := `{"id":"c","to`
	if err := os.WriteFile(path, []byte(line1+line2+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, off, isTorn, err := ReadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].ID != "a" || rows[1].ID != "b" {
		t.Fatalf("rows = %+v", rows)
	}
	if want := int64(len(line1) + len(line2)); off != want {
		t.Errorf("validOff = %d, want %d", off, want)
	}
	if !isTorn {
		t.Error("torn tail not detected")
	}

	// A terminated but malformed line is also the torn point.
	if err := os.WriteFile(path, []byte(line1+"garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, off, isTorn, err = ReadResults(path)
	if err != nil || len(rows) != 1 || off != int64(len(line1)) || !isTorn {
		t.Fatalf("garbage line: rows=%d off=%d torn=%v err=%v", len(rows), off, isTorn, err)
	}

	// Missing file: zero rows, no error.
	rows, off, isTorn, err = ReadResults(filepath.Join(dir, "missing"))
	if err != nil || rows != nil || off != 0 || isTorn {
		t.Fatalf("missing file: rows=%v off=%d torn=%v err=%v", rows, off, isTorn, err)
	}
}

// TestSweepRunsAndResumes is the crash-safety acceptance test: a job
// killed mid-matrix — including mid-JSONL-line — must resume to a
// results file byte-identical to an uninterrupted job's, with no lost
// and no duplicated rows.
func TestSweepRunsAndResumes(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()

	// Reference: one uninterrupted job.
	refPath := filepath.Join(dir, "ref.jsonl")
	rep, err := RunJob(spec, refPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Done() || rep.Written != 8 || rep.Resumed != 0 || rep.Stopped {
		t.Fatalf("reference report = %+v", rep)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(ref, []byte("\n")); n != 8 {
		t.Fatalf("reference file has %d rows, want 8", n)
	}

	// Interrupted: stop after 3 rows, then simulate the crash tearing
	// the last line in half.
	path := filepath.Join(dir, "r.jsonl")
	rep, err = RunJob(spec, path, Options{MaxNewRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done() || !rep.Stopped || rep.Written != 3 {
		t.Fatalf("interrupted report = %+v", rep)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: the torn row is discarded and re-run, everything already
	// intact is skipped, and the final bytes match the reference.
	rep, err = RunJob(spec, path, Options{MaxNewRuns: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Done() || !rep.Truncated || rep.Resumed != 2 || rep.Written != 6 || rep.Stopped {
		t.Fatalf("resume report = %+v", rep)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("resumed results differ from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(ref))
	}

	// Running a complete job again is a no-op.
	rep, err = RunJob(spec, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Done() || rep.Written != 0 || rep.Resumed != 8 {
		t.Fatalf("no-op report = %+v", rep)
	}

	// A results file from a different spec is rejected, not clobbered.
	other := testSpec()
	other.Seeds = []int64{7, 8}
	if _, err := RunJob(other, path, Options{}); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("mismatched spec accepted: %v", err)
	}
}

func TestSweepRowsAreDeterministic(t *testing.T) {
	// Two independent jobs over the same spec must produce identical
	// bytes even though worker scheduling differs — the row schema may
	// only contain run-configuration-determined fields.
	spec := testSpec()
	spec.Benches = []string{"fft"}
	spec.Seeds = []int64{1}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if _, err := RunJob(spec, a, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunJob(spec, b, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatalf("worker count changed row bytes:\n%s\nvs\n%s", da, db)
	}
	rows, _, _, err := ReadResults(a)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows = %d, err %v", len(rows), err)
	}
	for _, r := range rows {
		if r.Ticks == 0 || r.PacketsDelivered == 0 {
			t.Errorf("row %s looks empty: %+v", r.ID, r)
		}
		if r.Obs == nil || r.Obs.Epochs == 0 {
			t.Errorf("row %s is missing its epoch-fold capture", r.ID)
		}
		if r.Obs != nil {
			// The full Deterministic() contract: every scheduling- or
			// wall-clock-dependent field must be zeroed in the embedded
			// capture, nothing else.
			o := r.Obs
			if o.TicksPerSec != 0 || o.Run != 0 {
				t.Errorf("row %s leaked nondeterministic obs fields: %+v", r.ID, o)
			}
			if o.ShardSweeps != nil || o.ShardLoad != nil {
				t.Errorf("row %s leaked per-shard slices: %+v", r.ID, o)
			}
			if o.ShardImbalance != 0 || o.ShardResplits != 0 ||
				o.ParallelTicks != 0 || o.ParallelLandings != 0 || o.ActiveRouters != 0 {
				t.Errorf("row %s leaked scheduling diagnostics: %+v", r.ID, o)
			}
			// Prediction-quality fields are deterministic and must survive
			// the Deterministic() filter (nonzero for observed ML-free runs
			// too: every selector reports epoch decisions).
			if o.EpochDecisions == 0 {
				t.Errorf("row %s lost deterministic epoch decisions: %+v", r.ID, o)
			}
			if o.AbsErrHist.Count == 0 {
				t.Errorf("row %s lost its prediction-error histogram: %+v", r.ID, o)
			}
		}
	}
}

func TestSweepCompare(t *testing.T) {
	mk := func(model string, seed int64, edp float64) Row {
		return Row{
			ID: "x", Topo: "mesh4x4", Bench: "fft", Model: model, Seed: seed,
			EpochTicks: 500, Compress: 1, PunchHops: -1, Lambda: "na", EDP: edp,
		}
	}
	var rows []Row
	// Clear separation across 4 seeds: pg always below baseline.
	for i, v := range []float64{100, 101, 102, 103} {
		rows = append(rows, mk("baseline", int64(i+1), v))
	}
	for i, v := range []float64{80, 81, 82, 83} {
		rows = append(rows, mk("pg", int64(i+1), v))
	}
	// Interleaved samples: no significant difference.
	for i, v := range []float64{100, 90, 104, 95} {
		r := mk("lead", int64(i+1), v)
		r.Lambda = "tuned"
		rows = append(rows, r)
	}

	out, err := Compare(rows, "edp", "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("compare rows = %+v", out)
	}
	if out[0].Model != "baseline" || out[0].Delta != "" || out[0].N != 4 {
		t.Errorf("baseline row = %+v", out[0])
	}
	byModel := map[string]CompareRow{}
	for _, r := range out {
		byModel[r.Model] = r
	}
	// n=4 vs n=4 complete separation: exact two-sided p = 2/70.
	pg := byModel["pg"]
	if !strings.HasPrefix(pg.Delta, "-19.") || pg.P > 0.03 {
		t.Errorf("pg arm = %+v, want significant ~-19.5%% delta", pg)
	}
	// The ML arm keeps its lambda in the context label and still finds
	// the "na" baseline arm.
	lead := byModel["lead"]
	if lead.Delta != "~" {
		t.Errorf("lead arm = %+v, want insignificant ~", lead)
	}
	if !strings.Contains(lead.Context, "ltuned") {
		t.Errorf("lead context = %q, want lambda in label", lead.Context)
	}

	if _, err := Compare(rows, "volume", "baseline"); err == nil {
		t.Error("unknown metric accepted")
	}

	// Rendering smoke: the "~" must survive into the table.
	var buf bytes.Buffer
	WriteCompare(&buf, out, "edp", "baseline")
	if !strings.Contains(buf.String(), "~") || !strings.Contains(buf.String(), "(base)") {
		t.Errorf("table output:\n%s", buf.String())
	}
}
