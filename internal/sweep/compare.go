// Per-arm comparison of sweep results with benchstat-style significance:
// arms are models, replicates are seeds, and a delta is only printed
// when a Mann-Whitney U test rejects "same distribution" at stats.Alpha.

package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Metrics lists the row fields Compare can aggregate.
var Metrics = []string{"edp", "energy", "static", "dynamic", "latency", "throughput", "offfrac"}

// metricOf extracts one comparable scalar from a row.
func metricOf(row *Row, metric string) (float64, error) {
	switch metric {
	case "edp":
		return row.EDP, nil
	case "energy":
		return row.StaticJ + row.DynamicJ, nil
	case "static":
		return row.StaticJ, nil
	case "dynamic":
		return row.DynamicJ, nil
	case "latency":
		return row.AvgLatencyTicks, nil
	case "throughput":
		return row.Throughput, nil
	case "offfrac":
		return row.OffFraction, nil
	}
	return 0, fmt.Errorf("sweep: unknown metric %q (have %s)", metric, strings.Join(Metrics, ", "))
}

// armKey is everything that must match for two rows to be replicates of
// the same experimental arm except the seed (the replicate axis) and the
// model (the compared axis).
type armKey struct {
	topo   string
	bench  string
	epoch  int64
	comp   int64
	punch  int
	lambda string
}

func (k armKey) label() string {
	parts := []string{k.topo, k.bench}
	parts = append(parts, fmt.Sprintf("ep%d", k.epoch), fmt.Sprintf("c%d", k.comp), fmt.Sprintf("ph%d", k.punch))
	if k.lambda != "na" {
		parts = append(parts, "l"+k.lambda)
	}
	return strings.Join(parts, "/")
}

// CompareRow is one (context, model) arm's aggregate, with the
// significance-tested delta against the baseline arm of the same
// context.
type CompareRow struct {
	Context string
	Model   string
	N       int
	Mean    float64
	Margin  float64 // 95% CI half-width
	// Delta is the significance-gated change versus the baseline arm
	// ("" for the baseline row itself, "~" when insignificant).
	Delta string
	P     float64 // Mann-Whitney two-sided p (1 for the baseline row)
}

// Compare aggregates rows into per-context model arms and tests each arm
// against the baseline model's arm. Rows must come from a sweep that
// includes the baseline model; contexts missing it are skipped with a
// diagnostic row count of zero. More seeds mean more power: with a
// single seed every delta is "~" by construction.
func Compare(rows []Row, metric, baseline string) ([]CompareRow, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("sweep: no result rows to compare")
	}
	type arm struct {
		key   armKey
		model string
	}
	samples := make(map[arm][]float64)
	var arms []arm
	// Lambda is part of the context for ML models, but the baseline
	// model's rows carry lambda "na"; compare each ML lambda arm against
	// the context's single "na" baseline arm by erasing lambda from the
	// baseline lookup.
	for i := range rows {
		v, err := metricOf(&rows[i], metric)
		if err != nil {
			return nil, err
		}
		a := arm{
			key: armKey{
				topo:   rows[i].Topo,
				bench:  rows[i].Bench,
				epoch:  rows[i].EpochTicks,
				comp:   rows[i].Compress,
				punch:  rows[i].PunchHops,
				lambda: rows[i].Lambda,
			},
			model: rows[i].Model,
		}
		if _, ok := samples[a]; !ok {
			arms = append(arms, a)
		}
		samples[a] = append(samples[a], v)
	}
	baseArm := func(k armKey) ([]float64, bool) {
		k.lambda = "na"
		if s, ok := samples[arm{key: k, model: baseline}]; ok {
			return s, true
		}
		// A baseline that is itself ML (e.g. comparing dozznoc arms
		// against lead) keeps its own lambda context.
		return nil, false
	}

	var out []CompareRow
	for _, a := range arms {
		xs := samples[a]
		mean, margin := stats.MeanCI95(xs)
		row := CompareRow{Context: a.key.label(), Model: a.model, N: len(xs), Mean: mean, Margin: margin, P: 1}
		if a.model != baseline {
			base, ok := baseArm(a.key)
			if !ok {
				base, ok = samples[arm{key: a.key, model: baseline}]
			}
			if ok {
				d := stats.CompareSamples(base, xs)
				row.Delta = d.PctString()
				row.P = d.U.P
			} else {
				row.Delta = "?" // no baseline arm in this context
			}
		}
		out = append(out, row)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Context != out[j].Context {
			return out[i].Context < out[j].Context
		}
		// Baseline first within a context, then spec order (stable).
		return out[i].Model == baseline && out[j].Model != baseline
	})
	return out, nil
}

// WriteCompare renders a comparison as an aligned text table.
func WriteCompare(w io.Writer, rows []CompareRow, metric, baseline string) {
	fmt.Fprintf(w, "metric %s, baseline %s (delta is ~ when a Mann-Whitney U test cannot\n", metric, baseline)
	fmt.Fprintf(w, "reject identical distributions at alpha=%g; replicates are seeds)\n", stats.Alpha)
	fmt.Fprintf(w, "%-36s %-10s %3s %14s %12s %9s %8s\n", "context", "model", "n", "mean", "ci95", "delta", "p")
	for _, r := range rows {
		delta := r.Delta
		if delta == "" {
			delta = "(base)"
		}
		fmt.Fprintf(w, "%-36s %-10s %3d %14.6g %12.4g %9s %8.4f\n",
			r.Context, r.Model, r.N, r.Mean, r.Margin, delta, r.P)
	}
}
