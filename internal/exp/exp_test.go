package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/topology"
)

func tinySuite() *core.Suite {
	return core.NewSuite(topology.NewMesh(4, 4), core.Options{Horizon: 6000, Seed: 3})
}

func TestTestBenchNames(t *testing.T) {
	names := TestBenchNames()
	if len(names) != 5 {
		t.Fatalf("%d test benches, want 5", len(names))
	}
	want := map[string]bool{"vips": true, "x264": true, "barnes": true, "fft": true, "lu": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected test bench %q", n)
		}
	}
}

func TestTableIRender(t *testing.T) {
	var buf bytes.Buffer
	TableI().Write(&buf)
	out := buf.String()
	for _, want := range []string{"0.9", "1.1", "1.2", "dropout"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIRender(t *testing.T) {
	r := TableII()
	if r.NS[0][5] != 8.8 {
		t.Errorf("PG->1.2V = %g", r.NS[0][5])
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "8.8") {
		t.Error("render missing worst-case entry")
	}
}

func TestTableIIIRender(t *testing.T) {
	r := TableIII()
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "T-Breakeven") {
		t.Error("header missing")
	}
}

func TestTableVRender(t *testing.T) {
	r := TableV()
	if len(r.Rows) != 5 || r.Rows[4].DynamicPJHop != 56.5 {
		t.Fatalf("rows = %+v", r.Rows)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "56.5") {
		t.Error("render missing M7 dynamic energy")
	}
}

func TestOverheadRender(t *testing.T) {
	o := OverheadTable()
	if math.Abs(o.Reduced.EnergyPJ-7.1) > 1e-9 || math.Abs(o.Original.EnergyPJ-61.1) > 1e-9 {
		t.Fatalf("overhead = %+v", o)
	}
	var buf bytes.Buffer
	o.Write(&buf)
	if !strings.Contains(buf.String(), "7.1pJ") {
		t.Error("render missing reduced energy")
	}
}

func TestFig5(t *testing.T) {
	r := Fig5(10, 0.5, 40)
	if len(r.Wakeup) == 0 || len(r.Switch) == 0 {
		t.Fatal("empty waveforms")
	}
	if math.Abs(r.WakeupNS-8.5) > 0.1 {
		t.Errorf("wakeup settle = %g ns, want 8.5", r.WakeupNS)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "T-Wakeup") {
		t.Error("render incomplete")
	}
}

func TestFig6(t *testing.T) {
	r := Fig6()
	if r.Stats.MinEfficiency < 0.87 {
		t.Errorf("min efficiency %g", r.Stats.MinEfficiency)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "baseline") {
		t.Error("render incomplete")
	}
}

// injectTrivialModels installs IBU-passthrough predictors so the
// simulation figures run without the (slow) training pipeline.
func injectTrivialModels(s *core.Suite) {
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
}

func TestFig7Small(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	s := tinySuite()
	injectTrivialModels(s)
	r, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range core.MLKinds {
		dists := r.Models[kind]
		if len(dists) != 5 {
			t.Fatalf("%v: %d benches", kind, len(dists))
		}
		for _, d := range dists {
			sum := 0.0
			for _, v := range d.Share {
				sum += v
			}
			if sum < 0.99 || sum > 1.01 {
				t.Fatalf("%v/%s: shares sum to %g", kind, d.Bench, sum)
			}
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "DozzNoC") {
		t.Error("render incomplete")
	}
}

func TestFig8Small(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	s := tinySuite()
	injectTrivialModels(s)
	r, err := Fig8(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Compressed) != 25 || len(r.Uncompr) != 25 {
		t.Fatalf("rows = %d/%d, want 25/25", len(r.Compressed), len(r.Uncompr))
	}
	for _, row := range r.Uncompr {
		if row.Kind == core.KindBaseline && (row.StaticNorm != 1 || row.DynamicNorm != 1) {
			t.Fatalf("baseline norm = %+v", row)
		}
		if row.Kind == core.KindPG && row.StaticNorm >= 1 {
			t.Errorf("%s: PG static norm %g >= 1", row.Bench, row.StaticNorm)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "Fig 8(c)") {
		t.Error("render incomplete")
	}
}

func TestFig9Small(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	s := tinySuite()
	r, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	// 4 single features + all-5, each over 5 benches.
	if len(r.Rows) != 25 {
		t.Fatalf("%d rows, want 25", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Acc < 0 || row.Acc > 1 {
			t.Fatalf("accuracy %g out of range", row.Acc)
		}
	}
	// IBU must be the strongest single feature (the paper's key finding).
	if r.Average["ibu"] < r.Average["reqs_sent"] && r.Average["ibu"] < r.Average["off_time"] {
		t.Errorf("ibu average %.3f not dominant: %+v", r.Average["ibu"], r.Average)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "all-5") {
		t.Error("render incomplete")
	}
}

func TestHeadlineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	s := tinySuite()
	injectTrivialModels(s)
	r, err := Headline(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mesh) != 5 {
		t.Fatalf("%d headline rows", len(r.Mesh))
	}
	byKind := map[core.ModelKind]HeadlineRow{}
	for _, row := range r.Mesh {
		byKind[row.Kind] = row
	}
	if byKind[core.KindBaseline].StaticSavings != 0 {
		t.Error("baseline saves nothing by definition")
	}
	if byKind[core.KindPG].StaticSavings <= 0 {
		t.Error("PG must save static energy")
	}
	if byKind[core.KindDozzNoC].StaticSavings <= byKind[core.KindLEAD].StaticSavings {
		t.Error("DozzNoC must save more static than LEAD")
	}
	if byKind[core.KindLEAD].DynamicSavings <= 0 {
		t.Error("LEAD must save dynamic energy")
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "static-sav") {
		t.Error("render incomplete")
	}
}

func TestEpochSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("epoch sweep in -short mode")
	}
	factory := func(ep int64) *core.Suite {
		s := core.NewSuite(topology.NewMesh(4, 4), core.Options{Horizon: 6000, Seed: 3, EpochTicks: ep})
		injectTrivialModels(s)
		return s
	}
	r, err := RunEpochSweep(factory, "fft", 2, []int64{250, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.StaticSavings <= 0 {
			t.Errorf("epoch %d: no static savings", row.EpochTicks)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "Epoch-size sweep") {
		t.Error("render incomplete")
	}
}

func TestTableVDerived(t *testing.T) {
	r := TableVDerived()
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.Abs(row.DerivedDyn-row.TableDynamic)/row.TableDynamic > 0.005 {
			t.Errorf("%.1fV: derived dynamic %.2f vs table %.1f", row.Volts, row.DerivedDyn, row.TableDynamic)
		}
		if math.Abs(row.DerivedStat-row.TableStatic)/row.TableStatic > 0.015 {
			t.Errorf("%.1fV: derived static %.4f vs table %.3f", row.Volts, row.DerivedStat, row.TableStatic)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "mini-DSENT") {
		t.Error("render incomplete")
	}
}

func TestCSVExports(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation CSVs in -short mode")
	}
	s := tinySuite()
	injectTrivialModels(s)
	h, err := Headline(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 models
		t.Fatalf("headline CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "topology,model,") {
		t.Errorf("header = %q", lines[0])
	}

	f7, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f7.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n != 16 { // header + 3 models x 5 benches
		t.Fatalf("fig7 CSV has %d lines", n)
	}
}
