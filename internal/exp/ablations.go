package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Ablation studies for the design choices DESIGN.md calls out. They use
// the reactive selector (no trained model needed), since the knobs under
// study — T-Idle, the wake-punch horizon — act on the power-gating loop,
// not the predictor.

// TIdleRow is the outcome of one T-Idle setting.
type TIdleRow struct {
	TIdle          int
	StaticSavings  float64
	LatencyRatio   float64
	Gatings        int64
	BreakevenFrac  float64
	WakeupFraction float64
}

// TIdleSweepResult sweeps the consecutive-idle-cycle gating threshold.
type TIdleSweepResult struct {
	Bench string
	Rows  []TIdleRow
}

// TIdleSweep reruns the reactive DozzNoC model on one benchmark with
// several T-Idle values (the paper adopts 4 from Catnap and argues small
// values cause congestion/breakeven misses while large ones forgo
// savings).
func TIdleSweep(topo topology.Topology, bench string, horizon int64, tidles []int) (*TIdleSweepResult, error) {
	p, ok := traffic.ProfileByName(bench)
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", bench)
	}
	g := traffic.Generator{Topo: topo, Horizon: horizon, Seed: 1}
	tr := g.Generate(p)

	base, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	if err != nil {
		return nil, err
	}
	out := &TIdleSweepResult{Bench: bench}
	for _, ti := range tidles {
		spec := policy.DozzNoC(policy.ReactiveSelector{})
		spec.TIdle = ti
		res, err := sim.Run(sim.Config{Topo: topo, Spec: spec, Trace: tr})
		if err != nil {
			return nil, err
		}
		row := TIdleRow{
			TIdle:          ti,
			Gatings:        res.Policy.Gatings,
			WakeupFraction: res.WakeupFraction,
		}
		if base.StaticJ > 0 {
			row.StaticSavings = 1 - res.StaticJ/base.StaticJ
		}
		if base.AvgLatencyTicks > 0 {
			row.LatencyRatio = res.AvgLatencyTicks / base.AvgLatencyTicks
		}
		if res.Policy.Wakes > 0 {
			row.BreakevenFrac = float64(res.Policy.BreakevenMet) / float64(res.Policy.Wakes)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Write renders the sweep.
func (r *TIdleSweepResult) Write(w io.Writer) {
	fmt.Fprintf(w, "T-Idle sweep, reactive DozzNoC on %s\n", r.Bench)
	fmt.Fprintf(w, "%-8s %12s %10s %10s %12s %10s\n",
		"T-Idle", "static-sav", "lat-ratio", "gatings", "breakeven", "wake-frac")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %11.1f%% %10.3f %10d %11.1f%% %10.3f\n",
			row.TIdle, 100*row.StaticSavings, row.LatencyRatio, row.Gatings,
			100*row.BreakevenFrac, row.WakeupFraction)
	}
}

// PunchRow is one wake-punch-horizon setting.
type PunchRow struct {
	PunchHops     int // -1 = whole path, 0 = none beyond head-accept wakes
	StaticSavings float64
	LatencyRatio  float64
	TputRatio     float64
}

// PunchSweepResult sweeps the injection-time wake-punch horizon.
type PunchSweepResult struct {
	Bench string
	Rows  []PunchRow
}

// PunchSweep measures how far ahead wake punches must travel: none (heads
// wake the next hop only), k hops, or the whole XY path (Power Punch
// style). Less punching saves slightly more static power but serializes
// wakeups into packet latency.
func PunchSweep(topo topology.Topology, bench string, horizon int64, hops []int) (*PunchSweepResult, error) {
	p, ok := traffic.ProfileByName(bench)
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", bench)
	}
	g := traffic.Generator{Topo: topo, Horizon: horizon, Seed: 1}
	tr := g.Generate(p)
	base, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
	if err != nil {
		return nil, err
	}
	out := &PunchSweepResult{Bench: bench}
	for _, h := range hops {
		cfg := sim.Config{Topo: topo, Spec: policy.PowerGated(), Trace: tr}
		if h == 0 {
			cfg.NoPathPunch = true
		} else {
			cfg.PunchHops = h
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		row := PunchRow{PunchHops: h}
		if base.StaticJ > 0 {
			row.StaticSavings = 1 - res.StaticJ/base.StaticJ
		}
		if base.AvgLatencyTicks > 0 {
			row.LatencyRatio = res.AvgLatencyTicks / base.AvgLatencyTicks
		}
		if base.Throughput > 0 {
			row.TputRatio = res.Throughput / base.Throughput
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Write renders the sweep.
func (r *PunchSweepResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Wake-punch horizon sweep, PG on %s (-1 = whole path, 0 = next-hop only)\n", r.Bench)
	fmt.Fprintf(w, "%-8s %12s %10s %10s\n", "hops", "static-sav", "lat-ratio", "tput-ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %11.1f%% %10.3f %10.3f\n",
			row.PunchHops, 100*row.StaticSavings, row.LatencyRatio, row.TputRatio)
	}
}

// FeatureCountRow is one feature-subset model.
type FeatureCountRow struct {
	Label    string
	Features int
	ValMSE   float64
	TestAcc  float64
	EnergyPJ float64
}

// FeatureCountResult is the 5-vs-fewer-features ablation backing the
// paper's claim that the reduced set loses nothing (§IV-B1).
type FeatureCountResult struct{ Rows []FeatureCountRow }

// FeatureCountAblation trains DozzNoC ridge models on growing feature
// subsets and reports validation MSE, test mode-selection accuracy and
// the per-label energy cost of each subset.
func FeatureCountAblation(s *core.Suite) (*FeatureCountResult, error) {
	train, err := s.MergedDataset(core.KindDozzNoC, traffic.Train)
	if err != nil {
		return nil, err
	}
	val, err := s.MergedDataset(core.KindDozzNoC, traffic.Validation)
	if err != nil {
		return nil, err
	}
	subsets := []struct {
		label string
		cols  []int
	}{
		{"ibu-only", []int{0, 4}},
		{"ibu+sent", []int{0, 1, 4}},
		{"ibu+sent+recv", []int{0, 1, 2, 4}},
		{"all-5", []int{0, 1, 2, 3, 4}},
	}
	modeOf := func(v float64) int { return int(policy.ModeForIBU(v)) }
	out := &FeatureCountResult{}
	for _, sub := range subsets {
		rep, err := ml.TuneLambda(train.Columns(sub.cols...), val.Columns(sub.cols...), s.Opts.Lambdas)
		if err != nil {
			return nil, fmt.Errorf("exp: feature ablation %s: %w", sub.label, err)
		}
		acc, n := 0.0, 0
		for _, bench := range TestBenchNames() {
			ds, err := s.Dataset(core.KindDozzNoC, bench)
			if err != nil {
				return nil, err
			}
			c := ds.Columns(sub.cols...)
			acc += ml.ModeAccuracy(rep.Best.PredictAll(c.X), c.Y, modeOf)
			n++
		}
		out.Rows = append(out.Rows, FeatureCountRow{
			Label:    sub.label,
			Features: len(sub.cols),
			ValMSE:   rep.BestVal.ValMSE,
			TestAcc:  acc / float64(n),
			EnergyPJ: ml.LabelOverhead(len(sub.cols)).EnergyPJ,
		})
	}
	return out, nil
}

// Write renders the ablation.
func (r *FeatureCountResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Feature-count ablation (DozzNoC ridge models)")
	fmt.Fprintf(w, "%-16s %10s %12s %10s %10s\n", "subset", "features", "val-MSE", "test-acc", "label-pJ")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %10d %12.3e %10.3f %10.1f\n",
			row.Label, row.Features, row.ValMSE, row.TestAcc, row.EnergyPJ)
	}
}

// GlobalDVFSRow compares per-router vs globally coordinated DVFS on one
// benchmark.
type GlobalDVFSRow struct {
	Bench          string
	LocalStatic    float64 // savings vs baseline
	GlobalStatic   float64
	LocalDynamic   float64
	GlobalDynamic  float64
	LocalLatRatio  float64
	GlobalLatRatio float64
}

// GlobalDVFSResult quantifies DozzNoC's per-router-domain argument.
type GlobalDVFSResult struct{ Rows []GlobalDVFSRow }

// GlobalDVFS runs the DVFS-only model with per-router (local) mode
// selection against a globally coordinated variant where every router
// adopts the network-wide maximum requested mode — quantifying the
// paper's argument that per-router voltage domains (enabled by the
// per-router SIMO/LDO supplies) save energy that global coordination
// wastes on idle regions.
func GlobalDVFS(topo topology.Topology, horizon int64, benches []string) (*GlobalDVFSResult, error) {
	if len(benches) == 0 {
		benches = TestBenchNames()
	}
	out := &GlobalDVFSResult{}
	for _, bench := range benches {
		p, ok := traffic.ProfileByName(bench)
		if !ok {
			return nil, fmt.Errorf("exp: unknown benchmark %q", bench)
		}
		g := traffic.Generator{Topo: topo, Horizon: horizon, Seed: 1}
		tr := g.Generate(p)
		base, err := sim.Run(sim.Config{Topo: topo, Spec: policy.Baseline(), Trace: tr})
		if err != nil {
			return nil, err
		}
		local, err := sim.Run(sim.Config{Topo: topo, Spec: policy.DVFSML(policy.ReactiveSelector{}), Trace: tr})
		if err != nil {
			return nil, err
		}
		gspec := policy.DVFSML(policy.NewGlobalSelector(policy.ReactiveSelector{}))
		gspec.Name = "DVFS-global"
		global, err := sim.Run(sim.Config{Topo: topo, Spec: gspec, Trace: tr})
		if err != nil {
			return nil, err
		}
		row := GlobalDVFSRow{Bench: bench}
		if base.StaticJ > 0 {
			row.LocalStatic = 1 - local.StaticJ/base.StaticJ
			row.GlobalStatic = 1 - global.StaticJ/base.StaticJ
		}
		if base.DynamicJ > 0 {
			row.LocalDynamic = 1 - local.DynamicJ/base.DynamicJ
			row.GlobalDynamic = 1 - global.DynamicJ/base.DynamicJ
		}
		if base.AvgLatencyTicks > 0 {
			row.LocalLatRatio = local.AvgLatencyTicks / base.AvgLatencyTicks
			row.GlobalLatRatio = global.AvgLatencyTicks / base.AvgLatencyTicks
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Write renders the comparison.
func (r *GlobalDVFSResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Per-router vs globally coordinated DVFS (reactive selectors)")
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %10s %10s\n",
		"bench", "stat-loc", "stat-glob", "dyn-loc", "dyn-glob", "lat-loc", "lat-glob")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %10.3f %10.3f\n",
			row.Bench, 100*row.LocalStatic, 100*row.GlobalStatic,
			100*row.LocalDynamic, 100*row.GlobalDynamic,
			row.LocalLatRatio, row.GlobalLatRatio)
	}
}
