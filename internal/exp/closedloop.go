package exp

import (
	"fmt"
	"io"

	"repro/internal/mcsim"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Closed-loop full-system experiment: instead of replaying traces, run
// the mcsim multicore model (cores stall on MSHRs, so network slowdown
// stretches application runtime) under every power-management model.
// The application slowdown is the closed-loop analogue of the paper's
// throughput loss, and with the reactive selectors it reproduces the
// §IV-B2 numbers strikingly well (see EXPERIMENTS.md).

// ClosedLoopRow is one model's end-to-end outcome.
type ClosedLoopRow struct {
	Model          string
	Ticks          int64
	Slowdown       float64 // runtime vs baseline
	StaticSavings  float64
	DynamicSavings float64
	OffFraction    float64
	StalledTicks   int64
}

// ClosedLoopResult holds all five models.
type ClosedLoopResult struct {
	Rows []ClosedLoopRow
}

// ClosedLoop runs the five models over the same multicore workload.
func ClosedLoop(topo topology.Topology, params mcsim.SystemParams) (*ClosedLoopResult, error) {
	specs := []policy.Spec{
		policy.Baseline(),
		policy.PowerGated(),
		policy.DVFSML(policy.ReactiveSelector{}),
		policy.DozzNoC(policy.ReactiveSelector{}),
		policy.MLTurbo(policy.ReactiveSelector{}, topo.NumRouters()),
	}
	out := &ClosedLoopResult{}
	var base *sim.Result
	for _, spec := range specs {
		w, err := mcsim.New(params)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Config{Topo: topo, Spec: spec, Workload: w})
		if err != nil {
			return nil, fmt.Errorf("exp: closed loop %s: %w", spec.Name, err)
		}
		if !res.Drained {
			return nil, fmt.Errorf("exp: closed loop %s did not finish", spec.Name)
		}
		if base == nil {
			base = res
		}
		row := ClosedLoopRow{
			Model:        res.Model,
			Ticks:        res.Ticks,
			Slowdown:     float64(res.Ticks) / float64(base.Ticks),
			OffFraction:  res.OffFraction,
			StalledTicks: w.Stats().StalledTicks,
		}
		if base.StaticJ > 0 {
			row.StaticSavings = 1 - res.StaticJ/base.StaticJ
		}
		if base.DynamicJ > 0 {
			row.DynamicSavings = 1 - res.DynamicJ/base.DynamicJ
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Write renders the table.
func (r *ClosedLoopResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Closed-loop full-system comparison (mcsim multicore workload)")
	fmt.Fprintf(w, "%-10s %10s %10s %12s %12s %10s\n",
		"model", "slowdown", "static-sav", "dyn-sav", "stall-ticks", "off-frac")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %10.3f %9.1f%% %11.1f%% %12d %10.3f\n",
			row.Model, row.Slowdown, 100*row.StaticSavings, 100*row.DynamicSavings,
			row.StalledTicks, row.OffFraction)
	}
}

// ClosedLoopSweepRow aggregates one model across benchmark-derived
// closed-loop workloads.
type ClosedLoopSweepRow struct {
	Model          string
	AvgSlowdown    float64
	AvgStaticSav   float64
	AvgDynamicSav  float64
	AvgOffFraction float64
}

// ClosedLoopSweepResult averages the closed-loop comparison across
// benchmark presets.
type ClosedLoopSweepResult struct {
	Benches []string
	Rows    []ClosedLoopSweepRow
}

// ClosedLoopSweep runs the closed-loop comparison on mcsim configurations
// derived from each named benchmark profile (defaults: the five test
// benchmarks) and averages the outcomes — the closed-loop analogue of the
// §IV-B2 headline protocol.
func ClosedLoopSweep(topo topology.Topology, benches []string, instructions int64) (*ClosedLoopSweepResult, error) {
	if len(benches) == 0 {
		benches = TestBenchNames()
	}
	if instructions <= 0 {
		instructions = 100_000
	}
	acc := map[string]*ClosedLoopSweepRow{}
	var order []string
	for _, bench := range benches {
		params, err := mcsim.ParamsForBenchmark(topo, bench, instructions)
		if err != nil {
			return nil, err
		}
		res, err := ClosedLoop(topo, params)
		if err != nil {
			return nil, fmt.Errorf("exp: closed-loop sweep on %s: %w", bench, err)
		}
		for _, row := range res.Rows {
			a, ok := acc[row.Model]
			if !ok {
				a = &ClosedLoopSweepRow{Model: row.Model}
				acc[row.Model] = a
				order = append(order, row.Model)
			}
			a.AvgSlowdown += row.Slowdown
			a.AvgStaticSav += row.StaticSavings
			a.AvgDynamicSav += row.DynamicSavings
			a.AvgOffFraction += row.OffFraction
		}
	}
	out := &ClosedLoopSweepResult{Benches: benches}
	n := float64(len(benches))
	for _, m := range order {
		a := acc[m]
		out.Rows = append(out.Rows, ClosedLoopSweepRow{
			Model:          a.Model,
			AvgSlowdown:    a.AvgSlowdown / n,
			AvgStaticSav:   a.AvgStaticSav / n,
			AvgDynamicSav:  a.AvgDynamicSav / n,
			AvgOffFraction: a.AvgOffFraction / n,
		})
	}
	return out, nil
}

// Write renders the sweep averages.
func (r *ClosedLoopSweepResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Closed-loop sweep averages over %d benchmark presets\n", len(r.Benches))
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s\n", "model", "slowdown", "static-sav", "dyn-sav", "off-frac")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %10.3f %11.1f%% %11.1f%% %10.3f\n",
			row.Model, row.AvgSlowdown, 100*row.AvgStaticSav, 100*row.AvgDynamicSav, row.AvgOffFraction)
	}
}
