package exp

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/power"
)

// Machine-readable exports: the headline, Fig 7 and Fig 8 results as CSV,
// for plotting the paper's bar charts from raw runs.

// WriteCSVTable writes one header plus rows as CSV — the shared writer
// behind every figure export here and the sweep orchestrator's
// comparison-table export.
func WriteCSVTable(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV exports the headline rows.
func (h *HeadlineResult) WriteCSV(w io.Writer) error {
	header := []string{"topology", "model", "static_savings", "dynamic_savings", "tput_loss", "lat_increase", "off_fraction"}
	var rows [][]string
	add := func(topo string, r HeadlineRow) {
		rows = append(rows, []string{
			topo, r.Kind.String(), ftoa(r.StaticSavings), ftoa(r.DynamicSavings),
			ftoa(r.TputLoss), ftoa(r.LatIncrease), ftoa(r.OffFraction),
		})
	}
	for _, r := range h.Mesh {
		add("mesh8x8", r)
	}
	if h.CMesh != nil {
		add("cmesh4x4", *h.CMesh)
	}
	return WriteCSVTable(w, header, rows)
}

// WriteCSV exports the Fig 7 mode distributions.
func (f *Fig7Result) WriteCSV(w io.Writer) error {
	header := []string{"model", "bench", "m3", "m4", "m5", "m6", "m7"}
	var rows [][]string
	for _, kind := range core.MLKinds {
		for _, d := range f.Models[kind] {
			row := []string{kind.String(), d.Bench}
			for i := 0; i < power.NumActiveModes; i++ {
				row = append(row, ftoa(d.Share[i]))
			}
			rows = append(rows, row)
		}
	}
	return WriteCSVTable(w, header, rows)
}

// WriteCSV exports the Fig 8 rows (both compressions).
func (f *Fig8Result) WriteCSV(w io.Writer) error {
	header := []string{"compressed", "bench", "model", "throughput", "tput_ratio", "lat_ratio", "static_norm", "dynamic_norm"}
	var rows [][]string
	add := func(compressed string, rs []Fig8Row) {
		for _, r := range rs {
			rows = append(rows, []string{
				compressed, r.Bench, r.Kind.String(), ftoa(r.Throughput),
				ftoa(r.TputRatio), ftoa(r.LatRatio), ftoa(r.StaticNorm), ftoa(r.DynamicNorm),
			})
		}
	}
	add("1", f.Uncompr)
	add(strconv.FormatInt(f.Compression, 10), f.Compressed)
	return WriteCSVTable(w, header, rows)
}

// WriteCSV exports the Fig 9 accuracies.
func (f *Fig9Result) WriteCSV(w io.Writer) error {
	header := []string{"feature", "bench", "accuracy"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{r.Feature, r.Bench, ftoa(r.Acc)})
	}
	return WriteCSVTable(w, header, rows)
}
