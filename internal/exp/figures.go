package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/traffic"
	"repro/internal/vr"
)

// ---------------------------------------------------------------------
// Fig 5 — regulator transition waveforms.

// Fig5Result carries the two waveforms and their settle latencies.
type Fig5Result struct {
	Wakeup      []vr.Sample // 0V -> 0.8V (power-gating wake)
	Switch      []vr.Sample // 0.8V -> 1.2V (worst-case DVFS switch)
	WakeupNS    float64
	SwitchNS    float64
	StartNS     float64
	WakeTargets [2]float64
}

// Fig5 regenerates the Fig 5 waveforms with the transition starting at
// startNS and sampled every stepNS over horizonNS.
func Fig5(startNS, stepNS, horizonNS float64) Fig5Result {
	return Fig5Result{
		Wakeup:      vr.Fig5Wakeup(startNS, stepNS, horizonNS),
		Switch:      vr.Fig5Switch(startNS, stepNS, horizonNS),
		WakeupNS:    vr.SettledAfter(0, 0.8),
		SwitchNS:    vr.SettledAfter(0.8, 1.2),
		StartNS:     startNS,
		WakeTargets: [2]float64{0.8, 1.2},
	}
}

// Write renders the settle summary plus a decimated series.
func (f Fig5Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig 5: real-valued regulator transition waveforms")
	fmt.Fprintf(w, "(a) T-Wakeup 0V->0.8V settles %.2f ns after the switch at t=%.1f ns\n", f.WakeupNS, f.StartNS)
	fmt.Fprintf(w, "(b) T-Switch 0.8V->1.2V settles %.2f ns after the switch at t=%.1f ns\n", f.SwitchNS, f.StartNS)
	writeSeries := func(label string, s []vr.Sample) {
		fmt.Fprintf(w, "%s t(ns):V ", label)
		step := len(s) / 12
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(s); i += step {
			fmt.Fprintf(w, " %.1f:%.2f", s[i].TimeNS, s[i].Volts)
		}
		fmt.Fprintln(w)
	}
	writeSeries("(a)", f.Wakeup)
	writeSeries("(b)", f.Switch)
}

// ---------------------------------------------------------------------
// Fig 6 — power-efficiency comparison.

// Fig6Result carries the efficiency curves and the paper's summary stats.
type Fig6Result struct {
	Curve []vr.EfficiencyPoint
	Stats vr.ImprovementStats
}

// Fig6 regenerates the Fig 6 comparison.
func Fig6() Fig6Result {
	return Fig6Result{Curve: vr.EfficiencyCurve(0.1), Stats: vr.Improvement()}
}

// Write renders the curve and summary.
func (f Fig6Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig 6: power efficiency, SIMO+muxed LDO vs 1.2V-input LDO baseline")
	fmt.Fprintf(w, "%-8s %-10s %s\n", "Vout", "SIMO", "baseline")
	for _, p := range f.Curve {
		fmt.Fprintf(w, "%-8.1f %-10.3f %.3f\n", p.Vout, p.SIMO, p.Baseline)
	}
	fmt.Fprintf(w, "min efficiency %.1f%%; avg improvement %.1f pts; max improvement %.1f pts at %.1fV\n",
		100*f.Stats.MinEfficiency, 100*f.Stats.AvgImprovement, 100*f.Stats.MaxImprovement, f.Stats.MaxAtVolts)
}

// ---------------------------------------------------------------------
// Fig 7 — predicted-mode distribution per benchmark per ML model.

// ModeDist is the normalized M3..M7 decision distribution of one run.
type ModeDist struct {
	Bench string
	Share [power.NumActiveModes]float64
}

// Fig7Result holds distributions per ML model.
type Fig7Result struct {
	Models map[core.ModelKind][]ModeDist
}

// Fig7 runs the three ML models over every test benchmark (uncompressed,
// epoch 500) and reports each run's predicted-DVFS-mode breakdown.
func Fig7(s *core.Suite) (*Fig7Result, error) {
	if err := requireTrained(s); err != nil {
		return nil, err
	}
	benches := TestBenchNames()
	type job struct{ ki, bi int }
	var jobs []job
	for ki := range core.MLKinds {
		for bi := range benches {
			jobs = append(jobs, job{ki, bi})
		}
	}
	// dists[ki][bi] keeps the output order fixed regardless of worker
	// scheduling; each (kind, bench) run is an independent simulation.
	dists := make([][]ModeDist, len(core.MLKinds))
	for ki := range dists {
		dists[ki] = make([]ModeDist, len(benches))
	}
	runOne := func(j job) error {
		res, err := s.RunBenchmark(core.MLKinds[j.ki], benches[j.bi], 1)
		if err != nil {
			return err
		}
		d := ModeDist{Bench: benches[j.bi]}
		total := float64(res.Policy.EpochDecisions)
		if total > 0 {
			for i := range d.Share {
				d.Share[i] = float64(res.Policy.ModeDecisions[i]) / total
			}
		}
		dists[j.ki][j.bi] = d
		return nil
	}
	if s.Opts.Parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(jobs) {
			workers = len(jobs)
		}
		ch := make(chan job)
		errs := make(chan error, len(jobs))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					if err := runOne(j); err != nil {
						errs <- err
					}
				}
			}()
		}
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		wg.Wait()
		close(errs)
		for err := range errs {
			return nil, err
		}
	} else {
		for _, j := range jobs {
			if err := runOne(j); err != nil {
				return nil, err
			}
		}
	}
	out := &Fig7Result{Models: make(map[core.ModelKind][]ModeDist)}
	for ki, kind := range core.MLKinds {
		out.Models[kind] = dists[ki]
	}
	return out, nil
}

// Write renders the distributions.
func (f *Fig7Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig 7: predicted DVFS mode breakdown (share of epoch decisions)")
	for _, kind := range core.MLKinds {
		fmt.Fprintf(w, "-- %s\n", kind)
		fmt.Fprintf(w, "%-16s", "bench")
		for i := 0; i < power.NumActiveModes; i++ {
			fmt.Fprintf(w, "%8s", power.ActiveMode(i))
		}
		fmt.Fprintln(w)
		for _, d := range f.Models[kind] {
			fmt.Fprintf(w, "%-16s", d.Bench)
			for _, s := range d.Share {
				fmt.Fprintf(w, "%8.3f", s)
			}
			fmt.Fprintln(w)
		}
	}
}

// ---------------------------------------------------------------------
// Fig 8 — throughput and normalized energies.

// Fig8Row is one (benchmark, model) outcome.
type Fig8Row struct {
	Bench       string
	Kind        core.ModelKind
	Throughput  float64 // flits/tick
	TputRatio   float64 // vs baseline
	LatRatio    float64
	StaticNorm  float64
	DynamicNorm float64
}

// Fig8Result covers Fig 8(a) (compressed throughput) and Fig 8(b)/(c)
// (normalized energy, compressed and uncompressed).
type Fig8Result struct {
	Compression int64
	Compressed  []Fig8Row
	Uncompr     []Fig8Row
}

// Fig8 runs all five models over the test benchmarks at both compression
// settings.
func Fig8(s *core.Suite, compression int64) (*Fig8Result, error) {
	if err := requireTrained(s); err != nil {
		return nil, err
	}
	out := &Fig8Result{Compression: compression}
	for _, factor := range []int64{compression, 1} {
		for _, bench := range TestBenchNames() {
			cmp, err := s.Compare(bench, factor)
			if err != nil {
				return nil, err
			}
			for _, rel := range cmp.Relatives() {
				row := Fig8Row{
					Bench:       bench,
					Kind:        rel.Kind,
					Throughput:  cmp.Results[rel.Kind].Throughput,
					TputRatio:   rel.ThroughputRatio,
					LatRatio:    rel.LatencyRatio,
					StaticNorm:  rel.StaticNorm,
					DynamicNorm: rel.DynamicNorm,
				}
				if factor == 1 {
					out.Uncompr = append(out.Uncompr, row)
				} else {
					out.Compressed = append(out.Compressed, row)
				}
			}
		}
	}
	return out, nil
}

// Write renders the three panels.
func (f *Fig8Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig 8(a): throughput, compressed x%d traces (flits/tick, ratio vs baseline)\n", f.Compression)
	writeFig8Panel(w, f.Compressed, func(r Fig8Row) string {
		return fmt.Sprintf("%7.3f (%.3f)", r.Throughput, r.TputRatio)
	})
	fmt.Fprintf(w, "Fig 8(b): energy normalized to baseline, compressed x%d (static/dynamic)\n", f.Compression)
	writeFig8Panel(w, f.Compressed, func(r Fig8Row) string {
		return fmt.Sprintf("%.3f/%.3f", r.StaticNorm, r.DynamicNorm)
	})
	fmt.Fprintln(w, "Fig 8(c): energy normalized to baseline, uncompressed (static/dynamic)")
	writeFig8Panel(w, f.Uncompr, func(r Fig8Row) string {
		return fmt.Sprintf("%.3f/%.3f", r.StaticNorm, r.DynamicNorm)
	})
}

func writeFig8Panel(w io.Writer, rows []Fig8Row, cell func(Fig8Row) string) {
	fmt.Fprintf(w, "%-16s", "bench")
	for _, k := range core.AllKinds {
		fmt.Fprintf(w, "%16s", k)
	}
	fmt.Fprintln(w)
	byBench := map[string]map[core.ModelKind]Fig8Row{}
	var order []string
	for _, r := range rows {
		if byBench[r.Bench] == nil {
			byBench[r.Bench] = map[core.ModelKind]Fig8Row{}
			order = append(order, r.Bench)
		}
		byBench[r.Bench][r.Kind] = r
	}
	for _, b := range order {
		fmt.Fprintf(w, "%-16s", b)
		for _, k := range core.AllKinds {
			fmt.Fprintf(w, "%16s", cell(byBench[b][k]))
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// Fig 9 — single-feature mode-selection accuracy.

// Fig9Row is the accuracy of one feature on one test trace.
type Fig9Row struct {
	Feature string
	Bench   string
	Acc     float64
}

// Fig9Result carries per-feature accuracies plus the all-features model.
type Fig9Result struct {
	Rows    []Fig9Row
	Average map[string]float64 // per feature, across test traces
}

// Fig9 trains DozzNoC ridge models on single features (bias + one
// candidate) over the training traces, tunes lambda on validation, and
// measures mode-selection accuracy on each of the five test traces. The
// "all-5" row is the full reduced feature set.
func Fig9(s *core.Suite) (*Fig9Result, error) {
	train, err := s.MergedDataset(core.KindDozzNoC, traffic.Train)
	if err != nil {
		return nil, err
	}
	val, err := s.MergedDataset(core.KindDozzNoC, traffic.Validation)
	if err != nil {
		return nil, err
	}
	modeOf := func(v float64) int { return int(policy.ModeForIBU(v)) }
	out := &Fig9Result{Average: make(map[string]float64)}

	type featCase struct {
		name string
		cols []int
	}
	var cases []featCase
	for f := 1; f < features.Count; f++ {
		cases = append(cases, featCase{name: features.Names[f], cols: []int{features.Bias, f}})
	}
	cases = append(cases, featCase{name: "all-5", cols: []int{0, 1, 2, 3, 4}})

	for _, fc := range cases {
		rep, err := ml.TuneLambda(train.Columns(fc.cols...), val.Columns(fc.cols...), s.Opts.Lambdas)
		if err != nil {
			return nil, fmt.Errorf("exp: fig9 feature %s: %w", fc.name, err)
		}
		sum := 0.0
		for _, bench := range TestBenchNames() {
			ds, err := s.Dataset(core.KindDozzNoC, bench)
			if err != nil {
				return nil, err
			}
			sub := ds.Columns(fc.cols...)
			acc := ml.ModeAccuracy(rep.Best.PredictAll(sub.X), sub.Y, modeOf)
			out.Rows = append(out.Rows, Fig9Row{Feature: fc.name, Bench: bench, Acc: acc})
			sum += acc
		}
		out.Average[fc.name] = sum / float64(len(TestBenchNames()))
	}
	return out, nil
}

// Write renders per-benchmark accuracies with per-feature averages.
func (f *Fig9Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig 9: mode-selection accuracy of single-feature DozzNoC models")
	fmt.Fprintf(w, "%-12s %-16s %s\n", "feature", "bench", "accuracy")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-12s %-16s %.3f\n", r.Feature, r.Bench, r.Acc)
	}
	fmt.Fprintln(w, "-- averages")
	for _, fc := range []string{"reqs_sent", "reqs_recv", "off_time", "ibu", "all-5"} {
		if v, ok := f.Average[fc]; ok {
			fmt.Fprintf(w, "%-12s %.3f\n", fc, v)
		}
	}
}

// ---------------------------------------------------------------------
// Headline (§IV-B2) — model averages across the test set.

// HeadlineRow is one model's averages across the five test benchmarks.
type HeadlineRow struct {
	Kind           core.ModelKind
	StaticSavings  float64
	DynamicSavings float64
	TputLoss       float64
	LatIncrease    float64
	OffFraction    float64
}

// HeadlineResult carries the mesh rows plus the cmesh DozzNoC row.
type HeadlineResult struct {
	Compression int64
	Mesh        []HeadlineRow
	CMesh       *HeadlineRow // DozzNoC on the 4x4 cmesh (nil if skipped)
}

// Headline reproduces the §IV-B2 summary: energy savings are averaged
// over uncompressed runs; throughput/latency deltas over compressed runs
// (where load is high enough for the models to differ), matching the
// paper's use of compressed traces for throughput.
func Headline(s *core.Suite, compression int64, cmesh *core.Suite) (*HeadlineResult, error) {
	if err := requireTrained(s); err != nil {
		return nil, err
	}
	rows, err := headlineRows(s, compression)
	if err != nil {
		return nil, err
	}
	out := &HeadlineResult{Compression: compression, Mesh: rows}
	if cmesh != nil {
		if err := requireTrained(cmesh); err != nil {
			return nil, err
		}
		crows, err := headlineRows(cmesh, compression)
		if err != nil {
			return nil, err
		}
		for i := range crows {
			if crows[i].Kind == core.KindDozzNoC {
				out.CMesh = &crows[i]
			}
		}
	}
	return out, nil
}

func headlineRows(s *core.Suite, compression int64) ([]HeadlineRow, error) {
	benches := TestBenchNames()
	acc := map[core.ModelKind]*HeadlineRow{}
	for _, k := range core.AllKinds {
		acc[k] = &HeadlineRow{Kind: k}
	}
	for _, bench := range benches {
		unc, err := s.Compare(bench, 1)
		if err != nil {
			return nil, err
		}
		cmp, err := s.Compare(bench, compression)
		if err != nil {
			return nil, err
		}
		for _, rel := range unc.Relatives() {
			acc[rel.Kind].StaticSavings += rel.StaticSavings
			acc[rel.Kind].DynamicSavings += rel.DynamicSavings
			acc[rel.Kind].OffFraction += rel.OffFraction
		}
		for _, rel := range cmp.Relatives() {
			acc[rel.Kind].TputLoss += 1 - rel.ThroughputRatio
			acc[rel.Kind].LatIncrease += rel.LatencyRatio - 1
		}
	}
	n := float64(len(benches))
	rows := make([]HeadlineRow, 0, len(core.AllKinds))
	for _, k := range core.AllKinds {
		r := acc[k]
		r.StaticSavings /= n
		r.DynamicSavings /= n
		r.TputLoss /= n
		r.LatIncrease /= n
		r.OffFraction /= n
		rows = append(rows, *r)
	}
	return rows, nil
}

// Write renders the headline table.
func (h *HeadlineResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Headline (averages over 5 test benchmarks; energy uncompressed, perf compressed x%d)\n", h.Compression)
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %8s\n", "model", "static-sav", "dyn-sav", "tput-loss", "lat-incr", "off-frac")
	for _, r := range h.Mesh {
		writeHeadlineRow(w, r)
	}
	if h.CMesh != nil {
		fmt.Fprintln(w, "-- cmesh 4x4")
		writeHeadlineRow(w, *h.CMesh)
	}
}

func writeHeadlineRow(w io.Writer, r HeadlineRow) {
	fmt.Fprintf(w, "%-10s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %8.3f\n",
		r.Kind, 100*r.StaticSavings, 100*r.DynamicSavings, 100*r.TputLoss, 100*r.LatIncrease, r.OffFraction)
}

// ---------------------------------------------------------------------
// Epoch-size sweep (§IV-B1 trade-off study).

// EpochSweepRow is DozzNoC's outcome at one epoch size.
type EpochSweepRow struct {
	EpochTicks     int64
	StaticSavings  float64
	DynamicSavings float64
	TputLoss       float64
	ValMSE         float64
}

// EpochSweepResult holds the sweep over epoch sizes.
type EpochSweepResult struct {
	Bench string
	Rows  []EpochSweepRow
}

// EpochSweep retrains and reruns DozzNoC at several epoch sizes on one
// benchmark (the paper trains each epoch size separately and picks 500).
type epochSuiteFactory func(epochTicks int64) *core.Suite

// RunEpochSweep executes the sweep; newSuite must return a fresh suite
// configured for the given epoch size (each epoch size trains its own
// model, per the paper).
func RunEpochSweep(newSuite epochSuiteFactory, bench string, compression int64, epochs []int64) (*EpochSweepResult, error) {
	out := &EpochSweepResult{Bench: bench}
	for _, ep := range epochs {
		s := newSuite(ep)
		rep, err := s.Train(core.KindDozzNoC)
		if err != nil {
			return nil, err
		}
		row := EpochSweepRow{EpochTicks: ep, ValMSE: rep.BestVal.ValMSE}
		// Only baseline and DozzNoC are needed; the other models would
		// require their own per-epoch-size training.
		baseU, err := s.RunBenchmark(core.KindBaseline, bench, 1)
		if err != nil {
			return nil, err
		}
		dozzU, err := s.RunBenchmark(core.KindDozzNoC, bench, 1)
		if err != nil {
			return nil, err
		}
		if baseU.StaticJ > 0 {
			row.StaticSavings = 1 - dozzU.StaticJ/baseU.StaticJ
		}
		if baseU.DynamicJ > 0 {
			row.DynamicSavings = 1 - dozzU.DynamicJ/baseU.DynamicJ
		}
		baseC, err := s.RunBenchmark(core.KindBaseline, bench, compression)
		if err != nil {
			return nil, err
		}
		dozzC, err := s.RunBenchmark(core.KindDozzNoC, bench, compression)
		if err != nil {
			return nil, err
		}
		if baseC.Throughput > 0 {
			row.TputLoss = 1 - dozzC.Throughput/baseC.Throughput
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Write renders the sweep.
func (e *EpochSweepResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Epoch-size sweep, DozzNoC on %s\n", e.Bench)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %12s\n", "epoch", "static-sav", "dyn-sav", "tput-loss", "val-MSE")
	for _, r := range e.Rows {
		fmt.Fprintf(w, "%-8d %9.1f%% %9.1f%% %9.1f%% %12.3e\n",
			r.EpochTicks, 100*r.StaticSavings, 100*r.DynamicSavings, 100*r.TputLoss, r.ValMSE)
	}
}
