package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mcsim"
	"repro/internal/topology"
)

func TestTIdleSweep(t *testing.T) {
	r, err := TIdleSweep(topology.NewMesh(4, 4), "fft", 6000, []int{2, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// A larger T-Idle gates less often.
	if r.Rows[2].Gatings > r.Rows[0].Gatings {
		t.Errorf("T-Idle 64 gated more than T-Idle 2: %d vs %d",
			r.Rows[2].Gatings, r.Rows[0].Gatings)
	}
	// A larger T-Idle meets breakeven more often (only deep idles gate).
	if r.Rows[0].Gatings > 0 && r.Rows[2].Gatings > 0 &&
		r.Rows[2].BreakevenFrac < r.Rows[0].BreakevenFrac {
		t.Errorf("breakeven fraction should improve with T-Idle: %g vs %g",
			r.Rows[2].BreakevenFrac, r.Rows[0].BreakevenFrac)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "T-Idle sweep") {
		t.Error("render incomplete")
	}
}

func TestTIdleSweepUnknownBench(t *testing.T) {
	if _, err := TIdleSweep(topology.NewMesh(4, 4), "bogus", 1000, []int{4}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPunchSweep(t *testing.T) {
	r, err := PunchSweep(topology.NewMesh(4, 4), "fft", 6000, []int{0, 1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Punching the whole path must not increase latency versus punching
	// nothing at injection time.
	none, full := r.Rows[0], r.Rows[2]
	if full.LatencyRatio > none.LatencyRatio*1.05 {
		t.Errorf("full-path punch latency ratio %g vs none %g",
			full.LatencyRatio, none.LatencyRatio)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "punch horizon") {
		t.Error("render incomplete")
	}
}

func TestFeatureCountAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset harvesting in -short mode")
	}
	s := tinySuite()
	r, err := FeatureCountAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The 5-feature label must cost 7.1 pJ (paper's overhead claim).
	last := r.Rows[len(r.Rows)-1]
	if last.Features != 5 || last.EnergyPJ != 7.1 {
		t.Fatalf("all-5 row = %+v", last)
	}
	// Accuracy must not collapse when features are added.
	if last.TestAcc < r.Rows[0].TestAcc-0.1 {
		t.Errorf("all-5 accuracy %.3f far below ibu-only %.3f", last.TestAcc, r.Rows[0].TestAcc)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "all-5") {
		t.Error("render incomplete")
	}
}

func TestFeatureSet41(t *testing.T) {
	if testing.Short() {
		t.Skip("extended training in -short mode")
	}
	s := tinySuite()
	r, err := FeatureSet41(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The paper's claim: the reduced set loses almost nothing. Both
		// variants must at least save static energy; ratios stay sane.
		if row.Static5 <= 0 || row.Static41 <= 0 {
			t.Errorf("%s: no static savings (5: %g, 41: %g)", row.Bench, row.Static5, row.Static41)
		}
		if row.TputRatio < 0.7 || row.TputRatio > 1.4 {
			t.Errorf("%s: throughput ratio %g far from parity", row.Bench, row.TputRatio)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "DozzNoC-41") {
		t.Error("render incomplete")
	}
}

func TestClosedLoopSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("closed loop in -short mode")
	}
	topo := topology.NewMesh(4, 4)
	params := mcsim.DefaultSystem(topo)
	params.Core.Instructions = 20_000
	r, err := ClosedLoop(topo, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.Rows[0].Slowdown != 1 {
		t.Fatal("baseline slowdown must be 1")
	}
	for _, row := range r.Rows[1:] {
		if row.Slowdown < 1 {
			t.Errorf("%s finished faster than the baseline", row.Model)
		}
	}
	// DozzNoC saves both energies even in closed loop.
	for _, row := range r.Rows {
		if row.Model == "DozzNoC" && (row.StaticSavings <= 0 || row.DynamicSavings <= 0) {
			t.Error("closed-loop DozzNoC did not save both energies")
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "Closed-loop") {
		t.Error("render incomplete")
	}
}

func TestGlobalDVFS(t *testing.T) {
	r, err := GlobalDVFS(topology.NewMesh(4, 4), 8000, []string{"fft", "lu"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Global coordination (network max) must save no more dynamic
		// energy than per-router selection.
		if row.GlobalDynamic > row.LocalDynamic+0.01 {
			t.Errorf("%s: global dynamic savings %.3f beat local %.3f",
				row.Bench, row.GlobalDynamic, row.LocalDynamic)
		}
		if row.LocalDynamic <= 0 {
			t.Errorf("%s: local DVFS saved nothing", row.Bench)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "globally coordinated") {
		t.Error("render incomplete")
	}
}

func TestClosedLoopSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop sweep in -short mode")
	}
	topo := topology.NewMesh(4, 4)
	r, err := ClosedLoopSweep(topo, []string{"fft", "lu"}, 15_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.Rows[0].Model != "Baseline" || r.Rows[0].AvgSlowdown != 1 {
		t.Fatalf("baseline row = %+v", r.Rows[0])
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "sweep averages") {
		t.Error("render incomplete")
	}
}
