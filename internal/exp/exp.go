// Package exp regenerates every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Static tables (I, II, III,
// V) come straight from the model packages; figures 5-9 and the §IV-B2
// headline numbers are produced by running the simulation suite.
//
// Each experiment returns a structured result with a Write method that
// renders the same rows/series the paper reports.
package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dsent"
	"repro/internal/ml"
	"repro/internal/power"
	"repro/internal/traffic"
	"repro/internal/vr"
)

// DefaultCompression is the time-compression factor used for the
// "compressed" trace experiments (Fig 8a/8b).
const DefaultCompression = 2

// TestBenchNames returns the five test benchmarks in order.
func TestBenchNames() []string {
	var names []string
	for _, p := range traffic.ProfilesBySplit(traffic.Test) {
		names = append(names, p.Name)
	}
	return names
}

// ---------------------------------------------------------------------
// Table I — LDO dropout ranges.

// TableIResult mirrors Table I.
type TableIResult struct{ Rows []vr.DropoutRow }

// TableI regenerates Table I from the regulator model.
func TableI() TableIResult { return TableIResult{Rows: vr.TableI()} }

// Write renders the table.
func (t TableIResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table I: LDO voltage dropout range per dynamically selected input")
	fmt.Fprintf(w, "%-8s %-14s %s\n", "LDO Vin", "Vout range", "dropout range")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-8.1f %.1fV - %.1fV    %.1fV - %.1fV\n", r.Vin, r.VoutLo, r.VoutHi, r.DropoutLo, r.DropoutHi)
	}
}

// ---------------------------------------------------------------------
// Table II — ns switching latency matrix.

// TableIIResult holds the 6x6 latency matrix in level order.
type TableIIResult struct {
	Levels [6]vr.Level
	NS     [6][6]float64
}

// TableII regenerates Table II.
func TableII() TableIIResult {
	var t TableIIResult
	for i := vr.PG; i <= vr.V12; i++ {
		t.Levels[i] = i
		for j := vr.PG; j <= vr.V12; j++ {
			t.NS[i][j] = vr.SwitchNS(i, j)
		}
	}
	return t
}

// Write renders the matrix.
func (t TableIIResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table II: measured delay (ns) to switch between voltage levels")
	fmt.Fprintf(w, "%-8s", "from\\to")
	for _, l := range t.Levels {
		fmt.Fprintf(w, "%8s", l)
	}
	fmt.Fprintln(w)
	for i, l := range t.Levels {
		fmt.Fprintf(w, "%-8s", l)
		for j := range t.Levels {
			fmt.Fprintf(w, "%8.1f", t.NS[i][j])
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------
// Table III — cycle-domain costs.

// TableIIIResult mirrors Table III.
type TableIIIResult struct{ Rows []vr.Costs }

// TableIII regenerates Table III.
func TableIII() TableIIIResult { return TableIIIResult{Rows: vr.TableIII()} }

// Write renders the table.
func (t TableIIIResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table III: T-Switch / T-Wakeup / T-Breakeven per mode (cycles)")
	fmt.Fprintf(w, "%-6s %-9s %-9s %-9s %s\n", "volt", "freq", "T-Switch", "T-Wakeup", "T-Breakeven")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-6.1f %-9s %-9d %-9d %d\n", r.Volts, fmt.Sprintf("%.2fGHz", float64(r.FreqMHz)/1000), r.TSwitch, r.TWakeup, r.TBreakeven)
	}
}

// ---------------------------------------------------------------------
// Table V — DSENT power/energy costs.

// TableVResult mirrors Table V.
type TableVResult struct{ Rows []power.VFPoint }

// TableV regenerates Table V.
func TableV() TableVResult {
	return TableVResult{Rows: append([]power.VFPoint(nil), power.Table[:]...)}
}

// Write renders the table.
func (t TableVResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table V: static power and dynamic hop energy at 22nm")
	fmt.Fprintf(w, "%-6s %-9s %-12s %-14s %s\n", "volt", "freq", "static(J/s)", "static(cycle)", "dynamic(pJ/hop)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-6.1f %-9s %-12.3f %-14.3f %.1f\n", r.Volts, fmt.Sprintf("%.2fGHz", float64(r.FreqMHz)/1000), r.StaticWatts, r.StaticPerCyc, r.DynamicPJHop)
	}
}

// ---------------------------------------------------------------------
// ML overhead table (§III-D).

// OverheadResult compares label-generation cost at 5 vs 41 features.
type OverheadResult struct {
	Reduced  ml.Overhead
	Original ml.Overhead
}

// OverheadTable regenerates the §III-D overhead comparison.
func OverheadTable() OverheadResult {
	return OverheadResult{Reduced: ml.LabelOverhead(5), Original: ml.LabelOverhead(41)}
}

// Write renders the comparison.
func (o OverheadResult) Write(w io.Writer) {
	fmt.Fprintln(w, "ML label-generation overhead (Horowitz 16-bit FP op costs)")
	fmt.Fprintf(w, "%-10s %-10s %-12s %s\n", "features", "energy", "area", "timing")
	for _, ov := range []ml.Overhead{o.Reduced, o.Original} {
		fmt.Fprintf(w, "%-10d %-10s %-12s %d-%d cycles\n",
			ov.Features, fmt.Sprintf("%.1fpJ", ov.EnergyPJ), fmt.Sprintf("%.3fmm2", ov.AreaMM2), ov.CyclesMin, ov.CyclesMax)
	}
}

// requireTrained makes sure the suite's ML models exist.
func requireTrained(s *core.Suite) error {
	return s.TrainAll()
}

// ---------------------------------------------------------------------
// Table V derivation — the mini-DSENT cross-check.

// TableVDerivedRow compares the analytical model against Table V at one
// V/F point.
type TableVDerivedRow struct {
	Volts        float64
	TableDynamic float64
	DerivedDyn   float64
	TableStatic  float64
	DerivedStat  float64
}

// TableVDerivedResult carries the cross-check plus the nominal component
// breakdown.
type TableVDerivedResult struct {
	Rows      []TableVDerivedRow
	Breakdown dsent.Components
}

// TableVDerived recomputes Table V from the mini-DSENT analytical model
// (22 nm technology parameters, the paper's 8-port cmesh worst-case
// router) instead of the encoded constants.
func TableVDerived() TableVDerivedResult {
	m := dsent.Calibrated()
	out := TableVDerivedResult{Breakdown: m.DynamicBreakdown(1.2)}
	for _, p := range power.Table {
		out.Rows = append(out.Rows, TableVDerivedRow{
			Volts:        p.Volts,
			TableDynamic: p.DynamicPJHop,
			DerivedDyn:   m.DynamicPJPerHop(p.Volts),
			TableStatic:  p.StaticWatts,
			DerivedStat:  m.StaticWatts(p.Volts),
		})
	}
	return out
}

// Write renders the cross-check.
func (t TableVDerivedResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Table V derived from the mini-DSENT analytical model")
	fmt.Fprintf(w, "%-6s %14s %14s %14s %14s\n", "volt", "dyn(table)", "dyn(derived)", "stat(table)", "stat(derived)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-6.1f %14.1f %14.2f %14.3f %14.4f\n",
			r.Volts, r.TableDynamic, r.DerivedDyn, r.TableStatic, r.DerivedStat)
	}
	b := t.Breakdown
	fmt.Fprintf(w, "breakdown at 1.2V (pJ): buf-wr %.1f, buf-rd %.1f, xbar %.1f, ctl %.1f, link %.1f\n",
		b.BufferWrite, b.BufferRead, b.Crossbar, b.Control, b.Link)
}
