package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// DozzNoC-41 vs DozzNoC-5 (§IV-B1): the paper reports "almost no impact
// on throughput, latency, dynamic energy savings, static power savings, or
// EDP" between a model trained on the original 41 features and one trained
// on the reduced 5-feature set. This experiment trains both (each with its
// own reactive data harvest and lambda sweep) and runs them side by side
// over the test benchmarks.

// FeatureSet41Row compares the two variants on one benchmark.
type FeatureSet41Row struct {
	Bench        string
	Static5      float64 // static savings vs baseline
	Static41     float64
	Dynamic5     float64
	Dynamic41    float64
	TputRatio    float64 // DozzNoC-41 throughput / DozzNoC-5 throughput
	LatencyRatio float64
	EDPRatio     float64
}

// FeatureSet41Result holds the comparison plus validation MSEs.
type FeatureSet41Result struct {
	ValMSE5  float64
	ValMSE41 float64
	Rows     []FeatureSet41Row
}

// FeatureSet41 runs the full DozzNoC-41 vs DozzNoC-5 comparison on the
// suite's topology (uncompressed traces).
func FeatureSet41(s *core.Suite) (*FeatureSet41Result, error) {
	// The reduced model comes from the standard pipeline.
	rep5, err := s.Train(core.KindDozzNoC)
	if err != nil {
		return nil, err
	}

	// The extended model gets its own harvest with the 41-feature
	// extractor over the same train/validation protocol.
	harvest := func(split traffic.Split) (*ml.Dataset, error) {
		out := ml.NewDataset(features.ExtendedNames)
		for _, p := range traffic.ProfilesBySplit(split) {
			tr, err := s.Trace(p.Name)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Config{
				Topo:           s.Topo,
				Spec:           reactiveDozzNoC(),
				Trace:          tr,
				VCs:            s.Opts.VCs,
				Depth:          s.Opts.Depth,
				Pipeline:       s.Opts.Pipeline,
				EpochTicks:     s.Opts.EpochTicks,
				CollectDataset: true,
				Extractor:      features.NewExtendedExtractor(s.Topo),
			})
			if err != nil {
				return nil, fmt.Errorf("exp: 41-feature harvest on %s: %w", p.Name, err)
			}
			out.Merge(res.Dataset)
		}
		return out, nil
	}
	train41, err := harvest(traffic.Train)
	if err != nil {
		return nil, err
	}
	val41, err := harvest(traffic.Validation)
	if err != nil {
		return nil, err
	}
	rep41, err := ml.TuneLambda(train41, val41, s.Opts.Lambdas)
	if err != nil {
		return nil, fmt.Errorf("exp: training DozzNoC-41: %w", err)
	}

	out := &FeatureSet41Result{ValMSE5: rep5.BestVal.ValMSE, ValMSE41: rep41.BestVal.ValMSE}
	for _, bench := range TestBenchNames() {
		tr, err := s.Trace(bench)
		if err != nil {
			return nil, err
		}
		base, err := s.RunBenchmark(core.KindBaseline, bench, 1)
		if err != nil {
			return nil, err
		}
		r5, err := s.RunBenchmark(core.KindDozzNoC, bench, 1)
		if err != nil {
			return nil, err
		}
		spec41 := policy.DozzNoC(policy.ProactiveSelector{Model: rep41.Best, ModelName: "DozzNoC-41"})
		spec41.Name = "DozzNoC-41"
		r41, err := sim.Run(sim.Config{
			Topo:       s.Topo,
			Spec:       spec41,
			Trace:      tr,
			VCs:        s.Opts.VCs,
			Depth:      s.Opts.Depth,
			Pipeline:   s.Opts.Pipeline,
			EpochTicks: s.Opts.EpochTicks,
			Extractor:  features.NewExtendedExtractor(s.Topo),
		})
		if err != nil {
			return nil, err
		}
		row := FeatureSet41Row{Bench: bench}
		if base.StaticJ > 0 {
			row.Static5 = 1 - r5.StaticJ/base.StaticJ
			row.Static41 = 1 - r41.StaticJ/base.StaticJ
		}
		if base.DynamicJ > 0 {
			row.Dynamic5 = 1 - r5.DynamicJ/base.DynamicJ
			row.Dynamic41 = 1 - r41.DynamicJ/base.DynamicJ
		}
		if r5.Throughput > 0 {
			row.TputRatio = r41.Throughput / r5.Throughput
		}
		if r5.AvgLatencyTicks > 0 {
			row.LatencyRatio = r41.AvgLatencyTicks / r5.AvgLatencyTicks
		}
		if e5 := r5.EDP(); e5 > 0 {
			row.EDPRatio = r41.EDP() / e5
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// reactiveDozzNoC builds a fresh reactive spec (mirrors the suite's
// internal variant without needing its private constructor).
func reactiveDozzNoC() policy.Spec {
	sp := policy.DozzNoC(policy.ReactiveSelector{})
	sp.Name = "DozzNoC(reactive,41)"
	return sp
}

// Write renders the comparison.
func (r *FeatureSet41Result) Write(w io.Writer) {
	fmt.Fprintln(w, "DozzNoC-41 vs DozzNoC-5 (uncompressed test benchmarks)")
	fmt.Fprintf(w, "validation MSE: 5 features %.3e, 41 features %.3e\n", r.ValMSE5, r.ValMSE41)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %10s %10s %10s\n",
		"bench", "stat-5", "stat-41", "dyn-5", "dyn-41", "tput41/5", "lat41/5", "EDP41/5")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %10.3f %10.3f %10.3f\n",
			row.Bench, 100*row.Static5, 100*row.Static41, 100*row.Dynamic5, 100*row.Dynamic41,
			row.TputRatio, row.LatencyRatio, row.EDPRatio)
	}
}
