// Package dsent is a compact analytical router/link energy model in the
// spirit of DSENT (Sun et al., NOCS 2012), the tool the paper used to
// obtain Table V. It derives per-hop dynamic energy and per-router static
// power from technology and microarchitecture parameters instead of
// hard-coding them, and its 22 nm calibration reproduces Table V:
//
//   - dynamic energy scales as V² (CV² switching), so Table V's pJ/hop
//     column is exactly 56.5 · (V/1.2)²;
//   - leakage power scales linearly with V over this narrow near-threshold
//     range, so the static column is exactly 0.054 · (V/1.2).
//
// The component breakdown (buffers, crossbar, allocators, clock, link)
// follows DSENT's structure with lumped capacitance coefficients fitted
// to the paper's concentrated-mesh worst-case router at 22 nm with
// 128-bit flits.
package dsent

import (
	"fmt"
	"math"
)

// Tech holds lumped technology parameters.
type Tech struct {
	Name string
	// Vnom is the nominal supply the capacitance coefficients are
	// quoted at.
	Vnom float64
	// SRAMBitFF is the effective switched capacitance per SRAM bit
	// access (read or write), in femtofarads.
	SRAMBitFF float64
	// XbarBitFF is the effective crossbar capacitance per bit per
	// (input+output) port pair traversed.
	XbarBitFF float64
	// WireFFPerMM is link wire capacitance per bit per millimetre.
	WireFFPerMM float64
	// CtlFF is the lumped control capacitance (allocators, pipeline
	// registers, clocking) switched per flit.
	CtlFF float64
	// LeakUWPerBit is leakage power per buffered SRAM bit at Vnom, in
	// microwatts.
	LeakUWPerBit float64
	// LeakMWPerPort is leakage of the per-port datapath, crossbar
	// drivers, allocation and clock tree at Vnom, in milliwatts.
	LeakMWPerPort float64
}

// Tech22 is the 22 nm calibration. The coefficients are fitted so the
// paper's Table V router (see PaperRouter) lands on 56.5 pJ/hop and
// 0.054 W at 1.2 V, with a component split in DSENT's usual proportions
// (link ~35%, crossbar ~25%, buffering ~29%, control ~11%).
var Tech22 = Tech{
	Name:          "22nm",
	Vnom:          1.2,
	SRAMBitFF:     97.66,  // buffer write 9.0 pJ (read 0.8x) at 1.2 V
	XbarBitFF:     53.71,  // crossbar 14.0 pJ at 1.2 V, 8-port router
	WireFFPerMM:   217.01, // 1 mm link 20.0 pJ at 1.2 V
	CtlFF:         4375.0, // allocators + pipeline + clock 6.3 pJ
	LeakUWPerBit:  0.9766, // 8.0 mW over 8192 buffered bits
	LeakMWPerPort: 5.75,   // 46 mW over 8 ports
}

// RouterParams sizes the modeled router and its outgoing link.
type RouterParams struct {
	Ports    int
	VCs      int
	Depth    int // flits per VC
	FlitBits int
	LinkMM   float64 // outgoing link length
	// ActivityFactor is the average switching probability per bit
	// (0.5 for random data).
	ActivityFactor float64
}

// PaperRouter is the paper's worst-case router: the concentrated-mesh
// configuration (8 ports: 4 cores + 4 cardinals) with 128-bit flits and a
// 1 mm inter-router link, which Table V uses for all latency/power costs.
func PaperRouter() RouterParams {
	return RouterParams{Ports: 8, VCs: 2, Depth: 4, FlitBits: 128, LinkMM: 1.0, ActivityFactor: 0.5}
}

// Model combines technology and router parameters.
type Model struct {
	Tech   Tech
	Router RouterParams
}

// New builds a model, validating the parameters.
func New(t Tech, r RouterParams) (Model, error) {
	switch {
	case r.Ports < 2 || r.VCs < 1 || r.Depth < 1 || r.FlitBits < 1:
		return Model{}, fmt.Errorf("dsent: bad router params %+v", r)
	case r.LinkMM < 0 || r.ActivityFactor <= 0 || r.ActivityFactor > 1:
		return Model{}, fmt.Errorf("dsent: bad link/activity params %+v", r)
	case t.Vnom <= 0:
		return Model{}, fmt.Errorf("dsent: bad tech %+v", t)
	}
	return Model{Tech: t, Router: r}, nil
}

// Calibrated returns the Table V model (22 nm, paper router). It panics
// only on programmer error.
func Calibrated() Model {
	m, err := New(Tech22, PaperRouter())
	if err != nil {
		panic(err)
	}
	return m
}

// Components is the per-hop dynamic energy breakdown in picojoules.
type Components struct {
	BufferWrite float64
	BufferRead  float64
	Crossbar    float64
	Control     float64
	Link        float64
}

// Total sums the breakdown.
func (c Components) Total() float64 {
	return c.BufferWrite + c.BufferRead + c.Crossbar + c.Control + c.Link
}

// DynamicBreakdown returns the per-hop component energies at supply v.
// Energy is a·C·V² per switched capacitance (a = activity factor for the
// datapath, 1 for control).
func (m Model) DynamicBreakdown(v float64) Components {
	r, t := m.Router, m.Tech
	bits := float64(r.FlitBits)
	a := r.ActivityFactor
	// fF * V^2 -> fJ; /1000 -> pJ.
	e := func(capFF float64, act float64) float64 {
		return capFF * v * v * act / 1000.0
	}
	xbarCap := t.XbarBitFF * bits * math.Sqrt(float64(r.Ports))
	return Components{
		BufferWrite: e(t.SRAMBitFF*bits, a),
		BufferRead:  e(t.SRAMBitFF*bits*0.8, a), // reads switch less (no bitline full swing)
		Crossbar:    e(xbarCap, a),
		Control:     e(t.CtlFF, 1),
		Link:        e(t.WireFFPerMM*bits*r.LinkMM, a),
	}
}

// DynamicPJPerHop returns total per-hop dynamic energy at supply v.
func (m Model) DynamicPJPerHop(v float64) float64 {
	return m.DynamicBreakdown(v).Total()
}

// StaticWatts returns router+link leakage at supply v. Over the paper's
// 0.8-1.2 V window leakage is modeled linear in V (the V·I_leak product
// with weak DIBL dependence folded into the coefficient).
func (m Model) StaticWatts(v float64) float64 {
	r, t := m.Router, m.Tech
	bufferBits := float64(r.Ports * r.VCs * r.Depth * r.FlitBits)
	atNom := bufferBits*t.LeakUWPerBit*1e-6 + float64(r.Ports)*t.LeakMWPerPort*1e-3
	return atNom * v / t.Vnom
}
