package dsent

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
)

func TestCalibratedMatchesTableV(t *testing.T) {
	// The derived model must land on the paper's Table V (within its
	// printed rounding) at every V/F point.
	m := Calibrated()
	for _, p := range power.Table {
		dyn := m.DynamicPJPerHop(p.Volts)
		if math.Abs(dyn-p.DynamicPJHop)/p.DynamicPJHop > 0.005 {
			t.Errorf("%.1fV: derived %.2f pJ/hop, Table V says %.1f", p.Volts, dyn, p.DynamicPJHop)
		}
		st := m.StaticWatts(p.Volts)
		if math.Abs(st-p.StaticWatts)/p.StaticWatts > 0.015 {
			t.Errorf("%.1fV: derived %.4f W, Table V says %.3f", p.Volts, st, p.StaticWatts)
		}
	}
}

func TestDynamicScalesAsVSquared(t *testing.T) {
	m := Calibrated()
	base := m.DynamicPJPerHop(1.2)
	for _, v := range []float64{0.8, 0.9, 1.0, 1.1} {
		want := base * (v / 1.2) * (v / 1.2)
		if math.Abs(m.DynamicPJPerHop(v)-want) > 1e-9 {
			t.Errorf("dynamic at %gV violates CV² scaling", v)
		}
	}
}

func TestStaticScalesLinearly(t *testing.T) {
	m := Calibrated()
	base := m.StaticWatts(1.2)
	for _, v := range []float64{0.8, 0.9, 1.0, 1.1} {
		want := base * v / 1.2
		if math.Abs(m.StaticWatts(v)-want) > 1e-12 {
			t.Errorf("static at %gV violates linear scaling", v)
		}
	}
}

func TestBreakdownSums(t *testing.T) {
	m := Calibrated()
	c := m.DynamicBreakdown(1.0)
	if math.Abs(c.Total()-m.DynamicPJPerHop(1.0)) > 1e-12 {
		t.Fatal("breakdown does not sum to the total")
	}
	for _, part := range []float64{c.BufferWrite, c.BufferRead, c.Crossbar, c.Control, c.Link} {
		if part <= 0 {
			t.Fatal("every component must contribute")
		}
	}
	// DSENT's usual structure: the link dominates a 1 mm hop; reads cost
	// less than writes.
	if c.Link <= c.Crossbar || c.BufferRead >= c.BufferWrite {
		t.Errorf("unexpected component proportions: %+v", c)
	}
}

func TestMeshRouterCheaper(t *testing.T) {
	// A 5-port mesh router (smaller crossbar) must cost less than the
	// paper's 8-port cmesh worst case — the reason the paper uses cmesh
	// costs as the bound.
	mesh := PaperRouter()
	mesh.Ports = 5
	m, err := New(Tech22, mesh)
	if err != nil {
		t.Fatal(err)
	}
	cm := Calibrated()
	if m.DynamicPJPerHop(1.2) >= cm.DynamicPJPerHop(1.2) {
		t.Error("5-port router should switch less energy than 8-port")
	}
	if m.StaticWatts(1.2) >= cm.StaticWatts(1.2) {
		t.Error("5-port router should leak less than 8-port")
	}
}

func TestParameterValidation(t *testing.T) {
	bad := []RouterParams{
		{Ports: 1, VCs: 2, Depth: 4, FlitBits: 128, LinkMM: 1, ActivityFactor: 0.5},
		{Ports: 5, VCs: 0, Depth: 4, FlitBits: 128, LinkMM: 1, ActivityFactor: 0.5},
		{Ports: 5, VCs: 2, Depth: 0, FlitBits: 128, LinkMM: 1, ActivityFactor: 0.5},
		{Ports: 5, VCs: 2, Depth: 4, FlitBits: 0, LinkMM: 1, ActivityFactor: 0.5},
		{Ports: 5, VCs: 2, Depth: 4, FlitBits: 128, LinkMM: -1, ActivityFactor: 0.5},
		{Ports: 5, VCs: 2, Depth: 4, FlitBits: 128, LinkMM: 1, ActivityFactor: 0},
		{Ports: 5, VCs: 2, Depth: 4, FlitBits: 128, LinkMM: 1, ActivityFactor: 1.5},
	}
	for i, r := range bad {
		if _, err := New(Tech22, r); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := New(Tech{}, PaperRouter()); err == nil {
		t.Error("zero tech accepted")
	}
}

func TestMonotoneInParametersProperty(t *testing.T) {
	// Energy grows with flit width, ports and link length.
	f := func(seed uint8) bool {
		base := PaperRouter()
		m1, _ := New(Tech22, base)
		wide := base
		wide.FlitBits *= 2
		m2, _ := New(Tech22, wide)
		long := base
		long.LinkMM *= 2
		m3, _ := New(Tech22, long)
		v := 0.8 + float64(seed%5)*0.1
		return m2.DynamicPJPerHop(v) > m1.DynamicPJPerHop(v) &&
			m3.DynamicPJPerHop(v) > m1.DynamicPJPerHop(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
