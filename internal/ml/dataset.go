package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Dataset is a supervised regression dataset: one row per (router, epoch)
// sample with the Table IV features and the future-IBU label.
type Dataset struct {
	FeatureNames []string    `json:"feature_names,omitempty"`
	X            [][]float64 `json:"x"`
	Y            []float64   `json:"y"`
}

// NewDataset returns an empty dataset with named feature columns.
func NewDataset(names []string) *Dataset {
	return &Dataset{FeatureNames: append([]string(nil), names...)}
}

// Add appends one sample. The row is copied.
func (d *Dataset) Add(x []float64, y float64) {
	row := make([]float64, len(x))
	copy(row, x)
	d.X = append(d.X, row)
	d.Y = append(d.Y, y)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimensionality (0 when empty).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Merge appends all samples of o into d. Feature dimensions must match.
func (d *Dataset) Merge(o *Dataset) {
	if d.Len() > 0 && o.Len() > 0 && d.Dim() != o.Dim() {
		panic(fmt.Sprintf("ml: merging %d-dim into %d-dim dataset", o.Dim(), d.Dim()))
	}
	d.X = append(d.X, o.X...)
	d.Y = append(d.Y, o.Y...)
}

// Columns returns a derived dataset keeping only the selected feature
// columns (used by Fig 9's single-feature trade-off study, where each
// model is trained on the bias column plus one candidate feature).
func (d *Dataset) Columns(cols ...int) *Dataset {
	out := &Dataset{}
	for _, c := range cols {
		name := fmt.Sprintf("f%d", c)
		if c < len(d.FeatureNames) {
			name = d.FeatureNames[c]
		}
		out.FeatureNames = append(out.FeatureNames, name)
	}
	for i, row := range d.X {
		sub := make([]float64, len(cols))
		for j, c := range cols {
			sub[j] = row[c]
		}
		out.X = append(out.X, sub)
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadDatasetJSON deserializes a dataset.
func ReadDatasetJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("ml: decode dataset: %w", err)
	}
	return &d, nil
}

// SaveModel writes a trained ridge model to a JSON file.
func SaveModel(path string, m *Ridge) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ml: save model: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("ml: encode model: %w", err)
	}
	return f.Close()
}

// LoadModel reads a ridge model from a JSON file.
func LoadModel(path string) (*Ridge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ml: load model: %w", err)
	}
	defer f.Close()
	var m Ridge
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("ml: decode model: %w", err)
	}
	return &m, nil
}
