package ml

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error.
func MAE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - actual[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination.
func R2(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range actual {
		mean += v
	}
	mean /= float64(len(actual))
	var ssRes, ssTot float64
	for i := range actual {
		ssRes += (actual[i] - pred[i]) * (actual[i] - pred[i])
		ssTot += (actual[i] - mean) * (actual[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// ModeAccuracy is the paper's mode-selection accuracy: the fraction of
// samples where the predicted label and the true label fall in the same
// DVFS mode bucket. modeOf maps an IBU value to a mode bucket (the caller
// passes the Fig 3(b) threshold map).
func ModeAccuracy(pred, actual []float64, modeOf func(float64) int) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i := range pred {
		p := pred[i]
		if p < 0 {
			p = 0
		}
		if modeOf(p) == modeOf(actual[i]) {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

func mustSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: metric over %d vs %d values", len(a), len(b)))
	}
}

// Overhead quantifies the runtime cost of label generation (§III-D,
// "Machine Learning Overhead"): each label is nFeatures multiplies plus
// nFeatures-1 adds at Horowitz's 16-bit floating-point op costs.
type Overhead struct {
	Features  int
	EnergyPJ  float64
	AreaMM2   float64
	CyclesMin int
	CyclesMax int
}

// Horowitz op costs (16-bit float, 45nm-scaled as used by the paper).
const (
	AddEnergyPJ = 0.4
	MulEnergyPJ = 1.1
	AddAreaUM2  = 1360.0
	MulAreaUM2  = 1640.0
)

// LabelOverhead computes the per-label cost for a feature count; the
// paper's 5-feature set costs 7.1 pJ and 0.013 mm² versus 61.1 pJ and
// 0.122 mm² for the original 41 features.
func LabelOverhead(nFeatures int) Overhead {
	if nFeatures < 1 {
		nFeatures = 1
	}
	mults := nFeatures
	adds := nFeatures - 1
	return Overhead{
		Features:  nFeatures,
		EnergyPJ:  float64(mults)*MulEnergyPJ + float64(adds)*AddEnergyPJ,
		AreaMM2:   (float64(mults)*MulAreaUM2 + float64(adds)*AddAreaUM2) / 1e6,
		CyclesMin: 3,
		CyclesMax: 4,
	}
}
