package ml

import "math"

// Scaler standardizes feature columns to zero mean and unit variance,
// skipping the bias column. Constant columns pass through unchanged (their
// std is forced to 1 so the transform is the identity shift; the bias then
// absorbs their mean through the fitted weights).
type Scaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FitScaler learns column statistics from an n×d design matrix.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
			s.Mean[j] = 0 // leave constant columns (e.g. the bias) intact
		}
	}
	return s
}

// Transform returns a standardized copy of one feature vector.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row of X into a new matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
