// Package ml implements the paper's offline learning pipeline (§III-D):
// Ridge regression fitted by the closed-form normal equations, feature
// standardization, dataset handling for the train/validation/test trace
// split, the lambda hyper-parameter sweep, and the evaluation metrics
// (MSE and mode-selection accuracy) used by Figs 9 and 11.
//
// The matrices involved are tiny (the reduced feature set has 5 columns),
// so the package carries its own dense solver rather than an external
// dependency: Cholesky for the SPD ridge normal matrix with a pivoted
// Gaussian-elimination fallback.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("ml: singular system")

// Gram computes G = XᵀX for an n×d row-major design matrix.
func Gram(X [][]float64) [][]float64 {
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	G := Zeros(d, d)
	for _, row := range X {
		if len(row) != d {
			panic(fmt.Sprintf("ml: ragged design matrix row (%d vs %d)", len(row), d))
		}
		for i := 0; i < d; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			gi := G[i]
			for j := i; j < d; j++ {
				gi[j] += ri * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			G[j][i] = G[i][j]
		}
	}
	return G
}

// MatTVec computes v = Xᵀy.
func MatTVec(X [][]float64, y []float64) []float64 {
	if len(X) != len(y) {
		panic(fmt.Sprintf("ml: %d rows vs %d targets", len(X), len(y)))
	}
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	v := make([]float64, d)
	for r, row := range X {
		yr := y[r]
		for j := 0; j < d; j++ {
			v[j] += row[j] * yr
		}
	}
	return v
}

// Zeros returns an r×c zero matrix.
func Zeros(r, c int) [][]float64 {
	m := make([][]float64, r)
	cells := make([]float64, r*c)
	for i := range m {
		m[i], cells = cells[:c], cells[c:]
	}
	return m
}

// CloneMatrix deep-copies a matrix.
func CloneMatrix(m [][]float64) [][]float64 {
	out := Zeros(len(m), len(m[0]))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

// SolveSPD solves A x = b for a symmetric positive-definite A using
// Cholesky decomposition. A and b are not modified.
func SolveSPD(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("ml: bad SPD system dims (%d, %d)", n, len(b))
	}
	// L is lower-triangular with A = L Lᵀ.
	L := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := A[i][j]
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				L[i][i] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	// Forward solve L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L[i][k] * z[k]
		}
		z[i] = sum / L[i][i]
	}
	// Back solve Lᵀ x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= L[k][i] * x[k]
		}
		x[i] = sum / L[i][i]
	}
	return x, nil
}

// Solve solves A x = b by Gaussian elimination with partial pivoting.
// A and b are not modified. It handles general (non-SPD) systems and is
// the fallback when Cholesky rejects a near-singular normal matrix.
func Solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("ml: bad system dims (%d, %d)", n, len(b))
	}
	M := CloneMatrix(A)
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[p][col]) {
				p = r
			}
		}
		if math.Abs(M[p][col]) < 1e-12 {
			return nil, ErrSingular
		}
		M[col], M[p] = M[p], M[col]
		x[col], x[p] = x[p], x[col]
		inv := 1 / M[col][col]
		for r := col + 1; r < n; r++ {
			f := M[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for c := i + 1; c < n; c++ {
			sum -= M[i][c] * x[c]
		}
		x[i] = sum / M[i][i]
	}
	return x, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: dot of %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
