package ml

import (
	"errors"
	"fmt"
)

// Ridge is a linear model y = w·x fitted by Ridge regression:
//
//	E(w) = 1/2 Σ (w·xₙ - tₙ)² + λ/2 Σⱼ wⱼ²
//
// minimized in closed form by (XᵀX + λI) w = Xᵀy. Following common
// practice the bias column (feature 1, the "array of 1's" of Table IV) is
// exempt from the penalty.
type Ridge struct {
	Weights []float64 `json:"weights"`
	Lambda  float64   `json:"lambda"`
	Scaler  *Scaler   `json:"scaler,omitempty"`
}

// BiasColumn is the index of the unpenalized bias feature.
const BiasColumn = 0

// FitRidge fits a ridge model to an n×d design matrix and n targets.
// If scaler is non-nil the rows are standardized through it before
// fitting, and Predict applies the same transform.
func FitRidge(X [][]float64, y []float64, lambda float64, scaler *Scaler) (*Ridge, error) {
	if len(X) == 0 {
		return nil, errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("ml: %d rows vs %d targets", len(X), len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("ml: negative lambda %g", lambda)
	}
	rows := X
	if scaler != nil {
		rows = scaler.TransformAll(X)
	}
	G := Gram(rows)
	for j := range G {
		if j != BiasColumn {
			G[j][j] += lambda
		}
	}
	v := MatTVec(rows, y)
	w, err := SolveSPD(G, v)
	if err != nil {
		// The normal matrix can lose positive-definiteness to rounding
		// when features are collinear; fall back to pivoted elimination.
		w, err = Solve(G, v)
		if err != nil {
			return nil, fmt.Errorf("ml: ridge fit: %w", err)
		}
	}
	return &Ridge{Weights: w, Lambda: lambda, Scaler: scaler}, nil
}

// Predict evaluates the model on one raw (unscaled) feature vector.
func (m *Ridge) Predict(x []float64) float64 {
	if m.Scaler != nil {
		x = m.Scaler.Transform(x)
	}
	return Dot(m.Weights, x)
}

// PredictAll evaluates the model on every row of X.
func (m *Ridge) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = m.Predict(row)
	}
	return out
}
