package ml

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGram(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	G := Gram(X)
	// XtX = [[10, 14], [14, 20]]
	want := [][]float64{{10, 14}, {14, 20}}
	for i := range want {
		for j := range want[i] {
			if !almostEqual(G[i][j], want[i][j], 1e-12) {
				t.Fatalf("G[%d][%d] = %g, want %g", i, j, G[i][j], want[i][j])
			}
		}
	}
	if Gram(nil) != nil {
		t.Error("empty design should give nil Gram")
	}
}

func TestGramSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 3+rng.Intn(10), 2+rng.Intn(5)
		X := make([][]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
			}
		}
		G := Gram(X)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if !almostEqual(G[i][j], G[j][i], 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatTVec(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	v := MatTVec(X, []float64{1, 1})
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("Xty = %v, want [4 6]", v)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{3, 5}
	x, err := Solve(A, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 -> x=0.8, y=1.4
	if !almostEqual(x[0], 0.8, 1e-9) || !almostEqual(x[1], 1.4, 1e-9) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(A, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolveSPDMatchesGaussian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		// Build SPD A = M^T M + I.
		M := make([][]float64, d)
		for i := range M {
			M[i] = make([]float64, d)
			for j := range M[i] {
				M[i][j] = rng.NormFloat64()
			}
		}
		A := Gram(M)
		for i := 0; i < d; i++ {
			A[i][i] += 1
		}
		b := make([]float64, d)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := SolveSPD(A, b)
		x2, err2 := Solve(A, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if !almostEqual(x1[i], x2[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	A := [][]float64{{1, 0}, {0, -1}}
	if _, err := SolveSPD(A, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix accepted by Cholesky")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot product wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestRidgeRecoversExactLinear(t *testing.T) {
	// y = 2 + 3a - b exactly; lambda 0 must recover the coefficients.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		X = append(X, []float64{1, a, b})
		y = append(y, 2+3*a-b)
	}
	m, err := FitRidge(X, y, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Weights[0], 2, 1e-6) || !almostEqual(m.Weights[1], 3, 1e-6) || !almostEqual(m.Weights[2], -1, 1e-6) {
		t.Fatalf("weights = %v, want [2 3 -1]", m.Weights)
	}
	if !almostEqual(m.Predict([]float64{1, 1, 1}), 4, 1e-6) {
		t.Fatal("prediction wrong")
	}
}

func TestRidgeShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a := rng.NormFloat64()
		X = append(X, []float64{1, a})
		y = append(y, 5*a+0.1*rng.NormFloat64())
	}
	m0, _ := FitRidge(X, y, 0, nil)
	m9, _ := FitRidge(X, y, 1000, nil)
	if math.Abs(m9.Weights[1]) >= math.Abs(m0.Weights[1]) {
		t.Fatalf("lambda must shrink the slope: %g vs %g", m9.Weights[1], m0.Weights[1])
	}
}

func TestRidgeBiasUnpenalized(t *testing.T) {
	// With a huge lambda, slopes vanish but the bias still tracks the
	// target mean.
	var X [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		X = append(X, []float64{1, rng.NormFloat64()})
		y = append(y, 7.0)
	}
	m, err := FitRidge(X, y, 1e9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Weights[0], 7, 1e-3) {
		t.Fatalf("bias = %g, want ~7 (unpenalized)", m.Weights[0])
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := FitRidge(nil, nil, 0, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1, 2}, 0, nil); err == nil {
		t.Error("row/target mismatch accepted")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1}, -1, nil); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestRidgeWithScaler(t *testing.T) {
	// Badly scaled features: the scaler makes the fit robust and Predict
	// must apply the same transform.
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := 1e6 + 1e3*rng.NormFloat64()
		X = append(X, []float64{1, a})
		y = append(y, a/1e3)
	}
	sc := FitScaler(X)
	m, err := FitRidge(X, y, 1e-6, sc)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict([]float64{1, 1e6})
	if !almostEqual(pred, 1000, 1.0) {
		t.Fatalf("scaled prediction = %g, want ~1000", pred)
	}
}

func TestScalerStats(t *testing.T) {
	X := [][]float64{{1, 2}, {1, 4}, {1, 6}}
	s := FitScaler(X)
	if s.Mean[1] != 4 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !almostEqual(s.Std[1], math.Sqrt(8.0/3.0), 1e-9) {
		t.Fatalf("std = %v", s.Std)
	}
	// Constant (bias) column passes through unchanged.
	if s.Mean[0] != 0 || s.Std[0] != 1 {
		t.Fatalf("bias column transformed: mean=%g std=%g", s.Mean[0], s.Std[0])
	}
	tr := s.Transform([]float64{1, 4})
	if tr[0] != 1 || tr[1] != 0 {
		t.Fatalf("transform = %v", tr)
	}
	all := s.TransformAll(X)
	if len(all) != 3 {
		t.Fatal("TransformAll length wrong")
	}
	if FitScaler(nil) != nil {
		t.Error("empty scaler should be nil")
	}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset([]string{"bias", "x"})
	d.Add([]float64{1, 2}, 3)
	d.Add([]float64{1, 4}, 5)
	if d.Len() != 2 || d.Dim() != 2 {
		t.Fatalf("len/dim = %d/%d", d.Len(), d.Dim())
	}
	// Add copies rows.
	row := []float64{1, 9}
	d.Add(row, 0)
	row[1] = -1
	if d.X[2][1] != 9 {
		t.Fatal("Add did not copy the row")
	}
	var e Dataset
	e.Merge(d)
	if e.Len() != 3 {
		t.Fatal("merge failed")
	}
	cols := d.Columns(0)
	if cols.Dim() != 1 || cols.Len() != 3 || cols.FeatureNames[0] != "bias" {
		t.Fatalf("Columns = %+v", cols)
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := NewDataset([]string{"a"})
	d.Add([]float64{1.5}, 2.5)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatasetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.X[0][0] != 1.5 || got.Y[0] != 2.5 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestModelSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m := &Ridge{Weights: []float64{1, 2, 3}, Lambda: 0.5, Scaler: &Scaler{Mean: []float64{0, 1, 2}, Std: []float64{1, 1, 1}}}
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lambda != 0.5 || len(got.Weights) != 3 || got.Scaler == nil {
		t.Fatalf("loaded = %+v", got)
	}
	if _, err := LoadModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file load succeeded")
	}
}

func TestMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{1, 2, 5}
	if !almostEqual(MSE(pred, act), 4.0/3.0, 1e-12) {
		t.Errorf("MSE = %g", MSE(pred, act))
	}
	if !almostEqual(MAE(pred, act), 2.0/3.0, 1e-12) {
		t.Errorf("MAE = %g", MAE(pred, act))
	}
	if R2(act, act) != 1 {
		t.Error("perfect R2 should be 1")
	}
	if MSE(nil, nil) != 0 || MAE(nil, nil) != 0 || R2(nil, nil) != 0 {
		t.Error("empty metrics should be 0")
	}
}

func TestModeAccuracy(t *testing.T) {
	modeOf := func(v float64) int {
		if v < 0.5 {
			return 0
		}
		return 1
	}
	pred := []float64{0.1, 0.9, 0.6, -0.2}
	act := []float64{0.2, 0.8, 0.1, 0.3}
	// buckets: 0==0 hit, 1==1 hit, 1!=0 miss, clamp(-0.2)=0==0 hit.
	if got := ModeAccuracy(pred, act, modeOf); !almostEqual(got, 0.75, 1e-12) {
		t.Fatalf("accuracy = %g, want 0.75", got)
	}
}

func TestTuneLambdaPicksValidationBest(t *testing.T) {
	// Train data with noise: a mid lambda should beat extremes on a
	// differently-seeded validation set... at minimum the chosen lambda
	// must have the minimum recorded validation MSE.
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) *Dataset {
		d := NewDataset(nil)
		for i := 0; i < n; i++ {
			a := rng.NormFloat64()
			d.Add([]float64{1, a, rng.NormFloat64()}, 2*a+rng.NormFloat64()*0.5)
		}
		return d
	}
	train, val := mk(200), mk(100)
	rep, err := TuneLambda(train, val, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Sweep {
		if p.ValMSE < rep.BestVal.ValMSE-1e-12 {
			t.Fatalf("lambda %g has lower val MSE than chosen %g", p.Lambda, rep.BestVal.Lambda)
		}
	}
	if rep.Best == nil {
		t.Fatal("no model chosen")
	}
}

func TestTuneLambdaSkipsSingularZero(t *testing.T) {
	// A constant zero column makes lambda=0 singular; the sweep must
	// skip it and still produce a model.
	d := NewDataset(nil)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		a := rng.NormFloat64()
		d.Add([]float64{1, a, 0}, a)
	}
	rep, err := TuneLambda(d, d, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestVal.Lambda != 1 {
		t.Fatalf("chosen lambda = %g, want 1 (0 is singular)", rep.BestVal.Lambda)
	}
}

func TestTuneLambdaErrors(t *testing.T) {
	empty := NewDataset(nil)
	full := NewDataset(nil)
	full.Add([]float64{1}, 1)
	if _, err := TuneLambda(empty, full, nil); err == nil {
		t.Error("empty train accepted")
	}
	if _, err := TuneLambda(full, empty, nil); err == nil {
		t.Error("empty validation accepted")
	}
}

func TestLabelOverheadMatchesPaper(t *testing.T) {
	r := LabelOverhead(5)
	if !almostEqual(r.EnergyPJ, 7.1, 1e-9) {
		t.Errorf("5-feature energy = %g pJ, paper says 7.1", r.EnergyPJ)
	}
	if !almostEqual(r.AreaMM2, 0.0136, 1e-3) {
		t.Errorf("5-feature area = %g mm2, paper says 0.013", r.AreaMM2)
	}
	o := LabelOverhead(41)
	if !almostEqual(o.EnergyPJ, 61.1, 1e-9) {
		t.Errorf("41-feature energy = %g pJ, paper says 61.1", o.EnergyPJ)
	}
	if !almostEqual(o.AreaMM2, 0.1216, 1e-3) {
		t.Errorf("41-feature area = %g mm2, paper says 0.122", o.AreaMM2)
	}
	if LabelOverhead(0).Features != 1 {
		t.Error("feature floor wrong")
	}
}

func TestRidgeEqualsOLSAtZeroLambdaProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var X [][]float64
		var y []float64
		w := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		for i := 0; i < 60; i++ {
			row := []float64{1, rng.NormFloat64(), rng.NormFloat64()}
			X = append(X, row)
			y = append(y, Dot(w, row))
		}
		m, err := FitRidge(X, y, 0, nil)
		if err != nil {
			return false
		}
		for i := range w {
			if !almostEqual(m.Weights[i], w[i], 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
