package ml

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultLambdas is the hyper-parameter grid swept during validation
// (§III-D tunes λ "until the best-fitting solution is found").
var DefaultLambdas = []float64{0, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000}

// LambdaResult records one sweep point.
type LambdaResult struct {
	Lambda   float64
	ValMSE   float64
	TrainMSE float64
}

// TrainReport is the outcome of TuneLambda.
type TrainReport struct {
	Best    *Ridge
	BestVal LambdaResult
	Sweep   []LambdaResult
}

// TuneLambda fits one ridge model per candidate λ on the training set and
// selects the one minimizing validation MSE, mirroring the paper's
// 6-train/3-validation trace protocol. Features are standardized with
// statistics fitted on the training set only.
func TuneLambda(train, val *Dataset, lambdas []float64) (*TrainReport, error) {
	if train.Len() == 0 {
		return nil, errors.New("ml: empty training set")
	}
	if val.Len() == 0 {
		return nil, errors.New("ml: empty validation set")
	}
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas
	}
	scaler := FitScaler(train.X)
	rep := &TrainReport{}
	for _, lam := range lambdas {
		m, err := FitRidge(train.X, train.Y, lam, scaler)
		if errors.Is(err, ErrSingular) {
			// λ=0 with a constant (e.g. all-zero off-time under a
			// no-power-gating model) feature column has no unique OLS
			// solution; skip the grid point, ridge points regularize it.
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("ml: lambda %g: %w", lam, err)
		}
		res := LambdaResult{
			Lambda:   lam,
			ValMSE:   MSE(m.PredictAll(val.X), val.Y),
			TrainMSE: MSE(m.PredictAll(train.X), train.Y),
		}
		rep.Sweep = append(rep.Sweep, res)
		if rep.Best == nil || res.ValMSE < rep.BestVal.ValMSE {
			rep.Best, rep.BestVal = m, res
		}
	}
	if rep.Best == nil {
		return nil, errors.New("ml: every lambda produced a singular system")
	}
	sort.Slice(rep.Sweep, func(i, j int) bool { return rep.Sweep[i].Lambda < rep.Sweep[j].Lambda })
	return rep, nil
}
