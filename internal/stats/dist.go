package stats

// Sample statistics for comparing experiment arms: means with Student-t
// confidence intervals and the Mann-Whitney U test, in the style of
// golang.org/x/perf/benchstat (vendored here so cmd/benchtxt's -compare
// fallback and the sweep orchestrator's arm tables share one
// significance test instead of the old mean-only delta).

import (
	"fmt"
	"math"
	"sort"
)

// Alpha is the significance threshold shared by every consumer:
// comparisons whose Mann-Whitney p-value exceeds it are reported as
// indistinguishable (printed "~", benchstat-style).
const Alpha = 0.05

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// stdDev returns the sample (n-1) standard deviation.
func stdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tQuantile95 is the two-sided 95% Student-t quantile for 1..30 degrees
// of freedom; larger samples use the normal 1.960.
var tQuantile95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// Student-t confidence interval (0 for fewer than two values).
func MeanCI95(xs []float64) (mean, margin float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	t := 1.960
	if df := n - 1; df <= len(tQuantile95) {
		t = tQuantile95[df-1]
	}
	return mean, t * stdDev(xs) / math.Sqrt(float64(n))
}

// UTestResult is the outcome of a two-sided Mann-Whitney U test.
type UTestResult struct {
	N1, N2 int
	U      float64 // the smaller of U1/U2
	P      float64 // two-sided p-value
	Exact  bool    // exact small-sample distribution (no ties) vs normal approximation
}

// maxExactN bounds the exact U distribution: beyond 12 samples per side
// the normal approximation is accurate to well under the Alpha decision
// boundary, and the DP table stops being worth its cost.
const maxExactN = 12

// MannWhitneyUTest performs a two-sided Mann-Whitney (Wilcoxon rank-sum)
// U test of x against y. For small tie-free samples the exact permutation
// distribution is used; otherwise the tie-corrected,
// continuity-corrected normal approximation. Degenerate inputs (an empty
// side, or every observation identical) report p = 1: no evidence of a
// difference.
func MannWhitneyUTest(x, y []float64) UTestResult {
	r := UTestResult{N1: len(x), N2: len(y), P: 1}
	if len(x) == 0 || len(y) == 0 {
		return r
	}

	// Rank the pooled sample with average ranks for ties.
	type obs struct {
		v    float64
		side int // 0 = x, 1 = y
	}
	pool := make([]obs, 0, len(x)+len(y))
	for _, v := range x {
		pool = append(pool, obs{v, 0})
	}
	for _, v := range y {
		pool = append(pool, obs{v, 1})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })
	ranks := make([]float64, len(pool))
	ties := false
	var tieAdj float64 // sum of t^3 - t over tie groups
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		if t := j - i; t > 1 {
			ties = true
			tieAdj += float64(t*t*t - t)
		}
		i = j
	}

	var r1 float64 // rank sum of x
	for i, o := range pool {
		if o.side == 0 {
			r1 += ranks[i]
		}
	}
	n1, n2 := float64(len(x)), float64(len(y))
	u1 := r1 - n1*(n1+1)/2
	u2 := n1*n2 - u1
	r.U = math.Min(u1, u2)

	if !ties && len(x) <= maxExactN && len(y) <= maxExactN {
		r.Exact = true
		r.P = exactUTwoSided(len(x), len(y), int(r.U+0.5))
		return r
	}

	// Normal approximation with tie correction and 0.5 continuity
	// correction toward the mean.
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * (n + 1 - tieAdj/(n*(n-1)))
	if sigma2 <= 0 {
		return r // every observation identical
	}
	mu := n1 * n2 / 2
	z := (math.Abs(r.U-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	r.P = 2 * (1 - normCDF(z))
	if r.P > 1 {
		r.P = 1
	}
	return r
}

// exactUTwoSided returns the exact two-sided p-value P(U <= u)*2 (capped
// at 1) for tie-free samples of size n and m, from the permutation
// distribution of the U statistic.
func exactUTwoSided(n, m, u int) float64 {
	// counts[k] = number of the C(n+m, n) arrangements with U = k,
	// built by the standard recurrence c(n,m,k) = c(n-1,m,k-m) + c(n,m-1,k).
	prev := make([][]int64, m+1) // prev[j] = distribution for (i-1 rows, j)
	for j := 0; j <= m; j++ {
		prev[j] = []int64{1} // c(0, j, 0) = 1
	}
	for i := 1; i <= n; i++ {
		cur := make([][]int64, m+1)
		cur[0] = []int64{1} // c(i, 0, 0) = 1
		for j := 1; j <= m; j++ {
			c := make([]int64, i*j+1)
			for k := range c {
				if k-j >= 0 && k-j < len(prev[j]) {
					c[k] += prev[j][k-j]
				}
				if k < len(cur[j-1]) {
					c[k] += cur[j-1][k]
				}
			}
			cur[j] = c
		}
		prev = cur
	}
	dist := prev[m]
	var cum, total int64
	for k, c := range dist {
		total += c
		if k <= u {
			cum += c
		}
	}
	p := 2 * float64(cum) / float64(total)
	if p > 1 {
		p = 1
	}
	return p
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Delta compares two samples of one metric (an "old" and a "new" arm):
// means with 95% CIs, the percent change of the mean, and Mann-Whitney
// significance at Alpha.
type Delta struct {
	OldMean, OldMargin float64
	NewMean, NewMargin float64
	Pct                float64 // 100 * (new-old)/old; 0 when old == 0
	U                  UTestResult
	Significant        bool // U.P < Alpha
}

// CompareSamples builds a Delta between two samples.
func CompareSamples(old, new []float64) Delta {
	d := Delta{}
	d.OldMean, d.OldMargin = MeanCI95(old)
	d.NewMean, d.NewMargin = MeanCI95(new)
	if d.OldMean != 0 {
		d.Pct = 100 * (d.NewMean - d.OldMean) / d.OldMean
	}
	d.U = MannWhitneyUTest(old, new)
	d.Significant = d.U.P < Alpha
	return d
}

// PctString renders the percent delta benchstat-style: "~" when the
// Mann-Whitney test cannot distinguish the samples at Alpha, the signed
// percentage otherwise.
func (d Delta) PctString() string {
	if !d.Significant {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", d.Pct)
}
