package stats

import (
	"math"
	"testing"
)

func TestMeanCI95(t *testing.T) {
	m, ci := MeanCI95([]float64{10, 10, 10})
	if m != 10 || ci != 0 {
		t.Errorf("constant sample: mean=%v ci=%v, want 10, 0", m, ci)
	}
	m, ci = MeanCI95([]float64{8, 10, 12})
	if m != 10 {
		t.Errorf("mean = %v, want 10", m)
	}
	// s = 2, n = 3, df = 2 -> t = 4.303, margin = 4.303*2/sqrt(3)
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(ci-want) > 1e-9 {
		t.Errorf("ci = %v, want %v", ci, want)
	}
	if m, ci := MeanCI95(nil); m != 0 || ci != 0 {
		t.Errorf("empty sample: %v, %v", m, ci)
	}
	if _, ci := MeanCI95([]float64{5}); ci != 0 {
		t.Errorf("single observation has a CI: %v", ci)
	}
}

// TestMannWhitneyExactSeparated pins the exact small-sample distribution
// against hand-computed values: complete separation of n=m=3 gives U=0
// and two-sided p = 2/C(6,3) = 0.1; n=m=4 gives p = 2/C(8,4) = 2/70.
func TestMannWhitneyExactSeparated(t *testing.T) {
	r := MannWhitneyUTest([]float64{1, 2, 3}, []float64{4, 5, 6})
	if !r.Exact || r.U != 0 {
		t.Fatalf("n=3: exact=%v U=%v, want exact U=0", r.Exact, r.U)
	}
	if math.Abs(r.P-0.1) > 1e-12 {
		t.Errorf("n=3 separated p = %v, want 0.1", r.P)
	}

	r = MannWhitneyUTest([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})
	if want := 2.0 / 70.0; !r.Exact || math.Abs(r.P-want) > 1e-12 {
		t.Errorf("n=4 separated p = %v (exact=%v), want %v", r.P, r.Exact, want)
	}
	// The direction cannot matter.
	r2 := MannWhitneyUTest([]float64{5, 6, 7, 8}, []float64{1, 2, 3, 4})
	if r2.P != r.P || r2.U != r.U {
		t.Errorf("asymmetric: %+v vs %+v", r, r2)
	}
}

// TestMannWhitneyExactInterleaved: perfectly interleaved samples are
// indistinguishable — U sits at its central value and p is large.
func TestMannWhitneyExactInterleaved(t *testing.T) {
	r := MannWhitneyUTest([]float64{1, 3, 5, 7}, []float64{2, 4, 6, 8})
	if r.P < 0.5 {
		t.Errorf("interleaved samples significant: p = %v", r.P)
	}
	if r.P > 1 {
		t.Errorf("p > 1: %v", r.P)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if r := MannWhitneyUTest(nil, []float64{1, 2}); r.P != 1 {
		t.Errorf("empty side p = %v, want 1", r.P)
	}
	// All observations identical: ties drop the exact path and the
	// variance collapses; no difference is detectable.
	if r := MannWhitneyUTest([]float64{5, 5, 5}, []float64{5, 5}); r.P != 1 || r.Exact {
		t.Errorf("all-tied p = %v exact=%v, want 1, false", r.P, r.Exact)
	}
}

// TestMannWhitneyApproxMatchesExact: the normal approximation (forced via
// a tie) must land near the exact answer for a clearly separated sample.
func TestMannWhitneyApproxMatchesExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{11, 12, 13, 14, 15, 16, 17, 18}
	exact := MannWhitneyUTest(x, y)
	if !exact.Exact {
		t.Fatal("expected the exact path")
	}
	// Introduce a tie within x only; the rank structure across sides is
	// unchanged, but the test must switch to the approximation.
	x2 := []float64{1, 2, 3, 4, 5, 6, 7, 7}
	approx := MannWhitneyUTest(x2, y)
	if approx.Exact {
		t.Fatal("tied sample took the exact path")
	}
	if approx.P > Alpha || exact.P > Alpha {
		t.Errorf("separated n=8 samples not significant: exact=%v approx=%v", exact.P, approx.P)
	}
}

// TestMannWhitneyLargeSamples exercises the approximation path on sample
// sizes beyond the exact cutoff.
func TestMannWhitneyLargeSamples(t *testing.T) {
	var x, y []float64
	for i := 0; i < 20; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+30)
	}
	r := MannWhitneyUTest(x, y)
	if r.Exact {
		t.Fatal("n=20 took the exact path")
	}
	if r.P > 1e-6 {
		t.Errorf("fully separated n=20 p = %v", r.P)
	}
}

func TestCompareSamples(t *testing.T) {
	old := []float64{100, 101, 102, 99}
	new := []float64{80, 81, 82, 79}
	d := CompareSamples(old, new)
	if !d.Significant {
		t.Fatalf("clear -20%% shift insignificant: p=%v", d.U.P)
	}
	if math.Abs(d.Pct - -20.0) > 0.5 {
		t.Errorf("Pct = %v, want about -20", d.Pct)
	}
	if s := d.PctString(); s != "-19.90%" {
		t.Errorf("PctString = %q", s)
	}

	noisy := CompareSamples([]float64{100, 90}, []float64{95, 96})
	if noisy.Significant {
		t.Errorf("two-observation noise significant: p=%v", noisy.U.P)
	}
	if s := noisy.PctString(); s != "~" {
		t.Errorf("insignificant PctString = %q, want ~", s)
	}

	zero := CompareSamples([]float64{0, 0}, []float64{1, 2})
	if zero.Pct != 0 {
		t.Errorf("zero-mean old Pct = %v, want 0", zero.Pct)
	}
}
