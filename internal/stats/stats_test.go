package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	v := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(v, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := Percentile(v, 100); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := Percentile(v, 0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Clamping.
	if Percentile(v, -5) != 1 || Percentile(v, 200) != 10 {
		t.Error("percentile clamping wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []int64{3, 1, 2}
	Percentile(v, 50)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("input slice mutated")
	}
}

func TestPercentileOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]int64, len(raw))
		for i, x := range raw {
			v[i] = int64(x)
		}
		return Percentile(v, 50) <= Percentile(v, 95) &&
			Percentile(v, 95) <= Percentile(v, 99) &&
			Percentile(v, 99) <= Percentile(v, 100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{10, 20, 30, 40})
	if s.Count != 4 || s.Mean != 25 || s.Max != 40 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 20 {
		t.Errorf("p50 = %d", s.P50)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Error("empty summary wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []int64{0, 5, 15, 35, 39, 40, 1000, -3} {
		h.Add(v)
	}
	if h.Counts[0] != 3 { // 0, 5, -3 (clamped)
		t.Errorf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[3] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d", h.Overflow)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram accepted")
		}
	}()
	NewHistogram(0, 10)
}

func TestSeriesCSV(t *testing.T) {
	s := &Series{EpochTicks: 500}
	s.Add(EpochSample{Tick: 500, AvgIBU: 0.1, OffRouters: 3, ModeRouters: [5]int{1, 0, 0, 0, 12}, FlitsDelivered: 42, StaticJ: 1e-6})
	s.Add(EpochSample{Tick: 1000, AvgIBU: 0.2})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tick,avg_ibu,off") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "500,0.1,3,") {
		t.Errorf("row = %q", lines[1])
	}
}
