// Package stats provides run statistics utilities: latency percentiles,
// histograms, and per-epoch time series with CSV export for plotting the
// paper's figures from raw runs.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(values []int64, p float64) int64 {
	if len(values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// LatencySummary condenses a latency population.
type LatencySummary struct {
	Count int64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
}

// Summarize computes a LatencySummary (values in base ticks).
func Summarize(values []int64) LatencySummary {
	s := LatencySummary{Count: int64(len(values))}
	if len(values) == 0 {
		return s
	}
	var sum int64
	for _, v := range values {
		sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(sum) / float64(len(values))
	s.P50 = Percentile(values, 50)
	s.P95 = Percentile(values, 95)
	s.P99 = Percentile(values, 99)
	return s
}

// Histogram bins values into equal-width buckets over [0, max].
type Histogram struct {
	BucketWidth int64
	Counts      []int64
	Overflow    int64
}

// NewHistogram builds a histogram with n buckets of the given width.
func NewHistogram(buckets int, width int64) *Histogram {
	if buckets < 1 || width < 1 {
		panic(fmt.Sprintf("stats: bad histogram shape %d x %d", buckets, width))
	}
	return &Histogram{BucketWidth: width, Counts: make([]int64, buckets)}
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	b := int(v / h.BucketWidth)
	if b >= len(h.Counts) {
		h.Overflow++
		return
	}
	h.Counts[b]++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 {
	t := h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// EpochSample is one network-wide snapshot taken at an epoch boundary.
type EpochSample struct {
	Tick           int64
	AvgIBU         float64 // network-average input-buffer utilization
	OffRouters     int     // routers power-gated at the boundary
	WakingRouters  int
	ModeRouters    [5]int // active routers per mode M3..M7
	FlitsDelivered int64  // cumulative
	StaticJ        float64
	DynamicJ       float64
}

// Series is a run's per-epoch time series.
type Series struct {
	EpochTicks int64
	Samples    []EpochSample
}

// Add appends a sample.
func (s *Series) Add(e EpochSample) { s.Samples = append(s.Samples, e) }

// WriteCSV exports the series as one row per epoch, suitable for
// regenerating the paper's time-resolved figures with any plotting tool.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := []string{"tick", "avg_ibu", "off", "waking", "m3", "m4", "m5", "m6", "m7", "flits", "static_j", "dynamic_j"}
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, e := range s.Samples {
		rec := []string{
			strconv.FormatInt(e.Tick, 10),
			strconv.FormatFloat(e.AvgIBU, 'g', 6, 64),
			strconv.Itoa(e.OffRouters),
			strconv.Itoa(e.WakingRouters),
			strconv.Itoa(e.ModeRouters[0]),
			strconv.Itoa(e.ModeRouters[1]),
			strconv.Itoa(e.ModeRouters[2]),
			strconv.Itoa(e.ModeRouters[3]),
			strconv.Itoa(e.ModeRouters[4]),
			strconv.FormatInt(e.FlitsDelivered, 10),
			strconv.FormatFloat(e.StaticJ, 'e', 6, 64),
			strconv.FormatFloat(e.DynamicJ, 'e', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
