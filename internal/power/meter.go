package power

// Meter accumulates static and dynamic energy for one router (and its
// outgoing links) across a simulation, plus the per-mode residency
// histogram used by Fig 7 and the power-gating event log used to audit
// T-Breakeven compliance.
type Meter struct {
	staticJ  float64
	dynamicJ float64

	// residencyTicks[s] counts base ticks spent with the meter's state s:
	// index 0 = inactive, 1 = wakeup, 2..6 = modes M3..M7.
	residencyTicks [2 + NumActiveModes]int64

	hops int64
}

// stateIndex maps a mode (Inactive/Wakeup/M3..M7) to a residency slot.
func stateIndex(m Mode) int {
	switch m {
	case Inactive:
		return 0
	case Wakeup:
		return 1
	}
	return 2 + m.Index()
}

// TickStatic bills dt seconds of leakage for a router in state m (waking
// into wakeTarget when m == Wakeup) and records residency.
func (mt *Meter) TickStatic(m Mode, wakeTarget Mode, dtSeconds float64) {
	var w float64
	switch m {
	case Inactive:
		w = 0
	case Wakeup:
		w = StaticWattsWaking(wakeTarget)
	default:
		w = StaticWatts(m)
	}
	mt.staticJ += w * dtSeconds
	mt.residencyTicks[stateIndex(m)]++
}

// AddHop bills one flit hop at mode m.
func (mt *Meter) AddHop(m Mode) {
	mt.dynamicJ += DynamicPJPerHop(m) * 1e-12
	mt.hops++
}

// StaticJoules returns accumulated leakage energy.
func (mt *Meter) StaticJoules() float64 { return mt.staticJ }

// DynamicJoules returns accumulated switching energy.
func (mt *Meter) DynamicJoules() float64 { return mt.dynamicJ }

// TotalJoules returns static + dynamic energy.
func (mt *Meter) TotalJoules() float64 { return mt.staticJ + mt.dynamicJ }

// Hops returns the number of flit hops billed.
func (mt *Meter) Hops() int64 { return mt.hops }

// ResidencyTicks returns base ticks spent in state m (Wakeup residency is
// keyed by Wakeup regardless of target).
func (mt *Meter) ResidencyTicks(m Mode) int64 { return mt.residencyTicks[stateIndex(m)] }

// OffTicks returns base ticks spent power-gated.
func (mt *Meter) OffTicks() int64 { return mt.residencyTicks[0] }

// Add merges another meter into mt (used to aggregate per-router meters
// into a network total).
func (mt *Meter) Add(o *Meter) {
	mt.staticJ += o.staticJ
	mt.dynamicJ += o.dynamicJ
	mt.hops += o.hops
	for i := range mt.residencyTicks {
		mt.residencyTicks[i] += o.residencyTicks[i]
	}
}

// Reset zeroes the meter.
func (mt *Meter) Reset() { *mt = Meter{} }
