package power

import "repro/internal/timing"

// Meter accumulates static and dynamic energy for one router (and its
// outgoing links) across a simulation, plus the per-mode residency
// histogram used by Fig 7 and the power-gating event log used to audit
// T-Breakeven compliance.
//
// Static energy is accounted in integer base ticks per billing state and
// converted to joules on demand. Because the stored state is a set of
// integer counters, billing n ticks in one AddStatic call is exactly —
// bit for bit — equal to n single-tick calls, which is what lets the
// simulation engine fast-forward quiescent stretches without perturbing
// energy results.
type Meter struct {
	dynamicJ float64

	// residencyTicks[s] counts base ticks spent with the meter's state s:
	// index 0 = inactive, 1 = wakeup, 2..6 = modes M3..M7.
	residencyTicks [2 + NumActiveModes]int64
	// wakeTicks[t] counts wakeup base ticks charging toward active mode
	// M3+t (wakeup leakage depends on the wake target).
	wakeTicks [NumActiveModes]int64

	hops int64
}

// stateIndex maps a mode (Inactive/Wakeup/M3..M7) to a residency slot.
func stateIndex(m Mode) int {
	switch m {
	case Inactive:
		return 0
	case Wakeup:
		return 1
	}
	return 2 + m.Index()
}

// AddStatic bills ticks base ticks of leakage for a router in state m
// (waking into wakeTarget when m == Wakeup) and records residency.
func (mt *Meter) AddStatic(m Mode, wakeTarget Mode, ticks int64) {
	mt.residencyTicks[stateIndex(m)] += ticks
	if m == Wakeup {
		mt.wakeTicks[wakeTarget.Index()] += ticks
	}
}

// AddHop bills one flit hop at mode m.
func (mt *Meter) AddHop(m Mode) {
	mt.dynamicJ += DynamicPJPerHop(m) * 1e-12
	mt.hops++
}

// StaticJoules returns accumulated leakage energy. It is a pure function
// of the integer residency counters, so it is deterministic regardless of
// how the ticks were batched.
func (mt *Meter) StaticJoules() float64 {
	j := 0.0
	for i := 0; i < NumActiveModes; i++ {
		m := ActiveMode(i)
		j += float64(mt.wakeTicks[i]) * StaticWattsWaking(m)
		j += float64(mt.residencyTicks[2+i]) * StaticWatts(m)
	}
	return j * timing.TickSeconds
}

// DynamicJoules returns accumulated switching energy.
func (mt *Meter) DynamicJoules() float64 { return mt.dynamicJ }

// TotalJoules returns static + dynamic energy.
func (mt *Meter) TotalJoules() float64 { return mt.StaticJoules() + mt.dynamicJ }

// Hops returns the number of flit hops billed.
func (mt *Meter) Hops() int64 { return mt.hops }

// ResidencyTicks returns base ticks spent in state m (Wakeup residency is
// keyed by Wakeup regardless of target).
func (mt *Meter) ResidencyTicks(m Mode) int64 { return mt.residencyTicks[stateIndex(m)] }

// OffTicks returns base ticks spent power-gated.
func (mt *Meter) OffTicks() int64 { return mt.residencyTicks[0] }

// Add merges another meter into mt (used to aggregate per-router meters
// into a network total).
func (mt *Meter) Add(o *Meter) {
	mt.dynamicJ += o.dynamicJ
	mt.hops += o.hops
	for i := range mt.residencyTicks {
		mt.residencyTicks[i] += o.residencyTicks[i]
	}
	for i := range mt.wakeTicks {
		mt.wakeTicks[i] += o.wakeTicks[i]
	}
}

// Reset zeroes the meter.
func (mt *Meter) Reset() { *mt = Meter{} }
