// Package power encodes the paper's DSENT-derived power model (Table V,
// 22 nm, 128-bit flits) and provides an energy-accounting meter.
//
// A router and its outgoing links share one voltage/frequency domain. While
// a router is in an active mode m it leaks StaticWatts(m) continuously;
// every flit hop across the router plus one outgoing link costs
// DynamicPJPerHop(m) picojoules at the mode the sending router runs in.
// While inactive the router leaks nothing; while waking up it burns the
// static power of the mode it is waking into (§III-A, wakeup state).
package power

import "fmt"

// Mode is a router operating mode. The paper numbers modes so that mode 1
// is the power-gated (inactive) state, mode 2 is the wakeup state, and
// modes 3-7 are the five active V/F pairs in ascending voltage.
type Mode int

const (
	// Inactive is the power-gated state (0 V).
	Inactive Mode = 1
	// Wakeup is the transitional state charging local voltage to Vdd.
	Wakeup Mode = 2
	// M3..M7 are the active V/F pairs 0.8V/1GHz .. 1.2V/2.25GHz.
	M3 Mode = 3
	M4 Mode = 4
	M5 Mode = 5
	M6 Mode = 6
	M7 Mode = 7
)

// MinActive and MaxActive bound the active modes.
const (
	MinActive = M3
	MaxActive = M7
)

// NumActiveModes is the number of active V/F pairs.
const NumActiveModes = 5

// IsActive reports whether m is one of the five active V/F modes.
func (m Mode) IsActive() bool { return m >= MinActive && m <= MaxActive }

// Index returns the 0-based active-mode index (M3 -> 0 .. M7 -> 4).
// It panics for non-active modes.
func (m Mode) Index() int {
	if !m.IsActive() {
		panic(fmt.Sprintf("power: Index of non-active mode %d", m))
	}
	return int(m - MinActive)
}

// ActiveMode returns the active mode for a 0-based index.
func ActiveMode(index int) Mode {
	if index < 0 || index >= NumActiveModes {
		panic(fmt.Sprintf("power: active-mode index %d out of range", index))
	}
	return MinActive + Mode(index)
}

// String renders a mode ("inactive", "wakeup", "M3".."M7").
func (m Mode) String() string {
	switch m {
	case Inactive:
		return "inactive"
	case Wakeup:
		return "wakeup"
	}
	if m.IsActive() {
		return fmt.Sprintf("M%d", int(m))
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// VFPoint is one voltage/frequency operating point with its Table V costs.
type VFPoint struct {
	Mode         Mode
	Volts        float64
	FreqMHz      int
	StaticWatts  float64 // router + outgoing links leakage (J/s)
	StaticPerCyc float64 // Table V's normalized "Static Power (Cycle)" column
	DynamicPJHop float64 // pJ per flit hop across router + one link
}

// Table is Table V of the paper: static power and dynamic energy to hop
// across the router and a link at 22 nm, per active mode.
var Table = [NumActiveModes]VFPoint{
	{Mode: M3, Volts: 0.8, FreqMHz: 1000, StaticWatts: 0.036, StaticPerCyc: 0.667, DynamicPJHop: 25.1},
	{Mode: M4, Volts: 0.9, FreqMHz: 1500, StaticWatts: 0.041, StaticPerCyc: 0.750, DynamicPJHop: 31.8},
	{Mode: M5, Volts: 1.0, FreqMHz: 1800, StaticWatts: 0.045, StaticPerCyc: 0.833, DynamicPJHop: 39.2},
	{Mode: M6, Volts: 1.1, FreqMHz: 2000, StaticWatts: 0.050, StaticPerCyc: 0.917, DynamicPJHop: 47.5},
	{Mode: M7, Volts: 1.2, FreqMHz: 2250, StaticWatts: 0.054, StaticPerCyc: 1.0, DynamicPJHop: 56.5},
}

// Point returns the VFPoint of an active mode.
func Point(m Mode) VFPoint { return Table[m.Index()] }

// FreqMHz returns the clock frequency of an active mode in MHz.
func FreqMHz(m Mode) int { return Point(m).FreqMHz }

// Volts returns the supply voltage of an active mode.
func Volts(m Mode) float64 { return Point(m).Volts }

// StaticWatts returns leakage power in watts for a router in mode m.
// Inactive leaks nothing; Wakeup callers should bill the target mode via
// StaticWattsWaking.
func StaticWatts(m Mode) float64 {
	if m == Inactive {
		return 0
	}
	if m == Wakeup {
		// Callers that know the wake target should use that mode; as a
		// conservative default the wakeup state is billed at the highest
		// mode (the paper bills wakeup at active-state power).
		return Table[NumActiveModes-1].StaticWatts
	}
	return Point(m).StaticWatts
}

// StaticWattsWaking returns leakage during wakeup into target mode; the
// paper states a waking router consumes the same power as if active.
func StaticWattsWaking(target Mode) float64 {
	if !target.IsActive() {
		target = MaxActive
	}
	return Point(target).StaticWatts
}

// DynamicPJPerHop returns the dynamic energy in pJ charged when a flit
// traverses a router and its outgoing link at mode m.
func DynamicPJPerHop(m Mode) float64 {
	if !m.IsActive() {
		panic(fmt.Sprintf("power: dynamic hop energy in non-active mode %v", m))
	}
	return Point(m).DynamicPJHop
}

// ModeForVolts returns the active mode with the given supply voltage
// (exact match on the five Table V points) and whether one matched.
func ModeForVolts(v float64) (Mode, bool) {
	for _, p := range Table {
		if p.Volts == v {
			return p.Mode, true
		}
	}
	return 0, false
}
