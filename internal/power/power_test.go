package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func TestModeNumbering(t *testing.T) {
	// The paper numbers inactive=1, wakeup=2, active=3..7.
	if Inactive != 1 || Wakeup != 2 || M3 != 3 || M7 != 7 {
		t.Fatal("mode numbering diverges from the paper")
	}
	if NumActiveModes != 5 {
		t.Fatalf("NumActiveModes = %d, want 5", NumActiveModes)
	}
}

func TestIsActive(t *testing.T) {
	for m := M3; m <= M7; m++ {
		if !m.IsActive() {
			t.Errorf("%v should be active", m)
		}
	}
	if Inactive.IsActive() || Wakeup.IsActive() {
		t.Error("inactive/wakeup should not be active")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumActiveModes; i++ {
		if ActiveMode(i).Index() != i {
			t.Errorf("ActiveMode(%d).Index() != %d", i, i)
		}
	}
}

func TestIndexPanicsOnInactive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index of inactive did not panic")
		}
	}()
	Inactive.Index()
}

func TestTableVValues(t *testing.T) {
	// Table V verbatim.
	wantVolts := []float64{0.8, 0.9, 1.0, 1.1, 1.2}
	wantFreq := []int{1000, 1500, 1800, 2000, 2250}
	wantStatic := []float64{0.036, 0.041, 0.045, 0.050, 0.054}
	wantDyn := []float64{25.1, 31.8, 39.2, 47.5, 56.5}
	for i, p := range Table {
		if p.Volts != wantVolts[i] || p.FreqMHz != wantFreq[i] {
			t.Errorf("row %d V/F = %g/%d", i, p.Volts, p.FreqMHz)
		}
		if p.StaticWatts != wantStatic[i] {
			t.Errorf("row %d static = %g", i, p.StaticWatts)
		}
		if p.DynamicPJHop != wantDyn[i] {
			t.Errorf("row %d dynamic = %g", i, p.DynamicPJHop)
		}
	}
}

func TestTableMonotone(t *testing.T) {
	for i := 1; i < NumActiveModes; i++ {
		if Table[i].StaticWatts <= Table[i-1].StaticWatts {
			t.Error("static power must increase with voltage")
		}
		if Table[i].DynamicPJHop <= Table[i-1].DynamicPJHop {
			t.Error("dynamic energy must increase with voltage")
		}
		if Table[i].FreqMHz <= Table[i-1].FreqMHz {
			t.Error("frequency must increase with voltage")
		}
	}
}

func TestStaticPerCycleColumn(t *testing.T) {
	// The normalized column is static relative to M7.
	for _, p := range Table {
		want := p.StaticWatts / Table[NumActiveModes-1].StaticWatts
		if math.Abs(p.StaticPerCyc-want) > 0.02 {
			t.Errorf("mode %v: static/cycle %g vs ratio %g", p.Mode, p.StaticPerCyc, want)
		}
	}
}

func TestStaticWatts(t *testing.T) {
	if StaticWatts(Inactive) != 0 {
		t.Error("inactive must leak nothing")
	}
	if StaticWatts(Wakeup) != Table[NumActiveModes-1].StaticWatts {
		t.Error("wakeup default bill must be the highest mode")
	}
	if StaticWatts(M3) != 0.036 {
		t.Errorf("M3 static = %g", StaticWatts(M3))
	}
	if StaticWattsWaking(M4) != 0.041 {
		t.Errorf("waking into M4 = %g", StaticWattsWaking(M4))
	}
	if StaticWattsWaking(Inactive) != 0.054 {
		t.Error("waking into a non-active target bills worst case")
	}
}

func TestDynamicPanicsWhenOff(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dynamic energy while inactive did not panic")
		}
	}()
	DynamicPJPerHop(Inactive)
}

func TestModeForVolts(t *testing.T) {
	for _, p := range Table {
		m, ok := ModeForVolts(p.Volts)
		if !ok || m != p.Mode {
			t.Errorf("ModeForVolts(%g) = %v, %v", p.Volts, m, ok)
		}
	}
	if _, ok := ModeForVolts(0.85); ok {
		t.Error("0.85V should not match")
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{Inactive: "inactive", Wakeup: "wakeup", M3: "M3", M7: "M7"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestMeterStatic(t *testing.T) {
	// One second's worth of base ticks at M7 bills 0.054 J.
	secTicks := int64(timing.BaseFreqMHz) * 1_000_000
	var m Meter
	m.AddStatic(M7, 0, secTicks)
	if got := m.StaticJoules(); math.Abs(got-0.054) > 1e-12 {
		t.Fatalf("1 s at M7 = %g J, want 0.054", got)
	}
	m.AddStatic(Inactive, 0, secTicks)
	if got := m.StaticJoules(); math.Abs(got-0.054) > 1e-12 {
		t.Fatal("inactive second must add nothing")
	}
	m.AddStatic(Wakeup, M3, secTicks)
	if got := m.StaticJoules(); math.Abs(got-0.090) > 1e-12 {
		t.Fatalf("wakeup into M3 must bill M3 power, total %g", got)
	}
}

func TestMeterBatchedStaticIsBitIdentical(t *testing.T) {
	// The fast-forward invariant: billing n ticks at once equals n
	// single-tick bills exactly, not just approximately.
	var one, batch Meter
	for i := 0; i < 12345; i++ {
		one.AddStatic(M5, 0, 1)
	}
	for i := 0; i < 678; i++ {
		one.AddStatic(Wakeup, M6, 1)
	}
	batch.AddStatic(M5, 0, 12345)
	batch.AddStatic(Wakeup, M6, 678)
	if one.StaticJoules() != batch.StaticJoules() {
		t.Fatalf("batched %v != per-tick %v", batch.StaticJoules(), one.StaticJoules())
	}
	if one.ResidencyTicks(M5) != batch.ResidencyTicks(M5) || one.ResidencyTicks(Wakeup) != batch.ResidencyTicks(Wakeup) {
		t.Fatal("residency counters diverge")
	}
}

func TestMeterDynamic(t *testing.T) {
	var m Meter
	m.AddHop(M3)
	m.AddHop(M7)
	want := (25.1 + 56.5) * 1e-12
	if got := m.DynamicJoules(); math.Abs(got-want) > 1e-18 {
		t.Fatalf("two hops = %g J, want %g", got, want)
	}
	if m.Hops() != 2 {
		t.Fatalf("hops = %d", m.Hops())
	}
	if math.Abs(m.TotalJoules()-m.DynamicJoules()) > 1e-18 {
		t.Error("total should equal dynamic when no static billed")
	}
}

func TestMeterResidency(t *testing.T) {
	var m Meter
	for i := 0; i < 10; i++ {
		m.AddStatic(Inactive, 0, 1)
	}
	for i := 0; i < 5; i++ {
		m.AddStatic(M4, 0, 1)
	}
	m.AddStatic(Wakeup, M4, 1)
	if m.OffTicks() != 10 {
		t.Errorf("off ticks = %d, want 10", m.OffTicks())
	}
	if m.ResidencyTicks(M4) != 5 {
		t.Errorf("M4 ticks = %d, want 5", m.ResidencyTicks(M4))
	}
	if m.ResidencyTicks(Wakeup) != 1 {
		t.Errorf("wakeup ticks = %d, want 1", m.ResidencyTicks(Wakeup))
	}
}

func TestMeterAddAndReset(t *testing.T) {
	var a, b Meter
	a.AddHop(M3)
	a.AddStatic(M7, 0, 1)
	b.AddHop(M7)
	b.AddStatic(Inactive, 0, 1)
	a.Add(&b)
	if a.Hops() != 2 {
		t.Errorf("merged hops = %d", a.Hops())
	}
	if a.ResidencyTicks(Inactive) != 1 || a.ResidencyTicks(M7) != 1 {
		t.Error("merged residency wrong")
	}
	a.Reset()
	if a.Hops() != 0 || a.TotalJoules() != 0 {
		t.Error("reset did not clear the meter")
	}
}

func TestMeterEnergyNonNegativeProperty(t *testing.T) {
	f := func(modes []uint8) bool {
		var m Meter
		for _, raw := range modes {
			mode := Mode(1 + int(raw)%7)
			m.AddStatic(mode, M5, 1)
			if mode.IsActive() {
				m.AddHop(mode)
			}
		}
		return m.StaticJoules() >= 0 && m.DynamicJoules() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
