package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// XY dimension-order routing resolves the X offset before the Y offset,
// which makes the downstream router of every packet knowable in advance.
func ExamplePath() {
	m := topology.NewMesh(8, 8)
	src := m.CoreAt(m.RouterAt(1, 1), 0)
	dst := m.CoreAt(m.RouterAt(3, 2), 0)
	for _, r := range topology.Path(m, src, dst) {
		x, y := m.Coord(r)
		fmt.Printf("(%d,%d) ", x, y)
	}
	fmt.Println()
	// Output:
	// (1,1) (2,1) (3,1) (3,2)
}

// The cmesh attaches four cores per router, so 64 cores need 16 routers.
func ExampleNewCMesh() {
	c := topology.NewCMesh(4, 4)
	fmt.Printf("%s: %d routers, %d cores, %d ports/router\n",
		c.Name(), c.NumRouters(), c.NumCores(), c.PortsPerRouter())
	// Output:
	// cmesh4x4: 16 routers, 64 cores, 8 ports/router
}
