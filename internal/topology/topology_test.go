package topology

import (
	"testing"
	"testing/quick"
)

func TestMeshDimensions(t *testing.T) {
	m := NewMesh(8, 8)
	if m.NumRouters() != 64 || m.NumCores() != 64 {
		t.Fatalf("8x8 mesh: %d routers, %d cores; want 64/64", m.NumRouters(), m.NumCores())
	}
	if m.Concentration() != 1 {
		t.Errorf("mesh concentration = %d, want 1", m.Concentration())
	}
	if m.PortsPerRouter() != 5 {
		t.Errorf("mesh ports = %d, want 5", m.PortsPerRouter())
	}
	if m.Name() != "mesh8x8" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestCMeshDimensions(t *testing.T) {
	c := NewCMesh(4, 4)
	if c.NumRouters() != 16 || c.NumCores() != 64 {
		t.Fatalf("4x4 cmesh: %d routers, %d cores; want 16/64", c.NumRouters(), c.NumCores())
	}
	if c.Concentration() != 4 {
		t.Errorf("cmesh concentration = %d, want 4", c.Concentration())
	}
	if c.PortsPerRouter() != 8 {
		t.Errorf("cmesh ports = %d, want 8", c.PortsPerRouter())
	}
}

func TestTinyGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1x8 mesh did not panic")
		}
	}()
	NewMesh(1, 8)
}

func TestCoordRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for r := 0; r < m.NumRouters(); r++ {
		x, y := m.Coord(r)
		if got := m.RouterAt(x, y); got != r {
			t.Fatalf("RouterAt(Coord(%d)) = %d", r, got)
		}
	}
	if m.RouterAt(-1, 0) != -1 || m.RouterAt(8, 0) != -1 || m.RouterAt(0, 8) != -1 {
		t.Error("out-of-grid coordinates should map to -1")
	}
}

func TestCoreMapping(t *testing.T) {
	for _, topo := range []Topology{NewMesh(8, 8), NewCMesh(4, 4)} {
		for core := 0; core < topo.NumCores(); core++ {
			r := topo.RouterOf(core)
			lp := topo.LocalPort(core)
			if lp < 0 || lp >= topo.Concentration() {
				t.Fatalf("%s: core %d local port %d out of range", topo.Name(), core, lp)
			}
			if got := topo.CoreAt(r, lp); got != core {
				t.Fatalf("%s: CoreAt(RouterOf(%d), LocalPort) = %d", topo.Name(), core, got)
			}
		}
		if topo.CoreAt(0, topo.Concentration()) != -1 {
			t.Errorf("%s: CoreAt with cardinal port should be -1", topo.Name())
		}
		if topo.CoreAt(-1, 0) != -1 {
			t.Errorf("%s: CoreAt with bad router should be -1", topo.Name())
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	for _, topo := range []Topology{NewMesh(8, 8), NewCMesh(4, 4), NewMesh(3, 5)} {
		for r := 0; r < topo.NumRouters(); r++ {
			for p := topo.Concentration(); p < topo.PortsPerRouter(); p++ {
				n := topo.Neighbor(r, p)
				if n < 0 {
					continue
				}
				back := OppositePort(topo, p)
				if got := topo.Neighbor(n, back); got != r {
					t.Fatalf("%s: neighbor(%d,%s)=%d but neighbor(%d,%s)=%d",
						topo.Name(), r, PortName(topo, p), n, n, PortName(topo, back), got)
				}
			}
		}
	}
}

func TestNeighborLocalPortIsNone(t *testing.T) {
	m := NewMesh(8, 8)
	if m.Neighbor(0, 0) != -1 {
		t.Error("local port should have no neighbor")
	}
}

func TestEdgeRoutersHaveEdges(t *testing.T) {
	m := NewMesh(8, 8)
	// Corner (0,0) lacks north and west neighbors.
	r := m.RouterAt(0, 0)
	if m.Neighbor(r, PortNorth(m)) != -1 || m.Neighbor(r, PortWest(m)) != -1 {
		t.Error("corner router should lack N/W neighbors")
	}
	if m.Neighbor(r, PortEast(m)) == -1 || m.Neighbor(r, PortSouth(m)) == -1 {
		t.Error("corner router should have E/S neighbors")
	}
}

func TestOppositePortPanicsOnLocal(t *testing.T) {
	m := NewMesh(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("OppositePort(local) did not panic")
		}
	}()
	OppositePort(m, 0)
}

func TestPortNames(t *testing.T) {
	c := NewCMesh(4, 4)
	want := map[int]string{0: "L0", 3: "L3", 4: "N", 5: "E", 6: "S", 7: "W"}
	for p, name := range want {
		if got := PortName(c, p); got != name {
			t.Errorf("port %d = %q, want %q", p, got, name)
		}
	}
}

func TestIsLocalPort(t *testing.T) {
	c := NewCMesh(4, 4)
	for p := 0; p < 4; p++ {
		if !IsLocalPort(c, p) {
			t.Errorf("port %d should be local", p)
		}
	}
	for p := 4; p < 8; p++ {
		if IsLocalPort(c, p) {
			t.Errorf("port %d should be cardinal", p)
		}
	}
}

func TestNeighborGridProperty(t *testing.T) {
	m := NewMesh(8, 8)
	f := func(rRaw, pRaw uint8) bool {
		r := int(rRaw) % m.NumRouters()
		p := m.Concentration() + int(pRaw)%CardinalPorts
		n := m.Neighbor(r, p)
		if n < 0 {
			return true
		}
		x1, y1 := m.Coord(r)
		x2, y2 := m.Coord(n)
		dx, dy := x2-x1, y2-y1
		return abs(dx)+abs(dy) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
