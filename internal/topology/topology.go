// Package topology models the mesh and concentrated-mesh (cmesh) networks
// the paper evaluates, and XY dimension-order routing (DOR) with look-ahead.
//
// Router port numbering: a router with concentration C has ports
// 0..C-1 (local/core ports) followed by North, East, South, West at
// C, C+1, C+2, C+3. The paper's mesh has C=1 (64 routers, 64 cores); the
// cmesh has C=4 (16 routers, 64 cores).
package topology

import "fmt"

// CardinalPorts is the number of inter-router ports (N, E, S, W).
const CardinalPorts = 4

// Topology describes a 2-D grid network with concentrated terminals.
type Topology interface {
	// Name identifies the topology ("mesh8x8", "cmesh4x4", ...).
	Name() string
	// Width and Height are the router-grid dimensions.
	Width() int
	Height() int
	// Concentration is the number of cores attached to each router.
	Concentration() int
	// NumRouters returns Width*Height.
	NumRouters() int
	// NumCores returns NumRouters*Concentration.
	NumCores() int
	// PortsPerRouter returns Concentration + 4.
	PortsPerRouter() int
	// RouterOf maps a core index to its router.
	RouterOf(core int) int
	// LocalPort maps a core index to its local port on RouterOf(core).
	LocalPort(core int) int
	// CoreAt maps (router, localPort) back to a core index, or -1.
	CoreAt(router, localPort int) int
	// Coord returns the (x, y) grid position of a router.
	Coord(router int) (x, y int)
	// RouterAt returns the router at grid position (x, y), or -1.
	RouterAt(x, y int) int
	// Neighbor returns the router reached over the given cardinal port,
	// or -1 at a mesh edge or for a local port.
	Neighbor(router, port int) int
}

// grid implements Topology for both mesh and cmesh.
type grid struct {
	name          string
	width, height int
	concentration int
}

// NewMesh returns a width x height mesh with one core per router, the
// paper's primary 8x8 configuration being NewMesh(8, 8).
func NewMesh(width, height int) Topology {
	mustDims(width, height)
	return &grid{name: fmt.Sprintf("mesh%dx%d", width, height), width: width, height: height, concentration: 1}
}

// NewCMesh returns a width x height concentrated mesh with four cores per
// router, the paper's 4x4 cmesh (16 routers, 64 cores) being NewCMesh(4, 4).
func NewCMesh(width, height int) Topology {
	mustDims(width, height)
	return &grid{name: fmt.Sprintf("cmesh%dx%d", width, height), width: width, height: height, concentration: 4}
}

func mustDims(w, h int) {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: grid must be at least 2x2, got %dx%d", w, h))
	}
}

func (g *grid) Name() string        { return g.name }
func (g *grid) Width() int          { return g.width }
func (g *grid) Height() int         { return g.height }
func (g *grid) Concentration() int  { return g.concentration }
func (g *grid) NumRouters() int     { return g.width * g.height }
func (g *grid) NumCores() int       { return g.NumRouters() * g.concentration }
func (g *grid) PortsPerRouter() int { return g.concentration + CardinalPorts }

func (g *grid) RouterOf(core int) int  { return core / g.concentration }
func (g *grid) LocalPort(core int) int { return core % g.concentration }

func (g *grid) CoreAt(router, localPort int) int {
	if localPort < 0 || localPort >= g.concentration || router < 0 || router >= g.NumRouters() {
		return -1
	}
	return router*g.concentration + localPort
}

func (g *grid) Coord(router int) (x, y int) { return router % g.width, router / g.width }

func (g *grid) RouterAt(x, y int) int {
	if x < 0 || x >= g.width || y < 0 || y >= g.height {
		return -1
	}
	return y*g.width + x
}

// Cardinal port offsets relative to Concentration.
const (
	North = 0
	East  = 1
	South = 2
	West  = 3
)

// PortNorth..PortWest return the absolute port index of a cardinal
// direction for topology t.
func PortNorth(t Topology) int { return t.Concentration() + North }
func PortEast(t Topology) int  { return t.Concentration() + East }
func PortSouth(t Topology) int { return t.Concentration() + South }
func PortWest(t Topology) int  { return t.Concentration() + West }

// IsLocalPort reports whether port p on topology t is a core port.
func IsLocalPort(t Topology, p int) bool { return p >= 0 && p < t.Concentration() }

// OppositePort returns the port on the neighboring router that a link out
// of port p arrives at (N<->S, E<->W). It panics for local ports.
func OppositePort(t Topology, p int) int {
	c := t.Concentration()
	switch p - c {
	case North:
		return c + South
	case South:
		return c + North
	case East:
		return c + West
	case West:
		return c + East
	}
	panic(fmt.Sprintf("topology: OppositePort of local port %d", p))
}

// PortName renders a port index for topology t ("L0", "N", "E", ...).
func PortName(t Topology, p int) string {
	c := t.Concentration()
	if p < c {
		return fmt.Sprintf("L%d", p)
	}
	switch p - c {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("P%d", p)
}

func (g *grid) Neighbor(router, port int) int {
	c := g.concentration
	if port < c {
		return -1
	}
	x, y := g.Coord(router)
	switch port - c {
	case North:
		return g.RouterAt(x, y-1)
	case East:
		return g.RouterAt(x+1, y)
	case South:
		return g.RouterAt(x, y+1)
	case West:
		return g.RouterAt(x-1, y)
	}
	return -1
}
