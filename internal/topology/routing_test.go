package topology

import (
	"testing"
	"testing/quick"
)

func TestRouteArrival(t *testing.T) {
	m := NewMesh(8, 8)
	// A packet at its destination router routes to the local port.
	for core := 0; core < m.NumCores(); core += 7 {
		p := Route(m, m.RouterOf(core), core)
		if !IsLocalPort(m, p) {
			t.Fatalf("route at destination router = %s, want local", PortName(m, p))
		}
		if p != m.LocalPort(core) {
			t.Fatalf("route = port %d, want %d", p, m.LocalPort(core))
		}
	}
}

func TestRouteXFirst(t *testing.T) {
	m := NewMesh(8, 8)
	// From (0,0) to core at (3,5): X first -> East.
	src := m.RouterAt(0, 0)
	dst := m.CoreAt(m.RouterAt(3, 5), 0)
	if p := Route(m, src, dst); p != PortEast(m) {
		t.Fatalf("XY routing must move east first, got %s", PortName(m, p))
	}
	// Same column: move in Y.
	src2 := m.RouterAt(3, 0)
	if p := Route(m, src2, dst); p != PortSouth(m) {
		t.Fatalf("same column must move south, got %s", PortName(m, p))
	}
}

func TestPathProperties(t *testing.T) {
	m := NewMesh(8, 8)
	f := func(a, b uint8) bool {
		src := int(a) % m.NumCores()
		dst := int(b) % m.NumCores()
		if src == dst {
			return true
		}
		path := Path(m, src, dst)
		// Path starts at the source router, ends at the destination
		// router, and has exactly Hops+1 routers.
		if path[0] != m.RouterOf(src) || path[len(path)-1] != m.RouterOf(dst) {
			return false
		}
		if len(path) != Hops(m, src, dst)+1 {
			return false
		}
		// Consecutive routers are grid neighbors.
		for i := 1; i < len(path); i++ {
			x1, y1 := m.Coord(path[i-1])
			x2, y2 := m.Coord(path[i])
			if abs(x1-x2)+abs(y1-y2) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHopsIsManhattan(t *testing.T) {
	m := NewMesh(8, 8)
	src := m.CoreAt(m.RouterAt(1, 2), 0)
	dst := m.CoreAt(m.RouterAt(6, 7), 0)
	if got := Hops(m, src, dst); got != 10 {
		t.Fatalf("hops = %d, want 10", got)
	}
	if got := Hops(m, src, src); got != 0 {
		t.Fatalf("hops to self = %d, want 0", got)
	}
}

func TestLookaheadConsistency(t *testing.T) {
	for _, topo := range []Topology{NewMesh(8, 8), NewCMesh(4, 4)} {
		f := func(a, b uint8) bool {
			src := int(a) % topo.NumCores()
			dst := int(b) % topo.NumCores()
			r := topo.RouterOf(src)
			out, next, nextOut := Lookahead(topo, r, dst)
			if out != Route(topo, r, dst) {
				return false
			}
			if IsLocalPort(topo, out) {
				return next == -1 && nextOut == -1
			}
			if next != topo.Neighbor(r, out) {
				return false
			}
			return nextOut == Route(topo, next, dst)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
	}
}

func TestNextRouterEjects(t *testing.T) {
	m := NewMesh(8, 8)
	if NextRouter(m, m.RouterOf(10), 10) != -1 {
		t.Error("NextRouter at destination should be -1")
	}
}

// XY DOR is deadlock-free because it never turns from Y back to X; verify
// no path contains a Y->X turn.
func TestNoIllegalTurns(t *testing.T) {
	m := NewMesh(8, 8)
	for src := 0; src < m.NumCores(); src += 5 {
		for dst := 0; dst < m.NumCores(); dst += 3 {
			if src == dst {
				continue
			}
			path := Path(m, src, dst)
			movedY := false
			for i := 1; i < len(path); i++ {
				x1, _ := m.Coord(path[i-1])
				x2, _ := m.Coord(path[i])
				if x1 != x2 { // X move
					if movedY {
						t.Fatalf("path %d->%d turns from Y back to X", src, dst)
					}
				} else {
					movedY = true
				}
			}
		}
	}
}

func TestCMeshSameRouterDelivery(t *testing.T) {
	c := NewCMesh(4, 4)
	// Two cores on the same router: one-router path, local route.
	src := c.CoreAt(5, 0)
	dst := c.CoreAt(5, 3)
	if got := Hops(c, src, dst); got != 0 {
		t.Fatalf("same-router hops = %d, want 0", got)
	}
	if p := Route(c, 5, dst); p != 3 {
		t.Fatalf("route = %d, want local port 3", p)
	}
	if path := Path(c, src, dst); len(path) != 1 || path[0] != 5 {
		t.Fatalf("path = %v, want [5]", path)
	}
}
