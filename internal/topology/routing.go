package topology

// XY dimension-order routing with look-ahead, as used by the paper
// (§III-A): packets first travel in X to the destination column, then in Y
// to the destination row, then eject on the destination core's local port.
// XY DOR makes the downstream router of any buffered head flit knowable one
// hop in advance, which is what enables DozzNoC's partially non-blocking
// power-gating (wake punches to downstream routers).

// Route returns the output port a packet for dstCore must take at router.
// If the packet has arrived (router == RouterOf(dstCore)) the result is the
// destination core's local port.
func Route(t Topology, router, dstCore int) int {
	dr := t.RouterOf(dstCore)
	if router == dr {
		return t.LocalPort(dstCore)
	}
	cx, cy := t.Coord(router)
	dx, dy := t.Coord(dr)
	switch {
	case dx > cx:
		return PortEast(t)
	case dx < cx:
		return PortWest(t)
	case dy > cy:
		return PortSouth(t)
	default:
		return PortNorth(t)
	}
}

// NextRouter returns the router a packet for dstCore occupies after leaving
// router, or -1 if it ejects at router.
func NextRouter(t Topology, router, dstCore int) int {
	p := Route(t, router, dstCore)
	if IsLocalPort(t, p) {
		return -1
	}
	return t.Neighbor(router, p)
}

// Lookahead computes, for a packet at router headed to dstCore, the output
// port here, the downstream router (-1 if ejecting), and the output port
// the packet will take at the downstream router (-1 if ejecting here).
// This is the look-ahead route-compute unit of the router pipeline.
func Lookahead(t Topology, router, dstCore int) (outPort, nextRouter, nextOutPort int) {
	outPort = Route(t, router, dstCore)
	if IsLocalPort(t, outPort) {
		return outPort, -1, -1
	}
	nextRouter = t.Neighbor(router, outPort)
	nextOutPort = Route(t, nextRouter, dstCore)
	return outPort, nextRouter, nextOutPort
}

// Path returns the ordered router sequence a packet visits from srcCore to
// dstCore, inclusive of the source and destination routers. For a core
// sending to a core on its own router the path is one router long.
func Path(t Topology, srcCore, dstCore int) []int {
	r := t.RouterOf(srcCore)
	path := []int{r}
	for r != t.RouterOf(dstCore) {
		r = NextRouter(t, r, dstCore)
		path = append(path, r)
	}
	return path
}

// Hops returns the number of router-to-router hops between two cores under
// XY DOR, i.e. the Manhattan distance between their routers.
func Hops(t Topology, srcCore, dstCore int) int {
	sx, sy := t.Coord(t.RouterOf(srcCore))
	dx, dy := t.Coord(t.RouterOf(dstCore))
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
