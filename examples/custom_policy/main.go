// Custom policy: plug a user-defined mode selector into the simulation
// engine. The engine accepts any policy.ModeSelector, so new DVFS
// strategies compare against the paper's models without touching the
// simulator.
//
// This example implements two custom selectors:
//
//   - hysteresis: the paper's threshold map, but a router only moves one
//     mode step per epoch (damped switching);
//   - oracle-ish EMA: an exponential moving average of IBU instead of a
//     trained predictor.
//
// Run with:
//
//	go run ./examples/custom_policy
package main

import (
	"fmt"
	"log"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// hysteresisSelector moves at most one mode step per epoch toward the
// threshold-mapped target.
type hysteresisSelector struct {
	last []power.Mode
}

func newHysteresis(routers int) *hysteresisSelector {
	s := &hysteresisSelector{last: make([]power.Mode, routers)}
	for i := range s.last {
		s.last[i] = power.MaxActive
	}
	return s
}

func (s *hysteresisSelector) Name() string { return "hysteresis" }

func (s *hysteresisSelector) SelectMode(router int, ibu float64, _ []float64) power.Mode {
	target := policy.ModeForIBU(ibu)
	cur := s.last[router]
	switch {
	case target > cur:
		cur++
	case target < cur:
		cur--
	}
	s.last[router] = cur
	return cur
}

// emaSelector thresholds an exponential moving average of the IBU, a
// cheap stand-in for the trained predictor.
type emaSelector struct {
	alpha float64
	ema   []float64
}

func newEMA(routers int, alpha float64) *emaSelector {
	return &emaSelector{alpha: alpha, ema: make([]float64, routers)}
}

func (s *emaSelector) Name() string { return "ema" }

func (s *emaSelector) SelectMode(router int, ibu float64, _ []float64) power.Mode {
	s.ema[router] = s.alpha*ibu + (1-s.alpha)*s.ema[router]
	return policy.ModeForIBU(s.ema[router])
}

func main() {
	topo := topology.NewMesh(4, 4)
	p, _ := traffic.ProfileByName("fft")
	g := traffic.Generator{Topo: topo, Horizon: 30_000, Seed: 1}
	trace := g.Generate(p)

	specs := []policy.Spec{
		policy.Baseline(),
		policy.DozzNoC(policy.ReactiveSelector{}),
		{Name: "DozzNoC+hysteresis", PowerGating: true, Selector: newHysteresis(topo.NumRouters())},
		{Name: "DozzNoC+ema", PowerGating: true, Selector: newEMA(topo.NumRouters(), 0.4)},
	}

	fmt.Printf("%-20s %12s %12s %12s %10s\n", "model", "static(J)", "dynamic(J)", "latency(ns)", "off-frac")
	for _, spec := range specs {
		res, err := sim.Run(sim.Config{Topo: topo, Spec: spec, Trace: trace})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.3e %12.3e %12.1f %10.3f\n",
			res.Model, res.StaticJ, res.DynamicJ, res.AvgLatencyNS, res.OffFraction)
	}
	fmt.Println("\nAny policy.ModeSelector drops into sim.Config the same way.")
}
