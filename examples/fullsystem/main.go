// Fullsystem: run the closed-loop multicore model (cores + private L1s +
// S-NUCA L2 banks + corner memory controllers) over each power-management
// model and report *application* slowdown — the metric a full-system
// simulator like the paper's Multi2Sim would report. Unlike trace replay,
// the cores here stall on their MSHRs, so network slowdowns stretch
// program runtime directly.
//
// Run with:
//
//	go run ./examples/fullsystem
package main

import (
	"fmt"
	"log"

	"repro/internal/mcsim"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	topo := topology.NewMesh(8, 8)
	params := mcsim.DefaultSystem(topo)

	specs := []policy.Spec{
		policy.Baseline(),
		policy.PowerGated(),
		policy.DVFSML(policy.ReactiveSelector{}),
		policy.DozzNoC(policy.ReactiveSelector{}),
		policy.MLTurbo(policy.ReactiveSelector{}, topo.NumRouters()),
	}

	fmt.Printf("%-10s %12s %10s %12s %12s %12s %10s\n",
		"model", "runtime(us)", "slowdown", "static(J)", "dynamic(J)", "stall-ticks", "off-frac")
	var baseTicks int64
	for _, spec := range specs {
		w, err := mcsim.New(params)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Topo: topo, Spec: spec, Workload: w})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Drained {
			log.Fatalf("%s: did not finish", spec.Name)
		}
		if spec.Name == "Baseline" {
			baseTicks = res.Ticks
		}
		fmt.Printf("%-10s %12.1f %10.3f %12.3e %12.3e %12d %10.3f\n",
			res.Model,
			float64(res.Ticks)*0.4444/1000, // base ticks -> us at 2.25 GHz
			float64(res.Ticks)/float64(baseTicks),
			res.StaticJ, res.DynamicJ,
			w.Stats().StalledTicks,
			res.OffFraction)
	}
	fmt.Println("\nSlowdown is end-to-end application runtime vs the baseline NoC —")
	fmt.Println("the closed-loop analogue of the paper's trace-replay throughput loss.")
}
