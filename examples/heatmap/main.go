// Heatmap: visualize the spatial structure of DozzNoC's decisions on the
// 8x8 mesh — which routers sleep, and at what average DVFS mode the rest
// run — for a hotspot-heavy benchmark. Memory-controller corners stay
// awake and fast; quiet interior rows sleep.
//
// Run with:
//
//	go run ./examples/heatmap
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/viz"
)

func main() {
	topo := topology.NewMesh(8, 8)
	p, _ := traffic.ProfileByName("lu") // sparse, phase-heavy
	g := traffic.Generator{Topo: topo, Horizon: 60_000, Seed: 1}
	trace := g.Generate(p)

	res, err := sim.Run(sim.Config{
		Topo:  topo,
		Spec:  policy.DozzNoC(policy.ReactiveSelector{}),
		Trace: trace,
	})
	if err != nil {
		log.Fatal(err)
	}

	viz.Heatmap(os.Stdout, topo, "fraction of time power-gated (dark = asleep)", func(r int) float64 {
		return res.RouterOffFraction[r]
	})
	fmt.Println()
	viz.Heatmap(os.Stdout, topo, "average active DVFS mode (dark = high voltage)", func(r int) float64 {
		return res.RouterAvgMode[r] / 4.0
	})
	fmt.Println()
	viz.Grid(os.Stdout, topo, "dominant state per router (.=mostly off, 3-7=mode)", func(r int) string {
		if res.RouterOffFraction[r] > 0.5 {
			return "."
		}
		return fmt.Sprintf("%d", 3+int(res.RouterAvgMode[r]+0.5))
	})
	fmt.Printf("\nnetwork: %.1f%% of router-time gated, static %.2e J, dynamic %.2e J\n",
		100*res.OffFraction, res.StaticJ, res.DynamicJ)
}
