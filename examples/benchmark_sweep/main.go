// Benchmark sweep: the paper's §IV-B2 protocol in miniature — train the
// three ML models, then run all five power-management models over every
// test benchmark and print per-benchmark and average energy savings and
// performance costs, for both uncompressed and compressed traces.
//
// Run with (a few minutes on the full 8x8 mesh):
//
//	go run ./examples/benchmark_sweep
//
// or quickly on a smaller configuration:
//
//	go run ./examples/benchmark_sweep -mesh 4 -horizon 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		mesh     = flag.Int("mesh", 8, "mesh side length")
		horizon  = flag.Int64("horizon", 60_000, "trace window in base ticks")
		compress = flag.Int64("compress", 2, "compression factor for the performance runs")
	)
	flag.Parse()

	suite := core.NewSuite(topology.NewMesh(*mesh, *mesh), core.Options{Horizon: *horizon})

	start := time.Now()
	fmt.Fprintln(os.Stderr, "training LEAD-tau, DozzNoC and ML+TURBO...")
	if err := suite.TrainAllParallel(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained in %v\n", time.Since(start).Round(time.Millisecond))

	type agg struct {
		static, dynamic, tput, lat float64
	}
	sums := map[core.ModelKind]*agg{}
	for _, k := range core.AllKinds {
		sums[k] = &agg{}
	}

	benches := traffic.ProfilesBySplit(traffic.Test)
	fmt.Printf("%-14s %-10s %12s %12s %12s %12s\n",
		"bench", "model", "static-sav", "dyn-sav", "tput-ratio", "lat-ratio")
	for _, b := range benches {
		unc, err := suite.Compare(b.Name, 1)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := suite.Compare(b.Name, *compress)
		if err != nil {
			log.Fatal(err)
		}
		perf := map[core.ModelKind]core.Relative{}
		for _, rel := range cmp.Relatives() {
			perf[rel.Kind] = rel
		}
		for _, rel := range unc.Relatives() {
			p := perf[rel.Kind]
			fmt.Printf("%-14s %-10s %11.1f%% %11.1f%% %12.3f %12.3f\n",
				b.Name, rel.Kind, 100*rel.StaticSavings, 100*rel.DynamicSavings,
				p.ThroughputRatio, p.LatencyRatio)
			s := sums[rel.Kind]
			s.static += rel.StaticSavings
			s.dynamic += rel.DynamicSavings
			s.tput += p.ThroughputRatio
			s.lat += p.LatencyRatio
		}
	}

	n := float64(len(benches))
	fmt.Printf("\naverages over %d test benchmarks (energy uncompressed, perf compressed x%d):\n", len(benches), *compress)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "model", "static-sav", "dyn-sav", "tput-loss", "lat-incr")
	for _, k := range core.AllKinds {
		s := sums[k]
		fmt.Printf("%-10s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			k, 100*s.static/n, 100*s.dynamic/n, 100*(1-s.tput/n), 100*(s.lat/n-1))
	}
}
