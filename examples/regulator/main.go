// Regulator example: exercise the SIMO/LDO voltage-regulator model on its
// own — the Table II switching-latency matrix, the Fig 5 settling
// waveforms as ASCII plots, and the Fig 6 efficiency comparison against a
// fixed-rail LDO.
//
// Run with:
//
//	go run ./examples/regulator
package main

import (
	"fmt"
	"strings"

	"repro/internal/vr"
)

func main() {
	fmt.Println("Switching latency matrix (ns), Table II:")
	fmt.Printf("%8s", "")
	for l := vr.PG; l <= vr.V12; l++ {
		fmt.Printf("%8s", l)
	}
	fmt.Println()
	for a := vr.PG; a <= vr.V12; a++ {
		fmt.Printf("%8s", a)
		for b := vr.PG; b <= vr.V12; b++ {
			fmt.Printf("%8.1f", vr.SwitchNS(a, b))
		}
		fmt.Println()
	}

	fmt.Println("\nFig 5(a): power-gating wake 0V -> 0.8V (switch at t=10ns)")
	plot(vr.Fig5Wakeup(10, 0.5, 30), 0, 0.9)
	fmt.Printf("settles %.2f ns after the switch (worst case applied in simulation: %.1f ns)\n",
		vr.SettledAfter(0, 0.8), vr.WorstWakeupNS)

	fmt.Println("\nFig 5(b): DVFS switch 0.8V -> 1.2V (switch at t=10ns)")
	plot(vr.Fig5Switch(10, 0.5, 30), 0.7, 1.3)
	fmt.Printf("settles %.2f ns after the switch (worst case applied in simulation: %.1f ns)\n",
		vr.SettledAfter(0.8, 1.2), vr.WorstSwitchNS)

	fmt.Println("\nFig 6: power efficiency vs output voltage")
	fmt.Printf("%6s %10s %10s %10s\n", "Vout", "SIMO", "baseline", "gain(pts)")
	for _, p := range vr.EfficiencyCurve(0.1) {
		fmt.Printf("%6.1f %9.1f%% %9.1f%% %10.1f\n",
			p.Vout, 100*p.SIMO, 100*p.Baseline, 100*(p.SIMO-p.Baseline))
	}
	s := vr.Improvement()
	fmt.Printf("\noverall efficiency >= %.1f%%; average improvement %.1f points; max %.1f points at %.1fV\n",
		100*s.MinEfficiency, 100*s.AvgImprovement, 100*s.MaxImprovement, s.MaxAtVolts)

	fmt.Println("\nCircuit-level SIMO converter (DCM time-multiplexing, one inductor, three rails):")
	sim, err := vr.NewSIMOSim(vr.DefaultSIMO())
	if err != nil {
		panic(err)
	}
	startUS, ok := sim.StartupTimeUS(0.03, 500)
	fmt.Printf("cold start to regulation: %.1f us (ok=%v)\n", startUS, ok)
	sim.Run(startUS + 300) // observe steady state
	fmt.Printf("rails: %.3f / %.3f / %.3f V (targets %.1f / %.1f / %.1f)\n",
		sim.V[0], sim.V[1], sim.V[2], sim.P.Targets[0], sim.P.Targets[1], sim.P.Targets[2])
	fmt.Printf("pulse-skip headroom: %.0f%%; service shares: %.2f / %.2f / %.2f\n",
		100*sim.PulseSkipRate(), sim.ServiceShare()[0], sim.ServiceShare()[1], sim.ServiceShare()[2])
	fmt.Printf("regulation capacity: %.0f mA vs %.0f mA load\n",
		sim.P.RegulationCapacityMA(), sim.P.LoadsMA[0]+sim.P.LoadsMA[1]+sim.P.LoadsMA[2])
}

// plot renders a waveform as a crude ASCII chart, one row per sample pair.
func plot(samples []vr.Sample, lo, hi float64) {
	const width = 50
	for i := 0; i < len(samples); i += 2 {
		s := samples[i]
		pos := int((s.Volts - lo) / (hi - lo) * width)
		if pos < 0 {
			pos = 0
		}
		if pos > width {
			pos = width
		}
		fmt.Printf("%5.1fns |%s*%s| %.2fV\n", s.TimeNS, strings.Repeat(" ", pos), strings.Repeat(" ", width-pos), s.Volts)
	}
}
