// Quickstart: train DozzNoC's ridge predictor on a small mesh, run the
// proposed model against the always-on baseline on one benchmark, and
// print the headline trade-off (static/dynamic energy saved vs throughput
// and latency cost).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	// A 4x4 mesh and a short trace keep the whole pipeline (reactive data
	// harvest on 6 training benchmarks, lambda tuning on 3 validation
	// benchmarks, final proactive run) under a few seconds.
	suite := core.NewSuite(topology.NewMesh(4, 4), core.Options{Horizon: 20_000})

	rep, err := suite.Train(core.KindDozzNoC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained ridge model: lambda=%g, validation MSE=%.3e\n",
		rep.BestVal.Lambda, rep.BestVal.ValMSE)
	fmt.Printf("weights (bias, reqs_sent, reqs_recv, off_time, ibu): %.4f\n", rep.Best.Weights)

	baseline, err := suite.RunBenchmark(core.KindBaseline, "fft", 1)
	if err != nil {
		log.Fatal(err)
	}
	dozznoc, err := suite.RunBenchmark(core.KindDozzNoC, "fft", 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %14s\n", "metric", "baseline", "DozzNoC")
	fmt.Printf("%-22s %14d %14d\n", "packets delivered", baseline.PacketsDelivered, dozznoc.PacketsDelivered)
	fmt.Printf("%-22s %14.3f %14.3f\n", "throughput (flit/tick)", baseline.Throughput, dozznoc.Throughput)
	fmt.Printf("%-22s %14.1f %14.1f\n", "avg latency (ns)", baseline.AvgLatencyNS, dozznoc.AvgLatencyNS)
	fmt.Printf("%-22s %14.3e %14.3e\n", "static energy (J)", baseline.StaticJ, dozznoc.StaticJ)
	fmt.Printf("%-22s %14.3e %14.3e\n", "dynamic energy (J)", baseline.DynamicJ, dozznoc.DynamicJ)
	fmt.Printf("%-22s %14s %14.1f%%\n", "time power-gated", "-", 100*dozznoc.OffFraction)

	fmt.Printf("\nDozzNoC saved %.1f%% static and %.1f%% dynamic energy for a %.1f%% throughput change.\n",
		100*(1-dozznoc.StaticJ/baseline.StaticJ),
		100*(1-dozznoc.DynamicJ/baseline.DynamicJ),
		100*(dozznoc.Throughput/baseline.Throughput-1))
}
