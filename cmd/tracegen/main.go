// Command tracegen synthesizes benchmark or synthetic-pattern traces and
// writes them in the binary or CSV trace format, so workloads can be
// generated once and replayed across simulator runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/traffic"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark profile name (mutually exclusive with -pattern)")
		pattern  = flag.String("pattern", "", "synthetic pattern: uniform, transpose, bitcomp, hotspot, neighbor")
		rate     = flag.Float64("rate", 0.01, "injection rate for synthetic patterns (packets/core/tick)")
		topoName = flag.String("topo", "mesh8x8", "mesh<W>x<H> or cmesh4x4")
		horizon  = flag.Int64("horizon", 120_000, "generation window in base ticks")
		seed     = flag.Int64("seed", 1, "generator seed")
		compress = flag.Int64("compress", 1, "time-compression factor")
		format   = flag.String("format", "bin", "output format: bin or csv")
		out      = flag.String("o", "", "output file (default stdout)")
		list     = flag.Bool("list", false, "list benchmark profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range traffic.Profiles() {
			s := p
			fmt.Printf("%-14s %-8s %-11s rate=%.4f duty=%.2f hotspot=%.2f locality=%.2f resp=%.2f\n",
				s.Name, s.Suite, s.Split, s.ReqRate, s.Duty, s.Hotspot, s.Locality, s.RespFrac)
		}
		return
	}

	topo, err := cli.ParseTopo(*topoName)
	if err != nil {
		fatal(err)
	}

	var tr *traffic.Trace
	switch {
	case *bench != "" && *pattern != "":
		fatal(fmt.Errorf("-bench and -pattern are mutually exclusive"))
	case *bench != "":
		p, ok := traffic.ProfileByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q (see -list)", *bench))
		}
		g := traffic.Generator{Topo: topo, Horizon: *horizon, Seed: *seed}
		tr = g.Generate(p)
	case *pattern != "":
		pat, err := cli.ParsePattern(*pattern)
		if err != nil {
			fatal(err)
		}
		tr = traffic.Synthetic(topo, pat, *rate, *horizon, *seed)
	default:
		fatal(fmt.Errorf("one of -bench or -pattern is required"))
	}

	if *compress > 1 {
		tr = tr.Compress(*compress)
	}

	write, err := traceWriter(tr, *format)
	if err != nil {
		fatal(err)
	}
	// The Close error matters as much as the write error: a full disk
	// often surfaces only when buffered data is flushed at close, and a
	// bare deferred Close turned that into a truncated trace file behind
	// exit code 0. cli.WriteFile checks both.
	if *out != "" {
		err = cli.WriteFile(*out, write)
	} else {
		err = write(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "%s: %d packets (%d req, %d resp), %.4f flits/core/tick over %d ticks\n",
		tr.Name, s.Packets, s.Requests, s.Responses, s.FlitRate, s.Span)
}

// traceWriter selects the encoder for -format.
func traceWriter(tr *traffic.Trace, format string) (func(io.Writer) error, error) {
	switch format {
	case "bin":
		return tr.WriteBinary, nil
	case "csv":
		return tr.WriteCSV, nil
	}
	return nil, fmt.Errorf("unknown format %q", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
