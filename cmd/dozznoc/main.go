// Command dozznoc runs one power-management model over one benchmark trace
// and prints the run summary.
//
// Usage:
//
//	dozznoc -topo mesh8x8 -model dozznoc -bench fft -compress 1
//
// ML models (lead, dozznoc, turbo) are trained on the fly via the offline
// pipeline (reactive data harvest on the 6 training benchmarks, lambda
// tuning on the 3 validation benchmarks) unless -weights points at a model
// file written by cmd/train.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	var (
		topoName   = flag.String("topo", "mesh8x8", "topology: mesh8x8, cmesh4x4 or mesh<W>x<H>")
		model      = flag.String("model", "dozznoc", "model: baseline, pg, lead, dozznoc, turbo")
		bench      = flag.String("bench", "fft", "benchmark name (see -list)")
		compress   = flag.Int64("compress", 1, "trace time-compression factor (1 = uncompressed)")
		horizon    = flag.Int64("horizon", 120_000, "trace generation window in base ticks")
		epoch      = flag.Int64("epoch", 500, "DVFS epoch length in base ticks")
		seed       = flag.Int64("seed", 1, "trace generator seed")
		weights    = flag.String("weights", "", "optional trained-model JSON (skips on-the-fly training)")
		weightsDir = flag.String("weightsdir", "", "directory of cmd/train outputs to load (skips training)")
		traceIn    = flag.String("trace", "", "optional binary trace file (overrides -bench)")
		pattern    = flag.String("pattern", "", "optional synthetic pattern (overrides -bench): uniform, transpose, bitcomp, hotspot, neighbor")
		rate       = flag.Float64("rate", 0.01, "injection rate for -pattern (packets/core/tick)")
		series     = flag.String("series", "", "write a per-epoch time-series CSV to this file")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		shards     = flag.Int("shards", 0, "tick-engine shards (0 = min(GOMAXPROCS, CPUs, mesh rows) — serial on a single-CPU host, pass a count >1 to force sharding there; 1 = serial sweep; results are bit-identical)")
		shardsMin  = flag.Int("shard-min-active", 0, "sharded engine's serial-fallback threshold in active routers (0 = calibrate from a measured dispatch/barrier round-trip at startup; -1 = always attempt the concurrent sweep; results are bit-identical)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		rtTrace    = flag.String("runtimetrace", "", "write a Go execution trace (go tool trace) to this file")
		obsAddr    = flag.String("obs-addr", "", "serve live expvar/pprof observability on this address (e.g. localhost:6060)")
		traceOut   = flag.String("trace-out", "", "write engine-phase spans as a Perfetto/chrome://tracing JSONL file")
		traceWin   = flag.Int64("trace-window", 0, "keep only the trailing N base ticks of the phase trace (0 = everything)")
		driftCfg   = cli.DriftFlags()
	)
	flag.Parse()

	// Profiles flush on normal exit only; fatal() paths abort before the
	// expensive simulation, where a partial profile has no value. The
	// flush/close errors themselves are fatal: a full disk at close time
	// truncates the profile or phase trace, and exiting 0 would hide it.
	stopProfiles, err := cli.StartProfiles(*cpuProfile, *rtTrace, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
	}()

	observer, closeObs, err := cli.StartObs(*obsAddr, *traceOut, *traceWin, driftCfg())
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := closeObs(); err != nil {
			fatal(err)
		}
	}()

	if *list {
		for _, p := range traffic.Profiles() {
			fmt.Printf("%-14s %-8s %s\n", p.Name, p.Suite, p.Split)
		}
		return
	}

	topo, err := cli.ParseTopo(*topoName)
	if err != nil {
		fatal(err)
	}
	kind, err := cli.ParseKind(*model)
	if err != nil {
		fatal(err)
	}

	nShards, err := cli.ParseShards(*shards)
	if err != nil {
		fatal(err)
	}
	minActive, err := cli.ParseShardMinActive(*shardsMin)
	if err != nil {
		fatal(err)
	}
	suite := core.NewSuite(topo, core.Options{Horizon: *horizon, EpochTicks: *epoch, Seed: *seed, Shards: nShards, ShardMinActive: minActive})
	if *weightsDir != "" {
		n, err := suite.LoadTrainedModels(*weightsDir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d trained models from %s\n", n, *weightsDir)
	}
	if kind.IsML() && suite.TrainedModel(kind) == nil {
		if *weights != "" {
			m, err := ml.LoadModel(*weights)
			if err != nil {
				fatal(err)
			}
			suite.SetTrainedModel(kind, m)
		} else {
			fmt.Fprintln(os.Stderr, "training", kind, "(use -weights to skip)...")
			if _, err := suite.Train(kind); err != nil {
				fatal(err)
			}
		}
	}

	var tr *traffic.Trace
	switch {
	case *traceIn != "":
		tr, err = cli.LoadTrace(*traceIn)
		if err != nil {
			fatal(err)
		}
	case *pattern != "":
		pat, err := cli.ParsePattern(*pattern)
		if err != nil {
			fatal(err)
		}
		tr = traffic.Synthetic(topo, pat, *rate, *horizon, *seed)
	default:
		tr, err = suite.Trace(*bench)
		if err != nil {
			fatal(err)
		}
	}
	if *compress > 1 {
		tr = tr.Compress(*compress)
	}
	spec, err := suite.Spec(kind)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Topo:           topo,
		Spec:           spec,
		Trace:          tr,
		EpochTicks:     *epoch,
		Shards:         nShards,
		ShardMinActive: minActive,
		CollectSeries:  *series != "",
		Obs:            observer,
	})
	if err != nil {
		fatal(err)
	}
	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			fatal(err)
		}
		if err := res.Series.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote per-epoch series to %s (%d epochs)\n", *series, len(res.Series.Samples))
	}

	fmt.Printf("model            %s\n", res.Model)
	fmt.Printf("trace            %s\n", res.Trace)
	fmt.Printf("ticks            %d (drained=%v)\n", res.Ticks, res.Drained)
	fmt.Printf("packets          injected=%d delivered=%d\n", res.PacketsInjected, res.PacketsDelivered)
	fmt.Printf("throughput       %.4f flits/tick\n", res.Throughput)
	fmt.Printf("avg latency      %.1f ticks (%.1f ns)\n", res.AvgLatencyTicks, res.AvgLatencyNS)
	fmt.Printf("latency p50/95/99 %d/%d/%d ticks (max %d)\n",
		res.Latency.P50, res.Latency.P95, res.Latency.P99, res.Latency.Max)
	fmt.Printf("EDP              %.3e J*s\n", res.EDP())
	fmt.Printf("static energy    %.3e J\n", res.StaticJ)
	fmt.Printf("dynamic energy   %.3e J\n", res.DynamicJ)
	fmt.Printf("off fraction     %.3f (wakeup %.3f)\n", res.OffFraction, res.WakeupFraction)
	for i := 0; i < power.NumActiveModes; i++ {
		fmt.Printf("residency %v     %.3f\n", power.ActiveMode(i), res.ModeResidency[i])
	}
	fmt.Printf("gatings          %d (wakes %d, breakeven met %d)\n",
		res.Policy.Gatings, res.Policy.Wakes, res.Policy.BreakevenMet)
	fmt.Printf("mode switches    %d over %d epoch decisions\n",
		res.Policy.ModeSwitches, res.Policy.EpochDecisions)
	if observer != nil && observer.Metrics != nil {
		fmt.Printf("pred error       %.5f mean abs IBU (drift events %d)\n",
			res.MeanAbsPredErr, res.PredDriftEvents)
		fmt.Printf("mispredict cost  under=%d (stall %d ticks) over=%d (static waste %.3e J)\n",
			res.UnderPredDecisions, res.UnderPredStallTicks,
			res.OverPredDecisions, res.OverPredStaticWasteJ)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dozznoc:", err)
	os.Exit(1)
}
