// Command train runs the offline ML pipeline of §III-D for one or all
// model kinds: harvest feature/label datasets by running the reactive
// model variants over the 6 training and 3 validation benchmarks, sweep
// the ridge lambda on validation MSE, and write the winning weight vector
// (with its feature scaler) to a JSON file usable by cmd/dozznoc -weights.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/topology"
)

func main() {
	var (
		model   = flag.String("model", "all", "lead, dozznoc, turbo or all")
		outDir  = flag.String("out", ".", "directory for <model>.weights.json files")
		horizon = flag.Int64("horizon", 120_000, "trace generation window in base ticks")
		epoch   = flag.Int64("epoch", 500, "DVFS epoch length in base ticks")
		seed    = flag.Int64("seed", 1, "trace generator seed")
		cmesh   = flag.Bool("cmesh", false, "train on the 4x4 cmesh instead of the 8x8 mesh")
	)
	flag.Parse()

	var topo = topology.NewMesh(8, 8)
	if *cmesh {
		topo = topology.NewCMesh(4, 4)
	}
	suite := core.NewSuite(topo, core.Options{Horizon: *horizon, EpochTicks: *epoch, Seed: *seed})

	kinds, err := parseKinds(*model)
	if err != nil {
		fatal(err)
	}
	for _, kind := range kinds {
		fmt.Fprintf(os.Stderr, "training %v on %s (harvest 9 traces, sweep %d lambdas)...\n",
			kind, topo.Name(), len(suite.Opts.Lambdas))
		rep, err := suite.Train(kind)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%v: best lambda %g, validation MSE %.4e, train MSE %.4e\n",
			kind, rep.BestVal.Lambda, rep.BestVal.ValMSE, rep.BestVal.TrainMSE)
		fmt.Printf("%v: weights %v\n", kind, rep.Best.Weights)
		for _, p := range rep.Sweep {
			fmt.Printf("  lambda %-8g val MSE %.4e  train MSE %.4e\n", p.Lambda, p.ValMSE, p.TrainMSE)
		}
		name, err := core.WeightsFileName(kind)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, name)
		if err := ml.SaveModel(path, rep.Best); err != nil {
			fatal(err)
		}
		fmt.Printf("%v: wrote %s\n", kind, path)
	}
}

func parseKinds(s string) ([]core.ModelKind, error) {
	switch strings.ToLower(s) {
	case "all":
		return core.MLKinds, nil
	case "lead":
		return []core.ModelKind{core.KindLEAD}, nil
	case "dozznoc":
		return []core.ModelKind{core.KindDozzNoC}, nil
	case "turbo":
		return []core.ModelKind{core.KindTurbo}, nil
	}
	return nil, fmt.Errorf("unknown model %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
