// Command dozznocd runs the simulator as a long-running co-simulation
// daemon: a NoC timing/energy oracle that external simulators drive
// over the versioned JSONL protocol in internal/cosim (open-session,
// transfer, advance, query, close-session).
//
// Usage:
//
//	dozznocd                          # serve the protocol on stdio
//	dozznocd -listen localhost:9797   # serve TCP connections
//
// Each connection gets its own session namespace; sessions are
// persistent mesh + policy-model engine instances multiplexed over a
// bounded worker pool. When the pool is saturated the daemon answers
// advance requests with an explicit busy/retry-after frame instead of
// queueing. -obs-addr serves live expvar (including the per-session
// "dozznoc.cosim" branch) and pprof; -trace-out with -trace-window
// keeps a bounded always-on engine-phase trace in stdio mode.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
	"repro/internal/cosim"
)

func main() {
	var (
		listen      = flag.String("listen", "", "serve the cosim protocol on this TCP address (e.g. localhost:9797); empty = stdio")
		workers     = flag.Int("workers", 0, "sessions allowed to advance simulated time concurrently (0 = GOMAXPROCS)")
		maxSessions = flag.Int("max-sessions", 0, "max open sessions per connection (0 = default 16)")
		retryMS     = flag.Int64("retry-after-ms", 0, "retry hint attached to busy replies (0 = default 5)")
		shardsMin   = flag.Int("shard-min-active", 0, "per-session sharded serial-fallback threshold in active routers (0 = calibrate from a measured dispatch/barrier round-trip; -1 = always attempt the concurrent sweep; results are bit-identical)")
		obsAddr     = flag.String("obs-addr", "", "serve live expvar/pprof observability on this address (e.g. localhost:6060)")
		traceOut    = flag.String("trace-out", "", "write engine-phase spans as a Perfetto/chrome://tracing JSONL file (stdio mode only)")
		traceWin    = flag.Int64("trace-window", 0, "keep only the trailing N base ticks of the phase trace (0 = everything)")
		driftCfg    = cli.DriftFlags()
	)
	flag.Parse()

	minActive, err := cli.ParseShardMinActive(*shardsMin)
	if err != nil {
		fatal(err)
	}
	if *listen != "" && *traceOut != "" {
		fatal(fmt.Errorf("-trace-out requires stdio mode: the phase tracer is single-goroutine, " +
			"and only a single stdio connection serializes all session work onto one"))
	}
	observer, closeObs, err := cli.StartObs(*obsAddr, *traceOut, *traceWin, driftCfg())
	if err != nil {
		fatal(err)
	}

	opts := cosim.Options{
		Workers:            *workers,
		MaxSessionsPerConn: *maxSessions,
		RetryAfterMS:       *retryMS,
		ShardMinActive:     minActive,
	}
	if *listen == "" {
		opts.Observer = observer
	}
	d := cosim.NewDaemon(opts)

	// SIGINT/SIGTERM drain the daemon: live connections close, remaining
	// sessions are finalized (tracer flushed), and Serve/ServeConn return.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "dozznocd: draining")
		d.Close()
	}()

	if *listen == "" {
		err = d.ServeConn(os.Stdin, os.Stdout)
	} else {
		var ln net.Listener
		ln, err = net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dozznocd: serving cosim protocol v%d on %s\n", cosim.Version, ln.Addr())
		err = d.Serve(ln)
	}
	d.Close()
	// The daemon has finalized every session into the tracer by now;
	// flush it and surface close errors — a truncated always-on phase
	// trace must not hide behind a clean daemon shutdown.
	if cerr := closeObs(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dozznocd:", err)
	os.Exit(1)
}
