// Golden-output regression tests: the experiment command's rendered
// tables are snapshotted under testdata/golden/ and diffed on every test
// run, so an accidental change to a model constant, an energy formula or
// the simulation engine shows up as a readable text diff.
//
// Regenerate the snapshots after an intentional change with
//
//	go test ./cmd/experiments -run TestGolden -update
package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// passthrough installs IBU-passthrough predictors on every suite the run
// builds, so simulation-backed goldens skip the training pipeline and
// stay fast and deterministic.
func passthrough(s *core.Suite) {
	for _, k := range core.MLKinds {
		s.SetTrainedModel(k, &ml.Ridge{Weights: []float64{0, 0, 0, 0, 1}})
	}
}

// checkGolden runs the command in-process and compares stdout against
// testdata/golden/<name>.golden.
func checkGolden(t *testing.T, name string, rc runConfig) {
	t.Helper()
	var out bytes.Buffer
	if err := run(&out, io.Discard, rc); err != nil {
		t.Fatalf("run: %v", err)
	}
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, out.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
}

// TestGoldenTables snapshots the static model tables (paper constants:
// V/F modes, regulator costs, energy figures).
func TestGoldenTables(t *testing.T) {
	checkGolden(t, "tables", runConfig{only: "table1,table2,table3,table5"})
}

// TestGoldenHeadline snapshots the full five-model comparison on a
// reduced 4x4 suite with passthrough predictors — one end-to-end pass
// through trace generation, the simulation engine (fast-forward path
// included), energy metering and the report renderer.
func TestGoldenHeadline(t *testing.T) {
	checkGolden(t, "headline-4x4", runConfig{
		only:           "headline",
		horizon:        8000,
		seed:           3,
		compress:       4,
		meshW:          4,
		meshH:          4,
		configureSuite: passthrough,
	})
}
