// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them in order. Select a subset with -only
// (comma-separated ids: table1,table2,table3,table5,overhead,fig5,fig6,
// table5derived,fig7,fig8,fig9,headline,epochs,tidle,punch,featcount,
// feat41,closedloop,globaldvfs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mcsim"
	"repro/internal/topology"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		horizon  = flag.Int64("horizon", 120_000, "trace generation window in base ticks")
		compress = flag.Int64("compress", exp.DefaultCompression, "compression factor for compressed-trace experiments")
		seed     = flag.Int64("seed", 1, "trace generator seed")
		cmesh    = flag.Bool("cmesh", true, "include the 4x4 cmesh headline row")
		csvDir   = flag.String("csv", "", "also write machine-readable CSVs for fig7/fig8/fig9/headline into this directory")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	out := os.Stdout
	section := func(id string) {
		fmt.Fprintf(out, "\n==== %s ====\n", id)
	}

	if sel("table1") {
		section("table1")
		exp.TableI().Write(out)
	}
	if sel("table2") {
		section("table2")
		exp.TableII().Write(out)
	}
	if sel("table3") {
		section("table3")
		exp.TableIII().Write(out)
	}
	if sel("table5") {
		section("table5")
		exp.TableV().Write(out)
	}
	if sel("table5derived") {
		section("table5derived")
		exp.TableVDerived().Write(out)
	}
	if sel("overhead") {
		section("overhead")
		exp.OverheadTable().Write(out)
	}
	if sel("fig5") {
		section("fig5")
		exp.Fig5(10, 0.5, 40).Write(out)
	}
	if sel("fig6") {
		section("fig6")
		exp.Fig6().Write(out)
	}

	needSim := sel("fig7") || sel("fig8") || sel("fig9") || sel("headline") ||
		sel("epochs") || sel("tidle") || sel("punch") || sel("featcount") ||
		sel("feat41") || sel("closedloop") || sel("globaldvfs")
	if !needSim {
		return
	}

	opts := core.Options{Horizon: *horizon, Seed: *seed}
	suite := core.NewSuite(topology.NewMesh(8, 8), opts)
	if sel("fig7") || sel("fig8") || sel("headline") {
		start := time.Now()
		fmt.Fprintln(os.Stderr, "training ML models on the 8x8 mesh...")
		if err := suite.TrainAllParallel(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "training done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if sel("fig7") {
		section("fig7")
		r, err := exp.Fig7(suite)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
		writeCSVFile(*csvDir, "fig7.csv", r.WriteCSV)
	}
	if sel("fig8") {
		section("fig8")
		r, err := exp.Fig8(suite, *compress)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
		writeCSVFile(*csvDir, "fig8.csv", r.WriteCSV)
	}
	if sel("fig9") {
		section("fig9")
		r, err := exp.Fig9(suite)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
		writeCSVFile(*csvDir, "fig9.csv", r.WriteCSV)
	}
	if sel("headline") {
		section("headline")
		var cm *core.Suite
		if *cmesh {
			cm = core.NewSuite(topology.NewCMesh(4, 4), opts)
		}
		r, err := exp.Headline(suite, *compress, cm)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
		writeCSVFile(*csvDir, "headline.csv", r.WriteCSV)
	}
	if sel("epochs") {
		section("epochs")
		factory := func(ep int64) *core.Suite {
			o := opts
			o.EpochTicks = ep
			return core.NewSuite(topology.NewMesh(8, 8), o)
		}
		r, err := exp.RunEpochSweep(factory, "fft", *compress, []int64{100, 250, 500, 1000})
		if err != nil {
			fatal(err)
		}
		r.Write(out)
	}
	if sel("tidle") {
		section("tidle")
		r, err := exp.TIdleSweep(topology.NewMesh(8, 8), "fft", *horizon, []int{2, 4, 8, 16, 32})
		if err != nil {
			fatal(err)
		}
		r.Write(out)
	}
	if sel("punch") {
		section("punch")
		r, err := exp.PunchSweep(topology.NewMesh(8, 8), "fft", *horizon, []int{0, 1, 2, 4, -1})
		if err != nil {
			fatal(err)
		}
		r.Write(out)
	}
	if sel("featcount") {
		section("featcount")
		r, err := exp.FeatureCountAblation(suite)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
	}
	if sel("feat41") {
		section("feat41")
		r, err := exp.FeatureSet41(suite)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
	}
	if sel("globaldvfs") {
		section("globaldvfs")
		r, err := exp.GlobalDVFS(topology.NewMesh(8, 8), *horizon, nil)
		if err != nil {
			fatal(err)
		}
		r.Write(out)
	}
	if sel("closedloop") {
		section("closedloop")
		topo := topology.NewMesh(8, 8)
		r, err := exp.ClosedLoop(topo, mcsim.DefaultSystem(topo))
		if err != nil {
			fatal(err)
		}
		r.Write(out)
		sw, err := exp.ClosedLoopSweep(topo, nil, 100_000)
		if err != nil {
			fatal(err)
		}
		sw.Write(out)
	}
}

// writeCSVFile writes one CSV export when -csv is set.
func writeCSVFile(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
