// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them in order. Select a subset with -only
// (comma-separated ids: table1,table2,table3,table5,overhead,fig5,fig6,
// table5derived,fig7,fig8,fig9,headline,epochs,tidle,punch,featcount,
// feat41,closedloop,globaldvfs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mcsim"
	"repro/internal/obs"
	"repro/internal/topology"
)

// runConfig mirrors the command-line flags so the whole command is
// callable in-process (the golden-output regression test drives it with
// a reduced configuration).
type runConfig struct {
	only      string
	horizon   int64
	compress  int64
	seed      int64
	cmesh     bool
	csvDir    string
	parallel  bool
	shards    int // per-simulation tick-engine shards (0 = auto)
	shardsMin int // sharded serial-fallback threshold (0 = calibrate at startup)
	meshW     int // mesh dimensions (default 8x8)
	meshH     int
	obsAddr   string          // live expvar/pprof endpoint address ("" = off)
	traceOut  string          // engine-phase Perfetto trace path ("" = off)
	traceWin  int64           // phase-trace retention window in base ticks (0 = everything)
	drift     obs.DriftConfig // Page-Hinkley drift-detector parameters

	// configureSuite, when non-nil, is applied to every suite the run
	// builds before any simulation (tests install passthrough ML models
	// here to skip training).
	configureSuite func(*core.Suite)
}

func main() {
	var rc runConfig
	var cpuProfile, memProfile, rtTrace string
	flag.StringVar(&rc.only, "only", "", "comma-separated experiment ids (default: all)")
	flag.Int64Var(&rc.horizon, "horizon", 120_000, "trace generation window in base ticks")
	flag.Int64Var(&rc.compress, "compress", exp.DefaultCompression, "compression factor for compressed-trace experiments")
	flag.Int64Var(&rc.seed, "seed", 1, "trace generator seed")
	flag.BoolVar(&rc.cmesh, "cmesh", true, "include the 4x4 cmesh headline row")
	flag.StringVar(&rc.csvDir, "csv", "", "also write machine-readable CSVs for fig7/fig8/fig9/headline into this directory")
	flag.BoolVar(&rc.parallel, "parallel", false, "run independent simulations on a worker pool (identical results, less wall-clock)")
	flag.IntVar(&rc.shards, "shards", 0, "per-simulation tick-engine shards (0 = min(GOMAXPROCS, CPUs, mesh rows) — serial on a single-CPU host, pass a count >1 to force sharding there; 1 = serial sweep; results are bit-identical)")
	flag.IntVar(&rc.shardsMin, "shard-min-active", 0, "sharded engine's serial-fallback threshold in active routers (0 = calibrate from a measured dispatch/barrier round-trip at startup; -1 = always attempt the concurrent sweep; results are bit-identical)")
	flag.StringVar(&cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&rtTrace, "runtimetrace", "", "write a Go execution trace (go tool trace) to this file")
	flag.StringVar(&rc.obsAddr, "obs-addr", "", "serve live expvar/pprof observability on this address (e.g. localhost:6060)")
	flag.StringVar(&rc.traceOut, "trace-out", "", "write engine-phase spans as a Perfetto/chrome://tracing JSONL file")
	flag.Int64Var(&rc.traceWin, "trace-window", 0, "keep only the trailing N base ticks of the phase trace (0 = everything)")
	driftCfg := cli.DriftFlags()
	flag.Parse()
	rc.drift = driftCfg()

	stopProfiles, err := cli.StartProfiles(cpuProfile, rtTrace, memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	runErr := run(os.Stdout, os.Stderr, rc)
	if err := stopProfiles(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(out, errOut io.Writer, rc runConfig) (retErr error) {
	if _, err := cli.ParseShards(rc.shards); err != nil {
		return err
	}
	if _, err := cli.ParseShardMinActive(rc.shardsMin); err != nil {
		return err
	}
	if rc.meshW == 0 {
		rc.meshW = 8
	}
	if rc.meshH == 0 {
		rc.meshH = 8
	}
	want := map[string]bool{}
	for _, id := range strings.Split(rc.only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	section := func(id string) {
		fmt.Fprintf(out, "\n==== %s ====\n", id)
	}

	if sel("table1") {
		section("table1")
		exp.TableI().Write(out)
	}
	if sel("table2") {
		section("table2")
		exp.TableII().Write(out)
	}
	if sel("table3") {
		section("table3")
		exp.TableIII().Write(out)
	}
	if sel("table5") {
		section("table5")
		exp.TableV().Write(out)
	}
	if sel("table5derived") {
		section("table5derived")
		exp.TableVDerived().Write(out)
	}
	if sel("overhead") {
		section("overhead")
		exp.OverheadTable().Write(out)
	}
	if sel("fig5") {
		section("fig5")
		exp.Fig5(10, 0.5, 40).Write(out)
	}
	if sel("fig6") {
		section("fig6")
		exp.Fig6().Write(out)
	}

	needSim := sel("fig7") || sel("fig8") || sel("fig9") || sel("headline") ||
		sel("epochs") || sel("tidle") || sel("punch") || sel("featcount") ||
		sel("feat41") || sel("closedloop") || sel("globaldvfs")
	if !needSim {
		return nil
	}

	// The observer rides along on every sequential single-run entry point
	// (core.Options.Obs documents why the parallel paths skip it); the
	// live endpoint shows whichever simulation folded an epoch last.
	observer, closeObs, err := cli.StartObs(rc.obsAddr, rc.traceOut, rc.traceWin, rc.drift)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeObs(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	opts := core.Options{Horizon: rc.horizon, Seed: rc.seed, Parallel: rc.parallel, Shards: rc.shards, ShardMinActive: rc.shardsMin, Obs: observer}
	newSuite := func(topo topology.Topology, o core.Options) *core.Suite {
		s := core.NewSuite(topo, o)
		if rc.configureSuite != nil {
			rc.configureSuite(s)
		}
		return s
	}
	suite := newSuite(topology.NewMesh(rc.meshW, rc.meshH), opts)
	if sel("fig7") || sel("fig8") || sel("headline") {
		if !trained(suite) {
			start := time.Now()
			fmt.Fprintf(errOut, "training ML models on the %dx%d mesh...\n", rc.meshW, rc.meshH)
			if err := suite.TrainAllParallel(); err != nil {
				return err
			}
			fmt.Fprintf(errOut, "training done in %v\n", time.Since(start).Round(time.Millisecond))
		}
	}

	if sel("fig7") {
		section("fig7")
		r, err := exp.Fig7(suite)
		if err != nil {
			return err
		}
		r.Write(out)
		if err := writeCSVFile(errOut, rc.csvDir, "fig7.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if sel("fig8") {
		section("fig8")
		r, err := exp.Fig8(suite, rc.compress)
		if err != nil {
			return err
		}
		r.Write(out)
		if err := writeCSVFile(errOut, rc.csvDir, "fig8.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if sel("fig9") {
		section("fig9")
		r, err := exp.Fig9(suite)
		if err != nil {
			return err
		}
		r.Write(out)
		if err := writeCSVFile(errOut, rc.csvDir, "fig9.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if sel("headline") {
		section("headline")
		var cm *core.Suite
		if rc.cmesh {
			cm = newSuite(topology.NewCMesh(4, 4), opts)
		}
		r, err := exp.Headline(suite, rc.compress, cm)
		if err != nil {
			return err
		}
		r.Write(out)
		if err := writeCSVFile(errOut, rc.csvDir, "headline.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if sel("epochs") {
		section("epochs")
		factory := func(ep int64) *core.Suite {
			o := opts
			o.EpochTicks = ep
			return newSuite(topology.NewMesh(rc.meshW, rc.meshH), o)
		}
		r, err := exp.RunEpochSweep(factory, "fft", rc.compress, []int64{100, 250, 500, 1000})
		if err != nil {
			return err
		}
		r.Write(out)
	}
	if sel("tidle") {
		section("tidle")
		r, err := exp.TIdleSweep(topology.NewMesh(rc.meshW, rc.meshH), "fft", rc.horizon, []int{2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		r.Write(out)
	}
	if sel("punch") {
		section("punch")
		r, err := exp.PunchSweep(topology.NewMesh(rc.meshW, rc.meshH), "fft", rc.horizon, []int{0, 1, 2, 4, -1})
		if err != nil {
			return err
		}
		r.Write(out)
	}
	if sel("featcount") {
		section("featcount")
		r, err := exp.FeatureCountAblation(suite)
		if err != nil {
			return err
		}
		r.Write(out)
	}
	if sel("feat41") {
		section("feat41")
		r, err := exp.FeatureSet41(suite)
		if err != nil {
			return err
		}
		r.Write(out)
	}
	if sel("globaldvfs") {
		section("globaldvfs")
		r, err := exp.GlobalDVFS(topology.NewMesh(rc.meshW, rc.meshH), rc.horizon, nil)
		if err != nil {
			return err
		}
		r.Write(out)
	}
	if sel("closedloop") {
		section("closedloop")
		topo := topology.NewMesh(rc.meshW, rc.meshH)
		r, err := exp.ClosedLoop(topo, mcsim.DefaultSystem(topo))
		if err != nil {
			return err
		}
		r.Write(out)
		sw, err := exp.ClosedLoopSweep(topo, nil, 100_000)
		if err != nil {
			return err
		}
		sw.Write(out)
	}
	return nil
}

// trained reports whether every ML kind already has an installed model
// (e.g. injected by a test), so the run can skip training.
func trained(s *core.Suite) bool {
	for _, k := range core.MLKinds {
		if s.TrainedModel(k) == nil {
			return false
		}
	}
	return true
}

// writeCSVFile writes one CSV export when -csv is set.
func writeCSVFile(errOut io.Writer, dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := cli.WriteFile(path, write); err != nil {
		return err
	}
	fmt.Fprintln(errOut, "wrote", path)
	return nil
}
