// Command benchtxt works with the JSON benchmark logs written by `make
// bench` (`go test -bench . -benchmem -json > BENCH_<date>.json`).
//
// With one file it recovers the plain-text benchmark output benchstat
// consumes, by extracting the output events from the test2json stream:
//
//	benchtxt BENCH_2026-08-05.json > bench.txt
//
// With -compare and two files it prints a per-benchmark ns/op delta
// table itself — a benchstat fallback for environments without the
// tool (`make bench-compare` prefers benchstat when installed). Like
// benchstat, the delta is significance-gated: the per-run samples of
// both sides feed a Mann-Whitney U test, and a benchmark whose change
// cannot be distinguished from noise at alpha=0.05 prints `~` instead
// of a misleading percentage, so the fallback and benchstat agree on
// what counts as a real change:
//
//	benchtxt -compare BENCH_old.json BENCH_new.json
//
// With -gate it becomes a CI regression gate: like -compare, but the
// benchmark set can be restricted with -pattern (a regexp on benchmark
// names) and the exit status is nonzero if any matched benchmark
// regressed by more than -max-regress percent (`make bench-gate`):
//
//	benchtxt -gate -pattern '^BenchmarkHotspot' -max-regress 10 BENCH_base.json BENCH_new.json
//
// The gate statistic is the MINIMUM ns/op across a benchmark's runs, not
// the mean: logs recorded with `-count=N` carry N samples per benchmark,
// scheduler noise on shared runners only ever adds time, and the fastest
// run is the closest observation of the code's true cost. A single slow
// outlier therefore cannot trip the gate (it would dominate a mean), and
// when a benchmark does trip, every new-side run is printed with its
// delta against the base minimum so the log shows which runs drove it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// event is the subset of a test2json record benchtxt needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two JSON benchmark logs (old new)")
	gate := flag.Bool("gate", false, "compare two logs and exit nonzero on ns/op regression beyond -max-regress")
	pattern := flag.String("pattern", "", "regexp restricting which benchmarks -gate checks (default: all common)")
	maxRegress := flag.Float64("max-regress", 10, "allowed mean ns/op regression percent for -gate")
	flag.Parse()
	args := flag.Args()
	// Stdout is buffered, and the flush error is checked like any other
	// output path: a full disk or closed pipe at flush time must not
	// hide behind exit code 0.
	out := bufio.NewWriter(os.Stdout)
	var err error
	switch {
	case *gate && len(args) == 2:
		err = gateFiles(out, args[0], args[1], *pattern, *maxRegress)
	case *compare && !*gate && len(args) == 2:
		err = compareFiles(out, args[0], args[1])
	case !*compare && !*gate && len(args) == 1:
		err = dumpText(out, args[0])
	default:
		fmt.Fprintln(os.Stderr, "usage: benchtxt FILE.json | benchtxt -compare OLD.json NEW.json | benchtxt -gate [-pattern RE] [-max-regress PCT] BASE.json NEW.json")
		os.Exit(2)
	}
	if ferr := out.Flush(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtxt:", err)
	os.Exit(1)
}

// outputLines streams the Output payload of every output event in a
// test2json log to fn.
func outputLines(path string, fn func(line string)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate stray non-JSON lines (e.g. build output).
			continue
		}
		if ev.Action == "output" {
			fn(ev.Output)
		}
	}
	return sc.Err()
}

func dumpText(w io.Writer, path string) error {
	return outputLines(path, func(line string) { fmt.Fprint(w, line) })
}

// result is one benchmark's aggregated measurements.
type result struct {
	runs    int
	nsOp    float64 // summed, averaged at report time
	bOp     float64
	allocs  float64
	samples []float64 // per-run ns/op, in log order (-count=N gives N)
}

// mean is the average ns/op across runs — the -compare statistic.
func (r *result) mean() float64 { return r.nsOp / float64(r.runs) }

// min is the fastest run's ns/op — the -gate statistic (robust to noisy
// runners: interference only ever slows a run down).
func (r *result) min() float64 {
	m := r.samples[0]
	for _, s := range r.samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// parseBench collects per-benchmark means keyed by name (GOMAXPROCS
// suffix stripped, so -cpu sweeps of the same benchmark aggregate).
// test2json splits a benchmark's name and its measurements into
// separate output events (the name chunk ends in a tab, not a newline),
// so chunks are reassembled into logical lines before parsing.
func parseBench(path string) (map[string]*result, error) {
	out := make(map[string]*result)
	var pending strings.Builder
	parseLine := func(line string) {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			return
		}
		nsOp, ok := metric(fields, "ns/op")
		if !ok {
			return
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := out[name]
		if r == nil {
			r = &result{}
			out[name] = r
		}
		r.runs++
		r.nsOp += nsOp
		r.samples = append(r.samples, nsOp)
		if v, ok := metric(fields, "B/op"); ok {
			r.bOp += v
		}
		if v, ok := metric(fields, "allocs/op"); ok {
			r.allocs += v
		}
	}
	err := outputLines(path, func(chunk string) {
		pending.WriteString(chunk)
		if !strings.HasSuffix(chunk, "\n") {
			return
		}
		for _, line := range strings.Split(pending.String(), "\n") {
			parseLine(line)
		}
		pending.Reset()
	})
	for _, line := range strings.Split(pending.String(), "\n") {
		parseLine(line)
	}
	return out, err
}

// metric finds `<value> <unit>` in a benchmark line's fields.
func metric(fields []string, unit string) (float64, bool) {
	for i := 1; i < len(fields); i++ {
		if fields[i] == unit {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// compareFiles prints the benchstat-fallback delta table. The per-run
// ns/op samples of both sides feed stats.CompareSamples: the delta
// column shows a percentage only when a Mann-Whitney U test rejects
// "same distribution" at stats.Alpha, and `~` otherwise — benchstat's
// convention, so the fallback never claims a change benchstat would
// call noise. With a single run per side nothing is ever significant;
// record logs with -count=4 or more to give the test power.
func compareFiles(w io.Writer, oldPath, newPath string) error {
	oldR, err := parseBench(oldPath)
	if err != nil {
		return err
	}
	newR, err := parseBench(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldR))
	for name := range oldR {
		if _, ok := newR[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	fmt.Fprintf(w, "%-50s %14s %14s %9s %7s %7s\n", "benchmark", "old ns/op", "new ns/op", "delta", "p", "runs")
	for _, name := range names {
		o, n := oldR[name], newR[name]
		d := stats.CompareSamples(o.samples, n.samples)
		fmt.Fprintf(w, "%-50s %14.0f %14.0f %9s %7.3f %3dv%-3d\n",
			name, d.OldMean, d.NewMean, d.PctString(), d.U.P, o.runs, n.runs)
	}
	fmt.Fprintf(w, "(~ = no significant difference at alpha=%g, Mann-Whitney U)\n", stats.Alpha)
	return nil
}

// gateFiles compares base against new like compareFiles, restricted to
// benchmarks matching pattern, and fails if any regressed beyond
// maxRegress percent on the min-of-runs ns/op (see the package comment
// for why min, not mean). For every benchmark that trips, each new-side
// run is printed with its delta against the base minimum. Benchmarks
// present on only one side are ignored (new benchmarks have no baseline;
// retired ones gate nothing).
func gateFiles(w io.Writer, basePath, newPath, pattern string, maxRegress float64) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -pattern: %v", err)
	}
	baseR, err := parseBench(basePath)
	if err != nil {
		return err
	}
	newR, err := parseBench(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(baseR))
	for name := range baseR {
		if _, ok := newR[name]; ok && re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks matching %q between %s and %s", pattern, basePath, newPath)
	}
	fmt.Fprintf(w, "%-50s %14s %14s %8s\n", "benchmark", "base min", "new min", "delta")
	var failed []string
	for _, name := range names {
		b, n := baseR[name].min(), newR[name].min()
		delta := 100 * (n - b) / b
		verdict := ""
		if delta > maxRegress {
			verdict = "  REGRESSED"
			failed = append(failed, name)
		}
		fmt.Fprintf(w, "%-50s %14.0f %14.0f %+7.1f%%%s\n", name, b, n, delta, verdict)
		if verdict != "" {
			for i, s := range newR[name].samples {
				mark := ""
				if s == n {
					mark = "  <- min"
				}
				fmt.Fprintf(w, "    new run %d/%d: %.0f ns/op (%+.1f%% vs base min)%s\n",
					i+1, newR[name].runs, s, 100*(s-b)/b, mark)
			}
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% on min-of-runs ns/op: %s", len(failed), maxRegress, strings.Join(failed, ", "))
	}
	fmt.Fprintf(w, "gate passed: %d benchmark(s) within %.0f%% of %s (min of runs)\n", len(names), maxRegress, basePath)
	return nil
}
