package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLog writes a synthetic test2json benchmark log. Each benchmark
// line is split into two output events — the name chunk ending in a tab,
// then the measurements — the way `go test -json` actually emits them,
// so the tests also exercise chunk reassembly.
func writeLog(t *testing.T, path string, lines ...string) {
	t.Helper()
	var sb strings.Builder
	emit := func(out string) {
		b, err := json.Marshal(event{Action: "output", Output: out})
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	emit("goos: linux\n")
	for _, line := range lines {
		name, rest, _ := strings.Cut(line, "\t")
		emit(name + "\t")
		emit(rest + "\n")
	}
	emit("PASS\n")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestParseBenchAggregatesCountRuns pins -count=N handling: repeated
// lines of one benchmark (with a GOMAXPROCS suffix) aggregate under one
// stripped name, keeping every per-run sample for the min statistic.
func TestParseBenchAggregatesCountRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	writeLog(t, path,
		"BenchmarkMesh-8\t 100\t 1200 ns/op\t 64 B/op\t 2 allocs/op",
		"BenchmarkMesh-8\t 100\t 1000 ns/op\t 64 B/op\t 2 allocs/op",
		"BenchmarkMesh-8\t 100\t 1100 ns/op\t 64 B/op\t 2 allocs/op",
	)
	res, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkMesh"]
	if r == nil {
		t.Fatalf("GOMAXPROCS suffix not stripped; got keys %v", keys(res))
	}
	if r.runs != 3 || len(r.samples) != 3 {
		t.Fatalf("runs=%d samples=%d, want 3 and 3", r.runs, len(r.samples))
	}
	if got := r.mean(); got != 1100 {
		t.Errorf("mean = %v, want 1100", got)
	}
	if got := r.min(); got != 1000 {
		t.Errorf("min = %v, want 1000", got)
	}
}

// TestGateMinIgnoresNoisySpike is the satellite's point: two of three
// new-side runs are badly disturbed (a mean gate would read +93% and
// trip), but the fastest run is within tolerance, so the gate passes.
func TestGateMinIgnoresNoisySpike(t *testing.T) {
	dir := t.TempDir()
	base, new := filepath.Join(dir, "base.json"), filepath.Join(dir, "new.json")
	writeLog(t, base,
		"BenchmarkMesh-8\t 100\t 1000 ns/op",
	)
	writeLog(t, new,
		"BenchmarkMesh-8\t 100\t 2900 ns/op",
		"BenchmarkMesh-8\t 100\t 1050 ns/op",
		"BenchmarkMesh-8\t 100\t 1850 ns/op",
	)
	if err := gateFiles(io.Discard, base, new, "", 10); err != nil {
		t.Errorf("min-based gate tripped on a noisy spike: %v", err)
	}
}

// TestGateTripsOnRealRegression: when even the fastest new run is beyond
// tolerance, the gate fails and names the offending benchmark; a second
// benchmark within tolerance does not appear in the failure.
func TestGateTripsOnRealRegression(t *testing.T) {
	dir := t.TempDir()
	base, new := filepath.Join(dir, "base.json"), filepath.Join(dir, "new.json")
	writeLog(t, base,
		"BenchmarkMesh-8\t 100\t 1000 ns/op",
		"BenchmarkHotspot-8\t 100\t 500 ns/op",
	)
	writeLog(t, new,
		"BenchmarkMesh-8\t 100\t 1400 ns/op",
		"BenchmarkMesh-8\t 100\t 1300 ns/op",
		"BenchmarkHotspot-8\t 100\t 510 ns/op",
	)
	err := gateFiles(io.Discard, base, new, "", 10)
	if err == nil {
		t.Fatal("gate passed a +30% min-of-runs regression")
	}
	if !strings.Contains(err.Error(), "BenchmarkMesh") {
		t.Errorf("failure does not name the regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkHotspot") {
		t.Errorf("failure names a benchmark that did not regress: %v", err)
	}
}

// TestGatePatternRestrictsSet: the -pattern regexp excludes non-matching
// benchmarks from the gate entirely, so a regression outside the pattern
// does not fail the build.
func TestGatePatternRestrictsSet(t *testing.T) {
	dir := t.TempDir()
	base, new := filepath.Join(dir, "base.json"), filepath.Join(dir, "new.json")
	writeLog(t, base,
		"BenchmarkMesh-8\t 100\t 1000 ns/op",
		"BenchmarkHotspot-8\t 100\t 500 ns/op",
	)
	writeLog(t, new,
		"BenchmarkMesh-8\t 100\t 5000 ns/op",
		"BenchmarkHotspot-8\t 100\t 505 ns/op",
	)
	if err := gateFiles(io.Discard, base, new, "^BenchmarkHotspot", 10); err != nil {
		t.Errorf("pattern-restricted gate tripped on an excluded benchmark: %v", err)
	}
}

// TestCompareSignificanceGate pins the rewired -compare fallback to the
// vendored Mann-Whitney machinery: a clean 4v4 separation (exact
// two-sided p = 2/70) prints its percentage, while a noisy overlap of
// the same magnitude-of-means prints `~` — the benchstat convention, so
// the fallback and benchstat paths agree on what is a real change.
func TestCompareSignificanceGate(t *testing.T) {
	dir := t.TempDir()
	old, new := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeLog(t, old,
		"BenchmarkReal-8\t 100\t 1000 ns/op",
		"BenchmarkReal-8\t 100\t 1010 ns/op",
		"BenchmarkReal-8\t 100\t 990 ns/op",
		"BenchmarkReal-8\t 100\t 1005 ns/op",
		"BenchmarkNoisy-8\t 100\t 1000 ns/op",
		"BenchmarkNoisy-8\t 100\t 1200 ns/op",
		"BenchmarkNoisy-8\t 100\t 900 ns/op",
		"BenchmarkNoisy-8\t 100\t 1100 ns/op",
	)
	writeLog(t, new,
		"BenchmarkReal-8\t 100\t 800 ns/op",
		"BenchmarkReal-8\t 100\t 810 ns/op",
		"BenchmarkReal-8\t 100\t 790 ns/op",
		"BenchmarkReal-8\t 100\t 805 ns/op",
		"BenchmarkNoisy-8\t 100\t 1150 ns/op",
		"BenchmarkNoisy-8\t 100\t 950 ns/op",
		"BenchmarkNoisy-8\t 100\t 1050 ns/op",
		"BenchmarkNoisy-8\t 100\t 1000 ns/op",
	)
	var buf bytes.Buffer
	if err := compareFiles(&buf, old, new); err != nil {
		t.Fatal(err)
	}
	var realLine, noisyLine string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "BenchmarkReal") {
			realLine = line
		}
		if strings.HasPrefix(line, "BenchmarkNoisy") {
			noisyLine = line
		}
	}
	if !strings.Contains(realLine, "-19.9") || strings.Contains(realLine, "~") {
		t.Errorf("separated samples not reported as significant: %q", realLine)
	}
	if !strings.Contains(realLine, "0.029") {
		t.Errorf("exact p = 2/70 missing: %q", realLine)
	}
	if !strings.Contains(noisyLine, "~") {
		t.Errorf("overlapping samples not reported as ~: %q", noisyLine)
	}
}

func keys(m map[string]*result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
