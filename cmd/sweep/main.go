// Command sweep runs a declarative parameter sweep — model x benchmark x
// topology x seed x policy-knob grids — as one crash-safe job: the run
// matrix is expanded deterministically from a JSON spec, executed on a
// bounded worker pool of engine suites sharing generated traces, and
// streamed to a JSONL results file one fsync'd row per completed run.
// Re-invoking with the same spec and output resumes where the previous
// invocation (or crash) stopped; the finished file is byte-identical
// either way.
//
// Usage:
//
//	sweep -spec sweep.json -out results.jsonl
//	sweep -spec sweep.json -out results.jsonl -check
//	sweep -spec sweep.json -out results.jsonl -compare -metric edp
//
// -max-runs bounds how many new rows one invocation writes (incremental
// batches, crash-safety smoke tests); -dry-run prints the expanded run
// IDs without executing anything; -compare aggregates the completed rows
// into per-model arms (replicates = seeds) and tests each against the
// baseline arm with a Mann-Whitney U test, printing "~" for deltas that
// are not significant at alpha=0.05.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sweep"
)

func main() {
	var (
		specPath = flag.String("spec", "", "sweep spec JSON file (required)")
		out      = flag.String("out", "", "JSONL results file, appended to on resume (required unless -dry-run)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = spec's workers, then GOMAXPROCS)")
		maxRuns  = flag.Int("max-runs", 0, "stop after writing this many new rows (0 = run to completion)")
		dryRun   = flag.Bool("dry-run", false, "print the expanded run matrix and exit")
		check    = flag.Bool("check", false, "verify -out against the spec without running; exit 1 if incomplete")
		compare  = flag.Bool("compare", false, "after the job completes, print per-arm significance-tested comparisons")
		metric   = flag.String("metric", "edp", "comparison metric: edp, energy, static, dynamic, latency, throughput, offfrac")
		baseline = flag.String("baseline", "baseline", "model whose arm the others are compared against")
	)
	flag.Parse()

	if *specPath == "" {
		fatal(fmt.Errorf("-spec is required"))
	}
	spec, err := sweep.Load(*specPath)
	if err != nil {
		fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		fatal(err)
	}

	if *dryRun {
		for _, r := range runs {
			fmt.Println(r.ID)
		}
		fmt.Fprintf(os.Stderr, "sweep: %d runs\n", len(runs))
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	if *check {
		rows, _, torn, err := sweep.ReadResults(*out)
		if err != nil {
			fatal(err)
		}
		for i := range rows {
			if i >= len(runs) || rows[i].ID != runs[i].ID {
				fatal(fmt.Errorf("%s row %d does not match the spec's matrix", *out, i))
			}
		}
		fmt.Printf("%s: %d/%d rows complete (torn tail: %v)\n", *out, len(rows), len(runs), torn)
		if torn || len(rows) != len(runs) {
			os.Exit(1)
		}
		return
	}

	rep, err := sweep.RunJob(spec, *out, sweep.Options{Workers: *workers, MaxNewRuns: *maxRuns, Log: os.Stderr})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d/%d rows (%d resumed, %d new", rep.Resumed+rep.Written, rep.Total, rep.Resumed, rep.Written)
	if rep.Truncated {
		fmt.Fprint(os.Stderr, ", torn tail discarded")
	}
	fmt.Fprintln(os.Stderr, ")")
	if rep.Stopped {
		fmt.Fprintln(os.Stderr, "sweep: stopped at -max-runs; re-run to continue")
	}

	if *compare {
		if !rep.Done() {
			fatal(fmt.Errorf("-compare needs a complete job (%d/%d rows)", rep.Resumed+rep.Written, rep.Total))
		}
		rows, _, _, err := sweep.ReadResults(*out)
		if err != nil {
			fatal(err)
		}
		cmp, err := sweep.Compare(rows, *metric, *baseline)
		if err != nil {
			fatal(err)
		}
		sweep.WriteCompare(os.Stdout, cmp, *metric, *baseline)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
